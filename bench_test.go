package inca

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (plus the motivating figures and the DESIGN.md ablations).
// Run:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the paper-style rows once (via internal/suite, the
// same code path cmd/inca-experiments uses); EXPERIMENTS.md records
// paper-versus-measured values.

import (
	"context"
	"fmt"
	"testing"

	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/suite"
)

// printOnce prints s on the benchmark's first iteration only.
func printOnce(i int, s string) {
	if i == 0 {
		fmt.Println(s)
	}
}

// benchSuite runs one suite experiment under the benchmark loop.
func benchSuite(b *testing.B, id string) {
	b.Helper()
	exp, err := suite.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		out, err := exp.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, out)
	}
}

// BenchmarkFig1bDRAMLatency regenerates the DRAM latency-versus-bandwidth
// curve: near-linear below the 80% knee, hockey-stick above it.
func BenchmarkFig1bDRAMLatency(b *testing.B) { benchSuite(b, "fig1b") }

// BenchmarkFig6WSEnergyBreakdown regenerates the WS energy breakdown on
// CIFAR-10 networks: DRAM and buffers occupy the largest portion.
func BenchmarkFig6WSEnergyBreakdown(b *testing.B) { benchSuite(b, "fig6") }

// BenchmarkFig7aMemoryAccesses regenerates the WS-versus-IS access counts
// at the figure's 16-bit precision.
func BenchmarkFig7aMemoryAccesses(b *testing.B) { benchSuite(b, "fig7a") }

// BenchmarkFig7bUnrollBlowup regenerates the unrolled-versus-direct RRAM
// demand (paper: 4.4x, 5.0x, 8.0x, 2.1x for VGG16/19, ResNet18/50).
func BenchmarkFig7bUnrollBlowup(b *testing.B) { benchSuite(b, "fig7b") }

// BenchmarkTable1BitDepthAccuracy regenerates the bit-depth sensitivity
// study: weight quantization hurts more than activation quantization.
func BenchmarkTable1BitDepthAccuracy(b *testing.B) { benchSuite(b, "table1") }

// BenchmarkTable2Configuration prints the Table II configuration summary.
func BenchmarkTable2Configuration(b *testing.B) { benchSuite(b, "table2") }

// BenchmarkFig11EnergyEfficiency regenerates the energy-efficiency
// (throughput-per-watt) comparison for inference and training.
func BenchmarkFig11EnergyEfficiency(b *testing.B) { benchSuite(b, "fig11") }

// BenchmarkFig12LayerwiseEnergy regenerates the per-layer DRAM+buffer
// energy of VGG16: the WS early-layer spike versus INCA's flat profile.
func BenchmarkFig12LayerwiseEnergy(b *testing.B) { benchSuite(b, "fig12") }

// BenchmarkFig13ADCEnergyAndBreakdown regenerates the ADC energy
// comparison (paper: INCA 5x lower on VGG16) and INCA's breakdown.
func BenchmarkFig13ADCEnergyAndBreakdown(b *testing.B) { benchSuite(b, "fig13") }

// BenchmarkTable3BufferAccesses regenerates the Table III estimates at
// the 8-bit Table II precision.
func BenchmarkTable3BufferAccesses(b *testing.B) { benchSuite(b, "table3") }

// BenchmarkFig14Speedup regenerates the latency comparison for inference
// and training.
func BenchmarkFig14Speedup(b *testing.B) { benchSuite(b, "fig14") }

// BenchmarkFig15GPUComparison regenerates the INCA-versus-GPU training
// comparison: energy efficiency and iso-area throughput.
func BenchmarkFig15GPUComparison(b *testing.B) { benchSuite(b, "fig15") }

// BenchmarkFig16Utilization regenerates both utilization plots: the
// array-size sweep (16x16 is INCA's sweet spot) and the per-network
// comparison (WS collapses on light models).
func BenchmarkFig16Utilization(b *testing.B) { benchSuite(b, "fig16") }

// BenchmarkTable4MemoryFootprint regenerates the memory requirements for
// supporting inference plus training.
func BenchmarkTable4MemoryFootprint(b *testing.B) { benchSuite(b, "table4") }

// BenchmarkTable5Area regenerates the area breakdown.
func BenchmarkTable5Area(b *testing.B) { benchSuite(b, "table5") }

// BenchmarkTable6NoiseAccuracy regenerates the device-noise robustness
// study: weight noise (WS) collapses accuracy, activation noise (IS)
// barely moves it.
func BenchmarkTable6NoiseAccuracy(b *testing.B) { benchSuite(b, "table6") }

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationUnrolledIS quantifies what IS would cost with
// GEMM-style unrolling instead of direct convolution across all networks.
func BenchmarkAblationUnrolledIS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := "Ablation: IS RRAM demand with unrolling\n"
		for _, net := range Models() {
			u := CountUnroll(net)
			s += fmt.Sprintf("  %-12s blow-up %.2fx\n", net.Name, u.Ratio())
		}
		printOnce(i, s)
	}
}

// BenchmarkAblationBatchParallel isolates the 3D batch parallelism: a
// single-plane INCA loses its per-image training latency advantage.
func BenchmarkAblationBatchParallel(b *testing.B) {
	net, _ := Model("ResNet18")
	for i := 0; i < b.N; i++ {
		full := NewINCA(DefaultINCA()).Simulate(net, Training)
		cfg := DefaultINCA()
		cfg.StackedPlanes = 1
		cfg.BatchSize = 1
		single := NewINCA(cfg).Simulate(net, Training)
		printOnce(i, fmt.Sprintf(
			"Ablation: 3D batch parallelism (ResNet18 training)\n  64 planes: %.3g s/image\n  1 plane:   %.3g s/image\n",
			full.Total.Latency/float64(full.Batch),
			single.Total.Latency/float64(single.Batch)))
	}
}

// BenchmarkAblationADCPrecision sweeps INCA's converter resolution,
// isolating the exponential ADC cost of Fig 13a.
func BenchmarkAblationADCPrecision(b *testing.B) {
	net, _ := Model("VGG16")
	for i := 0; i < b.N; i++ {
		s := "Ablation: ADC precision (VGG16 inference ADC energy, J/batch)\n"
		for _, bits := range []int{4, 6, 8} {
			cfg := DefaultINCA()
			cfg.ADCBits = bits
			r := NewINCA(cfg).Simulate(net, Inference)
			s += fmt.Sprintf("  INCA %d-bit: %.3g\n", bits, r.Total.Energy.Of(metrics.ADC))
		}
		printOnce(i, s)
	}
}

// BenchmarkAblationArraySize sweeps the subarray size for both dataflows
// on a light model.
func BenchmarkAblationArraySize(b *testing.B) {
	net, _ := Model("MobileNetV2")
	for i := 0; i < b.N; i++ {
		s := "Ablation: array size sweep (MobileNetV2 utilization, INCA / WS)\n"
		for _, sz := range []int{16, 32, 64, 128} {
			icfg := DefaultINCA()
			icfg.SubarrayRows, icfg.SubarrayCols = sz, sz
			bcfg := DefaultBaseline()
			bcfg.SubarrayRows, bcfg.SubarrayCols = sz, sz
			s += fmt.Sprintf("  %3d: %.3f / %.3f\n", sz,
				NewINCA(icfg).Simulate(net, Inference).Utilization(),
				NewBaseline(bcfg).Simulate(net, Inference).Utilization())
		}
		printOnce(i, s)
	}
}

// BenchmarkAblationBufferSize asks whether a bigger buffer rescues the WS
// baseline: activation residency improves, but the per-position fetch
// pattern keeps the traffic volume.
func BenchmarkAblationBufferSize(b *testing.B) {
	net, _ := Model("VGG16")
	for i := 0; i < b.N; i++ {
		s := "Ablation: WS buffer size sweep (VGG16 inference, J/batch)\n"
		for _, kb := range []int64{64, 256, 1024, 4096} {
			cfg := DefaultBaseline()
			cfg.Buffer.CapacityBytes = kb * 1024
			r := NewBaseline(cfg).Simulate(net, Inference)
			s += fmt.Sprintf("  %4d KB: total %.3g J (DRAM %.3g J, buffer %.3g J)\n",
				kb, r.Total.Energy.Total(),
				r.Total.Energy.Of(metrics.DRAM), r.Total.Energy.Of(metrics.Buffer))
		}
		printOnce(i, s)
	}
}

// BenchmarkAblationMultiLevelCells sweeps cell precision: multi-level
// cells shrink the activation array demand (fewer bit planes) at the
// price of a higher-resolution ADC.
func BenchmarkAblationMultiLevelCells(b *testing.B) {
	net, _ := Model("ResNet18")
	for i := 0; i < b.N; i++ {
		s := "Ablation: multi-level cells (ResNet18 inference)\n"
		for _, cellBits := range []int{1, 2, 4} {
			cfg := DefaultINCA()
			cfg.CellBits = cellBits
			// Each extra stored bit demands ~2 more bits of converter
			// headroom on the window sums.
			cfg.ADCBits = 4 + 2*(cellBits-1)
			r := NewINCA(cfg).Simulate(net, Inference)
			s += fmt.Sprintf("  %d-bit cells (ADC %d-bit): %.3g J, %.3g s, %d arrays/value\n",
				cellBits, cfg.ADCBits, r.Total.Energy.Total(), r.Total.Latency, cfg.ActPlanes())
		}
		printOnce(i, s)
	}
}

// BenchmarkAblationWriteOverlap isolates the write/read pipeline hiding
// of §V.B.2.
func BenchmarkAblationWriteOverlap(b *testing.B) {
	net, _ := Model("VGG16")
	for i := 0; i < b.N; i++ {
		on := NewINCA(DefaultINCA()).Simulate(net, Inference)
		cfg := DefaultINCA()
		cfg.WriteReadOverlap = false
		off := NewINCA(cfg).Simulate(net, Inference)
		printOnce(i, fmt.Sprintf(
			"Ablation: RRAM write/read overlap (VGG16 inference)\n  overlap on:  %.3g s\n  overlap off: %.3g s\n",
			on.Total.Latency, off.Total.Latency))
	}
}

// --- Future-work extensions (§VI) ---

// BenchmarkFutureWorkEndurance regenerates the endurance analysis: IS
// rewrites activations every batch, WS only rewrites weights in training.
func BenchmarkFutureWorkEndurance(b *testing.B) { benchSuite(b, "ext-endurance") }

// BenchmarkFutureWorkDeviceCandidates evaluates INCA on the alternative
// device technologies the paper's future work points at.
func BenchmarkFutureWorkDeviceCandidates(b *testing.B) { benchSuite(b, "ext-devices") }

// BenchmarkBatchSweep regenerates the batch-size amortization of the 3D
// planes.
func BenchmarkBatchSweep(b *testing.B) { benchSuite(b, "ext-batch") }

// --- Performance micro-benchmarks (allocation profile of the hot paths) ---

// BenchmarkSimulateINCAVGG16 measures one analytical INCA simulation.
func BenchmarkSimulateINCAVGG16(b *testing.B) {
	m := NewINCA(DefaultINCA())
	net, _ := Model("VGG16")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Simulate(net, Training)
	}
}

// BenchmarkSimulateBaselineVGG16 measures one analytical WS simulation.
func BenchmarkSimulateBaselineVGG16(b *testing.B) {
	m := NewBaseline(DefaultBaseline())
	net, _ := Model("VGG16")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Simulate(net, Training)
	}
}
