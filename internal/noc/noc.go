// Package noc models the on-chip reduction and distribution network of a
// PIM accelerator: the adder tree that the paper's intra-layer mapping
// "naturally forms ... to accumulate the result from different input
// channels" (§IV.C), realized as an H-tree spanning subarray → macro →
// tile → chip levels, plus the matching broadcast path that distributes
// streamed operands downward.
//
// Wire length — and therefore per-hop energy and latency — roughly doubles
// per level in an H-tree floorplan; the model captures that geometric
// growth.
package noc

import "fmt"

// HTree is a reduction/distribution tree over the accelerator hierarchy.
type HTree struct {
	// Fanins lists the fan-in at each level from the leaves upward, e.g.
	// {8, 12, 168}: 8 subarrays per macro, 12 macros per tile, 168 tiles.
	Fanins []int
	// HopEnergy is the energy (J) of moving one operand across one hop at
	// each level.
	HopEnergy []float64
	// HopLatency is the wire+register latency (s) per hop at each level.
	HopLatency []float64
}

// Standard builds the tree for the Table II hierarchy (macroSize,
// tileSize, tiles) with 22 nm-class wire costs that double per level.
func Standard(macroSize, tileSize, tiles int) HTree {
	fanins := []int{macroSize, tileSize, tiles}
	baseE := 0.02e-12 // J per operand-hop at the macro level
	baseL := 0.05e-9  // s per hop at the macro level
	h := HTree{Fanins: fanins}
	for i := range fanins {
		scale := float64(int64(1) << i) // wire length doubles per level
		h.HopEnergy = append(h.HopEnergy, baseE*scale)
		h.HopLatency = append(h.HopLatency, baseL*scale)
	}
	return h
}

// Validate checks structural sanity.
func (h HTree) Validate() error {
	if len(h.Fanins) == 0 {
		return fmt.Errorf("noc: empty tree")
	}
	if len(h.HopEnergy) != len(h.Fanins) || len(h.HopLatency) != len(h.Fanins) {
		return fmt.Errorf("noc: per-level costs must match fan-in levels")
	}
	for i, f := range h.Fanins {
		if f < 1 {
			return fmt.Errorf("noc: invalid fan-in %d at level %d", f, i)
		}
	}
	return nil
}

// Leaves returns the total leaf count.
func (h HTree) Leaves() int64 {
	n := int64(1)
	for _, f := range h.Fanins {
		n *= int64(f)
	}
	return n
}

// LevelsFor returns how many tree levels a reduction over `operands`
// leaves must climb before it fits within one node's fan-in.
func (h HTree) LevelsFor(operands int64) int {
	if operands <= 1 {
		return 0
	}
	capacity := int64(1)
	for lvl, f := range h.Fanins {
		capacity *= int64(f)
		if operands <= capacity {
			return lvl + 1
		}
	}
	return len(h.Fanins)
}

// ReduceCost returns the energy and latency of reducing `operands`
// partial sums into one value. Each level moves the surviving operands one
// hop and halves... more precisely divides them by the level fan-in; the
// latency is the sum of per-level hop latencies along the critical path.
func (h HTree) ReduceCost(operands int64) (energy, latency float64) {
	if operands <= 1 {
		return 0, 0
	}
	remaining := operands
	for lvl := 0; lvl < h.LevelsFor(operands); lvl++ {
		// Every remaining operand crosses one hop at this level.
		energy += float64(remaining) * h.HopEnergy[lvl]
		latency += h.HopLatency[lvl]
		f := int64(h.Fanins[lvl])
		remaining = (remaining + f - 1) / f
	}
	return energy, latency
}

// BroadcastCost returns the energy and latency of distributing one
// operand from the root to `targets` leaves (weight streaming in IS,
// input streaming in WS). Energy charges every branch actually driven.
func (h HTree) BroadcastCost(targets int64) (energy, latency float64) {
	if targets <= 0 {
		return 0, 0
	}
	levels := h.LevelsFor(targets)
	remaining := targets
	for lvl := 0; lvl < levels; lvl++ {
		energy += float64(remaining) * h.HopEnergy[lvl]
		latency += h.HopLatency[lvl]
		f := int64(h.Fanins[lvl])
		remaining = (remaining + f - 1) / f
	}
	return energy, latency
}
