package noc

import (
	"testing"
	"testing/quick"
)

func tree() HTree { return Standard(8, 12, 168) }

func TestStandardStructure(t *testing.T) {
	h := tree()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Leaves() != 8*12*168 {
		t.Fatalf("Leaves = %d, want %d", h.Leaves(), 8*12*168)
	}
	// Wire costs double per level.
	for i := 1; i < len(h.HopEnergy); i++ {
		if h.HopEnergy[i] != 2*h.HopEnergy[i-1] {
			t.Fatalf("hop energy not doubling at level %d", i)
		}
		if h.HopLatency[i] != 2*h.HopLatency[i-1] {
			t.Fatalf("hop latency not doubling at level %d", i)
		}
	}
}

func TestLevelsFor(t *testing.T) {
	h := tree()
	cases := []struct {
		operands int64
		want     int
	}{
		{1, 0}, {2, 1}, {8, 1}, {9, 2}, {96, 2}, {97, 3}, {16128, 3}, {1 << 40, 3},
	}
	for _, c := range cases {
		if got := h.LevelsFor(c.operands); got != c.want {
			t.Errorf("LevelsFor(%d) = %d, want %d", c.operands, got, c.want)
		}
	}
}

func TestReduceCostGrowth(t *testing.T) {
	h := tree()
	e0, l0 := h.ReduceCost(1)
	if e0 != 0 || l0 != 0 {
		t.Fatal("single operand needs no reduction")
	}
	e8, l8 := h.ReduceCost(8)
	e96, l96 := h.ReduceCost(96)
	if e96 <= e8 || l96 <= l8 {
		t.Fatal("wider reductions must cost more")
	}
	// A macro-local reduction touches only level-0 wires.
	if l8 != h.HopLatency[0] {
		t.Fatalf("macro-local latency = %v, want one level-0 hop", l8)
	}
}

func TestBroadcastCost(t *testing.T) {
	h := tree()
	if e, l := h.BroadcastCost(0); e != 0 || l != 0 {
		t.Fatal("no targets, no cost")
	}
	e1, _ := h.BroadcastCost(8)
	e2, _ := h.BroadcastCost(16128)
	if e2 <= e1 {
		t.Fatal("chip-wide broadcast must cost more than macro-local")
	}
}

func TestValidateCatchesBadTrees(t *testing.T) {
	if (HTree{}).Validate() == nil {
		t.Fatal("empty tree should fail")
	}
	h := tree()
	h.Fanins[0] = 0
	if h.Validate() == nil {
		t.Fatal("zero fan-in should fail")
	}
	h = tree()
	h.HopEnergy = h.HopEnergy[:1]
	if h.Validate() == nil {
		t.Fatal("mismatched level costs should fail")
	}
}

// PROPERTY: reduce cost is monotone in operand count.
func TestPropertyReduceMonotone(t *testing.T) {
	h := tree()
	f := func(a, b uint16) bool {
		x, y := int64(a)+1, int64(b)+1
		if x > y {
			x, y = y, x
		}
		ex, lx := h.ReduceCost(x)
		ey, ly := h.ReduceCost(y)
		return ex <= ey+1e-18 && lx <= ly+1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// PROPERTY: reduction latency is bounded by the full-tree critical path.
func TestPropertyLatencyBounded(t *testing.T) {
	h := tree()
	full := 0.0
	for _, l := range h.HopLatency {
		full += l
	}
	f := func(a uint32) bool {
		_, l := h.ReduceCost(int64(a))
		return l <= full+1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
