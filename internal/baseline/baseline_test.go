package baseline

import (
	"testing"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

func machine() *Machine { return New(arch.Baseline()) }

func TestLayerGeometryConv(t *testing.T) {
	m := machine()
	// VGG16 conv2: 3x3x64 -> 64, unrolled rows 576, cols 64*8=512.
	l := nn.Layer{Kind: nn.Conv, InC: 64, OutC: 64, InH: 224, InW: 224,
		OutH: 224, OutW: 224, KH: 3, KW: 3, Stride: 1, Pad: 1}
	g := m.layerGeometry(l)
	if g.rows != 576 || g.cols != 512 {
		t.Fatalf("rows/cols = %d/%d, want 576/512", g.rows, g.cols)
	}
	if g.rowBlocks != 5 || g.colBlocks != 4 {
		t.Fatalf("blocks = %dx%d, want 5x4", g.rowBlocks, g.colBlocks)
	}
	if g.crossbars != 20 {
		t.Fatalf("crossbars = %d, want 20", g.crossbars)
	}
	if g.usefulCells != 576*512 {
		t.Fatalf("usefulCells = %d, want %d", g.usefulCells, 576*512)
	}
	if g.positions != 224*224 {
		t.Fatalf("positions = %d", g.positions)
	}
}

func TestLayerGeometryDepthwiseBlockDiagonal(t *testing.T) {
	m := machine()
	// Depthwise 3x3 over 128 channels: only 9 of each column's rows are
	// useful (paper §V.B.4).
	l := nn.Layer{Kind: nn.Depthwise, InC: 128, OutC: 128, InH: 14, InW: 14,
		OutH: 14, OutW: 14, KH: 3, KW: 3, Stride: 1, Pad: 1}
	g := m.layerGeometry(l)
	if g.rows != 9*128 {
		t.Fatalf("rows = %d, want 1152", g.rows)
	}
	if g.usefulCells != 9*8*128 {
		t.Fatalf("usefulCells = %d, want %d", g.usefulCells, 9*8*128)
	}
	util := m.utilization(l)
	if util > 0.05 {
		t.Fatalf("depthwise utilization = %v, want < 5%%", util)
	}
}

func TestLayerGeometryFC(t *testing.T) {
	m := machine()
	l := nn.Layer{Kind: nn.FC, InC: 4096, OutC: 1000, InH: 1, InW: 1, OutH: 1, OutW: 1}
	g := m.layerGeometry(l)
	if g.positions != 1 || g.rows != 4096 || g.cols != 8000 {
		t.Fatalf("fc geometry = %+v", g)
	}
}

func TestUtilizationConvNearFull(t *testing.T) {
	m := machine()
	// 128-deep accumulation fills the crossbars exactly.
	l := nn.Layer{Kind: nn.Conv, InC: 128, OutC: 16, InH: 16, InW: 16,
		OutH: 16, OutW: 16, KH: 1, KW: 1, Stride: 1}
	if u := m.utilization(l); u != 1.0 {
		t.Fatalf("perfectly tiled conv utilization = %v, want 1", u)
	}
}

func TestSimulateInferenceBasics(t *testing.T) {
	m := machine()
	rep := m.Simulate(nn.ResNet18(), sim.Inference)
	if rep.Total.Energy.Total() <= 0 || rep.Total.Latency <= 0 {
		t.Fatal("inference must cost energy and time")
	}
	if len(rep.Layers) != len(nn.ResNet18().ComputeLayers()) {
		t.Fatalf("layer results = %d, want one per compute layer", len(rep.Layers))
	}
	if rep.Batch != 64 {
		t.Fatalf("batch = %d, want Table II's 64", rep.Batch)
	}
}

func TestTrainingCostsMoreThanInference(t *testing.T) {
	m := machine()
	for _, net := range []*nn.Network{nn.VGG16CIFAR(), nn.ResNet18CIFAR()} {
		inf := m.Simulate(net, sim.Inference)
		trn := m.Simulate(net, sim.Training)
		if trn.Total.Energy.Total() <= inf.Total.Energy.Total() {
			t.Errorf("%s: training energy should exceed inference", net.Name)
		}
		// Training serializes images (no layer pipeline), so the latency
		// penalty is superlinear vs the pipelined inference.
		if trn.Total.Latency <= 2*inf.Total.Latency {
			t.Errorf("%s: training latency %v should be much larger than inference %v",
				net.Name, trn.Total.Latency, inf.Total.Latency)
		}
	}
}

// TestFig6MemoryDominatesWS pins the paper's motivation: with CIFAR-10
// networks, DRAM and buffers occupy the largest portion of WS energy
// (weight loading plus per-position fetch/save traffic).
func TestFig6MemoryDominatesWS(t *testing.T) {
	cfg := arch.Baseline()
	cfg.BatchSize = 1
	m := New(cfg)
	for _, net := range []*nn.Network{nn.VGG16CIFAR(), nn.ResNet18CIFAR()} {
		rep := m.Simulate(net, sim.Inference)
		memShare := rep.Total.Energy.Share(metrics.DRAM) + rep.Total.Energy.Share(metrics.Buffer)
		if memShare < 0.40 {
			t.Errorf("%s: DRAM+buffer share = %.2f, want >= 0.40 (Fig. 6: largest portion)",
				net.Name, memShare)
		}
		for _, c := range []metrics.Component{metrics.RRAMArray, metrics.DAC, metrics.Digital} {
			if rep.Total.Energy.Share(c) > memShare {
				t.Errorf("%s: %v share exceeds DRAM+buffer", net.Name, c)
			}
		}
	}
}

// TestFig16bWSUtilizationCollapse pins the light-model utilization drop:
// VGGs/ResNets stay high, MobileNetV2/MNasNet collapse.
func TestFig16bWSUtilizationCollapse(t *testing.T) {
	m := machine()
	for _, net := range nn.HeavyModels() {
		u := m.Simulate(net, sim.Inference).Utilization()
		if u < 0.5 {
			t.Errorf("%s: WS utilization = %.3f, want >= 0.5", net.Name, u)
		}
	}
	for _, net := range nn.LightModels() {
		u := m.Simulate(net, sim.Inference).Utilization()
		if u > 0.25 {
			t.Errorf("%s: WS utilization = %.3f, want <= 0.25 (drastic drop)", net.Name, u)
		}
	}
}

// TestFig12EarlyLayerSpike pins the layerwise shape: in WS, early VGG16
// conv layers consume far more DRAM+buffer energy than the deepest ones
// ("the early layers carry out most of the convolutions ... loaded and
// saved during the remarkable convolution operations").
func TestFig12EarlyLayerSpike(t *testing.T) {
	m := machine()
	rep := m.Simulate(nn.VGG16(), sim.Inference)
	memOf := func(lr sim.LayerResult) float64 {
		return lr.Result.Energy.Of(metrics.DRAM) + lr.Result.Energy.Of(metrics.Buffer)
	}
	var convs []sim.LayerResult
	for _, lr := range rep.Layers {
		if lr.Layer.Kind == nn.Conv {
			convs = append(convs, lr)
		}
	}
	early := memOf(convs[1]) // conv2, the 224×224×64 monster
	late := memOf(convs[len(convs)-1])
	if early < 5*late {
		t.Fatalf("early/late layerwise memory energy = %.1f, want >= 5x spike", early/late)
	}
}

func TestProgramWeightsDoublesForTraining(t *testing.T) {
	m := machine()
	net := nn.LeNet5()
	inf := m.programWeights(net, false)
	trn := m.programWeights(net, true)
	if trn.Counts.RRAMWrites != 2*inf.Counts.RRAMWrites {
		t.Fatalf("transposed weights should double writes: %d vs %d",
			trn.Counts.RRAMWrites, inf.Counts.RRAMWrites)
	}
	if trn.Energy.Of(metrics.DRAM) <= inf.Energy.Of(metrics.DRAM) {
		t.Fatal("transposed weights should add DRAM traffic")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := arch.Baseline()
	cfg.Tiles = 0
	New(cfg)
}

func TestScaleHelper(t *testing.T) {
	var r metrics.Result
	r.Latency = 2
	r.Energy.Add(metrics.ADC, 3)
	r.Counts.RRAMReads = 10
	s := scale(r, 2.5)
	if s.Latency != 5 || s.Energy.Of(metrics.ADC) != 7.5 || s.Counts.RRAMReads != 25 {
		t.Fatalf("scale = %+v", s)
	}
}
