package baseline

import (
	"fmt"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// DataflowID is the registry ID of the weight-stationary backend.
const DataflowID = "ws"

func init() { dataflow.Register(wsDataflow{}) }

// wsDataflow adapts this package to the dataflow.Dataflow interface.
type wsDataflow struct{}

func (wsDataflow) ID() string { return DataflowID }

func (wsDataflow) Capabilities() dataflow.Capabilities {
	return dataflow.Capabilities{
		ID:           DataflowID,
		Name:         "Weight-stationary",
		Description:  "ISAAC/PipeLayer-style 2D crossbars: weights resident, inputs stream bit-serially",
		Phases:       []sim.Phase{sim.Inference, sim.Training},
		Configurable: true,
		Aliases:      []string{"baseline", "weight-stationary"},
	}
}

func (wsDataflow) DefaultConfig() arch.Config { return arch.Baseline() }

func (wsDataflow) New(cfg arch.Config) (sim.Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return sim.WrapID(New(cfg), DataflowID), nil
}

func (wsDataflow) Area(cfg arch.Config) float64 { return cfg.Area().Total() }

// LayerCost prices one compute layer per batch: WS repeats the forward
// pass for every image; training adds the activation round-trip plus
// the transposed and gradient passes.
func (wsDataflow) LayerCost(cfg arch.Config, l nn.Layer, phase sim.Phase) (metrics.Result, error) {
	if err := cfg.Validate(); err != nil {
		return metrics.Result{}, err
	}
	m := New(cfg)
	if !l.IsCompute() {
		return m.postProcess(l), nil
	}
	b := float64(cfg.BatchSize)
	r := scale(m.forwardLayer(l), b)
	if phase == sim.Training {
		r = r.Plus(scale(m.backwardLayer(l), b))
		r = r.Plus(scale(m.gradientLayer(l), b))
	}
	return r, nil
}

// Mapping space: square crossbar sizes. Larger crossbars amortize
// periphery but scan more columns per shared ADC; the legal points are
// bounded by the input buffer — one unrolled window per output position
// must fit the 64 KB stream buffer (crossbar rows × activation bits) —
// and by total crossbar demand staying within a multiplex bound of the
// chip's array budget.
const (
	maxWSMultiplex = 64
)

var wsArraySizes = []int{32, 64, 128, 256}

func (d wsDataflow) Mappings(base arch.Config, net *nn.Network) []dataflow.Mapping {
	out := []dataflow.Mapping{{}}
	if net == nil {
		return out
	}
	for _, s := range wsArraySizes {
		m := dataflow.Mapping{Rows: s, Cols: s, LoopOrder: "weight-resident"}
		cfg := d.Apply(base, m)
		if cfg == base {
			continue
		}
		if cfg.Validate() != nil {
			continue
		}
		if !wsFits(cfg, net) {
			continue
		}
		out = append(out, m)
	}
	return out
}

// wsFits checks the buffer- and crossbar-capacity constraints of cfg
// against net's worst layer.
func wsFits(cfg arch.Config, net *nn.Network) bool {
	m := New(cfg)
	var crossbars int64
	for _, l := range net.Layers {
		if !l.IsCompute() {
			continue
		}
		g := m.layerGeometry(l)
		// One streamed window must fit the buffer alongside its output.
		windowBytes := g.windowElems * int64(cfg.ActivationBits) / 8
		if windowBytes > int64(cfg.Buffer.CapacityBytes) {
			return false
		}
		crossbars += g.crossbars
	}
	return crossbars <= int64(cfg.Subarrays())*maxWSMultiplex
}

func (wsDataflow) Apply(base arch.Config, m dataflow.Mapping) arch.Config {
	cfg := base
	if m.Rows > 0 {
		cfg.SubarrayRows = m.Rows
	}
	if m.Cols > 0 {
		cfg.SubarrayCols = m.Cols
	}
	if m.Planes > 0 {
		cfg.StackedPlanes = m.Planes
	}
	if !m.IsZero() && cfg != base {
		cfg.Name = fmt.Sprintf("%s[%s]", base.Name, m.Label())
	}
	return cfg
}
