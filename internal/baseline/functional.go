package baseline

import (
	"github.com/inca-arch/inca/internal/rram"
	"github.com/inca-arch/inca/internal/tensor"
)

// FuncOptions configures functional WS execution.
type FuncOptions struct {
	Stride int
	Pad    int
	// Noise perturbs the programmed weights (the WS nonideality location
	// of Table VI).
	Noise *rram.NoiseModel
	// Quantize, when non-nil, is the per-column ADC transfer function.
	Quantize func(float64) float64
	// Stuck pins crossbar cells at stuck-at-LRS/HRS conductances (indices
	// into the unrolled [K²C × N] weight matrix, row-major) — the
	// device-level fault-injection hook.
	Stuck []rram.StuckFault
}

// FunctionalConv2D executes a convolution the weight-stationary way: the
// kernel tensor is unrolled into a [K²C × N] matrix programmed into a
// crossbar, the input is im2col-unrolled, and each output position is one
// matrix-vector operation with column-wise accumulation (ISAAC-style).
// It returns the [N, OH, OW] output and the device event counts.
func FunctionalConv2D(x, w *tensor.Tensor, opt FuncOptions) (*tensor.Tensor, rram.Stats) {
	if opt.Stride < 1 {
		opt.Stride = 1
	}
	n, c, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	spec := tensor.ConvSpec{Stride: opt.Stride, Pad: opt.Pad}
	oh := spec.OutSize(x.Dim(1), kh)
	ow := spec.OutSize(x.Dim(2), kw)

	// Unrolled weight matrix: rows = K²C window elements, cols = N kernels.
	rows := kh * kw * c
	xbar := rram.NewCrossbar(rows, n)
	if opt.Noise != nil {
		xbar.SetNoise(opt.Noise)
	}
	if opt.Quantize != nil {
		xbar.SetQuantizer(opt.Quantize)
	}
	if len(opt.Stuck) > 0 {
		xbar.SetStuckFaults(opt.Stuck)
	}
	wm := tensor.New(rows, n)
	for on := 0; on < n; on++ {
		for ic := 0; ic < c; ic++ {
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					wm.Set(w.At(on, ic, ky, kx), (ic*kh+ky)*kw+kx, on)
				}
			}
		}
	}
	xbar.Program(wm)

	cols := tensor.Im2Col(x, kh, kw, spec)
	out := tensor.New(n, oh, ow)
	vec := tensor.New(rows)
	for pos := 0; pos < oh*ow; pos++ {
		for r := 0; r < rows; r++ {
			vec.Set(cols.At(r, pos), r)
		}
		res := xbar.MVM(vec)
		for on := 0; on < n; on++ {
			out.Set(res.At(on), on, pos/ow, pos%ow)
		}
	}
	return out, xbar.Stats()
}
