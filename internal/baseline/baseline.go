// Package baseline implements the paper's comparison architecture: a 2D
// weight-stationary RRAM accelerator modeled after ISAAC [42] for the
// pipelined feedforward phase and PipeLayer [48] for training.
//
// Weights are unrolled (GEMM-style) onto 128×128 1T1R crossbars, inputs
// stream bit-serially from buffers, every output is redirected to the
// buffer for the next layer, and training provisions separate transposed-
// weight crossbars plus activation round-trips through the memory
// hierarchy — exactly the four WS limitations the paper analyzes in §III.A.
package baseline

import (
	"github.com/inca-arch/inca/internal/analog"
	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/mem"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/noc"
	"github.com/inca-arch/inca/internal/sim"
)

// Machine is a configured WS baseline accelerator.
type Machine struct {
	Cfg  arch.Config
	hier mem.Hierarchy
	adc  analog.ADC
	dac  analog.DAC
	dig  analog.Digital
	tree noc.HTree
}

// New builds a machine from a configuration (normally arch.Baseline()).
func New(cfg arch.Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic("baseline: " + err.Error())
	}
	return &Machine{
		Cfg:  cfg,
		hier: mem.Hierarchy{Buf: cfg.Buffer, Dram: cfg.DRAM},
		adc:  analog.NewADC(cfg.ADCBits),
		dac:  analog.NewDAC(1),
		dig:  analog.NewDigital(),
		tree: noc.Standard(cfg.MacroSize, cfg.TileSize, cfg.Tiles),
	}
}

// geometry captures how one layer maps onto the unrolled crossbars.
type geometry struct {
	positions   int64 // output positions computed (OH×OW, 1 for FC)
	rows        int64 // unrolled matrix rows = window elements
	cols        int64 // weight columns = OutC × WeightBits (1-bit cells)
	rowBlocks   int64
	colBlocks   int64
	crossbars   int64
	usefulCells int64 // cells holding real weights
	windowElems int64 // input elements fetched per position
}

func (m *Machine) layerGeometry(l nn.Layer) geometry {
	var g geometry
	wb := int64(m.Cfg.WeightBits / m.Cfg.CellBits)
	switch l.Kind {
	case nn.Conv:
		g.positions = int64(l.OutH) * int64(l.OutW)
		g.rows = int64(l.KH) * int64(l.KW) * int64(l.InC)
		g.cols = int64(l.OutC) * wb
		g.windowElems = g.rows
		g.usefulCells = g.rows * g.cols
	case nn.Depthwise:
		// Block-diagonal mapping: the unrolled input vector carries all
		// channels, but each output column accumulates only its own
		// channel's K×K window — "nine of 128 cells in a column" (§V.B.4).
		g.positions = int64(l.OutH) * int64(l.OutW)
		g.rows = int64(l.KH) * int64(l.KW) * int64(l.InC)
		g.cols = int64(l.OutC) * wb
		g.windowElems = g.rows
		g.usefulCells = int64(l.KH) * int64(l.KW) * g.cols // diagonal blocks only
	case nn.FC:
		g.positions = 1
		g.rows = int64(l.InC)
		g.cols = int64(l.OutC) * wb
		g.windowElems = g.rows
		g.usefulCells = g.rows * g.cols
	default:
		return g
	}
	sr := int64(m.Cfg.SubarrayRows)
	sc := int64(m.Cfg.SubarrayCols)
	g.rowBlocks = (g.rows + sr - 1) / sr
	g.colBlocks = (g.cols + sc - 1) / sc
	g.crossbars = g.rowBlocks * g.colBlocks
	return g
}

// pass charges one compute pass over a layer-shaped workload for a single
// image: g describes the mapping, inputBytes/outputBytes the streamed
// working sets. It returns the per-image result.
func (m *Machine) pass(g geometry, inputBytes, outputBytes int64) metrics.Result {
	var r metrics.Result
	if g.positions == 0 {
		return r
	}
	actBits := int64(m.Cfg.ActivationBits)
	cellsPerXbar := int64(m.Cfg.SubarrayRows) * int64(m.Cfg.SubarrayCols)
	dev := m.Cfg.Device

	// --- Array events, per position per input-bit cycle ---
	// Bit-serial inputs through 1-bit DACs: a row whose input bit is 0
	// drives no voltage that cycle, so on average half the rows are active
	// (rowActivity); active cells dissipate the on/off average since the
	// stored weight bits are equally likely either state.
	const rowActivity = 0.5
	usefulReads := g.usefulCells
	offReads := g.crossbars*cellsPerXbar - g.usefulCells
	adcPerCycle := g.crossbars * int64(m.Cfg.SubarrayCols) // every column scanned
	dacPerCycle := g.rows * g.colBlocks                    // rows driven per column block
	cycles := g.positions * actBits

	r.Counts.RRAMReads = usefulReads * cycles
	r.Counts.ADCConversions = adcPerCycle * cycles
	r.Counts.DACConversions = dacPerCycle * cycles
	// Merge row-block partials and shift-accumulate the bit planes.
	adds := (analog.TreeAdds(g.rowBlocks) + actBits) * g.cols * g.positions
	r.Counts.DigitalOps = adds

	r.Energy.Add(metrics.RRAMArray,
		float64(usefulReads*cycles)*rowActivity*dev.ReadEnergyAvg()+
			float64(offReads*cycles)*rowActivity*dev.ReadEnergyOff())
	r.Energy.Add(metrics.ADC, m.adc.ConversionEnergy(r.Counts.ADCConversions))
	r.Energy.Add(metrics.DAC, float64(r.Counts.DACConversions)*m.dac.EnergyPerConv)
	r.Energy.Add(metrics.Digital, float64(adds)*m.dig.AddEnergy)

	// Interconnect: per column, the row-block partials reduce through the
	// macro/tile H-tree, and each input row value broadcasts to every
	// column block it feeds.
	reduceJ, _ := m.tree.ReduceCost(g.rowBlocks)
	bcastJ, _ := m.tree.BroadcastCost(g.colBlocks)
	r.Energy.Add(metrics.Digital,
		reduceJ*float64(g.cols*cycles)+
			bcastJ*float64(g.rows*cycles)*rowActivity)

	// --- Memory traffic ---
	// Fetch: the input window is re-fetched for every output position
	// (Eq. 5 × positions); residency is the fraction of the input map that
	// fits in the 64 KB buffer.
	fetchBits := g.windowElems * actBits * g.positions
	resIn := m.hier.ResidentFraction(inputBytes)
	bufJ, dramJ, lat := m.hier.TrafficCost(fetchBits, resIn, false)
	r.Energy.Add(metrics.Buffer, bufJ)
	r.Energy.Add(metrics.DRAM, dramJ)
	memLat := lat
	r.Counts.BufferAccesses += m.Cfg.Buffer.Beats(fetchBits)
	r.Counts.DRAMAccesses += int64(float64(fetchBits/8) * (1 - resIn))

	// Save: every output goes back through the buffer (Eq. 6, the ISAAC
	// pipelining requirement).
	// One actBits-wide value per output channel per position.
	outChannels := g.cols / int64(m.Cfg.WeightBits/m.Cfg.CellBits)
	saveBits := g.positions * outChannels * actBits
	resOut := m.hier.ResidentFraction(outputBytes)
	bufJ, dramJ, lat = m.hier.TrafficCost(saveBits, resOut, true)
	r.Energy.Add(metrics.Buffer, bufJ)
	r.Energy.Add(metrics.DRAM, dramJ)
	memLat += lat
	r.Counts.BufferAccesses += m.Cfg.Buffer.Beats(saveBits)
	r.Counts.DRAMAccesses += int64(float64(saveBits/8) * (1 - resOut))

	// --- Latency ---
	// Per input-bit cycle the shared per-crossbar ADC scans all columns
	// serially; crossbars operate in parallel.
	cycleTime := dev.ReadPulse
	if t := float64(m.Cfg.SubarrayCols) * m.adc.ConvLatency; t > cycleTime {
		cycleTime = t
	}
	computeTime := float64(cycles) * cycleTime
	if memLat > computeTime {
		r.Latency = memLat
	} else {
		r.Latency = computeTime
	}
	return r
}

// forwardLayer returns the per-image forward result for a compute layer.
func (m *Machine) forwardLayer(l nn.Layer) metrics.Result {
	g := m.layerGeometry(l)
	return m.pass(g, l.InputElems(), l.OutputElems())
}

// backwardLayer models the error-propagation convolution δ_{l+1} * W^T
// (Eq. 3): a pass with input/output roles swapped, running on the
// transposed-weight crossbars.
func (m *Machine) backwardLayer(l nn.Layer) metrics.Result {
	t := l
	t.InC, t.OutC = l.OutC, l.InC
	t.InH, t.InW, t.OutH, t.OutW = l.OutH, l.OutW, l.InH, l.InW
	g := m.layerGeometry(t)
	return m.pass(g, t.InputElems(), t.OutputElems())
}

// gradientLayer models the weight-gradient convolution δ * x (Eq. 4),
// which costs the same MACs as the forward pass and additionally streams
// the stored activations back through the hierarchy.
func (m *Machine) gradientLayer(l nn.Layer) metrics.Result {
	g := m.layerGeometry(l)
	r := m.pass(g, l.InputElems(), 0)
	// Re-read the saved activations of this layer (they were written out
	// during the forward pass of the batch).
	bits := l.InputElems() * int64(m.Cfg.ActivationBits)
	res := m.hier.ResidentFraction(l.InputElems())
	bufJ, dramJ, lat := m.hier.TrafficCost(bits, res, false)
	r.Energy.Add(metrics.Buffer, bufJ)
	r.Energy.Add(metrics.DRAM, dramJ)
	r.Latency += lat
	return r
}

// programWeights returns the one-time cost of writing the (unrolled)
// weights into the crossbars; transposed doubles it for training
// (Limitation 2).
func (m *Machine) programWeights(net *nn.Network, transposed bool) metrics.Result {
	var r metrics.Result
	var cells int64
	for _, l := range net.Layers {
		if !l.IsCompute() {
			continue
		}
		g := m.layerGeometry(l)
		cells += g.usefulCells
	}
	if transposed {
		cells *= 2
	}
	r.Counts.RRAMWrites = cells
	r.Energy.Add(metrics.RRAMArray, float64(cells)*m.Cfg.Device.WriteEnergy())
	// Writes proceed row-parallel across crossbars; charge one pulse per
	// crossbar row set.
	r.Latency = float64(cells/int64(m.Cfg.SubarrayCols)+1) * m.Cfg.Device.WritePulse / float64(m.Cfg.Subarrays())
	// The weight data itself travels DRAM -> buffer -> arrays; this DRAM
	// traffic is what makes DRAM the largest slice of the WS breakdown in
	// Fig. 6 even at CIFAR scale.
	weightBits := cells / int64(m.Cfg.WeightBits/m.Cfg.CellBits) * int64(m.Cfg.WeightBits)
	bufJ, dramJ, lat := m.hier.TrafficCost(weightBits, 0, false)
	r.Energy.Add(metrics.Buffer, bufJ)
	r.Energy.Add(metrics.DRAM, dramJ)
	r.Counts.DRAMAccesses += weightBits / 8
	r.Latency += lat
	return r
}

// utilization returns useful/allocated cells for a layer.
func (m *Machine) utilization(l nn.Layer) float64 {
	g := m.layerGeometry(l)
	if g.crossbars == 0 {
		return 0
	}
	alloc := g.crossbars * int64(m.Cfg.SubarrayRows) * int64(m.Cfg.SubarrayCols)
	return float64(g.usefulCells) / float64(alloc)
}

// Simulate executes one batch of the network in the given phase.
func (m *Machine) Simulate(net *nn.Network, phase sim.Phase) *sim.Report {
	rep := &sim.Report{
		Arch:    m.Cfg.Name,
		Network: net.Name,
		Phase:   phase,
		Batch:   m.Cfg.BatchSize,
	}
	b := int64(m.Cfg.BatchSize)

	var perLayerLat []float64
	var total metrics.Result
	for _, l := range net.Layers {
		if !l.IsCompute() {
			// Shared digital post-processing units (ReLU/pooling/adders,
			// Table V) — element-wise, pipelined behind the crossbars.
			total = total.Plus(m.postProcess(l))
			continue
		}
		g := m.layerGeometry(l)
		lr := sim.LayerResult{
			Layer:          l,
			Utilization:    m.utilization(l),
			AllocatedCells: g.crossbars * int64(m.Cfg.SubarrayRows) * int64(m.Cfg.SubarrayCols),
		}
		fwd := m.forwardLayer(l)
		layer := scale(fwd, float64(b)) // every image repeats the work

		if phase == sim.Training {
			// Activations must round-trip to memory for the backward pass;
			// the batch working set almost never fits on chip.
			actBits := l.InputElems() * int64(m.Cfg.ActivationBits) * b
			res := m.hier.ResidentFraction(l.InputElems() * b)
			bufJ, dramJ, lat := m.hier.TrafficCost(actBits, res, true)
			layer.Energy.Add(metrics.Buffer, bufJ)
			layer.Energy.Add(metrics.DRAM, dramJ)
			layer.Latency += lat

			layer = layer.Plus(scale(m.backwardLayer(l), float64(b)))
			layer = layer.Plus(scale(m.gradientLayer(l), float64(b)))
		}
		lr.Result = layer
		rep.Layers = append(rep.Layers, lr)
		total = total.Plus(layer)
		perLayerLat = append(perLayerLat, layer.Latency/float64(b))
	}

	// Latency composition. Inference pipelines layer-wise (ISAAC): one
	// image flows through all layers, subsequent images follow the
	// bottleneck stage. Training cannot pipeline that way — the backward
	// sweep depends on the whole forward pass and the weight update closes
	// the loop, so "the WS baseline needs repeated operations for each
	// image in the same batch" (§V.B.4) and images serialize.
	var sum, max float64
	for _, t := range perLayerLat {
		sum += t
		if t > max {
			max = t
		}
	}
	if phase == sim.Training {
		total.Latency = float64(b) * sum
	} else {
		total.Latency = sum + float64(b-1)*max
	}

	prog := m.programWeights(net, phase == sim.Training)
	total = total.Plus(prog)

	if phase == sim.Training {
		// Weight update: rewrite original + transposed weight cells once
		// per batch.
		var upd metrics.Result
		var cells int64
		for _, l := range net.Layers {
			if l.IsCompute() {
				cells += m.layerGeometry(l).usefulCells
			}
		}
		upd.Counts.RRAMWrites = 2 * cells
		upd.Energy.Add(metrics.RRAMArray, float64(2*cells)*m.Cfg.Device.WriteEnergy())
		upd.Latency = float64(cells/int64(m.Cfg.SubarrayCols)+1) * m.Cfg.Device.WritePulse / float64(m.Cfg.Subarrays())
		total = total.Plus(upd)
	}

	rep.Total = total
	return rep
}

// postProcess charges the digital ReLU / pooling / residual-add units for
// a non-compute layer (one operation per element per image, no added
// latency — the units pipeline behind the crossbar stages).
func (m *Machine) postProcess(l nn.Layer) metrics.Result {
	var r metrics.Result
	var ops int64
	switch l.Kind {
	case nn.ReLU, nn.Add:
		ops = l.OutputElems()
	case nn.MaxPool, nn.AvgPool, nn.GlobalAvgPool:
		ops = l.InputElems()
	default:
		return r
	}
	ops *= int64(m.Cfg.BatchSize)
	r.Counts.DigitalOps = ops
	r.Energy.Add(metrics.Digital, float64(ops)*m.dig.AddEnergy)
	return r
}

// scale multiplies a result's energy, latency, and counts by f.
func scale(r metrics.Result, f float64) metrics.Result {
	out := metrics.Result{
		Energy:  r.Energy.Scaled(f),
		Latency: r.Latency * f,
	}
	out.Counts = metrics.Counts{
		RRAMReads:      int64(float64(r.Counts.RRAMReads) * f),
		RRAMWrites:     int64(float64(r.Counts.RRAMWrites) * f),
		ADCConversions: int64(float64(r.Counts.ADCConversions) * f),
		DACConversions: int64(float64(r.Counts.DACConversions) * f),
		BufferAccesses: int64(float64(r.Counts.BufferAccesses) * f),
		DRAMAccesses:   int64(float64(r.Counts.DRAMAccesses) * f),
		DigitalOps:     int64(float64(r.Counts.DigitalOps) * f),
	}
	return out
}
