package sim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/core"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// TestReportJSONRoundTrip pins the wire schema both ways on a real
// simulation: marshal → unmarshal → marshal must be byte-identical (the
// HTTP client depends on this to hand back reports indistinguishable
// from server-side ones).
func TestReportJSONRoundTrip(t *testing.T) {
	sm := sim.Wrap(core.New(arch.INCA()))
	rep, err := sm.Simulate(context.Background(), nn.LeNet5(), sim.Training)
	if err != nil {
		t.Fatal(err)
	}
	first, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded sim.Report
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip is not byte-identical:\n%s\n%s", first, second)
	}

	if decoded.Arch != rep.Arch || decoded.Network != rep.Network ||
		decoded.Phase != rep.Phase || decoded.Batch != rep.Batch {
		t.Fatalf("identity fields lost: %+v", decoded)
	}
	if decoded.Total.Energy.Total() != rep.Total.Energy.Total() {
		t.Fatalf("energy total drifted: %v vs %v",
			decoded.Total.Energy.Total(), rep.Total.Energy.Total())
	}
	if decoded.Total.Latency != rep.Total.Latency {
		t.Fatalf("latency drifted: %v vs %v", decoded.Total.Latency, rep.Total.Latency)
	}
	if len(decoded.Layers) != len(rep.Layers) {
		t.Fatalf("layer count: %d vs %d", len(decoded.Layers), len(rep.Layers))
	}
	for i := range decoded.Layers {
		if decoded.Layers[i].Layer.Kind != rep.Layers[i].Layer.Kind {
			t.Fatalf("layer %d kind: %v vs %v", i,
				decoded.Layers[i].Layer.Kind, rep.Layers[i].Layer.Kind)
		}
	}
	if decoded.Utilization() != rep.Utilization() {
		t.Fatalf("utilization drifted: %v vs %v", decoded.Utilization(), rep.Utilization())
	}
	if decoded.Throughput() != rep.Throughput() {
		t.Fatalf("throughput drifted: %v vs %v", decoded.Throughput(), rep.Throughput())
	}
}

func TestReportJSONRejectsBadEnums(t *testing.T) {
	var rep sim.Report
	if err := json.Unmarshal([]byte(`{"phase":"speculation"}`), &rep); err == nil {
		t.Fatal("unknown phase decoded without error")
	}
	if err := json.Unmarshal([]byte(
		`{"phase":"inference","layers":[{"kind":"quantum"}]}`), &rep); err == nil {
		t.Fatal("unknown layer kind decoded without error")
	}
	if err := json.Unmarshal([]byte(
		`{"phase":"inference","total":{"energy":{"dram_j":-1}}}`), &rep); err == nil {
		t.Fatal("negative energy decoded without error")
	}
}
