package sim_test

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/core"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/sim"
)

// stepClock is a deterministic clock advancing 1ms per reading, so
// traced spans get distinct, pinned timestamps without wall time.
type stepClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(time.Millisecond)
	return c.now
}

// TestTracedLayersMatchCSV is the reconciliation golden: a traced run's
// sim/layer leaf spans must agree row-for-row with the report's CSV
// per-layer table — same layers, same order, and byte-identical
// formatted latency/energy/utilization values.
func TestTracedLayersMatchCSV(t *testing.T) {
	tr := obs.NewTracer(obs.WithClock((&stepClock{now: time.Unix(0, 0)}).Now), obs.WithRing(256), obs.WithIDSeed(1))
	s := sim.Wrap(core.New(arch.INCA()))
	net := nn.LeNet5()

	ctx, root := tr.Start(context.Background(), "test")
	rep, err := s.Simulate(ctx, net, sim.Inference)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// rows: header, one per layer, TOTAL.
	layerRows := rows[1 : len(rows)-1]

	var leaves []obs.SpanData
	for _, sd := range tr.Ring().Trace(root.TraceID()) {
		if sd.Name == sim.SpanLayer {
			leaves = append(leaves, sd)
		}
	}
	if len(leaves) == 0 {
		t.Fatal("traced run emitted no sim/layer leaf spans")
	}
	if len(leaves) != len(layerRows) {
		t.Fatalf("%d leaf spans vs %d CSV layer rows", len(leaves), len(layerRows))
	}
	// Leaf spans complete in emission order, which is report layer order.
	for i, leaf := range leaves {
		row := layerRows[i]
		attrStr := func(key string) string {
			v, ok := leaf.Attr(key)
			if !ok {
				t.Fatalf("leaf %d missing attr %s", i, key)
			}
			return fmt.Sprint(v)
		}
		attrSci := func(key string) string {
			v, ok := leaf.Attr(key)
			if !ok {
				t.Fatalf("leaf %d missing attr %s", i, key)
			}
			return fmt.Sprintf("%.6e", v)
		}
		// CSV columns: layer, kind, energy_total_J, ..., latency_s (9), utilization (10).
		if got, want := attrStr(sim.AttrLayer), row[0]; got != want {
			t.Errorf("leaf %d layer = %q, CSV row has %q", i, got, want)
		}
		if got, want := attrStr(sim.AttrKind), row[1]; got != want {
			t.Errorf("leaf %d kind = %q, CSV row has %q", i, got, want)
		}
		if got, want := attrSci(sim.AttrEnergyJ), row[2]; got != want {
			t.Errorf("leaf %d energy = %s, CSV row has %s", i, got, want)
		}
		if got, want := attrSci(sim.AttrLatencyS), row[9]; got != want {
			t.Errorf("leaf %d latency = %s, CSV row has %s", i, got, want)
		}
		v, _ := leaf.Attr(sim.AttrUtilization)
		if got, want := fmt.Sprintf("%.4f", v), row[10]; got != want {
			t.Errorf("leaf %d utilization = %s, CSV row has %s", i, got, want)
		}
	}

	// The enclosing sim/simulate span carries the report totals.
	var simSpan *obs.SpanData
	for _, sd := range tr.Ring().Trace(root.TraceID()) {
		if sd.Name == sim.SpanSimulate {
			sd := sd
			simSpan = &sd
		}
	}
	if simSpan == nil {
		t.Fatal("no sim/simulate span")
	}
	if v, _ := simSpan.Attr(sim.AttrLatencyS); v != rep.Total.Latency {
		t.Errorf("sim span latency_s = %v, report total %v", v, rep.Total.Latency)
	}
	if v, _ := simSpan.Attr("arch"); v != rep.Arch {
		t.Errorf("sim span arch = %v, want %v", v, rep.Arch)
	}
	if v, _ := simSpan.Attr("layers"); v != int64(len(rep.Layers)) {
		t.Errorf("sim span layers = %v, want %d", v, len(rep.Layers))
	}
}

// TestUntracedSimulateEmitsNothing pins the off path: without a span in
// the context, Simulate must not allocate tracing state.
func TestUntracedSimulateEmitsNothing(t *testing.T) {
	s := sim.Wrap(core.New(arch.INCA()))
	rep, err := s.Simulate(context.Background(), nn.LeNet5(), sim.Inference)
	if err != nil || rep == nil {
		t.Fatalf("untraced simulate failed: %v", err)
	}
}

// TestTracedPanicEndsSpanWithError pins that a panicking machine still
// closes its sim/simulate span, carrying the converted error.
func TestTracedPanicEndsSpanWithError(t *testing.T) {
	tr := obs.NewTracer(obs.WithClock((&stepClock{now: time.Unix(0, 0)}).Now), obs.WithRing(16), obs.WithIDSeed(1))
	s := sim.Wrap(panicMachine{})
	ctx, root := tr.Start(context.Background(), "test")
	_, err := s.Simulate(ctx, nn.LeNet5(), sim.Inference)
	if err == nil {
		t.Fatal("want panic converted to error")
	}
	root.End()
	var found bool
	for _, sd := range tr.Ring().Trace(root.TraceID()) {
		if sd.Name == sim.SpanSimulate {
			found = true
			if _, ok := sd.Attr("error"); !ok {
				t.Error("sim span missing error attribute after panic")
			}
		}
	}
	if !found {
		t.Fatal("panicking simulate left no sim/simulate span")
	}
}

type panicMachine struct{}

func (panicMachine) Simulate(*nn.Network, sim.Phase) *sim.Report { panic("boom") }
