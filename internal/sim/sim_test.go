package sim

import (
	"errors"
	"strings"
	"testing"

	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
)

func TestPhaseString(t *testing.T) {
	if Inference.String() != "inference" || Training.String() != "training" {
		t.Fatal("phase names mismatch")
	}
}

func TestUtilizationWeighting(t *testing.T) {
	r := &Report{
		Layers: []LayerResult{
			{Layer: nn.Layer{Kind: nn.Conv, OutC: 1, OutH: 1, OutW: 1, InC: 1, KH: 1, KW: 1},
				Utilization: 1.0, AllocatedCells: 100},
			{Layer: nn.Layer{Kind: nn.Conv, OutC: 1, OutH: 1, OutW: 1, InC: 1, KH: 1, KW: 1},
				Utilization: 0.0, AllocatedCells: 300},
		},
	}
	if got := r.Utilization(); got != 0.25 {
		t.Fatalf("Utilization = %v, want 0.25 (allocation-weighted)", got)
	}
}

func TestUtilizationIgnoresNonCompute(t *testing.T) {
	r := &Report{
		Layers: []LayerResult{
			{Layer: nn.Layer{Kind: nn.ReLU}, Utilization: 0.1, AllocatedCells: 1000},
			{Layer: nn.Layer{Kind: nn.Conv, OutC: 1, OutH: 1, OutW: 1, InC: 1, KH: 1, KW: 1},
				Utilization: 0.5, AllocatedCells: 10},
		},
	}
	if got := r.Utilization(); got != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
	empty := &Report{}
	if empty.Utilization() != 0 {
		t.Fatal("empty report should have zero utilization")
	}
}

func TestEnergyPerImageAndThroughput(t *testing.T) {
	var res metrics.Result
	res.Energy.Add(metrics.ADC, 64)
	res.Latency = 2
	r := &Report{Batch: 64, Total: res}
	if got, err := r.EnergyPerImage(); err != nil || got != 1 {
		t.Fatalf("EnergyPerImage = %v, %v, want 1", got, err)
	}
	if got := r.Throughput(); got != 32 {
		t.Fatalf("Throughput = %v, want 32", got)
	}
	zero := &Report{}
	if _, err := zero.EnergyPerImage(); !errors.Is(err, ErrZeroBatch) {
		t.Fatalf("zero-batch EnergyPerImage err = %v, want ErrZeroBatch", err)
	}
	var nilRep *Report
	if _, err := nilRep.EnergyPerImage(); !errors.Is(err, ErrEmptyReport) {
		t.Fatalf("nil-report EnergyPerImage err = %v, want ErrEmptyReport", err)
	}
	if zero.Throughput() != 0 {
		t.Fatal("zero report should not divide by zero")
	}
}

func TestReportString(t *testing.T) {
	r := &Report{Arch: "INCA", Network: "VGG16", Phase: Training, Batch: 64}
	s := r.String()
	for _, want := range []string{"INCA", "VGG16", "training", "64"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
