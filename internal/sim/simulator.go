package sim

import (
	"context"
	"errors"
	"fmt"

	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/obs"
)

// Sentinel errors shared by the v2 simulation API. Callers test them with
// errors.Is.
var (
	// ErrNilNetwork reports a nil *nn.Network argument.
	ErrNilNetwork = errors.New("sim: nil network")
	// ErrEmptyNetwork reports a network with no layers.
	ErrEmptyNetwork = errors.New("sim: network has no layers")
	// ErrEmptyReport reports a nil or layer-less report where per-layer or
	// per-image data is required.
	ErrEmptyReport = errors.New("sim: empty report")
	// ErrZeroBatch reports a report whose batch size is not positive, so
	// per-image quantities are undefined.
	ErrZeroBatch = errors.New("sim: report batch size is not positive")
	// ErrSimulatorPanic reports a legacy Machine that panicked
	// mid-simulation; Wrap converts the panic into this error so one bad
	// cell cannot kill a whole sweep's worker pool. The panic value is in
	// the wrapping error's message.
	ErrSimulatorPanic = errors.New("sim: simulator panicked")
)

// Simulator is the v2 execution interface: context-aware and
// error-returning. Implementations must be safe for concurrent use — the
// sweep engine calls Simulate from many goroutines.
type Simulator interface {
	// Simulate executes the network for one batch in the given phase. It
	// returns ErrNilNetwork for a nil network, an error wrapping
	// ctx.Err() when the context is cancelled or past its deadline, and
	// an error for an unknown phase.
	Simulate(ctx context.Context, net *nn.Network, phase Phase) (*Report, error)
}

// Wrap adapts a legacy context-free Machine to the Simulator interface,
// adding the argument validation and context checks the old API lacked
// (it panicked or returned garbage on bad input). The context is honored
// at whole-simulation granularity: a cell that has started runs to
// completion, which for the analytical models is microseconds.
//
// Wrap carries no dataflow identity; errors and spans name the machine
// only by network/phase, exactly as before the dataflow registry
// existed. New callers should prefer WrapID.
func Wrap(m Machine) Simulator { return wrapped{m: m} }

// WrapID is Wrap with a dataflow identity attached: the simulate span
// gains a "dataflow" attribute and panic errors name the dataflow, so
// two backends simulating the same network/phase are distinguishable in
// traces and failure messages. An empty id reproduces Wrap exactly.
func WrapID(m Machine, dataflow string) Simulator {
	return wrapped{m: m, dataflow: dataflow}
}

type wrapped struct {
	m        Machine
	dataflow string
}

func (w wrapped) Simulate(ctx context.Context, net *nn.Network, phase Phase) (rep *Report, err error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if net == nil {
		return nil, ErrNilNetwork
	}
	if len(net.Layers) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrEmptyNetwork, net.Name)
	}
	if phase != Inference && phase != Training {
		return nil, fmt.Errorf("sim: unknown phase %d", int(phase))
	}
	attrs := []obs.Attr{
		obs.String("network", net.Name),
		obs.String("phase", phase.String()),
	}
	if w.dataflow != "" {
		attrs = append(attrs, obs.String("dataflow", w.dataflow))
	}
	ctx, span := obs.StartSpan(ctx, SpanSimulate, attrs...)
	// Legacy machines panic on inputs they cannot simulate (bad layer
	// geometry, unsupported shapes). Surface that as a per-call error
	// instead of letting it unwind a sweep worker goroutine.
	defer func() {
		if r := recover(); r != nil {
			if w.dataflow != "" {
				rep, err = nil, fmt.Errorf("%w: %s: %s/%s: %v", ErrSimulatorPanic, w.dataflow, net.Name, phase, r)
			} else {
				rep, err = nil, fmt.Errorf("%w: %s/%s: %v", ErrSimulatorPanic, net.Name, phase, r)
			}
		}
		span.EndWith(err)
	}()
	rep = w.m.Simulate(net, phase)
	traceReport(ctx, rep)
	return rep, nil
}
