package sim_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/core"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWriteCSVGolden pins the CSV contract downstream tooling parses:
// the exact header and the exact TOTAL row for a reference cell
// (INCA × LeNet5 × inference). The analytical model is deterministic,
// so any drift in either line is a deliberate format or model change —
// regenerate with `go test ./internal/sim -run Golden -update`.
func TestWriteCSVGolden(t *testing.T) {
	sm := sim.Wrap(core.New(arch.INCA()))
	rep, err := sm.Simulate(context.Background(), nn.LeNet5(), sim.Inference)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("csv too short: %q", buf.String())
	}
	got := lines[0] + "\n" + lines[len(lines)-1] + "\n" // header + TOTAL row

	golden := filepath.Join("testdata", "csv_lenet5_inca.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("CSV header/TOTAL drifted from golden:\n got: %s\nwant: %s", got, want)
	}

	if !strings.HasPrefix(lines[len(lines)-1], "TOTAL,-,") {
		t.Errorf("last row is not the TOTAL row: %s", lines[len(lines)-1])
	}
}
