package sim

import (
	"encoding/csv"
	"fmt"
	"io"

	"github.com/inca-arch/inca/internal/metrics"
)

// WriteCSV exports the report's per-layer trace — energies by component,
// latency, utilization, and raw event counts — as CSV, with a final TOTAL
// row. The format is stable for downstream analysis tooling.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"layer", "kind",
		"energy_total_J", "energy_dram_J", "energy_buffer_J", "energy_rram_J",
		"energy_adc_J", "energy_dac_J", "energy_digital_J",
		"latency_s", "utilization",
		"rram_reads", "rram_writes", "adc_conversions", "dac_conversions",
		"buffer_accesses", "dram_bytes", "digital_ops",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("sim: writing csv header: %w", err)
	}
	row := func(name, kind string, res metrics.Result, util float64) []string {
		return []string{
			name, kind,
			fmt.Sprintf("%.6e", res.Energy.Total()),
			fmt.Sprintf("%.6e", res.Energy.Of(metrics.DRAM)),
			fmt.Sprintf("%.6e", res.Energy.Of(metrics.Buffer)),
			fmt.Sprintf("%.6e", res.Energy.Of(metrics.RRAMArray)),
			fmt.Sprintf("%.6e", res.Energy.Of(metrics.ADC)),
			fmt.Sprintf("%.6e", res.Energy.Of(metrics.DAC)),
			fmt.Sprintf("%.6e", res.Energy.Of(metrics.Digital)),
			fmt.Sprintf("%.6e", res.Latency),
			fmt.Sprintf("%.4f", util),
			fmt.Sprint(res.Counts.RRAMReads),
			fmt.Sprint(res.Counts.RRAMWrites),
			fmt.Sprint(res.Counts.ADCConversions),
			fmt.Sprint(res.Counts.DACConversions),
			fmt.Sprint(res.Counts.BufferAccesses),
			fmt.Sprint(res.Counts.DRAMAccesses),
			fmt.Sprint(res.Counts.DigitalOps),
		}
	}
	for _, lr := range r.Layers {
		if err := cw.Write(row(lr.Layer.Name, lr.Layer.Kind.String(), lr.Result, lr.Utilization)); err != nil {
			return fmt.Errorf("sim: writing csv row: %w", err)
		}
	}
	if err := cw.Write(row("TOTAL", "-", r.Total, r.Utilization())); err != nil {
		return fmt.Errorf("sim: writing csv total: %w", err)
	}
	cw.Flush()
	return cw.Error()
}
