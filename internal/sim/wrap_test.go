package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/inca-arch/inca/internal/nn"
)

// panicMachine is a legacy Machine that dies on every input.
type panicMachine struct{}

func (panicMachine) Simulate(*nn.Network, Phase) *Report {
	panic("unsupported layer geometry")
}

// okMachine returns a minimal report.
type okMachine struct{}

func (okMachine) Simulate(net *nn.Network, phase Phase) *Report {
	return &Report{Arch: "ok", Network: net.Name, Phase: phase, Batch: 1}
}

func testNet() *nn.Network {
	return &nn.Network{Name: "t", Layers: []nn.Layer{{Name: "relu", Kind: nn.ReLU}}}
}

// Regression: a panicking legacy Machine used to unwind straight through
// Wrap and kill the sweep worker goroutine that called it. Wrap must
// convert the panic into a per-call error.
func TestWrapRecoversMachinePanic(t *testing.T) {
	s := Wrap(panicMachine{})
	rep, err := s.Simulate(context.Background(), testNet(), Inference)
	if rep != nil {
		t.Fatalf("report = %v, want nil after panic", rep)
	}
	if !errors.Is(err, ErrSimulatorPanic) {
		t.Fatalf("err = %v, want ErrSimulatorPanic", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "unsupported layer geometry") || !strings.Contains(msg, "t/inference") {
		t.Fatalf("error %q should carry the panic value and the cell identity", msg)
	}
}

func TestWrapValidation(t *testing.T) {
	s := Wrap(okMachine{})
	ctx := context.Background()
	if _, err := s.Simulate(ctx, nil, Inference); !errors.Is(err, ErrNilNetwork) {
		t.Fatalf("nil network err = %v", err)
	}
	if _, err := s.Simulate(ctx, &nn.Network{Name: "empty"}, Inference); !errors.Is(err, ErrEmptyNetwork) {
		t.Fatalf("empty network err = %v", err)
	}
	if _, err := s.Simulate(ctx, testNet(), Phase(99)); err == nil {
		t.Fatal("unknown phase must error")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.Simulate(cancelled, testNet(), Inference); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx err = %v", err)
	}
	rep, err := s.Simulate(ctx, testNet(), Inference)
	if err != nil || rep == nil || rep.Network != "t" {
		t.Fatalf("valid call = (%v, %v)", rep, err)
	}
}
