// Package sim defines the execution-level vocabulary shared by the INCA
// simulator, the WS baseline simulator, and the GPU model: phases,
// per-layer results, and whole-network reports.
package sim

import (
	"fmt"

	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
)

// Phase selects what is simulated.
type Phase int

// Simulation phases. Training covers feedforward + backpropagation +
// weight update for one batch (paper §II.B).
const (
	Inference Phase = iota
	Training
)

// String returns the phase's display name.
func (p Phase) String() string {
	if p == Inference {
		return "inference"
	}
	return "training"
}

// MarshalText renders the phase by its wire name, so structs embedding
// a Phase serialize it as "inference"/"training" rather than an opaque
// enum ordinal.
func (p Phase) MarshalText() ([]byte, error) {
	return []byte(p.String()), nil
}

// UnmarshalText parses the wire name back into a Phase.
func (p *Phase) UnmarshalText(b []byte) error {
	switch string(b) {
	case "inference":
		*p = Inference
	case "training":
		*p = Training
	default:
		return fmt.Errorf("unknown phase %q", b)
	}
	return nil
}

// LayerResult carries one layer's simulated execution.
type LayerResult struct {
	Layer       nn.Layer
	Result      metrics.Result
	Utilization float64 // fraction of allocated RRAM cells doing useful work
	// AllocatedCells is the RRAM allocation backing this layer; it weights
	// the network-level utilization (an idle block-diagonal depthwise
	// mapping drags the average down in proportion to the cells it wastes).
	AllocatedCells int64
}

// Report aggregates a network execution on one architecture.
type Report struct {
	Arch    string
	Network string
	Phase   Phase
	Batch   int

	Layers []LayerResult
	// Total includes per-layer results plus any network-level costs
	// (pipeline fill, weight programming, update writes).
	Total metrics.Result
}

// Utilization returns the allocation-weighted mean utilization across
// compute layers — the Fig. 16 metric: total useful cells over total
// allocated cells.
func (r *Report) Utilization() float64 {
	var useful, alloc float64
	for _, lr := range r.Layers {
		if !lr.Layer.IsCompute() || lr.AllocatedCells == 0 {
			continue
		}
		useful += lr.Utilization * float64(lr.AllocatedCells)
		alloc += float64(lr.AllocatedCells)
	}
	if alloc == 0 {
		return 0
	}
	return useful / alloc
}

// EnergyPerImage returns total energy divided by batch size. It returns
// ErrEmptyReport for a nil report and ErrZeroBatch when the batch size is
// not positive (instead of silently reporting zero joules).
func (r *Report) EnergyPerImage() (float64, error) {
	if r == nil {
		return 0, ErrEmptyReport
	}
	if r.Batch <= 0 {
		return 0, ErrZeroBatch
	}
	return r.Total.Energy.Total() / float64(r.Batch), nil
}

// Throughput returns images per second for the simulated batch.
func (r *Report) Throughput() float64 {
	if r.Total.Latency == 0 {
		return 0
	}
	return float64(r.Batch) / r.Total.Latency
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s %s %s batch=%d: %s, %s, util %.1f%%",
		r.Arch, r.Network, r.Phase, r.Batch,
		metrics.FormatEnergy(r.Total.Energy.Total()),
		metrics.FormatTime(r.Total.Latency),
		100*r.Utilization())
}

// Machine is the legacy context-free simulation interface implemented by
// the accelerator models.
//
// Deprecated: new code should consume Simulator (see Wrap), which
// propagates context cancellation and reports invalid input as errors
// instead of panicking.
type Machine interface {
	// Simulate executes the network for one batch in the given phase.
	Simulate(net *nn.Network, phase Phase) *Report
}
