package sim

import (
	"encoding/json"
	"fmt"

	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
)

// JSON encoding of reports. metrics.Energy keeps its per-component tally
// unexported, so the standard encoder would render it as "{}"; the DTOs
// below spell every field out explicitly, giving the HTTP service (and
// any other machine consumer) a stable, self-describing schema. Field
// names and units are frozen: energies in joules, latencies in seconds,
// the phase as its display string. Two reports that are equal produce
// byte-identical encodings, which the serve load tests rely on.

type energyJSON struct {
	TotalJ   float64 `json:"total_j"`
	DRAMJ    float64 `json:"dram_j"`
	BufferJ  float64 `json:"buffer_j"`
	RRAMJ    float64 `json:"rram_j"`
	ADCJ     float64 `json:"adc_j"`
	DACJ     float64 `json:"dac_j"`
	DigitalJ float64 `json:"digital_j"`
}

func encodeEnergy(e metrics.Energy) energyJSON {
	return energyJSON{
		TotalJ:   e.Total(),
		DRAMJ:    e.Of(metrics.DRAM),
		BufferJ:  e.Of(metrics.Buffer),
		RRAMJ:    e.Of(metrics.RRAMArray),
		ADCJ:     e.Of(metrics.ADC),
		DACJ:     e.Of(metrics.DAC),
		DigitalJ: e.Of(metrics.Digital),
	}
}

type countsJSON struct {
	RRAMReads      int64 `json:"rram_reads"`
	RRAMWrites     int64 `json:"rram_writes"`
	ADCConversions int64 `json:"adc_conversions"`
	DACConversions int64 `json:"dac_conversions"`
	BufferAccesses int64 `json:"buffer_accesses"`
	DRAMBytes      int64 `json:"dram_bytes"`
	DigitalOps     int64 `json:"digital_ops"`
}

func encodeCounts(c metrics.Counts) countsJSON {
	return countsJSON{
		RRAMReads:      c.RRAMReads,
		RRAMWrites:     c.RRAMWrites,
		ADCConversions: c.ADCConversions,
		DACConversions: c.DACConversions,
		BufferAccesses: c.BufferAccesses,
		DRAMBytes:      c.DRAMAccesses,
		DigitalOps:     c.DigitalOps,
	}
}

type resultJSON struct {
	Energy   energyJSON `json:"energy"`
	LatencyS float64    `json:"latency_s"`
	Counts   countsJSON `json:"counts"`
}

func encodeResult(r metrics.Result) resultJSON {
	return resultJSON{Energy: encodeEnergy(r.Energy), LatencyS: r.Latency, Counts: encodeCounts(r.Counts)}
}

type layerJSON struct {
	Name           string     `json:"name"`
	Kind           string     `json:"kind"`
	Result         resultJSON `json:"result"`
	Utilization    float64    `json:"utilization"`
	AllocatedCells int64      `json:"allocated_cells"`
}

type reportJSON struct {
	Arch            string      `json:"arch"`
	Network         string      `json:"network"`
	Phase           string      `json:"phase"`
	Batch           int         `json:"batch"`
	EnergyPerImageJ float64     `json:"energy_per_image_j"`
	ThroughputIPS   float64     `json:"throughput_ips"`
	Utilization     float64     `json:"utilization"`
	Total           resultJSON  `json:"total"`
	Layers          []layerJSON `json:"layers"`
}

// MarshalJSON renders the report with explicit units and derived
// per-image figures. EnergyPerImageJ is zero when the batch size is not
// positive (the error-returning accessor remains EnergyPerImage).
func (r *Report) MarshalJSON() ([]byte, error) {
	out := reportJSON{
		Arch:          r.Arch,
		Network:       r.Network,
		Phase:         r.Phase.String(),
		Batch:         r.Batch,
		ThroughputIPS: r.Throughput(),
		Utilization:   r.Utilization(),
		Total:         encodeResult(r.Total),
		Layers:        make([]layerJSON, 0, len(r.Layers)),
	}
	if perImage, err := r.EnergyPerImage(); err == nil {
		out.EnergyPerImageJ = perImage
	}
	for _, lr := range r.Layers {
		out.Layers = append(out.Layers, layerJSON{
			Name:           lr.Layer.Name,
			Kind:           lr.Layer.Kind.String(),
			Result:         encodeResult(lr.Result),
			Utilization:    lr.Utilization,
			AllocatedCells: lr.AllocatedCells,
		})
	}
	return json.Marshal(out)
}

// decodeEnergy rebuilds the per-component tally. The wire total is
// derived, so it is not read back; the decoded Total() recomputes it
// from the same component values and agrees bit-for-bit.
func decodeEnergy(j energyJSON) (metrics.Energy, error) {
	var e metrics.Energy
	for _, c := range []struct {
		comp metrics.Component
		v    float64
	}{
		{metrics.DRAM, j.DRAMJ},
		{metrics.Buffer, j.BufferJ},
		{metrics.RRAMArray, j.RRAMJ},
		{metrics.ADC, j.ADCJ},
		{metrics.DAC, j.DACJ},
		{metrics.Digital, j.DigitalJ},
	} {
		if c.v < 0 {
			return e, fmt.Errorf("sim: negative %v energy %v", c.comp, c.v)
		}
		e.Add(c.comp, c.v)
	}
	return e, nil
}

func decodeResult(j resultJSON) (metrics.Result, error) {
	energy, err := decodeEnergy(j.Energy)
	if err != nil {
		return metrics.Result{}, err
	}
	return metrics.Result{
		Energy:  energy,
		Latency: j.LatencyS,
		Counts: metrics.Counts{
			RRAMReads:      j.Counts.RRAMReads,
			RRAMWrites:     j.Counts.RRAMWrites,
			ADCConversions: j.Counts.ADCConversions,
			DACConversions: j.Counts.DACConversions,
			BufferAccesses: j.Counts.BufferAccesses,
			DRAMAccesses:   j.Counts.DRAMBytes,
			DigitalOps:     j.Counts.DigitalOps,
		},
	}, nil
}

// parsePhaseName inverts Phase.String.
func parsePhaseName(s string) (Phase, error) {
	switch s {
	case "inference":
		return Inference, nil
	case "training":
		return Training, nil
	default:
		return 0, fmt.Errorf("sim: unknown phase %q", s)
	}
}

// parseKindName inverts nn.Kind.String over the defined kinds.
func parseKindName(s string) (nn.Kind, error) {
	for k := nn.Conv; k <= nn.Add; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown layer kind %q", s)
}

// UnmarshalJSON rebuilds a report from its stable wire encoding — the
// HTTP client's decode path. Derived fields (throughput, per-image
// energy, the energy totals) are not read back; they recompute from the
// decoded state and agree with the wire values, so
// marshal → unmarshal → marshal is byte-identical. Layer geometry is not
// part of the wire schema: decoded layers carry only name and kind.
func (r *Report) UnmarshalJSON(b []byte) error {
	var in reportJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	phase, err := parsePhaseName(in.Phase)
	if err != nil {
		return err
	}
	total, err := decodeResult(in.Total)
	if err != nil {
		return err
	}
	out := Report{Arch: in.Arch, Network: in.Network, Phase: phase, Batch: in.Batch, Total: total}
	for _, lj := range in.Layers {
		kind, err := parseKindName(lj.Kind)
		if err != nil {
			return err
		}
		res, err := decodeResult(lj.Result)
		if err != nil {
			return err
		}
		out.Layers = append(out.Layers, LayerResult{
			Layer:          nn.Layer{Name: lj.Name, Kind: kind},
			Result:         res,
			Utilization:    lj.Utilization,
			AllocatedCells: lj.AllocatedCells,
		})
	}
	*r = out
	return nil
}
