package sim

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
)

func TestWriteCSV(t *testing.T) {
	var lr LayerResult
	lr.Layer = nn.Layer{Name: "conv1", Kind: nn.Conv, InC: 1, OutC: 1, KH: 1, KW: 1,
		InH: 1, InW: 1, OutH: 1, OutW: 1}
	lr.Result.Energy.Add(metrics.ADC, 1e-6)
	lr.Result.Latency = 2e-3
	lr.Result.Counts.RRAMReads = 42
	lr.Utilization = 0.5

	rep := &Report{Arch: "INCA", Network: "X", Batch: 4, Layers: []LayerResult{lr}}
	rep.Total = lr.Result

	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 { // header + layer + TOTAL
		t.Fatalf("rows = %d, want 3", len(records))
	}
	if records[0][0] != "layer" || len(records[0]) != 18 {
		t.Fatalf("header = %v", records[0])
	}
	if records[1][0] != "conv1" || records[1][1] != "conv" {
		t.Fatalf("layer row = %v", records[1])
	}
	if records[2][0] != "TOTAL" {
		t.Fatalf("total row = %v", records[2])
	}
	if !strings.Contains(records[1][11], "42") {
		t.Fatalf("rram_reads column = %v", records[1][11])
	}
}
