package sim

import (
	"context"

	"github.com/inca-arch/inca/internal/obs"
)

// Span names emitted by the simulation layer. SpanSimulate wraps one
// whole-network execution; SpanLayer is a leaf span per compute layer
// whose attributes carry the layer's simulated cost — the same values
// Report.WriteCSV exports, so a trace reconciles row-for-row with the
// report's per-layer latency table (pinned by TestTracedLayersMatchCSV).
const (
	SpanSimulate = "sim/simulate"
	SpanLayer    = "sim/layer"
)

// Leaf-span attribute keys. Latency and energy are the simulated
// hardware costs (seconds and joules of modeled accelerator time), not
// wall-clock: spans measure where the simulator spent real time, while
// these attributes carry what the simulated machine would have spent.
const (
	AttrLayer       = "layer"
	AttrKind        = "kind"
	AttrLatencyS    = "latency_s"
	AttrEnergyJ     = "energy_j"
	AttrUtilization = "utilization"
)

// traceReport annotates the simulation span carried by ctx with the
// report's totals and emits one SpanLayer leaf per per-layer result.
// With no span in the context it costs one context lookup.
func traceReport(ctx context.Context, rep *Report) {
	parent := obs.FromContext(ctx)
	if parent == nil || rep == nil {
		return
	}
	parent.SetAttr(
		obs.String("arch", rep.Arch),
		obs.Int("batch", rep.Batch),
		obs.Int("layers", len(rep.Layers)),
		obs.Float64(AttrLatencyS, rep.Total.Latency),
		obs.Float64(AttrEnergyJ, rep.Total.Energy.Total()),
	)
	for _, lr := range rep.Layers {
		_, ls := obs.StartSpan(ctx, SpanLayer,
			obs.String(AttrLayer, lr.Layer.Name),
			obs.String(AttrKind, lr.Layer.Kind.String()),
			obs.Float64(AttrLatencyS, lr.Result.Latency),
			obs.Float64(AttrEnergyJ, lr.Result.Energy.Total()),
			obs.Float64(AttrUtilization, lr.Utilization),
		)
		ls.End()
	}
}
