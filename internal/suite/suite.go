// Package suite assembles every paper table and figure as a named,
// runnable experiment producing a rendered text report. The benchmark
// harness (bench_test.go), cmd/inca-experiments, and the HTTP service's
// /v1/experiments endpoint all drive this package, so the printed rows
// are identical in every path. Experiments accept a context (deadlines
// propagate into the sweep engine) and return errors instead of
// panicking — a server embedding the suite cannot afford a
// panic-per-bad-cell.
package suite

import (
	"context"
	"fmt"

	"github.com/inca-arch/inca/internal/access"
	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/endure"
	"github.com/inca-arch/inca/internal/gpu"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/report"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/sweep"
	"github.com/inca-arch/inca/internal/train"
	"github.com/inca-arch/inca/internal/tune"
)

// engineCache memoizes simulation cells across every experiment of the
// process: Fig. 11, 12, 13a, 14 and 16b all evaluate (INCA, VGG16,
// inference)-style cells, and the sweep engine computes each distinct
// (config, network, phase) key exactly once.
var engineCache = sweep.NewCache()

// CacheStats snapshots the shared experiment cache's counters (exported
// so the HTTP service's /metrics endpoint can report them alongside its
// own cache).
func CacheStats() sweep.CacheStats { return engineCache.Stats() }

// AttachResultStore gives the shared experiment cache a persistent
// second tier (nil detaches): suite cells then survive the process, so
// repeated cmd/inca-experiments invocations warm-start from disk
// instead of re-simulating their whole grids.
func AttachResultStore(t sweep.Tier) { engineCache.SetTier(t) }

// evalPlan runs a plan on the sweep engine with the shared cache and
// returns the reports in deterministic plan order (architectures
// outermost, then overrides, networks, phases). Any cell failure —
// including a cancelled or expired context — is returned to the caller
// rather than panicking.
func evalPlan(ctx context.Context, p sweep.Plan) ([]*sim.Report, error) {
	results, err := sweep.Run(ctx, p, sweep.Options{Cache: engineCache})
	if err != nil {
		return nil, fmt.Errorf("suite: %w", err)
	}
	reps := make([]*sim.Report, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("suite: cell %s: %w", r.Cell.Key(), r.Err)
		}
		reps[i] = r.Report
	}
	return reps, nil
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID   string // e.g. "fig11"
	Name string
	// Heavy marks experiments that train networks (seconds of CPU).
	Heavy bool
	// Run renders the experiment. The context's deadline/cancellation
	// propagates into the sweep engine; cell failures come back as
	// errors.
	Run func(ctx context.Context) (string, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig1b", Name: "Fig 1b: DRAM latency vs bandwidth", Run: Fig1b},
		{ID: "fig6", Name: "Fig 6: WS energy breakdown (CIFAR-10)", Run: Fig6},
		{ID: "fig7a", Name: "Fig 7a: memory accesses WS vs IS", Run: Fig7a},
		{ID: "fig7b", Name: "Fig 7b: unrolled vs direct RRAM demand", Run: Fig7b},
		{ID: "table1", Name: "Table I: accuracy vs bit depth", Heavy: true, Run: Table1},
		{ID: "table2", Name: "Table II: architecture configuration", Run: Table2},
		{ID: "fig11", Name: "Fig 11: energy efficiency", Run: Fig11},
		{ID: "fig12", Name: "Fig 12: layerwise energy (VGG16)", Run: Fig12},
		{ID: "fig13", Name: "Fig 13: ADC energy + INCA breakdown", Run: Fig13},
		{ID: "table3", Name: "Table III: buffer accesses", Run: Table3},
		{ID: "fig14", Name: "Fig 14: speedup", Run: Fig14},
		{ID: "fig15", Name: "Fig 15: INCA vs GPU", Run: Fig15},
		{ID: "fig16", Name: "Fig 16: utilization", Run: Fig16},
		{ID: "table4", Name: "Table IV: memory footprint", Run: Table4},
		{ID: "table5", Name: "Table V: area breakdown", Run: Table5},
		{ID: "table6", Name: "Table VI: noise accuracy", Heavy: true, Run: Table6},
		{ID: "ext-endurance", Name: "Extension: endurance analysis (§VI)", Run: ExtEndurance},
		{ID: "ext-devices", Name: "Extension: IS on other device candidates (§VI)", Run: ExtDevices},
		{ID: "ext-batch", Name: "Extension: batch-size sweep", Run: ExtBatchSweep},
		{ID: "ext-pareto", Name: "Extension: dataflow mapping Pareto frontier", Run: ExtPareto},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("suite: unknown experiment %q", id)
}

// Fig1b renders the DRAM latency curve.
func Fig1b(context.Context) (string, error) {
	d := arch.INCA().DRAM
	fig := &report.Figure{Title: "Fig 1b: DRAM latency vs sustained-bandwidth utilization",
		XLabel: "utilization", YLabel: "latency (ns)"}
	var xs, ys []float64
	for u := 0.0; u <= 0.98; u += 0.07 {
		xs = append(xs, u)
		ys = append(ys, d.LatencyAt(u)*1e9)
	}
	fig.Add("HBM2", xs, ys)
	return fig.String(), nil
}

// Fig6 renders the WS energy breakdown on the CIFAR-10 networks.
func Fig6(ctx context.Context) (string, error) {
	cfg := arch.Baseline()
	cfg.BatchSize = 1
	reps, err := evalPlan(ctx, sweep.Plan{
		Archs:    []sweep.Arch{sweep.ConfigArch(cfg)},
		Networks: []*nn.Network{nn.VGG16CIFAR(), nn.ResNet18CIFAR()},
		Phases:   []sim.Phase{sim.Inference},
	})
	if err != nil {
		return "", err
	}
	t := report.New("Fig 6: WS energy breakdown, CIFAR-10 (share of total)",
		"network", "DRAM", "Buffer", "RRAM", "ADC", "DAC", "Digital")
	for _, r := range reps {
		t.AddRow(append([]any{r.Network}, shares(r)...)...)
	}
	return t.String(), nil
}

func shares(r *sim.Report) []any {
	var out []any
	for _, c := range metrics.Components() {
		out = append(out, r.Total.Energy.Share(c))
	}
	return out
}

// Fig7a renders the access-count comparison at 16-bit precision.
func Fig7a(context.Context) (string, error) {
	t := report.New("Fig 7a: memory accesses, 16-bit data / 256-bit bus",
		"network", "WS", "IS", "WS/IS")
	for _, net := range nn.PaperModels() {
		ac := access.CountNetwork(net, 16, 256)
		t.AddRow(net.Name, float64(ac.Baseline), float64(ac.INCA), ac.Ratio())
	}
	return t.String(), nil
}

// Fig7b renders the unrolling blow-up for the heavy models.
func Fig7b(context.Context) (string, error) {
	t := report.New("Fig 7b: IS RRAM demand, unrolled vs direct convolution",
		"network", "unrolled", "direct", "ratio")
	for _, net := range nn.HeavyModels() {
		u := access.CountUnroll(net)
		t.AddRow(net.Name, float64(u.Unrolled), float64(u.Direct), u.Ratio())
	}
	return t.String(), nil
}

// Table1 runs the bit-depth accuracy study.
func Table1(context.Context) (string, error) {
	rows := train.BitDepthTable(train.DefaultExperimentConfig(), []int{7, 6, 5, 4, 3, 2})
	t := report.New("Table I: accuracy drop vs bit depth (percentage points)",
		"bits", "8b-wt + act@bits", "8b-act + wt@bits")
	for _, r := range rows {
		t.AddRow(r.Bits, r.ActQuantDrop, r.WeightQuantDrop)
	}
	return t.String(), nil
}

// Table2 renders the architecture configuration summary.
func Table2(context.Context) (string, error) {
	i, b := arch.INCA(), arch.Baseline()
	t := report.New("Table II: architecture configuration", "parameter", "INCA", "baseline")
	t.AddRow("subarray", fmt.Sprintf("%dx%dx%d", i.SubarrayRows, i.SubarrayCols, i.StackedPlanes),
		fmt.Sprintf("%dx%d", b.SubarrayRows, b.SubarrayCols))
	t.AddRow("tiles/macros/subarrays", fmt.Sprintf("%d/%d/%d", i.Tiles, i.TileSize, i.MacroSize),
		fmt.Sprintf("%d/%d/%d", b.Tiles, b.TileSize, b.MacroSize))
	t.AddRow("ADC", fmt.Sprintf("%d-bit (1:%d shared)", i.ADCBits, i.SubarraysPerADC),
		fmt.Sprintf("%d-bit", b.ADCBits))
	t.AddRow("precision (wt/act)", fmt.Sprintf("%d/%d", i.WeightBits, i.ActivationBits),
		fmt.Sprintf("%d/%d", b.WeightBits, b.ActivationBits))
	t.AddRow("batch", i.BatchSize, b.BatchSize)
	t.AddRow("buffer", fmt.Sprintf("%dKB/%d-bit", i.Buffer.CapacityBytes/1024, i.Buffer.BusWidthBits),
		fmt.Sprintf("%dKB/%d-bit", b.Buffer.CapacityBytes/1024, b.Buffer.BusWidthBits))
	t.AddRow("cell R on/off (ohm)", fmt.Sprintf("%.0fk/%.0fM", i.Device.ROn/1e3, i.Device.ROff/1e6),
		fmt.Sprintf("%.0fk/%.0fM", b.Device.ROn/1e3, b.Device.ROff/1e6))
	return t.String(), nil
}

// comparison renders one phase's six-network comparison, evaluated on
// the sweep engine (both architectures across all six networks).
func comparison(ctx context.Context, phase sim.Phase) (*report.Table, error) {
	nets := nn.PaperModels()
	reps, err := evalPlan(ctx, sweep.Plan{
		Archs:    []sweep.Arch{sweep.INCAArch(), sweep.BaselineArch()},
		Networks: nets,
		Phases:   []sim.Phase{phase},
	})
	if err != nil {
		return nil, err
	}
	t := report.New(fmt.Sprintf("INCA vs WS baseline, %s (batch 64)", phase),
		"network", "energy ratio", "speedup", "perf/W (Fig 11)")
	for i, net := range nets {
		a, b := reps[i], reps[len(nets)+i]
		e := a.Total.EnergyEfficiencyVs(b.Total)
		s := a.Total.SpeedupVs(b.Total)
		t.AddRow(net.Name, e, s, e*s)
	}
	return t, nil
}

// Fig11 renders the energy-efficiency comparison for both phases.
func Fig11(ctx context.Context) (string, error) {
	inf, err := comparison(ctx, sim.Inference)
	if err != nil {
		return "", err
	}
	tr, err := comparison(ctx, sim.Training)
	if err != nil {
		return "", err
	}
	return "Fig 11a: " + inf.String() + "\nFig 11b: " + tr.String(), nil
}

// Fig12 renders the layerwise DRAM+buffer energy of VGG16.
func Fig12(ctx context.Context) (string, error) {
	reps, err := evalPlan(ctx, sweep.Plan{
		Archs:    []sweep.Arch{sweep.INCAArch(), sweep.BaselineArch()},
		Networks: []*nn.Network{nn.VGG16()},
		Phases:   []sim.Phase{sim.Inference},
	})
	if err != nil {
		return "", err
	}
	ir, br := reps[0], reps[1]
	t := report.New("Fig 12: layerwise DRAM+buffer energy, VGG16 (J/batch)",
		"layer", "WS", "INCA")
	mem := func(lr sim.LayerResult) float64 {
		return lr.Result.Energy.Of(metrics.DRAM) + lr.Result.Energy.Of(metrics.Buffer)
	}
	for j := range br.Layers {
		if br.Layers[j].Layer.Kind != nn.Conv {
			continue
		}
		t.AddRow(br.Layers[j].Layer.Name, mem(br.Layers[j]), mem(ir.Layers[j]))
	}
	return t.String(), nil
}

// Fig13 renders the ADC energy comparison and INCA's breakdown.
func Fig13(ctx context.Context) (string, error) {
	net := nn.VGG16()
	cfg := arch.INCA()
	cfg.BatchSize = 1
	reps, err := evalPlan(ctx, sweep.Plan{
		Archs:    []sweep.Arch{sweep.INCAArch(), sweep.BaselineArch(), sweep.ConfigArch(cfg)},
		Networks: []*nn.Network{net},
		Phases:   []sim.Phase{sim.Inference},
	})
	if err != nil {
		return "", err
	}
	ir, br, r := reps[0], reps[1], reps[2]
	ta := report.New("Fig 13a: ADC energy, VGG16 (J/batch)", "design", "ADC energy", "vs INCA")
	ia := ir.Total.Energy.Of(metrics.ADC)
	ba := br.Total.Energy.Of(metrics.ADC)
	ta.AddRow("WS baseline", ba, ba/ia)
	ta.AddRow("INCA", ia, 1.0)

	tb := report.New("Fig 13b: INCA energy breakdown, VGG16 (share of total)",
		"network", "DRAM", "Buffer", "RRAM", "ADC", "DAC", "Digital")
	tb.AddRow(append([]any{net.Name}, shares(r)...)...)
	return ta.String() + "\n" + tb.String(), nil
}

// Table3 renders the Table III estimates at 8-bit precision.
func Table3(context.Context) (string, error) {
	t := report.New("Table III: estimated buffer accesses, 8-bit / 256-bit bus",
		"network", "baseline", "INCA", "ratio")
	for _, net := range nn.PaperModels() {
		ac := access.CountNetwork(net, 8, 256)
		t.AddRow(net.Name, float64(ac.Baseline), float64(ac.INCA), ac.Ratio())
	}
	return t.String(), nil
}

// Fig14 renders the speedup comparison for both phases.
func Fig14(ctx context.Context) (string, error) {
	out := ""
	nets := nn.PaperModels()
	for _, phase := range []sim.Phase{sim.Inference, sim.Training} {
		reps, err := evalPlan(ctx, sweep.Plan{
			Archs:    []sweep.Arch{sweep.INCAArch(), sweep.BaselineArch()},
			Networks: nets,
			Phases:   []sim.Phase{phase},
		})
		if err != nil {
			return "", err
		}
		t := report.New(fmt.Sprintf("Fig 14: speedup, %s (batch 64)", phase),
			"network", "WS latency (s)", "INCA latency (s)", "speedup")
		for i, net := range nets {
			ir, br := reps[i], reps[len(nets)+i]
			t.AddRow(net.Name, br.Total.Latency, ir.Total.Latency, ir.Total.SpeedupVs(br.Total))
		}
		out += t.String() + "\n"
	}
	return out, nil
}

// Fig15 renders the INCA-versus-GPU training comparison.
func Fig15(ctx context.Context) (string, error) {
	nets := nn.PaperModels()
	reps, err := evalPlan(ctx, sweep.Plan{
		Archs:    []sweep.Arch{sweep.INCAArch(), sweep.GPUArch()},
		Networks: nets,
		Phases:   []sim.Phase{sim.Training},
	})
	if err != nil {
		return "", err
	}
	incaArea := arch.INCA().Area().Total()
	t := report.New("Fig 15: INCA vs GPU, training (batch 64)",
		"network", "energy ratio", "tput/area INCA", "tput/area GPU", "iso-area ratio")
	for i, net := range nets {
		ir, gr := reps[i], reps[len(nets)+i]
		it := gpu.ThroughputPerArea(ir, incaArea)
		gt := gpu.ThroughputPerArea(gr, gpu.TitanRTX().AreaMM2)
		t.AddRow(net.Name, ir.Total.EnergyEfficiencyVs(gr.Total), it, gt, it/gt)
	}
	return t.String(), nil
}

// Fig16 renders the utilization sweep and per-network comparison. The
// array-size study uses the engine's override axis: one named transform
// per subarray geometry.
func Fig16(ctx context.Context) (string, error) {
	sizes := []int{8, 16, 32, 64, 128}
	var overrides []sweep.Override
	for _, s := range sizes {
		s := s
		overrides = append(overrides, sweep.Override{
			Name: fmt.Sprintf("array=%d", s),
			Apply: func(cfg arch.Config) arch.Config {
				cfg.SubarrayRows, cfg.SubarrayCols = s, s
				return cfg
			},
		})
	}
	sweepReps, err := evalPlan(ctx, sweep.Plan{
		Archs:     []sweep.Arch{sweep.INCAArch()},
		Networks:  []*nn.Network{nn.VGG16()},
		Phases:    []sim.Phase{sim.Inference},
		Overrides: overrides,
	})
	if err != nil {
		return "", err
	}
	fig := &report.Figure{Title: "Fig 16a: INCA utilization vs array size (VGG16)",
		XLabel: "array size", YLabel: "utilization"}
	var xs, ys []float64
	for i, s := range sizes {
		xs = append(xs, float64(s))
		ys = append(ys, sweepReps[i].Utilization())
	}
	fig.Add("INCA", xs, ys)

	nets := nn.PaperModels()
	reps, err := evalPlan(ctx, sweep.Plan{
		Archs:    []sweep.Arch{sweep.INCAArch(), sweep.BaselineArch()},
		Networks: nets,
		Phases:   []sim.Phase{sim.Inference},
	})
	if err != nil {
		return "", err
	}
	t := report.New("Fig 16b: utilization by network", "network", "INCA", "WS baseline")
	for i, net := range nets {
		t.AddRow(net.Name, reps[i].Utilization(), reps[len(nets)+i].Utilization())
	}
	return fig.String() + "\n" + t.String(), nil
}

// Table4 renders the memory footprint formulas.
func Table4(context.Context) (string, error) {
	const mb = 1024 * 1024
	t := report.New("Table IV: memory footprint (MB)",
		"network", "base RRAM", "base buffers", "INCA RRAM", "INCA buffers")
	for _, net := range nn.PaperModels() {
		w := float64(net.TotalWeights()) / mb
		a := float64(net.TotalActivations()) / mb
		t.AddRow(net.Name, 2*w+a, a, a, w)
	}
	return t.String(), nil
}

// Table5 renders the area breakdown.
func Table5(context.Context) (string, error) {
	t := report.New("Table V: area breakdown (mm²)", "component", "baseline", "INCA")
	ba := arch.Baseline().Area()
	ia := arch.INCA().Area()
	t.AddRow("Buffer", ba.Buffer, ia.Buffer)
	t.AddRow("Array", ba.Array, ia.Array)
	t.AddRow("ADC", ba.ADC, ia.ADC)
	t.AddRow("DAC", ba.DAC, ia.DAC)
	t.AddRow("Post-processing", ba.PostProcessing, ia.PostProcessing)
	t.AddRow("Others", ba.Others, ia.Others)
	t.AddRow("Total", ba.Total(), ia.Total())
	return t.String(), nil
}

// ExtEndurance renders the §VI future-work endurance analysis: per-cell
// write pressure and wall-clock lifetime for both dataflows, using the
// simulated ResNet18 batch latencies.
func ExtEndurance(ctx context.Context) (string, error) {
	net := nn.ResNet18()
	dev := arch.INCA().Device
	reps, err := evalPlan(ctx, sweep.Plan{
		Archs:    []sweep.Arch{sweep.INCAArch(), sweep.BaselineArch()},
		Networks: []*nn.Network{net},
		Phases:   []sim.Phase{sim.Inference, sim.Training},
	})
	if err != nil {
		return "", err
	}
	t := report.New("Extension: endurance on "+dev.Name+" (ResNet18, batch 64)",
		"design", "phase", "writes/cell/batch", "batches to failure", "lifetime (years)")
	for i, phase := range []sim.Phase{sim.Inference, sim.Training} {
		ir, br := reps[i], reps[2+i]
		ip := endure.Analyze("INCA", phase, dev, net, ir.Total.Latency)
		bp := endure.Analyze("WS-Baseline", phase, dev, net, br.Total.Latency)
		t.AddRow("INCA", phase.String(), ip.WritesPerCellPerBatch, ip.BatchesToFailure, ip.LifetimeYears())
		t.AddRow("WS-Baseline", phase.String(), bp.WritesPerCellPerBatch, bp.BatchesToFailure, bp.LifetimeYears())
	}
	return t.String(), nil
}

// ExtDevices renders the §VI "other hardware candidates" study: INCA's
// energy and training lifetime with each device technology.
func ExtDevices(ctx context.Context) (string, error) {
	net := nn.ResNet18()
	devs := endure.Candidates()
	var overrides []sweep.Override
	for _, dev := range devs {
		dev := dev
		overrides = append(overrides, sweep.Override{
			Name: "device=" + dev.Name,
			Apply: func(cfg arch.Config) arch.Config {
				cfg.Device = dev
				return cfg
			},
		})
	}
	reps, err := evalPlan(ctx, sweep.Plan{
		Archs:     []sweep.Arch{sweep.INCAArch()},
		Networks:  []*nn.Network{net},
		Phases:    []sim.Phase{sim.Training},
		Overrides: overrides,
	})
	if err != nil {
		return "", err
	}
	t := report.New("Extension: INCA on alternative devices (ResNet18 training, batch 64)",
		"device", "energy (J/batch)", "latency (s)", "lifetime (years)")
	for i, dev := range devs {
		r := reps[i]
		p := endure.Analyze("INCA", sim.Training, dev, net, r.Total.Latency)
		t.AddRow(dev.Name, r.Total.Energy.Total(), r.Total.Latency, p.LifetimeYears())
	}
	return t.String(), nil
}

// ExtBatchSweep renders INCA's per-image cost versus batch size — the 3D
// plane amortization.
func ExtBatchSweep(ctx context.Context) (string, error) {
	batches := []int{1, 4, 16, 64}
	var overrides []sweep.Override
	for _, b := range batches {
		b := b
		overrides = append(overrides, sweep.Override{
			Name: fmt.Sprintf("batch=%d", b),
			Apply: func(cfg arch.Config) arch.Config {
				cfg.BatchSize = b
				return cfg
			},
		})
	}
	reps, err := evalPlan(ctx, sweep.Plan{
		Archs:     []sweep.Arch{sweep.INCAArch()},
		Networks:  []*nn.Network{nn.ResNet18()},
		Phases:    []sim.Phase{sim.Training},
		Overrides: overrides,
	})
	if err != nil {
		return "", err
	}
	t := report.New("Extension: INCA batch sweep (ResNet18 training)",
		"batch", "energy/image (J)", "latency/image (s)")
	for i, b := range batches {
		r := reps[i]
		t.AddRow(b, r.Total.Energy.Total()/float64(b), r.Total.Latency/float64(b))
	}
	return t.String(), nil
}

// ExtPareto runs the mapping auto-tuner over every registered dataflow
// backend on ResNet18 and renders the resulting inference Pareto
// frontier — the "which design point wins where" view the fixed paper
// configurations cannot show.
func ExtPareto(ctx context.Context) (string, error) {
	net := nn.ResNet18()
	fronts, err := tune.Search(ctx, net, tune.Options{Cache: engineCache})
	if err != nil {
		return "", fmt.Errorf("suite: %w", err)
	}
	out := ""
	for _, f := range fronts {
		t := report.New(fmt.Sprintf("Extension: mapping Pareto frontier, %s %s (%d candidates, %d failed)",
			f.Network, f.Phase, f.Evaluated, f.Failed),
			"design", "dataflow", "energy (J/batch)", "latency (s)", "area (mm²)")
		for _, c := range f.Pareto {
			t.AddRow(c.Label, c.Dataflow, c.EnergyJ, c.LatencyS, c.AreaMM2)
		}
		out += t.String()
	}
	return out, nil
}

// Table6 runs the noise-robustness study.
func Table6(context.Context) (string, error) {
	rows := train.NoiseAccuracyTable(train.DefaultExperimentConfig(),
		[]float64{0.005, 0.01, 0.02, 0.03, 0.05})
	t := report.New("Table VI: training accuracy (%) vs noise strength",
		"sigma", "weights (WS)", "activations (IS)", "clean")
	for _, r := range rows {
		t.AddRow(r.Sigma, r.WeightNoise, r.ActivationAcc, r.BaselineNoNoise)
	}
	return t.String(), nil
}
