package suite

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestAllIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Name == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	if len(seen) != 20 {
		t.Fatalf("suite has %d experiments, want 20", len(seen))
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig11")
	if err != nil || e.ID != "fig11" {
		t.Fatalf("ByID(fig11) = %v, %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id should error")
	}
}

// TestLightExperimentsProduceOutput runs every non-heavy experiment once
// and checks each produces a titled, multi-line report.
func TestLightExperimentsProduceOutput(t *testing.T) {
	for _, e := range All() {
		if e.Heavy {
			continue
		}
		out, err := e.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(out) < 40 {
			t.Errorf("%s: output suspiciously short: %q", e.ID, out)
		}
		if !strings.Contains(out, "\n") {
			t.Errorf("%s: output not multi-line", e.ID)
		}
	}
}

// TestCancelledContextReturnsError verifies the de-panicked error path: a
// dead context surfaces as an error from a sweep-backed experiment, not a
// panic.
func TestCancelledContextReturnsError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fig12(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fig12(cancelled ctx) err = %v, want context.Canceled", err)
	}
}

// TestFig11ContainsAllNetworks spot-checks one report's content.
func TestFig11ContainsAllNetworks(t *testing.T) {
	out, err := Fig11(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"VGG16", "VGG19", "ResNet18", "ResNet50", "MobileNetV2", "MNasNet"} {
		if !strings.Contains(out, name) {
			t.Errorf("Fig11 output missing %s", name)
		}
	}
	if !strings.Contains(out, "Fig 11a") || !strings.Contains(out, "Fig 11b") {
		t.Error("Fig11 should include both phases")
	}
}

func TestTable5ContainsTotals(t *testing.T) {
	out, err := Table5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Buffer", "Array", "ADC", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 missing %q", want)
		}
	}
}
