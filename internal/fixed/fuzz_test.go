package fixed

import (
	"math"
	"testing"
)

// FuzzQuantizerRoundTrip fuzzes the quantizer invariants: clamping to the
// code range, bounded error for in-range values, and idempotence.
func FuzzQuantizerRoundTrip(f *testing.F) {
	f.Add(uint8(8), 1.0, 0.5)
	f.Add(uint8(4), 2.0, -1.9)
	f.Add(uint8(2), 0.1, 100.0)
	// Poisoned-calibration seeds: NewQuantizer must reject these instead
	// of silently building a unit-scale quantizer.
	f.Add(uint8(8), math.NaN(), 0.5)
	f.Add(uint8(8), math.Inf(1), 0.5)
	f.Add(uint8(8), math.Inf(-1), 0.5)
	f.Fuzz(func(t *testing.T, rawBits uint8, maxAbs, x float64) {
		bits := 2 + int(rawBits)%10
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Skip()
		}
		if math.IsNaN(maxAbs) || math.IsInf(maxAbs, 0) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewQuantizer(%d, %v) accepted a non-finite calibration", bits, maxAbs)
				}
			}()
			NewQuantizer(bits, maxAbs)
			return
		}
		maxAbs = math.Abs(maxAbs)
		if maxAbs > 1e12 {
			t.Skip()
		}
		q := NewQuantizer(bits, maxAbs)
		c := q.Quantize(x)
		if c > q.MaxCode() || c < -q.MaxCode() {
			t.Fatalf("code %d out of range for %d bits", c, bits)
		}
		v := q.Dequantize(c)
		if math.Abs(x) <= maxAbs && math.Abs(v-x) > q.Scale/2+1e-9*math.Abs(x)+1e-12 {
			t.Fatalf("round-trip error too large: x=%v v=%v scale=%v", x, v, q.Scale)
		}
		if got := q.RoundTrip(v); got != v {
			t.Fatalf("idempotence violated: %v -> %v", v, got)
		}
	})
}

// FuzzBitSerialDot fuzzes the bit-serial/plain dot-product equivalence.
func FuzzBitSerialDot(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3))
	f.Add(int64(99), uint8(8), uint8(10))
	f.Fuzz(func(t *testing.T, seed int64, rawBits, rawLen uint8) {
		bits := 3 + int(rawBits)%6
		n := 1 + int(rawLen)%16
		max := int64(1)<<(bits-1) - 1
		a := make([]int64, n)
		w := make([]int64, n)
		s := uint64(seed)
		next := func() int64 {
			s = s*6364136223846793005 + 1442695040888963407
			v := int64((s >> 33) % uint64(2*max+1))
			return v - max
		}
		for i := range a {
			a[i] = next()
			w[i] = next()
		}
		if BitSerialDot(a, w, bits) != Dot(a, w) {
			t.Fatalf("bit-serial dot mismatch for bits=%d n=%d", bits, n)
		}
	})
}
