package fixed

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/inca-arch/inca/internal/tensor"
)

func TestQuantizerRange(t *testing.T) {
	q := NewQuantizer(8, 1.0)
	if q.MaxCode() != 127 {
		t.Fatalf("MaxCode = %d, want 127", q.MaxCode())
	}
	if c := q.Quantize(1.0); c != 127 {
		t.Fatalf("Quantize(1.0) = %d, want 127", c)
	}
	if c := q.Quantize(-1.0); c != -127 {
		t.Fatalf("Quantize(-1.0) = %d, want -127", c)
	}
	if c := q.Quantize(10.0); c != 127 {
		t.Fatalf("Quantize clamping failed: got %d", c)
	}
	if c := q.Quantize(0); c != 0 {
		t.Fatalf("Quantize(0) = %d, want 0", c)
	}
}

func TestQuantizerErrorBound(t *testing.T) {
	q := NewQuantizer(8, 2.0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		x := rng.Float64()*4 - 2
		if err := math.Abs(q.RoundTrip(x) - x); err > q.Scale/2+1e-12 {
			t.Fatalf("round-trip error %v exceeds half step %v for x=%v", err, q.Scale/2, x)
		}
	}
}

func TestQuantizerMonotone(t *testing.T) {
	q := NewQuantizer(4, 1.0)
	prev := int64(math.MinInt64)
	for x := -1.5; x <= 1.5; x += 0.01 {
		c := q.Quantize(x)
		if c < prev {
			t.Fatalf("quantizer not monotone at x=%v", x)
		}
		prev = c
	}
}

func TestZeroMaxAbs(t *testing.T) {
	q := NewQuantizer(8, 0)
	if q.Scale != 1 {
		t.Fatalf("zero-calibration scale = %v, want 1", q.Scale)
	}
}

func TestUnsupportedBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1-bit quantizer")
		}
	}()
	NewQuantizer(1, 1.0)
}

func TestQuantizeTensorLowBitsCoarser(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.Randn(rng, 1, 64)
	errAt := func(bits int) float64 {
		q := QuantizeTensor(x, bits)
		sum := 0.0
		for i := range x.Data() {
			sum += math.Abs(q.Data()[i] - x.Data()[i])
		}
		return sum
	}
	if !(errAt(4) > errAt(6) && errAt(6) > errAt(8)) {
		t.Fatalf("quantization error not decreasing with bits: 4b=%v 6b=%v 8b=%v",
			errAt(4), errAt(6), errAt(8))
	}
}

func TestBitPlanesRoundTrip(t *testing.T) {
	for _, c := range []int64{0, 1, 5, 127, 200, 1023} {
		bits := 11
		if got := FromBitPlanes(BitPlanes(c, bits)); got != c {
			t.Fatalf("bit-plane round trip: got %d, want %d", got, c)
		}
	}
}

func TestBitPlanesNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative code")
		}
	}()
	BitPlanes(-1, 8)
}

func TestSignMagnitude(t *testing.T) {
	if s, m := SignMagnitude(-5); s != -1 || m != 5 {
		t.Fatalf("SignMagnitude(-5) = %d,%d", s, m)
	}
	if s, m := SignMagnitude(0); s != 1 || m != 0 {
		t.Fatalf("SignMagnitude(0) = %d,%d", s, m)
	}
	if s, m := SignMagnitude(7); s != 1 || m != 7 {
		t.Fatalf("SignMagnitude(7) = %d,%d", s, m)
	}
}

func TestShiftAccumulator(t *testing.T) {
	var s ShiftAccumulator
	// Accumulate planes of the number 0b101 = 5 with partial sums 1,0,1.
	s.Push(1)
	s.Push(0)
	s.Push(1)
	if s.Value() != 5 {
		t.Fatalf("ShiftAccumulator = %d, want 5", s.Value())
	}
	if s.Pushes() != 3 {
		t.Fatalf("Pushes = %d, want 3", s.Pushes())
	}
	s.Reset()
	if s.Value() != 0 || s.Pushes() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestBitSerialDotKnown(t *testing.T) {
	a := []int64{3, -2, 5}
	w := []int64{1, 4, -3}
	want := 3 - 8 - 15
	if got := BitSerialDot(a, w, 4); got != int64(want) {
		t.Fatalf("BitSerialDot = %d, want %d", got, want)
	}
}

// PROPERTY: bit-serial evaluation equals the plain integer dot product for
// any vectors representable at the given bit depth — the correctness
// guarantee behind INCA's macro-level arithmetic.
func TestPropertyBitSerialMatchesDot(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 3 + rng.Intn(6)
		n := 1 + rng.Intn(20)
		max := int64(1)<<(bits-1) - 1
		a := make([]int64, n)
		w := make([]int64, n)
		for i := range a {
			a[i] = rng.Int63n(2*max+1) - max
			w[i] = rng.Int63n(2*max+1) - max
		}
		return BitSerialDot(a, w, bits) == Dot(a, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// PROPERTY: quantization error is bounded by half a scale step for inputs
// within the calibrated range.
func TestPropertyQuantizeErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 2 + rng.Intn(10)
		maxAbs := rng.Float64()*10 + 0.1
		q := NewQuantizer(bits, maxAbs)
		x := rng.Float64()*2*maxAbs - maxAbs
		return math.Abs(q.RoundTrip(x)-x) <= q.Scale/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// PROPERTY: dequantize(quantize(x)) is idempotent — re-quantizing a
// representable value returns it unchanged.
func TestPropertyQuantizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewQuantizer(2+rng.Intn(10), rng.Float64()*5+0.1)
		x := rng.NormFloat64()
		once := q.RoundTrip(x)
		return q.RoundTrip(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
