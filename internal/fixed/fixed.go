// Package fixed implements the fixed-point arithmetic used throughout the
// INCA reproduction: symmetric linear quantization to arbitrary bit depths
// and the bit-serial decomposition (bit planes + shift-accumulate) that the
// INCA macro executes (paper §IV.C: "Each RRAM stores one bit of input
// values ... the weight is fed into each array bit-by-bit, while the output
// is accumulated through a shift-accumulator").
package fixed

import (
	"fmt"
	"math"

	"github.com/inca-arch/inca/internal/tensor"
)

// Quantizer performs symmetric signed linear quantization with a fixed
// number of bits. Codes live in [-(2^(bits-1)-1), 2^(bits-1)-1]; the scale
// maps code 2^(bits-1)-1 to the calibration maximum.
type Quantizer struct {
	Bits  int
	Scale float64 // real value represented by one code step
}

// NewQuantizer builds a quantizer for the given bit depth calibrated so
// that maxAbs maps to the largest positive code. A zero maxAbs yields a
// unit-scale quantizer. A non-finite or negative maxAbs is rejected: it
// means the calibration tensor was poisoned (NaN/Inf activations), and
// silently treating it as unit scale would corrupt every quantized value
// downstream (the Table I protocol quantizes to the tensor's own max-abs).
func NewQuantizer(bits int, maxAbs float64) Quantizer {
	if bits < 2 || bits > 31 {
		panic(fmt.Sprintf("fixed: unsupported bit depth %d", bits))
	}
	if math.IsNaN(maxAbs) || math.IsInf(maxAbs, 0) || maxAbs < 0 {
		panic(fmt.Sprintf("fixed: invalid calibration maxAbs %v (poisoned calibration tensor?)", maxAbs))
	}
	qmax := float64(int64(1)<<(bits-1) - 1)
	scale := 1.0
	if maxAbs > 0 {
		scale = maxAbs / qmax
	}
	return Quantizer{Bits: bits, Scale: scale}
}

// MaxCode returns the largest positive code value.
func (q Quantizer) MaxCode() int64 { return int64(1)<<(q.Bits-1) - 1 }

// Quantize converts a real value to its integer code, clamping to range.
func (q Quantizer) Quantize(x float64) int64 {
	c := int64(math.Round(x / q.Scale))
	if max := q.MaxCode(); c > max {
		c = max
	} else if c < -max {
		c = -max
	}
	return c
}

// Dequantize converts a code back to a real value.
func (q Quantizer) Dequantize(c int64) float64 { return float64(c) * q.Scale }

// RoundTrip quantizes and dequantizes, returning the representable value
// nearest to x.
func (q Quantizer) RoundTrip(x float64) float64 { return q.Dequantize(q.Quantize(x)) }

// QuantizeTensor returns a copy of t with every element rounded to the
// nearest representable value of a bits-deep quantizer calibrated to t's
// own max-abs. This is the post-training quantization protocol of Table I.
func QuantizeTensor(t *tensor.Tensor, bits int) *tensor.Tensor {
	q := NewQuantizer(bits, t.MaxAbs())
	return t.Clone().Apply(q.RoundTrip)
}

// QuantizeTensorWith rounds t using an externally calibrated quantizer.
func QuantizeTensorWith(t *tensor.Tensor, q Quantizer) *tensor.Tensor {
	return t.Clone().Apply(q.RoundTrip)
}

// BitPlanes decomposes a non-negative code into its binary planes,
// least-significant first. plane[b] is 0 or 1. Negative codes must be
// handled by the caller (INCA uses sign-magnitude: a sign flag plus
// magnitude planes).
func BitPlanes(code int64, bits int) []uint8 {
	if code < 0 {
		panic(fmt.Sprintf("fixed: BitPlanes needs a non-negative code, got %d", code))
	}
	planes := make([]uint8, bits)
	for b := 0; b < bits; b++ {
		planes[b] = uint8((code >> b) & 1)
	}
	return planes
}

// FromBitPlanes reassembles a code from planes produced by BitPlanes.
func FromBitPlanes(planes []uint8) int64 {
	var c int64
	for b, p := range planes {
		if p > 1 {
			panic(fmt.Sprintf("fixed: plane %d holds %d, want 0 or 1", b, p))
		}
		c |= int64(p) << b
	}
	return c
}

// SignMagnitude splits a signed code into (sign, magnitude) where sign is
// ±1 (zero maps to +1).
func SignMagnitude(code int64) (sign int64, mag int64) {
	if code < 0 {
		return -1, -code
	}
	return 1, code
}

// ShiftAccumulator models the digital shift-accumulate register that
// combines per-bit-plane partial sums into a full-precision result
// (paper §IV.C). Partial sums are pushed most-significant-plane last.
type ShiftAccumulator struct {
	acc    int64
	pushes int
}

// Push adds a partial sum for the next more-significant bit plane.
// The b-th push (0-based) is weighted by 2^b.
func (s *ShiftAccumulator) Push(partial int64) {
	s.acc += partial << s.pushes
	s.pushes++
}

// Value returns the accumulated result.
func (s *ShiftAccumulator) Value() int64 { return s.acc }

// Pushes returns how many planes have been combined.
func (s *ShiftAccumulator) Pushes() int { return s.pushes }

// Reset clears the accumulator for reuse.
func (s *ShiftAccumulator) Reset() { s.acc, s.pushes = 0, 0 }

// BitSerialDot computes the dot product of two signed-code vectors using
// the bit-serial scheme the INCA macro uses: activations are stored as bit
// planes (one RRAM per bit), each weight bit plane is applied in turn, and
// per-plane binary dot products are combined with two nested shift
// accumulations. The result must equal the plain integer dot product — the
// correspondence is covered by tests.
func BitSerialDot(a, w []int64, bits int) int64 {
	if len(a) != len(w) {
		panic(fmt.Sprintf("fixed: BitSerialDot length mismatch %d vs %d", len(a), len(w)))
	}
	// Decompose into sign-magnitude bit planes.
	type planes struct {
		sign int64
		bits []uint8
	}
	ap := make([]planes, len(a))
	wp := make([]planes, len(w))
	for i := range a {
		s, m := SignMagnitude(a[i])
		ap[i] = planes{s, BitPlanes(m, bits)}
		s, m = SignMagnitude(w[i])
		wp[i] = planes{s, BitPlanes(m, bits)}
	}
	var outer ShiftAccumulator
	for wb := 0; wb < bits; wb++ { // weight plane streamed into the array
		var inner ShiftAccumulator
		for ab := 0; ab < bits; ab++ { // activation plane resident in RRAM
			var partial int64
			for i := range a {
				if ap[i].bits[ab] == 1 && wp[i].bits[wb] == 1 {
					partial += ap[i].sign * wp[i].sign
				}
			}
			inner.Push(partial)
		}
		outer.Push(inner.Value())
	}
	return outer.Value()
}

// Dot is the plain integer dot product reference for BitSerialDot.
func Dot(a, w []int64) int64 {
	var s int64
	for i := range a {
		s += a[i] * w[i]
	}
	return s
}
