package fixed

import (
	"math"
	"testing"
)

// Regression: NewQuantizer treated a NaN or ±Inf calibration maximum like
// zero and silently built a unit-scale quantizer, so one poisoned
// activation tensor corrupted every quantized value downstream instead of
// failing loudly at the calibration site.
func TestNewQuantizerRejectsNonFiniteCalibration(t *testing.T) {
	for _, maxAbs := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewQuantizer(8, %v) did not panic", maxAbs)
				}
			}()
			NewQuantizer(8, maxAbs)
		}()
	}
	// Zero stays legal: an all-zero tensor quantizes at unit scale.
	if q := NewQuantizer(8, 0); q.Scale != 1 {
		t.Fatalf("zero maxAbs scale = %v, want 1", q.Scale)
	}
}
