package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/client"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/serve"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/sweep"
)

// e2ePlan is the cluster tests' sweep: 2 archs x 2 models x 2 phases =
// 8 cells, enough to spread across 3 shards.
func e2ePlan() sweep.Plan {
	return sweep.Plan{
		Archs:    []sweep.Arch{sweep.INCAArch(), sweep.BaselineArch()},
		Networks: []*nn.Network{nn.LeNet5(), nn.VGG16CIFAR()},
		Phases:   []sim.Phase{sim.Inference, sim.Training},
	}
}

const e2eBody = `{"archs":["inca","baseline"],"models":["LeNet5","VGG16-CIFAR"],"phases":["inference","training"]}`

// killer wraps a shard's handler as a crashable process: once armed,
// the first shard dispatch it receives flips it dead and from then on
// it aborts every connection — the TCP-level behavior of a process that
// died mid-request.
type killer struct {
	inner http.Handler
	mu    sync.Mutex
	armed bool
	dead  bool
}

func (k *killer) arm() {
	k.mu.Lock()
	k.armed = true
	k.mu.Unlock()
}

func (k *killer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	k.mu.Lock()
	if k.armed && r.Method == http.MethodPost && r.URL.Path == "/v1/shard/sweep" {
		k.dead = true
	}
	dead := k.dead
	k.mu.Unlock()
	if dead {
		panic(http.ErrAbortHandler)
	}
	k.inner.ServeHTTP(w, r)
}

// newShard boots one in-process inca-serve node.
func newShard(t *testing.T, id string, tracer *obs.Tracer) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(serve.Options{ShardID: id, Tracer: tracer})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// fastClient is the dispatch client tuning for tests: fail a dead peer
// in milliseconds instead of seconds.
func fastClient() client.Options {
	return client.Options{MaxAttempts: 2, BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond}
}

// pickVictim returns the index of a peer owning at least one of the
// plan's cells on the given ring — killing it must actually lose work.
func pickVictim(t *testing.T, urls []string, cells []sweep.Cell) int {
	t.Helper()
	ring, err := NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts := sweep.Partition(cells, func(k sweep.Key) string { return ring.Owner(k.String()) })
	for i, u := range urls {
		if n := len(parts[u]); n > 0 && n < len(cells) {
			return i // owns some cells but not all: the rehash has survivors with prior work
		}
	}
	for i, u := range urls {
		if len(parts[u]) > 0 {
			return i
		}
	}
	t.Fatal("no peer owns any cells")
	return -1
}

// TestE2EShardLossByteIdentity is the acceptance e2e: a 3-shard sweep
// through a coordinator, with one shard killed by its first dispatch,
// completes with summary cells byte-identical to a single-node run; the
// lost shard's cells are visibly rehashed and retried; and the
// coordinator's trace spans every shard — the surviving shards' own
// request spans join the same trace ID via the forwarded traceparent.
func TestE2EShardLossByteIdentity(t *testing.T) {
	// Reference: the same sweep on a plain single-node server.
	_, refTS := newShard(t, "", nil)
	refResp, err := http.Post(refTS.URL+"/v1/sweep", "application/json", strings.NewReader(e2eBody))
	if err != nil {
		t.Fatal(err)
	}
	refRaw := readBody(t, refResp)
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("reference sweep failed: %s", refRaw)
	}

	// Cluster: 3 shards, each tracing into its own ring.
	shardTracers := make([]*obs.Tracer, 3)
	shardServers := make([]*httptest.Server, 3)
	urls := make([]string, 3)
	killers := make([]*killer, 3)
	for i := range shardServers {
		shardTracers[i] = obs.NewTracer(obs.WithRing(512))
		s := serve.New(serve.Options{ShardID: shardName(i), Tracer: shardTracers[i]})
		killers[i] = &killer{inner: s.Handler()}
		shardServers[i] = httptest.NewServer(killers[i])
		t.Cleanup(shardServers[i].Close)
		urls[i] = shardServers[i].URL
	}

	cells, err := e2ePlan().Cells()
	if err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(t, urls, cells)
	killers[victim].arm()

	co, err := New(Options{Peers: urls, Client: fastClient()})
	if err != nil {
		t.Fatal(err)
	}
	coordTracer := obs.NewTracer(obs.WithRing(1024))
	coord := serve.New(serve.Options{Sharder: co, ShardID: "coord", Tracer: coordTracer})
	coordTS := httptest.NewServer(coord.Handler())
	t.Cleanup(coordTS.Close)

	resp, err := http.Post(coordTS.URL+"/v1/sweep", "application/json", strings.NewReader(e2eBody))
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster sweep failed: %s", raw)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("coordinator response carries no trace ID")
	}

	// Byte identity: the cells array must match the single-node run
	// exactly, shard loss and all.
	var ref, got struct {
		Cells json.RawMessage `json:"cells"`
		Shard *serve.ShardSummary
	}
	if err := json.Unmarshal(refRaw, &ref); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if string(got.Cells) != string(ref.Cells) {
		t.Fatalf("cluster cells differ from single-node run:\n%s\nvs\n%s", got.Cells, ref.Cells)
	}

	// The loss is visible: cells rehashed in a second round, the victim
	// down, and the rehashed cells counted as retried (their lost
	// dispatch rides in Result.Attempts).
	if got.Shard == nil {
		t.Fatal("cluster response carries no shard summary")
	}
	if got.Shard.Rehashed == 0 || got.Shard.Rounds < 2 || got.Shard.Down == 0 {
		t.Fatalf("shard loss not visible in summary: %+v", got.Shard)
	}
	if got.Shard.Retried < got.Shard.Rehashed {
		t.Fatalf("rehashed cells not counted retried: %+v", got.Shard)
	}

	// One coordinator trace spans the cluster: the ring holds dispatch
	// spans for more than one peer, and a surviving shard's own request
	// span carries the same trace ID.
	spans := coordTracer.Ring().Trace(traceID)
	dispatchPeers := map[string]bool{}
	for _, sp := range spans {
		if sp.Name == SpanDispatch {
			if v, ok := sp.Attr("peer"); ok {
				dispatchPeers[fmt.Sprint(v)] = true
			}
		}
	}
	if len(dispatchPeers) < 2 {
		t.Fatalf("coordinator trace shows dispatches to %d peers, want >= 2", len(dispatchPeers))
	}
	joined := 0
	for i, tr := range shardTracers {
		if i == victim {
			continue
		}
		if len(tr.Ring().Trace(traceID)) > 0 {
			joined++
		}
	}
	if joined == 0 {
		t.Fatal("no surviving shard's spans joined the coordinator's trace")
	}
}

// TestCoordinatorRehashAttempts drives the coordinator directly at the
// Go level and asserts the per-cell contract the HTTP summary
// aggregates: every cell the dead shard lost comes back with
// Result.Attempts >= 2 (the lost dispatch counts), everything else with
// Attempts == 1, and results land in input order.
func TestCoordinatorRehashAttempts(t *testing.T) {
	shardServers := make([]*httptest.Server, 3)
	urls := make([]string, 3)
	killers := make([]*killer, 3)
	for i := range shardServers {
		s := serve.New(serve.Options{ShardID: shardName(i)})
		killers[i] = &killer{inner: s.Handler()}
		shardServers[i] = httptest.NewServer(killers[i])
		t.Cleanup(shardServers[i].Close)
		urls[i] = shardServers[i].URL
	}
	cells, err := e2ePlan().Cells()
	if err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(t, urls, cells)
	killers[victim].arm()
	ring, err := NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	lost := map[int]bool{}
	for _, c := range cells {
		if ring.Owner(c.Key().String()) == urls[victim] {
			lost[c.Seq] = true
		}
	}

	co, err := New(Options{Peers: urls, Client: fastClient()})
	if err != nil {
		t.Fatal(err)
	}
	results, summary, err := co.Sweep(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cells) {
		t.Fatalf("results = %d, want %d", len(results), len(cells))
	}
	for i, res := range results {
		if res.Cell.Seq != cells[i].Seq {
			t.Fatalf("result %d answers seq %d, want %d", i, res.Cell.Seq, cells[i].Seq)
		}
		if res.Err != nil {
			t.Fatalf("cell %d failed: %v", i, res.Err)
		}
		if lost[res.Cell.Seq] {
			if res.Attempts < 2 {
				t.Fatalf("rehashed cell %d has Attempts = %d, want >= 2", i, res.Attempts)
			}
		} else if res.Attempts != 1 {
			t.Fatalf("undisturbed cell %d has Attempts = %d, want 1", i, res.Attempts)
		}
	}
	if summary.Rehashed != len(lost) {
		t.Fatalf("summary.Rehashed = %d, want %d", summary.Rehashed, len(lost))
	}
	if summary.Down != 1 || summary.Rounds != 2 {
		t.Fatalf("summary = %+v, want Down 1, Rounds 2", summary)
	}
}

// TestCoordinatorAllPeersLostFallsBackLocal pins the last resort: with
// every peer dead the coordinator evaluates the cells on its own engine
// and the sweep still completes.
func TestCoordinatorAllPeersLostFallsBackLocal(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	t.Cleanup(dead.Close)

	co, err := New(Options{Peers: []string{dead.URL}, Client: fastClient()})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := e2ePlan().Cells()
	if err != nil {
		t.Fatal(err)
	}
	results, summary, err := co.Sweep(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if summary.Local != len(cells) || summary.Down != 1 {
		t.Fatalf("summary = %+v, want all %d cells local, 1 down", summary, len(cells))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("cell %d failed locally: %v", i, res.Err)
		}
	}
}

// TestCoordinatorTerminalErrorAborts pins the fault vocabulary: a 4xx
// from a shard is the request's fault, not the shard's — the sweep
// fails instead of rehashing a poisoned cell around the ring forever.
func TestCoordinatorTerminalErrorAborts(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no"}`, http.StatusBadRequest)
	}))
	t.Cleanup(bad.Close)

	co, err := New(Options{Peers: []string{bad.URL}, Client: fastClient()})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := e2ePlan().Cells()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := co.Sweep(context.Background(), cells); err == nil {
		t.Fatal("terminal shard answer did not abort the sweep")
	}
}

// TestHealthProbesReviveDownPeers pins membership recovery: a peer
// marked down by a lost dispatch rejoins the ring after a readiness
// probe finds it serving again.
func TestHealthProbesReviveDownPeers(t *testing.T) {
	s := serve.New(serve.Options{ShardID: "s0"})
	k := &killer{inner: s.Handler()}
	ts := httptest.NewServer(k)
	t.Cleanup(ts.Close)

	co, err := New(Options{Peers: []string{ts.URL}, Client: fastClient()})
	if err != nil {
		t.Fatal(err)
	}
	co.members.markDown(ts.URL, context.DeadlineExceeded)
	if got := co.Health(context.Background()); !got[0].Up {
		t.Fatalf("live peer still reported down: %+v", got[0])
	}

	k.mu.Lock()
	k.dead = true
	k.mu.Unlock()
	if got := co.Health(context.Background()); got[0].Up {
		t.Fatalf("dead peer reported up: %+v", got[0])
	}
}

func shardName(i int) string { return string(rune('a'+i)) + "-shard" }

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return []byte(sb.String())
}
