package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterministic pins the placement contract: the same peer set
// yields the same owner for every key, regardless of the order the
// peers were listed in — two coordinators built from differently
// ordered configs must agree on every assignment.
func TestRingDeterministic(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{peers[2], peers[0], peers[1]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("arch/is/fp%04d/LeNet5/inference", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("key %s: owner differs across peer orderings (%s vs %s)",
				key, r1.Owner(key), r2.Owner(key))
		}
	}
}

// TestRingSpread asserts virtual nodes keep the assignment roughly even:
// with 3 peers and 3000 keys no peer owns less than half its fair
// share.
func TestRingSpread(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for i := 0; i < 3000; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, p := range peers {
		if counts[p] < 500 {
			t.Fatalf("peer %s owns only %d of 3000 keys: %v", p, counts[p], counts)
		}
	}
}

// TestRingStabilityOnLoss is the property the mid-sweep rehash relies
// on: removing one peer moves only that peer's keys — every key a
// survivor owned keeps its owner, so a rehash round re-dispatches
// nothing that already succeeded.
func TestRingStabilityOnLoss(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	full, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing(peers[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := full.Owner(key), reduced.Owner(key)
		if before == peers[2] {
			if after == peers[2] {
				t.Fatalf("key %s still owned by the removed peer", key)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %s moved from survivor %s to %s on unrelated loss", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed peer owned no keys — spread test should have caught this")
	}
}

// TestRingRejectsBadPeerSets pins construction errors.
func TestRingRejectsBadPeerSets(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty peer set accepted")
	}
	if _, err := NewRing([]string{"http://a", "http://a"}, 0); err == nil {
		t.Fatal("duplicate peer accepted")
	}
}
