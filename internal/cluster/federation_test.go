package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/serve"
)

// TestFederatedTraceAssembly is the observability plane's cluster e2e:
// a sharded sweep leaves each shard's sweep-level spans in that shard's
// local ring only, and GET /v1/trace/{id} on the coordinator pulls them
// all back over GET /v1/shard/trace/{id}, dedupes by span identity, and
// renders one cross-node tree.
func TestFederatedTraceAssembly(t *testing.T) {
	shardTracers := make([]*obs.Tracer, 3)
	urls := make([]string, 3)
	for i := range urls {
		shardTracers[i] = obs.NewTracer(obs.WithRing(512))
		_, ts := newShard(t, shardName(i), shardTracers[i])
		urls[i] = ts.URL
	}

	co, err := New(Options{Peers: urls, Client: fastClient()})
	if err != nil {
		t.Fatal(err)
	}
	coordTracer := obs.NewTracer(obs.WithRing(1024))
	coord := serve.New(serve.Options{Sharder: co, ShardID: "coord", Tracer: coordTracer})
	coordTS := httptest.NewServer(coord.Handler())
	t.Cleanup(coordTS.Close)

	resp, err := http.Post(coordTS.URL+"/v1/sweep", "application/json", strings.NewReader(e2eBody))
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster sweep failed: %s", raw)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("no trace ID on the sweep response")
	}

	// The coordinator's own ring does not hold the shards' cell spans —
	// that's exactly the gap federation closes.
	localSpans := coordTracer.Ring().Trace(traceID)
	for _, sp := range localSpans {
		if sp.Name == "sweep/cell" {
			t.Fatalf("coordinator ring unexpectedly holds a shard-side span: %+v", sp)
		}
	}

	// Unit exchange: each shard serves its slice of the trace raw.
	shardSpans := 0
	for i, u := range urls {
		sresp, err := http.Get(u + "/v1/shard/trace/" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		var sr serve.ShardTraceResponse
		if err := json.Unmarshal(readBody(t, sresp), &sr); err != nil {
			t.Fatal(err)
		}
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("shard %d trace answered %d", i, sresp.StatusCode)
		}
		if sr.ShardID != shardName(i) {
			t.Fatalf("shard trace names %q, want %q", sr.ShardID, shardName(i))
		}
		shardSpans += len(sr.Spans)
	}
	if shardSpans == 0 {
		t.Fatal("no shard retained any span of the coordinator's trace")
	}

	// Federated assembly: the coordinator's trace endpoint merges all of
	// the above into one response.
	fresp, err := http.Get(coordTS.URL + "/v1/trace/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	fraw := readBody(t, fresp)
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("federated trace answered %d: %s", fresp.StatusCode, fraw)
	}
	var tr serve.TraceResponse
	if err := json.Unmarshal(fraw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != traceID {
		t.Fatalf("trace_id = %q, want %q", tr.TraceID, traceID)
	}
	if len(tr.Spans) <= len(localSpans) {
		t.Fatalf("federated trace has %d spans, local ring alone has %d — no remote spans merged",
			len(tr.Spans), len(localSpans))
	}

	// Every span belongs to the trace, and span identity is unique after
	// the dedup merge.
	seen := map[string]bool{}
	names := map[string]int{}
	for _, sp := range tr.Spans {
		if sp.TraceID != traceID {
			t.Fatalf("merged span from another trace: %+v", sp)
		}
		if seen[sp.SpanID] {
			t.Fatalf("duplicate span %s survived the merge", sp.SpanID)
		}
		seen[sp.SpanID] = true
		names[sp.Name]++
	}
	if names[SpanDispatch] == 0 {
		t.Fatal("federated trace lost the coordinator's dispatch spans")
	}
	if names["sweep/cell"] == 0 {
		t.Fatal("federated trace carries no shard-side cell spans")
	}

	// The rendered tree shows both sides of the cluster in one view.
	for _, want := range []string{SpanDispatch, "sweep/cell"} {
		if !strings.Contains(tr.Tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tr.Tree)
		}
	}

	// A shard (no Sharder configured) answers its local slice on
	// /v1/trace/{id} without fanning out.
	sresp, err := http.Get(urls[0] + "/v1/trace/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, sresp)
	if sresp.StatusCode != http.StatusOK && sresp.StatusCode != http.StatusNotFound {
		t.Fatalf("shard-local trace answered %d: %s", sresp.StatusCode, body)
	}
}
