package cluster

import (
	"sort"
	"sync"
)

// membership tracks which peers the coordinator currently believes are
// serving. A peer is marked down when a dispatch to it exhausts the
// client's retries with a transient error; readiness probes (Health)
// revive it — a down mark is a routing hint, not a tombstone, so a
// rebooted shard rejoins the ring at the next probe without restarting
// the coordinator.
type membership struct {
	mu    sync.Mutex
	peers []string
	down  map[string]string // peer -> last error, absent when up
}

func newMembership(peers []string) *membership {
	ps := make([]string, len(peers))
	copy(ps, peers)
	sort.Strings(ps)
	return &membership{peers: ps, down: make(map[string]string)}
}

// markDown records peer as unserving with its failure.
func (m *membership) markDown(peer string, err error) {
	m.mu.Lock()
	m.down[peer] = err.Error()
	m.mu.Unlock()
}

// markUp clears a peer's down mark.
func (m *membership) markUp(peer string) {
	m.mu.Lock()
	delete(m.down, peer)
	m.mu.Unlock()
}

// live returns the peers not currently marked down, sorted.
func (m *membership) live() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.peers))
	for _, p := range m.peers {
		if _, bad := m.down[p]; !bad {
			out = append(out, p)
		}
	}
	return out
}

// downCount reports how many peers are marked down.
func (m *membership) downCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.down)
}

// snapshot returns every peer with its current state, sorted by peer.
func (m *membership) snapshot() []peerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]peerState, 0, len(m.peers))
	for _, p := range m.peers {
		st := peerState{Peer: p, Up: true}
		if msg, bad := m.down[p]; bad {
			st.Up, st.Error = false, msg
		}
		out = append(out, st)
	}
	return out
}

type peerState struct {
	Peer  string
	Up    bool
	Error string
}
