// Package cluster turns a set of inca-serve nodes into one horizontally
// scaled sweep service: a consistent-hash ring assigns every cell of a
// plan to a peer by its canonical cache key, a coordinator scatters the
// partials over the retrying HTTP client and gathers the full reports
// back into deterministic plan order, and membership tracking rehashes
// a lost shard's cells onto the survivors mid-sweep. Results are
// byte-identical to a single-node run: shards return each cell's full
// stable report encoding, the coordinator rebuilds the same summary
// rows handleSweep builds locally, and key-based placement means a
// peer's memo cache deduplicates exactly as one process would.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per peer. 64 points per
// peer keeps the assignment spread within a few percent of even for
// small clusters while the ring stays a few KB.
const DefaultReplicas = 64

// Ring is an immutable consistent-hash ring over a peer set. Cells hash
// onto the ring by their canonical cache-key string; each key is owned
// by the first virtual node at or after its hash. Losing a peer and
// rebuilding the ring over the survivors moves only the lost peer's
// keys — every surviving assignment is stable, so a mid-sweep rehash
// re-dispatches only what was actually lost.
type Ring struct {
	points []point
	peers  []string
}

type point struct {
	hash uint64
	peer string
}

// NewRing builds a ring with the given virtual-node count per peer
// (<= 0 means DefaultReplicas). Peer order does not matter; the ring is
// fully determined by the peer strings themselves.
func NewRing(peers []string, replicas int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(peers))
	r := &Ring{points: make([]point, 0, len(peers)*replicas)}
	for _, p := range peers {
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		r.peers = append(r.peers, p)
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", p, i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by peer name so the ring
		// stays deterministic across peer orderings.
		return r.points[i].peer < r.points[j].peer
	})
	sort.Strings(r.peers)
	return r, nil
}

// Owner returns the peer owning key: the first virtual node clockwise
// from the key's hash.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last hash
	}
	return r.points[i].peer
}

// Peers returns the ring's peer set, sorted.
func (r *Ring) Peers() []string {
	out := make([]string, len(r.peers))
	copy(out, r.peers)
	return out
}

// hash64 is FNV-1a over s — stable across processes and Go releases,
// which the placement contract (same key, same owner, on every
// coordinator) depends on.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
