package cluster

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"github.com/inca-arch/inca/internal/client"
	"github.com/inca-arch/inca/internal/fault"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/serve"
	"github.com/inca-arch/inca/internal/sweep"
)

// SpanDispatch covers one scatter to one peer; it nests under the
// coordinating request's span, and — because the client forwards the
// traceparent header — the shard's own serve/request span joins the
// same trace, so GET /v1/trace/{id} on the coordinator shows the whole
// cluster execution as one tree.
const SpanDispatch = "cluster/dispatch"

// Options configures a Coordinator.
type Options struct {
	// Peers are the shard base URLs ("http://host:port"). At least one.
	Peers []string
	// Client tunes the dispatch clients (retries, backoff, logger). One
	// client per peer is built at construction.
	Client client.Options
	// Replicas is the virtual-node count per peer; <= 0 means
	// DefaultReplicas.
	Replicas int
	// MaxRounds bounds dispatch waves (initial scatter + rehashes);
	// <= 0 means len(Peers)+1, enough to lose every peer once.
	MaxRounds int
	// Workers bounds the local engine pool used when cells must be
	// evaluated coordinator-side (every peer lost); <= 0 lets the
	// engine pick.
	Workers int
	// Cache memoizes locally evaluated cells; nil gives each fallback
	// run a private cache.
	Cache *sweep.Cache
	// Retry is the per-cell retry policy for locally evaluated cells.
	Retry sweep.RetryPolicy
	// ProbeTimeout bounds one peer readiness probe; <= 0 means 2s.
	ProbeTimeout time.Duration
	// Logger receives dispatch and rehash lines; nil discards them.
	Logger *slog.Logger
}

// Coordinator scatters sweep cells across a peer ring and gathers the
// partials back into input order. It implements serve.Sharder, so
// cmd/inca-serve can mount it behind /v1/sweep without the serve
// package ever importing the HTTP client. Safe for concurrent use; the
// membership view is shared across sweeps, so one sweep's discovery of
// a dead peer routes the next sweep around it immediately.
type Coordinator struct {
	opt     Options
	clients map[string]*client.Client
	members *membership
	log     *slog.Logger
}

// New builds a coordinator over the given peers.
func New(opt Options) (*Coordinator, error) {
	if len(opt.Peers) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one peer")
	}
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = len(opt.Peers) + 1
	}
	if opt.ProbeTimeout <= 0 {
		opt.ProbeTimeout = 2 * time.Second
	}
	log := opt.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	clients := make(map[string]*client.Client, len(opt.Peers))
	for _, p := range opt.Peers {
		c, err := client.New(p, opt.Client)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", p, err)
		}
		if _, dup := clients[p]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		clients[p] = c
	}
	return &Coordinator{
		opt:     opt,
		clients: clients,
		members: newMembership(opt.Peers),
		log:     log,
	}, nil
}

// pendingCell is one not-yet-answered cell: its slot in the caller's
// cell list plus how many dispatches it has already lost — lost
// dispatches count into the final Result.Attempts, so a rehashed cell
// is visible as a retried one.
type pendingCell struct {
	idx      int
	failures int
}

// Sweep evaluates cells across the cluster: consistent-hash scatter by
// cache key, gather of full reports, and — when a peer's dispatch
// exhausts the client's retries with a transient failure — a rehash of
// its cells onto the survivor ring in the next round. Terminal failures
// (4xx answers, context errors) abort the sweep: the request is wrong
// or abandoned, and no amount of re-dispatching helps. When every peer
// is lost the remaining cells run on the coordinator's own engine, so
// the sweep still completes. results[i] answers cells[i].
func (co *Coordinator) Sweep(ctx context.Context, cells []sweep.Cell) ([]sweep.Result, serve.ShardSummary, error) {
	summary := serve.ShardSummary{Peers: len(co.opt.Peers)}
	out := make([]sweep.Result, len(cells))
	seqToPending := make(map[int]*pendingCell, len(cells))
	for i, c := range cells {
		if _, dup := seqToPending[c.Seq]; dup {
			return nil, summary, fmt.Errorf("cluster: duplicate cell seq %d", c.Seq)
		}
		seqToPending[c.Seq] = &pendingCell{idx: i}
	}
	pending := make([]sweep.Cell, len(cells))
	copy(pending, cells)

	for round := 0; len(pending) > 0 && round < co.opt.MaxRounds; round++ {
		live := co.members.live()
		if len(live) == 0 {
			break
		}
		ring, err := NewRing(live, co.opt.Replicas)
		if err != nil {
			return nil, summary, err
		}
		summary.Rounds++
		parts := sweep.Partition(pending, func(k sweep.Key) string { return ring.Owner(k.String()) })
		var (
			mu       sync.Mutex
			wg       sync.WaitGroup
			fatalErr error
			next     []sweep.Cell
		)
		for peer, part := range parts {
			wg.Add(1)
			go func(peer string, part []sweep.Cell) {
				defer wg.Done()
				results, err := co.dispatch(ctx, peer, part)
				mu.Lock()
				defer mu.Unlock()
				if err == nil {
					co.members.markUp(peer)
					for _, res := range results {
						p := seqToPending[res.Cell.Seq]
						res.Attempts += p.failures
						out[p.idx] = res
					}
					return
				}
				if ctx.Err() != nil {
					fatalErr = ctx.Err()
					return
				}
				if !fault.IsTransient(err) {
					fatalErr = fmt.Errorf("cluster: shard %s: %w", peer, err)
					return
				}
				// Transient loss: the peer leaves the ring and its cells
				// rehash onto the survivors next round.
				co.members.markDown(peer, err)
				co.log.Warn("shard lost, rehashing", "peer", peer, "cells", len(part), "err", err.Error())
				summary.Rehashed += len(part)
				for _, c := range part {
					seqToPending[c.Seq].failures++
				}
				next = append(next, part...)
			}(peer, part)
		}
		wg.Wait()
		if fatalErr != nil {
			return nil, summary, fatalErr
		}
		// Re-dispatch in deterministic order (ranging the partition map
		// randomized it); placement is by key, so order only affects logs.
		sort.Slice(next, func(i, j int) bool {
			return seqToPending[next[i].Seq].idx < seqToPending[next[j].Seq].idx
		})
		pending = next
	}

	if len(pending) > 0 {
		// Last resort: no survivors (or the round budget ran out) — the
		// coordinator is also an inca-serve node, so it evaluates the
		// remainder on its own engine rather than failing the sweep.
		summary.Local += len(pending)
		co.log.Warn("no live peers, evaluating locally", "cells", len(pending))
		results, err := sweep.RunCells(ctx, pending, sweep.Options{
			Workers: co.opt.Workers,
			Cache:   co.opt.Cache,
			Retry:   co.opt.Retry,
		})
		if err != nil {
			return nil, summary, err
		}
		for _, res := range results {
			p := seqToPending[res.Cell.Seq]
			res.Attempts += p.failures
			out[p.idx] = res
		}
	}

	summary.Down = co.members.downCount()
	for _, res := range out {
		if res.Attempts > 1 {
			summary.Retried++
		}
	}
	return out, summary, nil
}

// dispatch sends one peer its partition and lifts the response back
// into engine results. The dispatch span nests under the coordinating
// request; the traceparent header the client forwards makes the shard's
// own spans children of the same trace.
func (co *Coordinator) dispatch(ctx context.Context, peer string, part []sweep.Cell) ([]sweep.Result, error) {
	ctx, span := obs.StartSpan(ctx, SpanDispatch,
		obs.String("peer", peer), obs.Int("cells", len(part)))
	wire, err := serve.WireCells(part)
	if err != nil {
		span.EndWith(err)
		return nil, err
	}
	resp, err := co.clients[peer].ShardSweep(ctx, serve.ShardSweepRequest{Cells: wire})
	if err != nil {
		span.EndWith(err)
		return nil, err
	}
	results, err := serve.ShardResults(part, *resp)
	if err != nil {
		// A malformed partial is indistinguishable from a broken peer:
		// classify transient so the cells rehash instead of failing the
		// sweep.
		err = fault.MarkTransient(err)
	}
	span.SetAttr(obs.String("shard_id", resp.ShardID))
	span.EndWith(err)
	return results, err
}

// Health probes every peer's readiness concurrently and updates the
// membership view: a probe that answers 200 revives a down peer, a
// failed probe marks it down. The snapshot is sorted by peer URL.
func (co *Coordinator) Health(ctx context.Context) []serve.PeerHealth {
	var wg sync.WaitGroup
	for peer, c := range co.clients {
		wg.Add(1)
		go func(peer string, c *client.Client) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, co.opt.ProbeTimeout)
			defer cancel()
			if err := c.Ready(pctx); err != nil {
				co.members.markDown(peer, err)
			} else {
				co.members.markUp(peer)
			}
		}(peer, c)
	}
	wg.Wait()
	states := co.members.snapshot()
	out := make([]serve.PeerHealth, 0, len(states))
	for _, st := range states {
		out = append(out, serve.PeerHealth{Peer: st.Peer, Up: st.Up, Error: st.Error})
	}
	return out
}

// FetchSpans pulls the spans every peer retained for one trace,
// concurrently, each probe bounded by ProbeTimeout. A peer that is
// down, breaker-open, or simply never saw the trace contributes
// nothing — federated trace assembly is best-effort by design, and the
// coordinator's own ring already holds the coordinating spans. serve's
// GET /v1/trace/{id} discovers this method by interface assertion
// (serve.SpanFetcher) and merges the result into its local ring.
func (co *Coordinator) FetchSpans(ctx context.Context, traceID string) []obs.SpanData {
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		out []obs.SpanData
	)
	for _, peer := range co.Peers() {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, co.opt.ProbeTimeout)
			defer cancel()
			resp, err := co.clients[peer].ShardTrace(pctx, traceID)
			if err != nil {
				co.log.Warn("trace fetch failed", "peer", peer, "err", err.Error())
				return
			}
			mu.Lock()
			out = append(out, resp.Spans...)
			mu.Unlock()
		}(peer)
	}
	wg.Wait()
	// Deterministic assembly order: peers answer concurrently, so sort
	// by start time before handing the set to the merge (which keeps
	// first occurrence on span-ID collisions).
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// BreakerTrips sums circuit-breaker trips across the per-peer dispatch
// clients — how many times a dead shard stopped being probed at full
// retry cost. Zero when Options.Client leaves the breaker unarmed.
// serve's /metrics discovers this method by interface assertion and
// exports it as inca_client_breaker_trips_total.
func (co *Coordinator) BreakerTrips() int64 {
	var total int64
	for _, c := range co.clients {
		total += c.BreakerStats().Trips
	}
	return total
}

// Peers returns the configured peer URLs, sorted.
func (co *Coordinator) Peers() []string {
	out := make([]string, len(co.opt.Peers))
	copy(out, co.opt.Peers)
	sort.Strings(out)
	return out
}
