// Package mem models the conventional memory side of a PIM accelerator:
// on-chip buffers (SRAM/eDRAM scratchpads behind a fixed-width bus) and
// off-chip HBM2 DRAM with the bandwidth-saturation latency behaviour the
// paper motivates in Fig. 1b ("latency increases exponentially in the
// region beyond 80% of the maximum sustained bandwidth").
package mem

import (
	"fmt"
	"math"
)

// Buffer models an on-chip scratchpad accessed over a fixed-width bus.
// Energy and latency are charged per bus beat; a transfer of n bits takes
// ceil(n / BusWidthBits) beats (paper Eq. 5's ceil(... / bus_width) term).
type Buffer struct {
	CapacityBytes int64
	BusWidthBits  int64
	ReadEnergy    float64 // J per beat
	WriteEnergy   float64 // J per beat
	BeatLatency   float64 // s per beat
}

// Beats returns the number of bus beats needed to move bits of data.
func (b Buffer) Beats(bits int64) int64 {
	if bits < 0 {
		panic(fmt.Sprintf("mem: negative transfer size %d", bits))
	}
	if bits == 0 {
		return 0
	}
	return (bits + b.BusWidthBits - 1) / b.BusWidthBits
}

// ReadCost returns the energy (J) and latency (s) of reading bits of data.
func (b Buffer) ReadCost(bits int64) (energy, latency float64) {
	n := float64(b.Beats(bits))
	return n * b.ReadEnergy, n * b.BeatLatency
}

// WriteCost returns the energy (J) and latency (s) of writing bits of data.
func (b Buffer) WriteCost(bits int64) (energy, latency float64) {
	n := float64(b.Beats(bits))
	return n * b.WriteEnergy, n * b.BeatLatency
}

// Fits reports whether a working set of the given bytes fits on chip.
func (b Buffer) Fits(bytes int64) bool { return bytes <= b.CapacityBytes }

// DRAM models an HBM2 device by aggregate cost: a per-byte access energy
// (the paper adopts 32 pJ per 8 bits from NeuroSim+) plus a latency model
// with a saturation knee.
type DRAM struct {
	EnergyPerByte float64 // J/byte
	PeakBandwidth float64 // bytes/s sustained
	BaseLatency   float64 // s, unloaded access latency
	// Knee is the utilization fraction beyond which queueing dominates
	// (0.8 in the paper's Fig. 1b citation of Li et al. and Srinivasan).
	Knee float64
}

// Energy returns the access energy for moving bytes of data.
func (d DRAM) Energy(bytes int64) float64 {
	return float64(bytes) * d.EnergyPerByte
}

// LatencyAt returns the effective per-access latency at a given fraction of
// sustained bandwidth. Below the knee the latency grows gently and linearly
// (constant service time plus light queueing); beyond the knee it follows
// an M/M/1-style 1/(1-u) blow-up, reproducing the hockey-stick of Fig. 1b.
func (d DRAM) LatencyAt(utilization float64) float64 {
	if utilization < 0 {
		panic(fmt.Sprintf("mem: negative utilization %v", utilization))
	}
	u := math.Min(utilization, 0.999)
	linear := d.BaseLatency * (1 + 0.25*u/d.Knee)
	if u <= d.Knee {
		return linear
	}
	// Continuous at the knee: scale the queueing term so it equals the
	// linear value at u = Knee and diverges as u -> 1.
	atKnee := d.BaseLatency * 1.25
	return atKnee * (1 - d.Knee) / (1 - u)
}

// TransferTime returns the wall-clock time to move bytes at the given
// background utilization: streaming time plus the loaded access latency.
func (d DRAM) TransferTime(bytes int64, utilization float64) float64 {
	return float64(bytes)/d.PeakBandwidth + d.LatencyAt(utilization)
}

// Hierarchy couples a buffer with its backing DRAM and answers the
// question the simulators ask: what does it cost to move a working set of
// a given size, given how much of it is buffer-resident?
type Hierarchy struct {
	Buf  Buffer
	Dram DRAM
}

// TrafficCost returns the energy split between buffer and DRAM plus the
// total latency for transferring `bits` of data of which `residentFrac`
// (0..1) is served by the on-chip buffer and the remainder spills to DRAM.
func (h Hierarchy) TrafficCost(bits int64, residentFrac float64, write bool) (bufJ, dramJ, latency float64) {
	if residentFrac < 0 || residentFrac > 1 {
		panic(fmt.Sprintf("mem: residentFrac %v out of range", residentFrac))
	}
	bufBits := int64(float64(bits) * residentFrac)
	dramBits := bits - bufBits
	if write {
		bufJ, latency = h.Buf.WriteCost(bufBits)
	} else {
		bufJ, latency = h.Buf.ReadCost(bufBits)
	}
	dramBytes := (dramBits + 7) / 8
	dramJ = h.Dram.Energy(dramBytes)
	// DRAM traffic is charged an extra buffer pass (staging through the
	// scratchpad) plus the streaming time.
	if dramBits > 0 {
		stageJ, stageLat := h.Buf.WriteCost(dramBits)
		if write {
			stageJ, stageLat = h.Buf.ReadCost(dramBits)
		}
		bufJ += stageJ
		latency += stageLat + h.Dram.TransferTime(dramBytes, 0.5)
	}
	return bufJ, dramJ, latency
}

// ResidentFraction computes what fraction of a working set of the given
// size is served on-chip: 1 if it fits, otherwise capacity/size.
func (h Hierarchy) ResidentFraction(workingSetBytes int64) float64 {
	if workingSetBytes <= 0 {
		return 1
	}
	if h.Buf.Fits(workingSetBytes) {
		return 1
	}
	return float64(h.Buf.CapacityBytes) / float64(workingSetBytes)
}
