package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func testBuffer() Buffer {
	return Buffer{
		CapacityBytes: 64 * 1024,
		BusWidthBits:  256,
		ReadEnergy:    50e-12,
		WriteEnergy:   60e-12,
		BeatLatency:   1e-9,
	}
}

func testDRAM() DRAM {
	return DRAM{
		EnergyPerByte: 32e-12,
		PeakBandwidth: 256e9,
		BaseLatency:   100e-9,
		Knee:          0.8,
	}
}

func TestBufferBeats(t *testing.T) {
	b := testBuffer()
	cases := []struct{ bits, want int64 }{
		{0, 0}, {1, 1}, {256, 1}, {257, 2}, {512, 2}, {1000, 4},
	}
	for _, c := range cases {
		if got := b.Beats(c.bits); got != c.want {
			t.Errorf("Beats(%d) = %d, want %d", c.bits, got, c.want)
		}
	}
}

func TestBufferBeatsNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testBuffer().Beats(-1)
}

func TestBufferCosts(t *testing.T) {
	b := testBuffer()
	e, l := b.ReadCost(512) // 2 beats
	if math.Abs(e-100e-12) > 1e-20 || math.Abs(l-2e-9) > 1e-20 {
		t.Fatalf("ReadCost = %v, %v", e, l)
	}
	e, _ = b.WriteCost(512)
	if math.Abs(e-120e-12) > 1e-20 {
		t.Fatalf("WriteCost = %v", e)
	}
}

func TestBufferFits(t *testing.T) {
	b := testBuffer()
	if !b.Fits(64 * 1024) {
		t.Fatal("exact capacity should fit")
	}
	if b.Fits(64*1024 + 1) {
		t.Fatal("over capacity should not fit")
	}
}

func TestDRAMEnergyIs32pJPerByte(t *testing.T) {
	d := testDRAM()
	if got := d.Energy(1); math.Abs(got-32e-12) > 1e-24 {
		t.Fatalf("Energy(1 byte) = %v, want 32pJ", got)
	}
}

// TestDRAMLatencyHockeyStick verifies the Fig. 1b shape: gentle growth
// before the 80% knee, steep superlinear growth after it.
func TestDRAMLatencyHockeyStick(t *testing.T) {
	d := testDRAM()
	l0 := d.LatencyAt(0)
	l50 := d.LatencyAt(0.5)
	l80 := d.LatencyAt(0.8)
	l90 := d.LatencyAt(0.9)
	l99 := d.LatencyAt(0.99)
	if !(l0 < l50 && l50 < l80 && l80 < l90 && l90 < l99) {
		t.Fatalf("latency not monotone: %v %v %v %v %v", l0, l50, l80, l90, l99)
	}
	// Pre-knee growth is mild (<2x), post-knee is explosive.
	if l80/l0 > 2 {
		t.Fatalf("pre-knee growth too steep: %v", l80/l0)
	}
	if l99/l80 < 5 {
		t.Fatalf("post-knee growth too shallow: %v", l99/l80)
	}
}

func TestDRAMLatencyContinuousAtKnee(t *testing.T) {
	d := testDRAM()
	below := d.LatencyAt(d.Knee - 1e-9)
	above := d.LatencyAt(d.Knee + 1e-9)
	if math.Abs(below-above)/below > 1e-6 {
		t.Fatalf("discontinuity at knee: %v vs %v", below, above)
	}
}

func TestDRAMTransferTime(t *testing.T) {
	d := testDRAM()
	tt := d.TransferTime(256e9, 0) // 1 second of streaming plus latency
	if tt < 1.0 || tt > 1.001 {
		t.Fatalf("TransferTime = %v, want ~1s", tt)
	}
}

func TestHierarchyAllResident(t *testing.T) {
	h := Hierarchy{Buf: testBuffer(), Dram: testDRAM()}
	bufJ, dramJ, _ := h.TrafficCost(1024, 1.0, false)
	if dramJ != 0 {
		t.Fatalf("fully resident traffic should not touch DRAM: %v", dramJ)
	}
	if bufJ <= 0 {
		t.Fatal("buffer energy should be positive")
	}
}

func TestHierarchySpill(t *testing.T) {
	h := Hierarchy{Buf: testBuffer(), Dram: testDRAM()}
	bufAll, _, latAll := h.TrafficCost(8192, 1.0, false)
	bufHalf, dramHalf, latHalf := h.TrafficCost(8192, 0.5, false)
	if dramHalf <= 0 {
		t.Fatal("spilled traffic must charge DRAM")
	}
	if latHalf <= latAll {
		t.Fatal("spilling must increase latency")
	}
	if bufHalf+dramHalf <= bufAll {
		t.Fatal("spilling must increase total energy")
	}
}

func TestHierarchyResidentFraction(t *testing.T) {
	h := Hierarchy{Buf: testBuffer(), Dram: testDRAM()}
	if f := h.ResidentFraction(1024); f != 1 {
		t.Fatalf("small set fraction = %v, want 1", f)
	}
	if f := h.ResidentFraction(128 * 1024); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("2x capacity fraction = %v, want 0.5", f)
	}
	if f := h.ResidentFraction(0); f != 1 {
		t.Fatalf("empty set fraction = %v, want 1", f)
	}
}

// PROPERTY: beats is monotone and sub-additive:
// Beats(a+b) <= Beats(a)+Beats(b).
func TestPropertyBeats(t *testing.T) {
	b := testBuffer()
	f := func(a, c uint32) bool {
		x, y := int64(a), int64(c)
		if b.Beats(x+y) > b.Beats(x)+b.Beats(y) {
			return false
		}
		return b.Beats(x+y) >= b.Beats(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// PROPERTY: DRAM latency is monotone non-decreasing in utilization.
func TestPropertyDRAMLatencyMonotone(t *testing.T) {
	d := testDRAM()
	f := func(a, b uint16) bool {
		ua := float64(a) / 65536
		ub := float64(b) / 65536
		if ua > ub {
			ua, ub = ub, ua
		}
		return d.LatencyAt(ua) <= d.LatencyAt(ub)+1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// PROPERTY: traffic cost decomposes monotonically with resident fraction —
// more on-chip residency never increases total energy.
func TestPropertyResidencyMonotone(t *testing.T) {
	h := Hierarchy{Buf: testBuffer(), Dram: testDRAM()}
	f := func(bits uint16, fa, fb uint8) bool {
		a := float64(fa) / 255
		b := float64(fb) / 255
		if a > b {
			a, b = b, a
		}
		bufA, dramA, _ := h.TrafficCost(int64(bits), a, false)
		bufB, dramB, _ := h.TrafficCost(int64(bits), b, false)
		return bufB+dramB <= bufA+dramA+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
