// Package cli holds the flag and logging conventions shared by every
// command under cmd/: one -log-level flag, one slog setup writing
// human-readable lines to stderr, so operators configure any binary of
// the suite the same way.
package cli

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogLevelFlag registers the standard -log-level flag on fs and returns
// the destination. Parse fs, then hand the value to NewLogger.
func LogLevelFlag(fs *flag.FlagSet) *string {
	return fs.String("log-level", "info", "log verbosity: debug, info, warn, error, or off")
}

// NewLogger builds the suite's standard logger: text-formatted slog
// lines to w (conventionally stderr, keeping stdout clean for command
// output) at the named level. "off" discards everything. Level names
// are case-insensitive; an unknown name is an error so typos fail fast
// instead of silently logging at the wrong level.
func NewLogger(w io.Writer, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "off", "none":
		return slog.New(slog.NewTextHandler(io.Discard, nil)), nil
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn, error, or off)", level)
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lv})), nil
}
