package cli

import (
	"bytes"
	"flag"
	"io"
	"strings"
	"testing"
)

// TestNewLoggerLevels pins the level gate: each named level admits its
// own records and above, "off" discards everything, unknown names fail.
func TestNewLoggerLevels(t *testing.T) {
	for _, tc := range []struct {
		level      string
		debug, err bool // records that should appear
	}{
		{"debug", true, true},
		{"Info", false, true},
		{"warn", false, true},
		{"error", false, true},
		{"off", false, false},
		{"", false, true}, // empty means info
	} {
		var buf bytes.Buffer
		log, errNew := NewLogger(&buf, tc.level)
		if errNew != nil {
			t.Fatalf("level %q: %v", tc.level, errNew)
		}
		log.Debug("dbg-record")
		log.Error("err-record")
		out := buf.String()
		if got := strings.Contains(out, "dbg-record"); got != tc.debug {
			t.Errorf("level %q: debug visible = %v, want %v", tc.level, got, tc.debug)
		}
		if got := strings.Contains(out, "err-record"); got != tc.err {
			t.Errorf("level %q: error visible = %v, want %v", tc.level, got, tc.err)
		}
	}
	if _, err := NewLogger(io.Discard, "loud"); err == nil {
		t.Fatal("unknown level should error")
	}
}

// TestLogLevelFlag pins the flag registration and default.
func TestLogLevelFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	lv := LogLevelFlag(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *lv != "info" {
		t.Fatalf("default level %q, want info", *lv)
	}
	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	lv2 := LogLevelFlag(fs2)
	if err := fs2.Parse([]string{"-log-level", "debug"}); err != nil {
		t.Fatal(err)
	}
	if *lv2 != "debug" {
		t.Fatalf("parsed level %q, want debug", *lv2)
	}
}
