package conformance

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"

	_ "github.com/inca-arch/inca/internal/baseline"
	_ "github.com/inca-arch/inca/internal/core"
	_ "github.com/inca-arch/inca/internal/gpu"
	_ "github.com/inca-arch/inca/internal/outstat"
)

// TestRegisteredDataflows runs the shared invariant table against every
// backend in the registry — the check that keeps IS/WS/OS/GPU from
// drifting apart.
func TestRegisteredDataflows(t *testing.T) {
	ids := dataflow.IDs()
	if len(ids) < 4 {
		t.Fatalf("registry has %v, want at least is/ws/os/gpu", ids)
	}
	for _, d := range dataflow.All() {
		if strings.HasPrefix(d.ID(), "stub-") {
			continue // test-local registrations from sibling tests
		}
		d := d
		t.Run(d.ID(), func(t *testing.T) {
			t.Parallel()
			Run(t, d)
		})
	}
}

// panicMachine is a legacy machine that always panics, standing in for
// the real backends' behavior on unsupported layer geometry.
type panicMachine struct{}

func (panicMachine) Simulate(net *nn.Network, phase sim.Phase) *sim.Report {
	panic("unsupported layer geometry")
}

// TestPanicRecovery pins the ErrSimulatorPanic pipeline all dataflows
// share through sim.WrapID: a panicking machine surfaces as a per-call
// error naming the dataflow, never as an unwound goroutine.
func TestPanicRecovery(t *testing.T) {
	s := sim.WrapID(panicMachine{}, "stub")
	_, err := s.Simulate(context.Background(), nn.LeNet5(), sim.Inference)
	if !errors.Is(err, sim.ErrSimulatorPanic) {
		t.Fatalf("got %v, want ErrSimulatorPanic", err)
	}
	if !strings.Contains(err.Error(), "stub") {
		t.Errorf("panic error %q does not name the dataflow", err)
	}
}

// stubDataflow registers a throwaway backend to pin the registry's
// duplicate and lookup behavior without touching the real IDs.
type stubDataflow struct{ id string }

func (s stubDataflow) ID() string { return s.id }
func (s stubDataflow) Capabilities() dataflow.Capabilities {
	return dataflow.Capabilities{ID: s.id, Name: "Stub " + s.id, Phases: []sim.Phase{sim.Inference}}
}
func (stubDataflow) DefaultConfig() arch.Config { return arch.Config{} }
func (stubDataflow) New(arch.Config) (sim.Simulator, error) {
	return sim.WrapID(panicMachine{}, "stub"), nil
}
func (stubDataflow) Area(arch.Config) float64 { return 1 }
func (stubDataflow) LayerCost(arch.Config, nn.Layer, sim.Phase) (metrics.Result, error) {
	return metrics.Result{}, nil
}
func (stubDataflow) Mappings(arch.Config, *nn.Network) []dataflow.Mapping {
	return []dataflow.Mapping{{}}
}
func (stubDataflow) Apply(base arch.Config, _ dataflow.Mapping) arch.Config { return base }

func TestRegistryLookup(t *testing.T) {
	dataflow.Register(stubDataflow{id: "stub-conf"})
	if _, err := dataflow.Get("STUB-CONF"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := dataflow.Get("stub conf nonexistent"); !errors.Is(err, dataflow.ErrUnknownDataflow) {
		t.Errorf("unknown ID: got %v, want ErrUnknownDataflow", err)
	}
	if id, ok := dataflow.Normalize("no-such-dataflow"); ok {
		t.Errorf("unexpected alias hit %q", id)
	}
	if id, ok := dataflow.Normalize("INCA"); !ok || id != "is" {
		t.Errorf("Normalize(INCA) = %q, %v; want is, true", id, ok)
	}
	if id, ok := dataflow.Normalize("WS-Baseline"); !ok || id != "ws" {
		t.Errorf("Normalize(WS-Baseline) = %q, %v; want ws, true", id, ok)
	}
	if id, ok := dataflow.Normalize("TitanRTX"); !ok || id != "gpu" {
		t.Errorf("Normalize(TitanRTX) = %q, %v; want gpu, true", id, ok)
	}

	defer func() {
		if recover() == nil {
			t.Errorf("duplicate Register did not panic")
		}
	}()
	dataflow.Register(stubDataflow{id: "stub-conf"})
}
