// Package conformance is the shared invariant suite every registered
// dataflow backend must pass, so IS, WS, OS, and the GPU roofline
// cannot drift apart behaviorally: determinism, report field sanity,
// context handling, argument validation, capability honesty, and
// mapping-space legality are asserted through one table of checks
// applied uniformly. Backend test packages call Run on their own
// dataflow; conformance's test package runs the whole registry.
package conformance

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// Run asserts the shared dataflow invariants on d. The checks use
// LeNet5 — small enough that the full table stays fast even under
// -race — and every supported phase from d's capabilities.
func Run(t *testing.T, d dataflow.Dataflow) {
	t.Helper()
	caps := d.Capabilities()
	if caps.ID == "" || caps.ID != d.ID() {
		t.Fatalf("capabilities ID %q does not match ID() %q", caps.ID, d.ID())
	}
	if len(caps.Phases) == 0 {
		t.Fatalf("%s: capabilities declare no phases", d.ID())
	}
	cfg := d.DefaultConfig()
	s, err := d.New(cfg)
	if err != nil {
		t.Fatalf("%s: New(DefaultConfig): %v", d.ID(), err)
	}

	t.Run("determinism", func(t *testing.T) { checkDeterminism(t, d, s) })
	t.Run("report-sanity", func(t *testing.T) { checkReportSanity(t, d, s) })
	t.Run("context", func(t *testing.T) { checkContext(t, d, s) })
	t.Run("arguments", func(t *testing.T) { checkArguments(t, d, s) })
	t.Run("phases", func(t *testing.T) { checkPhases(t, d, s) })
	t.Run("mappings", func(t *testing.T) { checkMappings(t, d) })
	t.Run("area", func(t *testing.T) { checkArea(t, d) })
}

// checkDeterminism: two simulations of the same input produce
// byte-identical CSV renderings — the property the memo cache and the
// golden outputs rely on.
func checkDeterminism(t *testing.T, d dataflow.Dataflow, s sim.Simulator) {
	for _, ph := range d.Capabilities().Phases {
		var out [2]bytes.Buffer
		for i := range out {
			rep, err := s.Simulate(context.Background(), nn.LeNet5(), ph)
			if err != nil {
				t.Fatalf("%s/%s: %v", d.ID(), ph, err)
			}
			if err := rep.WriteCSV(&out[i]); err != nil {
				t.Fatalf("%s/%s: WriteCSV: %v", d.ID(), ph, err)
			}
		}
		if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
			t.Errorf("%s/%s: repeated simulation is not deterministic", d.ID(), ph)
		}
	}
}

// checkReportSanity: every supported phase yields a report with a
// plausible shape — named arch, positive batch, finite positive energy
// and latency, utilizations within [0, 1].
func checkReportSanity(t *testing.T, d dataflow.Dataflow, s sim.Simulator) {
	net := nn.LeNet5()
	for _, ph := range d.Capabilities().Phases {
		rep, err := s.Simulate(context.Background(), net, ph)
		if err != nil {
			t.Fatalf("%s/%s: %v", d.ID(), ph, err)
		}
		if rep.Arch == "" {
			t.Errorf("%s/%s: report has no arch name", d.ID(), ph)
		}
		if rep.Network != net.Name {
			t.Errorf("%s/%s: report network %q, want %q", d.ID(), ph, rep.Network, net.Name)
		}
		if rep.Phase != ph {
			t.Errorf("%s/%s: report phase %v", d.ID(), ph, rep.Phase)
		}
		if rep.Batch <= 0 {
			t.Errorf("%s/%s: batch %d not positive", d.ID(), ph, rep.Batch)
		}
		e := rep.Total.Energy.Total()
		if !(e > 0) || math.IsInf(e, 0) || math.IsNaN(e) {
			t.Errorf("%s/%s: total energy %v not finite positive", d.ID(), ph, e)
		}
		lat := rep.Total.Latency
		if !(lat > 0) || math.IsInf(lat, 0) || math.IsNaN(lat) {
			t.Errorf("%s/%s: latency %v not finite positive", d.ID(), ph, lat)
		}
		for _, lr := range rep.Layers {
			if lr.Utilization < 0 || lr.Utilization > 1 || math.IsNaN(lr.Utilization) {
				t.Errorf("%s/%s: layer %s utilization %v outside [0,1]",
					d.ID(), ph, lr.Layer.Name, lr.Utilization)
			}
		}
	}
}

// checkContext: a context that ended before the call surfaces as its
// error, never as a report.
func checkContext(t *testing.T, d dataflow.Dataflow, s sim.Simulator) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ph := d.Capabilities().Phases[0]
	if _, err := s.Simulate(ctx, nn.LeNet5(), ph); !errors.Is(err, context.Canceled) {
		t.Errorf("%s: pre-cancelled context: got %v, want context.Canceled", d.ID(), err)
	}
}

// checkArguments: nil and empty networks and unknown phases are
// rejected with the shared sentinels, not panics or garbage reports.
func checkArguments(t *testing.T, d dataflow.Dataflow, s sim.Simulator) {
	ctx := context.Background()
	ph := d.Capabilities().Phases[0]
	if _, err := s.Simulate(ctx, nil, ph); !errors.Is(err, sim.ErrNilNetwork) {
		t.Errorf("%s: nil network: got %v, want ErrNilNetwork", d.ID(), err)
	}
	if _, err := s.Simulate(ctx, &nn.Network{Name: "empty"}, ph); !errors.Is(err, sim.ErrEmptyNetwork) {
		t.Errorf("%s: empty network: got %v, want ErrEmptyNetwork", d.ID(), err)
	}
	if _, err := s.Simulate(ctx, nn.LeNet5(), sim.Phase(99)); err == nil {
		t.Errorf("%s: unknown phase accepted", d.ID())
	}
}

// checkPhases: capabilities are honest — a declared phase simulates, an
// undeclared one fails with ErrUnsupportedPhase.
func checkPhases(t *testing.T, d dataflow.Dataflow, s sim.Simulator) {
	caps := d.Capabilities()
	for _, ph := range []sim.Phase{sim.Inference, sim.Training} {
		_, err := s.Simulate(context.Background(), nn.LeNet5(), ph)
		if caps.Supports(ph) {
			if err != nil {
				t.Errorf("%s: declared phase %s failed: %v", d.ID(), ph, err)
			}
		} else if !errors.Is(err, dataflow.ErrUnsupportedPhase) {
			t.Errorf("%s: undeclared phase %s: got %v, want ErrUnsupportedPhase", d.ID(), ph, err)
		}
	}
}

// checkMappings: the mapping space contains the base point, the zero
// mapping is an identity rewrite, and every enumerated point lowers to
// a configuration the backend can actually construct.
func checkMappings(t *testing.T, d dataflow.Dataflow) {
	base := d.DefaultConfig()
	net := nn.LeNet5()
	maps := d.Mappings(base, net)
	if len(maps) == 0 {
		t.Fatalf("%s: empty mapping space", d.ID())
	}
	hasBase := false
	for _, m := range maps {
		if m.IsZero() {
			hasBase = true
		}
	}
	if !hasBase {
		t.Errorf("%s: mapping space omits the base point", d.ID())
	}
	if got := d.Apply(base, dataflow.Mapping{}); got != base {
		t.Errorf("%s: Apply(base, zero) rewrote the base configuration", d.ID())
	}
	for _, m := range maps {
		cfg := d.Apply(base, m)
		if _, err := d.New(cfg); err != nil {
			t.Errorf("%s: mapping %s lowered to an unconstructible config: %v", d.ID(), m.Label(), err)
		}
	}
}

// checkArea: the area hook reports a finite positive area for the
// default configuration.
func checkArea(t *testing.T, d dataflow.Dataflow) {
	a := d.Area(d.DefaultConfig())
	if !(a > 0) || math.IsInf(a, 0) || math.IsNaN(a) {
		t.Errorf("%s: area %v not finite positive", d.ID(), a)
	}
}
