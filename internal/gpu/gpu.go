// Package gpu models the non-RRAM comparison point of the paper's Fig. 15:
// a Titan RTX described by the aggregate Table II specification (16.3
// TFLOPs peak, 672 GB/s memory bandwidth, 280 W, 754 mm²), evaluated with
// a roofline model.
package gpu

import (
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// Spec carries the GPU datasheet values of Table II.
type Spec struct {
	Name            string
	PeakFLOPs       float64 // FLOP/s
	MemoryBandwidth float64 // bytes/s
	Power           float64 // W (board power, assumed during execution)
	AreaMM2         float64
	BatchSize       int
	// Efficiency is the fraction of peak FLOPs dense CNN kernels sustain
	// (cuDNN-class kernels reach roughly 40-60% on this hardware).
	Efficiency float64
	// BytesPerMAC approximates DRAM traffic per MAC for a tiled GEMM
	// implementation (weights + activations with cache reuse).
	BytesPerMAC float64
}

// TitanRTX returns the Table II GPU configuration.
func TitanRTX() Spec {
	return Spec{
		Name:            "TitanRTX",
		PeakFLOPs:       16.3e12,
		MemoryBandwidth: 672e9,
		Power:           280,
		AreaMM2:         754,
		BatchSize:       64,
		Efficiency:      0.5,
		BytesPerMAC:     0.1,
	}
}

// Machine adapts the spec to the sim.Simulator interface.
type Machine struct {
	Spec Spec
}

// New builds a GPU model.
func New(s Spec) *Machine { return &Machine{Spec: s} }

// Simulate estimates one batch with a roofline: time is the max of the
// compute time (MACs at sustained FLOPs; training costs 3× forward MACs
// for forward + input gradients + weight gradients) and the memory time,
// and energy is board power × time.
func (m *Machine) Simulate(net *nn.Network, phase sim.Phase) *sim.Report {
	macs := float64(net.TotalMACs()) * float64(m.Spec.BatchSize)
	if phase == sim.Training {
		macs *= 3
	}
	flops := 2 * macs
	computeTime := flops / (m.Spec.PeakFLOPs * m.Spec.Efficiency)
	memTime := macs * m.Spec.BytesPerMAC / m.Spec.MemoryBandwidth
	t := computeTime
	if memTime > t {
		t = memTime
	}
	var r metrics.Result
	r.Latency = t
	// The whole board draws power while the kernel runs; attribute it to
	// the Digital component (the GPU has no breakdown in the paper).
	r.Energy.Add(metrics.Digital, m.Spec.Power*t)
	return &sim.Report{
		Arch:    m.Spec.Name,
		Network: net.Name,
		Phase:   phase,
		Batch:   m.Spec.BatchSize,
		Total:   r,
	}
}

// ThroughputPerArea returns images/s/mm² for an iso-area comparison
// (Fig. 15b).
func ThroughputPerArea(rep *sim.Report, areaMM2 float64) float64 {
	if areaMM2 == 0 {
		return 0
	}
	return rep.Throughput() / areaMM2
}
