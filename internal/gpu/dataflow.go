package gpu

import (
	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// DataflowID is the registry ID of the GPU roofline backend.
const DataflowID = "gpu"

func init() { dataflow.Register(gpuDataflow{}) }

// gpuDataflow adapts the Titan RTX roofline to the dataflow.Dataflow
// interface. The backend is fixed: arch.Config does not shape the
// machine, every override collapses to one sweep cache cell, and the
// mapping space is the single roofline point.
type gpuDataflow struct{}

func (gpuDataflow) ID() string { return DataflowID }

func (gpuDataflow) Capabilities() dataflow.Capabilities {
	return dataflow.Capabilities{
		ID:           DataflowID,
		Name:         "GPU roofline",
		Description:  "Titan RTX datasheet roofline (Table II): peak FLOPs vs memory bandwidth",
		Phases:       []sim.Phase{sim.Inference, sim.Training},
		Configurable: false,
		Aliases:      []string{"titan-rtx", "roofline"},
	}
}

// DefaultConfig carries only the display name — the roofline has no
// crossbar geometry, and New ignores its argument entirely.
func (gpuDataflow) DefaultConfig() arch.Config {
	return arch.Config{Name: TitanRTX().Name}
}

func (gpuDataflow) New(arch.Config) (sim.Simulator, error) {
	return sim.WrapID(New(TitanRTX()), DataflowID), nil
}

func (gpuDataflow) Area(arch.Config) float64 { return TitanRTX().AreaMM2 }

// LayerCost prices one layer with the same roofline as Simulate,
// applied to the layer's MAC volume alone.
func (gpuDataflow) LayerCost(cfg arch.Config, l nn.Layer, phase sim.Phase) (metrics.Result, error) {
	spec := TitanRTX()
	macs := float64(l.MACs()) * float64(spec.BatchSize)
	if phase == sim.Training {
		macs *= 3
	}
	var r metrics.Result
	if macs == 0 {
		return r, nil
	}
	flops := 2 * macs
	computeTime := flops / (spec.PeakFLOPs * spec.Efficiency)
	memTime := macs * spec.BytesPerMAC / spec.MemoryBandwidth
	t := computeTime
	if memTime > t {
		t = memTime
	}
	r.Latency = t
	r.Energy.Add(metrics.Digital, spec.Power*t)
	return r, nil
}

func (gpuDataflow) Mappings(arch.Config, *nn.Network) []dataflow.Mapping {
	return []dataflow.Mapping{{}}
}

func (gpuDataflow) Apply(base arch.Config, _ dataflow.Mapping) arch.Config {
	return base
}
