package gpu

import (
	"testing"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/core"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

func TestTitanRTXSpecMatchesTableII(t *testing.T) {
	s := TitanRTX()
	if s.PeakFLOPs != 16.3e12 || s.MemoryBandwidth != 672e9 || s.Power != 280 || s.AreaMM2 != 754 {
		t.Fatal("Titan RTX spec mismatch with Table II")
	}
}

func TestSimulateScalesWithWork(t *testing.T) {
	m := New(TitanRTX())
	small := m.Simulate(nn.ResNet18(), sim.Inference)
	big := m.Simulate(nn.VGG16(), sim.Inference)
	if big.Total.Latency <= small.Total.Latency {
		t.Fatal("VGG16 should take longer than ResNet18")
	}
	trn := m.Simulate(nn.ResNet18(), sim.Training)
	inf := m.Simulate(nn.ResNet18(), sim.Inference)
	if trn.Total.Latency < 2.9*inf.Total.Latency || trn.Total.Latency > 3.1*inf.Total.Latency {
		t.Fatalf("training should cost ~3x forward: %v vs %v", trn.Total.Latency, inf.Total.Latency)
	}
}

func TestEnergyIsPowerTimesTime(t *testing.T) {
	m := New(TitanRTX())
	r := m.Simulate(nn.VGG16(), sim.Training)
	want := m.Spec.Power * r.Total.Latency
	got := r.Total.Energy.Total()
	if got < want*0.999 || got > want*1.001 {
		t.Fatalf("energy = %v, want power×time = %v", got, want)
	}
}

// TestFig15INCABeatsGPU pins the Fig. 15 comparison: in training, INCA is
// both more energy-efficient and (per iso-area) higher-throughput than the
// GPU, especially on light models.
func TestFig15INCABeatsGPU(t *testing.T) {
	g := New(TitanRTX())
	inca := core.New(arch.INCA())
	incaArea := arch.INCA().Area().Total()
	for _, net := range nn.PaperModels() {
		gr := g.Simulate(net, sim.Training)
		ir := inca.Simulate(net, sim.Training)
		if eff := ir.Total.EnergyEfficiencyVs(gr.Total); eff < 2 {
			t.Errorf("%s: INCA/GPU energy efficiency = %.2f, want >= 2", net.Name, eff)
		}
		gpuTPA := ThroughputPerArea(gr, g.Spec.AreaMM2)
		incaTPA := ThroughputPerArea(ir, incaArea)
		if incaTPA <= gpuTPA {
			t.Errorf("%s: INCA iso-area throughput %.2f should beat GPU %.2f",
				net.Name, incaTPA, gpuTPA)
		}
	}
}

func TestThroughputPerAreaZeroArea(t *testing.T) {
	if ThroughputPerArea(&sim.Report{}, 0) != 0 {
		t.Fatal("zero area should not divide by zero")
	}
}
