package fault

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff computes capped exponential retry delays with deterministic
// jitter: attempt n (0-based) waits a uniform draw from [d/2, d) where
// d = min(Base << n, Max). The jitter stream is seeded, so a retry
// schedule is reproducible; a Backoff is safe for concurrent use (the
// sweep engine gives each cell its own, the HTTP client shares one).
type Backoff struct {
	base, max time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff returns a backoff schedule. base <= 0 defaults to 1ms;
// max <= 0 defaults to 30s.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the wait before retry number attempt (0-based).
func (b *Backoff) Delay(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	if attempt > 30 {
		attempt = 30
	}
	d := b.base << uint(attempt)
	if d <= 0 || d > b.max {
		d = b.max
	}
	b.mu.Lock()
	f := b.rng.Float64()
	b.mu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// Sleep blocks for d or until ctx ends, returning ctx's error in the
// latter case — the shared ctx-aware wait of every retry loop.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
