// Package fault is the deterministic fault-injection subsystem behind
// the repo's robustness layer. An Injector holds a set of composable
// rules — injected errors, panics, added latency, and mid-operation
// context cancellation — keyed by stable site names ("sweep/cell/<key>",
// "serve/request", ...) and driven by seeded per-site PRNG streams, so a
// chaos run is reproducible: the same seed and the same per-site call
// sequence trigger the same faults, independent of how unrelated sites
// interleave across goroutines.
//
// The package also defines the transient/terminal error vocabulary the
// retry layers share: MarkTransient wraps an error as retryable and
// IsTransient classifies one, so the sweep engine and the HTTP client
// agree on what is worth retrying.
package fault

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the root of every error the injector fabricates. The
// concrete errors wrap it (and are marked transient unless the rule
// supplies its own error), so callers test with errors.Is.
var ErrInjected = errors.New("fault: injected error")

// Kind selects what a rule does when it fires.
type Kind int

const (
	// KindError makes Hit return the rule's error (ErrInjected, marked
	// transient, when the rule does not supply one).
	KindError Kind = iota
	// KindPanic makes Hit panic with a descriptive value — exercising the
	// caller's recovery path exactly like a real programming error.
	KindPanic
	// KindLatency makes Hit sleep for the rule's Delay (bounded by the
	// context) before returning nil — a slow dependency, not a failed one.
	KindLatency
	// KindCancel is enacted only by CancelAfter: the derived context is
	// cancelled Delay after the hit — an abandonment mid-operation.
	KindCancel
)

// String returns the kind's display name.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindLatency:
		return "latency"
	case KindCancel:
		return "cancel"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rule is one composable fault point. The zero Prob means "always": a
// Rule{Site: s, Kind: KindError} fires on every hit of s.
type Rule struct {
	// Site names the fault point the rule arms. A trailing '*' is a
	// prefix wildcard: "sweep/cell/*" matches every cell site. Each
	// concrete site still draws from its own PRNG stream, so wildcard
	// rules stay reproducible per site.
	Site string
	Kind Kind
	// Prob is the per-hit trigger probability in (0, 1); values <= 0 or
	// >= 1 mean the rule fires on every hit.
	Prob float64
	// Max bounds how many times the rule fires across all matching sites;
	// 0 means unlimited.
	Max int
	// Err overrides the injected error for KindError rules. nil injects
	// ErrInjected marked transient.
	Err error
	// Delay is the added latency for KindLatency rules and the
	// hit-to-cancellation delay for KindCancel rules.
	Delay time.Duration
}

// Injector is a seeded set of fault rules. The zero value and the nil
// pointer are both inert: every method on a nil *Injector is a cheap
// no-op, so integration points pay nothing when chaos is off.
type Injector struct {
	seed int64

	mu        sync.Mutex
	rules     []*armedRule
	hits      map[string]int64
	triggered map[string]int64
}

// armedRule pairs a rule with its per-site PRNG streams and fire count.
type armedRule struct {
	Rule
	index   int
	fired   int
	streams map[string]*rand.Rand
}

// New returns an empty injector whose per-site streams derive from seed.
func New(seed int64) *Injector {
	return &Injector{
		seed:      seed,
		hits:      make(map[string]int64),
		triggered: make(map[string]int64),
	}
}

// Add arms one rule. Rules are evaluated in Add order on every hit.
func (i *Injector) Add(r Rule) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = append(i.rules, &armedRule{Rule: r, index: len(i.rules), streams: make(map[string]*rand.Rand)})
}

// matches reports whether the rule arms this concrete site.
func (r *armedRule) matches(site string) bool {
	if p, ok := strings.CutSuffix(r.Site, "*"); ok {
		return strings.HasPrefix(site, p)
	}
	return r.Site == site
}

// stream returns the rule's PRNG stream for one concrete site, creating
// it deterministically from (seed, rule index, site) on first use.
func (i *Injector) stream(r *armedRule, site string) *rand.Rand {
	s, ok := r.streams[site]
	if !ok {
		s = rand.New(rand.NewSource(subSeed(i.seed, fmt.Sprintf("rule/%d/%s", r.index, site))))
		r.streams[site] = s
	}
	return s
}

// fires draws the rule's trigger decision for one hit of site. Must hold
// i.mu: the draw advances the per-site stream.
func (i *Injector) fires(r *armedRule, site string) bool {
	if r.Max > 0 && r.fired >= r.Max {
		return false
	}
	if r.Prob > 0 && r.Prob < 1 && i.stream(r, site).Float64() >= r.Prob {
		return false
	}
	r.fired++
	i.triggered[site]++
	return true
}

// Hit evaluates site's armed rules (KindCancel excluded — see
// CancelAfter) and enacts what fires: the latencies of every firing
// KindLatency rule are slept first (bounded by ctx), then the first
// firing KindPanic rule panics, then the first firing KindError rule's
// error is returned. A nil injector, an unmatched site, and a hit where
// nothing fires all return nil.
func (i *Injector) Hit(ctx context.Context, site string) error {
	if i == nil {
		return nil
	}
	var (
		sleep    time.Duration
		panicHit bool
		injected error
	)
	i.mu.Lock()
	i.hits[site]++
	for _, r := range i.rules {
		if r.Kind == KindCancel || !r.matches(site) {
			continue
		}
		if !i.fires(r, site) {
			continue
		}
		switch r.Kind {
		case KindLatency:
			sleep += r.Delay
		case KindPanic:
			if injected == nil {
				panicHit = true
			}
		case KindError:
			if injected == nil && !panicHit {
				injected = r.Err
				if injected == nil {
					injected = MarkTransient(fmt.Errorf("%w at %s", ErrInjected, site))
				}
			}
		}
	}
	i.mu.Unlock()

	if sleep > 0 {
		t := time.NewTimer(sleep)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if panicHit {
		panic(fmt.Sprintf("fault: injected panic at %s", site))
	}
	return injected
}

// CancelAfter evaluates site's KindCancel rules. When one fires it
// returns a context derived from ctx that is cancelled the rule's Delay
// later — a request abandoned mid-flight. The returned CancelFunc must
// always be called (it releases the timer); when nothing fires it is a
// no-op and ctx is returned unchanged.
func (i *Injector) CancelAfter(ctx context.Context, site string) (context.Context, context.CancelFunc) {
	if i == nil {
		return ctx, func() {}
	}
	var delay time.Duration
	fired := false
	i.mu.Lock()
	i.hits[site]++
	for _, r := range i.rules {
		if r.Kind != KindCancel || !r.matches(site) {
			continue
		}
		if i.fires(r, site) && !fired {
			fired, delay = true, r.Delay
		}
	}
	i.mu.Unlock()
	if !fired {
		return ctx, func() {}
	}
	ctx, cancel := context.WithCancel(ctx)
	timer := time.AfterFunc(delay, cancel)
	return ctx, func() {
		timer.Stop()
		cancel()
	}
}

// StuckCell is one device-level stuck-at fault: a crossbar cell pinned
// at LRS (low-resistance, full-scale conductance) or HRS (high-
// resistance, zero conductance).
type StuckCell struct {
	Index int
	LRS   bool
}

// StuckCells deterministically selects stuck-at faults for an array of
// the given cell count: each cell fails independently with probability
// rate, and a failed cell is stuck at LRS or HRS with equal odds. The
// selection derives from (seed, site) only — it does not consume the
// rule streams — so a given site faults the same cells on every run.
func (i *Injector) StuckCells(site string, cells int, rate float64) []StuckCell {
	if i == nil || rate <= 0 || cells <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(subSeed(i.seed, "stuck/"+site)))
	var out []StuckCell
	for c := 0; c < cells; c++ {
		if rng.Float64() < rate {
			out = append(out, StuckCell{Index: c, LRS: rng.Intn(2) == 0})
		}
	}
	return out
}

// Hits reports how many times site was consulted (Hit or CancelAfter).
func (i *Injector) Hits(site string) int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hits[site]
}

// Triggered reports how many rule firings site has seen.
func (i *Injector) Triggered(site string) int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.triggered[site]
}

// TriggeredTotal sums rule firings across all sites.
func (i *Injector) TriggeredTotal() int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	var n int64
	for _, v := range i.triggered {
		n += v
	}
	return n
}

// subSeed derives a child seed from the injector seed and a label.
func subSeed(seed int64, label string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, label)
	return int64(h.Sum64())
}

// transientError marks its cause as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient is the marker interface the classifier honors; any error
// whose chain implements it with a true return is retryable.
type Transient interface{ Transient() bool }

func (e *transientError) Transient() bool { return true }

// MarkTransient wraps err so IsTransient reports true for it (and for
// anything wrapping it). A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient classifies an error as retryable: something in its chain
// was marked transient (or implements Transient() true) and it is not a
// context error — cancelled and timed-out work must not be retried, the
// deadline is already gone.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t Transient
	return errors.As(err, &t) && t.Transient()
}
