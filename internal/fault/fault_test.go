package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestHitErrorRuleDeterministic(t *testing.T) {
	draw := func() []bool {
		inj := New(11)
		inj.Add(Rule{Site: "site/a", Kind: KindError, Prob: 0.5})
		var fired []bool
		for n := 0; n < 64; n++ {
			err := inj.Hit(context.Background(), "site/a")
			fired = append(fired, err != nil)
			if err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("injected error %v does not wrap ErrInjected", err)
				}
				if !IsTransient(err) {
					t.Fatalf("default injected error %v is not transient", err)
				}
			}
		}
		return fired
	}
	a, b := draw(), draw()
	some := false
	for n := range a {
		if a[n] != b[n] {
			t.Fatalf("hit %d differs across identically-seeded runs", n)
		}
		some = some || a[n]
	}
	if !some {
		t.Fatal("probability-0.5 rule never fired in 64 hits")
	}
}

func TestSiteStreamsAreIndependent(t *testing.T) {
	// Interleaving hits of site/b must not disturb site/a's sequence:
	// per-site streams make wildcard rules reproducible under concurrency.
	seq := func(noise bool) []bool {
		inj := New(3)
		inj.Add(Rule{Site: "cell/*", Kind: KindError, Prob: 0.4})
		var fired []bool
		for n := 0; n < 32; n++ {
			if noise {
				inj.Hit(context.Background(), "cell/b")
				inj.Hit(context.Background(), "cell/c")
			}
			fired = append(fired, inj.Hit(context.Background(), "cell/a") != nil)
		}
		return fired
	}
	clean, noisy := seq(false), seq(true)
	for n := range clean {
		if clean[n] != noisy[n] {
			t.Fatalf("site/a draw %d changed when other sites interleaved", n)
		}
	}
}

func TestRuleMaxBoundsFirings(t *testing.T) {
	inj := New(1)
	inj.Add(Rule{Site: "s", Kind: KindError, Max: 2})
	fired := 0
	for n := 0; n < 10; n++ {
		if inj.Hit(context.Background(), "s") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("Max:2 rule fired %d times", fired)
	}
	if got := inj.Triggered("s"); got != 2 {
		t.Fatalf("Triggered = %d, want 2", got)
	}
	if got := inj.Hits("s"); got != 10 {
		t.Fatalf("Hits = %d, want 10", got)
	}
}

func TestPanicAndLatencyKinds(t *testing.T) {
	inj := New(5)
	inj.Add(Rule{Site: "slow", Kind: KindLatency, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := inj.Hit(context.Background(), "slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency rule slept only %v", d)
	}

	// Injected latency is bounded by the context.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	inj2 := New(5)
	inj2.Add(Rule{Site: "slow", Kind: KindLatency, Delay: time.Minute})
	if err := inj2.Hit(ctx, "slow"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ctx-bounded latency returned %v", err)
	}

	inj3 := New(5)
	inj3.Add(Rule{Site: "boom", Kind: KindPanic})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic rule did not panic")
			}
		}()
		inj3.Hit(context.Background(), "boom")
	}()
}

func TestCancelAfter(t *testing.T) {
	inj := New(7)
	inj.Add(Rule{Site: "req", Kind: KindCancel, Delay: 10 * time.Millisecond})
	ctx, cancel := inj.CancelAfter(context.Background(), "req")
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("cancel rule never cancelled the derived context")
	}

	// No firing rule → same context back, usable cancel.
	base := context.Background()
	got, cancel2 := inj.CancelAfter(base, "other-site")
	defer cancel2()
	if got != base {
		t.Fatal("unmatched site should return ctx unchanged")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if err := inj.Hit(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := inj.CancelAfter(context.Background(), "x")
	cancel()
	if ctx.Err() != nil {
		t.Fatal("nil injector cancelled the context")
	}
	if cells := inj.StuckCells("x", 100, 0.5); cells != nil {
		t.Fatal("nil injector selected stuck cells")
	}
	if inj.Hits("x") != 0 || inj.Triggered("x") != 0 || inj.TriggeredTotal() != 0 {
		t.Fatal("nil injector reported counters")
	}
}

func TestStuckCellsDeterministicAndRateProportional(t *testing.T) {
	inj := New(99)
	a := inj.StuckCells("xbar/0", 10000, 0.1)
	b := New(99).StuckCells("xbar/0", 10000, 0.1)
	if len(a) != len(b) {
		t.Fatalf("selection size differs: %d vs %d", len(a), len(b))
	}
	lrs := 0
	for n := range a {
		if a[n] != b[n] {
			t.Fatalf("stuck cell %d differs across identically-seeded injectors", n)
		}
		if a[n].Index < 0 || a[n].Index >= 10000 {
			t.Fatalf("index %d out of range", a[n].Index)
		}
		if a[n].LRS {
			lrs++
		}
	}
	if len(a) < 800 || len(a) > 1200 {
		t.Fatalf("rate 0.1 selected %d of 10000 cells", len(a))
	}
	if lrs < len(a)/3 || lrs > 2*len(a)/3 {
		t.Fatalf("LRS/HRS split is skewed: %d of %d", lrs, len(a))
	}
	if other := inj.StuckCells("xbar/1", 10000, 0.1); len(other) > 0 && other[0] == a[0] && other[len(other)-1] == a[len(a)-1] && len(other) == len(a) {
		t.Fatal("distinct sites produced the identical selection")
	}
}

func TestTransientMarking(t *testing.T) {
	base := errors.New("flaky device")
	if !IsTransient(MarkTransient(base)) {
		t.Fatal("marked error not classified transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", MarkTransient(base))) {
		t.Fatal("wrapping must preserve transience")
	}
	if IsTransient(base) {
		t.Fatal("unmarked error classified transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil classified transient")
	}
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) != nil")
	}
	// Context errors are terminal even when marked: the deadline is gone.
	if IsTransient(MarkTransient(context.Canceled)) {
		t.Fatal("cancelled work must not be retried")
	}
	if IsTransient(fmt.Errorf("%w: %w", MarkTransient(errors.New("x")), context.DeadlineExceeded)) {
		t.Fatal("deadline-exceeded work must not be retried")
	}
}

func TestBackoffDeterministicCappedJittered(t *testing.T) {
	a, b := NewBackoff(time.Millisecond, 8*time.Millisecond, 42), NewBackoff(time.Millisecond, 8*time.Millisecond, 42)
	for attempt := 0; attempt < 12; attempt++ {
		da, db := a.Delay(attempt), b.Delay(attempt)
		if da != db {
			t.Fatalf("attempt %d: identically-seeded delays differ (%v vs %v)", attempt, da, db)
		}
		cap := time.Millisecond << uint(min(attempt, 3))
		if da < cap/2 || da >= cap {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, da, cap/2, cap)
		}
	}
	// Deep attempts must not overflow.
	if d := a.Delay(300); d <= 0 || d > 8*time.Millisecond {
		t.Fatalf("deep attempt delay %v", d)
	}
}

func TestBackoffConcurrentUse(t *testing.T) {
	b := NewBackoff(time.Microsecond, time.Millisecond, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 100; n++ {
				if d := b.Delay(n % 12); d <= 0 {
					t.Error("non-positive delay")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSleepHonorsContext(t *testing.T) {
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on dead ctx = %v", err)
	}
}

func TestConcurrentHitsAreRaceFree(t *testing.T) {
	inj := New(2)
	inj.Add(Rule{Site: "p/*", Kind: KindError, Prob: 0.3})
	inj.Add(Rule{Site: "p/*", Kind: KindLatency, Prob: 0.1, Delay: time.Microsecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			site := fmt.Sprintf("p/%d", g)
			for n := 0; n < 200; n++ {
				inj.Hit(context.Background(), site)
			}
		}()
	}
	wg.Wait()
	var hits int64
	for g := 0; g < 8; g++ {
		hits += inj.Hits(fmt.Sprintf("p/%d", g))
	}
	if hits != 1600 {
		t.Fatalf("hits = %d, want 1600", hits)
	}
}
