package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/sim"
)

// loadCell pairs a request body with the expected response bytes,
// computed once through the direct facade path before any traffic.
type loadCell struct {
	body string
	want []byte
}

// TestConcurrentSimulateByteIdentity fires 48 concurrent /v1/simulate
// requests (well above the required 32) at a small admission window so
// queueing, cache singleflight, and response encoding all race, and
// asserts every body is byte-identical to the direct facade encoding.
func TestConcurrentSimulateByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxInflight: 4, QueueDepth: 64})

	encode := func(cfg arch.Config, model string, phase sim.Phase) []byte {
		b, err := json.Marshal(directReport(t, cfg, model, phase))
		if err != nil {
			t.Fatal(err)
		}
		return append(b, '\n')
	}
	cells := []loadCell{
		{`{"arch":"inca","model":"LeNet5","phase":"inference"}`,
			encode(arch.INCA(), "LeNet5", sim.Inference)},
		{`{"arch":"baseline","model":"LeNet5","phase":"training"}`,
			encode(arch.Baseline(), "LeNet5", sim.Training)},
		{`{"arch":"inca","model":"VGG16-CIFAR","phase":"inference"}`,
			encode(arch.INCA(), "VGG16-CIFAR", sim.Inference)},
	}

	const n = 48
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		cell := cells[i%len(cells)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(cell.body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, buf.Bytes())
				return
			}
			if !bytes.Equal(buf.Bytes(), cell.want) {
				errs <- fmt.Errorf("response for %s differs from direct facade encoding", cell.body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentMixedLoad hammers every endpoint family at once under
// the race detector: simulates, sweeps, models, metrics, experiments.
func TestConcurrentMixedLoad(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxInflight: 4, QueueDepth: 64})
	requests := []func() (*http.Response, error){
		func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/simulate", "application/json",
				strings.NewReader(`{"arch":"inca","model":"LeNet5","phase":"inference"}`))
		},
		func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/sweep", "application/json",
				strings.NewReader(`{"archs":["inca","baseline"],"models":["LeNet5"],"phases":["inference"]}`))
		},
		func() (*http.Response, error) { return http.Get(ts.URL + "/v1/models") },
		func() (*http.Response, error) { return http.Get(ts.URL + "/metrics") },
		func() (*http.Response, error) { return http.Get(ts.URL + "/v1/experiments") },
		func() (*http.Response, error) { return http.Get(ts.URL + "/healthz") },
	}
	var wg sync.WaitGroup
	errs := make(chan error, 36)
	for i := 0; i < 36; i++ {
		req := requests[i%len(requests)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := req()
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %.200s", resp.StatusCode, buf.Bytes())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestGracefulShutdownDrainsInflight pins a request inside the admitted
// section, requests shutdown, and asserts the pinned request still
// completes with a full response while new connections are refused.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	testHookAdmitted = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	defer func() { testHookAdmitted = nil }()

	s := New(Options{DrainTimeout: 10 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	type result struct {
		status int
		body   []byte
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/simulate", "application/json",
			strings.NewReader(`{"arch":"inca","model":"LeNet5","phase":"inference"}`))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		inflight <- result{status: resp.StatusCode, body: buf.Bytes()}
	}()

	<-entered // the request holds its execution slot
	cancel()  // request graceful shutdown

	// Give the listener a moment to close, then let the pinned request go.
	time.Sleep(100 * time.Millisecond)
	close(release)

	res := <-inflight
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	if res.status != http.StatusOK || !json.Valid(res.body) {
		t.Fatalf("drained request: status %d body %.120s", res.status, res.body)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after clean drain", err)
	}

	// The listener is closed: new connections must be refused.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting connections after shutdown")
	}
}

// TestCacheSingleflightUnderLoad asserts that concurrent identical
// requests produce exactly one simulation (one cache miss) and that the
// rest are hits or singleflight-coalesced waits.
func TestCacheSingleflightUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxInflight: 8, QueueDepth: 64})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
				strings.NewReader(`{"arch":"inca","model":"LeNet5","phase":"inference"}`))
			if err == nil {
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	stats := s.Cache().Stats()
	if stats.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (singleflight should coalesce)", stats.Misses)
	}
	if stats.Entries != 1 {
		t.Fatalf("entries = %d, want 1", stats.Entries)
	}
	if got := stats.Hits + stats.Misses; got != 32 {
		t.Fatalf("hits+misses = %d, want 32", got)
	}
}
