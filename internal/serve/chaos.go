package serve

import (
	"net/http"
)

// The serve layer's fault-injection sites. A fault.Injector handed to
// Options.Inject arms rules against these names; with no injector the
// chaos path costs nothing.
const (
	// ChaosSiteRequest is hit once per request before routing: error
	// rules fail the request with 500, panic rules exercise the recovery
	// middleware, latency rules slow the whole exchange.
	ChaosSiteRequest = "serve/request"
	// ChaosSiteExec is hit inside the admitted section while the request
	// holds an execution slot: latency rules model slow handlers (and
	// genuinely saturate admission), error rules fail execution.
	ChaosSiteExec = "serve/exec"
	// ChaosSiteCancel is consulted once per request; a firing cancel rule
	// cancels the request's context the rule's Delay later — a client
	// abandoning mid-flight.
	ChaosSiteCancel = "serve/cancel"
	// ChaosSiteJob is hit once per job execution, inside the runner pool
	// on the job's detached context: panic rules kill the executor
	// (exercising orphaned-job reclamation into a terminal failed
	// state), error rules fail the job, latency rules stretch the run.
	ChaosSiteJob = "serve/job"
)

// chaos wraps the route mux with the fault-injecting middleware. It sits
// inside instrument, so injected panics hit the same recovery path and
// injected failures are metered and logged like real ones. With no
// injector configured it is the identity — chaos is never on by default.
func (s *Server) chaos(next http.Handler) http.Handler {
	inj := s.opt.Inject
	if inj == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := inj.CancelAfter(r.Context(), ChaosSiteCancel)
		defer cancel()
		r = r.WithContext(ctx)
		if err := inj.Hit(ctx, ChaosSiteRequest); err != nil {
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		next.ServeHTTP(w, r)
	})
}
