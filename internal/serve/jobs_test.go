package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/fault"
	"github.com/inca-arch/inca/internal/job"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/store"
	"github.com/inca-arch/inca/internal/sweep"
)

// newJobManager builds a manager the test owns (closed at cleanup) —
// serve.New arms it with the server's executor.
func newJobManager(t *testing.T, dir string, opt job.Options) *job.Manager {
	t.Helper()
	m, err := job.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, body)
		}
	}
	return resp
}

// waitJob polls the HTTP status endpoint until the job is terminal.
func waitJob(t *testing.T, base, id string) job.Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var snap job.Snapshot
		resp := getJSON(t, base+"/v1/jobs/"+id, &snap)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job status answered %d", resp.StatusCode)
		}
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return job.Snapshot{}
}

func TestJobSubmitWaitResult(t *testing.T) {
	t.Parallel()
	jm := newJobManager(t, "", job.Options{Runners: 1})
	_, ts := newTestServer(t, Options{Jobs: jm})

	body := `{"archs":["inca","baseline"],"models":["LeNet5"],"phases":["inference"]}`
	resp := post(t, ts.URL+"/v1/jobs", body, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fresh submit answered %d, want 202", resp.StatusCode)
	}
	var snap job.Snapshot
	if err := json.Unmarshal(readAll(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID == "" || snap.State.Terminal() && snap.State != job.StateSucceeded {
		t.Fatalf("submit snapshot = %+v", snap)
	}

	// Idempotent resubmission: same logical spec (different whitespace)
	// answers 200 with the same job.
	resp = post(t, ts.URL+"/v1/jobs", `{ "archs": ["inca","baseline"], "models": ["LeNet5"], "phases": ["inference"] }`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit answered %d, want 200", resp.StatusCode)
	}
	var again job.Snapshot
	if err := json.Unmarshal(readAll(t, resp), &again); err != nil {
		t.Fatal(err)
	}
	if again.ID != snap.ID {
		t.Fatalf("resubmit landed on %s, want %s", again.ID, snap.ID)
	}

	final := waitJob(t, ts.URL, snap.ID)
	if final.State != job.StateSucceeded {
		t.Fatalf("state = %s (err %q)", final.State, final.Error)
	}
	if final.CellsTotal != 2 || final.CellsDone != 2 {
		t.Fatalf("progress = %d/%d, want 2/2", final.CellsDone, final.CellsTotal)
	}

	// The result body decodes into the deterministic JobResult shape.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result answered %d: %s", resp.StatusCode, raw)
	}
	var res JobResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.JobID != snap.ID || len(res.Cells) != 2 || res.Failed != 0 {
		t.Fatalf("result = %+v", res)
	}
	for _, c := range res.Cells {
		if c.Network != "LeNet5" || c.EnergyJ <= 0 {
			t.Fatalf("cell = %+v", c)
		}
	}

	// CSV negotiation renders the same cells without a cached column.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+snap.ID+"/result", nil)
	req.Header.Set("Accept", "text/csv")
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	csvBody := string(readAll(t, cresp))
	lines := strings.Split(strings.TrimSpace(csvBody), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want header + 2 cells:\n%s", len(lines), csvBody)
	}
	if strings.Contains(lines[0], "cached") {
		t.Fatalf("job csv must not carry the volatile cached column: %s", lines[0])
	}

	// The list shows the job in submission order.
	var list JobList
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != snap.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestJobSubmitValidatesBeforeJournaling(t *testing.T) {
	t.Parallel()
	jm := newJobManager(t, "", job.Options{Runners: 1})
	_, ts := newTestServer(t, Options{Jobs: jm})

	resp := post(t, ts.URL+"/v1/jobs", `{"models":["NoSuchNet"]}`, nil)
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad model answered %d, want 400", resp.StatusCode)
	}
	if st := jm.Stats(); st.Jobs != 0 {
		t.Fatalf("invalid spec must not enter the job table: %+v", st)
	}
}

func TestJobAPIDisabledWithoutManager(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{})
	resp := post(t, ts.URL+"/v1/jobs", `{"models":["LeNet5"]}`, nil)
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("submit without a manager answered %d, want 404", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("list without a manager answered %d, want 404", resp.StatusCode)
	}
}

func TestJobUnknownIDAnswers404(t *testing.T) {
	t.Parallel()
	jm := newJobManager(t, "", job.Options{})
	_, ts := newTestServer(t, Options{Jobs: jm})
	for _, path := range []string{"/v1/jobs/jdeadbeefdeadbeef", "/v1/jobs/jdeadbeefdeadbeef/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s answered %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestJobQueueSheddingFaultAnswers503 fills a tiny runner pool with
// chaos-slowed jobs and checks overflow submissions shed with 503 +
// Retry-After instead of queueing unboundedly.
func TestJobQueueSheddingFaultAnswers503(t *testing.T) {
	t.Parallel()
	inj := fault.New(7)
	inj.Add(fault.Rule{Site: ChaosSiteJob, Kind: fault.KindLatency, Prob: 1, Delay: 30 * time.Second})
	jm := newJobManager(t, "", job.Options{Runners: 1, QueueDepth: 1})
	_, ts := newTestServer(t, Options{Jobs: jm, Inject: inj})

	submit := func(i int) *http.Response {
		resp := post(t, ts.URL+"/v1/jobs", fmt.Sprintf(`{"archs":["inca"],"models":["LeNet5"],"phases":["inference"],"batch":%d}`, i+1), nil)
		readAll(t, resp)
		return resp
	}
	if resp := submit(0); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 0 answered %d", resp.StatusCode)
	}
	// Wait until the runner holds job 0 (stalled in the latency fault),
	// so the remaining capacity is exactly Runners+QueueDepth = 2 slots.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := jm.Stats(); st.Running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job 0 never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if resp := submit(1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1 answered %d", resp.StatusCode)
	}
	if resp := submit(2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2 answered %d", resp.StatusCode)
	}
	resp := submit(3)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed answer must carry Retry-After")
	}
}

// TestJobChaosPanicReclaimedAsFailed arms a deterministic panic fault at
// the job site and checks the orphaned job is reclaimed into a terminal
// failed state carrying the engine's panic vocabulary — and that the
// runner pool survives to execute the next job.
func TestJobChaosPanicReclaimedAsFailed(t *testing.T) {
	t.Parallel()
	inj := fault.New(42)
	inj.Add(fault.Rule{Site: ChaosSiteJob, Kind: fault.KindPanic, Prob: 1, Max: 1})
	jm := newJobManager(t, "", job.Options{Runners: 1})
	_, ts := newTestServer(t, Options{Jobs: jm, Inject: inj})

	resp := post(t, ts.URL+"/v1/jobs", `{"archs":["inca"],"models":["LeNet5"],"phases":["inference"]}`, nil)
	var snap job.Snapshot
	if err := json.Unmarshal(readAll(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, ts.URL, snap.ID)
	if final.State != job.StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, sweep.ErrEvalPanic.Error()) {
		t.Fatalf("error %q should carry the eval-panic vocabulary", final.Error)
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, rr)
	if rr.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed job's result answered %d, want 500", rr.StatusCode)
	}

	// The panic rule is exhausted (Max: 1); the pool must still be alive.
	resp = post(t, ts.URL+"/v1/jobs", `{"archs":["inca"],"models":["LeNet5"],"phases":["training"]}`, nil)
	var next job.Snapshot
	if err := json.Unmarshal(readAll(t, resp), &next); err != nil {
		t.Fatal(err)
	}
	if got := waitJob(t, ts.URL, next.ID); got.State != job.StateSucceeded {
		t.Fatalf("post-panic job state = %s (err %q)", got.State, got.Error)
	}
}

func TestJobCancelRunning(t *testing.T) {
	t.Parallel()
	inj := fault.New(3)
	inj.Add(fault.Rule{Site: ChaosSiteJob, Kind: fault.KindLatency, Prob: 1, Delay: 30 * time.Second})
	jm := newJobManager(t, "", job.Options{Runners: 1})
	_, ts := newTestServer(t, Options{Jobs: jm, Inject: inj})

	resp := post(t, ts.URL+"/v1/jobs", `{"archs":["inca"],"models":["LeNet5"],"phases":["inference"]}`, nil)
	var snap job.Snapshot
	if err := json.Unmarshal(readAll(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+snap.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, dresp)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel answered %d", dresp.StatusCode)
	}
	final := waitJob(t, ts.URL, snap.ID)
	if final.State != job.StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, rr)
	if rr.StatusCode != http.StatusGone {
		t.Fatalf("cancelled job's result answered %d, want 410", rr.StatusCode)
	}
}

// TestJobCrashResumeByteIdentity is the deterministic in-process twin of
// the job_smoke kill -9 script: a job is interrupted mid-run with
// partial progress journaled and partial cells checkpointed in the
// result store, then manager + store reopen over the same directories
// and the resumed run must (a) serve a final body byte-identical to an
// uninterrupted run's, (b) replay every checkpointed cell from disk
// instead of re-simulating it, and (c) keep the original trace ID so
// all attempts join one trace tree.
func TestJobCrashResumeByteIdentity(t *testing.T) {
	t.Parallel()
	spec := `{"archs":["inca","baseline"],"models":["LeNet5"],"phases":["inference","training"]}`
	const totalCells = 4

	// Reference run: clean dirs, no interruption.
	refBody := func() []byte {
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		jm := newJobManager(t, t.TempDir(), job.Options{Runners: 1})
		_, ts := newTestServer(t, Options{Jobs: jm, Store: st})
		resp := post(t, ts.URL+"/v1/jobs", spec, nil)
		var snap job.Snapshot
		if err := json.Unmarshal(readAll(t, resp), &snap); err != nil {
			t.Fatal(err)
		}
		if got := waitJob(t, ts.URL, snap.ID); got.State != job.StateSucceeded {
			t.Fatalf("reference run: %s (err %q)", got.State, got.Error)
		}
		rr, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		return readAll(t, rr)
	}()

	storeDir, jobDir := t.TempDir(), t.TempDir()

	// Interrupted run: one engine worker (MaxInflight pins the pool) and
	// a per-cell latency fault make progress slow and observable; the
	// manager closes mid-job, which leaves the journal without a terminal
	// record — the exact state a SIGKILL leaves behind.
	st1, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(11)
	inj.Add(fault.Rule{Site: "sweep/cell/*", Kind: fault.KindLatency, Prob: 1, Delay: 250 * time.Millisecond})
	jm1, err := job.Open(jobDir, job.Options{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr1 := obs.NewTracer(obs.WithRing(256))
	_, ts1 := newTestServer(t, Options{Jobs: jm1, Store: st1, Inject: inj, Tracer: tr1, MaxInflight: 64})
	resp := post(t, ts1.URL+"/v1/jobs", spec, nil)
	var snap job.Snapshot
	if err := json.Unmarshal(readAll(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	var preKill job.Snapshot
	deadline := time.Now().Add(20 * time.Second)
	for {
		var cur job.Snapshot
		getJSON(t, ts1.URL+"/v1/jobs/"+snap.ID, &cur)
		if cur.CellsDone >= 1 {
			preKill = cur
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := jm1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	if preKill.CellsDone >= totalCells {
		t.Fatalf("job finished before the interruption (done=%d); cannot exercise resume", preKill.CellsDone)
	}
	if preKill.TraceID == "" {
		t.Fatal("traced run must journal its trace ID before the kill")
	}

	// Restart: same directories, fresh server, no chaos. The journal
	// requeues the job; checkpointed cells must come from the store.
	st2, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	jm2 := newJobManager(t, jobDir, job.Options{Runners: 1})
	tr2 := obs.NewTracer(obs.WithRing(256))
	_, ts2 := newTestServer(t, Options{Jobs: jm2, Store: st2, Tracer: tr2})

	final := waitJob(t, ts2.URL, snap.ID)
	if final.State != job.StateSucceeded {
		t.Fatalf("resumed run: %s (err %q)", final.State, final.Error)
	}
	if final.Resumed != 1 {
		t.Fatalf("resumed = %d, want 1", final.Resumed)
	}
	if final.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", final.Attempts)
	}
	if final.TraceID != preKill.TraceID {
		t.Fatalf("trace ID changed across resume: %s -> %s (attempts must join one trace)",
			preKill.TraceID, final.TraceID)
	}

	rr, err := http.Get(ts2.URL + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	gotBody := readAll(t, rr)
	if string(gotBody) != string(refBody) {
		t.Fatalf("resumed body differs from the uninterrupted run's:\n got: %s\nwant: %s", gotBody, refBody)
	}

	// Zero re-simulation of checkpointed cells: every cell the first run
	// completed must have been answered by the store's disk tier.
	stats := st2.Stats()
	if stats.Hits < int64(preKill.CellsDone) {
		t.Fatalf("store hits = %d, want >= %d (checkpointed cells must replay from disk)",
			stats.Hits, preKill.CellsDone)
	}
	if stats.Entries != totalCells {
		t.Fatalf("store entries = %d, want %d", stats.Entries, totalCells)
	}
	// Every cell either replayed from disk or simulated exactly once —
	// more cells may have checkpointed between the last status poll and
	// the close, so Hits can exceed preKill.CellsDone, but the sum is
	// exact and proves zero re-simulation.
	if stats.Hits+stats.Puts != int64(totalCells) {
		t.Fatalf("store hits %d + puts %d != %d cells (a checkpointed cell re-simulated)",
			stats.Hits, stats.Puts, totalCells)
	}
}
