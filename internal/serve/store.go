package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"github.com/inca-arch/inca/internal/store"
)

// maxImportLineBytes bounds one record line of an import corpus — the
// same per-record ceiling the store itself enforces on disk.
const maxImportLineBytes = 16 << 20

// storeStatsResponse is the GET /v1/store/stats payload: the store's
// own counters plus the cache-level disk_hits they feed.
type storeStatsResponse struct {
	Store store.Stats `json:"store"`
	// DiskHits is the sweep cache's count of Do calls served from the
	// store instead of simulating — the warm-start dividend.
	DiskHits int64 `json:"disk_hits"`
}

// requireStore answers 404 when the server runs without a persistent
// store, mirroring handleTrace's disabled-feature idiom.
func (s *Server) requireStore(w http.ResponseWriter) *store.Store {
	st := s.opt.Store
	if st == nil {
		s.writeError(w, http.StatusNotFound, errors.New("no result store is attached to this server (start with -store-dir)"))
		return nil
	}
	return st
}

// handleStoreStats serves the persistent store's counters.
func (s *Server) handleStoreStats(w http.ResponseWriter, _ *http.Request) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	s.writeJSON(w, http.StatusOK, storeStatsResponse{Store: st.Stats(), DiskHits: s.cache.DiskHits()})
}

// handleStoreExport streams the store's corpus as JSON lines — one
// record per line, key-sorted, byte-stable — for transfer to another
// fleet member's POST /v1/store/import.
func (s *Server) handleStoreExport(w http.ResponseWriter, _ *http.Request) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if _, err := st.Export(w); err != nil {
		// Headers are gone; all we can do is log and cut the stream.
		s.log.Error("exporting store corpus", "err", err)
	}
}

// handleStoreImport merges an exported corpus into the store. The body
// is bounded by StoreImportMaxBytes (not the request-level
// MaxBodyBytes: corpora are legitimately large), and each line by the
// store's own per-record ceiling. Records already present are skipped;
// records whose content hash does not match their claimed key are
// rejected, and a partial import still reports what landed.
func (s *Server) handleStoreImport(w http.ResponseWriter, r *http.Request) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opt.StoreImportMaxBytes)
	res, err := st.Import(body, maxImportLineBytes)
	if err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("import body exceeds %d bytes", tooBig.Limit))
		case errors.Is(err, io.ErrUnexpectedEOF):
			s.writeError(w, http.StatusBadRequest, err)
		default:
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("importing corpus: %w", err))
		}
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}
