package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"github.com/inca-arch/inca/internal/store"
)

func newStoreServer(t *testing.T, opt Options) (*Server, string, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	opt.Store = st
	s, ts := newTestServer(t, opt)
	return s, ts.URL, st
}

const storeSweepBody = `{"archs":["INCA","WS-Baseline"],"models":["LeNet5"],"phases":["inference","training"]}`

func TestStoreEndpointsWithoutStoreAre404(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, req := range []struct{ method, path string }{
		{http.MethodGet, "/v1/store/stats"},
		{http.MethodGet, "/v1/store/export"},
		{http.MethodPost, "/v1/store/import"},
	} {
		r, err := http.NewRequest(req.method, ts.URL+req.path, strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s without a store = %d, want 404", req.method, req.path, resp.StatusCode)
		}
	}
}

func TestStoreStatsAndMetricsReportPersistence(t *testing.T) {
	s, url, _ := newStoreServer(t, Options{})
	resp := post(t, url+"/v1/sweep", storeSweepBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d: %s", resp.StatusCode, readAll(t, resp))
	}
	readAll(t, resp)

	get, err := http.Get(url + "/v1/store/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Store    store.Stats `json:"store"`
		DiskHits int64       `json:"disk_hits"`
	}
	if err := json.Unmarshal(readAll(t, get), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Store.Entries != 4 || stats.Store.Puts != 4 {
		t.Fatalf("store stats after a 4-cell sweep = %+v", stats.Store)
	}
	if stats.DiskHits != 0 {
		t.Fatalf("disk_hits = %d on a cold store", stats.DiskHits)
	}

	// /metrics carries the same store block and the cache's disk_hits
	// dimension, in JSON and Prometheus form.
	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(readAll(t, mresp), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Store == nil || snap.Store.Entries != 4 {
		t.Fatalf("metrics store block = %+v", snap.Store)
	}
	var buf bytes.Buffer
	if err := writePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"inca_store_entries 4", "inca_cache_disk_hits_total 0", "inca_store_puts_total 4"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("prometheus output missing %q", want)
		}
	}
	_ = s
}

func TestStoreExportImportTransfersCorpus(t *testing.T) {
	_, urlA, _ := newStoreServer(t, Options{})
	resp := post(t, urlA+"/v1/sweep", storeSweepBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d", resp.StatusCode)
	}
	readAll(t, resp)
	eresp, err := http.Get(urlA + "/v1/store/export")
	if err != nil {
		t.Fatal(err)
	}
	corpus := readAll(t, eresp)
	if eresp.Header.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("export content type = %q", eresp.Header.Get("Content-Type"))
	}
	if lines := bytes.Count(corpus, []byte("\n")); lines != 4 {
		t.Fatalf("export lines = %d, want 4", lines)
	}

	// A second fleet member imports the corpus and then serves the same
	// sweep entirely from disk: every cell cached, zero simulations.
	bSrv, urlB, _ := newStoreServer(t, Options{})
	iresp := post(t, urlB+"/v1/store/import", string(corpus), nil)
	if iresp.StatusCode != http.StatusOK {
		t.Fatalf("import = %d: %s", iresp.StatusCode, readAll(t, iresp))
	}
	var ir store.ImportResult
	if err := json.Unmarshal(readAll(t, iresp), &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Added != 4 || ir.Rejected != 0 {
		t.Fatalf("import result = %+v", ir)
	}
	sresp := post(t, urlB+"/v1/sweep", storeSweepBody, nil)
	var sweepResp SweepResponse
	if err := json.Unmarshal(readAll(t, sresp), &sweepResp); err != nil {
		t.Fatal(err)
	}
	if sweepResp.Cached != 4 || sweepResp.Failed != 0 {
		t.Fatalf("imported-corpus sweep: cached=%d failed=%d, want 4/0", sweepResp.Cached, sweepResp.Failed)
	}
	if hits := bSrv.Cache().DiskHits(); hits != 4 {
		t.Fatalf("disk_hits = %d, want 4", hits)
	}
	if misses := bSrv.Cache().Misses(); misses != 0 {
		t.Fatalf("misses = %d, want 0 (no re-simulation)", misses)
	}
}

func TestStoreImportBodyCap(t *testing.T) {
	_, url, _ := newStoreServer(t, Options{StoreImportMaxBytes: 128})
	big := strings.Repeat("x", 1024)
	resp := post(t, url+"/v1/store/import", big, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized import = %d, want 413", resp.StatusCode)
	}
	readAll(t, resp)
}
