package serve

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/job"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/obs/cost"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/sweep"
	"github.com/inca-arch/inca/internal/tune"
)

// SpanJob is the root span of one job execution on the runner pool. A
// job's first run journals the span identity; resumed runs restart the
// trace under the same root (obs.WithRemoteParent), so every attempt of
// a job — across process restarts — lands in one joined trace tree.
const SpanJob = "serve/job"

// ErrJobsDisabled reports a job operation on a server built without a
// job manager (Options.Jobs nil): the /v1/jobs API answers 404 and the
// facade wrappers return this error.
var ErrJobsDisabled = errors.New("serve: job API is not enabled (no job manager configured)")

// JobCell is one cell's summary row in a job result body: CellResult
// minus the cached flag, which varies between a cold run and a
// disk-served resume and would break the byte-identity contract.
type JobCell struct {
	Arch            string  `json:"arch"`
	Dataflow        string  `json:"dataflow,omitempty"`
	Override        string  `json:"override,omitempty"`
	Network         string  `json:"network"`
	Phase           string  `json:"phase"`
	Error           string  `json:"error,omitempty"`
	EnergyJ         float64 `json:"energy_j"`
	LatencyS        float64 `json:"latency_s"`
	EnergyPerImageJ float64 `json:"energy_per_image_j"`
	ThroughputIPS   float64 `json:"throughput_ips"`
	Utilization     float64 `json:"utilization"`
}

// JobResult is the terminal body of a succeeded job, journaled once and
// served verbatim by GET /v1/jobs/{id}/result. It deliberately carries
// no cache statistics and no per-cell cached flags: everything in it is
// a pure function of the spec and the simulated reports, which is what
// makes an interrupted-and-resumed job's body byte-identical to an
// uninterrupted run's.
type JobResult struct {
	JobID     string          `json:"job_id"`
	Cells     []JobCell       `json:"cells"`
	Failed    int             `json:"failed"`
	Frontiers []tune.Frontier `json:"frontiers,omitempty"`
}

// JobList is the GET /v1/jobs payload.
type JobList struct {
	Jobs []job.Snapshot `json:"jobs"`
}

// compiledSweep is a validated, executable form of a SweepRequest —
// shared by submit-time validation (reject a bad spec with 400 before
// it is journaled) and run-time execution on the job pool.
type compiledSweep struct {
	nets     []*nn.Network
	phases   []sim.Phase
	cells    []sweep.Cell
	newStyle bool
	// tune is set for auto-tuner requests; cells stays nil and
	// tuneDataflows carries the validated backend selection.
	tune          *TuneSpec
	tuneDataflows []string
}

// compileSweep validates a sweep/tune request exactly like the
// synchronous /v1/sweep path does, returning the executable form.
func compileSweep(req SweepRequest) (compiledSweep, error) {
	var cs compiledSweep
	for _, name := range req.Models {
		net, err := nn.ByName(name)
		if err != nil {
			return cs, err
		}
		cs.nets = append(cs.nets, net)
	}
	for _, name := range req.Phases {
		phase, err := parsePhase(name)
		if err != nil {
			return cs, err
		}
		cs.phases = append(cs.phases, phase)
	}
	if req.Tune != nil {
		if len(cs.nets) == 0 {
			return cs, errors.New("tune request needs at least one model")
		}
		dataflows := req.Tune.Dataflows
		if len(dataflows) == 0 {
			dataflows = req.Dataflows
		}
		for _, id := range dataflows {
			if _, err := dataflow.Get(id); err != nil {
				return cs, err
			}
		}
		cs.tune = req.Tune
		cs.tuneDataflows = dataflows
		return cs, nil
	}
	cs.newStyle = len(req.Dataflows) > 0
	var archs []sweep.Arch
	for _, name := range req.Archs {
		ax, err := buildArch(name, "", req.Batch, nil)
		if err != nil {
			return cs, err
		}
		archs = append(archs, ax)
	}
	for _, id := range req.Dataflows {
		ax, err := buildDataflowArch(id, req.Batch, nil)
		if err != nil {
			return cs, err
		}
		archs = append(archs, ax)
	}
	var overrides []sweep.Override
	for _, spec := range req.Overrides {
		overrides = append(overrides, spec.override())
	}
	plan := sweep.Plan{Archs: archs, Networks: cs.nets, Phases: cs.phases, Overrides: overrides}
	cells, err := plan.Cells()
	if err != nil {
		return cs, err
	}
	cs.cells = cells
	return cs, nil
}

// canonicalJobSpec validates a request and returns its canonical bytes:
// the strict re-marshalling that job IDs are derived from, so two
// submissions of the same logical request — whatever their whitespace
// or field order on the wire — collapse onto one job.
func canonicalJobSpec(req SweepRequest) ([]byte, error) {
	if _, err := compileSweep(req); err != nil {
		return nil, err
	}
	return json.Marshal(req)
}

// Jobs returns the server's job manager, nil when the async job API is
// disabled.
func (s *Server) Jobs() *job.Manager { return s.opt.Jobs }

// SubmitJob validates the request and submits it as an asynchronous
// job, returning the job's snapshot — the facade-level twin of
// POST /v1/jobs. Resubmitting an identical request returns the existing
// job's snapshot.
func (s *Server) SubmitJob(req SweepRequest) (job.Snapshot, error) {
	jm := s.opt.Jobs
	if jm == nil {
		return job.Snapshot{}, ErrJobsDisabled
	}
	spec, err := canonicalJobSpec(req)
	if err != nil {
		return job.Snapshot{}, err
	}
	snap, _, err := jm.Submit(spec)
	return snap, err
}

// JobStatus returns one job's snapshot — the facade-level twin of
// GET /v1/jobs/{id}. Unknown IDs return job.ErrUnknownJob.
func (s *Server) JobStatus(id string) (job.Snapshot, error) {
	jm := s.opt.Jobs
	if jm == nil {
		return job.Snapshot{}, ErrJobsDisabled
	}
	snap, ok := jm.Get(id)
	if !ok {
		return job.Snapshot{}, job.ErrUnknownJob
	}
	return snap, nil
}

// handleJobSubmit is POST /v1/jobs: validate the sweep/tune body,
// derive the content-addressed job ID, and enqueue. 202 for a freshly
// created job, 200 for an idempotent resubmission, 503 + Retry-After
// when the runner queue sheds.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	jm := s.opt.Jobs
	if jm == nil {
		s.writeError(w, http.StatusNotFound, ErrJobsDisabled)
		return
	}
	var req SweepRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	spec, err := canonicalJobSpec(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	snap, created, err := jm.Submit(spec)
	if err != nil {
		if errors.Is(err, job.ErrQueueFull) {
			s.writeUnavailable(w, err)
			return
		}
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	s.writeJSON(w, status, snap)
}

// handleJobList is GET /v1/jobs: every job's snapshot in submission
// order (journal-replayed jobs keep their pre-crash order).
func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	jm := s.opt.Jobs
	if jm == nil {
		s.writeError(w, http.StatusNotFound, ErrJobsDisabled)
		return
	}
	s.writeJSON(w, http.StatusOK, JobList{Jobs: jm.List()})
}

// handleJobGet is GET /v1/jobs/{id}: state, checkpointed progress,
// attempts, resume count, and the trace ID to follow into /v1/trace.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	jm := s.opt.Jobs
	if jm == nil {
		s.writeError(w, http.StatusNotFound, ErrJobsDisabled)
		return
	}
	id := r.PathValue("id")
	snap, ok := jm.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", job.ErrUnknownJob, id))
		return
	}
	// The job's cost summary — journaled when an execution finalizes —
	// is spliced in only on opt-in, keeping the default snapshot body
	// byte-identical across releases.
	if wantsCost(r) {
		if b, ok := jm.Cost(id); ok {
			var sum cost.Summary
			if json.Unmarshal(b, &sum) == nil {
				s.writeJSONCost(w, http.StatusOK, snap, sum)
				return
			}
		}
	}
	s.writeJSON(w, http.StatusOK, snap)
}

// handleJobResult is GET /v1/jobs/{id}/result: the terminal body. A
// succeeded job's journaled JSON is served verbatim (the byte-identity
// contract) or rendered as CSV on negotiation; a failed job answers
// 500 with its error, a cancelled one 410, a live one 409.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	jm := s.opt.Jobs
	if jm == nil {
		s.writeError(w, http.StatusNotFound, ErrJobsDisabled)
		return
	}
	id := r.PathValue("id")
	body, snap, ok := jm.Result(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", job.ErrUnknownJob, id))
		return
	}
	switch snap.State {
	case job.StateSucceeded:
		if wantsCSV(r) {
			var res JobResult
			if err := json.Unmarshal(body, &res); err != nil {
				s.writeError(w, http.StatusInternalServerError, err)
				return
			}
			s.writeJobCSV(w, res)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(body); err != nil {
			s.log.Error("writing job result", "err", err)
		}
	case job.StateFailed:
		s.writeError(w, http.StatusInternalServerError, errors.New(snap.Error))
	case job.StateCancelled:
		s.writeError(w, http.StatusGone, fmt.Errorf("job %s was cancelled", id))
	default:
		s.writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s (%d/%d cells); result not ready", id, snap.State, snap.CellsDone, snap.CellsTotal))
	}
}

// handleJobCancel is DELETE /v1/jobs/{id}: cooperative cancellation.
// Queued jobs turn terminal immediately; running ones have their
// context cancelled and turn terminal when the executor yields.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	jm := s.opt.Jobs
	if jm == nil {
		s.writeError(w, http.StatusNotFound, ErrJobsDisabled)
		return
	}
	id := r.PathValue("id")
	snap, err := jm.Cancel(id)
	if err != nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", job.ErrUnknownJob, id))
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

// writeJobCSV renders a job result as CSV, one row per cell — the sweep
// CSV schema minus the volatile cached column.
func (s *Server) writeJobCSV(w http.ResponseWriter, res JobResult) {
	w.Header().Set("Content-Type", "text/csv")
	cw := csv.NewWriter(w)
	_ = cw.Write([]string{"arch", "override", "network", "phase", "error",
		"energy_j", "latency_s", "energy_per_image_j", "throughput_ips", "utilization"})
	for _, c := range res.Cells {
		_ = cw.Write([]string{
			c.Arch, c.Override, c.Network, c.Phase, c.Error,
			fmt.Sprintf("%.6e", c.EnergyJ),
			fmt.Sprintf("%.6e", c.LatencyS),
			fmt.Sprintf("%.6e", c.EnergyPerImageJ),
			fmt.Sprintf("%.6e", c.ThroughputIPS),
			fmt.Sprintf("%.4f", c.Utilization),
		})
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		s.log.Error("writing job csv", "err", err)
	}
}

// execJob is the executor the server arms its job manager with: decode
// the journaled spec, evaluate on the engine (write-through to the
// result store checkpoints every cell), and marshal the deterministic
// terminal body. It runs on the runner pool's detached context, so an
// HTTP caller going away never interrupts it; only cooperative cancel
// and shutdown do.
func (s *Server) execJob(ctx context.Context, j *job.Job) (body []byte, err error) {
	// A panicking evaluation must reclaim the job into a terminal failed
	// state, not orphan it in running: recover here (under the job span,
	// so the panic is visible in the trace) using the same vocabulary
	// the engine's cache establishes for panicking cells. The manager
	// keeps its own ErrRunnerPanic backstop beneath this.
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("%w: %v", sweep.ErrEvalPanic, rec)
		}
	}()
	// A job execution gets its own cost tally — the runner context is
	// detached from any HTTP request. The finalized summary is
	// journaled on the job (survives restarts, served by
	// GET /v1/jobs/{id}?cost=1) and folded into the usage ledger.
	ctx, tally := cost.NewContext(ctx)
	defer func() {
		sum := tally.Snapshot()
		s.usage.addTotals(sum, true)
		if b, jerr := json.Marshal(sum); jerr == nil {
			j.SetCost(b)
		}
	}()
	if t := s.opt.Tracer; t != nil {
		if tid, sid := j.Trace(); tid != "" {
			// Resumed run: rebuild the journaled root as a remote parent so
			// this attempt's spans join the job's original trace tree.
			ctx = obs.WithRemoteParent(ctx, tid, sid)
		}
		var span *obs.Span
		ctx, span = t.Start(ctx, SpanJob,
			obs.String("job_id", j.ID()), obs.Int("attempt", j.Attempts()))
		j.SetTrace(span.TraceID(), span.SpanID())
		defer func() { span.EndWith(err) }()
	}
	if err := s.opt.Inject.Hit(ctx, ChaosSiteJob); err != nil {
		return nil, err
	}
	var req SweepRequest
	dec := json.NewDecoder(bytes.NewReader(j.Spec()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("job spec: %w", err)
	}
	cs, err := compileSweep(req)
	if err != nil {
		return nil, err
	}
	if cs.tune != nil {
		return s.execTuneJob(ctx, j, cs)
	}
	j.SetTotal(len(cs.cells))
	var results []sweep.Result
	if s.opt.Sharder != nil {
		results, err = s.shardJobCells(ctx, j, cs.cells)
	} else {
		opt := s.sweepOptions(s.requestWorkers())
		// Only error-free cells checkpoint: they are in the result store
		// and will replay from disk, which is what cells_done promises. A
		// failed or cancelled cell re-runs on resume, so it stays uncounted.
		opt.OnResult = func(r sweep.Result) {
			if r.Err == nil {
				j.AddDone(1)
			}
		}
		results, err = sweep.RunCells(ctx, cs.cells, opt)
	}
	if err != nil {
		return nil, err
	}
	s.accountResults(cost.FromContext(ctx), results)
	return marshalJobResult(s.jobResult(j.ID(), results, cs.newStyle))
}

// execTuneJob runs an auto-tuner job: one Pareto frontier per model ×
// phase, on the same engine, cache, and retry policy as the synchronous
// tune path. Frontier cells checkpoint through the cache's store tier
// like sweep cells, so a resumed tune job replays evaluated mappings
// from disk; progress counters stay zero (the search sizes itself).
func (s *Server) execTuneJob(ctx context.Context, j *job.Job, cs compiledSweep) ([]byte, error) {
	opt := tune.Options{
		Dataflows:      cs.tuneDataflows,
		Phases:         cs.phases,
		MaxPerDataflow: cs.tune.MaxPerDataflow,
		Workers:        s.requestWorkers(),
		Cache:          s.cache,
		Retry:          s.opt.SweepRetry,
	}
	res := JobResult{JobID: j.ID(), Cells: []JobCell{}}
	for _, net := range cs.nets {
		fronts, err := tune.Search(ctx, net, opt)
		if err != nil {
			return nil, err
		}
		for _, f := range fronts {
			res.Failed += f.Failed
		}
		res.Frontiers = append(res.Frontiers, fronts...)
	}
	return marshalJobResult(res)
}

// shardJobCells is the cluster-mode job path: cells already present in
// the result store are filled locally (the recovered coordinator
// re-dispatches only incomplete cells), the rest scatter/gather through
// the sharder, and gathered reports are checkpointed into the store so
// the next interruption resumes from them too.
func (s *Server) shardJobCells(ctx context.Context, j *job.Job, cells []sweep.Cell) ([]sweep.Result, error) {
	results := make([]sweep.Result, len(cells))
	st := s.opt.Store
	var pending []sweep.Cell
	var pendingIdx []int
	for i, c := range cells {
		if st != nil {
			if rep, ok := st.Get(c.Key().String()); ok {
				results[i] = sweep.Result{Cell: c, Report: rep, Cached: true, Attempts: 1}
				j.AddDone(1)
				continue
			}
		}
		pending = append(pending, c)
		pendingIdx = append(pendingIdx, i)
	}
	if len(pending) > 0 {
		res, _, err := s.opt.Sharder.Sweep(ctx, pending)
		if err != nil {
			return nil, err
		}
		for k, r := range res {
			results[pendingIdx[k]] = r
			if r.Err == nil {
				if st != nil {
					st.Put(r.Cell.Key().String(), r.Report)
				}
				j.AddDone(1)
			}
		}
	}
	return results, nil
}

// jobResult folds engine results into the deterministic terminal body —
// sweepSummary's row shape without the cache-dependent fields.
func (s *Server) jobResult(id string, results []sweep.Result, newStyle bool) JobResult {
	res := JobResult{JobID: id, Cells: make([]JobCell, 0, len(results))}
	for _, r := range results {
		cell := JobCell{
			Arch:     r.Cell.Arch.Name,
			Override: r.Cell.Override,
			Network:  r.Cell.Network.Name,
			Phase:    r.Cell.Phase.String(),
		}
		if newStyle {
			cell.Dataflow = r.Cell.Dataflow()
		}
		if r.Err != nil {
			cell.Error = r.Err.Error()
			res.Failed++
		} else {
			rep := r.Report
			cell.EnergyJ = rep.Total.Energy.Total()
			cell.LatencyS = rep.Total.Latency
			if perImage, err := rep.EnergyPerImage(); err == nil {
				cell.EnergyPerImageJ = perImage
			}
			cell.ThroughputIPS = rep.Throughput()
			cell.Utilization = rep.Utilization()
		}
		res.Cells = append(res.Cells, cell)
	}
	return res
}

// marshalJobResult renders the terminal body bytes that are journaled
// and later served verbatim: compact JSON plus a trailing newline,
// matching writeJSON's framing.
func marshalJobResult(res JobResult) ([]byte, error) {
	body, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}
