package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"github.com/inca-arch/inca/internal/obs/cost"
)

// CoalesceOptions configures the request-coalescing layer: identical
// POST /v1/simulate and /v1/sweep requests arriving within a size/
// max-wait window are collapsed onto one engine execution, and every
// caller receives a replay of the one recorded response. The memo cache
// already deduplicates sequential repeats cell by cell; coalescing
// deduplicates concurrent whole requests before they reach the
// admission gate, so a thundering herd of N identical requests costs
// one execution slot instead of N.
//
// Off by default: replayed responses share one body (including the
// leader's cache-stats snapshot), which is a semantic change embedders
// must opt into. cmd/inca-serve enables it with -coalesce.
type CoalesceOptions struct {
	// Enabled turns the layer on.
	Enabled bool
	// MaxWait is the window, measured from the moment a flight is
	// registered, during which identical requests join it — while the
	// execution is still running and, after it lands, as a bounded-
	// staleness replay. <= 0 means 250ms.
	MaxWait time.Duration
	// MaxJoiners bounds how many callers may ride one flight beyond the
	// leader; arrivals past the cap execute normally (and typically hit
	// the memo cache). <= 0 means 1024.
	MaxJoiners int
}

// withDefaults resolves unset coalescing knobs.
func (o CoalesceOptions) withDefaults() CoalesceOptions {
	if o.MaxWait <= 0 {
		o.MaxWait = 250 * time.Millisecond
	}
	if o.MaxJoiners <= 0 {
		o.MaxJoiners = 1024
	}
	return o
}

// flight is one coalesced execution: the leader runs the handler against
// a recorder and closes done; joiners wait on done and replay the
// recording through their own response writers.
type flight struct {
	start   time.Time
	done    chan struct{}
	joiners int
	rec     *responseRecorder
}

// coalescer holds the in-flight (and recently-landed, within MaxWait)
// flights by canonical request key.
type coalescer struct {
	opt     CoalesceOptions
	mu      sync.Mutex
	flights map[string]*flight
}

func newCoalescer(opt CoalesceOptions) *coalescer {
	return &coalescer{opt: opt.withDefaults(), flights: make(map[string]*flight)}
}

// responseRecorder captures a handler's full response so it can be
// replayed to every coalesced caller. The header map is seeded from the
// leader's live writer so handlers that read their own response headers
// (writeError reads X-Trace-Id for the error body) behave normally.
type responseRecorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newResponseRecorder(seed http.Header) *responseRecorder {
	h := make(http.Header, len(seed))
	for k, v := range seed {
		h[k] = append([]string(nil), v...)
	}
	return &responseRecorder{header: h}
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(p)
}

// replay writes the recording through w. Correlation headers the
// instrument middleware already stamped on w (request ID, trace IDs) are
// kept — each coalesced caller retains its own identifiers; everything
// else (Content-Type, Retry-After, ...) comes from the recording.
func (r *responseRecorder) replay(w http.ResponseWriter) {
	dst := w.Header()
	for k, v := range r.header {
		if dst.Get(k) == "" {
			dst[k] = v
		}
	}
	status := r.status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	w.Write(r.body.Bytes())
}

// coalesceKey derives the canonical flight key for a decoded request
// body: the route, the negotiated response shape (a CSV caller must
// never replay a JSON recording), and a digest of the body's canonical
// re-encoding, which normalizes field order and whitespace so two
// byte-different but semantically identical bodies coalesce.
func coalesceKey(r *http.Request, body any) (string, bool) {
	canon, err := json.Marshal(body)
	if err != nil {
		return "", false
	}
	format := "json"
	if wantsCSV(r) {
		format = "csv"
	}
	if wantsCost(r) {
		// A cost-opted caller must never replay a recording without the
		// cost block (or vice versa): the flag is part of the shape.
		format += "+cost"
	}
	sum := sha256.Sum256(canon)
	return r.URL.Path + "|" + format + "|" + hex.EncodeToString(sum[:]), true
}

// coalesced wraps a handler's execution section with the coalescing
// layer. The first caller of a key becomes the flight's leader: it runs
// exec against a recorder — on a context detached from its own
// connection, so one impatient caller cannot fail the whole herd — and
// replays the recording to itself. Callers arriving within the MaxWait
// window join the flight, wait for it to land (or their own context to
// end), replay the same recording, and are tallied as coalesced hits.
// With the layer disabled, exec runs directly against w.
func (s *Server) coalesced(w http.ResponseWriter, r *http.Request, body any, exec http.HandlerFunc) {
	c := s.coalesce
	if c == nil {
		exec(w, r)
		return
	}
	key, ok := coalesceKey(r, body)
	if !ok {
		exec(w, r)
		return
	}

	c.mu.Lock()
	f := c.flights[key]
	if f != nil && time.Since(f.start) > c.opt.MaxWait {
		// Window closed: the entry is a stale recording (or a hung
		// flight past its joinable life). Replace it; existing waiters
		// hold their own pointer and are unaffected.
		f = nil
	}
	if f != nil && f.joiners < c.opt.MaxJoiners {
		f.joiners++
		c.mu.Unlock()
		select {
		case <-f.done:
			f.rec.replay(w)
			s.cache.AddCoalesced(1)
			s.metrics.coalesced.Add(1)
			cost.FromContext(r.Context()).CoalescedHit()
		case <-r.Context().Done():
			// The joiner gave up before the flight landed: it received
			// nothing and answers with its own context error.
			err := r.Context().Err()
			s.writeError(w, statusForRunErr(err), err)
		}
		return
	}
	if f != nil {
		// Flight full: fall through to a private execution (the memo
		// cache still deduplicates the simulation work cell by cell).
		c.mu.Unlock()
		exec(w, r)
		return
	}
	f = &flight{start: time.Now(), done: make(chan struct{}), rec: newResponseRecorder(w.Header())}
	c.flights[key] = f
	c.mu.Unlock()

	defer func() {
		close(f.done)
		// Keep the landed recording joinable for the rest of its window
		// (bounded-staleness replay for near-simultaneous arrivals),
		// then drop it so the flight map tracks concurrency, not
		// history.
		remain := c.opt.MaxWait - time.Since(f.start)
		drop := func() {
			c.mu.Lock()
			if c.flights[key] == f {
				delete(c.flights, key)
			}
			c.mu.Unlock()
		}
		if remain <= 0 {
			drop()
		} else {
			time.AfterFunc(remain, drop)
		}
	}()
	// Detach the execution from the leader's connection: values (trace
	// span, request ID) carry over, cancellation does not, so the
	// admitted section's RequestTimeout is the only bound. A leader that
	// disconnects mid-flight still produces the recording its joiners
	// are waiting on.
	exec(f.rec, r.WithContext(context.WithoutCancel(r.Context())))
	f.rec.replay(w)
}
