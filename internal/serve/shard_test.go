package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/sweep"
)

// shardPlan is the fixture plan shard tests slice cells from.
func shardPlan() sweep.Plan {
	return sweep.Plan{
		Archs:    []sweep.Arch{sweep.INCAArch(), sweep.BaselineArch()},
		Networks: []*nn.Network{nn.LeNet5()},
		Phases:   []sim.Phase{sim.Inference, sim.Training},
	}
}

// TestShardSweepByteIdentity posts a sparse cell subset to
// /v1/shard/sweep and asserts every returned report is byte-identical
// to the same cell evaluated in-process — the wire round trip
// (arch.Config JSON, report stable encoding) must not perturb a single
// byte, or the cluster's merge result would drift from a single-node
// run.
func TestShardSweepByteIdentity(t *testing.T) {
	s, ts := newTestServer(t, Options{ShardID: "s-test"})
	_ = s
	cells, err := shardPlan().Cells()
	if err != nil {
		t.Fatal(err)
	}
	subset := []sweep.Cell{cells[3], cells[0], cells[2]} // sparse, shuffled
	wire, err := WireCells(subset)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(ShardSweepRequest{Cells: wire})
	if err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts.URL+"/v1/shard/sweep", string(body), nil)
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var sr ShardSweepResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.ShardID != "s-test" {
		t.Fatalf("shard_id = %q, want s-test", sr.ShardID)
	}

	local, err := sweep.RunCells(context.Background(), subset, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := ShardResults(subset, sr)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("cell %d failed: %v", i, res.Err)
		}
		want, err := json.Marshal(local[i].Report)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(res.Report)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cell %d report drifted across the wire:\n%s\nvs\n%s", i, got, want)
		}
		if res.Cell.Seq != subset[i].Seq {
			t.Fatalf("cell %d seq = %d, want %d", i, res.Cell.Seq, subset[i].Seq)
		}
	}
}

// TestShardSweepRejectsBadCells pins the endpoint's validation: empty
// lists and unknown models are the caller's error, answered 400 before
// admission.
func TestShardSweepRejectsBadCells(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, body := range []string{
		`{"cells":[]}`,
		`{"cells":[{"seq":0,"arch":"x","config":{},"model":"NoSuchNet","phase":"inference"}]}`,
	} {
		resp := post(t, ts.URL+"/v1/shard/sweep", body, nil)
		raw := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status = %d, want 400 (%s)", body, resp.StatusCode, raw)
		}
	}
}

// fakeSharder implements Sharder with canned health and an engine that
// runs cells locally, for handler tests without a real cluster.
type fakeSharder struct {
	peers   []PeerHealth
	summary ShardSummary
}

func (f *fakeSharder) Sweep(ctx context.Context, cells []sweep.Cell) ([]sweep.Result, ShardSummary, error) {
	results, err := sweep.RunCells(ctx, cells, sweep.Options{})
	return results, f.summary, err
}

func (f *fakeSharder) Health(context.Context) []PeerHealth { return f.peers }

// TestSweepViaSharderMatchesLocal runs the same plan through a plain
// server and a shard-mode server (whose Sharder evaluates on the same
// engine) and asserts the response cells are byte-identical — the
// serve-level half of the cluster byte-identity guarantee.
func TestSweepViaSharderMatchesLocal(t *testing.T) {
	body := `{"archs":["inca","baseline"],"models":["LeNet5"],"phases":["inference","training"]}`

	_, plainTS := newTestServer(t, Options{})
	plain := readAll(t, post(t, plainTS.URL+"/v1/sweep", body, nil))

	sharder := &fakeSharder{summary: ShardSummary{Peers: 3, Rounds: 1}}
	_, shardTS := newTestServer(t, Options{Sharder: sharder})
	sharded := readAll(t, post(t, shardTS.URL+"/v1/sweep", body, nil))

	var p, sh SweepResponse
	if err := json.Unmarshal(plain, &p); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sharded, &sh); err != nil {
		t.Fatal(err)
	}
	pc, _ := json.Marshal(p.Cells)
	sc, _ := json.Marshal(sh.Cells)
	if !bytes.Equal(pc, sc) {
		t.Fatalf("shard-mode cells differ from local run:\n%s\nvs\n%s", sc, pc)
	}
	if sh.Shard == nil || sh.Shard.Peers != 3 {
		t.Fatalf("shard-mode response lacks its summary: %+v", sh.Shard)
	}
	if p.Shard != nil {
		t.Fatal("single-node response grew a shard summary (legacy bodies must stay byte-identical)")
	}
}

// TestReadinessPerPeerHealth pins shard-mode readiness: minority loss
// is degraded-but-ready (the ring rehashes around it), majority loss is
// 503 with a Retry-After.
func TestReadinessPerPeerHealth(t *testing.T) {
	up := PeerHealth{Peer: "http://a", Up: true}
	down := PeerHealth{Peer: "http://b", Up: false, Error: "connection refused"}

	cases := []struct {
		name   string
		peers  []PeerHealth
		status int
		want   string
	}{
		{"all up", []PeerHealth{up, up, up}, http.StatusOK, "ready"},
		{"minority down", []PeerHealth{up, up, down}, http.StatusOK, "degraded"},
		{"majority down", []PeerHealth{up, down, down}, http.StatusServiceUnavailable, "unavailable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, Options{Sharder: &fakeSharder{peers: tc.peers}, ShardID: "coord"})
			resp, err := http.Get(ts.URL + "/healthz/ready")
			if err != nil {
				t.Fatal(err)
			}
			raw := readAll(t, resp)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, raw)
			}
			var rr struct {
				Status  string       `json:"status"`
				ShardID string       `json:"shard_id"`
				Peers   []PeerHealth `json:"peers"`
			}
			if err := json.Unmarshal(raw, &rr); err != nil {
				t.Fatal(err)
			}
			if rr.Status != tc.want {
				t.Fatalf("status field = %q, want %q", rr.Status, tc.want)
			}
			if len(rr.Peers) != len(tc.peers) {
				t.Fatalf("peers = %d, want %d", len(rr.Peers), len(tc.peers))
			}
			if tc.status == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
				t.Fatal("unavailable readiness carries no Retry-After")
			}
		})
	}
}

// TestRetryAfterJitter pins the seeded jitter contract: with a seed the
// hints spread within [base, base+max(1,base/4)] and the stream is
// reproducible; without one the hint is exact (the pre-jitter
// contract).
func TestRetryAfterJitter(t *testing.T) {
	seq := func(seed int64, n int) []int {
		s := New(Options{RetryAfter: 8e9, RetryJitterSeed: seed}) // 8s base -> jitter in [0,2]
		out := make([]int, n)
		for i := range out {
			out[i] = s.retryAfterSeconds()
		}
		return out
	}
	a, b := seq(7, 32), seq(7, 32)
	spread := map[int]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter stream not reproducible at %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 8 || a[i] > 10 {
			t.Fatalf("jittered hint %d outside [8,10]", a[i])
		}
		spread[a[i]] = true
	}
	if len(spread) < 2 {
		t.Fatalf("32 jittered hints collapsed to %v — no spread", spread)
	}
	exact := New(Options{RetryAfter: 8e9})
	for i := 0; i < 4; i++ {
		if got := exact.retryAfterSeconds(); got != 8 {
			t.Fatalf("unseeded hint = %d, want exact 8", got)
		}
	}
}
