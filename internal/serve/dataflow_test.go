package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// TestSimulateExplicitDataflow pins the new wire field: an explicit
// "dataflow" selects the backend, and arch-name spellings of the same
// backend serve the identical body.
func TestSimulateExplicitDataflow(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	byDataflow := post(t, ts.URL+"/v1/simulate",
		`{"dataflow":"is","model":"LeNet5","phase":"inference"}`, nil)
	if byDataflow.StatusCode != http.StatusOK {
		t.Fatalf("dataflow request status = %d", byDataflow.StatusCode)
	}
	byArch := post(t, ts.URL+"/v1/simulate",
		`{"arch":"inca","model":"LeNet5","phase":"inference"}`, nil)
	if byArch.StatusCode != http.StatusOK {
		t.Fatalf("arch request status = %d", byArch.StatusCode)
	}
	a, b := readAll(t, byDataflow), readAll(t, byArch)
	if !bytes.Equal(a, b) {
		t.Fatalf("dataflow body differs from arch body:\n%.150s\nvs\n%.150s", a, b)
	}
}

// TestSimulateOSDataflow exercises a backend only reachable through the
// registry: the output-stationary machine, including its phase guard.
func TestSimulateOSDataflow(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := post(t, ts.URL+"/v1/simulate",
		`{"dataflow":"os","model":"LeNet5","phase":"inference"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("OS inference status = %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var rep struct {
		Arch string `json:"arch"`
	}
	if err := json.Unmarshal(readAll(t, resp), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Arch != "OS-Baseline" {
		t.Errorf("arch = %q, want OS-Baseline", rep.Arch)
	}
	// Training is structurally unsupported: a typed 500-family error, not
	// a hang or panic.
	resp = post(t, ts.URL+"/v1/simulate",
		`{"dataflow":"os","model":"LeNet5","phase":"training"}`, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("OS training status = %d, want 500", resp.StatusCode)
	}
	readAll(t, resp)
	// Legacy arch names normalize server-side through the registry.
	resp = post(t, ts.URL+"/v1/simulate",
		`{"dataflow":"TitanRTX","model":"LeNet5","phase":"inference"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("legacy name via dataflow field: status %d", resp.StatusCode)
	}
	readAll(t, resp)
	// Unknown dataflows fail fast with 400.
	resp = post(t, ts.URL+"/v1/simulate",
		`{"dataflow":"nonesuch","model":"LeNet5","phase":"inference"}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown dataflow status = %d, want 400", resp.StatusCode)
	}
	readAll(t, resp)
}

// TestSweepDataflowAxes pins the sweep additions: "dataflows" axes join
// the plan, and only such new-style requests carry per-cell dataflow
// IDs.
func TestSweepDataflowAxes(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := post(t, ts.URL+"/v1/sweep",
		`{"archs":["inca"],"dataflows":["os"],"models":["LeNet5"],"phases":["inference"]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var sr SweepResponse
	if err := json.Unmarshal(readAll(t, resp), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Cells) != 2 || sr.Failed != 0 {
		t.Fatalf("cells = %d, failed = %d", len(sr.Cells), sr.Failed)
	}
	want := map[string]string{"INCA": "is", "OS-Baseline": "os"}
	for _, c := range sr.Cells {
		if c.Dataflow != want[c.Arch] {
			t.Errorf("cell %s: dataflow %q, want %q", c.Arch, c.Dataflow, want[c.Arch])
		}
	}

	// Legacy body: no dataflow fields anywhere in the response.
	resp = post(t, ts.URL+"/v1/sweep",
		`{"archs":["inca"],"models":["LeNet5"],"phases":["inference"]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy status = %d", resp.StatusCode)
	}
	body := readAll(t, resp)
	if bytes.Contains(body, []byte(`"dataflow"`)) {
		t.Errorf("legacy sweep body leaks dataflow field: %.200s", body)
	}
}

// TestSweepTune pins the auto-tuner endpoint: a TuneSpec returns one
// Pareto frontier per model × phase.
func TestSweepTune(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := post(t, ts.URL+"/v1/sweep",
		`{"models":["ResNet18"],"phases":["inference"],"tune":{"dataflows":["is","os"],"max_per_dataflow":3}}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, readAll(t, resp))
	}
	body := readAll(t, resp)
	if !bytes.Contains(body, []byte(`"phase":"inference"`)) {
		t.Errorf("frontier phase not serialized by name: %.200s", body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Frontiers) != 1 {
		t.Fatalf("frontiers = %d, want 1", len(sr.Frontiers))
	}
	f := sr.Frontiers[0]
	if f.Network != "ResNet18" || f.Failed != 0 || len(f.Pareto) == 0 {
		t.Fatalf("frontier = %+v", f)
	}
	for _, c := range f.Pareto {
		if c.Dataflow != "is" && c.Dataflow != "os" {
			t.Errorf("unexpected dataflow %q on frontier", c.Dataflow)
		}
		if c.EnergyJ <= 0 || c.LatencyS <= 0 || c.AreaMM2 <= 0 {
			t.Errorf("%s: non-positive objective", c.Label)
		}
	}
	// A tune request without models is a 400, not an empty search.
	resp = post(t, ts.URL+"/v1/sweep", `{"models":[],"phases":[],"tune":{}}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty tune status = %d, want 400", resp.StatusCode)
	}
	readAll(t, resp)
}

// TestModelsListDataflows pins the capability listing on /v1/models.
func TestModelsListDataflows(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var infos []ModelInfo
	if err := json.Unmarshal(readAll(t, resp), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("empty model list")
	}
	for _, m := range infos {
		seen := map[string]bool{}
		for _, id := range m.Dataflows {
			seen[id] = true
		}
		for _, want := range []string{"is", "ws", "os", "gpu"} {
			if !seen[want] {
				t.Errorf("%s: missing dataflow %q in %v", m.Name, want, m.Dataflows)
			}
		}
	}
}
