package serve

import (
	"sync/atomic"
	"time"

	"github.com/inca-arch/inca/internal/suite"
	"github.com/inca-arch/inca/internal/sweep"
	"github.com/inca-arch/inca/internal/tensor"
)

// numLatencyBuckets counts the histogram's bounded buckets; one more
// +Inf overflow bucket follows them.
const numLatencyBuckets = 14

// latencyBounds are the histogram bucket upper bounds in seconds; the
// final implicit bucket is +Inf. Simulations of the analytical models run
// in microseconds-to-milliseconds; sweeps and experiments in the
// hundreds of milliseconds.
var latencyBounds = [numLatencyBuckets]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Metrics is the server's expvar-style counter set. All fields are
// atomics; Snapshot renders a consistent-enough JSON view for /metrics.
type Metrics struct {
	start time.Time

	requests atomic.Int64 // HTTP requests received
	rejected atomic.Int64 // 503s from admission (saturated or abandoned)
	inflight atomic.Int64 // requests holding an execution slot
	queued   atomic.Int64 // requests waiting for a slot

	status2xx atomic.Int64
	status4xx atomic.Int64
	status5xx atomic.Int64

	latencyCount atomic.Int64
	latencySumNS atomic.Int64
	latencyBkts  [len(latencyBounds) + 1]atomic.Int64
}

func newMetrics() *Metrics { return &Metrics{start: time.Now()} }

// observe records one completed HTTP exchange.
func (m *Metrics) observe(status int, d time.Duration) {
	switch {
	case status >= 500:
		m.status5xx.Add(1)
	case status >= 400:
		m.status4xx.Add(1)
	default:
		m.status2xx.Add(1)
	}
	m.latencyCount.Add(1)
	m.latencySumNS.Add(int64(d))
	s := d.Seconds()
	b := len(latencyBounds) // +Inf bucket
	for i, bound := range latencyBounds {
		if s <= bound {
			b = i
			break
		}
	}
	m.latencyBkts[b].Add(1)
}

// Histogram is the JSON form of the request-latency histogram:
// cumulative-free per-bucket counts with explicit upper bounds (the last
// count is the +Inf overflow bucket).
type Histogram struct {
	BoundsS []float64 `json:"bounds_s"`
	Counts  []int64   `json:"counts"`
	Count   int64     `json:"count"`
	SumS    float64   `json:"sum_s"`
}

// Snapshot is the /metrics payload.
type Snapshot struct {
	UptimeS     float64 `json:"uptime_s"`
	Requests    int64   `json:"requests_total"`
	Rejected    int64   `json:"rejected_total"`
	Inflight    int64   `json:"inflight"`
	Queued      int64   `json:"queued"`
	MaxInflight int     `json:"max_inflight"`
	QueueDepth  int     `json:"queue_depth"`
	Status2xx   int64   `json:"responses_2xx"`
	Status4xx   int64   `json:"responses_4xx"`
	Status5xx   int64   `json:"responses_5xx"`
	// KernelBudget is the process-wide tensor worker budget the server's
	// per-request sweep pools are derived from.
	KernelBudget   int              `json:"kernel_budget"`
	RequestWorkers int              `json:"request_workers"`
	Latency        Histogram        `json:"latency"`
	Cache          sweep.CacheStats `json:"cache"`
	// SuiteCache is the experiment suite's shared process-wide cache,
	// exercised by /v1/experiments.
	SuiteCache sweep.CacheStats `json:"suite_cache"`
}

// snapshot collects every counter. Each field is individually exact; the
// set is read without a global lock, so a snapshot taken mid-request may
// be off by one between related fields.
func (s *Server) snapshot() Snapshot {
	m := s.metrics
	counts := make([]int64, len(m.latencyBkts))
	for i := range m.latencyBkts {
		counts[i] = m.latencyBkts[i].Load()
	}
	return Snapshot{
		UptimeS:        time.Since(m.start).Seconds(),
		Requests:       m.requests.Load(),
		Rejected:       m.rejected.Load(),
		Inflight:       m.inflight.Load(),
		Queued:         m.queued.Load(),
		MaxInflight:    s.opt.MaxInflight,
		QueueDepth:     s.opt.QueueDepth,
		Status2xx:      m.status2xx.Load(),
		Status4xx:      m.status4xx.Load(),
		Status5xx:      m.status5xx.Load(),
		KernelBudget:   tensor.Parallelism(),
		RequestWorkers: s.requestWorkers(),
		Latency: Histogram{
			BoundsS: latencyBounds[:],
			Counts:  counts,
			Count:   m.latencyCount.Load(),
			SumS:    time.Duration(m.latencySumNS.Load()).Seconds(),
		},
		Cache:      s.cache.Stats(),
		SuiteCache: suite.CacheStats(),
	}
}
