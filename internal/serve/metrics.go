package serve

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/job"
	"github.com/inca-arch/inca/internal/obs/cost"
	"github.com/inca-arch/inca/internal/store"
	"github.com/inca-arch/inca/internal/suite"
	"github.com/inca-arch/inca/internal/sweep"
	"github.com/inca-arch/inca/internal/tensor"
)

// defaultLatencyBounds are the histogram bucket upper bounds in seconds;
// the final implicit bucket is +Inf. Simulations of the analytical models
// run in microseconds-to-milliseconds; sweeps and experiments in the
// hundreds of milliseconds.
var defaultLatencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefaultLatencyBuckets returns a copy of the default request-latency
// histogram bounds (seconds, ascending, +Inf overflow implied).
func DefaultLatencyBuckets() []float64 {
	out := make([]float64, len(defaultLatencyBounds))
	copy(out, defaultLatencyBounds)
	return out
}

// Metrics is the server's expvar-style counter set. All fields are
// atomics; Snapshot renders a consistent-enough JSON view for /metrics.
type Metrics struct {
	start time.Time

	requests  atomic.Int64 // HTTP requests received
	rejected  atomic.Int64 // 503s from admission (saturated or abandoned)
	inflight  atomic.Int64 // requests holding an execution slot
	queued    atomic.Int64 // requests waiting for a slot
	coalesced atomic.Int64 // requests served from another caller's flight

	status2xx atomic.Int64
	status4xx atomic.Int64
	status5xx atomic.Int64

	latencyCount atomic.Int64
	latencySumNS atomic.Int64
	latencyBnds  []float64      // bucket upper bounds, ascending
	latencyBkts  []atomic.Int64 // len(latencyBnds)+1; last is +Inf
}

// newMetrics builds the counter set with the given histogram bounds
// (nil means the defaults). Bounds are sanitized to a strictly
// ascending positive sequence; out-of-order or duplicate entries are
// dropped rather than silently misbinning observations.
func newMetrics(bounds []float64) *Metrics {
	if bounds == nil {
		bounds = defaultLatencyBounds
	}
	clean := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if b > 0 && (len(clean) == 0 || b > clean[len(clean)-1]) {
			clean = append(clean, b)
		}
	}
	return &Metrics{
		start:       time.Now(),
		latencyBnds: clean,
		latencyBkts: make([]atomic.Int64, len(clean)+1),
	}
}

// observe records one completed HTTP exchange.
func (m *Metrics) observe(status int, d time.Duration) {
	switch {
	case status >= 500:
		m.status5xx.Add(1)
	case status >= 400:
		m.status4xx.Add(1)
	default:
		m.status2xx.Add(1)
	}
	m.latencyCount.Add(1)
	m.latencySumNS.Add(int64(d))
	s := d.Seconds()
	b := len(m.latencyBnds) // +Inf bucket
	for i, bound := range m.latencyBnds {
		if s <= bound {
			b = i
			break
		}
	}
	m.latencyBkts[b].Add(1)
}

// Histogram is the JSON form of the request-latency histogram:
// cumulative-free per-bucket counts with explicit upper bounds (the last
// count is the +Inf overflow bucket).
type Histogram struct {
	BoundsS []float64 `json:"bounds_s"`
	Counts  []int64   `json:"counts"`
	Count   int64     `json:"count"`
	SumS    float64   `json:"sum_s"`
}

// RuntimeStats are the Go runtime gauges /metrics exports: scheduler
// and memory pressure at snapshot time.
type RuntimeStats struct {
	Goroutines   int     `json:"goroutines"`
	HeapAllocB   uint64  `json:"heap_alloc_bytes"`
	HeapSysB     uint64  `json:"heap_sys_bytes"`
	GCCycles     uint32  `json:"gc_cycles"`
	GCPauseTotal float64 `json:"gc_pause_total_s"`
}

func readRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:   runtime.NumGoroutine(),
		HeapAllocB:   ms.HeapAlloc,
		HeapSysB:     ms.HeapSys,
		GCCycles:     ms.NumGC,
		GCPauseTotal: time.Duration(ms.PauseTotalNs).Seconds(),
	}
}

// BuildInfo identifies the running binary: the module version when the
// binary was built from a tagged module ("dev" otherwise), the Go
// toolchain, and the registered dataflow backends. Served in /metrics
// (JSON and inca_build_info), and by /healthz/live on request.
type BuildInfo struct {
	Version   string   `json:"version"`
	Go        string   `json:"go"`
	Dataflows []string `json:"dataflows"`
}

func buildInfo() BuildInfo {
	v := "dev"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		v = bi.Main.Version
	}
	return BuildInfo{Version: v, Go: runtime.Version(), Dataflows: dataflow.IDs()}
}

// CostTotals is the server-lifetime cost ledger in /metrics: how many
// requests/jobs were finalized and the field-by-field sum of their
// cost summaries.
type CostTotals struct {
	Requests int64 `json:"requests"`
	Jobs     int64 `json:"jobs"`
	cost.Summary
}

// Snapshot is the /metrics payload.
type Snapshot struct {
	UptimeS  float64 `json:"uptime_s"`
	Requests int64   `json:"requests_total"`
	Rejected int64   `json:"rejected_total"`
	Inflight int64   `json:"inflight"`
	Queued   int64   `json:"queued"`
	// Coalesced counts whole requests answered from another caller's
	// in-flight execution by the coalescing layer; zero when the layer
	// is disabled.
	Coalesced   int64 `json:"coalesced_total"`
	MaxInflight int   `json:"max_inflight"`
	QueueDepth  int   `json:"queue_depth"`
	Status2xx   int64 `json:"responses_2xx"`
	Status4xx   int64 `json:"responses_4xx"`
	Status5xx   int64 `json:"responses_5xx"`
	// KernelBudget is the process-wide tensor worker budget the server's
	// per-request sweep pools are derived from.
	KernelBudget   int              `json:"kernel_budget"`
	RequestWorkers int              `json:"request_workers"`
	Latency        Histogram        `json:"latency"`
	Cache          sweep.CacheStats `json:"cache"`
	// SuiteCache is the experiment suite's shared process-wide cache,
	// exercised by /v1/experiments.
	SuiteCache sweep.CacheStats `json:"suite_cache"`
	// Store is the persistent result store's counter set; omitted when
	// the server runs memory-only.
	Store *store.Stats `json:"store,omitempty"`
	// Jobs is the async job subsystem's counter set; omitted when the
	// server runs without a job manager.
	Jobs *job.Stats `json:"jobs,omitempty"`
	// BreakerTrips counts the dispatch clients' circuit-breaker trips on
	// a coordinator node; omitted outside cluster mode.
	BreakerTrips *int64 `json:"breaker_trips_total,omitempty"`
	// Runtime is the Go runtime's live state at snapshot time.
	Runtime RuntimeStats `json:"runtime"`
	// Kernels is the process-wide tensor-kernel activity (zeros unless a
	// stats hook is installed — cmd/inca-serve installs one at startup).
	Kernels tensor.StatsSnapshot `json:"kernels"`
	// TraceSpans counts spans retained in / emitted through the tracer's
	// ring; both zero when tracing is disabled. TraceEvicted counts
	// spans the bounded ring dropped to make room — nonzero means
	// GET /v1/trace answers may be missing their oldest spans.
	TraceSpans      int   `json:"trace_spans"`
	TraceSpansTotal int64 `json:"trace_spans_total"`
	TraceEvicted    int64 `json:"trace_spans_evicted_total"`
	// Build identifies the binary (also inca_build_info in the
	// Prometheus rendering).
	Build BuildInfo `json:"build"`
	// Cost is the lifetime sum of per-request/per-job cost summaries
	// (see GET /v1/usage for the per-model attribution rows).
	Cost CostTotals `json:"cost"`
	// SLO carries the burn-rate tracker's windows; omitted unless
	// objectives are configured (-slo-p99 / -slo-err).
	SLO *SLOStats `json:"slo,omitempty"`
	// costRows feeds the labeled inca_cost_model_* Prometheus families
	// without bloating the JSON body (GET /v1/usage serves the rows).
	costRows []UsageRow
}

// snapshot collects every counter. Each field is individually exact; the
// set is read without a global lock, so a snapshot taken mid-request may
// be off by one between related fields.
func (s *Server) snapshot() Snapshot {
	m := s.metrics
	counts := make([]int64, len(m.latencyBkts))
	for i := range m.latencyBkts {
		counts[i] = m.latencyBkts[i].Load()
	}
	snap := Snapshot{
		UptimeS:        time.Since(m.start).Seconds(),
		Requests:       m.requests.Load(),
		Rejected:       m.rejected.Load(),
		Inflight:       m.inflight.Load(),
		Queued:         m.queued.Load(),
		Coalesced:      m.coalesced.Load(),
		MaxInflight:    s.opt.MaxInflight,
		QueueDepth:     s.opt.QueueDepth,
		Status2xx:      m.status2xx.Load(),
		Status4xx:      m.status4xx.Load(),
		Status5xx:      m.status5xx.Load(),
		KernelBudget:   tensor.Parallelism(),
		RequestWorkers: s.requestWorkers(),
		Latency: Histogram{
			BoundsS: m.latencyBnds,
			Counts:  counts,
			Count:   m.latencyCount.Load(),
			SumS:    time.Duration(m.latencySumNS.Load()).Seconds(),
		},
		Cache:      s.cache.Stats(),
		SuiteCache: suite.CacheStats(),
		Runtime:    readRuntimeStats(),
		Kernels:    tensor.StatsHook().Snapshot(),
	}
	if st := s.opt.Store; st != nil {
		stats := st.Stats()
		snap.Store = &stats
	}
	if jm := s.opt.Jobs; jm != nil {
		stats := jm.Stats()
		snap.Jobs = &stats
	}
	if bt, ok := s.opt.Sharder.(interface{ BreakerTrips() int64 }); ok {
		v := bt.BreakerTrips()
		snap.BreakerTrips = &v
	}
	if t := s.opt.Tracer; t != nil {
		if ring := t.Ring(); ring != nil {
			snap.TraceSpans = ring.Len()
			snap.TraceSpansTotal = ring.Total()
			snap.TraceEvicted = ring.Evicted()
		}
	}
	snap.Build = buildInfo()
	usage := s.usage.snapshot()
	snap.Cost = CostTotals{Requests: usage.Requests, Jobs: usage.Jobs, Summary: usage.Totals}
	snap.costRows = usage.Rows
	if s.slo != nil {
		stats := s.slo.stats()
		snap.SLO = &stats
	}
	return snap
}

// escapeLabel escapes a Prometheus label value per the text exposition
// format: backslash, double quote, and newline.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// writePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges one per line, the latency
// histogram with cumulative buckets as the format requires. Metric names
// follow the inca_http_* / inca_runtime_* convention.
func writePrometheus(w io.Writer, snap Snapshot) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	scalar := func(name, typ, help string, v any) {
		p("# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}
	scalar("inca_uptime_seconds", "gauge", "Seconds since the server started.", snap.UptimeS)
	scalar("inca_http_requests_total", "counter", "HTTP requests received.", snap.Requests)
	scalar("inca_http_rejected_total", "counter", "Requests rejected by admission (saturated or abandoned).", snap.Rejected)
	scalar("inca_http_inflight", "gauge", "Requests holding an execution slot.", snap.Inflight)
	scalar("inca_http_queued", "gauge", "Requests waiting for an execution slot.", snap.Queued)
	scalar("inca_serve_coalesced_total", "counter", "Requests answered from another caller's in-flight execution.", snap.Coalesced)
	p("# HELP inca_http_responses_total Completed responses by status class.\n# TYPE inca_http_responses_total counter\n")
	p("inca_http_responses_total{class=\"2xx\"} %d\n", snap.Status2xx)
	p("inca_http_responses_total{class=\"4xx\"} %d\n", snap.Status4xx)
	p("inca_http_responses_total{class=\"5xx\"} %d\n", snap.Status5xx)

	p("# HELP inca_http_request_duration_seconds Request latency.\n# TYPE inca_http_request_duration_seconds histogram\n")
	cum := int64(0)
	for i, bound := range snap.Latency.BoundsS {
		cum += snap.Latency.Counts[i]
		p("inca_http_request_duration_seconds_bucket{le=\"%g\"} %d\n", bound, cum)
	}
	p("inca_http_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", snap.Latency.Count)
	p("inca_http_request_duration_seconds_sum %g\n", snap.Latency.SumS)
	p("inca_http_request_duration_seconds_count %d\n", snap.Latency.Count)

	cacheFam := func(prefix string, st sweep.CacheStats) {
		scalar(prefix+"_hits_total", "counter", "Cache hits.", st.Hits)
		scalar(prefix+"_misses_total", "counter", "Cache misses.", st.Misses)
		scalar(prefix+"_disk_hits_total", "counter", "Misses served by the persistent store instead of simulating.", st.DiskHits)
		scalar(prefix+"_expired_total", "counter", "Waiters whose context ended mid-flight.", st.Expired)
		scalar(prefix+"_coalesced_hits_total", "counter", "Whole requests served by the coalescing layer.", st.CoalescedHits)
		scalar(prefix+"_entries", "gauge", "Stored results.", st.Entries)
	}
	cacheFam("inca_cache", snap.Cache)
	cacheFam("inca_suite_cache", snap.SuiteCache)

	if st := snap.Store; st != nil {
		scalar("inca_store_hits_total", "counter", "Store reads that found a live record.", st.Hits)
		scalar("inca_store_misses_total", "counter", "Store reads that found nothing.", st.Misses)
		scalar("inca_store_expired_total", "counter", "Store reads that found only a TTL-expired record.", st.Expired)
		scalar("inca_store_puts_total", "counter", "Records appended to the store.", st.Puts)
		scalar("inca_store_evicted_total", "counter", "Records dropped by size-cap eviction.", st.Evicted)
		scalar("inca_store_compactions_total", "counter", "Segment compactions completed.", st.Compacts)
		scalar("inca_store_torn_records_total", "counter", "Torn or corrupt records truncated at open.", st.TornRecords)
		scalar("inca_store_io_errors_total", "counter", "Disk errors swallowed into miss/no-op degradation.", st.IOErrors)
		scalar("inca_store_entries", "gauge", "Live records in the store index.", st.Entries)
		scalar("inca_store_segments", "gauge", "Segment files backing the store.", st.Segments)
		scalar("inca_store_bytes", "gauge", "Bytes across all segment files.", st.Bytes)
	}

	if jb := snap.Jobs; jb != nil {
		scalar("inca_jobs_queued", "gauge", "Jobs waiting for a runner.", jb.Queued)
		scalar("inca_jobs_running", "gauge", "Jobs executing on the runner pool.", jb.Running)
		scalar("inca_jobs_completed_total", "counter", "Jobs that reached the succeeded state.", jb.Completed)
		scalar("inca_jobs_failed_total", "counter", "Jobs that reached the failed state.", jb.Failed)
		scalar("inca_jobs_cancelled_total", "counter", "Jobs cancelled cooperatively.", jb.Cancelled)
		scalar("inca_jobs_resumed_total", "counter", "Journal-recovered jobs requeued after a restart.", jb.Resumed)
		scalar("inca_jobs_queue_depth", "gauge", "Configured job-queue shedding bound.", jb.QueueDepth)
		scalar("inca_jobs_journal_torn_records_total", "counter", "Torn journal tails truncated at open.", jb.TornRecords)
	}
	if snap.BreakerTrips != nil {
		scalar("inca_client_breaker_trips_total", "counter", "Dispatch-client circuit-breaker trips on this coordinator.", *snap.BreakerTrips)
	}

	scalar("inca_kernel_budget", "gauge", "Process-wide tensor worker budget.", snap.KernelBudget)
	scalar("inca_kernel_invocations_total", "counter", "Parallel-kernel invocations.", snap.Kernels.Invocations)
	scalar("inca_kernel_serial_total", "counter", "Kernel invocations that ran single-chunk.", snap.Kernels.Serial)
	scalar("inca_kernel_chunks_total", "counter", "Work chunks executed by kernels.", snap.Kernels.Chunks)
	scalar("inca_kernel_items_total", "counter", "Work items covered by kernel chunks.", snap.Kernels.Items)

	scalar("inca_runtime_goroutines", "gauge", "Live goroutines.", snap.Runtime.Goroutines)
	scalar("inca_runtime_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.", snap.Runtime.HeapAllocB)
	scalar("inca_runtime_heap_sys_bytes", "gauge", "Heap memory obtained from the OS.", snap.Runtime.HeapSysB)
	scalar("inca_runtime_gc_cycles_total", "counter", "Completed GC cycles.", snap.Runtime.GCCycles)
	scalar("inca_runtime_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause.", snap.Runtime.GCPauseTotal)

	scalar("inca_trace_spans", "gauge", "Spans retained in the trace ring.", snap.TraceSpans)
	scalar("inca_trace_spans_total", "counter", "Spans emitted through the trace ring.", snap.TraceSpansTotal)
	scalar("inca_trace_ring_evicted_total", "counter", "Spans dropped from the bounded trace ring to make room.", snap.TraceEvicted)

	p("# HELP inca_build_info Build metadata; the value is always 1.\n# TYPE inca_build_info gauge\n")
	p("inca_build_info{version=\"%s\",go=\"%s\",dataflows=\"%s\"} 1\n",
		escapeLabel(snap.Build.Version), escapeLabel(snap.Build.Go),
		escapeLabel(strings.Join(snap.Build.Dataflows, ",")))

	scalar("inca_cost_requests_total", "counter", "HTTP requests finalized by the cost accountant.", snap.Cost.Requests)
	scalar("inca_cost_jobs_total", "counter", "Background job executions finalized by the cost accountant.", snap.Cost.Jobs)
	scalar("inca_cost_cells_total", "counter", "Simulation cells attributed across all requests and jobs.", snap.Cost.Cells)
	scalar("inca_cost_cached_cells_total", "counter", "Attributed cells served from cache tiers.", snap.Cost.CachedCells)
	scalar("inca_cost_failed_cells_total", "counter", "Attributed cells that failed evaluation.", snap.Cost.FailedCells)
	scalar("inca_cost_attempts_total", "counter", "Engine evaluation attempts attributed across all requests.", snap.Cost.Attempts)
	scalar("inca_cost_retries_total", "counter", "Evaluation attempts beyond each cell's first.", snap.Cost.Retries)
	scalar("inca_cost_coalesced_hits_total", "counter", "Coalesced replays attributed to joiner requests.", snap.Cost.CoalescedHits)
	scalar("inca_cost_wall_seconds_total", "counter", "Wall-clock seconds summed over attributed requests and jobs.", snap.Cost.WallS)
	scalar("inca_cost_cpu_seconds_total", "counter", "Process CPU seconds attributed at request boundaries.", snap.Cost.CPUS)
	scalar("inca_cost_kernel_invocations_total", "counter", "Tensor-kernel invocations attributed at request boundaries.", snap.Cost.KernelInvocations)
	scalar("inca_cost_kernel_chunks_total", "counter", "Tensor-kernel chunks attributed at request boundaries.", snap.Cost.KernelChunks)
	scalar("inca_cost_sim_energy_joules_total", "counter", "Modeled accelerator energy summed over attributed cells.", snap.Cost.SimEnergyJ)
	scalar("inca_cost_sim_latency_seconds_total", "counter", "Modeled accelerator latency summed over attributed cells.", snap.Cost.SimLatencyS)

	if len(snap.costRows) > 0 {
		p("# HELP inca_cost_model_cells_total Attributed cells per model and dataflow.\n# TYPE inca_cost_model_cells_total counter\n")
		for _, row := range snap.costRows {
			p("inca_cost_model_cells_total{model=\"%s\",dataflow=\"%s\"} %d\n",
				escapeLabel(row.Model), escapeLabel(row.Dataflow), row.Cells)
		}
		p("# HELP inca_cost_model_sim_energy_joules_total Modeled energy per model and dataflow.\n# TYPE inca_cost_model_sim_energy_joules_total counter\n")
		for _, row := range snap.costRows {
			p("inca_cost_model_sim_energy_joules_total{model=\"%s\",dataflow=\"%s\"} %g\n",
				escapeLabel(row.Model), escapeLabel(row.Dataflow), row.SimEnergyJ)
		}
	}

	if slo := snap.SLO; slo != nil {
		scalar("inca_slo_objective_p99_seconds", "gauge", "Configured p99 latency objective (0 when latency tracking is off).", slo.TargetP99S)
		scalar("inca_slo_objective_error_budget", "gauge", "Configured tolerated 5xx fraction (0 when error tracking is off).", slo.ErrorBudget)
		p("# HELP inca_slo_error_burn_rate Error-budget burn rate per sliding window.\n# TYPE inca_slo_error_burn_rate gauge\n")
		p("inca_slo_error_burn_rate{window=\"5m\"} %g\n", slo.Fast.ErrorBurn)
		p("inca_slo_error_burn_rate{window=\"1h\"} %g\n", slo.Slow.ErrorBurn)
		p("# HELP inca_slo_latency_burn_rate Latency-budget burn rate per sliding window.\n# TYPE inca_slo_latency_burn_rate gauge\n")
		p("inca_slo_latency_burn_rate{window=\"5m\"} %g\n", slo.Fast.LatencyBurn)
		p("inca_slo_latency_burn_rate{window=\"1h\"} %g\n", slo.Slow.LatencyBurn)
		degraded := 0
		if slo.Status == "degraded" {
			degraded = 1
		}
		scalar("inca_slo_degraded", "gauge", "1 while a burn rate exceeds its threshold (fast >= 14 over 5m, sustained >= 1 over 1h).", degraded)
	}
	return err
}
