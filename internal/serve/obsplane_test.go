package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/job"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/obs/cost"
)

// stripCost removes the spliced `"cost":{...}` member from a response
// body, reconstructing what the non-opted rendering must have been.
func stripCost(t *testing.T, body []byte) []byte {
	t.Helper()
	idx := bytes.LastIndex(body, []byte(`,"cost":{`))
	if idx < 0 {
		t.Fatalf("body carries no cost block: %s", body)
	}
	out := append([]byte(nil), body[:idx]...)
	return append(out, '}', '\n')
}

// costBlock extracts the spliced summary.
func costBlock(t *testing.T, body []byte) cost.Summary {
	t.Helper()
	var probe struct {
		Cost *cost.Summary `json:"cost"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		t.Fatalf("decoding cost body: %v\n%s", err, body)
	}
	if probe.Cost == nil {
		t.Fatalf("no cost block in body: %s", body)
	}
	return *probe.Cost
}

// TestCostBlockByteIdentity is the cost plane's core contract: the body
// with ?cost=1 minus the spliced block is byte-identical to the body
// without the flag, on /v1/simulate and /v1/sweep alike, and the block
// itself reconciles exactly with the response's simulation rows.
func TestCostBlockByteIdentity(t *testing.T) {
	t.Parallel()
	// Two servers with identical options: the cache state a request sees
	// must match, or the bodies legitimately differ in the cached fields.
	_, tsPlain := newTestServer(t, Options{})
	_, tsCost := newTestServer(t, Options{})

	sweepBody := `{"archs":["inca","baseline"],"models":["LeNet5"],"phases":["inference"]}`
	plain := readAll(t, post(t, tsPlain.URL+"/v1/sweep", sweepBody, nil))
	withCost := readAll(t, post(t, tsCost.URL+"/v1/sweep?cost=1", sweepBody, nil))
	if !bytes.Equal(stripCost(t, withCost), plain) {
		t.Fatalf("sweep body with cost stripped differs:\n%s\nvs\n%s", stripCost(t, withCost), plain)
	}

	var resp SweepResponse
	if err := json.Unmarshal(plain, &resp); err != nil {
		t.Fatal(err)
	}
	sum := costBlock(t, withCost)
	if sum.Cells != int64(len(resp.Cells)) {
		t.Fatalf("cost cells = %d, response has %d", sum.Cells, len(resp.Cells))
	}
	var wantEnergy, wantLatency float64
	for _, c := range resp.Cells {
		wantEnergy += c.EnergyJ
		wantLatency += c.LatencyS
	}
	if sum.SimEnergyJ != wantEnergy || sum.SimLatencyS != wantLatency {
		t.Fatalf("cost energy/latency = %g/%g, response rows sum to %g/%g",
			sum.SimEnergyJ, sum.SimLatencyS, wantEnergy, wantLatency)
	}
	if sum.WallS <= 0 || sum.Attempts < sum.Cells-sum.CachedCells {
		t.Fatalf("implausible cost block: %+v", sum)
	}

	// /v1/simulate: the report's stable custom encoding splices too.
	// Both servers now hold this cell cached from the sweep above, so the
	// two bodies see the same cache state again.
	simBody := `{"arch":"inca","model":"LeNet5","phase":"inference"}`
	plainSim := readAll(t, post(t, tsPlain.URL+"/v1/simulate", simBody, nil))
	hdr := http.Header{}
	hdr.Set(costHeader, "1") // the header opt-in must work like ?cost=1
	withCostSim := readAll(t, post(t, tsCost.URL+"/v1/simulate", simBody, hdr))
	if !bytes.Equal(stripCost(t, withCostSim), plainSim) {
		t.Fatal("simulate body with cost stripped differs from the plain body")
	}
	if sum := costBlock(t, withCostSim); sum.Cells != 1 || sum.FailedCells != 0 {
		t.Fatalf("simulate cost block = %+v, want exactly one clean cell", sum)
	}
}

// TestUsageRollupMatchesPerRequestCosts pins the ledger invariant: the
// /v1/usage totals equal the sum of the cost blocks individual callers
// received, and the model×dataflow rows partition the cell count.
func TestUsageRollupMatchesPerRequestCosts(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{})

	var total cost.Summary
	bodies := []string{
		`{"archs":["inca","baseline"],"models":["LeNet5"],"phases":["inference"]}`,
		`{"dataflows":["is","ws"],"models":["LeNet5"],"phases":["inference"]}`,
	}
	for _, b := range bodies {
		raw := readAll(t, post(t, ts.URL+"/v1/sweep?cost=1", b, nil))
		total.Add(costBlock(t, raw))
	}

	// The middleware folds a request's summary into the ledger after the
	// response is written, so poll briefly for the books to close.
	var usage UsageResponse
	waitFor(t, func() bool {
		usage = UsageResponse{}
		getJSON(t, ts.URL+"/v1/usage", &usage)
		return usage.Totals.Cells >= total.Cells
	})
	if usage.Totals.Cells != total.Cells || usage.Totals.CachedCells != total.CachedCells {
		t.Fatalf("usage cells %d/%d, per-request sums %d/%d",
			usage.Totals.Cells, usage.Totals.CachedCells, total.Cells, total.CachedCells)
	}
	if math.Abs(usage.Totals.SimEnergyJ-total.SimEnergyJ) > 1e-9 {
		t.Fatalf("usage energy %g, per-request sum %g", usage.Totals.SimEnergyJ, total.SimEnergyJ)
	}
	if usage.Requests < int64(len(bodies)) {
		t.Fatalf("usage requests = %d, want >= %d", usage.Requests, len(bodies))
	}

	// Rows partition the cells and name the dataflow axes.
	var rowCells int64
	var rowEnergy float64
	seen := map[string]bool{}
	for _, row := range usage.Rows {
		rowCells += row.Cells
		rowEnergy += row.SimEnergyJ
		seen[row.Dataflow] = true
	}
	if rowCells != usage.Totals.Cells {
		t.Fatalf("rows sum to %d cells, totals say %d", rowCells, usage.Totals.Cells)
	}
	if math.Abs(rowEnergy-usage.Totals.SimEnergyJ) > 1e-9 {
		t.Fatalf("rows sum to %g J, totals say %g", rowEnergy, usage.Totals.SimEnergyJ)
	}
	for _, want := range []string{"is", "ws"} {
		if !seen[want] {
			t.Fatalf("usage rows missing dataflow %q: %+v", want, usage.Rows)
		}
	}
}

// TestCostCoalescedJoiner pins the coalescing interaction: a joiner that
// replays a leader's recording is charged a coalesced hit, not the
// leader's cells, and a cost-opted caller never shares a flight with a
// non-opted one (the flag is part of the coalesce key).
func TestCostCoalesceKeySeparation(t *testing.T) {
	t.Parallel()
	r1, _ := http.NewRequest(http.MethodPost, "/v1/sweep", nil)
	r2, _ := http.NewRequest(http.MethodPost, "/v1/sweep?cost=1", nil)
	body := map[string]any{"models": []string{"LeNet5"}}
	k1, ok1 := coalesceKey(r1, body)
	k2, ok2 := coalesceKey(r2, body)
	if !ok1 || !ok2 {
		t.Fatal("coalesce keys not derivable")
	}
	if k1 == k2 {
		t.Fatalf("cost-opted and plain requests share coalesce key %q", k1)
	}
}

// TestJobCostJournaledAcrossRestart pins job cost durability: a
// succeeded job's ?cost=1 snapshot carries the executor's summary, the
// plain snapshot stays byte-identical, and a manager reopened over the
// same journal still serves the summary.
func TestJobCostJournaledAcrossRestart(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	jm := newJobManager(t, dir, job.Options{Runners: 1})
	_, ts := newTestServer(t, Options{Jobs: jm})

	body := `{"archs":["inca","baseline"],"models":["LeNet5"],"phases":["inference"]}`
	var snap job.Snapshot
	if err := json.Unmarshal(readAll(t, post(t, ts.URL+"/v1/jobs", body, nil)), &snap); err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, ts.URL, snap.ID)
	if final.State != job.StateSucceeded {
		t.Fatalf("job state %s (%s)", final.State, final.Error)
	}

	plain := readAll(t, get(t, ts.URL+"/v1/jobs/"+snap.ID, nil))
	var withCost []byte
	// The executor journals the summary in a defer racing the terminal
	// state; poll until the cost block appears.
	waitFor(t, func() bool {
		withCost = readAll(t, get(t, ts.URL+"/v1/jobs/"+snap.ID+"?cost=1", nil))
		return bytes.Contains(withCost, []byte(`"cost":{`))
	})
	if !bytes.Equal(stripCost(t, withCost), plain) {
		t.Fatalf("job snapshot with cost stripped differs:\n%s\nvs\n%s", withCost, plain)
	}
	sum := costBlock(t, withCost)
	if sum.Cells != 2 || sum.FailedCells != 0 {
		t.Fatalf("job cost = %+v, want 2 clean cells", sum)
	}

	// Restart: a new manager over the same journal replays the summary.
	if err := jm.Close(); err != nil {
		t.Fatal(err)
	}
	jm2 := newJobManager(t, dir, job.Options{Runners: 1})
	_, ts2 := newTestServer(t, Options{Jobs: jm2})
	replayed := readAll(t, get(t, ts2.URL+"/v1/jobs/"+snap.ID+"?cost=1", nil))
	if got := costBlock(t, replayed); got != sum {
		t.Fatalf("replayed cost %+v differs from journaled %+v", got, sum)
	}
}

// TestTraceIndexEndpoint pins the discovery surface: recent traces list
// newest-first with root/span-count/duration summaries, ?limit= caps
// the rows, and a malformed limit answers 400.
func TestTraceIndexEndpoint(t *testing.T) {
	t.Parallel()
	tr := obs.NewTracer(obs.WithRing(256))
	_, ts := newTestServer(t, Options{Tracer: tr})

	first := post(t, ts.URL+"/v1/simulate", `{"arch":"inca","model":"LeNet5","phase":"inference"}`, nil)
	readAll(t, first)
	second := post(t, ts.URL+"/v1/simulate", `{"arch":"baseline","model":"LeNet5","phase":"inference"}`, nil)
	readAll(t, second)
	firstID := first.Header.Get(traceIDHeader)
	secondID := second.Header.Get(traceIDHeader)

	var idx TraceIndexResponse
	getJSON(t, ts.URL+"/v1/trace", &idx)
	if len(idx.Traces) < 2 {
		t.Fatalf("index has %d traces, want >= 2", len(idx.Traces))
	}
	pos := map[string]int{}
	for i, info := range idx.Traces {
		pos[info.TraceID] = i
		if info.Spans < 1 || info.Root == "" {
			t.Fatalf("degenerate index row: %+v", info)
		}
		if info.TraceID == firstID && info.Status != "ok" {
			t.Fatalf("clean trace classified %q", info.Status)
		}
	}
	p1, ok1 := pos[firstID]
	p2, ok2 := pos[secondID]
	if !ok1 || !ok2 {
		t.Fatalf("index missing request traces %s/%s: %+v", firstID, secondID, idx.Traces)
	}
	if p2 > p1 {
		t.Fatalf("newest trace listed at %d, older at %d — want newest first", p2, p1)
	}

	var capped TraceIndexResponse
	getJSON(t, ts.URL+"/v1/trace?limit=1", &capped)
	if len(capped.Traces) != 1 {
		t.Fatalf("limit=1 returned %d rows", len(capped.Traces))
	}
	if resp := get(t, ts.URL+"/v1/trace?limit=0", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=0 answered %d, want 400", resp.StatusCode)
	} else {
		readAll(t, resp)
	}
	if resp := get(t, ts.URL+"/v1/trace?limit=zap", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=zap answered %d, want 400", resp.StatusCode)
	} else {
		readAll(t, resp)
	}
}

// TestShardTraceEndpoint pins the federation protocol's unit exchange:
// known traces answer with raw spans, unknown traces answer 200 with an
// empty list (not 404), and a tracing-disabled node answers 404.
func TestShardTraceEndpoint(t *testing.T) {
	t.Parallel()
	tr := obs.NewTracer(obs.WithRing(64))
	_, ts := newTestServer(t, Options{Tracer: tr, ShardID: "s1"})
	resp := post(t, ts.URL+"/v1/simulate", `{"arch":"inca","model":"LeNet5","phase":"inference"}`, nil)
	readAll(t, resp)
	traceID := resp.Header.Get(traceIDHeader)

	var str ShardTraceResponse
	getJSON(t, ts.URL+"/v1/shard/trace/"+traceID, &str)
	if str.ShardID != "s1" || len(str.Spans) == 0 {
		t.Fatalf("shard trace = %+v", str)
	}
	var empty ShardTraceResponse
	r2 := getJSON(t, ts.URL+"/v1/shard/trace/ffffffffffffffffffffffffffffffff", &empty)
	if r2.StatusCode != http.StatusOK || empty.Spans == nil || len(empty.Spans) != 0 {
		t.Fatalf("unknown shard trace: %d %+v, want 200 with empty list", r2.StatusCode, empty)
	}

	_, off := newTestServer(t, Options{})
	if resp := get(t, off.URL+"/v1/shard/trace/abc", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("untraced shard trace answered %d, want 404", resp.StatusCode)
	} else {
		readAll(t, resp)
	}
}

// TestLivenessBuildInfo pins the liveness contract: the default body is
// exactly "ok\n" (probes compare bytes), the version rides the
// X-Inca-Version header, and ?format=json serves the build block.
func TestLivenessBuildInfo(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Options{})
	resp := get(t, ts.URL+"/healthz", nil)
	if body := string(readAll(t, resp)); body != "ok\n" {
		t.Fatalf("liveness body %q, want exactly %q", body, "ok\n")
	}
	if resp.Header.Get("X-Inca-Version") == "" {
		t.Fatal("liveness missing X-Inca-Version header")
	}
	var live struct {
		Status string    `json:"status"`
		Build  BuildInfo `json:"build"`
	}
	getJSON(t, ts.URL+"/healthz/live?format=json", &live)
	if live.Status != "ok" || live.Build.Go == "" || live.Build.Version == "" {
		t.Fatalf("liveness JSON = %+v", live)
	}
	if len(live.Build.Dataflows) == 0 {
		t.Fatal("build info lists no dataflow backends")
	}
}

// fakeClock is a settable clock for the SLO tracker.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

// TestSLOBurnRateTracker pins the burn-rate math on a fake clock: clean
// traffic is "ok", a 5xx burst past 14x the budget flips the fast
// window degraded, and sliding past the short window clears it.
func TestSLOBurnRateTracker(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	tr := newSLOTracker(SLOOptions{TargetP99: 100 * time.Millisecond, ErrorBudget: 0.01}, clk.now)

	for i := 0; i < 1000; i++ {
		tr.observe(200, 10*time.Millisecond)
	}
	if st := tr.stats(); st.Status != "ok" || st.Fast.ErrorBurn != 0 {
		t.Fatalf("clean traffic: %+v", st)
	}

	// 200 errors on 1200 requests = 16.7% error rate = burn ~16.7 over a
	// 1% budget: a fast burn.
	for i := 0; i < 200; i++ {
		tr.observe(500, 10*time.Millisecond)
	}
	st := tr.stats()
	if st.Status != "degraded" || st.Fast.ErrorBurn < sloFastBurn {
		t.Fatalf("error burst not degraded: %+v", st)
	}

	// Slow requests burn the latency budget independently.
	clk2 := &fakeClock{t: time.Unix(2_000_000, 0)}
	lat := newSLOTracker(SLOOptions{TargetP99: 50 * time.Millisecond}, clk2.now)
	for i := 0; i < 100; i++ {
		lat.observe(200, time.Second) // 100% slow over a 1% budget: burn 100
	}
	if st := lat.stats(); st.Status != "degraded" || st.Fast.LatencyBurn < sloFastBurn {
		t.Fatalf("latency burn not degraded: %+v", st)
	}

	// The window slides: an hour later both windows are empty again.
	clk.t = clk.t.Add(sloLongWindow + sloBucket)
	if st := tr.stats(); st.Status != "ok" || st.Fast.Requests != 0 || st.Slow.Requests != 0 {
		t.Fatalf("windows did not slide clean: %+v", st)
	}
}

// TestSLOReadinessAndMetrics pins the HTTP surface: with objectives
// configured readiness serves the structured body including the SLO
// verdict (degraded stays 200), and the burn-rate gauges ride the
// Prometheus exposition.
func TestSLOReadinessAndMetrics(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{t: time.Unix(3_000_000, 0)}
	s, ts := newTestServer(t, Options{
		SLO:    SLOOptions{TargetP99: 5 * time.Second, ErrorBudget: 0.01},
		sloNow: clk.now,
	})

	readAll(t, get(t, ts.URL+"/healthz/ready", nil))
	var ready readinessResponse
	resp := getJSON(t, ts.URL+"/healthz/ready", &ready)
	if resp.StatusCode != http.StatusOK || ready.Status != "ready" || ready.SLO == nil {
		t.Fatalf("readiness = %d %+v", resp.StatusCode, ready)
	}

	// Burn the error budget hard: direct observes (the tracker is the
	// unit under test; HTTP 5xxs are produced the same way).
	for i := 0; i < 100; i++ {
		s.slo.observe(500, time.Millisecond)
	}
	ready = readinessResponse{}
	resp = getJSON(t, ts.URL+"/healthz/ready", &ready)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded readiness answered %d, want 200", resp.StatusCode)
	}
	if ready.Status != "degraded" || ready.SLO == nil || ready.SLO.Status != "degraded" {
		t.Fatalf("degraded not visible: %+v", ready)
	}

	text := string(readAll(t, get(t, ts.URL+"/metrics?format=prometheus", nil)))
	for _, want := range []string{
		"inca_slo_objective_p99_seconds 5",
		`inca_slo_error_burn_rate{window="5m"}`,
		`inca_slo_latency_burn_rate{window="1h"}`,
		"inca_slo_degraded 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// promSample matches one exposition sample line:
// name{label="value",...} number
var promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]?(?:[0-9]*\.)?[0-9]+(?:[eE][+-]?[0-9]+)?)$`)

// TestPrometheusExpositionConformance is the strict text-format check
// over every server shape: each family declares # HELP then # TYPE
// exactly once before its samples, sample names extend their family
// only with histogram suffixes, label values are well-formed, and no
// family is declared twice.
func TestPrometheusExpositionConformance(t *testing.T) {
	t.Parallel()
	shapes := map[string]Options{
		"plain": {},
		"traced+slo": {
			Tracer: obs.NewTracer(obs.WithRing(64)),
			SLO:    SLOOptions{TargetP99: time.Second, ErrorBudget: 0.01},
		},
		"shard": {ShardID: "s1"},
	}
	for name, opt := range shapes {
		t.Run(name, func(t *testing.T) {
			jm := newJobManager(t, "", job.Options{Runners: 1})
			opt.Jobs = jm
			_, ts := newTestServer(t, opt)
			// Traffic: a success, an error, and cost attribution.
			readAll(t, post(t, ts.URL+"/v1/sweep?cost=1",
				`{"dataflows":["is"],"models":["LeNet5"],"phases":["inference"]}`, nil))
			readAll(t, post(t, ts.URL+"/v1/simulate", `{"arch":"nope","model":"LeNet5","phase":"inference"}`, nil))

			// The cost ledger folds after the response is written — wait for
			// the labeled model row to land before freezing the page.
			var text string
			waitFor(t, func() bool {
				text = string(readAll(t, get(t, ts.URL+"/metrics?format=prometheus", nil)))
				return strings.Contains(text, `inca_cost_model_cells_total{model="LeNet5",dataflow="is"}`)
			})
			checkPrometheusText(t, text)
			for _, want := range []string{
				"inca_cost_cells_total", "inca_cost_sim_energy_joules_total",
				"inca_build_info", "inca_uptime_seconds",
				"inca_trace_ring_evicted_total",
			} {
				if !strings.Contains(text, want) {
					t.Errorf("%s exposition missing %q", name, want)
				}
			}
		})
	}
}

// checkPrometheusText validates the HELP/TYPE/sample grammar of one
// exposition page.
func checkPrometheusText(t *testing.T, text string) {
	t.Helper()
	if !strings.HasSuffix(text, "\n") {
		t.Error("exposition does not end in a newline")
	}
	declared := map[string]string{} // family -> type
	var lastFamily, pendingHelp string
	samples := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if _, dup := declared[name]; dup {
				t.Fatalf("line %d: family %s declared twice", ln+1, name)
			}
			pendingHelp = name
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := fields[0], fields[1]
			if pendingHelp != name {
				t.Fatalf("line %d: TYPE %s not preceded by its HELP (pending %q)", ln+1, name, pendingHelp)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			declared[name], lastFamily, pendingHelp = typ, name, ""
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			m := promSample.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", ln+1, line)
			}
			name := m[1]
			base := name
			if typ := declared[lastFamily]; typ == "histogram" {
				base = strings.TrimSuffix(base, "_bucket")
				base = strings.TrimSuffix(base, "_sum")
				base = strings.TrimSuffix(base, "_count")
			}
			if base != lastFamily {
				t.Fatalf("line %d: sample %s outside its declared family %s", ln+1, name, lastFamily)
			}
			if m[2] != "" {
				// Labels: each is key="value" with any quotes/backslashes in
				// the value escaped.
				inner := strings.TrimSuffix(strings.TrimPrefix(m[2], "{"), "}")
				for _, pair := range splitLabels(inner) {
					k, v, ok := strings.Cut(pair, "=")
					if !ok || k == "" || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
						t.Fatalf("line %d: malformed label %q", ln+1, pair)
					}
					raw := v[1 : len(v)-1]
					for i := 0; i < len(raw); i++ {
						if raw[i] == '"' && (i == 0 || raw[i-1] != '\\') {
							t.Fatalf("line %d: unescaped quote in label value %q", ln+1, raw)
						}
					}
				}
			}
			if samples[line[:len(line)-len(m[3])]] {
				t.Fatalf("line %d: duplicate series %q", ln+1, line)
			}
			samples[line[:len(line)-len(m[3])]] = true
		}
	}
	if len(declared) == 0 {
		t.Fatal("no families declared")
	}
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(s):
			cur.WriteByte(c)
			i++
			cur.WriteByte(s[i])
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// TestEscapeLabel pins Prometheus label escaping for the build-info and
// model-row label values.
func TestEscapeLabel(t *testing.T) {
	t.Parallel()
	got := escapeLabel("a\"b\\c\nd")
	want := `a\"b\\c\nd`
	if got != want {
		t.Fatalf("escapeLabel = %q, want %q", got, want)
	}
	if escapeLabel("plain") != "plain" {
		t.Fatal("plain labels must pass through")
	}
}
