package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/baseline"
	"github.com/inca-arch/inca/internal/core"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// newTestServer builds a Server with tight defaults for tests.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns the response.
func post(t *testing.T, url string, body string, header http.Header) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// directReport evaluates one cell through the v2 facade path the server
// wraps: validated config → model by dataflow → context-aware Simulate.
func directReport(t *testing.T, cfg arch.Config, model string, phase sim.Phase) *sim.Report {
	t.Helper()
	net, err := nn.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	var sm sim.Simulator
	if cfg.Dataflow == arch.InputStationary {
		sm = sim.Wrap(core.New(cfg))
	} else {
		sm = sim.Wrap(baseline.New(cfg))
	}
	rep, err := sm.Simulate(context.Background(), net, phase)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSimulateMatchesDirectFacade(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := post(t, ts.URL+"/v1/simulate",
		`{"arch":"inca","model":"ResNet18","phase":"inference"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Fatalf("content type = %q", got)
	}
	if resp.Header.Get(requestIDHeader) == "" {
		t.Fatal("missing request id header")
	}
	body := readAll(t, resp)

	want, err := json.Marshal(directReport(t, arch.INCA(), "ResNet18", sim.Inference))
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(body, want) {
		t.Fatalf("served body differs from direct facade encoding:\n got %.120s...\nwant %.120s...", body, want)
	}
}

func TestSimulateCSVNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	hdr := http.Header{"Accept": []string{"text/csv"}}
	resp := post(t, ts.URL+"/v1/simulate",
		`{"arch":"baseline","model":"LeNet5","phase":"inference"}`, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "text/csv" {
		t.Fatalf("content type = %q", got)
	}
	body := readAll(t, resp)

	var want bytes.Buffer
	rep := directReport(t, arch.Baseline(), "LeNet5", sim.Inference)
	if err := rep.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatal("served CSV differs from Report.WriteCSV")
	}
}

func TestSimulateCustomConfigAndBatch(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cfg := arch.INCA()
	cfg.Name = "MyINCA"
	var cfgJSON bytes.Buffer
	if err := cfg.WriteJSON(&cfgJSON); err != nil {
		t.Fatal(err)
	}
	body := `{"arch":"inca","model":"LeNet5","phase":"training","batch":16,"config":` + cfgJSON.String() + `}`
	resp := post(t, ts.URL+"/v1/simulate", body, nil)
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var rep struct {
		Arch  string `json:"arch"`
		Batch int    `json:"batch"`
		Phase string `json:"phase"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Arch != "MyINCA" || rep.Batch != 16 || rep.Phase != "training" {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestSimulateBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, body := range []string{
		`{"arch":"tpu","model":"ResNet18","phase":"inference"}`,
		`{"arch":"inca","model":"NoSuchNet","phase":"inference"}`,
		`{"arch":"inca","model":"ResNet18","phase":"sideways"}`,
		`{"arch":"inca","model":"ResNet18","phase":"inference","bogus":1}`,
		`not json`,
	} {
		resp := post(t, ts.URL+"/v1/simulate", body, nil)
		raw := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400 (%s)", body, resp.StatusCode, raw)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("body %q: error payload %q", body, raw)
		}
	}
}

func TestSweepPlanExpansion(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	body := `{
		"archs": ["inca", "baseline"],
		"models": ["LeNet5", "VGG16-CIFAR"],
		"phases": ["inference", "training"],
		"overrides": [{"batch": 4}, {"name": "small", "array_size": 32, "adc_bits": 6}]
	}`
	resp := post(t, ts.URL+"/v1/sweep", body, nil)
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var sr SweepResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Cells) != 16 { // 2 archs × 2 overrides × 2 nets × 2 phases
		t.Fatalf("cells = %d, want 16", len(sr.Cells))
	}
	if sr.Failed != 0 {
		t.Fatalf("failed cells: %+v", sr.Cells)
	}
	if sr.Cells[0].Override != "batch=4" || sr.Cells[8].Override != "batch=4" {
		t.Fatalf("override naming: %+v", sr.Cells[0])
	}
	for _, c := range sr.Cells {
		if c.EnergyJ <= 0 || c.LatencyS <= 0 {
			t.Fatalf("cell missing metrics: %+v", c)
		}
	}
	if s.Cache().Len() == 0 {
		t.Fatal("sweep did not populate the server cache")
	}

	// The identical sweep again must be served from cache, cell for cell.
	resp2 := post(t, ts.URL+"/v1/sweep", body, nil)
	var sr2 SweepResponse
	if err := json.Unmarshal(readAll(t, resp2), &sr2); err != nil {
		t.Fatal(err)
	}
	if sr2.Cached != len(sr2.Cells) {
		t.Fatalf("second run cached %d of %d cells", sr2.Cached, len(sr2.Cells))
	}
}

func TestSweepCSV(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := post(t, ts.URL+"/v1/sweep?format=csv",
		`{"archs":["inca"],"models":["LeNet5"],"phases":["inference"]}`, nil)
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/csv" {
		t.Fatalf("status %d, type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "arch,override,network,phase") {
		t.Fatalf("csv:\n%s", raw)
	}
	if !strings.HasPrefix(lines[1], "INCA,,LeNet5,inference") {
		t.Fatalf("row: %s", lines[1])
	}
}

func TestSweepBadPlan(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := post(t, ts.URL+"/v1/sweep", `{"archs":["inca"],"models":[],"phases":["inference"]}`, nil)
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty plan status = %d, want 400", resp.StatusCode)
	}
}

func TestModelsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	var infos []ModelInfo
	if err := json.Unmarshal(raw, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 10 {
		t.Fatalf("models = %d, want 10", len(infos))
	}
	byName := map[string]ModelInfo{}
	for _, m := range infos {
		byName[m.Name] = m
	}
	if m := byName["VGG16"]; m.Weights == 0 || m.MACs == 0 || m.LightModel {
		t.Fatalf("VGG16 = %+v", m)
	}
	if m := byName["MobileNetV2"]; !m.LightModel {
		t.Fatalf("MobileNetV2 = %+v", m)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/experiments/table5")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var er struct {
		ID     string `json:"id"`
		Output string `json:"output"`
	}
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if er.ID != "table5" || !strings.Contains(er.Output, "Table V") {
		t.Fatalf("experiment payload: %+v", er)
	}

	// Unknown id → 404.
	resp404, err := http.Get(ts.URL + "/v1/experiments/nope")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp404)
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status = %d, want 404", resp404.StatusCode)
	}

	// The experiment index lists every suite entry.
	respIdx, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var idx []experimentInfo
	if err := json.Unmarshal(readAll(t, respIdx), &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx) != 20 {
		t.Fatalf("experiment index = %d entries, want 20", len(idx))
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxInflight: 3, QueueDepth: 7})
	// Generate some traffic first: a hit-producing pair of simulates and
	// one 400.
	post(t, ts.URL+"/v1/simulate", `{"arch":"inca","model":"LeNet5","phase":"inference"}`, nil).Body.Close()
	post(t, ts.URL+"/v1/simulate", `{"arch":"inca","model":"LeNet5","phase":"inference"}`, nil).Body.Close()
	post(t, ts.URL+"/v1/simulate", `bad`, nil).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(readAll(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests != 4 {
		t.Fatalf("requests = %d, want 4", snap.Requests)
	}
	if snap.Status2xx != 2 || snap.Status4xx != 1 {
		t.Fatalf("status counts: %+v", snap)
	}
	if snap.MaxInflight != 3 || snap.QueueDepth != 7 {
		t.Fatalf("config gauges: %+v", snap)
	}
	if snap.Cache.Misses != 1 || snap.Cache.Hits != 1 || snap.Cache.Entries != 1 {
		t.Fatalf("cache stats: %+v", snap.Cache)
	}
	if snap.Latency.Count != 3 {
		t.Fatalf("latency count = %d, want 3 (metrics GET not yet recorded)", snap.Latency.Count)
	}
	if snap.KernelBudget < 1 || snap.RequestWorkers < 1 {
		t.Fatalf("budget gauges: %+v", snap)
	}
}

func TestSaturatedQueueReturns503WithRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxInflight: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	// Fill both the execution slot and the single queue ticket directly;
	// the next request must be rejected immediately, not block.
	s.admit.tickets <- struct{}{}
	s.admit.tickets <- struct{}{}
	defer func() { <-s.admit.tickets; <-s.admit.tickets }()

	done := make(chan *http.Response, 1)
	go func() {
		done <- post(t, ts.URL+"/v1/simulate", `{"arch":"inca","model":"LeNet5","phase":"inference"}`, nil)
	}()
	select {
	case resp := <-done:
		raw := readAll(t, resp)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503 (%s)", resp.StatusCode, raw)
		}
		if got := resp.Header.Get("Retry-After"); got != "2" {
			t.Fatalf("Retry-After = %q, want \"2\"", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("saturated request blocked instead of failing fast")
	}
}

func TestQueuedRequestTimesOutAs503(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxInflight: 1, QueueDepth: 4})
	// Hold the only execution slot so the request queues, then let its
	// client-side deadline expire: the server must release the ticket and
	// count a rejection.
	s.admit.slots <- struct{}{}
	defer func() { <-s.admit.slots }()

	client := &http.Client{Timeout: 300 * time.Millisecond}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate",
		strings.NewReader(`{"arch":"inca","model":"LeNet5","phase":"inference"}`))
	if _, err := client.Do(req); err == nil {
		t.Fatal("expected client timeout while queued")
	}
	// The ticket must come back once the server notices the abandonment.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.admit.tickets) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned request leaked its admission ticket")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.metrics.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	hdr := http.Header{requestIDHeader: []string{"caller-supplied-7"}}
	resp := post(t, ts.URL+"/v1/simulate", `{"arch":"inca","model":"LeNet5","phase":"inference"}`, hdr)
	readAll(t, resp)
	if got := resp.Header.Get(requestIDHeader); got != "caller-supplied-7" {
		t.Fatalf("request id = %q, want caller-supplied-7", got)
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/simulate") // GET on a POST route
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/simulate = %d, want 405", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp2)
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", resp2.StatusCode)
	}
}
