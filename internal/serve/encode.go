package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/obs/cost"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/sweep"
	"github.com/inca-arch/inca/internal/tune"
)

// SimulateRequest is the /v1/simulate body: one (config, network, phase)
// cell. Dataflow selects a registered backend by ID or alias ("is",
// "ws", "os", "gpu"; legacy architecture names normalize server-side);
// Arch is the pre-registry spelling ("inca", "baseline", "gpu") kept
// for wire compatibility. Config, when present, replaces the built-in
// configuration entirely and is built on the selected dataflow (or, with
// no Dataflow, on the backend its Dataflow field selects, exactly like
// the v2 facade).
type SimulateRequest struct {
	Arch     string `json:"arch,omitempty"`
	Dataflow string `json:"dataflow,omitempty"`
	Model    string `json:"model"`
	Phase    string `json:"phase"`
	// Batch overrides the configuration's batch size when > 0. Ignored
	// for the fixed GPU roofline.
	Batch  int              `json:"batch,omitempty"`
	Config *json.RawMessage `json:"config,omitempty"`
}

// OverrideSpec is one declarative configuration transform of a sweep
// request — the JSON form of sweep.Override for the knobs the paper's
// studies turn (batch scaling, ADC precision, array geometry, 3D planes).
// Zero fields leave the base configuration untouched.
type OverrideSpec struct {
	Name          string `json:"name,omitempty"`
	Batch         int    `json:"batch,omitempty"`
	ADCBits       int    `json:"adc_bits,omitempty"`
	ArraySize     int    `json:"array_size,omitempty"`
	StackedPlanes int    `json:"stacked_planes,omitempty"`
}

// label derives a stable override name when the caller did not give one.
func (o OverrideSpec) label() string {
	if o.Name != "" {
		return o.Name
	}
	var parts []string
	if o.Batch > 0 {
		parts = append(parts, fmt.Sprintf("batch=%d", o.Batch))
	}
	if o.ADCBits > 0 {
		parts = append(parts, fmt.Sprintf("adc=%d", o.ADCBits))
	}
	if o.ArraySize > 0 {
		parts = append(parts, fmt.Sprintf("array=%d", o.ArraySize))
	}
	if o.StackedPlanes > 0 {
		parts = append(parts, fmt.Sprintf("planes=%d", o.StackedPlanes))
	}
	if len(parts) == 0 {
		return "base"
	}
	return strings.Join(parts, ",")
}

// override lowers the spec onto the engine's transform type.
func (o OverrideSpec) override() sweep.Override {
	return sweep.Override{
		Name: o.label(),
		Apply: func(cfg arch.Config) arch.Config {
			if o.Batch > 0 {
				cfg.BatchSize = o.Batch
			}
			if o.ADCBits > 0 {
				cfg.ADCBits = o.ADCBits
			}
			if o.ArraySize > 0 {
				cfg.SubarrayRows, cfg.SubarrayCols = o.ArraySize, o.ArraySize
			}
			if o.StackedPlanes > 0 {
				cfg.StackedPlanes = o.StackedPlanes
			}
			return cfg
		},
	}
}

// TuneSpec asks /v1/sweep to run the mapping auto-tuner instead of a
// plain cross-product: every legal tile/partition point of the selected
// dataflows is evaluated and the response carries one Pareto frontier
// (energy × latency × area) per model × phase.
type TuneSpec struct {
	// Dataflows narrows the searched backends (IDs or aliases); empty
	// means every registered backend.
	Dataflows []string `json:"dataflows,omitempty"`
	// MaxPerDataflow bounds the mapping points searched per backend;
	// <= 0 means the full space.
	MaxPerDataflow int `json:"max_per_dataflow,omitempty"`
}

// SweepRequest is the /v1/sweep body: a declarative plan fanned out on
// the engine — archs × models × phases × overrides, exactly the
// cross-product shape of the paper's Figs 11–16. Dataflows adds
// registered backends by ID ("os", ...) as additional architecture axes;
// Tune switches the request to the mapping auto-tuner.
type SweepRequest struct {
	Archs     []string `json:"archs,omitempty"`
	Dataflows []string `json:"dataflows,omitempty"`
	Models    []string `json:"models"`
	Phases    []string `json:"phases"`
	// Batch overrides every non-fixed arch's base batch size when > 0.
	Batch     int            `json:"batch,omitempty"`
	Overrides []OverrideSpec `json:"overrides,omitempty"`
	Tune      *TuneSpec      `json:"tune,omitempty"`
}

// CellResult is one sweep cell's summary row in a /v1/sweep response.
// Dataflow is populated only for requests that select backends through
// the dataflow fields, keeping legacy response bodies byte-identical.
type CellResult struct {
	Arch            string  `json:"arch"`
	Dataflow        string  `json:"dataflow,omitempty"`
	Override        string  `json:"override,omitempty"`
	Network         string  `json:"network"`
	Phase           string  `json:"phase"`
	Cached          bool    `json:"cached"`
	Error           string  `json:"error,omitempty"`
	EnergyJ         float64 `json:"energy_j"`
	LatencyS        float64 `json:"latency_s"`
	EnergyPerImageJ float64 `json:"energy_per_image_j"`
	ThroughputIPS   float64 `json:"throughput_ips"`
	Utilization     float64 `json:"utilization"`
}

// SweepResponse is the /v1/sweep payload. Frontiers is present only for
// tune requests: one Pareto frontier per model × phase, in request
// order. Shard is present only when the sweep ran scatter/gather across
// a cluster; single-node bodies stay byte-identical.
type SweepResponse struct {
	Cells     []CellResult     `json:"cells"`
	Cached    int              `json:"cached"`
	Failed    int              `json:"failed"`
	Cache     sweep.CacheStats `json:"cache"`
	Frontiers []tune.Frontier  `json:"frontiers,omitempty"`
	Shard     *ShardSummary    `json:"shard,omitempty"`
}

// ModelInfo is one /v1/models entry. Dataflows lists the registered
// backend IDs that can simulate the model, with the phases each
// supports in Capabilities.
type ModelInfo struct {
	Name        string   `json:"name"`
	Layers      int      `json:"layers"`
	Weights     int64    `json:"weights"`
	Activations int64    `json:"activations"`
	MACs        int64    `json:"macs"`
	LightModel  bool     `json:"light_model"`
	Dataflows   []string `json:"dataflows"`
}

// errorBody is the uniform JSON error payload. TraceID, set when the
// server traces requests, is the root span's trace ID — the handle a
// caller quotes to GET /v1/trace/{id} to see where its request failed.
type errorBody struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

// writeJSON encodes v with a stable layout. Failures after the header is
// out can only be logged.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		s.log.Error("encoding response", "err", err)
	}
}

// writeError answers with the uniform error payload. The trace ID rides
// along when tracing is on: the instrument middleware stamped it on the
// response headers before the handler ran, so it is read back from
// there rather than threading the request through every call site.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorBody{Error: err.Error(), TraceID: w.Header().Get(traceIDHeader)})
}

// retryAfterSeconds renders the configured Retry-After hint in whole
// seconds. With RetryJitterSeed set, a seeded stream adds up to a
// quarter of the base (at least one second), so a synchronized cohort
// of rejected clients spreads its retries instead of re-stampeding the
// admission gate in lockstep; with a zero seed the hint is exact.
func (s *Server) retryAfterSeconds() int {
	base := int(s.opt.RetryAfter.Seconds() + 0.5)
	if s.jitter == nil {
		return base
	}
	span := base / 4
	if span < 1 {
		span = 1
	}
	s.jitterMu.Lock()
	j := s.jitter.Intn(span + 1)
	s.jitterMu.Unlock()
	return base + j
}

// writeUnavailable answers 503 with the Retry-After hint — the admission
// path's contract: overload is explicit and immediately retriable.
func (s *Server) writeUnavailable(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	s.writeError(w, http.StatusServiceUnavailable, err)
}

// wantsCSV reports whether the request negotiated CSV output, either via
// the Accept header or a ?format=csv query parameter.
func wantsCSV(r *http.Request) bool {
	if r.URL.Query().Get("format") == "csv" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/csv")
}

// costHeader is the header form of the cost opt-in (?cost=1 works too).
const costHeader = "X-Inca-Cost"

// wantsCost reports whether the caller opted into the "cost" block on
// /v1/simulate, /v1/sweep, and /v1/jobs/{id} responses. Opt-in keeps
// the default bodies byte-identical to earlier releases — the golden-
// body and cluster byte-identity guarantees survive the cost plane.
func wantsCost(r *http.Request) bool {
	if v := r.URL.Query().Get("cost"); v == "1" || v == "true" {
		return true
	}
	v := r.Header.Get(costHeader)
	return v == "1" || v == "true"
}

// writeJSONCost writes v as writeJSON would, with the cost summary
// spliced in as a top-level "cost" member. Splicing (rather than a
// struct field) works for any object-shaped payload — including
// sim.Report, whose stable custom encoding cannot grow fields — and
// guarantees the non-cost rendering stays byte-identical.
func (s *Server) writeJSONCost(w http.ResponseWriter, status int, v any, sum cost.Summary) {
	body, err := json.Marshal(v)
	if err != nil || len(body) == 0 || body[len(body)-1] != '}' {
		s.writeJSON(w, status, v)
		return
	}
	costJSON, err := json.Marshal(sum)
	if err != nil {
		s.writeJSON(w, status, v)
		return
	}
	buf := make([]byte, 0, len(body)+len(costJSON)+12)
	buf = append(buf, body[:len(body)-1]...)
	if len(body) > 2 { // non-empty object needs the separating comma
		buf = append(buf, ',')
	}
	buf = append(buf, `"cost":`...)
	buf = append(buf, costJSON...)
	buf = append(buf, '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(buf); err != nil {
		s.log.Error("writing response", "err", err)
	}
}

// parsePhase maps the wire name onto the simulation phase.
func parsePhase(name string) (sim.Phase, error) {
	switch name {
	case "inference":
		return sim.Inference, nil
	case "training":
		return sim.Training, nil
	default:
		return 0, fmt.Errorf("unknown phase %q (want inference or training)", name)
	}
}

// buildArch resolves an architecture selection (legacy arch name or
// explicit dataflow ID, plus optional batch override and custom
// configuration) into a sweep axis. The custom configuration is
// validated here so a bad request fails with 400 before admission.
func buildArch(name, dataflowID string, batch int, rawCfg *json.RawMessage) (sweep.Arch, error) {
	if dataflowID != "" {
		return buildDataflowArch(dataflowID, batch, rawCfg)
	}
	if rawCfg != nil {
		cfg, err := arch.ReadJSON(strings.NewReader(string(*rawCfg)))
		if err != nil {
			return sweep.Arch{}, err
		}
		if batch > 0 {
			cfg.BatchSize = batch
		}
		return sweep.ConfigArch(cfg), nil
	}
	var cfg arch.Config
	switch name {
	case "inca":
		cfg = arch.INCA()
	case "baseline":
		cfg = arch.Baseline()
	case "gpu":
		return sweep.GPUArch(), nil
	default:
		// Registry fallback: arch names that are dataflow IDs or aliases
		// ("os", "is", legacy "WS-Baseline", ...) normalize server-side.
		if id, ok := dataflow.Normalize(name); ok {
			return buildDataflowArch(id, batch, nil)
		}
		return sweep.Arch{}, fmt.Errorf("unknown arch %q (want inca, baseline, gpu, or a registered dataflow ID)", name)
	}
	if batch > 0 {
		cfg.BatchSize = batch
	}
	return sweep.ConfigArch(cfg), nil
}

// buildDataflowArch resolves an explicit dataflow selection: the named
// backend's default configuration, or the caller's custom configuration
// constructed on that backend.
func buildDataflowArch(id string, batch int, rawCfg *json.RawMessage) (sweep.Arch, error) {
	d, err := dataflow.Get(id)
	if err != nil {
		return sweep.Arch{}, err
	}
	caps := d.Capabilities()
	cfg := d.DefaultConfig()
	if rawCfg != nil {
		cfg, err = arch.ReadJSON(strings.NewReader(string(*rawCfg)))
		if err != nil {
			return sweep.Arch{}, err
		}
	}
	if batch > 0 && caps.Configurable {
		cfg.BatchSize = batch
	}
	name := cfg.Name
	if name == "" {
		name = caps.Name
	}
	return sweep.Arch{
		Name:     name,
		Dataflow: d.ID(),
		Base:     cfg,
		Build:    d.New,
		Fixed:    !caps.Configurable,
	}, nil
}
