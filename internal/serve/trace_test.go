package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/fault"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/sweep"
	"github.com/inca-arch/inca/internal/tensor"
)

// get sends a GET with optional headers and returns the response.
func get(t *testing.T, url string, header http.Header) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestTracedSimulateEndToEnd is the tentpole acceptance run: a POST
// /v1/simulate against a tracing server (JSONL sink attached, 30%
// faults injected at the sweep cells, retries armed) yields exactly one
// trace whose root serve/request span bounds every descendant, whose
// sweep/cell span carries cache and attempt attributes, and whose
// sim/layer leaves reconcile with the report; the same trace is
// retrievable via GET /v1/trace/{id} and was written to the JSONL sink.
func TestTracedSimulateEndToEnd(t *testing.T) {
	var jsonl bytes.Buffer
	sink := obs.NewJSONLWriter(&jsonl)
	tr := obs.NewTracer(obs.WithRing(1024), obs.WithSink(sink))
	inj := fault.New(99)
	inj.Add(fault.Rule{Site: "sweep/cell/*", Kind: fault.KindError, Prob: 0.3})
	_, ts := newTestServer(t, Options{
		Tracer: tr,
		Inject: inj,
		SweepRetry: sweep.RetryPolicy{
			MaxAttempts: 30,
			BaseDelay:   50 * time.Microsecond,
			MaxDelay:    500 * time.Microsecond,
			Seed:        99,
		},
	})

	resp := post(t, ts.URL+"/v1/simulate", `{"arch":"inca","model":"LeNet5","phase":"inference"}`, nil)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get(traceIDHeader)
	if traceID == "" {
		t.Fatal("traced response missing X-Trace-Id")
	}
	if tpTrace, _, ok := obs.ParseTraceparent(resp.Header.Get(traceparentHeader)); !ok || tpTrace != traceID {
		t.Fatalf("response traceparent %q does not carry trace %s", resp.Header.Get(traceparentHeader), traceID)
	}

	spans := tr.Ring().Trace(traceID)
	byID := make(map[string]obs.SpanData, len(spans))
	var root *obs.SpanData
	names := map[string]int{}
	for i := range spans {
		byID[spans[i].SpanID] = spans[i]
		names[spans[i].Name]++
		if spans[i].Name == SpanRequest {
			root = &spans[i]
		}
	}
	if root == nil {
		t.Fatalf("no %s root span in trace; got %v", SpanRequest, names)
	}
	if root.ParentID != "" {
		t.Fatalf("root span has parent %q", root.ParentID)
	}
	for _, want := range []string{SpanRequest, sweep.SpanCell, sweep.SpanAttempt, "sim/simulate", "sim/layer"} {
		if names[want] == 0 {
			t.Fatalf("trace missing %s spans; got %v", want, names)
		}
	}
	if names[SpanRequest] != 1 {
		t.Fatalf("one request must yield one root span, got %d", names[SpanRequest])
	}

	// Every span belongs to this single trace, links to a parent within
	// it, and nests inside the root's time bounds; sibling (leaf) span
	// durations never sum past their parent's.
	durByParent := map[string]time.Duration{}
	for _, sd := range spans {
		if sd.TraceID != traceID {
			t.Fatalf("span %s carries trace %s", sd.Name, sd.TraceID)
		}
		if sd.SpanID == root.SpanID {
			continue
		}
		if _, ok := byID[sd.ParentID]; !ok {
			t.Fatalf("span %s has dangling parent %q", sd.Name, sd.ParentID)
		}
		if sd.Start.Before(root.Start) || sd.End.After(root.End) {
			t.Errorf("span %s [%v, %v] escapes root [%v, %v]", sd.Name, sd.Start, sd.End, root.Start, root.End)
		}
		durByParent[sd.ParentID] += sd.Duration()
	}
	for parentID, sum := range durByParent {
		if parent := byID[parentID]; sum > parent.Duration() {
			t.Errorf("children of %s sum to %v, exceeding the parent's %v", parent.Name, sum, parent.Duration())
		}
	}

	// The sweep/cell span carries the tentpole's attributes. Under 30%
	// faults the attempt count is whatever the seeded schedule produced
	// (>= 1), with exactly that many sweep/attempt children.
	var cell obs.SpanData
	for _, sd := range spans {
		if sd.Name == sweep.SpanCell {
			cell = sd
		}
	}
	attempts, ok := cell.Attr("attempts")
	if !ok {
		t.Fatal("sweep/cell span missing attempts attribute")
	}
	if _, ok := cell.Attr("cached"); !ok {
		t.Fatal("sweep/cell span missing cached attribute")
	}
	if _, ok := cell.Attr("queue_wait_s"); !ok {
		t.Fatal("sweep/cell span missing queue_wait_s attribute")
	}
	if got := int64(names[sweep.SpanAttempt]); got != attempts.(int64) {
		t.Fatalf("%d sweep/attempt spans for attempts=%v", got, attempts)
	}

	// GET /v1/trace/{id} returns the same spans; ?format=text renders
	// the tree.
	resp = get(t, ts.URL+"/v1/trace/"+traceID, nil)
	var tresp TraceResponse
	if err := json.Unmarshal(readAll(t, resp), &tresp); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || tresp.TraceID != traceID {
		t.Fatalf("trace fetch: %d %+v", resp.StatusCode, tresp.TraceID)
	}
	// The fetch itself appended a serve/request span for the GET; the
	// POST's spans are a prefix of what the ring now holds for traceID
	// only if the GET started a new trace — which it did (no traceparent
	// sent) — so counts must match exactly.
	if len(tresp.Spans) != len(spans) {
		t.Fatalf("trace endpoint returned %d spans, ring had %d", len(tresp.Spans), len(spans))
	}
	if !strings.Contains(tresp.Tree, SpanRequest) || !strings.Contains(tresp.Tree, "sim/layer") {
		t.Fatalf("rendered tree missing span names:\n%s", tresp.Tree)
	}
	resp = get(t, ts.URL+"/v1/trace/"+traceID+"?format=text", nil)
	if text := string(readAll(t, resp)); !strings.Contains(text, sweep.SpanCell) {
		t.Fatalf("text tree missing sweep/cell:\n%s", text)
	}

	// Unknown trace → 404 with a JSON error.
	resp = get(t, ts.URL+"/v1/trace/ffffffffffffffffffffffffffffffff", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: %d", resp.StatusCode)
	}
	readAll(t, resp)

	// Every ring span also reached the JSONL sink, one JSON object per
	// line, round-trippable.
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	var lines int
	sc := bufio.NewScanner(bytes.NewReader(jsonl.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var sd obs.SpanData
		if err := json.Unmarshal(sc.Bytes(), &sd); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		if sd.TraceID == traceID {
			lines++
		}
	}
	if lines != len(spans) {
		t.Fatalf("JSONL sink has %d spans of the trace, ring has %d", lines, len(spans))
	}
}

// TestTraceparentContinuation pins W3C propagation: a request carrying
// a valid traceparent joins that trace instead of starting a new one.
func TestTraceparentContinuation(t *testing.T) {
	tr := obs.NewTracer(obs.WithRing(256))
	_, ts := newTestServer(t, Options{Tracer: tr})

	const callerTrace = "11111111222222223333333344444444"
	const callerSpan = "aaaaaaaabbbbbbbb"
	h := http.Header{}
	h.Set(traceparentHeader, obs.FormatTraceparent(callerTrace, callerSpan))
	resp := get(t, ts.URL+"/v1/models", h)
	readAll(t, resp)
	if got := resp.Header.Get(traceIDHeader); got != callerTrace {
		t.Fatalf("X-Trace-Id = %q, want caller's trace %q", got, callerTrace)
	}
	spans := tr.Ring().Trace(callerTrace)
	if len(spans) == 0 {
		t.Fatal("no spans joined the caller's trace")
	}
	for _, sd := range spans {
		if sd.Name == SpanRequest && sd.ParentID != callerSpan {
			t.Fatalf("root span parent = %q, want caller span %q", sd.ParentID, callerSpan)
		}
	}

	// A malformed traceparent is ignored: the request gets a fresh trace.
	h.Set(traceparentHeader, "00-not-hex-at-all")
	resp = get(t, ts.URL+"/v1/models", h)
	readAll(t, resp)
	if got := resp.Header.Get(traceIDHeader); got == callerTrace || got == "" {
		t.Fatalf("malformed traceparent should start a fresh trace, got %q", got)
	}
}

// TestErrorBodyCarriesTraceID pins that failed requests quote their
// trace: the JSON error payload's trace_id matches the response header.
func TestErrorBodyCarriesTraceID(t *testing.T) {
	tr := obs.NewTracer(obs.WithRing(64))
	_, ts := newTestServer(t, Options{Tracer: tr})
	resp := post(t, ts.URL+"/v1/simulate", `{"arch":"nope","model":"LeNet5","phase":"inference"}`, nil)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad arch: %d", resp.StatusCode)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.TraceID == "" || eb.TraceID != resp.Header.Get(traceIDHeader) {
		t.Fatalf("error body trace_id = %q, header %q", eb.TraceID, resp.Header.Get(traceIDHeader))
	}
}

// TestUntracedServerOmitsTraceArtifacts pins the off path: no tracer
// means no trace headers, no trace_id in errors, and 404 from the trace
// endpoint.
func TestUntracedServerOmitsTraceArtifacts(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := post(t, ts.URL+"/v1/simulate", `{"arch":"nope","model":"LeNet5","phase":"inference"}`, nil)
	body := readAll(t, resp)
	if resp.Header.Get(traceIDHeader) != "" || resp.Header.Get(traceparentHeader) != "" {
		t.Fatal("untraced response carries trace headers")
	}
	if bytes.Contains(body, []byte("trace_id")) {
		t.Fatalf("untraced error body mentions trace_id: %s", body)
	}
	resp = get(t, ts.URL+"/v1/trace/deadbeef", nil)
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace endpoint without tracer: %d, want 404", resp.StatusCode)
	}
}

// TestPprofGating pins that /debug/pprof is absent by default and
// served when EnablePprof is set.
func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Options{})
	resp := get(t, off.URL+"/debug/pprof/", nil)
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Options{EnablePprof: true})
	resp = get(t, on.URL+"/debug/pprof/", nil)
	if body := string(readAll(t, resp)); resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof on: %d %q", resp.StatusCode, body)
	}
	resp = get(t, on.URL+"/debug/pprof/goroutine?debug=1", nil)
	if body := string(readAll(t, resp)); resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine profile") {
		t.Fatalf("goroutine profile: %d %q", resp.StatusCode, body)
	}
}

// TestMetricsPrometheusExposition pins the text format: negotiated by
// Accept or ?format=prometheus, histogram buckets cumulative, runtime
// and kernel gauges present.
func TestMetricsPrometheusExposition(t *testing.T) {
	hook := &tensor.KernelStats{}
	prev := tensor.SetStatsHook(hook)
	defer tensor.SetStatsHook(prev)

	tr := obs.NewTracer(obs.WithRing(64))
	_, ts := newTestServer(t, Options{Tracer: tr})
	// Generate one real exchange so counters are non-zero, and one kernel
	// invocation so the stats hook has something to report (the analytical
	// simulator itself does not run tensor kernels).
	readAll(t, post(t, ts.URL+"/v1/simulate", `{"arch":"inca","model":"LeNet5","phase":"inference"}`, nil))
	tensor.ParallelChunks(4, func(_, lo, hi int) {})

	resp := get(t, ts.URL+"/metrics?format=prometheus", nil)
	text := string(readAll(t, resp))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE inca_http_requests_total counter",
		"# TYPE inca_http_request_duration_seconds histogram",
		`inca_http_request_duration_seconds_bucket{le="+Inf"}`,
		"inca_runtime_goroutines",
		"inca_runtime_heap_alloc_bytes",
		"inca_runtime_gc_pause_seconds_total",
		"inca_kernel_invocations_total",
		"inca_trace_spans",
		`inca_http_responses_total{class="2xx"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
	// Buckets are cumulative: each le line's value must be >= the
	// previous one, ending at the series count.
	var prevCum int64 = -1
	var last int64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "inca_http_request_duration_seconds_bucket") {
			var v int64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			if v < prevCum {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			prevCum, last = v, v
		}
	}
	if !strings.Contains(text, fmt.Sprintf("inca_http_request_duration_seconds_count %d", last)) {
		t.Fatalf("+Inf bucket %d does not match series count", last)
	}

	// Accept negotiation reaches the same format; default stays JSON.
	resp = get(t, ts.URL+"/metrics", http.Header{"Accept": []string{"text/plain"}})
	if body := string(readAll(t, resp)); !strings.Contains(body, "inca_http_requests_total") {
		t.Fatal("Accept: text/plain did not negotiate prometheus output")
	}
	resp = get(t, ts.URL+"/metrics", nil)
	var snap Snapshot
	if err := json.Unmarshal(readAll(t, resp), &snap); err != nil {
		t.Fatalf("default /metrics is not JSON: %v", err)
	}
	if snap.Runtime.Goroutines <= 0 {
		t.Fatal("JSON snapshot missing runtime gauges")
	}
	if snap.Kernels.Invocations == 0 {
		t.Fatal("JSON snapshot missing kernel stats despite installed hook")
	}
	if snap.TraceSpansTotal == 0 {
		t.Fatal("JSON snapshot missing trace ring stats")
	}
}

// TestCustomLatencyBuckets pins the configurable histogram: the
// snapshot reports the configured bounds (sanitized ascending) and bins
// observations against them.
func TestCustomLatencyBuckets(t *testing.T) {
	s, ts := newTestServer(t, Options{LatencyBuckets: []float64{0.5, 0.1, 1, 1, 5}})
	// Out-of-order and duplicate entries are dropped: 0.5, 1, 5 remain.
	want := []float64{0.5, 1, 5}
	readAll(t, get(t, ts.URL+"/healthz", nil))
	snap := s.snapshot()
	if len(snap.Latency.BoundsS) != len(want) {
		t.Fatalf("bounds = %v, want %v", snap.Latency.BoundsS, want)
	}
	for i := range want {
		if snap.Latency.BoundsS[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", snap.Latency.BoundsS, want)
		}
	}
	if len(snap.Latency.Counts) != len(want)+1 {
		t.Fatalf("counts length %d, want %d (+Inf)", len(snap.Latency.Counts), len(want)+1)
	}
	var total int64
	for _, c := range snap.Latency.Counts {
		total += c
	}
	if total != snap.Latency.Count || total < 1 {
		t.Fatalf("bucket counts sum %d, series count %d", total, snap.Latency.Count)
	}

	// Direct observe: a 2s latency lands in the le=5 bucket (index 2).
	m := newMetrics([]float64{0.5, 1, 5})
	m.observe(200, 2*time.Second)
	if m.latencyBkts[2].Load() != 1 {
		t.Fatal("2s observation missed the le=5 bucket")
	}
	m.observe(200, 10*time.Second)
	if m.latencyBkts[3].Load() != 1 {
		t.Fatal("10s observation missed the +Inf bucket")
	}
}

// TestQueuedGaugeConsistency pins the satellite fix: a request is never
// counted in queued and inflight (or queued and rejected) at once, and
// all gauges return to zero after an abandoned acquire.
func TestQueuedGaugeConsistency(t *testing.T) {
	m := newMetrics(nil)
	a := newAdmission(1, 1)

	// Fill the only slot.
	if err := a.acquire(t.Context(), m); err != nil {
		t.Fatal(err)
	}
	if m.inflight.Load() != 1 || m.queued.Load() != 0 {
		t.Fatalf("after acquire: inflight=%d queued=%d", m.inflight.Load(), m.queued.Load())
	}

	// Second request queues, then is abandoned by its context: the
	// queued gauge must drop before rejected rises, and end at zero.
	ctx, cancel := context.WithCancel(t.Context())
	done := make(chan error, 1)
	go func() { done <- a.acquire(ctx, m) }()
	waitFor(t, func() bool { return m.queued.Load() == 1 })
	if m.inflight.Load() != 1 {
		t.Fatalf("queued request leaked into inflight: %d", m.inflight.Load())
	}
	cancel()
	if err := <-done; err != errAbandoned {
		t.Fatalf("abandoned acquire: %v", err)
	}
	if q, rej := m.queued.Load(), m.rejected.Load(); q != 0 || rej != 1 {
		t.Fatalf("after abandon: queued=%d rejected=%d", q, rej)
	}

	a.release(m)
	if m.inflight.Load() != 0 || m.queued.Load() != 0 {
		t.Fatalf("after release: inflight=%d queued=%d", m.inflight.Load(), m.queued.Load())
	}
}

// waitFor polls cond until it holds or the test deadline nears.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
