package serve

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/job"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/obs/cost"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/suite"
	"github.com/inca-arch/inca/internal/sweep"
	"github.com/inca-arch/inca/internal/tune"
)

// decodeBody parses a JSON request body strictly, bounded at the
// configured MaxBodyBytes.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// writeDecodeError maps a body-decoding failure onto its status: an
// oversized body is 413 (the MaxBytesReader tripped), anything else is a
// malformed request.
func (s *Server) writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
		return
	}
	s.writeError(w, http.StatusBadRequest, err)
}

// testHookAdmitted, when non-nil, runs inside the admitted section of
// every handler while it holds an execution slot; tests use it to pin a
// request in flight across a graceful shutdown.
var testHookAdmitted func()

// admitted wraps the execution section of a handler with bounded
// admission and the per-request deadline. It answers 503 + Retry-After
// itself when the server is saturated.
func (s *Server) admitted(w http.ResponseWriter, r *http.Request, run func(ctx context.Context)) {
	if err := s.admit.acquire(r.Context(), s.metrics); err != nil {
		s.writeUnavailable(w, err)
		return
	}
	defer s.admit.release(s.metrics)
	if testHookAdmitted != nil {
		testHookAdmitted()
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
	defer cancel()
	// Chaos hook: exec-site faults run while the request holds its
	// execution slot, so injected latency genuinely saturates admission.
	if err := s.opt.Inject.Hit(ctx, ChaosSiteExec); err != nil {
		s.writeError(w, statusForRunErr(err), err)
		return
	}
	run(ctx)
}

// statusForRunErr maps an execution error onto an HTTP status: deadline
// overruns are the gateway-timeout family, everything else is internal.
func statusForRunErr(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, context.Canceled) {
		// The client went away; the status is for the access log only.
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// handleSimulate evaluates one (config, network, phase) cell via the v2
// facade path (validated config → simulator → context-aware Simulate),
// memoized in the server's cache. The JSON response is the report's
// stable encoding; Accept: text/csv negotiates the per-layer CSV trace.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	net, err := nn.ByName(req.Model)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	phase, err := parsePhase(req.Phase)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ax, err := buildArch(req.Arch, req.Dataflow, req.Batch, req.Config)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.coalesced(w, r, req, func(w http.ResponseWriter, r *http.Request) {
		s.admitted(w, r, func(ctx context.Context) {
			plan := sweep.Plan{Archs: []sweep.Arch{ax}, Networks: []*nn.Network{net}, Phases: []sim.Phase{phase}}
			results, err := sweep.Run(ctx, plan, s.sweepOptions(1))
			tally := cost.FromContext(ctx)
			if err == nil {
				s.accountResults(tally, results)
			}
			if err == nil && results[0].Err != nil {
				err = results[0].Err
			}
			if err != nil {
				s.writeError(w, statusForRunErr(err), err)
				return
			}
			rep := results[0].Report
			if wantsCSV(r) {
				w.Header().Set("Content-Type", "text/csv")
				if err := rep.WriteCSV(w); err != nil {
					s.log.Error("writing csv", "err", err)
				}
				return
			}
			if wantsCost(r) {
				s.writeJSONCost(w, http.StatusOK, rep, tally.Snapshot())
				return
			}
			s.writeJSON(w, http.StatusOK, rep)
		})
	})
}

// handleSweep fans a declarative plan out on the engine. Per-cell
// failures are reported inline (the table stays rectangular); only an
// invalid plan or an exhausted deadline fails the whole request.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	var nets []*nn.Network
	for _, name := range req.Models {
		net, err := nn.ByName(name)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		nets = append(nets, net)
	}
	var phases []sim.Phase
	for _, name := range req.Phases {
		phase, err := parsePhase(name)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		phases = append(phases, phase)
	}
	if req.Tune != nil {
		s.handleTuneSweep(w, r, req, nets, phases)
		return
	}
	// newStyle marks requests that select backends through the dataflow
	// fields; only those responses carry per-cell dataflow IDs (legacy
	// bodies stay byte-identical).
	newStyle := len(req.Dataflows) > 0
	var archs []sweep.Arch
	for _, name := range req.Archs {
		ax, err := buildArch(name, "", req.Batch, nil)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		archs = append(archs, ax)
	}
	for _, id := range req.Dataflows {
		ax, err := buildDataflowArch(id, req.Batch, nil)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		archs = append(archs, ax)
	}
	var overrides []sweep.Override
	for _, spec := range req.Overrides {
		overrides = append(overrides, spec.override())
	}
	plan := sweep.Plan{Archs: archs, Networks: nets, Phases: phases, Overrides: overrides}
	if _, err := plan.Cells(); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.coalesced(w, r, req, func(w http.ResponseWriter, r *http.Request) {
		s.admitted(w, r, func(ctx context.Context) {
			var results []sweep.Result
			var shard *ShardSummary
			var err error
			if s.opt.Sharder != nil {
				// Cluster mode: scatter the expanded cells across peers and
				// gather their partials. The summary rows below are built
				// from the same full reports a local run produces, so the
				// response body's cells are byte-identical either way.
				cells, cellsErr := plan.Cells()
				if cellsErr != nil {
					s.writeError(w, http.StatusBadRequest, cellsErr)
					return
				}
				var summary ShardSummary
				results, summary, err = s.opt.Sharder.Sweep(ctx, cells)
				shard = &summary
			} else {
				results, err = sweep.Run(ctx, plan, s.sweepOptions(s.requestWorkers()))
			}
			if err != nil {
				s.writeError(w, statusForRunErr(err), err)
				return
			}
			// Attribute the materialized results — local or shard-
			// gathered — to this request's cost tally; the tally's cell
			// counts and energy sums match the response's cells exactly.
			tally := cost.FromContext(ctx)
			s.accountResults(tally, results)
			resp := s.sweepSummary(results, newStyle)
			resp.Shard = shard
			if wantsCSV(r) {
				s.writeSweepCSV(w, resp)
				return
			}
			if wantsCost(r) {
				s.writeJSONCost(w, http.StatusOK, resp, tally.Snapshot())
				return
			}
			s.writeJSON(w, http.StatusOK, resp)
		})
	})
}

// sweepSummary folds engine results into the /v1/sweep response body:
// one summary row per cell, in the order given. It is shared by the
// local and scatter/gather paths of handleSweep — both feed it full
// reports, which is the heart of the cluster's byte-identity guarantee.
func (s *Server) sweepSummary(results []sweep.Result, newStyle bool) SweepResponse {
	resp := SweepResponse{Cells: make([]CellResult, 0, len(results)), Cache: s.cache.Stats()}
	for _, res := range results {
		cell := CellResult{
			Arch:     res.Cell.Arch.Name,
			Override: res.Cell.Override,
			Network:  res.Cell.Network.Name,
			Phase:    res.Cell.Phase.String(),
			Cached:   res.Cached,
		}
		if newStyle {
			cell.Dataflow = res.Cell.Dataflow()
		}
		if res.Cached {
			resp.Cached++
		}
		if res.Err != nil {
			cell.Error = res.Err.Error()
			resp.Failed++
		} else {
			rep := res.Report
			cell.EnergyJ = rep.Total.Energy.Total()
			cell.LatencyS = rep.Total.Latency
			if perImage, err := rep.EnergyPerImage(); err == nil {
				cell.EnergyPerImageJ = perImage
			}
			cell.ThroughputIPS = rep.Throughput()
			cell.Utilization = rep.Utilization()
		}
		resp.Cells = append(resp.Cells, cell)
	}
	return resp
}

// handleTuneSweep runs the mapping auto-tuner for a /v1/sweep request
// carrying a TuneSpec: one Pareto frontier per model × phase, evaluated
// on the same engine, cache, and retry policy as a plain sweep.
func (s *Server) handleTuneSweep(w http.ResponseWriter, r *http.Request, req SweepRequest, nets []*nn.Network, phases []sim.Phase) {
	if len(nets) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("tune request needs at least one model"))
		return
	}
	dataflows := req.Tune.Dataflows
	if len(dataflows) == 0 {
		dataflows = req.Dataflows
	}
	for _, id := range dataflows {
		if _, err := dataflow.Get(id); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	opt := tune.Options{
		Dataflows:      dataflows,
		Phases:         phases,
		MaxPerDataflow: req.Tune.MaxPerDataflow,
		Workers:        s.requestWorkers(),
		Cache:          s.cache,
		Retry:          s.opt.SweepRetry,
	}
	s.admitted(w, r, func(ctx context.Context) {
		resp := SweepResponse{Cells: make([]CellResult, 0)}
		for _, net := range nets {
			fronts, err := tune.Search(ctx, net, opt)
			if err != nil {
				s.writeError(w, statusForRunErr(err), err)
				return
			}
			for _, f := range fronts {
				resp.Failed += f.Failed
			}
			resp.Frontiers = append(resp.Frontiers, fronts...)
		}
		resp.Cache = s.cache.Stats()
		s.writeJSON(w, http.StatusOK, resp)
	})
}

// writeSweepCSV renders the sweep summary as CSV, one row per cell.
func (s *Server) writeSweepCSV(w http.ResponseWriter, resp SweepResponse) {
	w.Header().Set("Content-Type", "text/csv")
	cw := csv.NewWriter(w)
	_ = cw.Write([]string{"arch", "override", "network", "phase", "cached", "error",
		"energy_j", "latency_s", "energy_per_image_j", "throughput_ips", "utilization"})
	for _, c := range resp.Cells {
		_ = cw.Write([]string{
			c.Arch, c.Override, c.Network, c.Phase,
			fmt.Sprint(c.Cached), c.Error,
			fmt.Sprintf("%.6e", c.EnergyJ),
			fmt.Sprintf("%.6e", c.LatencyS),
			fmt.Sprintf("%.6e", c.EnergyPerImageJ),
			fmt.Sprintf("%.6e", c.ThroughputIPS),
			fmt.Sprintf("%.4f", c.Utilization),
		})
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		s.log.Error("writing sweep csv", "err", err)
	}
}

// handleModels lists the zoo with shape-level statistics and the
// registered dataflow backends able to simulate each model.
func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	all := append(nn.PaperModels(), nn.VGG16CIFAR(), nn.ResNet18CIFAR(), nn.LeNet5(), nn.AlexNet())
	ids := dataflow.IDs()
	infos := make([]ModelInfo, 0, len(all))
	for _, net := range all {
		infos = append(infos, ModelInfo{
			Name:        net.Name,
			Layers:      len(net.Layers),
			Weights:     net.TotalWeights(),
			Activations: net.TotalActivations(),
			MACs:        net.TotalMACs(),
			LightModel:  net.IsLightModel(),
			Dataflows:   ids,
		})
	}
	s.writeJSON(w, http.StatusOK, infos)
}

// experimentInfo is one /v1/experiments index entry.
type experimentInfo struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	Heavy bool   `json:"heavy"`
}

// handleExperimentIndex lists the runnable suite experiments.
func (s *Server) handleExperimentIndex(w http.ResponseWriter, _ *http.Request) {
	var infos []experimentInfo
	for _, e := range suite.All() {
		infos = append(infos, experimentInfo{ID: e.ID, Name: e.Name, Heavy: e.Heavy})
	}
	s.writeJSON(w, http.StatusOK, infos)
}

// experimentResponse is the /v1/experiments/{id} payload: the rendered
// paper table or figure, identical to cmd/inca-experiments' output for
// the same id.
type experimentResponse struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Heavy  bool   `json:"heavy"`
	Output string `json:"output"`
}

// handleExperiment renders one suite experiment. Accept: text/plain
// negotiates the raw table text.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	exp, err := suite.ByID(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	s.admitted(w, r, func(ctx context.Context) {
		out, err := exp.Run(ctx)
		if err != nil {
			s.writeError(w, statusForRunErr(err), err)
			return
		}
		if r.URL.Query().Get("format") == "text" ||
			(r.Header.Get("Accept") != "" && r.Header.Get("Accept") == "text/plain") {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, out)
			return
		}
		s.writeJSON(w, http.StatusOK, experimentResponse{ID: exp.ID, Name: exp.Name, Heavy: exp.Heavy, Output: out})
	})
}

// livenessResponse is the JSON form of the liveness probe, served only
// on request (?format=json or Accept: application/json) — the default
// plain-text "ok" body is a contract probes and smoke tests compare
// byte for byte.
type livenessResponse struct {
	Status string    `json:"status"`
	Build  BuildInfo `json:"build"`
}

// handleLiveness is the liveness probe (/healthz and /healthz/live):
// the process is up and routing. It stays 200 through a graceful drain —
// a draining server is shutting down cleanly, not dead, and must not be
// restarted by its supervisor mid-drain. The build version always rides
// the X-Inca-Version header; the full build-info block is negotiated
// via ?format=json or Accept: application/json.
func (s *Server) handleLiveness(w http.ResponseWriter, r *http.Request) {
	build := buildInfo()
	w.Header().Set("X-Inca-Version", build.Version)
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		s.writeJSON(w, http.StatusOK, livenessResponse{Status: "ok", Build: build})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// readinessResponse is the /healthz/ready body in shard mode or on a
// server with the job API enabled: overall status, every peer's probe
// outcome (shard mode always probes at least one peer, so the field's
// presence is unchanged there), and the job subsystem's queue gauges.
// A plain server with neither keeps its plain-text "ok" contract.
type readinessResponse struct {
	Status  string       `json:"status"`
	ShardID string       `json:"shard_id,omitempty"`
	Peers   []PeerHealth `json:"peers,omitempty"`
	Jobs    *job.Stats   `json:"jobs,omitempty"`
	// SLO carries the burn-rate tracker's verdict when objectives are
	// configured; a fast burn degrades Status without turning traffic
	// away (degraded is still 200 — the signal fires before failure).
	SLO *SLOStats `json:"slo,omitempty"`
}

// handleReadiness is the readiness probe (/healthz/ready): 200 while the
// server accepts traffic, 503 + Retry-After once a graceful drain has
// begun, so load balancers stop routing before connections are refused.
// A coordinator (Options.Sharder set) reports per-peer health instead:
// it stays ready — "degraded" — while a minority of peers is down,
// because the ring rehashes lost cells onto survivors, and turns 503
// only when a majority is lost and a sweep could overwhelm the rest.
func (s *Server) handleReadiness(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.writeUnavailable(w, errors.New("draining: server is shutting down"))
		return
	}
	sh := s.opt.Sharder
	if sh == nil && s.opt.Jobs == nil && s.slo == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
		return
	}
	resp := readinessResponse{Status: "ready", ShardID: s.opt.ShardID}
	if jm := s.opt.Jobs; jm != nil {
		stats := jm.Stats()
		resp.Jobs = &stats
	}
	if s.slo != nil {
		stats := s.slo.stats()
		resp.SLO = &stats
		if stats.Status == "degraded" {
			// Burning the budget fast: still serving (200), but the
			// status tells balancers and operators before hard failure.
			resp.Status = "degraded"
		}
	}
	if sh == nil {
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	peers := sh.Health(r.Context())
	down := 0
	for _, p := range peers {
		if !p.Up {
			down++
		}
	}
	resp.Peers = peers
	switch {
	case down == 0:
	case down*2 < len(peers):
		resp.Status = "degraded"
	default:
		resp.Status = "unavailable"
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		s.writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleMetrics exports the counter snapshot: JSON by default, the
// Prometheus text exposition format when negotiated via Accept:
// text/plain or ?format=prometheus.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	if r.URL.Query().Get("format") == "prometheus" ||
		strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := writePrometheus(w, snap); err != nil {
			s.log.Error("writing prometheus metrics", "err", err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

// TraceResponse is the /v1/trace/{id} payload: every known span of one
// trace plus a rendered tree for human eyes. On a coordinator the span
// set is federated — the local ring merged with every peer's
// /v1/shard/trace answer — so a sharded sweep or a resumed job reads
// as a single cross-node trace.
type TraceResponse struct {
	TraceID string         `json:"trace_id"`
	Spans   []obs.SpanData `json:"spans"`
	Tree    string         `json:"tree"`
}

// SpanFetcher is the optional capability a Sharder grows to join the
// federated trace plane: given a trace ID, return every span the
// cluster's peers retain for it. The internal/cluster coordinator
// implements it by fanning GET /v1/shard/trace/{id} out through its
// breaker-gated dispatch clients; the serve layer discovers it by type
// assertion so the Sharder seam itself stays minimal.
type SpanFetcher interface {
	FetchSpans(ctx context.Context, traceID string) []obs.SpanData
}

// handleTrace serves one trace: the local ring's spans, merged — on a
// coordinator whose Sharder can fetch peer spans — with every shard's
// view of the same trace ID, deduplicated by span ID. The span list is
// JSON; ?format=text renders the assembled tree. 404 covers a trace
// unknown everywhere and a server running with tracing disabled.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t := s.opt.Tracer
	if t == nil || t.Ring() == nil {
		s.writeError(w, http.StatusNotFound, errors.New("tracing is not enabled on this server"))
		return
	}
	id := r.PathValue("id")
	spans := t.Ring().Trace(id)
	if f, ok := s.opt.Sharder.(SpanFetcher); ok {
		spans = obs.MergeSpans(spans, f.FetchSpans(r.Context(), id))
	}
	if len(spans) == 0 {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("trace %q not found (unknown ID or evicted from the ring)", id))
		return
	}
	tree := obs.DumpSpans(spans, id)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, tree)
		return
	}
	s.writeJSON(w, http.StatusOK, TraceResponse{TraceID: id, Spans: spans, Tree: tree})
}

// ShardTraceResponse is the /v1/shard/trace/{id} payload: one node's
// retained spans for a trace, raw — the federation protocol's unit of
// exchange. An empty span list is a 200, not a 404: "this node knows
// nothing" is a normal answer during assembly.
type ShardTraceResponse struct {
	ShardID string         `json:"shard_id,omitempty"`
	Spans   []obs.SpanData `json:"spans"`
}

// handleShardTrace serves this node's local-ring spans for one trace to
// a federating coordinator. Unlike /v1/trace/{id} it never federates
// itself (no fan-out loops) and answers 200 with an empty list for an
// unknown trace; 404 only means tracing is disabled here.
func (s *Server) handleShardTrace(w http.ResponseWriter, r *http.Request) {
	t := s.opt.Tracer
	if t == nil || t.Ring() == nil {
		s.writeError(w, http.StatusNotFound, errors.New("tracing is not enabled on this server"))
		return
	}
	id := r.PathValue("id")
	spans := t.Ring().Trace(id)
	if spans == nil {
		spans = []obs.SpanData{}
	}
	s.writeJSON(w, http.StatusOK, ShardTraceResponse{ShardID: s.opt.ShardID, Spans: spans})
}

// TraceInfo is one GET /v1/trace index entry, summarizing a trace the
// ring currently retains.
type TraceInfo struct {
	TraceID string `json:"trace_id"`
	// Root is the name of the trace's root span — or, when the true
	// root was evicted or lives on another node, the earliest retained
	// orphan.
	Root string `json:"root"`
	// Status is "error" when any retained span of the trace carries an
	// error or panic attribute, else "ok".
	Status string `json:"status"`
	Spans  int    `json:"spans"`
	// DurationS spans the earliest retained start to the latest end.
	DurationS float64 `json:"duration_s"`
}

// TraceIndexResponse is the GET /v1/trace payload.
type TraceIndexResponse struct {
	Traces []TraceInfo `json:"traces"`
	// Retained/Evicted expose the ring's bounded-retention state: a
	// nonzero Evicted means older traces have been partially or fully
	// dropped.
	Retained int   `json:"retained"`
	Evicted  int64 `json:"evicted"`
}

// handleTraceIndex lists recent traces from the local ring, newest
// first, capped by ?limit= (default 50). Local-only by design: the
// index is a discovery surface; federation happens per trace ID.
func (s *Server) handleTraceIndex(w http.ResponseWriter, r *http.Request) {
	t := s.opt.Tracer
	if t == nil || t.Ring() == nil {
		s.writeError(w, http.StatusNotFound, errors.New("tracing is not enabled on this server"))
		return
	}
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid limit %q", v))
			return
		}
		limit = n
	}
	ring := t.Ring()
	spans := ring.Spans() // oldest first
	byTrace := make(map[string][]obs.SpanData, len(spans))
	order := make([]string, 0, len(spans)) // traces by last-seen span, oldest first
	for _, sd := range spans {
		if _, seen := byTrace[sd.TraceID]; seen {
			// Move to the back: the index sorts by most recent activity.
			for i, id := range order {
				if id == sd.TraceID {
					order = append(append(order[:i:i], order[i+1:]...), id)
					break
				}
			}
		} else {
			order = append(order, sd.TraceID)
		}
		byTrace[sd.TraceID] = append(byTrace[sd.TraceID], sd)
	}
	resp := TraceIndexResponse{Traces: []TraceInfo{}, Retained: ring.Len(), Evicted: ring.Evicted()}
	for i := len(order) - 1; i >= 0 && len(resp.Traces) < limit; i-- {
		resp.Traces = append(resp.Traces, summarizeTrace(order[i], byTrace[order[i]]))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// summarizeTrace folds one trace's retained spans into its index row.
func summarizeTrace(id string, spans []obs.SpanData) TraceInfo {
	info := TraceInfo{TraceID: id, Status: "ok", Spans: len(spans)}
	known := make(map[string]bool, len(spans))
	for _, sd := range spans {
		known[sd.SpanID] = true
	}
	var rootAt, minStart, maxEnd int64
	for _, sd := range spans {
		if _, ok := sd.Attr("error"); ok {
			info.Status = "error"
		} else if _, ok := sd.Attr("panic"); ok {
			info.Status = "error"
		}
		start, end := sd.Start.UnixNano(), sd.End.UnixNano()
		if minStart == 0 || start < minStart {
			minStart = start
		}
		if end > maxEnd {
			maxEnd = end
		}
		// Root: the earliest-started span without a retained parent.
		if sd.ParentID == "" || !known[sd.ParentID] {
			if info.Root == "" || start < rootAt {
				info.Root, rootAt = sd.Name, start
			}
		}
	}
	if maxEnd > minStart {
		info.DurationS = float64(maxEnd-minStart) / 1e9
	}
	return info
}

// handleUsage serves the server-lifetime cost ledger: the sum of every
// finalized per-request/per-job cost summary plus the per
// model×dataflow cell-attribution rows.
func (s *Server) handleUsage(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.usage.snapshot())
}
