package serve

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/job"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/suite"
	"github.com/inca-arch/inca/internal/sweep"
	"github.com/inca-arch/inca/internal/tune"
)

// decodeBody parses a JSON request body strictly, bounded at the
// configured MaxBodyBytes.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// writeDecodeError maps a body-decoding failure onto its status: an
// oversized body is 413 (the MaxBytesReader tripped), anything else is a
// malformed request.
func (s *Server) writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
		return
	}
	s.writeError(w, http.StatusBadRequest, err)
}

// testHookAdmitted, when non-nil, runs inside the admitted section of
// every handler while it holds an execution slot; tests use it to pin a
// request in flight across a graceful shutdown.
var testHookAdmitted func()

// admitted wraps the execution section of a handler with bounded
// admission and the per-request deadline. It answers 503 + Retry-After
// itself when the server is saturated.
func (s *Server) admitted(w http.ResponseWriter, r *http.Request, run func(ctx context.Context)) {
	if err := s.admit.acquire(r.Context(), s.metrics); err != nil {
		s.writeUnavailable(w, err)
		return
	}
	defer s.admit.release(s.metrics)
	if testHookAdmitted != nil {
		testHookAdmitted()
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
	defer cancel()
	// Chaos hook: exec-site faults run while the request holds its
	// execution slot, so injected latency genuinely saturates admission.
	if err := s.opt.Inject.Hit(ctx, ChaosSiteExec); err != nil {
		s.writeError(w, statusForRunErr(err), err)
		return
	}
	run(ctx)
}

// statusForRunErr maps an execution error onto an HTTP status: deadline
// overruns are the gateway-timeout family, everything else is internal.
func statusForRunErr(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, context.Canceled) {
		// The client went away; the status is for the access log only.
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// handleSimulate evaluates one (config, network, phase) cell via the v2
// facade path (validated config → simulator → context-aware Simulate),
// memoized in the server's cache. The JSON response is the report's
// stable encoding; Accept: text/csv negotiates the per-layer CSV trace.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	net, err := nn.ByName(req.Model)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	phase, err := parsePhase(req.Phase)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ax, err := buildArch(req.Arch, req.Dataflow, req.Batch, req.Config)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.coalesced(w, r, req, func(w http.ResponseWriter, r *http.Request) {
		s.admitted(w, r, func(ctx context.Context) {
			plan := sweep.Plan{Archs: []sweep.Arch{ax}, Networks: []*nn.Network{net}, Phases: []sim.Phase{phase}}
			results, err := sweep.Run(ctx, plan, s.sweepOptions(1))
			if err == nil && results[0].Err != nil {
				err = results[0].Err
			}
			if err != nil {
				s.writeError(w, statusForRunErr(err), err)
				return
			}
			rep := results[0].Report
			if wantsCSV(r) {
				w.Header().Set("Content-Type", "text/csv")
				if err := rep.WriteCSV(w); err != nil {
					s.log.Error("writing csv", "err", err)
				}
				return
			}
			s.writeJSON(w, http.StatusOK, rep)
		})
	})
}

// handleSweep fans a declarative plan out on the engine. Per-cell
// failures are reported inline (the table stays rectangular); only an
// invalid plan or an exhausted deadline fails the whole request.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	var nets []*nn.Network
	for _, name := range req.Models {
		net, err := nn.ByName(name)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		nets = append(nets, net)
	}
	var phases []sim.Phase
	for _, name := range req.Phases {
		phase, err := parsePhase(name)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		phases = append(phases, phase)
	}
	if req.Tune != nil {
		s.handleTuneSweep(w, r, req, nets, phases)
		return
	}
	// newStyle marks requests that select backends through the dataflow
	// fields; only those responses carry per-cell dataflow IDs (legacy
	// bodies stay byte-identical).
	newStyle := len(req.Dataflows) > 0
	var archs []sweep.Arch
	for _, name := range req.Archs {
		ax, err := buildArch(name, "", req.Batch, nil)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		archs = append(archs, ax)
	}
	for _, id := range req.Dataflows {
		ax, err := buildDataflowArch(id, req.Batch, nil)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		archs = append(archs, ax)
	}
	var overrides []sweep.Override
	for _, spec := range req.Overrides {
		overrides = append(overrides, spec.override())
	}
	plan := sweep.Plan{Archs: archs, Networks: nets, Phases: phases, Overrides: overrides}
	if _, err := plan.Cells(); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.coalesced(w, r, req, func(w http.ResponseWriter, r *http.Request) {
		s.admitted(w, r, func(ctx context.Context) {
			var results []sweep.Result
			var shard *ShardSummary
			var err error
			if s.opt.Sharder != nil {
				// Cluster mode: scatter the expanded cells across peers and
				// gather their partials. The summary rows below are built
				// from the same full reports a local run produces, so the
				// response body's cells are byte-identical either way.
				cells, cellsErr := plan.Cells()
				if cellsErr != nil {
					s.writeError(w, http.StatusBadRequest, cellsErr)
					return
				}
				var summary ShardSummary
				results, summary, err = s.opt.Sharder.Sweep(ctx, cells)
				shard = &summary
			} else {
				results, err = sweep.Run(ctx, plan, s.sweepOptions(s.requestWorkers()))
			}
			if err != nil {
				s.writeError(w, statusForRunErr(err), err)
				return
			}
			resp := s.sweepSummary(results, newStyle)
			resp.Shard = shard
			if wantsCSV(r) {
				s.writeSweepCSV(w, resp)
				return
			}
			s.writeJSON(w, http.StatusOK, resp)
		})
	})
}

// sweepSummary folds engine results into the /v1/sweep response body:
// one summary row per cell, in the order given. It is shared by the
// local and scatter/gather paths of handleSweep — both feed it full
// reports, which is the heart of the cluster's byte-identity guarantee.
func (s *Server) sweepSummary(results []sweep.Result, newStyle bool) SweepResponse {
	resp := SweepResponse{Cells: make([]CellResult, 0, len(results)), Cache: s.cache.Stats()}
	for _, res := range results {
		cell := CellResult{
			Arch:     res.Cell.Arch.Name,
			Override: res.Cell.Override,
			Network:  res.Cell.Network.Name,
			Phase:    res.Cell.Phase.String(),
			Cached:   res.Cached,
		}
		if newStyle {
			cell.Dataflow = res.Cell.Dataflow()
		}
		if res.Cached {
			resp.Cached++
		}
		if res.Err != nil {
			cell.Error = res.Err.Error()
			resp.Failed++
		} else {
			rep := res.Report
			cell.EnergyJ = rep.Total.Energy.Total()
			cell.LatencyS = rep.Total.Latency
			if perImage, err := rep.EnergyPerImage(); err == nil {
				cell.EnergyPerImageJ = perImage
			}
			cell.ThroughputIPS = rep.Throughput()
			cell.Utilization = rep.Utilization()
		}
		resp.Cells = append(resp.Cells, cell)
	}
	return resp
}

// handleTuneSweep runs the mapping auto-tuner for a /v1/sweep request
// carrying a TuneSpec: one Pareto frontier per model × phase, evaluated
// on the same engine, cache, and retry policy as a plain sweep.
func (s *Server) handleTuneSweep(w http.ResponseWriter, r *http.Request, req SweepRequest, nets []*nn.Network, phases []sim.Phase) {
	if len(nets) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("tune request needs at least one model"))
		return
	}
	dataflows := req.Tune.Dataflows
	if len(dataflows) == 0 {
		dataflows = req.Dataflows
	}
	for _, id := range dataflows {
		if _, err := dataflow.Get(id); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	opt := tune.Options{
		Dataflows:      dataflows,
		Phases:         phases,
		MaxPerDataflow: req.Tune.MaxPerDataflow,
		Workers:        s.requestWorkers(),
		Cache:          s.cache,
		Retry:          s.opt.SweepRetry,
	}
	s.admitted(w, r, func(ctx context.Context) {
		resp := SweepResponse{Cells: make([]CellResult, 0)}
		for _, net := range nets {
			fronts, err := tune.Search(ctx, net, opt)
			if err != nil {
				s.writeError(w, statusForRunErr(err), err)
				return
			}
			for _, f := range fronts {
				resp.Failed += f.Failed
			}
			resp.Frontiers = append(resp.Frontiers, fronts...)
		}
		resp.Cache = s.cache.Stats()
		s.writeJSON(w, http.StatusOK, resp)
	})
}

// writeSweepCSV renders the sweep summary as CSV, one row per cell.
func (s *Server) writeSweepCSV(w http.ResponseWriter, resp SweepResponse) {
	w.Header().Set("Content-Type", "text/csv")
	cw := csv.NewWriter(w)
	_ = cw.Write([]string{"arch", "override", "network", "phase", "cached", "error",
		"energy_j", "latency_s", "energy_per_image_j", "throughput_ips", "utilization"})
	for _, c := range resp.Cells {
		_ = cw.Write([]string{
			c.Arch, c.Override, c.Network, c.Phase,
			fmt.Sprint(c.Cached), c.Error,
			fmt.Sprintf("%.6e", c.EnergyJ),
			fmt.Sprintf("%.6e", c.LatencyS),
			fmt.Sprintf("%.6e", c.EnergyPerImageJ),
			fmt.Sprintf("%.6e", c.ThroughputIPS),
			fmt.Sprintf("%.4f", c.Utilization),
		})
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		s.log.Error("writing sweep csv", "err", err)
	}
}

// handleModels lists the zoo with shape-level statistics and the
// registered dataflow backends able to simulate each model.
func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	all := append(nn.PaperModels(), nn.VGG16CIFAR(), nn.ResNet18CIFAR(), nn.LeNet5(), nn.AlexNet())
	ids := dataflow.IDs()
	infos := make([]ModelInfo, 0, len(all))
	for _, net := range all {
		infos = append(infos, ModelInfo{
			Name:        net.Name,
			Layers:      len(net.Layers),
			Weights:     net.TotalWeights(),
			Activations: net.TotalActivations(),
			MACs:        net.TotalMACs(),
			LightModel:  net.IsLightModel(),
			Dataflows:   ids,
		})
	}
	s.writeJSON(w, http.StatusOK, infos)
}

// experimentInfo is one /v1/experiments index entry.
type experimentInfo struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	Heavy bool   `json:"heavy"`
}

// handleExperimentIndex lists the runnable suite experiments.
func (s *Server) handleExperimentIndex(w http.ResponseWriter, _ *http.Request) {
	var infos []experimentInfo
	for _, e := range suite.All() {
		infos = append(infos, experimentInfo{ID: e.ID, Name: e.Name, Heavy: e.Heavy})
	}
	s.writeJSON(w, http.StatusOK, infos)
}

// experimentResponse is the /v1/experiments/{id} payload: the rendered
// paper table or figure, identical to cmd/inca-experiments' output for
// the same id.
type experimentResponse struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Heavy  bool   `json:"heavy"`
	Output string `json:"output"`
}

// handleExperiment renders one suite experiment. Accept: text/plain
// negotiates the raw table text.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	exp, err := suite.ByID(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	s.admitted(w, r, func(ctx context.Context) {
		out, err := exp.Run(ctx)
		if err != nil {
			s.writeError(w, statusForRunErr(err), err)
			return
		}
		if r.URL.Query().Get("format") == "text" ||
			(r.Header.Get("Accept") != "" && r.Header.Get("Accept") == "text/plain") {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, out)
			return
		}
		s.writeJSON(w, http.StatusOK, experimentResponse{ID: exp.ID, Name: exp.Name, Heavy: exp.Heavy, Output: out})
	})
}

// handleLiveness is the liveness probe (/healthz and /healthz/live):
// the process is up and routing. It stays 200 through a graceful drain —
// a draining server is shutting down cleanly, not dead, and must not be
// restarted by its supervisor mid-drain.
func (s *Server) handleLiveness(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// readinessResponse is the /healthz/ready body in shard mode or on a
// server with the job API enabled: overall status, every peer's probe
// outcome (shard mode always probes at least one peer, so the field's
// presence is unchanged there), and the job subsystem's queue gauges.
// A plain server with neither keeps its plain-text "ok" contract.
type readinessResponse struct {
	Status  string       `json:"status"`
	ShardID string       `json:"shard_id,omitempty"`
	Peers   []PeerHealth `json:"peers,omitempty"`
	Jobs    *job.Stats   `json:"jobs,omitempty"`
}

// handleReadiness is the readiness probe (/healthz/ready): 200 while the
// server accepts traffic, 503 + Retry-After once a graceful drain has
// begun, so load balancers stop routing before connections are refused.
// A coordinator (Options.Sharder set) reports per-peer health instead:
// it stays ready — "degraded" — while a minority of peers is down,
// because the ring rehashes lost cells onto survivors, and turns 503
// only when a majority is lost and a sweep could overwhelm the rest.
func (s *Server) handleReadiness(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.writeUnavailable(w, errors.New("draining: server is shutting down"))
		return
	}
	sh := s.opt.Sharder
	if sh == nil && s.opt.Jobs == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
		return
	}
	resp := readinessResponse{Status: "ready", ShardID: s.opt.ShardID}
	if jm := s.opt.Jobs; jm != nil {
		stats := jm.Stats()
		resp.Jobs = &stats
	}
	if sh == nil {
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	peers := sh.Health(r.Context())
	down := 0
	for _, p := range peers {
		if !p.Up {
			down++
		}
	}
	resp.Peers = peers
	switch {
	case down == 0:
	case down*2 < len(peers):
		resp.Status = "degraded"
	default:
		resp.Status = "unavailable"
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		s.writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleMetrics exports the counter snapshot: JSON by default, the
// Prometheus text exposition format when negotiated via Accept:
// text/plain or ?format=prometheus.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	if r.URL.Query().Get("format") == "prometheus" ||
		strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := writePrometheus(w, snap); err != nil {
			s.log.Error("writing prometheus metrics", "err", err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

// traceResponse is the /v1/trace/{id} payload: every retained span of
// one trace (oldest-first) plus a rendered tree for human eyes.
type traceResponse struct {
	TraceID string         `json:"trace_id"`
	Spans   []obs.SpanData `json:"spans"`
	Tree    string         `json:"tree"`
}

// handleTrace serves one trace from the tracer's in-memory ring: the
// span list as JSON, or the rendered tree as text with ?format=text.
// 404 covers both an unknown (or already-evicted) trace ID and a server
// running with tracing disabled.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t := s.opt.Tracer
	if t == nil || t.Ring() == nil {
		s.writeError(w, http.StatusNotFound, errors.New("tracing is not enabled on this server"))
		return
	}
	id := r.PathValue("id")
	spans := t.Ring().Trace(id)
	if len(spans) == 0 {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("trace %q not found (unknown ID or evicted from the ring)", id))
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, obs.Dump(t.Ring(), id))
		return
	}
	s.writeJSON(w, http.StatusOK, traceResponse{TraceID: id, Spans: spans, Tree: obs.Dump(t.Ring(), id)})
}
