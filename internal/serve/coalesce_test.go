package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCoalesceLoadUnderRace is the acceptance load test: 32 concurrent
// identical sweep requests against a coalescing server produce exactly
// one engine execution (one cache miss) and at least 31 coalesced hits,
// visible in /metrics. Every caller still receives a complete,
// decodable response.
func TestCoalesceLoadUnderRace(t *testing.T) {
	s, ts := newTestServer(t, Options{
		MaxInflight: 4,
		// A wide window: the whole herd must land inside one flight no
		// matter how the scheduler staggers it.
		Coalesce: CoalesceOptions{Enabled: true, MaxWait: 30 * time.Second},
	})

	const n = 32
	body := `{"archs":["inca","baseline"],"models":["LeNet5"],"phases":["inference","training"]}`
	var wg sync.WaitGroup
	bodies := make(chan []byte, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			raw := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				errs <- &APIErrorLike{Status: resp.StatusCode, Body: string(raw)}
				return
			}
			bodies <- raw
		}()
	}
	wg.Wait()
	close(errs)
	close(bodies)
	for err := range errs {
		t.Fatal(err)
	}

	var first []byte
	count := 0
	for b := range bodies {
		count++
		var resp SweepResponse
		if err := json.Unmarshal(b, &resp); err != nil {
			t.Fatalf("undecodable response: %v", err)
		}
		if len(resp.Cells) != 4 {
			t.Fatalf("response has %d cells, want 4", len(resp.Cells))
		}
		if first == nil {
			first = b
		} else if string(first) != string(b) {
			t.Fatalf("coalesced responses differ:\n%s\nvs\n%s", first, b)
		}
	}
	if count != n {
		t.Fatalf("collected %d responses, want %d", count, n)
	}

	// Exactly one engine execution: the leader's run took the only cache
	// misses; the herd was answered before admission.
	stats := s.Cache().Stats()
	if stats.Misses != 4 {
		t.Fatalf("cache misses = %d, want 4 (one engine execution of a 4-cell plan)", stats.Misses)
	}
	if stats.Hits != 0 {
		t.Fatalf("cache hits = %d, want 0 (joiners must not reach the cache)", stats.Hits)
	}
	if stats.CoalescedHits < n-1 {
		t.Fatalf("coalesced hits = %d, want >= %d", stats.CoalescedHits, n-1)
	}

	// The counters surface on /metrics, both JSON and Prometheus.
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	prom := string(readAll(t, resp))
	if !strings.Contains(prom, "inca_serve_coalesced_total 31") {
		t.Fatalf("prometheus metrics lack inca_serve_coalesced_total 31:\n%s", grepLines(prom, "coalesced"))
	}
	if !strings.Contains(prom, "inca_cache_coalesced_hits_total 31") {
		t.Fatalf("prometheus metrics lack inca_cache_coalesced_hits_total 31:\n%s", grepLines(prom, "coalesced"))
	}
}

// APIErrorLike carries a non-2xx load-test response into the main
// goroutine with its body attached.
type APIErrorLike struct {
	Status int
	Body   string
}

func (e *APIErrorLike) Error() string { return e.Body }

// grepLines filters output to lines containing needle, for terse test
// failures.
func grepLines(s, needle string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestCoalesceKeysDistinguishRequests pins the key derivation: a
// different body, a different route, or a different negotiated format
// must never replay another request's response.
func TestCoalesceKeysDistinguishRequests(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Coalesce: CoalesceOptions{Enabled: true, MaxWait: 30 * time.Second},
	})

	jsonResp := post(t, ts.URL+"/v1/simulate", `{"arch":"inca","model":"LeNet5","phase":"inference"}`, nil)
	jsonBody := readAll(t, jsonResp)
	if jsonResp.StatusCode != http.StatusOK {
		t.Fatalf("json request failed: %s", jsonBody)
	}

	// Same cell, CSV negotiation: must execute separately and answer CSV.
	csvResp := post(t, ts.URL+"/v1/simulate?format=csv", `{"arch":"inca","model":"LeNet5","phase":"inference"}`, nil)
	csvBody := readAll(t, csvResp)
	if csvResp.StatusCode != http.StatusOK {
		t.Fatalf("csv request failed: %s", csvBody)
	}
	if ct := csvResp.Header.Get("Content-Type"); !strings.Contains(ct, "text/csv") {
		t.Fatalf("csv request answered Content-Type %q (replayed the JSON flight?)", ct)
	}

	// A different cell: fresh execution, different report.
	otherResp := post(t, ts.URL+"/v1/simulate", `{"arch":"baseline","model":"LeNet5","phase":"inference"}`, nil)
	otherBody := readAll(t, otherResp)
	if otherResp.StatusCode != http.StatusOK {
		t.Fatalf("second request failed: %s", otherBody)
	}
	if string(otherBody) == string(jsonBody) {
		t.Fatal("distinct requests returned identical bodies (coalesced across keys)")
	}

	// The CSV flight shares the JSON flight's simulation via the memo
	// cache, so three executions were request-level, two cell-level.
	if misses := s.Cache().Stats().Misses; misses != 2 {
		t.Fatalf("cache misses = %d, want 2 (inca cell shared between JSON and CSV)", misses)
	}
}

// TestCoalesceJoinersKeepOwnCorrelation asserts replayed responses keep
// per-caller correlation: each caller's X-Request-Id survives the
// replay instead of being overwritten by the leader's.
func TestCoalesceJoinersKeepOwnCorrelation(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Coalesce: CoalesceOptions{Enabled: true, MaxWait: 30 * time.Second},
	})
	body := `{"arch":"inca","model":"LeNet5","phase":"inference"}`

	lead := post(t, ts.URL+"/v1/simulate", body, http.Header{"X-Request-Id": []string{"caller-lead"}})
	readAll(t, lead)
	join := post(t, ts.URL+"/v1/simulate", body, http.Header{"X-Request-Id": []string{"caller-join"}})
	readAll(t, join)
	if got := join.Header.Get("X-Request-Id"); got != "caller-join" {
		t.Fatalf("joiner's X-Request-Id = %q, want caller-join (leader's id leaked through the replay)", got)
	}
	if lead.Header.Get("Content-Type") != join.Header.Get("Content-Type") {
		t.Fatal("replay dropped the recorded Content-Type")
	}
}

// TestCoalesceDisabledByDefault pins the library default: without
// opting in, every request executes (the pre-coalescing contract the
// other serve tests rely on).
func TestCoalesceDisabledByDefault(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	body := `{"arch":"inca","model":"LeNet5","phase":"inference"}`
	readAll(t, post(t, ts.URL+"/v1/simulate", body, nil))
	readAll(t, post(t, ts.URL+"/v1/simulate", body, nil))
	if c := s.Cache().Stats().CoalescedHits; c != 0 {
		t.Fatalf("coalesced hits = %d with the layer disabled", c)
	}
	st := s.Cache().Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1 (sequential repeats dedup in the cache, not the coalescer)", st.Hits, st.Misses)
	}
}
