package serve

import (
	"sort"
	"sync"

	"github.com/inca-arch/inca/internal/obs/cost"
	"github.com/inca-arch/inca/internal/sweep"
)

// usageAccount is the server-lifetime cost ledger behind GET /v1/usage
// and the inca_cost_* Prometheus families. Two books are kept:
//
//   - totals: the sum of every finalized per-request (and per-job)
//     cost.Summary — by construction the /v1/usage totals equal the sum
//     of the "cost" blocks individual callers saw;
//   - rows: per model×dataflow cell attribution, fed one evaluated
//     cell at a time, so the paper's IS/WS/OS comparisons are readable
//     as operational cost, not just as offline experiment output.
//
// Cells evaluated on remote shards are attributed on the node that
// gathered them (the coordinator) and on the shard that ran them —
// each node's ledger describes its own view of the traffic.
type usageAccount struct {
	mu       sync.Mutex
	requests int64
	jobs     int64
	totals   cost.Summary
	rows     map[usageKey]*UsageRow
}

type usageKey struct{ model, dataflow string }

// UsageRow is one model×dataflow attribution row of /v1/usage.
type UsageRow struct {
	Model    string `json:"model"`
	Dataflow string `json:"dataflow"`
	// Cells includes cached and failed ones; Attempts counts engine
	// evaluation attempts.
	Cells       int64 `json:"cells"`
	CachedCells int64 `json:"cached_cells"`
	FailedCells int64 `json:"failed_cells"`
	Attempts    int64 `json:"attempts"`
	// Simulator totals over the row's successful cells (joules/seconds).
	SimEnergyJ  float64 `json:"sim_energy_j"`
	SimLatencyS float64 `json:"sim_latency_s"`
}

// UsageResponse is the GET /v1/usage body.
type UsageResponse struct {
	// Requests counts finalized HTTP requests (all routes); Jobs counts
	// finalized background job executions. Both contribute to Totals.
	Requests int64 `json:"requests"`
	Jobs     int64 `json:"jobs"`
	// Totals is the sum of every per-request/per-job cost summary.
	Totals cost.Summary `json:"totals"`
	// Rows attribute cells per model×dataflow, sorted by model then
	// dataflow.
	Rows []UsageRow `json:"rows"`
}

func newUsageAccount() *usageAccount {
	return &usageAccount{rows: make(map[usageKey]*UsageRow)}
}

// addTotals folds one finalized request/job summary into the ledger.
func (u *usageAccount) addTotals(s cost.Summary, job bool) {
	u.mu.Lock()
	if job {
		u.jobs++
	} else {
		u.requests++
	}
	u.totals.Add(s)
	u.mu.Unlock()
}

// addCell attributes one evaluated cell to its model×dataflow row.
func (u *usageAccount) addCell(model, dataflow string, r sweep.Result) {
	u.mu.Lock()
	k := usageKey{model, dataflow}
	row := u.rows[k]
	if row == nil {
		row = &UsageRow{Model: model, Dataflow: dataflow}
		u.rows[k] = row
	}
	row.Cells++
	if r.Cached {
		row.CachedCells++
	}
	if r.Attempts > 0 {
		row.Attempts += int64(r.Attempts)
	}
	if r.Err != nil {
		row.FailedCells++
	} else if r.Report != nil {
		row.SimEnergyJ += r.Report.Total.Energy.Total()
		row.SimLatencyS += r.Report.Total.Latency
	}
	u.mu.Unlock()
}

// snapshot renders the ledger for /v1/usage and /metrics.
func (u *usageAccount) snapshot() UsageResponse {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := UsageResponse{
		Requests: u.requests,
		Jobs:     u.jobs,
		Totals:   u.totals,
		Rows:     make([]UsageRow, 0, len(u.rows)),
	}
	for _, row := range u.rows {
		out.Rows = append(out.Rows, *row)
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		if out.Rows[i].Model != out.Rows[j].Model {
			return out.Rows[i].Model < out.Rows[j].Model
		}
		return out.Rows[i].Dataflow < out.Rows[j].Dataflow
	})
	return out
}

// accountResults charges a request's materialized sweep results to its
// cost tally (via ctx) and to the server's usage ledger. Called at
// every point results land — local simulate/sweep, shard-gathered
// sweeps, shard executors, and job runs — so the tally's cell counts
// and energy/latency sums match the response's simulation reports
// exactly, whichever node or path produced them.
func (s *Server) accountResults(t *cost.Tally, results []sweep.Result) {
	for _, r := range results {
		var energy, latency float64
		if r.Err == nil && r.Report != nil {
			energy = r.Report.Total.Energy.Total()
			latency = r.Report.Total.Latency
		}
		t.AddCell(r.Cached, r.Err != nil, r.Attempts, energy, latency)
		model := ""
		if r.Cell.Network != nil {
			model = r.Cell.Network.Name
		}
		dataflow := r.Cell.Dataflow()
		if dataflow == "" {
			dataflow = r.Cell.Arch.Name
		}
		s.usage.addCell(model, dataflow, r)
	}
}
