package serve

import (
	"context"
	"errors"
)

// Admission errors, mapped to HTTP statuses by the handlers.
var (
	// errSaturated reports that both the execution slots and the wait
	// queue are full → 503 + Retry-After.
	errSaturated = errors.New("serve: admission queue saturated")
	// errAbandoned reports that the request's context ended while it was
	// still queued → 503 + Retry-After (the work never started).
	errAbandoned = errors.New("serve: request abandoned while queued")
)

// admission is the bounded two-stage gate in front of every simulating
// endpoint. A request first takes a ticket (capacity slots+queue — more
// than that and it is rejected immediately with 503), then waits for one
// of the slots execution permits (capacity slots). The split makes
// saturation a constant-time check while keeping waits bounded by the
// configured queue depth, so a flood degrades into fast 503s instead of
// an unbounded goroutine pile-up.
type admission struct {
	tickets chan struct{}
	slots   chan struct{}
}

func newAdmission(slots, queue int) *admission {
	return &admission{
		tickets: make(chan struct{}, slots+queue),
		slots:   make(chan struct{}, slots),
	}
}

// acquire admits the request or reports why it cannot run. On nil error
// the caller must release(). Queue-time bookkeeping lands in m.
func (a *admission) acquire(ctx context.Context, m *Metrics) error {
	select {
	case a.tickets <- struct{}{}:
	default:
		m.rejected.Add(1)
		return errSaturated
	}
	m.queued.Add(1)
	// The queued gauge is decremented before the request is counted
	// anywhere else, so a request is never visible in two gauges at once:
	// a snapshot racing an admission (or a chaos-cancelled acquire) sees
	// it as queued or inflight/rejected, not both.
	select {
	case a.slots <- struct{}{}:
		m.queued.Add(-1)
		m.inflight.Add(1)
		return nil
	case <-ctx.Done():
		m.queued.Add(-1)
		<-a.tickets
		m.rejected.Add(1)
		return errAbandoned
	}
}

// release returns the execution slot and ticket taken by acquire.
func (a *admission) release(m *Metrics) {
	m.inflight.Add(-1)
	<-a.slots
	<-a.tickets
}
