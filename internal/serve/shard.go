package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/obs/cost"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/sweep"
)

// ShardCell is one fully-resolved sweep cell on the wire: the shape a
// cluster coordinator posts to a peer's /v1/shard/sweep. Unlike a
// SweepRequest — a declarative cross product — a shard request names an
// explicit, usually sparse, subset of a coordinating plan's cells, so
// every axis value rides along resolved. Config is the cell's exact
// arch.Config encoding; it round-trips through arch.ReadJSON with its
// Fingerprint intact, which is what keeps a shard's cache keys (and
// therefore its results) byte-identical to the coordinator evaluating
// the same cell locally.
type ShardCell struct {
	// Seq is the cell's position in the coordinating plan; it is echoed
	// back so the coordinator can merge partials into plan order.
	Seq      int             `json:"seq"`
	Arch     string          `json:"arch"`
	Dataflow string          `json:"dataflow,omitempty"`
	Fixed    bool            `json:"fixed,omitempty"`
	Config   json.RawMessage `json:"config"`
	Override string          `json:"override,omitempty"`
	Model    string          `json:"model"`
	Phase    string          `json:"phase"`
}

// ShardSweepRequest is the POST /v1/shard/sweep body.
type ShardSweepRequest struct {
	Cells []ShardCell `json:"cells"`
}

// ShardCellResult is one evaluated cell in a shard response: the full
// report (its stable JSON encoding, byte-identical to a local run), or
// an error string for cells whose evaluation failed.
type ShardCellResult struct {
	Seq      int             `json:"seq"`
	Cached   bool            `json:"cached"`
	Attempts int             `json:"attempts"`
	Error    string          `json:"error,omitempty"`
	Report   json.RawMessage `json:"report,omitempty"`
}

// ShardSweepResponse is the POST /v1/shard/sweep payload.
type ShardSweepResponse struct {
	ShardID string            `json:"shard_id,omitempty"`
	Cells   []ShardCellResult `json:"cells"`
	Cache   sweep.CacheStats  `json:"cache"`
}

// PeerHealth is one peer's probe outcome in a shard-mode readiness
// response and in ShardSummary.
type PeerHealth struct {
	Peer    string `json:"peer"`
	ShardID string `json:"shard_id,omitempty"`
	Up      bool   `json:"up"`
	Error   string `json:"error,omitempty"`
}

// ShardSummary describes how a scatter/gather sweep was executed; it
// rides on SweepResponse only in shard mode, so single-node response
// bodies stay byte-identical.
type ShardSummary struct {
	// Peers is the cluster size the ring was built over; Down counts
	// peers marked unhealthy during the sweep.
	Peers int `json:"peers"`
	Down  int `json:"down,omitempty"`
	// Rounds counts dispatch waves: 1 for a clean scatter, +1 per
	// rehash of lost cells onto survivors.
	Rounds int `json:"rounds"`
	// Rehashed counts cells re-dispatched after their owner was lost;
	// Retried counts cells whose evaluation took more than one attempt
	// (shard-side transient retries included).
	Rehashed int `json:"rehashed,omitempty"`
	Retried  int `json:"retried,omitempty"`
	// Local counts cells the coordinator evaluated itself (its own ring
	// share, plus last-resort cells when every peer is down).
	Local int `json:"local,omitempty"`
}

// Sharder is the seam the cluster coordinator plugs into the server
// through Options: handleSweep hands it the expanded cell list and gets
// back one result per cell in input order. Implementations live outside
// this package (internal/cluster) so serve never imports the HTTP
// client it is itself the server for.
type Sharder interface {
	// Sweep evaluates cells across the cluster, returning results in
	// input order (results[i] answers cells[i]).
	Sweep(ctx context.Context, cells []sweep.Cell) ([]sweep.Result, ShardSummary, error)
	// Health probes every peer, for readiness reporting.
	Health(ctx context.Context) []PeerHealth
}

// WireCells lowers resolved sweep cells onto their wire form. It is the
// inverse of cellsFromWire and is exported for the coordinator.
func WireCells(cells []sweep.Cell) ([]ShardCell, error) {
	out := make([]ShardCell, 0, len(cells))
	for _, c := range cells {
		var buf bytes.Buffer
		if err := c.Config.WriteJSON(&buf); err != nil {
			return nil, fmt.Errorf("encoding cell %d config: %w", c.Seq, err)
		}
		out = append(out, ShardCell{
			Seq:      c.Seq,
			Arch:     c.Arch.Name,
			Dataflow: c.Arch.Dataflow,
			Fixed:    c.Arch.Fixed,
			Config:   json.RawMessage(bytes.TrimSpace(buf.Bytes())),
			Override: c.Override,
			Model:    c.Network.Name,
			Phase:    c.Phase.String(),
		})
	}
	return out, nil
}

// cellFromWire rebuilds one resolved sweep cell from its wire form. The
// round trip preserves the cell's cache key: arch.ReadJSON restores the
// exact Config (fingerprints use shortest-exact float encoding), and
// name/dataflow/fixed ride the wire verbatim.
func cellFromWire(wc ShardCell) (sweep.Cell, error) {
	net, err := nn.ByName(wc.Model)
	if err != nil {
		return sweep.Cell{}, err
	}
	phase, err := parsePhase(wc.Phase)
	if err != nil {
		return sweep.Cell{}, err
	}
	cfg, err := arch.ReadJSON(bytes.NewReader(wc.Config))
	if err != nil {
		return sweep.Cell{}, fmt.Errorf("cell %d config: %w", wc.Seq, err)
	}
	ax := sweep.Arch{Name: wc.Arch, Dataflow: wc.Dataflow, Base: cfg, Fixed: wc.Fixed}
	if wc.Dataflow != "" {
		d, err := dataflow.Get(wc.Dataflow)
		if err != nil {
			return sweep.Cell{}, fmt.Errorf("cell %d: %w", wc.Seq, err)
		}
		ax.Build = d.New
	} else {
		// Pre-registry axis: route by the config's own dataflow field,
		// exactly like sweep.ConfigArch.
		ax.Build = sweep.ConfigArch(cfg).Build
	}
	return sweep.Cell{
		Seq:      wc.Seq,
		Arch:     ax,
		Override: wc.Override,
		Config:   cfg,
		Network:  net,
		Phase:    phase,
	}, nil
}

// handleShardSweep evaluates an explicit cell list for a cluster
// coordinator: the gather half of scatter/gather. Cells run on the same
// engine, cache, and retry policy as a local sweep — a shard is just an
// inca-serve node — and each result carries the report's full stable
// encoding so the coordinator's merged table is byte-identical to a
// single-node run.
func (s *Server) handleShardSweep(w http.ResponseWriter, r *http.Request) {
	var req ShardSweepRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	if len(req.Cells) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("shard sweep request names no cells"))
		return
	}
	cells := make([]sweep.Cell, 0, len(req.Cells))
	for _, wc := range req.Cells {
		c, err := cellFromWire(wc)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		cells = append(cells, c)
	}
	s.admitted(w, r, func(ctx context.Context) {
		results, err := sweep.RunCells(ctx, cells, s.sweepOptions(s.requestWorkers()))
		if err != nil {
			s.writeError(w, statusForRunErr(err), err)
			return
		}
		// A shard attributes the cells it ran to its own ledger; the
		// coordinator attributes the gathered results to the request's.
		s.accountResults(cost.FromContext(ctx), results)
		resp := ShardSweepResponse{
			ShardID: s.opt.ShardID,
			Cells:   make([]ShardCellResult, 0, len(results)),
			Cache:   s.cache.Stats(),
		}
		for i, res := range results {
			cr := ShardCellResult{Seq: req.Cells[i].Seq, Cached: res.Cached, Attempts: res.Attempts}
			if res.Err != nil {
				cr.Error = res.Err.Error()
			} else {
				rep, err := json.Marshal(res.Report)
				if err != nil {
					s.writeError(w, http.StatusInternalServerError, fmt.Errorf("encoding cell %d report: %w", cr.Seq, err))
					return
				}
				cr.Report = rep
			}
			resp.Cells = append(resp.Cells, cr)
		}
		s.writeJSON(w, http.StatusOK, resp)
	})
}

// shardResults lifts a shard response's cells back into engine results
// for the given request cells (results[i] answers cells[i] of the
// request that produced resp). Exported for the coordinator's merge
// path.
func ShardResults(cells []sweep.Cell, resp ShardSweepResponse) ([]sweep.Result, error) {
	if len(resp.Cells) != len(cells) {
		return nil, fmt.Errorf("shard returned %d results for %d cells", len(resp.Cells), len(cells))
	}
	out := make([]sweep.Result, 0, len(cells))
	for i, cr := range resp.Cells {
		if cr.Seq != cells[i].Seq {
			return nil, fmt.Errorf("shard result %d answers seq %d, want %d", i, cr.Seq, cells[i].Seq)
		}
		res := sweep.Result{Cell: cells[i], Cached: cr.Cached, Attempts: cr.Attempts}
		if cr.Error != "" {
			res.Err = fmt.Errorf("%s", cr.Error)
		} else {
			var rep sim.Report
			if err := json.Unmarshal(cr.Report, &rep); err != nil {
				return nil, fmt.Errorf("decoding cell seq %d report: %w", cr.Seq, err)
			}
			res.Report = &rep
		}
		out = append(out, res)
	}
	return out, nil
}
