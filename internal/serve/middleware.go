package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/obs/cost"
)

// Correlation headers. The request ID is honored on the request so
// callers can supply their own; traceparent is the W3C trace-context
// header continuing a caller's distributed trace, and X-Trace-Id is the
// convenience echo of the root span's trace ID (also in error bodies).
const (
	requestIDHeader   = "X-Request-Id"
	traceparentHeader = "traceparent"
	traceIDHeader     = "X-Trace-Id"
)

// SpanRequest is the root span covering one HTTP exchange; every sweep-
// and sim-layer span of the request nests beneath it.
const SpanRequest = "serve/request"

// reqSeq numbers requests process-wide; IDs stay unique across the many
// Server instances tests spin up.
var reqSeq atomic.Uint64

// statusWriter captures the status code and payload size for logs and
// metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// instrument wraps the route mux with the service-wide middleware stack:
// request IDs, the tracing root span, panic recovery, metrics, and
// structured access logs.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = fmt.Sprintf("req-%06d", reqSeq.Add(1))
		}
		w.Header().Set(requestIDHeader, id)
		s.metrics.requests.Add(1)

		// Root span: continue the caller's trace when the request carries
		// a valid traceparent, else start a fresh one. The response's
		// traceparent/X-Trace-Id headers and the error body's trace_id
		// let the caller fetch the trace from /v1/trace/{id} afterwards.
		ctx := r.Context()
		var span *obs.Span
		if t := s.opt.Tracer; t != nil {
			if traceID, spanID, ok := obs.ParseTraceparent(r.Header.Get(traceparentHeader)); ok {
				ctx = obs.WithRemoteParent(ctx, traceID, spanID)
			}
			ctx, span = t.Start(ctx, SpanRequest,
				obs.String("method", r.Method),
				obs.String("path", r.URL.Path),
				obs.String("request_id", id))
			w.Header().Set(traceparentHeader, span.Traceparent())
			w.Header().Set(traceIDHeader, span.TraceID())
		}
		// Cost tally: every request gets one, traced or not; deeper
		// layers charge it through the context and the ?cost=1 splice
		// reads it back when the response is written.
		ctx, tally := cost.NewContext(ctx)
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				// A handler panic must not kill the connection silently:
				// answer 500 if nothing was written and keep serving.
				if sw.status == 0 {
					http.Error(sw, fmt.Sprintf(`{"error":"internal: %v"}`, rec), http.StatusInternalServerError)
				}
				s.log.Error("panic", "id", id, "method", r.Method, "path", r.URL.Path, "panic", fmt.Sprint(rec))
				span.SetAttr(obs.String("panic", fmt.Sprint(rec)))
			}
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			d := time.Since(start)
			s.metrics.observe(sw.status, d)
			s.slo.observe(sw.status, d)
			s.usage.addTotals(tally.Snapshot(), false)
			span.SetAttr(obs.Int("status", sw.status), obs.Int64("bytes", sw.bytes))
			span.End()
			s.log.Info("request",
				"id", id,
				"trace", span.TraceID(),
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"bytes", sw.bytes,
				"dur", d.String(),
			)
		}()
		next.ServeHTTP(sw, r)
	})
}
