package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// requestIDHeader carries the request's correlation ID on the response
// (and is honored on the request, so callers can supply their own).
const requestIDHeader = "X-Request-Id"

// reqSeq numbers requests process-wide; IDs stay unique across the many
// Server instances tests spin up.
var reqSeq atomic.Uint64

// statusWriter captures the status code and payload size for logs and
// metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// instrument wraps the route mux with the service-wide middleware stack:
// request IDs, panic recovery, metrics, and structured access logs.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = fmt.Sprintf("req-%06d", reqSeq.Add(1))
		}
		w.Header().Set(requestIDHeader, id)
		s.metrics.requests.Add(1)

		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				// A handler panic must not kill the connection silently:
				// answer 500 if nothing was written and keep serving.
				if sw.status == 0 {
					http.Error(sw, fmt.Sprintf(`{"error":"internal: %v"}`, rec), http.StatusInternalServerError)
				}
				s.log.Error("panic", "id", id, "method", r.Method, "path", r.URL.Path, "panic", fmt.Sprint(rec))
			}
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			d := time.Since(start)
			s.metrics.observe(sw.status, d)
			s.log.Info("request",
				"id", id,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"bytes", sw.bytes,
				"dur", d.String(),
			)
		}()
		next.ServeHTTP(sw, r)
	})
}
