// Package serve is the HTTP simulation service over the v2 facade: a
// stdlib-only JSON API that exposes single-cell simulation, declarative
// sweeps on the parallel engine, the model zoo, and the paper's
// experiment suite. Production behaviors are built in, not bolted on:
//
//   - bounded admission — at most MaxInflight requests simulate
//     concurrently and at most QueueDepth more wait; beyond that the
//     server answers 503 with a Retry-After hint instead of blocking or
//     dropping connections;
//   - per-request deadlines — RequestTimeout becomes a context deadline
//     that propagates into the sweep engine, so an abandoned request
//     stops consuming workers at the next cell boundary;
//   - worker-budget coupling — each admitted request runs its sweep with
//     max(1, tensor.Parallelism()/MaxInflight) workers, so a fully
//     loaded server draws the same process-wide budget PR 2's kernels
//     share and never oversubscribes the host;
//   - graceful shutdown — Serve drains in-flight requests when its
//     context ends (SIGINT/SIGTERM in cmd/inca-serve);
//   - observability — request IDs, structured access logs, and /metrics
//     counters (requests, inflight, queue depth, sweep.Cache stats, a
//     latency histogram).
package serve

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/inca-arch/inca/internal/fault"
	"github.com/inca-arch/inca/internal/job"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/store"
	"github.com/inca-arch/inca/internal/sweep"
	"github.com/inca-arch/inca/internal/tensor"
)

// Options configures a Server. The zero value is production-usable:
// every field has a sensible default applied by New.
type Options struct {
	// MaxInflight bounds how many requests may simulate concurrently;
	// <= 0 means runtime.GOMAXPROCS(0).
	MaxInflight int
	// QueueDepth bounds how many admitted requests may wait for an
	// execution slot beyond MaxInflight; < 0 means 0 (no queue). The
	// default is 64.
	QueueDepth int
	// RequestTimeout is the per-request deadline propagated as a context
	// into the sweep engine; <= 0 means 60s.
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with 503 responses when the queue
	// is saturated; <= 0 means 1s.
	RetryAfter time.Duration
	// DrainTimeout bounds graceful shutdown: how long Serve waits for
	// in-flight requests after its context ends; <= 0 means 15s.
	DrainTimeout time.Duration
	// ReadinessGrace keeps the listener open that long after readiness
	// flips to 503 at the start of a drain, so load balancers polling
	// /healthz/ready observe the not-ready answer and stop routing before
	// connections are refused; <= 0 means no grace window.
	ReadinessGrace time.Duration
	// MaxBodyBytes bounds request bodies (http.MaxBytesReader); overflow
	// answers 413 with a JSON error. <= 0 means 1 MiB — the largest
	// legitimate payload (a full custom arch.Config inside a sweep
	// request) is a few KB.
	MaxBodyBytes int64
	// Inject, when non-nil, arms the chaos middleware: fault rules at the
	// ChaosSite* sites inject errors, panics, latency, and mid-request
	// cancellations into the request path. Never set in production — this
	// exists for chaos tests and the explicit opt-in flag in
	// cmd/inca-serve.
	Inject *fault.Injector
	// Cache memoizes simulation cells across requests. nil gives the
	// server a private cache.
	Cache *sweep.Cache
	// Store, when non-nil, is the persistent result store attached as the
	// cache's second tier: memory misses consult the store before
	// simulating, successful cells are written through, and results
	// survive restarts (cmd/inca-serve opens one with -store-dir). It
	// also enables GET /v1/store/stats, GET /v1/store/export, and
	// POST /v1/store/import; without a store those answer 404.
	Store *store.Store
	// StoreImportMaxBytes bounds POST /v1/store/import request bodies —
	// corpus imports are legitimately much larger than simulation
	// requests, so they get their own cap instead of MaxBodyBytes.
	// <= 0 means 64 MiB.
	StoreImportMaxBytes int64
	// Logger receives structured access and lifecycle logs. nil discards
	// them (library embedders opt in; cmd/inca-serve passes a real one).
	Logger *slog.Logger
	// Tracer, when non-nil, gives every request a root span
	// (serve/request) that nests the sweep- and sim-layer spans beneath
	// it. Incoming W3C traceparent headers continue the caller's trace;
	// responses carry traceparent and X-Trace-Id, error bodies a
	// trace_id field, and GET /v1/trace/{id} serves the tracer's ring.
	// nil disables tracing at the cost of one nil check per request.
	Tracer *obs.Tracer
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/. Off by
	// default: profiles expose internals and cost CPU, so production
	// servers opt in explicitly (the -pprof flag in cmd/inca-serve).
	EnablePprof bool
	// LatencyBuckets overrides the request-latency histogram's bucket
	// upper bounds (seconds, ascending; a +Inf overflow bucket is always
	// appended). nil means DefaultLatencyBuckets.
	LatencyBuckets []float64
	// SweepRetry is the per-cell retry policy threaded into every
	// request's sweep run, so transient faults (opt.Inject chaos, flaky
	// cells) retry server-side instead of failing the request.
	SweepRetry sweep.RetryPolicy
	// Coalesce configures request-level coalescing of identical
	// /v1/simulate and /v1/sweep requests. Off by default (see
	// CoalesceOptions); cmd/inca-serve enables it with -coalesce.
	Coalesce CoalesceOptions
	// Jobs, when non-nil, mounts the asynchronous job API (POST /v1/jobs
	// and friends): sweep/tune requests execute detached from their
	// callers on the manager's bounded runner pool, with per-cell
	// completion checkpointed through the result store and the manager's
	// journal so interrupted jobs resume after a restart. New arms the
	// manager with this server's executor (job.Manager.Start); the owner
	// closes the manager — before the store — at process exit
	// (cmd/inca-serve opens one with -job-dir). Without a manager the
	// /v1/jobs routes answer 404.
	Jobs *job.Manager
	// Sharder, when non-nil, switches /v1/sweep to cluster scatter/
	// gather: expanded cells are handed to the sharder (the
	// internal/cluster coordinator in cmd/inca-serve) instead of the
	// local engine, and /healthz/ready reports per-peer health.
	Sharder Sharder
	// ShardID names this node in shard responses and readiness bodies;
	// empty outside cluster deployments.
	ShardID string
	// RetryJitterSeed, when non-zero, arms deterministic jitter on the
	// Retry-After hint of 503 responses (a seeded stream adding up to a
	// quarter of the base hint), so synchronized clients spread their
	// retries instead of re-stampeding. Zero keeps the exact hint.
	RetryJitterSeed int64
	// SLO configures multi-window burn-rate tracking of latency and
	// error objectives (the -slo-p99/-slo-err flags in cmd/inca-serve).
	// When enabled, burn rates are served in /metrics and a fast burn
	// flips /healthz/ready to "degraded" before a hard failure. The
	// zero value disables tracking.
	SLO SLOOptions
	// sloNow overrides the SLO tracker's clock in tests.
	sloNow func() time.Time
}

// withDefaults resolves every unset option.
func (o Options) withDefaults() Options {
	if o.MaxInflight <= 0 {
		o.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.QueueDepth < 0 {
		o.QueueDepth = 0
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 15 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.Cache == nil {
		o.Cache = sweep.NewCache()
	}
	if o.Store != nil {
		o.Cache.SetTier(o.Store)
	}
	if o.StoreImportMaxBytes <= 0 {
		o.StoreImportMaxBytes = 64 << 20
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.LatencyBuckets == nil {
		o.LatencyBuckets = DefaultLatencyBuckets()
	}
	return o
}

// Server is the HTTP simulation service. Construct with New; the zero
// value is not usable.
type Server struct {
	opt      Options
	log      *slog.Logger
	cache    *sweep.Cache
	admit    *admission
	metrics  *Metrics
	handler  http.Handler
	coalesce *coalescer // nil when coalescing is off
	// usage is the server-lifetime cost ledger (GET /v1/usage,
	// inca_cost_*); slo is the burn-rate tracker, nil unless objectives
	// are configured.
	usage *usageAccount
	slo   *sloTracker
	// jitterMu guards jitter, the seeded Retry-After jitter stream; both
	// are nil/unused when RetryJitterSeed is zero.
	jitterMu sync.Mutex
	jitter   *rand.Rand
	// ready gates the readiness probe: true from construction until a
	// graceful drain begins. Liveness is unconditional.
	ready atomic.Bool
}

// New builds a Server from options (see Options for the defaults).
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:     opt,
		log:     opt.Logger,
		cache:   opt.Cache,
		admit:   newAdmission(opt.MaxInflight, opt.QueueDepth),
		metrics: newMetrics(opt.LatencyBuckets),
		usage:   newUsageAccount(),
	}
	if opt.SLO.enabled() {
		s.slo = newSLOTracker(opt.SLO, opt.sloNow)
	}
	if opt.Coalesce.Enabled {
		s.coalesce = newCoalescer(opt.Coalesce)
	}
	if opt.RetryJitterSeed != 0 {
		s.jitter = rand.New(rand.NewSource(opt.RetryJitterSeed))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/shard/sweep", s.handleShardSweep)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentIndex)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/trace", s.handleTraceIndex)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /v1/shard/trace/{id}", s.handleShardTrace)
	mux.HandleFunc("GET /v1/usage", s.handleUsage)
	mux.HandleFunc("GET /v1/store/stats", s.handleStoreStats)
	mux.HandleFunc("GET /v1/store/export", s.handleStoreExport)
	mux.HandleFunc("POST /v1/store/import", s.handleStoreImport)
	mux.HandleFunc("GET /healthz", s.handleLiveness)
	mux.HandleFunc("GET /healthz/live", s.handleLiveness)
	mux.HandleFunc("GET /healthz/ready", s.handleReadiness)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opt.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.handler = s.instrument(s.chaos(mux))
	if opt.Jobs != nil {
		// Arm the manager with this server's executor: recovered jobs
		// requeue and the runner pool starts draining immediately.
		opt.Jobs.Start(s.execJob)
	}
	s.ready.Store(true)
	return s
}

// Handler returns the fully instrumented http.Handler (request IDs,
// access logs, panic recovery, metrics). Mount it on any http.Server.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics returns the server's counters (snapshot with Snapshot).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache returns the server's simulation cache.
func (s *Server) Cache() *sweep.Cache { return s.cache }

// Store returns the server's persistent result store, nil when the
// server runs memory-only.
func (s *Server) Store() *store.Store { return s.opt.Store }

// Tracer returns the server's tracer, nil when tracing is disabled.
func (s *Server) Tracer() *obs.Tracer { return s.opt.Tracer }

// sweepOptions assembles the engine options for one admitted request:
// the given worker budget, the shared cache, and the server's retry
// policy and fault injector, so a request's cells retry transient
// failures exactly like an offline sweep would.
func (s *Server) sweepOptions(workers int) sweep.Options {
	return sweep.Options{
		Workers: workers,
		Cache:   s.cache,
		Retry:   s.opt.SweepRetry,
		Inject:  s.opt.Inject,
	}
}

// requestWorkers is the sweep worker-pool size granted to one admitted
// request: the process-wide kernel budget split across the admission
// width, never below one. With the server fully loaded this keeps total
// sweep concurrency at the same budget tensor kernels draw from, so the
// service cannot oversubscribe the host.
func (s *Server) requestWorkers() int {
	w := tensor.Parallelism() / s.opt.MaxInflight
	if w < 1 {
		w = 1
	}
	return w
}

// Serve accepts connections on ln until ctx ends, then shuts down
// gracefully: readiness flips to 503 first (and, with ReadinessGrace
// set, the listener stays open that long so balancers observe it), then
// no new connections, and in-flight requests drain for up to
// DrainTimeout. It returns nil after a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler: s.handler,
		BaseContext: func(net.Listener) context.Context {
			// Detach request contexts from ctx: shutdown must drain
			// in-flight work, not cancel it mid-cell.
			return context.Background()
		},
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	s.ready.Store(false)
	s.log.Info("shutting down",
		"readiness_grace", s.opt.ReadinessGrace.String(),
		"drain_timeout", s.opt.DrainTimeout.String())
	if s.opt.ReadinessGrace > 0 {
		t := time.NewTimer(s.opt.ReadinessGrace)
		select {
		case <-t.C:
		case err := <-errc:
			t.Stop()
			return err // listener died during the grace window
		}
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.opt.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(drainCtx)
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}
