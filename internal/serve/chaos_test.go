package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/fault"
)

// TestChaosHammerKeepsInvariants is the serve-layer acceptance run: a
// fixed-seed injector arms panics, errors, latency, and mid-request
// cancellations across the chaos sites, a concurrent hammer drives every
// fault path, and the admission/metrics invariants must survive — no
// request hangs past its deadline, the counters stay consistent, and the
// pool fully drains.
func TestChaosHammerKeepsInvariants(t *testing.T) {
	inj := fault.New(2024)
	inj.Add(fault.Rule{Site: ChaosSiteRequest, Kind: fault.KindPanic, Prob: 0.1})
	inj.Add(fault.Rule{Site: ChaosSiteRequest, Kind: fault.KindError, Prob: 0.1})
	inj.Add(fault.Rule{Site: ChaosSiteRequest, Kind: fault.KindLatency, Prob: 0.2, Delay: 5 * time.Millisecond})
	inj.Add(fault.Rule{Site: ChaosSiteExec, Kind: fault.KindLatency, Prob: 0.2, Delay: 10 * time.Millisecond})
	inj.Add(fault.Rule{Site: ChaosSiteCancel, Kind: fault.KindCancel, Prob: 0.1, Delay: time.Millisecond})

	s, ts := newTestServer(t, Options{
		MaxInflight:    4,
		QueueDepth:     64,
		RequestTimeout: 5 * time.Second,
		Inject:         inj,
	})

	const (
		n        = 64
		deadline = 15 * time.Second
	)
	client := &http.Client{Timeout: deadline}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			var resp *http.Response
			var err error
			if i%4 == 0 {
				resp, err = client.Get(ts.URL + "/metrics")
			} else {
				resp, err = client.Post(ts.URL+"/v1/simulate", "application/json",
					strings.NewReader(`{"arch":"inca","model":"LeNet5","phase":"inference"}`))
			}
			if err != nil {
				// A chaos-cancelled request may die mid-flight; that is the
				// injected behavior, not a hang — but it must die promptly.
				if time.Since(start) >= deadline {
					errs <- fmt.Errorf("request %d hung past its deadline: %v", i, err)
				}
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			switch resp.StatusCode {
			case http.StatusOK, http.StatusInternalServerError,
				http.StatusGatewayTimeout, http.StatusServiceUnavailable:
			default:
				errs <- fmt.Errorf("request %d: unexpected status %d: %.200s", i, resp.StatusCode, buf.Bytes())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if inj.TriggeredTotal() == 0 {
		t.Fatal("chaos run triggered no faults; the hammer proved nothing")
	}

	// Metrics invariants: every received request was observed exactly
	// once, with a status class, and the admission pool fully drained.
	// A client can finish reading a response a beat before the server's
	// metrics defer runs, so poll briefly for the counters to settle.
	var snap Snapshot
	settleBy := time.Now().Add(2 * time.Second)
	for {
		snap = s.snapshot()
		byClass := snap.Status2xx + snap.Status4xx + snap.Status5xx
		var bktSum int64
		for _, c := range snap.Latency.Counts {
			bktSum += c
		}
		if snap.Inflight == 0 && snap.Queued == 0 &&
			snap.Requests == byClass && snap.Latency.Count == snap.Requests &&
			bktSum == snap.Latency.Count {
			break
		}
		if time.Now().After(settleBy) {
			t.Fatalf("metrics never settled consistent: requests=%d classes=%d latency=%d buckets=%d inflight=%d queued=%d",
				snap.Requests, byClass, snap.Latency.Count, bktSum, snap.Inflight, snap.Queued)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The same seed injects the same schedule: a second identically-built
	// injector serving the same per-site hit sequence agrees on the first
	// decisions (reproducibility spot check on a single-site sequence).
	a, b := fault.New(2024), fault.New(2024)
	for _, in := range []*fault.Injector{a, b} {
		in.Add(fault.Rule{Site: ChaosSiteRequest, Kind: fault.KindError, Prob: 0.1})
	}
	for i := 0; i < 32; i++ {
		ea := a.Hit(context.Background(), ChaosSiteRequest)
		eb := b.Hit(context.Background(), ChaosSiteRequest)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("hit %d: identically-seeded injectors disagree", i)
		}
	}
}

// TestChaosGracefulDrainCompletes: with chaos armed, a graceful drain
// still finishes — in-flight (slow, injected-latency) requests complete
// and Serve returns nil.
func TestChaosGracefulDrainCompletes(t *testing.T) {
	inj := fault.New(9)
	inj.Add(fault.Rule{Site: ChaosSiteExec, Kind: fault.KindLatency, Delay: 100 * time.Millisecond})

	s := New(Options{DrainTimeout: 10 * time.Second, Inject: inj})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	type result struct {
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/simulate", "application/json",
			strings.NewReader(`{"arch":"inca","model":"LeNet5","phase":"inference"}`))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		inflight <- result{status: resp.StatusCode}
	}()

	time.Sleep(30 * time.Millisecond) // request is inside the injected latency
	cancel()

	res := <-inflight
	if res.err != nil {
		t.Fatalf("in-flight chaos request failed during drain: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("drained chaos request: status %d", res.status)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after chaos drain", err)
	}
}

// TestReadinessFlipsDuringDrain: once a graceful drain begins, readiness
// answers 503 (with Retry-After) inside the grace window while liveness
// stays 200; before the drain both answer 200.
func TestReadinessFlipsDuringDrain(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	testHookAdmitted = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	defer func() { testHookAdmitted = nil }()

	s := New(Options{DrainTimeout: 10 * time.Second, ReadinessGrace: 2 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	probe := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("probing %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}

	if code, _ := probe("/healthz/ready"); code != http.StatusOK {
		t.Fatalf("ready before drain: %d", code)
	}
	if code, _ := probe("/healthz/live"); code != http.StatusOK {
		t.Fatalf("live before drain: %d", code)
	}

	// Pin a request in flight, then start the drain.
	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/simulate", "application/json",
			strings.NewReader(`{"arch":"inca","model":"LeNet5","phase":"inference"}`))
		if err == nil {
			resp.Body.Close()
		}
		inflight <- err
	}()
	<-entered
	cancel()

	// Inside the grace window the listener still answers: readiness must
	// say 503, liveness and /healthz must stay 200.
	var readyCode int
	var retryAfter string
	deadline := time.Now().Add(time.Second)
	for {
		readyCode, retryAfter = probe("/healthz/ready")
		if readyCode == http.StatusServiceUnavailable || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if readyCode != http.StatusServiceUnavailable {
		t.Fatalf("readiness during drain = %d, want 503", readyCode)
	}
	if retryAfter == "" {
		t.Fatal("draining readiness answer carries no Retry-After")
	}
	if code, _ := probe("/healthz/live"); code != http.StatusOK {
		t.Fatalf("liveness during drain = %d, want 200", code)
	}
	if code, _ := probe("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", code)
	}

	close(release)
	if err := <-inflight; err != nil {
		t.Fatalf("pinned request failed during drain: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after drain with readiness grace", err)
	}
}

// TestMaxBodyBytesOverflowIs413: an oversized request body answers 413
// with the uniform JSON error payload; a body under the bound passes.
func TestMaxBodyBytesOverflowIs413(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 256})

	big := `{"arch":"inca","model":"LeNet5","phase":"inference","config":null,` +
		`"batch":0` + strings.Repeat(" ", 512) + `}`
	resp := post(t, ts.URL+"/v1/simulate", big, nil)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413 (%s)", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("413 body is not the JSON error payload: %s", body)
	}
	if !strings.Contains(e.Error, "256") {
		t.Fatalf("413 error does not state the limit: %s", e.Error)
	}

	resp = post(t, ts.URL+"/v1/sweep", `{"models":["`+strings.Repeat("m", 1024)+`"]}`, nil)
	if readAll(t, resp); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized sweep body: status %d, want 413", resp.StatusCode)
	}

	resp = post(t, ts.URL+"/v1/simulate", `{"arch":"inca","model":"LeNet5","phase":"inference"}`, nil)
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("small body under the bound: status %d, want 200", resp.StatusCode)
	}
}
