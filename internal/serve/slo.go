package serve

import (
	"sync"
	"time"
)

// SLO windows and thresholds. The math is the standard multi-window
// burn-rate alert: with an objective "99% of requests under TargetP99"
// the latency error budget is 1% of requests; burn rate is the
// fraction of the budget the observed bad-request rate consumes per
// unit time (burn 1.0 = exactly exhausting the budget over the SLO
// period, burn 14 over 5 minutes = the classic fast-burn page that
// exhausts a 30-day budget in ~2 days). The short window makes the
// status flip quickly, the long window keeps it honest against blips.
const (
	sloShortWindow = 5 * time.Minute
	sloLongWindow  = time.Hour
	// sloBucket is the tracker's time resolution; 1h/10s = 360 buckets.
	sloBucket = 10 * time.Second
	// sloFastBurn flips readiness to "degraded" when either burn rate
	// over the short window reaches it.
	sloFastBurn = 14.0
	// sloSlowBurn flips "degraded" when a burn rate sustains >= 1.0
	// over the long window — the budget is being spent exactly as fast
	// as it accrues, or faster.
	sloSlowBurn = 1.0
	// sloLatencyBudget is the implied error budget of the p99 latency
	// objective: 1% of requests may exceed TargetP99.
	sloLatencyBudget = 0.01
)

// SLOOptions configures burn-rate tracking; the zero value disables it.
type SLOOptions struct {
	// TargetP99 is the latency objective: 99% of requests should finish
	// faster than this. <= 0 disables latency tracking.
	TargetP99 time.Duration
	// ErrorBudget is the tolerated fraction of 5xx responses
	// (e.g. 0.01 = 1%). <= 0 disables error tracking.
	ErrorBudget float64
}

func (o SLOOptions) enabled() bool { return o.TargetP99 > 0 || o.ErrorBudget > 0 }

// sloBucketData is one 10-second accounting slice.
type sloBucketData struct {
	epoch    int64 // bucket index since the unix epoch; identifies the interval
	requests int64
	errors   int64 // 5xx responses
	slow     int64 // latencies above TargetP99
}

// sloTracker is the sliding multi-window burn-rate accountant. One
// observe per finished request, O(buckets) per stats read — both off
// the request hot path's lock for only nanoseconds.
type sloTracker struct {
	opt SLOOptions
	now func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets [int(sloLongWindow / sloBucket)]sloBucketData
}

func newSLOTracker(opt SLOOptions, now func() time.Time) *sloTracker {
	if now == nil {
		now = time.Now
	}
	return &sloTracker{opt: opt, now: now}
}

// observe charges one finished request to the current bucket.
func (t *sloTracker) observe(status int, d time.Duration) {
	if t == nil {
		return
	}
	epoch := t.now().UnixNano() / int64(sloBucket)
	t.mu.Lock()
	b := &t.buckets[epoch%int64(len(t.buckets))]
	if b.epoch != epoch {
		*b = sloBucketData{epoch: epoch}
	}
	b.requests++
	if status >= 500 {
		b.errors++
	}
	if t.opt.TargetP99 > 0 && d > t.opt.TargetP99 {
		b.slow++
	}
	t.mu.Unlock()
}

// SLOWindow is one window's aggregate, as served in /metrics.
type SLOWindow struct {
	WindowS  float64 `json:"window_s"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Slow     int64   `json:"slow"`
	// ErrorBurn and LatencyBurn are budget burn rates (see slo.go
	// header); 0 when the corresponding objective is disabled or the
	// window saw no requests.
	ErrorBurn   float64 `json:"error_burn"`
	LatencyBurn float64 `json:"latency_burn"`
}

// SLOStats is the tracker's exported snapshot.
type SLOStats struct {
	TargetP99S  float64   `json:"target_p99_s,omitempty"`
	ErrorBudget float64   `json:"error_budget,omitempty"`
	Fast        SLOWindow `json:"fast"` // 5m window
	Slow        SLOWindow `json:"slow"` // 1h window
	// Status is "ok" or "degraded" (fast-burn or sustained slow-burn).
	Status string `json:"status"`
}

func (t *sloTracker) window(now time.Time, w time.Duration) SLOWindow {
	out := SLOWindow{WindowS: w.Seconds()}
	min := now.UnixNano()/int64(sloBucket) - int64(w/sloBucket) + 1
	for i := range t.buckets {
		b := &t.buckets[i]
		if b.epoch >= min {
			out.Requests += b.requests
			out.Errors += b.errors
			out.Slow += b.slow
		}
	}
	if out.Requests > 0 {
		if t.opt.ErrorBudget > 0 {
			out.ErrorBurn = float64(out.Errors) / float64(out.Requests) / t.opt.ErrorBudget
		}
		if t.opt.TargetP99 > 0 {
			out.LatencyBurn = float64(out.Slow) / float64(out.Requests) / sloLatencyBudget
		}
	}
	return out
}

// stats snapshots both windows and classifies the status.
func (t *sloTracker) stats() SLOStats {
	if t == nil {
		return SLOStats{}
	}
	now := t.now()
	t.mu.Lock()
	s := SLOStats{
		TargetP99S:  t.opt.TargetP99.Seconds(),
		ErrorBudget: t.opt.ErrorBudget,
		Fast:        t.window(now, sloShortWindow),
		Slow:        t.window(now, sloLongWindow),
	}
	t.mu.Unlock()
	s.Status = "ok"
	if s.Fast.ErrorBurn >= sloFastBurn || s.Fast.LatencyBurn >= sloFastBurn ||
		s.Slow.ErrorBurn >= sloSlowBurn || s.Slow.LatencyBurn >= sloSlowBurn {
		s.Status = "degraded"
	}
	return s
}
