package rram

import (
	"fmt"

	"github.com/inca-arch/inca/internal/tensor"
)

// Stats counts the device events an array has performed; the analytical
// simulators convert these to energy via the Device cost model.
type Stats struct {
	CellReads  int64 // individual cell read events
	CellWrites int64 // individual cell write (program) events
	Outputs    int64 // analog outputs produced (ADC conversions needed)
}

// Plus returns the field-wise sum.
func (s Stats) Plus(o Stats) Stats {
	return Stats{
		CellReads:  s.CellReads + o.CellReads,
		CellWrites: s.CellWrites + o.CellWrites,
		Outputs:    s.Outputs + o.Outputs,
	}
}

// Crossbar is the conventional weight-stationary 1T1R array: weights are
// programmed once and inputs stream along the rows; each column wire sums
// the cell currents, producing one dot product per column (ISAAC-class
// operation, paper Fig. 5b).
//
// Signed weights are represented functionally as signed stored values; a
// physical design realizes the sign with a differential column pair, which
// the analytical model accounts for separately.
type Crossbar struct {
	Rows, Cols int
	cells      []float64 // rows × cols, row-major
	noise      *NoiseModel
	quantize   func(float64) float64
	stuck      []StuckFault
	stats      Stats
}

// StuckFault pins one cell (row-major index) at a terminal conductance:
// stuck-at-LRS reads as the array's full-scale value, stuck-at-HRS as
// zero. These model formed-but-dead RRAM devices — reprogramming cannot
// heal them, so the fault is re-applied after every Program.
type StuckFault struct {
	Index int
	LRS   bool
}

// NewCrossbar builds an empty rows×cols crossbar.
func NewCrossbar(rows, cols int) *Crossbar {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("rram: invalid crossbar size %dx%d", rows, cols))
	}
	return &Crossbar{Rows: rows, Cols: cols, cells: make([]float64, rows*cols)}
}

// SetNoise attaches a device nonideality model applied at program time
// (weight-side noise — the WS vulnerability of Table VI).
func (c *Crossbar) SetNoise(n *NoiseModel) { c.noise = n }

// SetQuantizer attaches an ADC transfer function applied to every column
// output. Nil means an ideal converter.
func (c *Crossbar) SetQuantizer(q func(float64) float64) { c.quantize = q }

// SetStuckFaults pins cells at stuck-at-LRS/HRS conductances (the
// fault.Injector's device-level hook selects them; any caller may supply
// its own set). The faults apply immediately — at the array's current
// full-scale value — and are re-applied after every Program, because a
// dead device ignores write pulses. Out-of-range indices panic.
func (c *Crossbar) SetStuckFaults(faults []StuckFault) {
	for _, f := range faults {
		if f.Index < 0 || f.Index >= len(c.cells) {
			panic(fmt.Sprintf("rram: stuck fault index %d outside %d-cell array", f.Index, len(c.cells)))
		}
	}
	c.stuck = append(c.stuck[:0:0], faults...)
	scale := 0.0
	for _, v := range c.cells {
		if a := abs(v); a > scale {
			scale = a
		}
	}
	c.applyStuck(scale)
}

// applyStuck overwrites every stuck cell with its terminal conductance:
// LRS reads full-scale, HRS reads zero.
func (c *Crossbar) applyStuck(scale float64) {
	for _, f := range c.stuck {
		if f.LRS {
			c.cells[f.Index] = scale
		} else {
			c.cells[f.Index] = 0
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Program writes the weight matrix w [rows, cols] into the array. The
// optional noise model perturbs each stored value, emulating nonideal
// programming.
func (c *Crossbar) Program(w *tensor.Tensor) {
	if w.Rank() != 2 || w.Dim(0) != c.Rows || w.Dim(1) != c.Cols {
		panic(fmt.Sprintf("rram: Program wants [%d %d], got %v", c.Rows, c.Cols, w.Dims()))
	}
	scale := w.MaxAbs()
	for i, v := range w.Data() {
		if c.noise != nil {
			v = c.noise.Perturb(v, scale)
		}
		c.cells[i] = v
	}
	c.applyStuck(scale)
	c.stats.CellWrites += int64(len(c.cells))
}

// MVM drives the input vector x [rows] onto the rows and returns the
// column current sums [cols] after optional ADC quantization.
func (c *Crossbar) MVM(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 1 || x.Dim(0) != c.Rows {
		panic(fmt.Sprintf("rram: MVM wants [%d], got %v", c.Rows, x.Dims()))
	}
	out := tensor.New(c.Cols)
	for r := 0; r < c.Rows; r++ {
		xv := x.Data()[r]
		if xv == 0 {
			continue
		}
		row := c.cells[r*c.Cols : (r+1)*c.Cols]
		for col, g := range row {
			out.Data()[col] += xv * g
		}
	}
	if c.quantize != nil {
		out.Apply(c.quantize)
	}
	c.stats.CellReads += int64(c.Rows) * int64(c.Cols)
	c.stats.Outputs += int64(c.Cols)
	return out
}

// Stats returns the accumulated event counts.
func (c *Crossbar) Stats() Stats { return c.stats }

// UsedFraction returns the fraction of cells holding nonzero weights — the
// utilization figure behind Fig. 16b's WS collapse on light models.
func (c *Crossbar) UsedFraction() float64 {
	n := 0
	for _, v := range c.cells {
		if v != 0 {
			n++
		}
	}
	return float64(n) / float64(len(c.cells))
}

// UniformQuantizer returns an ADC transfer function with 2^bits uniform
// levels over [-fullScale, fullScale], clamping out-of-range inputs — the
// behaviour of a real converter fed a too-large column current.
func UniformQuantizer(bits int, fullScale float64) func(float64) float64 {
	if bits < 1 || fullScale <= 0 {
		panic(fmt.Sprintf("rram: invalid quantizer (%d bits, %v full-scale)", bits, fullScale))
	}
	levels := float64(int64(1) << (bits - 1))
	step := fullScale / levels
	return func(v float64) float64 {
		if v > fullScale {
			v = fullScale
		} else if v < -fullScale {
			v = -fullScale
		}
		q := float64(int64(v/step+copysign05(v))) * step
		return q
	}
}

func copysign05(v float64) float64 {
	if v < 0 {
		return -0.5
	}
	return 0.5
}
