package rram

import (
	"fmt"

	"github.com/inca-arch/inca/internal/tensor"
)

// Plane is INCA's 2T1R direct-convolution vertical plane (paper §IV.A).
// A feature-map partition is written into the cells; a convolution is read
// out by activating only the two perpendicular select lines that cover the
// kernel window ("the cells under the activated 2×2 kernel window receive
// weight information as its shape; other cells' one or two transistors are
// off not to be accumulated") and summing all cell currents on the tied
// bottom plane in a single shot.
type Plane struct {
	H, W     int
	cells    []float64
	noise    *NoiseModel
	quantize func(float64) float64
	wear     *Wear
	stats    Stats
}

// NewPlane builds an H×W 2T1R plane.
func NewPlane(h, w int) *Plane {
	if h <= 0 || w <= 0 {
		panic(fmt.Sprintf("rram: invalid plane size %dx%d", h, w))
	}
	return &Plane{H: h, W: w, cells: make([]float64, h*w)}
}

// SetNoise attaches a nonideality model applied at write time — in IS
// dataflow this perturbs *activations*, the robust case of Table VI.
func (p *Plane) SetNoise(n *NoiseModel) { p.noise = n }

// SetQuantizer attaches an ADC transfer function to window reads.
func (p *Plane) SetQuantizer(q func(float64) float64) { p.quantize = q }

// EnableWear starts endurance tracking with the given per-cell budget.
func (p *Plane) EnableWear(endurance int64) { p.wear = NewWear(p.H*p.W, endurance) }

// Wear returns the endurance tracker, or nil if not enabled.
func (p *Plane) Wear() *Wear { return p.wear }

// Write stores the feature-map partition x [h, w] into the plane starting
// at the origin; it models the one-cycle parallel write of Fig. 8c (all
// selected cells adjusted in the same write pulse). Cells outside x keep
// their previous contents.
func (p *Plane) Write(x *tensor.Tensor) {
	if x.Rank() != 2 || x.Dim(0) > p.H || x.Dim(1) > p.W {
		panic(fmt.Sprintf("rram: Write wants at most [%d %d], got %v", p.H, p.W, x.Dims()))
	}
	h, w := x.Dim(0), x.Dim(1)
	scale := x.MaxAbs()
	for y := 0; y < h; y++ {
		for xx := 0; xx < w; xx++ {
			v := x.At(y, xx)
			if p.noise != nil {
				v = p.noise.Perturb(v, scale)
			}
			idx := y*p.W + xx
			p.cells[idx] = v
			if p.wear != nil {
				p.wear.RecordWrite(idx)
			}
		}
	}
	p.stats.CellWrites += int64(h) * int64(w)
}

// At returns the stored cell value (for inspection and tests).
func (p *Plane) At(y, x int) float64 { return p.cells[y*p.W+x] }

// ReadWindow performs one direct-convolution read: the kernel w [kh, kw]
// is applied over the window whose top-left cell is (oy, ox); the return
// value is the one-shot accumulated current. Windows must lie fully inside
// the plane (the mapper pads partitions before writing).
func (p *Plane) ReadWindow(w *tensor.Tensor, oy, ox int) float64 {
	kh, kw := w.Dim(0), w.Dim(1)
	if oy < 0 || ox < 0 || oy+kh > p.H || ox+kw > p.W {
		panic(fmt.Sprintf("rram: window %dx%d at (%d,%d) exceeds plane %dx%d", kh, kw, oy, ox, p.H, p.W))
	}
	sum := 0.0
	for ky := 0; ky < kh; ky++ {
		for kx := 0; kx < kw; kx++ {
			sum += p.cells[(oy+ky)*p.W+ox+kx] * w.At(ky, kx)
		}
	}
	if p.quantize != nil {
		sum = p.quantize(sum)
	}
	p.stats.CellReads += int64(kh) * int64(kw)
	p.stats.Outputs++
	return sum
}

// Convolve slides the kernel w [kh, kw] over the stored h×w region with
// the given stride and returns the output map — the layer-level operation
// of Fig. 8d ("once one convolution is finished, by turning off the first
// column and on the third column, the next convolution can be computed").
// h and w bound the valid data region (the plane may be larger than the
// written partition).
func (p *Plane) Convolve(w *tensor.Tensor, h, wd, stride int) *tensor.Tensor {
	if h > p.H || wd > p.W {
		panic(fmt.Sprintf("rram: region %dx%d exceeds plane %dx%d", h, wd, p.H, p.W))
	}
	kh, kw := w.Dim(0), w.Dim(1)
	oh := (h-kh)/stride + 1
	ow := (wd-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("rram: kernel %dx%d does not fit region %dx%d", kh, kw, h, wd))
	}
	out := tensor.New(oh, ow)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			out.Set(p.ReadWindow(w, oy*stride, ox*stride), oy, ox)
		}
	}
	return out
}

// Overwrite replaces the stored region with new data — the activation-to-
// error recycling of the backward pass ("INCA can reuse RRAMs, which were
// used for input values in l, for the calculated errors in l", §IV.C).
// It is Write by another name, kept separate so call sites document intent.
func (p *Plane) Overwrite(x *tensor.Tensor) { p.Write(x) }

// Stats returns the accumulated event counts.
func (p *Plane) Stats() Stats { return p.stats }

// Stack is the 3D HRRAM organization (paper §IV.B): vertical 2T1R planes
// stacked horizontally, penetrated by shared pillars that carry the weight
// voltages. One kernel read drives every plane simultaneously, producing
// one output per plane — this is what makes batch processing one-shot.
type Stack struct {
	Planes []*Plane
	H, W   int
}

// NewStack builds n planes of size h×w.
func NewStack(n, h, w int) *Stack {
	if n <= 0 {
		panic(fmt.Sprintf("rram: invalid stack depth %d", n))
	}
	s := &Stack{H: h, W: w, Planes: make([]*Plane, n)}
	for i := range s.Planes {
		s.Planes[i] = NewPlane(h, w)
	}
	return s
}

// WriteImage stores a feature-map partition into plane i (one image of the
// batch per plane).
func (s *Stack) WriteImage(i int, x *tensor.Tensor) { s.Planes[i].Write(x) }

// ReadWindowAll applies one kernel window to every plane at once via the
// shared pillars and returns one accumulated output per plane.
func (s *Stack) ReadWindowAll(w *tensor.Tensor, oy, ox int) []float64 {
	out := make([]float64, len(s.Planes))
	for i, p := range s.Planes {
		out[i] = p.ReadWindow(w, oy, ox)
	}
	return out
}

// ConvolveAll slides the kernel across the h×w region of every plane,
// returning one output map per plane. In hardware all planes respond to
// the same pillar voltages, so the latency is that of a single plane; the
// per-plane energy is reflected in each plane's stats.
func (s *Stack) ConvolveAll(w *tensor.Tensor, h, wd, stride int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(s.Planes))
	for i, p := range s.Planes {
		out[i] = p.Convolve(w, h, wd, stride)
	}
	return out
}

// Stats returns the summed event counts across planes.
func (s *Stack) Stats() Stats {
	var t Stats
	for _, p := range s.Planes {
		t = t.Plus(p.Stats())
	}
	return t
}
