// Package rram models the resistive-RAM substrate of the INCA
// reproduction, from single cells up to the paper's two array organizations:
//
//   - the conventional 1T1R 2D crossbar used by weight-stationary (WS)
//     designs (ISAAC-class), which computes matrix-vector products by
//     column-wise current summation, and
//   - INCA's 2T1R direct-convolution vertical plane (paper §IV.A), where
//     two perpendicular transistor gates select an arbitrary kernel window
//     over a stored feature map, and the 3D horizontally-stacked
//     organization of those planes (paper §IV.B) whose shared pillars
//     broadcast one kernel to every plane of a batch.
//
// The models are functional — real numbers flow through them and the
// results are checked against the tensor reference — and every operation
// also reports the event counts the analytical simulators charge for.
package rram

import (
	"fmt"
	"math"
)

// Device carries the circuit-level cell parameters of Table II and derives
// per-event energies and latencies from them.
type Device struct {
	ROn  float64 // ohms, low-resistance state (240 kΩ)
	ROff float64 // ohms, high-resistance state (24 MΩ)

	ReadVoltage  float64 // V (0.5)
	WriteVoltage float64 // V (1.1)
	ReadPulse    float64 // s (10 ns)
	WritePulse   float64 // s (50 ns)

	OnCellPower  float64 // W dissipated by an on (low-R) cell under read (1.03 µW)
	OffCellPower float64 // W dissipated by an off cell under read (10.42 nW)

	// Name identifies the device technology.
	Name string
	// Endurance is the write-cycle budget a cell survives (0 = unknown /
	// unlimited). RRAM endurance is the §VI future-work concern; the
	// alternative candidates below let the IS dataflow be evaluated on
	// "more stable properties of other hardware".
	Endurance float64
}

// DefaultDevice returns the Table II circuit configuration: a
// TaOx/HfOx-class RRAM with ~1e9 write cycles (extrinsic doping pushes
// this 50× further per Kempen et al. [25]).
func DefaultDevice() Device {
	return Device{
		Name:         "RRAM (TaOx/HfOx)",
		ROn:          240e3,
		ROff:         24e6,
		ReadVoltage:  0.5,
		WriteVoltage: 1.1,
		ReadPulse:    10e-9,
		WritePulse:   50e-9,
		OnCellPower:  1.03e-6,
		OffCellPower: 10.42e-9,
		Endurance:    1e9,
	}
}

// PCMDevice returns a phase-change-memory candidate: faster set/reset at
// higher write energy, similar endurance class.
func PCMDevice() Device {
	return Device{
		Name:         "PCM",
		ROn:          50e3,
		ROff:         5e6,
		ReadVoltage:  0.3,
		WriteVoltage: 1.8,
		ReadPulse:    20e-9,
		WritePulse:   100e-9,
		OnCellPower:  1.8e-6,
		OffCellPower: 18e-9,
		Endurance:    1e9,
	}
}

// FeFETDevice returns a ferroelectric-FET candidate: very low write
// energy (field-driven, no programming current) with ~1e10 cycles.
func FeFETDevice() Device {
	return Device{
		Name:         "FeFET",
		ROn:          500e3,
		ROff:         50e6,
		ReadVoltage:  0.4,
		WriteVoltage: 3.0,
		ReadPulse:    10e-9,
		WritePulse:   20e-9,
		OnCellPower:  0.32e-6,
		OffCellPower: 3.2e-9,
		Endurance:    1e10,
	}
}

// SRAMCell returns a volatile CMOS candidate: effectively unlimited
// endurance and fast, cheap writes, at a much larger cell footprint (the
// trade the paper's §VI points toward for "more stable properties").
func SRAMCell() Device {
	return Device{
		Name:         "SRAM (8T CIM)",
		ROn:          100e3,
		ROff:         10e9,
		ReadVoltage:  0.8,
		WriteVoltage: 0.9,
		ReadPulse:    1e-9,
		WritePulse:   1e-9,
		OnCellPower:  0.5e-6,
		OffCellPower: 0.05e-9,
		Endurance:    1e16,
	}
}

// ReadEnergyOn returns the energy of reading one on-state cell.
func (d Device) ReadEnergyOn() float64 { return d.OnCellPower * d.ReadPulse }

// ReadEnergyOff returns the energy of reading one off-state cell.
func (d Device) ReadEnergyOff() float64 { return d.OffCellPower * d.ReadPulse }

// ReadEnergyAvg returns the expected per-cell read energy assuming a
// uniform mix of on and off cells — the figure the analytical simulators
// charge per cell-read event.
func (d Device) ReadEnergyAvg() float64 {
	return (d.ReadEnergyOn() + d.ReadEnergyOff()) / 2
}

// WriteEnergy returns the energy of one write pulse into a cell, estimated
// as V²/R_on × pulse width (worst case, cell driven to the low-resistance
// state).
func (d Device) WriteEnergy() float64 {
	return d.WriteVoltage * d.WriteVoltage / d.ROn * d.WritePulse
}

// OnOffRatio returns R_off / R_on, the device's dynamic range.
func (d Device) OnOffRatio() float64 { return d.ROff / d.ROn }

// Conductance maps a normalized cell value in [0, 1] to a conductance in
// [1/ROff, 1/ROn]. Values outside [0,1] are clamped — a real cell cannot
// exceed its physical range.
func (d Device) Conductance(v float64) float64 {
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	gOff := 1 / d.ROff
	gOn := 1 / d.ROn
	return gOff + v*(gOn-gOff)
}

// Value inverts Conductance, recovering the normalized stored value.
func (d Device) Value(g float64) float64 {
	gOff := 1 / d.ROff
	gOn := 1 / d.ROn
	v := (g - gOff) / (gOn - gOff)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Validate reports whether the device parameters are physically sensible.
func (d Device) Validate() error {
	if d.ROn <= 0 || d.ROff <= d.ROn {
		return fmt.Errorf("rram: need 0 < ROn < ROff, got %v, %v", d.ROn, d.ROff)
	}
	if d.ReadPulse <= 0 || d.WritePulse <= 0 {
		return fmt.Errorf("rram: pulses must be positive")
	}
	if d.ReadVoltage <= 0 || d.WriteVoltage <= d.ReadVoltage {
		return fmt.Errorf("rram: need 0 < read voltage < write voltage")
	}
	return nil
}

// Wear tracks per-cell write counts against a device endurance budget —
// the concern the paper's §VI ("Future Work for Endurance") raises for all
// trainable RRAM accelerators.
type Wear struct {
	writes    []int64
	Endurance int64 // writes a cell survives; 0 disables checking
	maxSeen   int64
}

// NewWear tracks cells number of cells with the given endurance budget.
func NewWear(cells int, endurance int64) *Wear {
	return &Wear{writes: make([]int64, cells), Endurance: endurance}
}

// RecordWrite notes one write to cell i and reports whether the cell is
// still within its endurance budget.
func (w *Wear) RecordWrite(i int) bool {
	w.writes[i]++
	if w.writes[i] > w.maxSeen {
		w.maxSeen = w.writes[i]
	}
	return w.Endurance == 0 || w.writes[i] <= w.Endurance
}

// MaxWrites returns the largest per-cell write count observed.
func (w *Wear) MaxWrites() int64 { return w.maxSeen }

// TotalWrites returns the total number of writes recorded.
func (w *Wear) TotalWrites() int64 {
	var s int64
	for _, v := range w.writes {
		s += v
	}
	return s
}

// RemainingFraction returns how much of the endurance budget the most-worn
// cell has left (1 when tracking is disabled).
func (w *Wear) RemainingFraction() float64 {
	if w.Endurance == 0 {
		return 1
	}
	return math.Max(0, 1-float64(w.maxSeen)/float64(w.Endurance))
}
