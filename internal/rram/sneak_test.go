package rram

import (
	"math"
	"math/rand"
	"testing"

	"github.com/inca-arch/inca/internal/tensor"
)

// TestSneakPathMotivatesSelectors demonstrates §II.A/§IV.A: a
// selector-less 1R crossbar's outputs deviate from the ideal MVM, the
// deviation grows with array size, and the transistor-gated crossbar
// (1T1R/2T1R) stays exact.
func TestSneakPathMotivatesSelectors(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	errAt := func(n int) float64 {
		w := tensor.Uniform(rng, 0, 1, n, n)
		x := tensor.Uniform(rng, 0, 1, n)

		gated := NewCrossbar(n, n)
		gated.Program(w)
		ideal := gated.MVM(x)

		bare := NewCrossbar1R(n, n, 0.02)
		bare.Program(w)
		leaky := bare.MVM(x)

		sum := 0.0
		for i := range ideal.Data() {
			sum += math.Abs(leaky.Data()[i] - ideal.Data()[i])
		}
		return sum / float64(n)
	}
	small := errAt(8)
	large := errAt(64)
	if small <= 0 {
		t.Fatal("1R array should show sneak-path error")
	}
	if large <= small {
		t.Fatalf("sneak error should grow with array size: %v vs %v", large, small)
	}
}

func TestSneakZeroLeakIsIdeal(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	w := tensor.Uniform(rng, 0, 1, 8, 8)
	x := tensor.Uniform(rng, 0, 1, 8)
	bare := NewCrossbar1R(8, 8, 0)
	bare.Program(w)
	gated := NewCrossbar(8, 8)
	gated.Program(w)
	if !bare.MVM(x).Equal(gated.MVM(x), 1e-12) {
		t.Fatal("zero-leak 1R should equal the gated crossbar")
	}
}

func TestSneakInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCrossbar1R(0, 8, 0.1)
}
