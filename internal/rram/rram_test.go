package rram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/inca-arch/inca/internal/tensor"
)

func TestDefaultDeviceMatchesTableII(t *testing.T) {
	d := DefaultDevice()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.ROn != 240e3 || d.ROff != 24e6 {
		t.Fatal("on/off resistance mismatch with Table II")
	}
	if d.ReadPulse != 10e-9 || d.WritePulse != 50e-9 {
		t.Fatal("pulse widths mismatch with Table II")
	}
	// Read energy of an on cell: 1.03 µW × 10 ns = 10.3 fJ.
	if got := d.ReadEnergyOn(); math.Abs(got-10.3e-15)/10.3e-15 > 1e-9 {
		t.Fatalf("ReadEnergyOn = %v, want 10.3fJ", got)
	}
	if d.OnOffRatio() != 100 {
		t.Fatalf("on/off ratio = %v, want 100", d.OnOffRatio())
	}
	// Writing costs more than reading (the asymmetry §V.B.2 discusses).
	if d.WriteEnergy() <= d.ReadEnergyOn() {
		t.Fatal("write energy should exceed read energy")
	}
}

func TestDeviceConductanceRoundTrip(t *testing.T) {
	d := DefaultDevice()
	for _, v := range []float64{0, 0.25, 0.5, 1} {
		if got := d.Value(d.Conductance(v)); math.Abs(got-v) > 1e-12 {
			t.Fatalf("Value(Conductance(%v)) = %v", v, got)
		}
	}
	// Clamping.
	if d.Conductance(2) != d.Conductance(1) {
		t.Fatal("over-range value should clamp")
	}
	if d.Conductance(-1) != d.Conductance(0) {
		t.Fatal("under-range value should clamp")
	}
}

func TestDeviceValidateCatchesBadParams(t *testing.T) {
	d := DefaultDevice()
	d.ROff = d.ROn
	if d.Validate() == nil {
		t.Fatal("Validate accepted ROff == ROn")
	}
	d = DefaultDevice()
	d.WriteVoltage = 0.1
	if d.Validate() == nil {
		t.Fatal("Validate accepted write voltage below read voltage")
	}
}

func TestWearTracking(t *testing.T) {
	w := NewWear(4, 3)
	for i := 0; i < 3; i++ {
		if !w.RecordWrite(0) {
			t.Fatal("writes within budget reported as failure")
		}
	}
	if w.RecordWrite(0) {
		t.Fatal("write beyond endurance budget should report failure")
	}
	if w.MaxWrites() != 4 {
		t.Fatalf("MaxWrites = %d, want 4", w.MaxWrites())
	}
	if w.TotalWrites() != 4 {
		t.Fatalf("TotalWrites = %d, want 4", w.TotalWrites())
	}
	if w.RemainingFraction() != 0 {
		t.Fatalf("RemainingFraction = %v, want 0", w.RemainingFraction())
	}
	unchecked := NewWear(1, 0)
	unchecked.RecordWrite(0)
	if unchecked.RemainingFraction() != 1 {
		t.Fatal("disabled endurance should report full budget")
	}
}

func TestNoiseModelZeroSigmaIsIdentity(t *testing.T) {
	n := NewNoiseModel(0, 1)
	x := tensor.FromSlice([]float64{1, -2, 3}, 3)
	if !n.PerturbTensor(x).Equal(x, 0) {
		t.Fatal("zero-sigma noise changed values")
	}
}

func TestNoiseModelStatistics(t *testing.T) {
	n := NewNoiseModel(0.05, 42)
	const trials = 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		d := n.Perturb(0, 1) // pure noise
		sum += d
		sumSq += d * d
	}
	mean := sum / trials
	std := math.Sqrt(sumSq/trials - mean*mean)
	if math.Abs(mean) > 0.002 {
		t.Fatalf("noise mean = %v, want ~0", mean)
	}
	if math.Abs(std-0.05) > 0.003 {
		t.Fatalf("noise std = %v, want ~0.05", std)
	}
}

func TestNoiseModelNegativeSigmaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNoiseModel(-0.1, 1)
}

// TestCrossbarMVMMatchesMatVec validates the WS array's functional
// behaviour against the tensor reference.
func TestCrossbarMVMMatchesMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := tensor.Randn(rng, 1, 16, 8)
	x := tensor.Randn(rng, 1, 16)
	c := NewCrossbar(16, 8)
	c.Program(w)
	got := c.MVM(x)
	// Reference: wT x computed per column.
	want := tensor.New(8)
	for col := 0; col < 8; col++ {
		s := 0.0
		for row := 0; row < 16; row++ {
			s += x.At(row) * w.At(row, col)
		}
		want.Set(s, col)
	}
	if !got.Equal(want, 1e-9) {
		t.Fatalf("MVM = %v, want %v", got, want)
	}
}

func TestCrossbarStats(t *testing.T) {
	c := NewCrossbar(4, 4)
	w := tensor.New(4, 4)
	w.Fill(1)
	c.Program(w)
	c.MVM(tensor.FromSlice([]float64{1, 1, 1, 1}, 4))
	c.MVM(tensor.FromSlice([]float64{1, 1, 1, 1}, 4))
	s := c.Stats()
	if s.CellWrites != 16 {
		t.Fatalf("CellWrites = %d, want 16", s.CellWrites)
	}
	if s.CellReads != 32 {
		t.Fatalf("CellReads = %d, want 32", s.CellReads)
	}
	if s.Outputs != 8 {
		t.Fatalf("Outputs = %d, want 8", s.Outputs)
	}
}

func TestCrossbarUsedFraction(t *testing.T) {
	c := NewCrossbar(4, 4)
	w := tensor.New(4, 4)
	w.Set(1, 0, 0)
	w.Set(1, 1, 1)
	c.Program(w)
	if got := c.UsedFraction(); math.Abs(got-2.0/16) > 1e-12 {
		t.Fatalf("UsedFraction = %v, want 0.125", got)
	}
}

func TestCrossbarNoiseDisturbsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w := tensor.Randn(rng, 1, 8, 8)
	x := tensor.Randn(rng, 1, 8)
	clean := NewCrossbar(8, 8)
	clean.Program(w)
	noisy := NewCrossbar(8, 8)
	noisy.SetNoise(NewNoiseModel(0.05, 99))
	noisy.Program(w)
	if clean.MVM(x).Equal(noisy.MVM(x), 1e-6) {
		t.Fatal("noisy crossbar produced identical output")
	}
}

func TestUniformQuantizer(t *testing.T) {
	q := UniformQuantizer(4, 8) // 8 levels each side, step 1
	if got := q(3.4); got != 3 {
		t.Fatalf("q(3.4) = %v, want 3", got)
	}
	if got := q(-3.6); got != -4 {
		t.Fatalf("q(-3.6) = %v, want -4", got)
	}
	if got := q(100); got != 8 {
		t.Fatalf("q(100) = %v, want clamp to 8", got)
	}
	if got := q(0); got != 0 {
		t.Fatalf("q(0) = %v, want 0", got)
	}
}

// TestPlaneDirectConvolutionMatchesTensor is the central functional claim
// of the paper: the 2T1R plane computes the same direct convolution as the
// mathematical definition (single channel).
func TestPlaneDirectConvolutionMatchesTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, cse := range []struct{ h, w, k, s int }{
		{6, 6, 3, 1}, {8, 8, 3, 2}, {5, 7, 2, 1}, {9, 9, 5, 2},
	} {
		x2 := tensor.Randn(rng, 1, cse.h, cse.w)
		k2 := tensor.Randn(rng, 1, cse.k, cse.k)
		p := NewPlane(cse.h, cse.w)
		p.Write(x2)
		got := p.Convolve(k2, cse.h, cse.w, cse.s)

		// Reference via tensor.Conv2D with 1 channel / 1 kernel.
		x3 := x2.Reshape(1, cse.h, cse.w)
		k4 := k2.Reshape(1, 1, cse.k, cse.k)
		want3 := tensor.Conv2D(x3, k4, tensor.ConvSpec{Stride: cse.s})
		want := want3.Reshape(want3.Dim(1), want3.Dim(2))
		if !got.Equal(want, 1e-9) {
			t.Fatalf("case %+v: plane conv mismatch", cse)
		}
	}
}

func TestPlaneReadWindowBounds(t *testing.T) {
	p := NewPlane(4, 4)
	k := tensor.New(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds window")
		}
	}()
	p.ReadWindow(k, 2, 2)
}

func TestPlaneOverwriteRecyclesCells(t *testing.T) {
	p := NewPlane(3, 3)
	a := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 3, 3)
	p.Write(a)
	e := tensor.FromSlice([]float64{9, 8, 7, 6, 5, 4, 3, 2, 1}, 3, 3)
	p.Overwrite(e)
	if p.At(0, 0) != 9 || p.At(2, 2) != 1 {
		t.Fatal("Overwrite did not replace stored activations")
	}
	if p.Stats().CellWrites != 18 {
		t.Fatalf("CellWrites = %d, want 18", p.Stats().CellWrites)
	}
}

func TestPlanePartialWriteKeepsRest(t *testing.T) {
	p := NewPlane(4, 4)
	full := tensor.New(4, 4)
	full.Fill(5)
	p.Write(full)
	small := tensor.New(2, 2)
	small.Fill(1)
	p.Write(small)
	if p.At(0, 0) != 1 || p.At(3, 3) != 5 {
		t.Fatal("partial write should only touch its region")
	}
}

// TestStackBatchParallel verifies the 3D claim: one kernel read returns
// one output per plane, each equal to that plane's own convolution.
func TestStackBatchParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const batch, h, w, k = 4, 6, 6, 3
	s := NewStack(batch, h, w)
	images := make([]*tensor.Tensor, batch)
	for i := range images {
		images[i] = tensor.Randn(rng, 1, h, w)
		s.WriteImage(i, images[i])
	}
	kern := tensor.Randn(rng, 1, k, k)
	outs := s.ConvolveAll(kern, h, w, 1)
	if len(outs) != batch {
		t.Fatalf("got %d outputs, want %d", len(outs), batch)
	}
	for i := range outs {
		solo := NewPlane(h, w)
		solo.Write(images[i])
		want := solo.Convolve(kern, h, w, 1)
		if !outs[i].Equal(want, 1e-12) {
			t.Fatalf("plane %d output differs from standalone plane", i)
		}
	}
}

func TestStackStatsAggregate(t *testing.T) {
	s := NewStack(2, 4, 4)
	img := tensor.New(4, 4)
	img.Fill(1)
	s.WriteImage(0, img)
	s.WriteImage(1, img)
	k := tensor.New(2, 2)
	k.Fill(1)
	s.ConvolveAll(k, 4, 4, 1)
	st := s.Stats()
	if st.CellWrites != 32 {
		t.Fatalf("CellWrites = %d, want 32", st.CellWrites)
	}
	// 9 windows × 4 cells × 2 planes.
	if st.CellReads != 72 {
		t.Fatalf("CellReads = %d, want 72", st.CellReads)
	}
	if st.Outputs != 18 {
		t.Fatalf("Outputs = %d, want 18", st.Outputs)
	}
}

// PROPERTY: the plane's sliding convolution agrees with tensor.Conv2D for
// random geometries — direct convolution in RRAM is exact.
func TestPropertyPlaneConvMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		h := k + rng.Intn(6)
		w := k + rng.Intn(6)
		s := 1 + rng.Intn(2)
		x2 := tensor.Randn(rng, 1, h, w)
		k2 := tensor.Randn(rng, 1, k, k)
		p := NewPlane(h, w)
		p.Write(x2)
		got := p.Convolve(k2, h, w, s)
		want3 := tensor.Conv2D(x2.Reshape(1, h, w), k2.Reshape(1, 1, k, k), tensor.ConvSpec{Stride: s})
		return got.Equal(want3.Reshape(want3.Dim(1), want3.Dim(2)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// PROPERTY: quantized MVM error is bounded by half an LSB per column for
// in-range currents.
func TestPropertyQuantizerErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 3 + rng.Intn(6)
		fs := 1 + rng.Float64()*10
		q := UniformQuantizer(bits, fs)
		step := fs / float64(int64(1)<<(bits-1))
		v := (rng.Float64()*2 - 1) * fs
		return math.Abs(q(v)-v) <= step/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// PROPERTY: stack read outputs are independent per plane — writing one
// plane never changes another plane's result.
func TestPropertyStackPlaneIsolation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStack(3, 5, 5)
		img := tensor.Randn(rng, 1, 5, 5)
		s.WriteImage(0, img)
		k := tensor.Randn(rng, 1, 2, 2)
		before := s.Planes[0].Convolve(k, 5, 5, 1)
		s.WriteImage(1, tensor.Randn(rng, 1, 5, 5))
		s.WriteImage(2, tensor.Randn(rng, 1, 5, 5))
		after := s.Planes[0].Convolve(k, 5, 5, 1)
		return before.Equal(after, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
