package rram

import (
	"fmt"

	"github.com/inca-arch/inca/internal/tensor"
)

// Crossbar1R models a selector-less (1R) crossbar to demonstrate the
// sneak-path problem the paper's §II.A and §IV.A discuss: "The sneak path
// current is inevitable in 1R-based arrays because RRAM is like a variable
// resistor ... 1T1R has become a standard in RRAM crossbar design to avoid
// the sneak path current issue" — and INCA's 2T1R "releases the concern of
// sneak path current by employing transistors".
//
// The model adds, per column read, a parasitic current proportional to the
// total conductance of the unselected cells: current from driven rows
// leaks through undriven rows' cells back into the measured column. The
// leak factor abstracts the voltage dividers of the three-cell sneak
// loops.
type Crossbar1R struct {
	rows, cols int
	cells      []float64
	// LeakFactor scales the parasitic contribution (0 = ideal; real
	// selector-less arrays see percents).
	LeakFactor float64
}

// NewCrossbar1R builds a selector-less rows×cols crossbar.
func NewCrossbar1R(rows, cols int, leak float64) *Crossbar1R {
	if rows <= 0 || cols <= 0 || leak < 0 {
		panic(fmt.Sprintf("rram: invalid 1R crossbar %dx%d leak %v", rows, cols, leak))
	}
	return &Crossbar1R{rows: rows, cols: cols, cells: make([]float64, rows*cols), LeakFactor: leak}
}

// Program writes the weight matrix (values act as conductances).
func (c *Crossbar1R) Program(w *tensor.Tensor) {
	if w.Rank() != 2 || w.Dim(0) != c.rows || w.Dim(1) != c.cols {
		panic(fmt.Sprintf("rram: Program wants [%d %d], got %v", c.rows, c.cols, w.Dims()))
	}
	copy(c.cells, w.Data())
}

// MVM drives x on the rows and returns the column currents including the
// sneak-path error term.
func (c *Crossbar1R) MVM(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 1 || x.Dim(0) != c.rows {
		panic(fmt.Sprintf("rram: MVM wants [%d], got %v", c.rows, x.Dims()))
	}
	out := tensor.New(c.cols)
	// Ideal term.
	for r := 0; r < c.rows; r++ {
		xv := x.At(r)
		for col := 0; col < c.cols; col++ {
			out.Set(out.At(col)+xv*c.cells[r*c.cols+col], col)
		}
	}
	if c.LeakFactor == 0 {
		return out
	}
	// Sneak term: driven current leaks through the mesh of unselected
	// cells. The aggregate alternative-path conductance seen by a column
	// grows with the array's total stored conductance and with the drive
	// level.
	var totalG, drive float64
	for _, g := range c.cells {
		if g > 0 {
			totalG += g
		} else {
			totalG -= g
		}
	}
	for _, v := range x.Data() {
		if v > 0 {
			drive += v
		} else {
			drive -= v
		}
	}
	sneak := c.LeakFactor * drive * totalG / float64(c.rows*c.cols)
	for col := 0; col < c.cols; col++ {
		out.Set(out.At(col)+sneak, col)
	}
	return out
}
