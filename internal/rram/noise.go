package rram

import (
	"fmt"
	"math/rand"

	"github.com/inca-arch/inca/internal/tensor"
)

// NoiseModel is the zero-centered normal perturbation the paper uses to
// model RRAM nonidealities — variation, nonlinearity and asymmetry —
// following Yu [65] (§V.B.7): "The noise strength (σ) was adjusted from
// 0.5% to 5% ... The noise was directly added to activations or weights
// during the training process."
type NoiseModel struct {
	// Sigma is the noise strength relative to the data range, e.g. 0.02
	// for the practically adopted 2%.
	Sigma float64
	rng   *rand.Rand
}

// NewNoiseModel returns a model with the given relative strength, seeded
// deterministically.
func NewNoiseModel(sigma float64, seed int64) *NoiseModel {
	if sigma < 0 {
		panic(fmt.Sprintf("rram: negative noise strength %v", sigma))
	}
	return &NoiseModel{Sigma: sigma, rng: rand.New(rand.NewSource(seed))}
}

// Perturb returns v plus zero-centered Gaussian noise whose standard
// deviation is Sigma × scale, where scale is the data range the relative
// strength refers to.
func (n *NoiseModel) Perturb(v, scale float64) float64 {
	if n.Sigma == 0 {
		return v
	}
	return v + n.rng.NormFloat64()*n.Sigma*scale
}

// PerturbTensor returns a noisy copy of t with additive zero-centered
// noise of standard deviation σ × RMS(t): the relative strength refers to
// the tensor's typical signal level, a robust proxy for the conductance
// range the data is mapped onto.
func (n *NoiseModel) PerturbTensor(t *tensor.Tensor) *tensor.Tensor {
	if n.Sigma == 0 {
		return t.Clone()
	}
	scale := t.RMS()
	out := t.Clone()
	data := out.Data()
	for i := range data {
		data[i] = n.Perturb(data[i], scale)
	}
	return out
}

// PerturbInPlace applies the same additive RMS-scaled noise directly into
// t and returns it.
func (n *NoiseModel) PerturbInPlace(t *tensor.Tensor) *tensor.Tensor {
	if n.Sigma == 0 {
		return t
	}
	scale := t.RMS()
	data := t.Data()
	for i := range data {
		data[i] = n.Perturb(data[i], scale)
	}
	return t
}
