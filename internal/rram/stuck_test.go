package rram

import (
	"testing"

	"github.com/inca-arch/inca/internal/tensor"
)

func TestStuckFaultsPinCellsThroughReprogramming(t *testing.T) {
	xb := NewCrossbar(2, 2)
	w := tensor.New(2, 2)
	copy(w.Data(), []float64{0.5, -1.0, 0.25, 0.75})
	xb.Program(w)

	// Cell 1 dies at HRS, cell 2 at LRS.
	xb.SetStuckFaults([]StuckFault{{Index: 1, LRS: false}, {Index: 2, LRS: true}})

	x := tensor.New(2)
	copy(x.Data(), []float64{1, 1})
	out := xb.MVM(x)
	// Column 0 = w[0][0] + stuck-LRS(=scale 1.0) = 0.5 + 1.0;
	// column 1 = stuck-HRS(0) + w[1][1] = 0.75.
	if got := out.Data()[0]; got != 1.5 {
		t.Fatalf("col 0 = %v, want 1.5 (stuck-at-LRS reads full-scale)", got)
	}
	if got := out.Data()[1]; got != 0.75 {
		t.Fatalf("col 1 = %v, want 0.75 (stuck-at-HRS reads zero)", got)
	}

	// Reprogramming cannot heal a dead device: the faults re-apply.
	w2 := tensor.New(2, 2)
	copy(w2.Data(), []float64{2, 2, 2, 2})
	xb.Program(w2)
	out = xb.MVM(x)
	if got := out.Data()[0]; got != 4 { // 2 + stuck-LRS(scale 2)
		t.Fatalf("after reprogram col 0 = %v, want 4", got)
	}
	if got := out.Data()[1]; got != 2 { // stuck-HRS(0) + 2
		t.Fatalf("after reprogram col 1 = %v, want 2", got)
	}
}

func TestStuckFaultsValidateIndices(t *testing.T) {
	xb := NewCrossbar(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range stuck fault did not panic")
		}
	}()
	xb.SetStuckFaults([]StuckFault{{Index: 4}})
}
