package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/inca-arch/inca/internal/fixed"
	"github.com/inca-arch/inca/internal/tensor"
)

// intConvReference computes the integer convolution of the quantized
// operands, the exact value the bit-serial machinery must reproduce.
func intConvReference(x, w *tensor.Tensor, bits, stride int) *tensor.Tensor {
	qx := fixed.NewQuantizer(bits, x.MaxAbs())
	qw := fixed.NewQuantizer(bits, w.MaxAbs())
	h, wd := x.Dim(0), x.Dim(1)
	kh, kw := w.Dim(0), w.Dim(1)
	oh := (h-kh)/stride + 1
	ow := (wd-kw)/stride + 1
	out := tensor.New(oh, ow)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			var sum int64
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					sum += qx.Quantize(x.At(oy*stride+ky, ox*stride+kx)) *
						qw.Quantize(w.At(ky, kx))
				}
			}
			out.Set(float64(sum)*qx.Scale*qw.Scale, oy, ox)
		}
	}
	return out
}

// TestBitSerialConvExact pins the §IV.C bit-serial equivalence: streaming
// weight bits over resident activation bit planes with nested shift
// accumulation reproduces the integer convolution exactly.
func TestBitSerialConvExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, cse := range []struct{ h, k, s, bits int }{
		{6, 3, 1, 8},
		{8, 3, 2, 8},
		{5, 2, 1, 4},
		{7, 3, 1, 6},
	} {
		x := tensor.Randn(rng, 1, cse.h, cse.h)
		w := tensor.Randn(rng, 0.5, cse.k, cse.k)
		got, stats := BitSerialConv2D(x, w, cse.bits, cse.s)
		want := intConvReference(x, w, cse.bits, cse.s)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("case %+v: bit-serial conv != integer reference", cse)
		}
		if stats.Outputs == 0 || stats.CellReads == 0 {
			t.Fatalf("case %+v: stats empty", cse)
		}
	}
}

// TestBitSerialApproximatesReal checks the quantized result approaches the
// real-valued convolution as bits grow.
func TestBitSerialApproximatesReal(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	x := tensor.Randn(rng, 1, 8, 8)
	w := tensor.Randn(rng, 0.5, 3, 3)
	real3 := tensor.Conv2D(x.Reshape(1, 8, 8), w.Reshape(1, 1, 3, 3), tensor.ConvSpec{Stride: 1})
	real2 := real3.Reshape(real3.Dim(1), real3.Dim(2))

	errAt := func(bits int) float64 {
		got, _ := BitSerialConv2D(x, w, bits, 1)
		sum := 0.0
		for i := range got.Data() {
			sum += math.Abs(got.Data()[i] - real2.Data()[i])
		}
		return sum
	}
	e4, e8 := errAt(4), errAt(8)
	if e8 >= e4 {
		t.Fatalf("8-bit error %v should be below 4-bit error %v", e8, e4)
	}
	if e8 > 0.5 {
		t.Fatalf("8-bit bit-serial error %v too large", e8)
	}
}

// TestBitSerialPerWindowSumsSmall verifies the 4-bit-ADC justification:
// every analog read of a 3×3 window accumulates at most 9 binary products.
func TestBitSerialPerWindowSumsSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	x := tensor.Randn(rng, 1, 6, 6)
	w := tensor.Randn(rng, 1, 3, 3)
	// With 3×3 kernels the per-read magnitude is ≤ 9, representable by a
	// 4-bit converter plus sign. We verify by quantizing the reads with a
	// 4+1-bit-equivalent range and still matching the integer reference.
	got, _ := BitSerialConv2D(x, w, 8, 1)
	want := intConvReference(x, w, 8, 1)
	if !got.Equal(want, 1e-9) {
		t.Fatal("bit-serial path diverged")
	}
}

// PROPERTY: bit-serial conv equals the integer reference for random small
// geometries and bit depths.
func TestPropertyBitSerialConv(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		h := k + rng.Intn(5)
		s := 1 + rng.Intn(2)
		bits := 3 + rng.Intn(6)
		x := tensor.Randn(rng, 1, h, h)
		w := tensor.Randn(rng, 0.5, k, k)
		got, _ := BitSerialConv2D(x, w, bits, s)
		return got.Equal(intConvReference(x, w, bits, s), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
