package core

import (
	"testing"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/baseline"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

func machine() *Machine { return New(arch.INCA()) }

func TestMapSpatialConv(t *testing.T) {
	m := machine()
	l := nn.Layer{Kind: nn.Conv, InC: 64, OutC: 64, InH: 224, InW: 224,
		OutH: 224, OutW: 224, KH: 3, KW: 3, Stride: 1, Pad: 1}
	mp := m.Map(l)
	if mp.Groups != 64 {
		t.Fatalf("Groups = %d, want 64", mp.Groups)
	}
	// 224/16 = 14 partitions per side.
	if mp.TotalArrays != 14*14*64*8 {
		t.Fatalf("TotalArrays = %d, want %d", mp.TotalArrays, 14*14*64*8)
	}
	if mp.Windows != 224*224 || mp.WindowCells != 9 {
		t.Fatalf("windows/cells = %d/%d", mp.Windows, mp.WindowCells)
	}
	// Exact tiling: full utilization.
	if mp.Utilization != 1.0 {
		t.Fatalf("Utilization = %v, want 1", mp.Utilization)
	}
	if mp.SerialOut != 64 {
		t.Fatalf("SerialOut = %d, want 64 (kernels stream sequentially)", mp.SerialOut)
	}
}

func TestMapConvPartialTile(t *testing.T) {
	m := machine()
	// 14×14 map on 16×16 planes: one partition, 196/256 utilization.
	l := nn.Layer{Kind: nn.Conv, InC: 512, OutC: 512, InH: 14, InW: 14,
		OutH: 14, OutW: 14, KH: 3, KW: 3, Stride: 1, Pad: 1}
	mp := m.Map(l)
	if mp.TotalArrays != 512*8 {
		t.Fatalf("TotalArrays = %d, want %d", mp.TotalArrays, 512*8)
	}
	want := 196.0 / 256.0
	if mp.Utilization != want {
		t.Fatalf("Utilization = %v, want %v", mp.Utilization, want)
	}
}

func TestMapPointwiseFold(t *testing.T) {
	m := machine()
	// Pointwise with 512 channels folds onto 2 planes of 256.
	l := nn.Layer{Kind: nn.Conv, InC: 512, OutC: 128, InH: 14, InW: 14,
		OutH: 14, OutW: 14, KH: 1, KW: 1, Stride: 1}
	mp := m.Map(l)
	if mp.Groups != 2 {
		t.Fatalf("Groups = %d, want 2 fold groups", mp.Groups)
	}
	if mp.WindowCells != 256 {
		t.Fatalf("WindowCells = %d, want 256", mp.WindowCells)
	}
	if mp.Utilization != 1.0 {
		t.Fatalf("Utilization = %v, want 1 (512 divides 2 planes)", mp.Utilization)
	}
	if mp.SerialWindows != 1 {
		t.Fatalf("SerialWindows = %d, want 1 (positions parallel)", mp.SerialWindows)
	}
}

func TestMapPointwisePacking(t *testing.T) {
	m := machine()
	// 32-channel pointwise packs 8 positions per plane.
	l := nn.Layer{Kind: nn.Conv, InC: 32, OutC: 16, InH: 112, InW: 112,
		OutH: 112, OutW: 112, KH: 1, KW: 1, Stride: 1}
	mp := m.Map(l)
	if mp.SerialWindows != 8 {
		t.Fatalf("SerialWindows = %d, want 8 (packed positions serialize)", mp.SerialWindows)
	}
	if mp.Utilization != 1.0 {
		t.Fatalf("Utilization = %v, want 1 (8×32 = 256)", mp.Utilization)
	}
}

func TestMapDepthwiseParallelChannels(t *testing.T) {
	m := machine()
	l := nn.Layer{Kind: nn.Depthwise, InC: 576, OutC: 576, InH: 14, InW: 14,
		OutH: 14, OutW: 14, KH: 3, KW: 3, Stride: 1, Pad: 1}
	mp := m.Map(l)
	if mp.Groups != 1 {
		t.Fatalf("Groups = %d, want 1 (no cross-channel accumulation)", mp.Groups)
	}
	if mp.SerialOut != 1 {
		t.Fatalf("SerialOut = %d, want 1 (per-channel arrays take their own kernels)", mp.SerialOut)
	}
}

func TestMapFC(t *testing.T) {
	m := machine()
	l := nn.Layer{Kind: nn.FC, InC: 4096, OutC: 1000, InH: 1, InW: 1, OutH: 1, OutW: 1}
	mp := m.Map(l)
	if mp.Groups != 16 {
		t.Fatalf("Groups = %d, want 16 (4096/256)", mp.Groups)
	}
	if mp.Windows != 1 || mp.SerialOut != 1000 {
		t.Fatalf("windows/serialOut = %d/%d", mp.Windows, mp.SerialOut)
	}
}

func TestHaloFraction(t *testing.T) {
	if haloFraction(1, 16) != 0 {
		t.Fatal("1x1 kernels have no halo")
	}
	h3 := haloFraction(3, 16)
	want := 1 - (14.0/16)*(14.0/16)
	if h3 != want {
		t.Fatalf("halo(3,16) = %v, want %v", h3, want)
	}
	if h5 := haloFraction(5, 16); h5 <= h3 {
		t.Fatal("larger kernels must have more halo")
	}
}

func TestSimulateInferenceBasics(t *testing.T) {
	m := machine()
	rep := m.Simulate(nn.ResNet18(), sim.Inference)
	if rep.Total.Energy.Total() <= 0 || rep.Total.Latency <= 0 {
		t.Fatal("inference must cost energy and time")
	}
	if rep.Total.Counts.RRAMWrites == 0 {
		t.Fatal("IS dataflow must write activations into RRAM")
	}
}

func TestTrainingCostsMoreThanInference(t *testing.T) {
	m := machine()
	inf := m.Simulate(nn.ResNet18(), sim.Inference)
	trn := m.Simulate(nn.ResNet18(), sim.Training)
	if trn.Total.Energy.Total() <= inf.Total.Energy.Total() {
		t.Fatal("training energy should exceed inference")
	}
	if trn.Total.Latency <= inf.Total.Latency {
		t.Fatal("training latency should exceed inference")
	}
	// But batch parallelism keeps training within ~5x of inference
	// latency (three batch-parallel passes), unlike the WS baseline.
	if trn.Total.Latency > 6*inf.Total.Latency {
		t.Fatalf("training/inference latency = %.1f, want <= 6 (batch-parallel backward)",
			trn.Total.Latency/inf.Total.Latency)
	}
}

// TestFig11EnergyAndFig14Speedup pins the headline comparison shapes
// across all six networks: INCA beats the WS baseline in both energy and
// latency, the training advantage exceeds the inference advantage, and
// the light models gain at least an order of magnitude more energy
// efficiency than the heavy models.
func TestFig11EnergyAndFig14Speedup(t *testing.T) {
	inca := machine()
	base := baseline.New(arch.Baseline())

	type ratios struct{ eInf, sInf, eTrn, sTrn float64 }
	all := map[string]ratios{}
	for _, net := range nn.PaperModels() {
		ai := inca.Simulate(net, sim.Inference)
		bi := base.Simulate(net, sim.Inference)
		at := inca.Simulate(net, sim.Training)
		bt := base.Simulate(net, sim.Training)
		r := ratios{
			eInf: ai.Total.EnergyEfficiencyVs(bi.Total),
			sInf: ai.Total.SpeedupVs(bi.Total),
			eTrn: at.Total.EnergyEfficiencyVs(bt.Total),
			sTrn: at.Total.SpeedupVs(bt.Total),
		}
		all[net.Name] = r
		if r.eInf < 1.5 {
			t.Errorf("%s: inference energy ratio = %.2f, want >= 1.5", net.Name, r.eInf)
		}
		if r.sInf < 1.5 {
			t.Errorf("%s: inference speedup = %.2f, want >= 1.5", net.Name, r.sInf)
		}
		if r.eTrn < r.eInf*0.9 {
			t.Errorf("%s: training energy ratio %.2f should not fall below inference %.2f",
				net.Name, r.eTrn, r.eInf)
		}
		if r.sTrn <= r.sInf {
			t.Errorf("%s: training speedup %.2f should exceed inference %.2f (batch parallelism)",
				net.Name, r.sTrn, r.sInf)
		}
	}
	// Light models gain far more than heavy models (paper: 80x/3873x vs
	// 20.6x/260x class results).
	for _, light := range []string{"MobileNetV2", "MNasNet"} {
		for _, heavy := range []string{"VGG16", "VGG19", "ResNet18", "ResNet50"} {
			if all[light].eInf < 3*all[heavy].eInf {
				t.Errorf("light %s inference energy ratio %.1f should be >= 3x heavy %s (%.1f)",
					light, all[light].eInf, heavy, all[heavy].eInf)
			}
			if all[light].sTrn < 3*all[heavy].sTrn {
				t.Errorf("light %s training speedup %.1f should be >= 3x heavy %s (%.1f)",
					light, all[light].sTrn, heavy, all[heavy].sTrn)
			}
		}
	}
}

// TestFig13aADCEnergyRatio pins "ADCs of INCA spend 5× less energy in
// total than ADCs of the baseline" for VGG16 (band 3..8).
func TestFig13aADCEnergyRatio(t *testing.T) {
	inca := machine().Simulate(nn.VGG16(), sim.Inference)
	base := baseline.New(arch.Baseline()).Simulate(nn.VGG16(), sim.Inference)
	ratio := base.Total.Energy.Of(metrics.ADC) / inca.Total.Energy.Of(metrics.ADC)
	if ratio < 3 || ratio > 8 {
		t.Fatalf("ADC energy ratio = %.2f, want within [3, 8] (paper: 5x)", ratio)
	}
}

// TestFig13bReducedMemoryShare pins the breakdown comparison: INCA's
// DRAM+buffer share is far below the WS baseline's (Fig. 6 vs Fig. 13b).
func TestFig13bReducedMemoryShare(t *testing.T) {
	icfg := arch.INCA()
	icfg.BatchSize = 1
	bcfg := arch.Baseline()
	bcfg.BatchSize = 1
	inca := New(icfg).Simulate(nn.VGG16(), sim.Inference)
	base := baseline.New(bcfg).Simulate(nn.VGG16(), sim.Inference)
	memShare := func(r *sim.Report) float64 {
		return r.Total.Energy.Share(metrics.DRAM) + r.Total.Energy.Share(metrics.Buffer)
	}
	if memShare(inca) >= memShare(base) {
		t.Fatalf("INCA memory share %.2f should be below baseline %.2f",
			memShare(inca), memShare(base))
	}
}

// TestFig16aUtilizationVsArraySize pins the array-size sweep: INCA's
// utilization decreases monotonically as the subarray grows, and 16×16
// stays competitive (>= 0.7 for VGG16).
func TestFig16aUtilizationVsArraySize(t *testing.T) {
	var prev float64 = 2
	for _, s := range []int{8, 16, 32, 64, 128} {
		cfg := arch.INCA()
		cfg.SubarrayRows, cfg.SubarrayCols = s, s
		u := New(cfg).Simulate(nn.VGG16(), sim.Inference).Utilization()
		if u >= prev {
			t.Fatalf("utilization did not decrease at size %d: %.3f >= %.3f", s, u, prev)
		}
		if s == 16 && u < 0.7 {
			t.Fatalf("16x16 utilization = %.3f, want >= 0.7 (the paper's optimized size)", u)
		}
		prev = u
	}
}

// TestFig16bINCAUtilizationFlat pins that INCA keeps utilization high
// for light models while the baseline collapses.
func TestFig16bINCAUtilizationFlat(t *testing.T) {
	m := machine()
	for _, net := range nn.PaperModels() {
		u := m.Simulate(net, sim.Inference).Utilization()
		if u < 0.5 {
			t.Errorf("%s: INCA utilization = %.3f, want >= 0.5 (maintained across networks)",
				net.Name, u)
		}
	}
}

// TestAblationWriteOverlap pins §V.B.2: disabling the write/read overlap
// increases latency.
func TestAblationWriteOverlap(t *testing.T) {
	on := machine().Simulate(nn.ResNet18(), sim.Inference)
	cfg := arch.INCA()
	cfg.WriteReadOverlap = false
	off := New(cfg).Simulate(nn.ResNet18(), sim.Inference)
	if off.Total.Latency <= on.Total.Latency {
		t.Fatalf("exposed writes should be slower: %v vs %v",
			off.Total.Latency, on.Total.Latency)
	}
}

// TestAblationBatchParallelism pins the source of the training gains: a
// single-plane INCA (no 3D batch parallelism) loses most of its training
// latency advantage per image.
func TestAblationBatchParallelism(t *testing.T) {
	full := machine().Simulate(nn.ResNet18(), sim.Training)
	cfg := arch.INCA()
	cfg.StackedPlanes = 1
	cfg.BatchSize = 1
	single := New(cfg).Simulate(nn.ResNet18(), sim.Training)
	perImageFull := full.Total.Latency / float64(full.Batch)
	perImageSingle := single.Total.Latency / float64(single.Batch)
	if perImageFull >= perImageSingle {
		t.Fatalf("batch parallelism should cut per-image latency: %v vs %v",
			perImageFull, perImageSingle)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := arch.INCA()
	cfg.SubarrayRows = -1
	New(cfg)
}
