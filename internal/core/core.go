// Package core implements the paper's primary contribution: the INCA
// input-stationary crossbar accelerator simulator.
//
// Activations live in 2T1R direct-convolution planes organized as 3D
// horizontally-stacked arrays (one batch image per plane, shared weight
// pillars); weights stream bit-serially from the buffer/DRAM hierarchy.
// The mapper follows §IV.C: feature maps are partitioned onto 16×16
// subarrays (one RRAM per activation bit), the same window of different
// input channels lands in one macro whose adder tree accumulates across
// channels, halo positions are gathered by partial-sum adders, outputs
// propagate directly into the next layer's arrays, and — during training —
// computed errors overwrite the activation cells they replace.
package core

import (
	"github.com/inca-arch/inca/internal/analog"
	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/mem"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/noc"
	"github.com/inca-arch/inca/internal/place"
	"github.com/inca-arch/inca/internal/sim"
)

// Machine is a configured INCA accelerator.
type Machine struct {
	Cfg  arch.Config
	hier mem.Hierarchy
	adc  analog.ADC
	dac  analog.DAC
	dig  analog.Digital
	tree noc.HTree
}

// New builds a machine from a configuration (normally arch.INCA()).
func New(cfg arch.Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic("core: " + err.Error())
	}
	return &Machine{
		Cfg:  cfg,
		hier: mem.Hierarchy{Buf: cfg.Buffer, Dram: cfg.DRAM},
		adc:  analog.NewADC(cfg.ADCBits),
		dac:  analog.NewDAC(1),
		dig:  analog.NewDigital(),
		tree: noc.Standard(cfg.MacroSize, cfg.TileSize, cfg.Tiles),
	}
}

// Mapping captures how one layer's activations map onto the 3D arrays.
//
// Two layouts exist (§IV.C). *Spatial* mapping (regular and depthwise
// convolution): each channel's feature map is partitioned onto 16×16
// planes and one window is read per partition per cycle, with the macro
// adder tree accumulating across channels. *Folded* mapping (pointwise and
// FC): the accumulation dimension — the input channel vector — is folded
// into the 2D plane so a whole dot product is read in one shot, one plane
// group per output position.
type Mapping struct {
	Groups      int   // arrays accumulated per window (channels or fold groups)
	OutChannels int   // kernels streamed
	Windows     int64 // output positions (OH×OW, 1 for FC)
	WindowCells int64 // cells selected per window per group

	// Serialization structure for latency: each array processes
	// SerialWindows positions sequentially, and SerialOut output channels
	// must share the same arrays (1 for depthwise, whose per-channel
	// arrays take their own kernels concurrently). TotalArrays is the 3D
	// array demand; exceeding the chip forces time multiplexing.
	SerialWindows int64
	SerialOut     int64
	TotalArrays   int64

	HaloFraction float64
	WeightBytes  int64 // kernel data fetched per batch
	Utilization  float64
}

// Map computes the intra-layer mapping of §IV.C for a compute layer.
func (m *Machine) Map(l nn.Layer) Mapping {
	s := m.Cfg.SubarrayRows // square subarrays
	cellsPerPlane := s * s
	var mp Mapping
	switch {
	case l.Kind == nn.Conv && l.KH == 1 && l.KW == 1:
		// Pointwise: fold input channels onto the plane ("we fold the
		// dimension which requires accumulation to the 2D plane"). When a
		// channel vector is shorter than the plane, several output
		// positions pack into one plane (their reads then serialize);
		// positions on distinct planes proceed in parallel.
		groups := ceilInt(l.InC, cellsPerPlane)
		posPerPlane := 1
		if l.InC < cellsPerPlane {
			posPerPlane = cellsPerPlane / l.InC
		}
		mp.Groups = groups
		mp.OutChannels = l.OutC
		mp.Windows = int64(l.OutH) * int64(l.OutW)
		mp.WindowCells = int64(minInt(l.InC, cellsPerPlane))
		mp.SerialWindows = int64(minInt(posPerPlane, int(mp.Windows)))
		mp.SerialOut = int64(l.OutC)
		mp.TotalArrays = ceil64(mp.Windows, int64(posPerPlane)) * int64(groups) * int64(m.Cfg.ActPlanes())
		mp.Utilization = float64(int64(l.InC)*mp.Windows) /
			float64(mp.TotalArrays/int64(m.Cfg.ActPlanes())*int64(cellsPerPlane))
		mp.WeightBytes = l.WeightParams() * int64(m.Cfg.WeightBits) / 8
	case l.Kind == nn.Conv:
		partsH := ceilInt(l.InH, s)
		partsW := ceilInt(l.InW, s)
		parts := int64(partsH) * int64(partsW)
		mp.Groups = l.InC
		mp.OutChannels = l.OutC
		mp.Windows = int64(l.OutH) * int64(l.OutW)
		mp.WindowCells = int64(l.KH) * int64(l.KW)
		mp.SerialWindows = ceil64(mp.Windows, parts)
		mp.SerialOut = int64(l.OutC)
		mp.TotalArrays = parts * int64(l.InC) * int64(m.Cfg.ActPlanes())
		mp.Utilization = float64(l.InH*l.InW) / float64(partsH*partsW*cellsPerPlane)
		mp.HaloFraction = haloFraction(l.KH, s)
		mp.WeightBytes = l.WeightParams() * int64(m.Cfg.WeightBits) / 8
	case l.Kind == nn.Depthwise:
		partsH := ceilInt(l.InH, s)
		partsW := ceilInt(l.InW, s)
		parts := int64(partsH) * int64(partsW)
		mp.Groups = 1 // no accumulation across channels (Fig. 3b)
		mp.OutChannels = l.OutC
		mp.Windows = int64(l.OutH) * int64(l.OutW)
		mp.WindowCells = int64(l.KH) * int64(l.KW)
		mp.SerialWindows = ceil64(mp.Windows, parts)
		// Each output channel reads only its own channel's arrays, so the
		// channel loop runs concurrently across arrays.
		mp.SerialOut = 1
		mp.TotalArrays = parts * int64(l.InC) * int64(m.Cfg.ActPlanes())
		mp.Utilization = float64(l.InH*l.InW) / float64(partsH*partsW*cellsPerPlane)
		mp.HaloFraction = haloFraction(l.KH, s)
		mp.WeightBytes = l.WeightParams() * int64(m.Cfg.WeightBits) / 8
	case l.Kind == nn.FC:
		groups := ceilInt(l.InC, cellsPerPlane)
		mp.Groups = groups
		mp.OutChannels = l.OutC
		mp.Windows = 1
		mp.WindowCells = int64(minInt(l.InC, cellsPerPlane))
		mp.SerialWindows = 1
		mp.SerialOut = int64(l.OutC)
		mp.TotalArrays = int64(groups) * int64(m.Cfg.ActPlanes())
		mp.Utilization = float64(l.InC) / float64(groups*cellsPerPlane)
		mp.WeightBytes = l.WeightParams() * int64(m.Cfg.WeightBits) / 8
	}
	return mp
}

// haloFraction estimates the fraction of windows whose cells straddle a
// partition boundary and therefore need a cross-partition partial-sum
// gather (§IV.C "halo").
func haloFraction(k, s int) float64 {
	if k <= 1 {
		return 0
	}
	interior := float64(s-k+1) / float64(s)
	if interior < 0 {
		interior = 0
	}
	return 1 - interior*interior
}

// pass charges one batch-parallel compute pass of a mapped workload.
// Planes hold the batch: reads and conversions scale with the batch, but
// the shared pillars mean the weight streaming (DAC events, fetch traffic,
// and latency) does not.
func (m *Machine) pass(mp Mapping) metrics.Result {
	var r metrics.Result
	if mp.Windows == 0 {
		return r
	}
	b := int64(m.Cfg.BatchSize)
	actPlanes := int64(m.Cfg.ActPlanes())
	wBits := int64(m.Cfg.WeightBits)
	dev := m.Cfg.Device

	// Per window, per output channel, per weight-bit cycle:
	//   reads: window cells × channels × activation bit-plane arrays × B
	//   DACs:  window cells × channels × bit-plane arrays (pillars shared
	//          across the B planes of a stack)
	//   ADC:   macro-aggregated conversions per plane.
	// Weight bits stream through 1-bit drivers, so on average half the
	// weight-bit cycles drive a pillar (pillarActivity); driven cells
	// dissipate the on/off average over the stored activation bits.
	const pillarActivity = 0.5
	arraysPerWindow := int64(mp.Groups) * actPlanes
	adcPerWindow := ceil64(arraysPerWindow, int64(m.Cfg.SubarraysPerADC)) * b
	readsPerWindow := mp.WindowCells * arraysPerWindow * b
	dacPerWindow := mp.WindowCells * arraysPerWindow

	events := mp.Windows * int64(mp.OutChannels) * wBits
	r.Counts.RRAMReads = readsPerWindow * events
	r.Counts.ADCConversions = adcPerWindow * events
	r.Counts.DACConversions = dacPerWindow * events
	// Adder tree across channels/partitions + shift-accumulate + halo
	// gathers.
	adds := adcPerWindow*events +
		int64(float64(mp.Windows)*mp.HaloFraction)*int64(mp.OutChannels)*b
	r.Counts.DigitalOps = adds

	// 2T1R gating keeps unselected cells off: no off-cell leakage charge —
	// one of the structural IS advantages.
	r.Energy.Add(metrics.RRAMArray, float64(r.Counts.RRAMReads)*pillarActivity*dev.ReadEnergyAvg())
	r.Energy.Add(metrics.ADC, m.adc.ConversionEnergy(r.Counts.ADCConversions))
	r.Energy.Add(metrics.DAC, float64(r.Counts.DACConversions)*pillarActivity*m.dac.EnergyPerConv)
	r.Energy.Add(metrics.Digital, float64(adds)*m.dig.AddEnergy)

	// Interconnect: the per-plane converted partials reduce through the
	// macro/tile adder H-tree, and each streamed weight bit broadcasts to
	// the partition arrays sharing the kernel.
	reduceJ, _ := m.tree.ReduceCost(ceil64(arraysPerWindow, int64(m.Cfg.SubarraysPerADC)))
	partitions := ceil64(mp.TotalArrays, int64(mp.Groups)*actPlanes)
	bcastJ, _ := m.tree.BroadcastCost(partitions)
	// One broadcast per streamed kernel value per serialized cycle serves
	// every parallel partition array at once.
	bcastCycles := float64(mp.SerialWindows * mp.SerialOut * wBits)
	bcastValues := float64(mp.WindowCells) * float64(mp.Groups)
	r.Energy.Add(metrics.Digital,
		reduceJ*float64(events)*float64(b)+
			bcastJ*bcastCycles*bcastValues*pillarActivity)

	// Weight fetch: each kernel is fetched once per batch and reused for
	// every window and every plane (the IS key insight).
	fetchBits := mp.WeightBytes * 8
	res := m.hier.ResidentFraction(mp.WeightBytes)
	bufJ, dramJ, memLat := m.hier.TrafficCost(fetchBits, res, false)
	r.Energy.Add(metrics.Buffer, bufJ)
	r.Energy.Add(metrics.DRAM, dramJ)
	r.Counts.BufferAccesses = m.Cfg.Buffer.Beats(fetchBits)
	r.Counts.DRAMAccesses = int64(float64(fetchBits/8) * (1 - res))

	// Latency. Every partition array slides its own window concurrently
	// (the high-parallelism argument of §III.B), so the serial dimensions
	// are windows-per-partition × output channels × weight-bit cycles —
	// throttled by two shared resources:
	//   * array capacity: a layer needing more 3D arrays than exist is
	//     time-multiplexed, and
	//   * ADC throughput: macro-shared 4-bit converters drain at most
	//     ADCCount × readPulse/convLatency conversions per read cycle.
	multiplex := ceil64(mp.TotalArrays, int64(m.Cfg.Subarrays()))
	serialCycles := mp.SerialWindows * mp.SerialOut * wBits * multiplex
	readBound := float64(serialCycles) * dev.ReadPulse

	adcBound := float64(r.Counts.ADCConversions) * m.adc.ConvLatency / float64(m.Cfg.ADCCount())

	compute := readBound
	if adcBound > compute {
		compute = adcBound
	}
	if !m.Cfg.WriteReadOverlap {
		// Ablation: expose the RRAM write of each produced output batch
		// instead of hiding it behind the next reads (§V.B.2).
		compute += float64(mp.SerialWindows*mp.SerialOut) * dev.WritePulse
	}
	r.Latency = compute
	if memLat > r.Latency {
		r.Latency = memLat
	}
	return r
}

// writeActivations charges the propagation of a layer's outputs into the
// next layer's RRAM arrays (elems × bit planes × batch cell writes); with
// WriteReadOverlap the pulses hide behind compute and add no latency.
func (m *Machine) writeActivations(elems int64) metrics.Result {
	var r metrics.Result
	b := int64(m.Cfg.BatchSize)
	writes := elems * int64(m.Cfg.ActivationBits) * b
	r.Counts.RRAMWrites = writes
	r.Energy.Add(metrics.RRAMArray, float64(writes)*m.Cfg.Device.WriteEnergy())
	if !m.Cfg.WriteReadOverlap {
		// All arrays write in parallel; one pulse per output position.
		r.Latency = m.Cfg.Device.WritePulse
	}
	return r
}

// forwardLayer returns the batch forward cost of one compute layer:
// the streamed-weight convolution plus the propagation of outputs into the
// next layer's arrays.
func (m *Machine) forwardLayer(l nn.Layer) metrics.Result {
	r := m.pass(m.Map(l))
	return r.Plus(m.writeActivations(l.OutputElems()))
}

// backwardLayer models Eq. 3: the transposed-weight convolution that turns
// δ_{l+1} into δ_l, with the computed errors overwriting the activation
// cells (no extra RRAM, §IV.C Backward) and the ReLU gradient applied by
// AND gates.
func (m *Machine) backwardLayer(l nn.Layer) metrics.Result {
	t := l
	t.InC, t.OutC = l.OutC, l.InC
	t.InH, t.InW, t.OutH, t.OutW = l.OutH, l.OutW, l.InH, l.InW
	r := m.pass(m.Map(t))
	// Errors overwrite the layer's activation cells.
	r = r.Plus(m.writeActivations(l.InputElems()))
	// AND-gate ReLU gradient.
	var relu metrics.Result
	relu.Counts.DigitalOps = l.InputElems() * int64(m.Cfg.BatchSize)
	relu.Energy.Add(metrics.Digital, float64(relu.Counts.DigitalOps)*m.dig.AddEnergy)
	return r.Plus(relu)
}

// updateLayer models Eq. 4: the δ*x convolution producing weight
// gradients (same MAC volume as the forward pass, batch-parallel on the
// resident activations) and the cheap weight write-back to conventional
// memory — the structural reason IS training needs no extra RRAM.
func (m *Machine) updateLayer(l nn.Layer) metrics.Result {
	r := m.pass(m.Map(l))
	bits := l.WeightParams() * int64(m.Cfg.WeightBits)
	res := m.hier.ResidentFraction(bits / 8)
	bufJ, dramJ, lat := m.hier.TrafficCost(bits, res, true)
	r.Energy.Add(metrics.Buffer, bufJ)
	r.Energy.Add(metrics.DRAM, dramJ)
	r.Latency += lat
	return r
}

// Simulate executes one batch of the network in the given phase.
func (m *Machine) Simulate(net *nn.Network, phase sim.Phase) *sim.Report {
	rep := &sim.Report{
		Arch:    m.Cfg.Name,
		Network: net.Name,
		Phase:   phase,
		Batch:   m.Cfg.BatchSize,
	}
	var total metrics.Result

	// Load the input images from DRAM into the first layer's arrays.
	inputBytes := int64(net.InputC*net.InputH*net.InputW) * int64(m.Cfg.BatchSize)
	var load metrics.Result
	load.Energy.Add(metrics.DRAM, m.Cfg.DRAM.Energy(inputBytes))
	load.Latency = m.Cfg.DRAM.TransferTime(inputBytes, 0.5)
	load = load.Plus(m.writeActivations(int64(net.InputC * net.InputH * net.InputW)))
	total = total.Plus(load)

	// Batches wider than the 3D stack depth spill into multiple plane
	// passes: energy already scales with BatchSize, but the latency
	// advantage only covers StackedPlanes images at a time.
	passes := 1.0
	if m.Cfg.BatchSize > m.Cfg.StackedPlanes {
		passes = float64(ceilInt(m.Cfg.BatchSize, m.Cfg.StackedPlanes))
	}

	for _, l := range net.Layers {
		if !l.IsCompute() {
			// Post-processing units (ReLU, pooling, residual adders)
			// operate element-wise in the digital tile periphery,
			// pipelined behind the array compute.
			total = total.Plus(m.postProcess(l))
			continue
		}
		mp := m.Map(l)
		lr := sim.LayerResult{
			Layer:          l,
			Utilization:    mp.Utilization,
			AllocatedCells: mp.TotalArrays * int64(m.Cfg.SubarrayRows) * int64(m.Cfg.SubarrayCols),
		}
		layer := m.forwardLayer(l)
		if phase == sim.Training {
			layer = layer.Plus(m.backwardLayer(l))
			layer = layer.Plus(m.updateLayer(l))
			// Transposed weights are fetched again from the ordinary
			// weight buffer ("the training process may double the accesses
			// in INCA", §V.B.1).
			fetchBits := mp.WeightBytes * 8
			res := m.hier.ResidentFraction(mp.WeightBytes)
			bufJ, dramJ, lat := m.hier.TrafficCost(fetchBits, res, false)
			layer.Energy.Add(metrics.Buffer, bufJ)
			layer.Energy.Add(metrics.DRAM, dramJ)
			layer.Latency += lat
		}
		layer.Latency *= passes
		lr.Result = layer
		rep.Layers = append(rep.Layers, lr)
		total = total.Plus(layer)
	}
	rep.Total = total
	return rep
}

// postProcess charges the digital ReLU / pooling / residual-add units for
// a non-compute layer: one operation per element per image, with no added
// latency (the units pipeline behind the array compute, §IV.C inter-layer
// mapping).
func (m *Machine) postProcess(l nn.Layer) metrics.Result {
	var r metrics.Result
	var ops int64
	switch l.Kind {
	case nn.ReLU, nn.Add:
		ops = l.OutputElems()
	case nn.MaxPool, nn.AvgPool, nn.GlobalAvgPool:
		// One compare/accumulate per input element inside the windows.
		ops = l.InputElems()
	default:
		return r
	}
	ops *= int64(m.Cfg.BatchSize)
	r.Counts.DigitalOps = ops
	r.Energy.Add(metrics.Digital, float64(ops)*m.dig.AddEnergy)
	return r
}

// Placement maps the network's compute layers sequentially onto the
// macro hierarchy (§IV.C inter-layer mapping: each layer starts from a
// new PIM macro), reporting fragmentation and the time-multiplex rounds a
// network needs when its array demand exceeds the chip.
func (m *Machine) Placement(net *nn.Network) place.Placement {
	var demands []place.Demand
	for _, l := range net.Layers {
		if !l.IsCompute() {
			continue
		}
		demands = append(demands, place.Demand{Layer: l.Name, Arrays: m.Map(l).TotalArrays})
	}
	return place.Place(demands, int64(m.Cfg.MacroSize), int64(m.Cfg.Tiles)*int64(m.Cfg.TileSize))
}

func ceilInt(a, b int) int { return (a + b - 1) / b }

func ceil64(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
