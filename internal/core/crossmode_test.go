package core

import (
	"math/rand"
	"testing"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/tensor"
)

// TestAnalyticalMatchesFunctionalCounts ties the two execution modes
// together: the analytical simulator's cell-read count for a conv layer
// must equal the functional executor's count times the bit-serial and
// batch factors it abstracts away (activation planes × weight-bit cycles
// × batch).
func TestAnalyticalMatchesFunctionalCounts(t *testing.T) {
	cfg := arch.INCA()
	cfg.BatchSize = 2
	m := New(cfg)

	l := nn.Layer{
		Name: "conv", Kind: nn.Conv,
		InC: 3, InH: 10, InW: 10,
		OutC: 4, OutH: 8, OutW: 8,
		KH: 3, KW: 3, Stride: 1, Pad: 0,
	}
	mp := m.Map(l)
	analytical := m.pass(mp)

	// Functional: real numbers, one read per (window, out-channel,
	// channel) per image.
	rng := rand.New(rand.NewSource(1))
	batch := []*tensor.Tensor{
		tensor.Randn(rng, 1, 3, 10, 10),
		tensor.Randn(rng, 1, 3, 10, 10),
	}
	w := tensor.Randn(rng, 1, 4, 3, 3, 3)
	_, funcStats := FunctionalConv2D(batch, w, FuncOptions{Stride: 1})

	factor := int64(cfg.ActPlanes()) * int64(cfg.WeightBits)
	if analytical.Counts.RRAMReads != funcStats.CellReads*factor {
		t.Fatalf("analytical reads %d != functional %d × bit factor %d",
			analytical.Counts.RRAMReads, funcStats.CellReads, factor)
	}
}

// TestSimulateDegenerateNetworks checks the simulator handles edge
// topologies without panicking or producing nonsense.
func TestSimulateDegenerateNetworks(t *testing.T) {
	m := machine()

	// FC-only network.
	fcOnly := &nn.Network{Name: "fc-only", InputC: 64, InputH: 1, InputW: 1, Classes: 10,
		Layers: []nn.Layer{{
			Name: "fc1", Kind: nn.FC, InC: 64, InH: 1, InW: 1, OutC: 10, OutH: 1, OutW: 1,
		}}}
	if err := fcOnly.Validate(); err != nil {
		t.Fatal(err)
	}
	rep := m.Simulate(fcOnly, sim.Training)
	if rep.Total.Energy.Total() <= 0 || rep.Total.Latency <= 0 {
		t.Fatal("fc-only network should still cost something")
	}

	// No compute layers at all: only the input load remains.
	empty := &nn.Network{Name: "empty", InputC: 1, InputH: 4, InputW: 4, Classes: 1}
	repE := m.Simulate(empty, sim.Inference)
	if len(repE.Layers) != 0 {
		t.Fatal("empty network should produce no layer results")
	}
	if repE.Total.Energy.Total() <= 0 {
		t.Fatal("input load should still be charged")
	}

	// 1×1 input image.
	tiny := &nn.Network{Name: "tiny", InputC: 4, InputH: 1, InputW: 1, Classes: 2,
		Layers: []nn.Layer{{
			Name: "pw", Kind: nn.Conv, InC: 4, InH: 1, InW: 1, OutC: 2, OutH: 1, OutW: 1,
			KH: 1, KW: 1, Stride: 1,
		}}}
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
	repT := m.Simulate(tiny, sim.Inference)
	if repT.Total.Latency <= 0 {
		t.Fatal("tiny network latency should be positive")
	}
}

// TestPlacementOfPaperNetworks checks the §IV.C sequential placement
// produces sane round counts: small networks fit in one round, the big
// activations of VGG16 force time multiplexing.
func TestPlacementOfPaperNetworks(t *testing.T) {
	m := machine()
	lenet, _ := nn.ByName("LeNet5")
	if p := m.Placement(lenet); p.Rounds != 1 {
		t.Fatalf("LeNet5 should fit in one round, got %d", p.Rounds)
	}
	vgg := nn.VGG16()
	p := m.Placement(vgg)
	if p.Rounds < 2 {
		t.Fatalf("VGG16's activation demand should exceed one chip pass, got %d rounds", p.Rounds)
	}
	if p.Fragmentation() < 0 || p.Fragmentation() > 1 {
		t.Fatalf("fragmentation out of range: %v", p.Fragmentation())
	}
}
