package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/inca-arch/inca/internal/baseline"
	"github.com/inca-arch/inca/internal/rram"
	"github.com/inca-arch/inca/internal/tensor"
)

// TestFunctionalConvMatchesReference validates the 2T1R execution path:
// the hardware-mapped convolution equals tensor.Conv2D for every image of
// the batch.
func TestFunctionalConvMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ b, c, h, n, k, s, p int }{
		{1, 1, 6, 1, 3, 1, 0},
		{3, 2, 8, 4, 3, 1, 1},
		{2, 3, 7, 2, 3, 2, 1},
		{4, 2, 6, 3, 1, 1, 0},
	}
	for _, cse := range cases {
		batch := make([]*tensor.Tensor, cse.b)
		for i := range batch {
			batch[i] = tensor.Randn(rng, 1, cse.c, cse.h, cse.h)
		}
		w := tensor.Randn(rng, 1, cse.n, cse.c, cse.k, cse.k)
		outs, stats := FunctionalConv2D(batch, w, FuncOptions{Stride: cse.s, Pad: cse.p})
		for i, got := range outs {
			want := tensor.Conv2D(batch[i], w, tensor.ConvSpec{Stride: cse.s, Pad: cse.p})
			if !got.Equal(want, 1e-9) {
				t.Fatalf("case %+v image %d: INCA functional conv mismatch", cse, i)
			}
		}
		if stats.CellReads == 0 || stats.CellWrites == 0 || stats.Outputs == 0 {
			t.Fatalf("case %+v: stats not recorded: %+v", cse, stats)
		}
	}
}

// TestFunctionalINCAEqualsWSBaseline is the cross-architecture functional
// check: the direct-convolution 2T1R path and the unrolled WS crossbar
// path compute identical results in the ideal case.
func TestFunctionalINCAEqualsWSBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := tensor.Randn(rng, 1, 3, 9, 9)
	w := tensor.Randn(rng, 1, 4, 3, 3, 3)

	incaOut, _ := FunctionalConv2D([]*tensor.Tensor{x}, w, FuncOptions{Stride: 1, Pad: 1})
	wsOut, _ := baseline.FunctionalConv2D(x, w, baseline.FuncOptions{Stride: 1, Pad: 1})
	if !incaOut[0].Equal(wsOut, 1e-9) {
		t.Fatal("IS and WS functional executions disagree")
	}
}

// TestFunctionalADCQuantizationBoundedError checks that a 4-bit ADC on the
// small INCA windows introduces bounded error, while the same resolution
// on the WS baseline's deep columns (which need 8-bit) would be far worse.
func TestFunctionalADCQuantizationBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := tensor.Randn(rng, 1, 2, 8, 8)
	w := tensor.Randn(rng, 1, 2, 2, 3, 3)
	ideal, _ := FunctionalConv2D([]*tensor.Tensor{x}, w, FuncOptions{Stride: 1})

	// Full-scale sized to bound any per-channel window sum (9 products).
	fs := 9 * x.MaxAbs() * w.MaxAbs()
	quant, _ := FunctionalConv2D([]*tensor.Tensor{x}, w, FuncOptions{
		Stride:   1,
		Quantize: rram.UniformQuantizer(4, fs),
	})
	// Error per output is bounded by channels × step/2 (each channel's
	// window read is quantized separately).
	step := fs / 8
	maxErr := 0.0
	for i := range ideal[0].Data() {
		if e := math.Abs(ideal[0].Data()[i] - quant[0].Data()[i]); e > maxErr {
			maxErr = e
		}
	}
	bound := 2 * (step/2 + 1e-9) // 2 channels
	if maxErr > bound {
		t.Fatalf("quantized conv error %v exceeds bound %v", maxErr, bound)
	}
}

// TestFunctionalNoiseLocations verifies the Table VI mechanism at the
// array level: IS noise lands on activations, WS noise lands on weights,
// and both perturb the outputs.
func TestFunctionalNoiseLocations(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := tensor.Randn(rng, 1, 2, 6, 6)
	w := tensor.Randn(rng, 1, 2, 2, 3, 3)
	ideal, _ := FunctionalConv2D([]*tensor.Tensor{x}, w, FuncOptions{Stride: 1})

	noisyIS, _ := FunctionalConv2D([]*tensor.Tensor{x}, w, FuncOptions{
		Stride: 1, Noise: rram.NewNoiseModel(0.05, 21),
	})
	if ideal[0].Equal(noisyIS[0], 1e-9) {
		t.Fatal("IS activation noise had no effect")
	}

	idealWS, _ := baseline.FunctionalConv2D(x, w, baseline.FuncOptions{Stride: 1})
	noisyWS, _ := baseline.FunctionalConv2D(x, w, baseline.FuncOptions{
		Stride: 1, Noise: rram.NewNoiseModel(0.05, 22),
	})
	if idealWS.Equal(noisyWS, 1e-9) {
		t.Fatal("WS weight noise had no effect")
	}
}

// PROPERTY: INCA functional conv equals the reference for random small
// geometries.
func TestPropertyFunctionalConv(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(3)
		k := 1 + rng.Intn(3)
		h := k + rng.Intn(5)
		n := 1 + rng.Intn(3)
		s := 1 + rng.Intn(2)
		p := rng.Intn(k)
		x := tensor.Randn(rng, 1, c, h, h)
		w := tensor.Randn(rng, 1, n, c, k, k)
		outs, _ := FunctionalConv2D([]*tensor.Tensor{x}, w, FuncOptions{Stride: s, Pad: p})
		want := tensor.Conv2D(x, w, tensor.ConvSpec{Stride: s, Pad: p})
		return outs[0].Equal(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
