package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/baseline"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// randomNet builds a small random but valid conv network.
func randomNet(rng *rand.Rand) *nn.Network {
	c := 1 + rng.Intn(8)
	h := 8 + rng.Intn(24)
	net := &nn.Network{Name: "rand", InputC: c, InputH: h, InputW: h, Classes: 4}
	cur := nn.Layer{OutC: c, OutH: h, OutW: h}
	layers := 1 + rng.Intn(3)
	for i := 0; i < layers; i++ {
		k := 1 + 2*rng.Intn(2) // 1 or 3
		outC := 1 + rng.Intn(16)
		pad := k / 2
		l := nn.Layer{
			Name: "c", Kind: nn.Conv,
			InC: cur.OutC, InH: cur.OutH, InW: cur.OutW,
			OutC: outC, KH: k, KW: k, Stride: 1, Pad: pad,
			OutH: cur.OutH, OutW: cur.OutW,
		}
		net.Layers = append(net.Layers, l)
		cur = l
	}
	return net
}

// PROPERTY: simulated energy and latency are strictly positive and finite
// for arbitrary valid conv networks, in both phases, on both machines.
func TestPropertySimulationsWellFormed(t *testing.T) {
	incaM := New(arch.INCA())
	baseM := baseline.New(arch.Baseline())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := randomNet(rng)
		if err := net.Validate(); err != nil {
			return false
		}
		for _, phase := range []sim.Phase{sim.Inference, sim.Training} {
			for _, rep := range []*sim.Report{incaM.Simulate(net, phase), baseM.Simulate(net, phase)} {
				e, l := rep.Total.Energy.Total(), rep.Total.Latency
				if !(e > 0) || !(l > 0) || e > 1e6 || l > 1e6 {
					return false
				}
				u := rep.Utilization()
				if u < 0 || u > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// PROPERTY: INCA batch energy is monotone in batch size, and per-image
// energy is non-increasing (amortization of weight fetches).
func TestPropertyBatchMonotonicity(t *testing.T) {
	net := nn.LeNet5()
	f := func(raw uint8) bool {
		b1 := 1 + int(raw)%32
		b2 := b1 * 2
		mk := func(b int) *sim.Report {
			cfg := arch.INCA()
			cfg.BatchSize = b
			return New(cfg).Simulate(net, sim.Training)
		}
		r1, r2 := mk(b1), mk(b2)
		if r2.Total.Energy.Total() <= r1.Total.Energy.Total() {
			return false
		}
		e1, err1 := r1.EnergyPerImage()
		e2, err2 := r2.EnergyPerImage()
		if err1 != nil || err2 != nil {
			return false
		}
		return e2 <= e1*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// PROPERTY: shrinking the chip (fewer tiles) never reduces INCA latency
// (the time-multiplex factor only grows).
func TestPropertyChipSizeLatency(t *testing.T) {
	net := nn.VGG16CIFAR()
	var prev float64
	for _, tiles := range []int{168, 42, 12, 4} {
		cfg := arch.INCA()
		cfg.Tiles = tiles
		lat := New(cfg).Simulate(net, sim.Inference).Total.Latency
		if prev != 0 && lat < prev*0.999 {
			t.Fatalf("latency decreased when shrinking chip to %d tiles: %v < %v", tiles, lat, prev)
		}
		prev = lat
	}
}

// TestBatchSpillBeyondPlanes pins the plane-pass model: a batch twice the
// stack depth takes about twice the compute latency of an equal batch
// that fits.
func TestBatchSpillBeyondPlanes(t *testing.T) {
	net := nn.LeNet5()
	mk := func(batch int) float64 {
		cfg := arch.INCA()
		cfg.BatchSize = batch
		return New(cfg).Simulate(net, sim.Inference).Total.Latency
	}
	fit := mk(64)    // = StackedPlanes
	spill := mk(128) // 2 plane passes
	if spill < fit*1.5 {
		t.Fatalf("batch 128 latency %v should be ~2x batch 64 latency %v", spill, fit)
	}
}
