package core

import (
	"github.com/inca-arch/inca/internal/fixed"
	"github.com/inca-arch/inca/internal/rram"
	"github.com/inca-arch/inca/internal/tensor"
)

// BitSerialConv2D executes a single-channel convolution exactly the way
// the INCA macro does at the bit level (§IV.C): each activation bit plane
// lives in its own binary 2T1R plane ("Each RRAM stores one bit of input
// values"), the weight is fed in bit by bit, each (activation-plane,
// weight-bit) pair produces a ≤K² binary dot product per window — which is
// why a 4-bit ADC suffices — and two nested shift-accumulators reassemble
// the full-precision result.
//
// Inputs are real-valued; they are quantized to `bits` with sign-magnitude
// coding (one sign flag per operand element, tracked digitally). The
// returned map equals the integer convolution of the quantized operands,
// scaled back to real units — tests pin this equivalence.
func BitSerialConv2D(x, w *tensor.Tensor, bits, stride int) (*tensor.Tensor, rram.Stats) {
	if x.Rank() != 2 || w.Rank() != 2 {
		panic("core: BitSerialConv2D wants rank-2 x and w")
	}
	h, wd := x.Dim(0), x.Dim(1)
	kh, kw := w.Dim(0), w.Dim(1)
	qx := fixed.NewQuantizer(bits, x.MaxAbs())
	qw := fixed.NewQuantizer(bits, w.MaxAbs())

	// Decompose the activations into sign + bit planes, one binary 2T1R
	// plane per bit.
	signs := tensor.New(h, wd)
	planes := make([]*rram.Plane, bits)
	planeData := make([]*tensor.Tensor, bits)
	for b := range planes {
		planes[b] = rram.NewPlane(h, wd)
		planeData[b] = tensor.New(h, wd)
	}
	for y := 0; y < h; y++ {
		for xx := 0; xx < wd; xx++ {
			s, mag := fixed.SignMagnitude(qx.Quantize(x.At(y, xx)))
			signs.Set(float64(s), y, xx)
			for b, bit := range fixed.BitPlanes(mag, bits) {
				planeData[b].Set(float64(bit), y, xx)
			}
		}
	}
	for b := range planes {
		planes[b].Write(planeData[b])
	}

	// Weight sign-magnitude bit planes.
	wSigns := make([]int64, kh*kw)
	wBits := make([][]uint8, kh*kw)
	for i := 0; i < kh*kw; i++ {
		s, mag := fixed.SignMagnitude(qw.Quantize(w.Data()[i]))
		wSigns[i] = s
		wBits[i] = fixed.BitPlanes(mag, bits)
	}

	oh := (h-kh)/stride + 1
	ow := (wd-kw)/stride + 1
	out := tensor.New(oh, ow)
	kern := tensor.New(kh, kw)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			var outer fixed.ShiftAccumulator
			for wb := 0; wb < bits; wb++ { // weight bit streamed to pillars
				var inner fixed.ShiftAccumulator
				for ab := 0; ab < bits; ab++ { // resident activation planes
					// The sign logic is digital: the pillar drive carries
					// the product sign for each window cell.
					var partial int64
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							kern.Set(float64(wBits[ky*kw+kx][wb])*
								float64(wSigns[ky*kw+kx])*
								signs.At(oy*stride+ky, ox*stride+kx), ky, kx)
						}
					}
					// One analog window read: ≤ K² binary products.
					sum := planes[ab].ReadWindow(kern, oy*stride, ox*stride)
					partial = int64(sum + copysignHalf(sum))
					inner.Push(partial)
				}
				outer.Push(inner.Value())
			}
			out.Set(float64(outer.Value())*qx.Scale*qw.Scale, oy, ox)
		}
	}

	var stats rram.Stats
	for _, p := range planes {
		stats = stats.Plus(p.Stats())
	}
	return out, stats
}

func copysignHalf(v float64) float64 {
	if v < 0 {
		return -0.5
	}
	return 0.5
}
