package core

import (
	"fmt"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// DataflowID is the registry ID of the input-stationary backend.
const DataflowID = "is"

func init() { dataflow.Register(isDataflow{}) }

// isDataflow adapts this package to the dataflow.Dataflow interface.
type isDataflow struct{}

func (isDataflow) ID() string { return DataflowID }

func (isDataflow) Capabilities() dataflow.Capabilities {
	return dataflow.Capabilities{
		ID:           DataflowID,
		Name:         "Input-stationary",
		Description:  "INCA 3D-stacked arrays: activations resident, weights stream (the paper's contribution)",
		Phases:       []sim.Phase{sim.Inference, sim.Training},
		Configurable: true,
		Aliases:      []string{"inca", "input-stationary"},
	}
}

func (isDataflow) DefaultConfig() arch.Config { return arch.INCA() }

func (isDataflow) New(cfg arch.Config) (sim.Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return sim.WrapID(New(cfg), DataflowID), nil
}

func (isDataflow) Area(cfg arch.Config) float64 { return cfg.Area().Total() }

// LayerCost prices one compute layer per batch: the streamed-weight
// forward pass, plus the transposed and gradient passes when training.
func (d isDataflow) LayerCost(cfg arch.Config, l nn.Layer, phase sim.Phase) (metrics.Result, error) {
	if err := cfg.Validate(); err != nil {
		return metrics.Result{}, err
	}
	m := New(cfg)
	if !l.IsCompute() {
		return m.postProcess(l), nil
	}
	r := m.forwardLayer(l)
	if phase == sim.Training {
		r = r.Plus(m.backwardLayer(l))
		r = r.Plus(m.updateLayer(l))
	}
	return r, nil
}

// Mapping space: square subarray planes of growing size crossed with
// stacking depths. The legal points are bounded by two capacities:
// every conv window must fit one plane (crossbar constraint), and the
// worst layer's array demand must not multiplex more than maxMultiplex
// rounds over the chip (a mapping that serializes further is useless).
const maxMultiplex = 64

var (
	isArraySizes = []int{8, 16, 32, 64}
	isPlaneDepth = []int{16, 32, 64, 128}
)

func (d isDataflow) Mappings(base arch.Config, net *nn.Network) []dataflow.Mapping {
	out := []dataflow.Mapping{{}} // the base point is always legal
	if net == nil {
		return out
	}
	maxWindow := 1
	for _, l := range net.Layers {
		if l.IsCompute() && l.KH*l.KW > maxWindow {
			maxWindow = l.KH * l.KW
		}
	}
	for _, s := range isArraySizes {
		if s*s < maxWindow {
			continue
		}
		for _, p := range isPlaneDepth {
			m := dataflow.Mapping{Rows: s, Cols: s, Planes: p, LoopOrder: "window-outer"}
			cfg := d.Apply(base, m)
			if cfg == base {
				continue // identical to the base point already present
			}
			if cfg.Validate() != nil {
				continue
			}
			if isWorstMultiplex(cfg, net) > maxMultiplex {
				continue
			}
			out = append(out, m)
		}
	}
	return out
}

// isWorstMultiplex returns the worst per-layer time-multiplex factor of
// net on cfg (1 = the whole layer fits the chip at once).
func isWorstMultiplex(cfg arch.Config, net *nn.Network) int64 {
	m := New(cfg)
	worst := int64(1)
	for _, l := range net.Layers {
		if !l.IsCompute() {
			continue
		}
		mp := m.Map(l)
		if mux := ceil64(mp.TotalArrays, int64(cfg.Subarrays())); mux > worst {
			worst = mux
		}
	}
	return worst
}

func (isDataflow) Apply(base arch.Config, m dataflow.Mapping) arch.Config {
	cfg := base
	if m.Rows > 0 {
		cfg.SubarrayRows = m.Rows
	}
	if m.Cols > 0 {
		cfg.SubarrayCols = m.Cols
	}
	if m.Planes > 0 {
		cfg.StackedPlanes = m.Planes
	}
	if !m.IsZero() && cfg != base {
		cfg.Name = fmt.Sprintf("%s[%s]", base.Name, m.Label())
	}
	return cfg
}
