package core

import (
	"fmt"

	"github.com/inca-arch/inca/internal/rram"
	"github.com/inca-arch/inca/internal/tensor"
)

// FuncOptions configures functional execution on the 2T1R arrays.
type FuncOptions struct {
	Stride int
	Pad    int
	// Noise perturbs stored activations at write time (the IS nonideality
	// location of Table VI).
	Noise *rram.NoiseModel
	// Quantize, when non-nil, is the ADC transfer function applied to
	// every window read.
	Quantize func(float64) float64
}

// FunctionalConv2D executes a batched multi-channel convolution on 3D
// 2T1R stacks exactly as the INCA hardware does: one vertical plane per
// (image, channel), kernel voltages broadcast over shared pillars, one
// window read per output element per channel, and digital accumulation
// across channels. It returns one [N, OH, OW] output per image plus the
// device event counts.
//
// This is the functional counterpart of the analytical pass: tests verify
// it matches tensor.Conv2D bit-for-bit in the ideal case.
func FunctionalConv2D(batch []*tensor.Tensor, w *tensor.Tensor, opt FuncOptions) ([]*tensor.Tensor, rram.Stats) {
	if len(batch) == 0 {
		panic("core: empty batch")
	}
	if opt.Stride < 1 {
		opt.Stride = 1
	}
	c, h0, w0 := batch[0].Dim(0), batch[0].Dim(1), batch[0].Dim(2)
	n, wc, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	if wc != c {
		panic(fmt.Sprintf("core: channel mismatch: input %d, kernel %d", c, wc))
	}
	h := h0 + 2*opt.Pad
	wd := w0 + 2*opt.Pad
	oh := (h-kh)/opt.Stride + 1
	ow := (wd-kw)/opt.Stride + 1

	// One 3D stack per input channel; plane p of stack c holds image p's
	// channel c (padded — the mapper pads partitions before writing).
	stacks := make([]*rram.Stack, c)
	for ic := 0; ic < c; ic++ {
		stacks[ic] = rram.NewStack(len(batch), h, wd)
		for p, img := range batch {
			padded := tensor.Pad(img, opt.Pad)
			channel := tensor.CropTo(padded, 0, 0, h, wd) // copy
			// Extract channel ic as a 2D tensor.
			plane := tensor.New(h, wd)
			for y := 0; y < h; y++ {
				for x := 0; x < wd; x++ {
					plane.Set(channel.At(ic, y, x), y, x)
				}
			}
			if opt.Noise != nil {
				stacks[ic].Planes[p].SetNoise(opt.Noise)
			}
			if opt.Quantize != nil {
				stacks[ic].Planes[p].SetQuantizer(opt.Quantize)
			}
			stacks[ic].WriteImage(p, plane)
		}
	}

	outs := make([]*tensor.Tensor, len(batch))
	for p := range outs {
		outs[p] = tensor.New(n, oh, ow)
	}
	kern := tensor.New(kh, kw)
	for on := 0; on < n; on++ {
		for ic := 0; ic < c; ic++ {
			// Stream kernel (on, ic) onto the pillars of stack ic.
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					kern.Set(w.At(on, ic, ky, kx), ky, kx)
				}
			}
			// All planes (the whole batch) respond to one sweep.
			perPlane := stacks[ic].ConvolveAll(kern, h, wd, opt.Stride)
			for p, m := range perPlane {
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						outs[p].Set(outs[p].At(on, oy, ox)+m.At(oy, ox), on, oy, ox)
					}
				}
			}
		}
	}

	var stats rram.Stats
	for _, s := range stacks {
		stats = stats.Plus(s.Stats())
	}
	return outs, stats
}
