package place

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPlaceSequential(t *testing.T) {
	p := Place([]Demand{
		{"a", 10}, {"b", 5}, {"c", 8},
	}, 8, 4) // 4 macros of 8 arrays each = 32 arrays/round
	if p.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", p.Rounds)
	}
	// a needs 2 macros (10/8), b needs 1, c needs 1.
	wantStarts := []int64{0, 2, 3}
	for i, a := range p.Assignments {
		if a.StartMacro != wantStarts[i] {
			t.Fatalf("layer %s starts at macro %d, want %d", a.Layer, a.StartMacro, wantStarts[i])
		}
		if a.Round != 0 {
			t.Fatalf("layer %s in round %d, want 0", a.Layer, a.Round)
		}
	}
}

func TestPlaceWrapsToNewRound(t *testing.T) {
	p := Place([]Demand{
		{"a", 16}, {"b", 16}, {"c", 16},
	}, 8, 4) // each layer needs 2 macros; 3 layers need 6 > 4 macros
	if p.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", p.Rounds)
	}
	if p.Assignments[2].Round != 1 || p.Assignments[2].StartMacro != 0 {
		t.Fatalf("layer c placement = %+v", p.Assignments[2])
	}
}

func TestPlaceGiantLayer(t *testing.T) {
	// One layer needing 3 chips' worth of macros.
	p := Place([]Demand{
		{"small", 4},
		{"giant", 8 * 4 * 3},
		{"after", 4},
	}, 8, 4)
	if p.Rounds < 4 {
		t.Fatalf("rounds = %d, want >= 4 (giant spans 3)", p.Rounds)
	}
	// The layer after the giant starts in a fresh round.
	last := p.Assignments[2]
	if last.Round <= p.Assignments[1].Round {
		t.Fatalf("layer after giant should be in a later round: %+v", last)
	}
}

func TestFragmentation(t *testing.T) {
	// One array per layer on 8-array macros: 7/8 of each macro wasted.
	p := Place([]Demand{{"a", 1}, {"b", 1}}, 8, 10)
	if f := p.Fragmentation(); f != 1-2.0/16 {
		t.Fatalf("fragmentation = %v, want %v", f, 1-2.0/16)
	}
	// Exact fill: zero waste.
	p2 := Place([]Demand{{"a", 8}}, 8, 10)
	if p2.Fragmentation() != 0 {
		t.Fatalf("exact fill fragmentation = %v", p2.Fragmentation())
	}
}

func TestStringRendering(t *testing.T) {
	p := Place([]Demand{{"conv1", 10}}, 8, 4)
	s := p.String()
	if !strings.Contains(s, "conv1") || !strings.Contains(s, "rounds") {
		t.Fatalf("summary missing fields:\n%s", s)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Place(nil, 0, 4)
}

// PROPERTY: no two same-round assignments overlap, and every layer gets
// enough macros.
func TestPropertyNoOverlap(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 20 {
			return true
		}
		var demands []Demand
		for i, r := range raw {
			demands = append(demands, Demand{Layer: string(rune('a' + i%26)), Arrays: int64(r%50) + 1})
		}
		p := Place(demands, 8, 6)
		type span struct{ lo, hi int64 }
		byRound := map[int][]span{}
		for _, a := range p.Assignments {
			if a.Macros*8 < a.Arrays {
				return false
			}
			if a.Macros <= 6 { // chip-sized layers checked for overlap
				s := span{a.StartMacro, a.StartMacro + a.Macros}
				for _, o := range byRound[a.Round] {
					if s.lo < o.hi && o.lo < s.hi {
						return false
					}
				}
				byRound[a.Round] = append(byRound[a.Round], s)
			}
		}
		return p.Rounds >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
