// Package place implements the paper's inter-layer mapping (§IV.C):
// layers are assigned to the accelerator sequentially, each starting from
// a fresh PIM macro so activation writes can overlap computation without
// bus contention. The placer reports macro-alignment fragmentation and how
// many chip "rounds" (time-multiplex passes) a network needs when its
// array demand exceeds the chip.
package place

import (
	"fmt"
	"strings"
)

// Demand is one layer's array requirement.
type Demand struct {
	Layer  string
	Arrays int64 // 3D arrays (or crossbars) needed
}

// Assignment records where one layer landed.
type Assignment struct {
	Layer      string
	Arrays     int64
	Macros     int64 // macros allocated (ceil of arrays / arraysPerMacro)
	Round      int   // which chip pass this layer executes in (0-based)
	StartMacro int64 // first macro index within its round
}

// Placement is a full network's sequential mapping.
type Placement struct {
	Assignments    []Assignment
	ArraysPerMacro int64
	TotalMacros    int64
	Rounds         int // chip passes needed (1 = everything resident)
}

// Place maps the demands sequentially onto a chip of totalMacros macros
// with arraysPerMacro arrays each. A layer that does not fit in the
// remaining macros of the current round starts a new round (the arrays are
// time-multiplexed: earlier layers' activations have already been consumed
// and their cells recycled).
func Place(demands []Demand, arraysPerMacro, totalMacros int64) Placement {
	if arraysPerMacro < 1 || totalMacros < 1 {
		panic(fmt.Sprintf("place: invalid chip geometry %d/%d", arraysPerMacro, totalMacros))
	}
	p := Placement{ArraysPerMacro: arraysPerMacro, TotalMacros: totalMacros, Rounds: 1}
	var cursor int64
	round := 0
	for _, d := range demands {
		macros := (d.Arrays + arraysPerMacro - 1) / arraysPerMacro
		if macros > totalMacros {
			// The layer alone exceeds the chip: it occupies whole rounds.
			extraRounds := int((macros - 1) / totalMacros)
			if cursor > 0 {
				round++
				cursor = 0
			}
			p.Assignments = append(p.Assignments, Assignment{
				Layer: d.Layer, Arrays: d.Arrays, Macros: macros,
				Round: round, StartMacro: 0,
			})
			round += extraRounds + 1
			cursor = 0
			continue
		}
		if cursor+macros > totalMacros {
			round++
			cursor = 0
		}
		p.Assignments = append(p.Assignments, Assignment{
			Layer: d.Layer, Arrays: d.Arrays, Macros: macros,
			Round: round, StartMacro: cursor,
		})
		cursor += macros
	}
	lastRound := 0
	for _, a := range p.Assignments {
		extra := int((a.Macros - 1) / totalMacros)
		if a.Round+extra > lastRound {
			lastRound = a.Round + extra
		}
	}
	p.Rounds = lastRound + 1
	return p
}

// TotalArrays returns the summed array demand.
func (p Placement) TotalArrays() int64 {
	var s int64
	for _, a := range p.Assignments {
		s += a.Arrays
	}
	return s
}

// Fragmentation returns the fraction of allocated macro capacity wasted by
// the start-each-layer-at-a-new-macro alignment.
func (p Placement) Fragmentation() float64 {
	var used, allocated int64
	for _, a := range p.Assignments {
		used += a.Arrays
		allocated += a.Macros * p.ArraysPerMacro
	}
	if allocated == 0 {
		return 0
	}
	return 1 - float64(used)/float64(allocated)
}

// String renders a placement summary.
func (p Placement) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "placement: %d layers, %d arrays over %d rounds (chip: %d macros x %d arrays), fragmentation %.1f%%\n",
		len(p.Assignments), p.TotalArrays(), p.Rounds, p.TotalMacros, p.ArraysPerMacro,
		100*p.Fragmentation())
	for _, a := range p.Assignments {
		fmt.Fprintf(&b, "  %-12s round %d, macros %d..%d (%d arrays)\n",
			a.Layer, a.Round, a.StartMacro, a.StartMacro+a.Macros-1, a.Arrays)
	}
	return b.String()
}
