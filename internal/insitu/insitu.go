// Package insitu executes a trainable network end-to-end on the RRAM
// array models — the functional counterpart of the paper's §IV.C dataflow:
//
//   - Feedforward: every convolution runs as direct convolution on 2T1R
//     planes (activations resident, kernels streamed over the pillars);
//     FC layers run on channel-folded planes; pooling and activation run
//     in the digital post-processing units.
//   - Backpropagation: the error convolution δ_{l+1} * Wᵀ runs on planes
//     holding the (dilated, padded) errors, the computed errors overwrite
//     the layer's activation cells, ReLU gradients are AND gates, and
//     max-pooling restores positions via the recorded LUT.
//   - Weight update: the gradient convolution δ * x reads the activations
//     still resident in the planes, with the error map streamed as the
//     kernel (paper Fig. 4); updated weights are written back to ordinary
//     memory, never to RRAM.
//
// Tests verify the in-situ gradients equal the software engine's and that
// a network trained entirely in situ learns the synthetic task.
package insitu

import (
	"fmt"
	"math"

	"github.com/inca-arch/inca/internal/core"
	"github.com/inca-arch/inca/internal/fixed"
	"github.com/inca-arch/inca/internal/rram"
	"github.com/inca-arch/inca/internal/tensor"
	"github.com/inca-arch/inca/internal/train"
)

// Options configures the device effects of in-situ execution.
type Options struct {
	// WeightBits / ActivationBits quantize the streamed and stored
	// operands (0 disables — ideal arithmetic).
	WeightBits     int
	ActivationBits int
	// ADCBits quantizes every analog window read (0 disables). FullScale
	// calibrates the converter range relative to each read's operand
	// magnitudes.
	ADCBits int
	// ActNoise perturbs activations as they are written into the planes
	// (the IS nonideality location).
	ActNoise *rram.NoiseModel
	// TrackWear enables per-plane endurance accounting.
	TrackWear bool
	Endurance int64
}

// Machine executes train.Network topologies on the array models.
type Machine struct {
	opt   Options
	stats rram.Stats
	wear  []*rram.Wear
}

// New builds an in-situ machine.
func New(opt Options) *Machine { return &Machine{opt: opt} }

// Stats returns the accumulated device event counts.
func (m *Machine) Stats() rram.Stats { return m.stats }

// MaxCellWrites returns the largest per-cell write count observed across
// all planes used so far (0 when wear tracking is off).
func (m *Machine) MaxCellWrites() int64 {
	var mx int64
	for _, w := range m.wear {
		if w.MaxWrites() > mx {
			mx = w.MaxWrites()
		}
	}
	return mx
}

// quantA rounds an activation tensor to the configured bit depth.
func (m *Machine) quantA(t *tensor.Tensor) *tensor.Tensor {
	if m.opt.ActivationBits <= 0 {
		return t
	}
	return fixed.QuantizeTensor(t, m.opt.ActivationBits)
}

// quantW rounds a weight tensor to the configured bit depth.
func (m *Machine) quantW(t *tensor.Tensor) *tensor.Tensor {
	if m.opt.WeightBits <= 0 {
		return t
	}
	return fixed.QuantizeTensor(t, m.opt.WeightBits)
}

// funcOpts builds the array-level options for a convolution whose
// per-window sums are bounded by bound.
func (m *Machine) funcOpts(stride, pad int, bound float64) core.FuncOptions {
	o := core.FuncOptions{Stride: stride, Pad: pad, Noise: m.opt.ActNoise}
	if m.opt.ADCBits > 0 && bound > 0 {
		o.Quantize = rram.UniformQuantizer(m.opt.ADCBits, bound)
	}
	return o
}

// convOnArrays runs x * w through the 2T1R planes.
func (m *Machine) convOnArrays(x, w *tensor.Tensor, stride, pad int) *tensor.Tensor {
	x = m.quantA(x)
	w = m.quantW(w)
	// ADC full scale calibrated to the typical per-window signal: a K×K
	// window of independent products has standard deviation ≈ K·σx·σw;
	// four sigmas cover the distribution (rare outliers clamp, as in a
	// real converter).
	k := float64(w.Dim(2))
	bound := 4 * k * x.RMS() * w.RMS()
	outs, stats := core.FunctionalConv2D([]*tensor.Tensor{x}, w, m.funcOpts(stride, pad, bound))
	m.stats = m.stats.Plus(stats)
	return outs[0]
}

// fcOnArrays runs a fully connected layer on channel-folded planes: the
// input vector is folded into 16×16 planes and each output's weight chunk
// is applied as one whole-plane window read (§IV.C).
func (m *Machine) fcOnArrays(x, w, bias *tensor.Tensor) *tensor.Tensor {
	const side = 16
	const cells = side * side
	x = m.quantA(x)
	w = m.quantW(w)
	in := x.Len()
	outN := w.Dim(0)
	groups := (in + cells - 1) / cells

	// Write the folded input once; every output reuses the planes.
	planes := make([]*rram.Plane, groups)
	for g := 0; g < groups; g++ {
		p := rram.NewPlane(side, side)
		if m.opt.TrackWear {
			p.EnableWear(m.opt.Endurance)
			m.wear = append(m.wear, p.Wear())
		}
		if m.opt.ActNoise != nil {
			p.SetNoise(m.opt.ActNoise)
		}
		chunk := tensor.New(side, side)
		for i := 0; i < cells; i++ {
			idx := g*cells + i
			if idx < in {
				chunk.Set(x.Data()[idx], i/side, i%side)
			}
		}
		p.Write(chunk)
		planes[g] = p
	}
	if m.opt.ADCBits > 0 {
		// Typical whole-plane dot product: sqrt(cells)·σx·σw, covered to
		// four sigmas.
		bound := 4 * math.Sqrt(float64(cells)) * x.RMS() * w.RMS()
		if bound > 0 {
			q := rram.UniformQuantizer(m.opt.ADCBits, bound)
			for _, p := range planes {
				p.SetQuantizer(q)
			}
		}
	}

	out := tensor.New(outN)
	kern := tensor.New(side, side)
	for o := 0; o < outN; o++ {
		sum := 0.0
		for g := 0; g < groups; g++ {
			kern.Fill(0)
			for i := 0; i < cells; i++ {
				idx := g*cells + i
				if idx < in {
					kern.Set(w.At(o, idx), i/side, i%side)
				}
			}
			sum += planes[g].ReadWindow(kern, 0, 0)
		}
		out.Set(sum+bias.At(o), o)
	}
	for _, p := range planes {
		m.stats = m.stats.Plus(p.Stats())
	}
	return out
}

// Forward runs one inference of net on the array models.
func (m *Machine) Forward(net *train.Network, x *tensor.Tensor) *tensor.Tensor {
	out, _ := m.forward(net, x)
	return out
}

// forward returns the output plus each layer's cached input (needed by
// the backward pass).
func (m *Machine) forward(net *train.Network, x *tensor.Tensor) (*tensor.Tensor, []*tensor.Tensor) {
	inputs := make([]*tensor.Tensor, len(net.Layers))
	for i, l := range net.Layers {
		inputs[i] = x
		switch t := l.(type) {
		case *train.Conv:
			x = m.convOnArrays(x, t.W, t.Spec.Stride, t.Spec.Pad)
		case *train.FC:
			x = m.fcOnArrays(x.Reshape(x.Len()), t.W, t.B)
		case *train.ReLU:
			x = tensor.ReLU(x) // digital nonlinear unit
		case *train.MaxPool:
			x = tensor.MaxPool2D(x, t.K, t.K).Out // digital pooling unit
		default:
			panic(fmt.Sprintf("insitu: unsupported layer %T", l))
		}
	}
	return x, inputs
}

// Gradients holds one in-situ training step's parameter gradients in
// layer order (nil for parameter-free layers).
type Gradients struct {
	ConvDW []*tensor.Tensor // indexed like net.Layers, nil where not conv
	FCDW   []*tensor.Tensor
	FCDB   []*tensor.Tensor
}

// TrainStep runs one in-situ forward + backward pass and applies the SGD
// update to the network's (buffer-resident) weights. It returns the loss.
func (m *Machine) TrainStep(net *train.Network, x *tensor.Tensor, label int, lr float64) float64 {
	out, inputs := m.forward(net, x)
	loss, delta := train.SoftmaxCrossEntropy(out, label)

	// Backward sweep. Errors overwrite activations: each conv layer's
	// delta is written into the planes that held its input (counted as
	// plane writes in stats via the backward convolution's own arrays).
	type poolState struct {
		res    tensor.MaxPoolResult
		inDims []int
	}
	for i := len(net.Layers) - 1; i >= 0; i-- {
		switch t := net.Layers[i].(type) {
		case *train.FC:
			// dW/dB are digital (weights live in buffers); dX streams the
			// transposed weights (digital reduction here — the FC error
			// path is a vector operation).
			xin := inputs[i].Reshape(inputs[i].Len())
			dW := tensor.Outer(delta, xin)
			dB := delta.Clone()
			dx := tensor.MatVecT(m.quantW(t.W), delta)
			t.W.AXPYInPlace(-lr, dW)
			t.B.AXPYInPlace(-lr, dB)
			delta = dx.Reshape(inputs[i].Dims()...)
		case *train.ReLU:
			// AND gates between the stored pre-activation sign and delta.
			delta = tensor.ReLUBackward(inputs[i], delta)
		case *train.MaxPool:
			// The pooling LUT restores the maximum's original position.
			res := tensor.MaxPool2D(inputs[i], t.K, t.K)
			delta = tensor.MaxPoolBackward(res, delta, inputs[i].Dims())
		case *train.Conv:
			xin := inputs[i]
			// Weight gradient on the arrays: the activations are still
			// resident; the error map streams as the kernel (Fig. 4).
			dW := m.gradOnArrays(xin, delta, t.Spec, t.W.Dim(2), t.W.Dim(3), t.W.Dim(0))
			// Error propagation on the arrays: full convolution of the
			// (dilated, padded) delta with the transposed kernels. The
			// delta is first written into the planes, overwriting the
			// activations that are no longer needed.
			dx := m.backInputOnArrays(t.W, delta, t.Spec, xin.Dim(1), xin.Dim(2))
			t.W.AXPYInPlace(-lr, dW)
			delta = dx
		}
	}
	return loss
}

// gradOnArrays computes dW for a convolution by convolving each stored
// input channel with each error channel on the planes (the error map is
// the kernel).
func (m *Machine) gradOnArrays(x, delta *tensor.Tensor, spec tensor.ConvSpec, kh, kw, outC int) *tensor.Tensor {
	if spec.Stride != 1 {
		// Strided layers dilate the error first; the plane sweep then
		// proceeds identically.
		delta = tensor.Dilate(delta, spec.Stride)
	}
	c := x.Dim(0)
	xp := tensor.Pad(x, spec.Pad)
	h, wd := xp.Dim(1), xp.Dim(2)
	dh, dw := delta.Dim(1), delta.Dim(2)
	out := tensor.New(outC, c, kh, kw)

	// One plane per input channel, holding the padded activation map.
	for ic := 0; ic < c; ic++ {
		p := rram.NewPlane(h, wd)
		if m.opt.ActNoise != nil {
			p.SetNoise(m.opt.ActNoise)
		}
		plane := tensor.New(h, wd)
		for y := 0; y < h; y++ {
			for xx := 0; xx < wd; xx++ {
				plane.Set(xp.At(ic, y, xx), y, xx)
			}
		}
		p.Write(plane)
		kern := tensor.New(dh, dw)
		for on := 0; on < outC; on++ {
			for y := 0; y < dh; y++ {
				for xx := 0; xx < dw; xx++ {
					kern.Set(delta.At(on, y, xx), y, xx)
				}
			}
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					if ky+dh > h || kx+dw > wd {
						continue
					}
					out.Set(p.ReadWindow(kern, ky, kx), on, ic, ky, kx)
				}
			}
		}
		m.stats = m.stats.Plus(p.Stats())
	}
	return out
}

// backInputOnArrays computes dX by running the full convolution of the
// dilated, padded error with the 180°-rotated transposed kernels on the
// planes — the errors having overwritten the activation cells.
func (m *Machine) backInputOnArrays(w, delta *tensor.Tensor, spec tensor.ConvSpec, inH, inW int) *tensor.Tensor {
	kh := w.Dim(2)
	wt := tensor.Rot180(w) // [C, N, KH, KW]
	d := tensor.Dilate(delta, spec.Stride)
	padded := tensor.Pad(d, kh-1)
	outs, stats := core.FunctionalConv2D([]*tensor.Tensor{padded}, wt,
		core.FuncOptions{Stride: 1, Noise: m.opt.ActNoise})
	m.stats = m.stats.Plus(stats)
	full := outs[0]
	// Crop to the input geometry (offset = original pad).
	c := wt.Dim(0)
	dx := tensor.New(c, inH, inW)
	fh, fw := full.Dim(1), full.Dim(2)
	for ic := 0; ic < c; ic++ {
		for y := 0; y < inH && y+spec.Pad < fh; y++ {
			for x := 0; x < inW && x+spec.Pad < fw; x++ {
				dx.Set(full.At(ic, y+spec.Pad, x+spec.Pad), ic, y, x)
			}
		}
	}
	return dx
}
