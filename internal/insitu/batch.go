package insitu

import (
	"fmt"

	"github.com/inca-arch/inca/internal/core"
	"github.com/inca-arch/inca/internal/tensor"
	"github.com/inca-arch/inca/internal/train"
)

// ForwardBatch runs a whole batch through the arrays the 3D way: each
// convolution executes once with the batch spread across the stacked
// planes and the kernels broadcast over the shared pillars (§IV.B), while
// the digital pooling/activation units process each image's map.
func (m *Machine) ForwardBatch(net *train.Network, xs []*tensor.Tensor) []*tensor.Tensor {
	outs, _ := m.forwardBatch(net, xs)
	return outs
}

// forwardBatch also returns each layer's per-image inputs for the
// backward pass.
func (m *Machine) forwardBatch(net *train.Network, xs []*tensor.Tensor) ([]*tensor.Tensor, [][]*tensor.Tensor) {
	cur := append([]*tensor.Tensor(nil), xs...)
	inputs := make([][]*tensor.Tensor, len(net.Layers))
	for i, l := range net.Layers {
		inputs[i] = append([]*tensor.Tensor(nil), cur...)
		switch t := l.(type) {
		case *train.Conv:
			// One batch-parallel sweep over the 3D stacks.
			quantized := make([]*tensor.Tensor, len(cur))
			for p := range cur {
				quantized[p] = m.quantA(cur[p])
			}
			w := m.quantW(t.W)
			k := float64(w.Dim(2))
			bound := 0.0
			if m.opt.ADCBits > 0 {
				bound = 4 * k * cur[0].RMS() * w.RMS()
			}
			outs, stats := core.FunctionalConv2D(quantized, w,
				m.funcOpts(t.Spec.Stride, t.Spec.Pad, bound))
			m.stats = m.stats.Plus(stats)
			cur = outs
		case *train.FC:
			for p := range cur {
				cur[p] = m.fcOnArrays(cur[p].Reshape(cur[p].Len()), t.W, t.B)
			}
		case *train.ReLU:
			for p := range cur {
				cur[p] = tensor.ReLU(cur[p])
			}
		case *train.MaxPool:
			for p := range cur {
				cur[p] = tensor.MaxPool2D(cur[p], t.K, t.K).Out
			}
		default:
			panic(fmt.Sprintf("insitu: unsupported layer %T", l))
		}
	}
	return cur, inputs
}

// TrainStepBatch runs one batch-parallel in-situ training step: a single
// 3D forward sweep, per-image error propagation with the batch's deltas
// again swept through the shared transposed kernels, gradient accumulation
// on the resident activations, and one mean-gradient SGD update written to
// the buffer-resident weights (the batch granularity PipeLayer-style WS
// must emulate image by image). It returns the mean loss.
func (m *Machine) TrainStepBatch(net *train.Network, xs []*tensor.Tensor, labels []int, lr float64) float64 {
	if len(xs) != len(labels) || len(xs) == 0 {
		panic("insitu: batch images and labels must match and be non-empty")
	}
	b := len(xs)
	outs, inputs := m.forwardBatch(net, xs)

	deltas := make([]*tensor.Tensor, b)
	totalLoss := 0.0
	for p := range outs {
		loss, d := train.SoftmaxCrossEntropy(outs[p], labels[p])
		totalLoss += loss
		deltas[p] = d
	}

	scale := 1.0 / float64(b)
	for i := len(net.Layers) - 1; i >= 0; i-- {
		switch t := net.Layers[i].(type) {
		case *train.FC:
			dW := tensor.New(t.W.Dims()...)
			dB := tensor.New(t.B.Dims()...)
			w := m.quantW(t.W)
			for p := range deltas {
				xin := inputs[i][p].Reshape(inputs[i][p].Len())
				dW.AddInPlace(tensor.Outer(deltas[p], xin))
				dB.AddInPlace(deltas[p])
				deltas[p] = tensor.MatVecT(w, deltas[p]).Reshape(inputs[i][p].Dims()...)
			}
			t.W.AXPYInPlace(-lr*scale, dW)
			t.B.AXPYInPlace(-lr*scale, dB)
		case *train.ReLU:
			for p := range deltas {
				deltas[p] = tensor.ReLUBackward(inputs[i][p], deltas[p])
			}
		case *train.MaxPool:
			for p := range deltas {
				res := tensor.MaxPool2D(inputs[i][p], t.K, t.K)
				deltas[p] = tensor.MaxPoolBackward(res, deltas[p], inputs[i][p].Dims())
			}
		case *train.Conv:
			dW := tensor.New(t.W.Dims()...)
			newDeltas := make([]*tensor.Tensor, b)
			for p := range deltas {
				dW.AddInPlace(m.gradOnArrays(inputs[i][p], deltas[p], t.Spec,
					t.W.Dim(2), t.W.Dim(3), t.W.Dim(0)))
			}
			// Error propagation for the whole batch in one 3D sweep over
			// the transposed kernels.
			newDeltas = m.backInputBatch(t.W, deltas, t.Spec,
				inputs[i][0].Dim(1), inputs[i][0].Dim(2))
			t.W.AXPYInPlace(-lr*scale, dW)
			deltas = newDeltas
		}
	}
	return totalLoss / float64(b)
}

// backInputBatch is the batched form of backInputOnArrays: all images'
// dilated, padded error maps occupy the planes of one stack and the
// rotated transposed kernels stream once for the whole batch.
func (m *Machine) backInputBatch(w *tensor.Tensor, deltas []*tensor.Tensor, spec tensor.ConvSpec, inH, inW int) []*tensor.Tensor {
	kh := w.Dim(2)
	wt := tensor.Rot180(w)
	padded := make([]*tensor.Tensor, len(deltas))
	for p := range deltas {
		padded[p] = tensor.Pad(tensor.Dilate(deltas[p], spec.Stride), kh-1)
	}
	outs, stats := core.FunctionalConv2D(padded, wt,
		core.FuncOptions{Stride: 1, Noise: m.opt.ActNoise})
	m.stats = m.stats.Plus(stats)

	c := wt.Dim(0)
	result := make([]*tensor.Tensor, len(deltas))
	for p, full := range outs {
		dx := tensor.New(c, inH, inW)
		fh, fw := full.Dim(1), full.Dim(2)
		for ic := 0; ic < c; ic++ {
			for y := 0; y < inH && y+spec.Pad < fh; y++ {
				for x := 0; x < inW && x+spec.Pad < fw; x++ {
					dx.Set(full.At(ic, y+spec.Pad, x+spec.Pad), ic, y, x)
				}
			}
		}
		result[p] = dx
	}
	return result
}
