package insitu

import (
	"math"
	"math/rand"
	"testing"

	"github.com/inca-arch/inca/internal/data"
	"github.com/inca-arch/inca/internal/rram"
	"github.com/inca-arch/inca/internal/tensor"
	"github.com/inca-arch/inca/internal/train"
)

func smallNet(seed int64) *train.Network {
	return train.SmallCNN(rand.New(rand.NewSource(seed)), 1, 12, 12, 4)
}

// TestForwardMatchesSoftware checks the in-situ forward pass equals the
// software engine in the ideal (no quantization, no noise) case.
func TestForwardMatchesSoftware(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := smallNet(2)
	m := New(Options{})
	for i := 0; i < 5; i++ {
		x := tensor.Randn(rng, 1, 1, 12, 12)
		hw := m.Forward(net, x)
		sw := net.Forward(x)
		if !hw.Equal(sw, 1e-9) {
			t.Fatalf("sample %d: in-situ forward differs from software", i)
		}
	}
	if m.Stats().CellReads == 0 || m.Stats().CellWrites == 0 {
		t.Fatal("array event counts not recorded")
	}
}

// TestTrainStepMatchesSoftware verifies one in-situ SGD step produces the
// same weights as the software engine's step.
func TestTrainStepMatchesSoftware(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.Randn(rng, 1, 1, 12, 12)
	const label = 2
	const lr = 0.05

	hwNet := smallNet(4)
	swNet := hwNet.Clone()

	m := New(Options{})
	hwLoss := m.TrainStep(hwNet, x, label, lr)

	out := swNet.Forward(x)
	swLoss, delta := train.SoftmaxCrossEntropy(out, label)
	swNet.Backward(delta)
	swNet.Step(lr, nil)

	if math.Abs(hwLoss-swLoss) > 1e-9 {
		t.Fatalf("loss differs: hw %v, sw %v", hwLoss, swLoss)
	}
	for i := range hwNet.Layers {
		hc, ok := hwNet.Layers[i].(*train.Conv)
		if !ok {
			continue
		}
		sc := swNet.Layers[i].(*train.Conv)
		if !hc.W.Equal(sc.W, 1e-8) {
			t.Fatalf("conv layer %d weights diverged after one step", i)
		}
	}
	for i := range hwNet.Layers {
		hf, ok := hwNet.Layers[i].(*train.FC)
		if !ok {
			continue
		}
		sf := swNet.Layers[i].(*train.FC)
		if !hf.W.Equal(sf.W, 1e-8) || !hf.B.Equal(sf.B, 1e-8) {
			t.Fatalf("fc layer %d parameters diverged after one step", i)
		}
	}
}

// TestInSituTrainingLearns trains a network entirely through the array
// models and checks it learns the synthetic task — the end-to-end §IV.C
// demonstration.
func TestInSituTrainingLearns(t *testing.T) {
	cfg := data.DefaultConfig()
	cfg.H, cfg.W = 12, 12
	cfg.Classes = 4
	cfg.PerClass = 30
	ds := data.Generate(cfg)
	trainSet, testSet := ds.Split(0.25)

	net := train.SmallCNN(rand.New(rand.NewSource(5)), 1, 12, 12, 4)
	m := New(Options{})
	for epoch := 0; epoch < 6; epoch++ {
		for _, s := range trainSet.Samples {
			m.TrainStep(net, s.Image, s.Label, 0.03)
		}
	}
	acc := train.Accuracy(net, testSet)
	if acc < 80 {
		t.Fatalf("in-situ training accuracy = %.1f%%, want >= 80%%", acc)
	}
}

// TestQuantizedForwardClose verifies 8-bit operand quantization plus a
// 4-bit ADC keeps the in-situ output close to the ideal result.
func TestQuantizedForwardClose(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := smallNet(7)
	x := tensor.Randn(rng, 1, 1, 12, 12)
	ideal := New(Options{}).Forward(net, x)
	quant := New(Options{WeightBits: 8, ActivationBits: 8, ADCBits: 4}).Forward(net, x)

	// Outputs should agree on the argmax most of the time; check relative
	// error of the logits is moderate.
	num, den := 0.0, 0.0
	for i := range ideal.Data() {
		d := ideal.Data()[i] - quant.Data()[i]
		num += d * d
		den += ideal.Data()[i] * ideal.Data()[i]
	}
	rel := math.Sqrt(num / (den + 1e-12))
	if rel > 0.5 {
		t.Fatalf("quantized output relative error %.3f too large", rel)
	}
}

// TestActNoisePerturbs checks the IS noise hook reaches the arrays.
func TestActNoisePerturbs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := smallNet(9)
	x := tensor.Randn(rng, 1, 1, 12, 12)
	clean := New(Options{}).Forward(net, x)
	noisy := New(Options{ActNoise: rram.NewNoiseModel(0.05, 10)}).Forward(net, x)
	if clean.Equal(noisy, 1e-9) {
		t.Fatal("activation noise had no effect on in-situ forward")
	}
}

// TestWearTracking checks endurance accounting counts FC plane writes.
func TestWearTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := smallNet(12)
	m := New(Options{TrackWear: true, Endurance: 1 << 40})
	for i := 0; i < 3; i++ {
		m.Forward(net, tensor.Randn(rng, 1, 1, 12, 12))
	}
	if m.MaxCellWrites() == 0 {
		t.Fatal("wear tracking recorded no writes")
	}
}

// TestStridedConvGradientsMatch exercises the dilation path in the
// in-situ backward pass.
func TestStridedConvGradientsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := &train.Network{}
	net.Layers = append(net.Layers,
		train.NewConv(rng, 3, 1, 3, tensor.ConvSpec{Stride: 2, Pad: 1}),
		&train.ReLU{},
		train.NewFC(rng, 3, 3*6*6),
	)
	sw := net.Clone()
	x := tensor.Randn(rng, 1, 1, 12, 12)

	m := New(Options{})
	m.TrainStep(net, x, 1, 0.05)

	out := sw.Forward(x)
	_, delta := train.SoftmaxCrossEntropy(out, 1)
	sw.Backward(delta)
	sw.Step(0.05, nil)

	hwConv := net.Layers[0].(*train.Conv)
	swConv := sw.Layers[0].(*train.Conv)
	if !hwConv.W.Equal(swConv.W, 1e-8) {
		t.Fatal("strided conv weights diverged after one in-situ step")
	}
}
