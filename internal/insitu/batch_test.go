package insitu

import (
	"math"
	"math/rand"
	"testing"

	"github.com/inca-arch/inca/internal/data"
	"github.com/inca-arch/inca/internal/tensor"
	"github.com/inca-arch/inca/internal/train"
)

// TestForwardBatchMatchesPerImage verifies the 3D batch sweep produces
// exactly the per-image results.
func TestForwardBatchMatchesPerImage(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	net := smallNet(42)
	batch := []*tensor.Tensor{
		tensor.Randn(rng, 1, 1, 12, 12),
		tensor.Randn(rng, 1, 1, 12, 12),
		tensor.Randn(rng, 1, 1, 12, 12),
	}
	m := New(Options{})
	outs := m.ForwardBatch(net, batch)
	for p, x := range batch {
		want := net.Forward(x)
		if !outs[p].Equal(want, 1e-9) {
			t.Fatalf("image %d: batched forward differs from software", p)
		}
	}
}

// TestTrainStepBatchOfOneEqualsTrainStep pins batch consistency at B=1.
func TestTrainStepBatchOfOneEqualsTrainStep(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x := tensor.Randn(rng, 1, 1, 12, 12)
	a := smallNet(44)
	b := a.Clone()

	lossA := New(Options{}).TrainStep(a, x, 1, 0.05)
	lossB := New(Options{}).TrainStepBatch(b, []*tensor.Tensor{x}, []int{1}, 0.05)
	if math.Abs(lossA-lossB) > 1e-9 {
		t.Fatalf("losses differ: %v vs %v", lossA, lossB)
	}
	for i := range a.Layers {
		ca, ok := a.Layers[i].(*train.Conv)
		if !ok {
			continue
		}
		cb := b.Layers[i].(*train.Conv)
		if !ca.W.Equal(cb.W, 1e-9) {
			t.Fatalf("conv %d weights diverged", i)
		}
	}
}

// TestTrainStepBatchEqualsMeanGradient verifies the batch step applies the
// mean of the per-sample gradients — the mathematically correct batch-SGD
// step computed with one 3D sweep.
func TestTrainStepBatchEqualsMeanGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	const b = 3
	xs := make([]*tensor.Tensor, b)
	labels := make([]int, b)
	for p := range xs {
		xs[p] = tensor.Randn(rng, 1, 1, 12, 12)
		labels[p] = p % 4
	}
	const lr = 0.05

	hw := smallNet(46)
	sw := hw.Clone()

	New(Options{}).TrainStepBatch(hw, xs, labels, lr)

	// Software reference: accumulate per-sample gradients on a frozen
	// model, then apply the mean once.
	accW := map[int]*tensor.Tensor{}
	accB := map[int]*tensor.Tensor{}
	frozen := sw.Clone()
	for p := range xs {
		step := frozen.Clone()
		out := step.Forward(xs[p])
		_, delta := train.SoftmaxCrossEntropy(out, labels[p])
		step.Backward(delta)
		// Harvest gradients by diffing a unit step.
		for i, l := range step.Layers {
			switch tl := l.(type) {
			case *train.Conv:
				before := tl.W.Clone()
				tl.Step(1, nil)
				g := before.SubInPlace(tl.W) // = dW
				if accW[i] == nil {
					accW[i] = tensor.New(g.Dims()...)
				}
				accW[i].AddInPlace(g)
			case *train.FC:
				beforeW := tl.W.Clone()
				beforeB := tl.B.Clone()
				tl.Step(1, nil)
				gw := beforeW.SubInPlace(tl.W)
				gb := beforeB.SubInPlace(tl.B)
				if accW[i] == nil {
					accW[i] = tensor.New(gw.Dims()...)
					accB[i] = tensor.New(gb.Dims()...)
				}
				accW[i].AddInPlace(gw)
				accB[i].AddInPlace(gb)
			}
		}
	}
	for i, l := range sw.Layers {
		switch tl := l.(type) {
		case *train.Conv:
			tl.W.AXPYInPlace(-lr/float64(b), accW[i])
		case *train.FC:
			tl.W.AXPYInPlace(-lr/float64(b), accW[i])
			tl.B.AXPYInPlace(-lr/float64(b), accB[i])
		}
	}

	for i := range hw.Layers {
		switch hl := hw.Layers[i].(type) {
		case *train.Conv:
			if !hl.W.Equal(sw.Layers[i].(*train.Conv).W, 1e-8) {
				t.Fatalf("conv %d weights differ from mean-gradient reference", i)
			}
		case *train.FC:
			sl := sw.Layers[i].(*train.FC)
			if !hl.W.Equal(sl.W, 1e-8) || !hl.B.Equal(sl.B, 1e-8) {
				t.Fatalf("fc %d parameters differ from mean-gradient reference", i)
			}
		}
	}
}

// TestBatchInSituTrainingLearns trains with batch-parallel steps and
// checks convergence.
func TestBatchInSituTrainingLearns(t *testing.T) {
	cfg := data.DefaultConfig()
	cfg.H, cfg.W = 12, 12
	cfg.Classes = 4
	cfg.PerClass = 30
	ds := data.Generate(cfg)
	trainSet, testSet := ds.Split(0.25)

	net := train.SmallCNN(rand.New(rand.NewSource(47)), 1, 12, 12, 4)
	m := New(Options{})
	const batchSize = 8
	for epoch := 0; epoch < 10; epoch++ {
		for at := 0; at+batchSize <= trainSet.Len(); at += batchSize {
			xs := make([]*tensor.Tensor, batchSize)
			labels := make([]int, batchSize)
			for j := 0; j < batchSize; j++ {
				xs[j] = trainSet.Samples[at+j].Image
				labels[j] = trainSet.Samples[at+j].Label
			}
			m.TrainStepBatch(net, xs, labels, 0.1)
		}
	}
	if acc := train.Accuracy(net, testSet); acc < 75 {
		t.Fatalf("batch in-situ training accuracy = %.1f%%, want >= 75%%", acc)
	}
}
