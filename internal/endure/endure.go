// Package endure analyzes the device-endurance exposure of the two
// dataflows — the concern the paper's §VI raises ("INCA is also unable to
// avoid the endurance issue of RRAMs like other trainable accelerators")
// and defers to future work.
//
// The write pressure is structural:
//
//   - IS (INCA): activations are rewritten on *every* pass — each batch's
//     forward writes every activation cell once and the backward
//     overwrites it with errors once, in inference and training alike.
//   - WS (baseline): weights are static during inference (zero writes)
//     but every training batch rewrites the updated weights and their
//     transposed copies.
//
// Lifetime therefore favors WS for inference-only deployments and
// converges for training, with the crossover set by the device's write
// budget — exactly the trade the paper's future-work section points at.
package endure

import (
	"math"

	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/rram"
	"github.com/inca-arch/inca/internal/sim"
)

// Profile is one (dataflow, phase, device) endurance analysis.
type Profile struct {
	Arch   string
	Phase  sim.Phase
	Device string

	// WritesPerCellPerBatch is the worst-case per-cell write count each
	// batch incurs.
	WritesPerCellPerBatch float64
	// BatchesToFailure is the device write budget divided by the per-batch
	// pressure (+Inf when there are no writes).
	BatchesToFailure float64
	// LifetimeSeconds converts batches to wall-clock using the simulated
	// batch latency.
	LifetimeSeconds float64
}

// LifetimeYears returns the lifetime in years.
func (p Profile) LifetimeYears() float64 {
	return p.LifetimeSeconds / (365.25 * 24 * 3600)
}

// ISWritesPerBatch returns the per-cell write pressure of the IS dataflow
// for one batch: one activation write in the forward pass, plus one error
// overwrite in training (§IV.C).
func ISWritesPerBatch(phase sim.Phase) float64 {
	if phase == sim.Training {
		return 2
	}
	return 1
}

// WSWritesPerBatch returns the per-cell write pressure of the WS dataflow
// for one batch: zero in inference (weights stay), one rewrite of the
// weight cells (and their transposed copies, which wear identically) per
// training batch.
func WSWritesPerBatch(phase sim.Phase) float64 {
	if phase == sim.Training {
		return 1
	}
	return 0
}

// Analyze builds the endurance profile for a dataflow on a device, using
// the simulated batch latency to convert the write budget to wall-clock
// lifetime. net is accepted for symmetry with the simulators (the per-cell
// pressure is shape-independent; the *energy* of the writes is what the
// simulators charge).
func Analyze(archName string, phase sim.Phase, dev rram.Device, _ *nn.Network, batchLatency float64) Profile {
	var perBatch float64
	switch archName {
	case "INCA":
		perBatch = ISWritesPerBatch(phase)
	default:
		perBatch = WSWritesPerBatch(phase)
	}
	p := Profile{
		Arch:                  archName,
		Phase:                 phase,
		Device:                dev.Name,
		WritesPerCellPerBatch: perBatch,
	}
	if perBatch == 0 || dev.Endurance == 0 {
		p.BatchesToFailure = math.Inf(1)
		p.LifetimeSeconds = math.Inf(1)
		return p
	}
	p.BatchesToFailure = dev.Endurance / perBatch
	p.LifetimeSeconds = p.BatchesToFailure * batchLatency
	return p
}

// Candidates returns the device technologies the future-work analysis
// compares.
func Candidates() []rram.Device {
	return []rram.Device{
		rram.DefaultDevice(),
		rram.PCMDevice(),
		rram.FeFETDevice(),
		rram.SRAMCell(),
	}
}
