package endure

import (
	"math"
	"testing"

	"github.com/inca-arch/inca/internal/rram"
	"github.com/inca-arch/inca/internal/sim"
)

func TestWritePressureStructure(t *testing.T) {
	if ISWritesPerBatch(sim.Inference) != 1 || ISWritesPerBatch(sim.Training) != 2 {
		t.Fatal("IS write pressure wrong")
	}
	if WSWritesPerBatch(sim.Inference) != 0 || WSWritesPerBatch(sim.Training) != 1 {
		t.Fatal("WS write pressure wrong")
	}
}

func TestWSInferenceLastsForever(t *testing.T) {
	p := Analyze("WS-Baseline", sim.Inference, rram.DefaultDevice(), nil, 0.1)
	if !math.IsInf(p.BatchesToFailure, 1) {
		t.Fatal("WS inference writes nothing; lifetime should be infinite")
	}
}

func TestISTrainingWearsFasterThanWS(t *testing.T) {
	dev := rram.DefaultDevice()
	is := Analyze("INCA", sim.Training, dev, nil, 0.1)
	ws := Analyze("WS-Baseline", sim.Training, dev, nil, 0.1)
	if is.BatchesToFailure >= ws.BatchesToFailure {
		t.Fatalf("IS training (%v batches) should wear faster than WS (%v)",
			is.BatchesToFailure, ws.BatchesToFailure)
	}
}

func TestLifetimeScalesWithEnduranceAndLatency(t *testing.T) {
	dev := rram.DefaultDevice()
	short := Analyze("INCA", sim.Training, dev, nil, 0.1)
	long := Analyze("INCA", sim.Training, dev, nil, 1.0)
	if long.LifetimeSeconds <= short.LifetimeSeconds {
		t.Fatal("slower batches should stretch wall-clock lifetime")
	}
	better := rram.FeFETDevice()
	fe := Analyze("INCA", sim.Training, better, nil, 0.1)
	if fe.BatchesToFailure <= short.BatchesToFailure {
		t.Fatal("higher-endurance device should survive more batches")
	}
}

func TestCandidates(t *testing.T) {
	cands := Candidates()
	if len(cands) != 4 {
		t.Fatalf("candidates = %d, want 4", len(cands))
	}
	names := map[string]bool{}
	for _, d := range cands {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if d.Endurance <= 0 {
			t.Errorf("%s: missing endurance budget", d.Name)
		}
		names[d.Name] = true
	}
	if len(names) != 4 {
		t.Fatal("candidate names not unique")
	}
	// SRAM must be the most durable, RRAM/PCM the least.
	var sram, rramDev rram.Device
	for _, d := range cands {
		switch d.Name {
		case "SRAM (8T CIM)":
			sram = d
		case "RRAM (TaOx/HfOx)":
			rramDev = d
		}
	}
	if sram.Endurance <= rramDev.Endurance {
		t.Fatal("SRAM should out-endure RRAM")
	}
}

func TestLifetimeYears(t *testing.T) {
	p := Profile{LifetimeSeconds: 365.25 * 24 * 3600}
	if math.Abs(p.LifetimeYears()-1) > 1e-12 {
		t.Fatalf("LifetimeYears = %v, want 1", p.LifetimeYears())
	}
}
