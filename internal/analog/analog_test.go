package analog

import (
	"math"
	"testing"
	"testing/quick"
)

// TestADCEnergyFourToOneRule pins the paper's headline scaling fact: one
// 8-bit ADC consumes the energy of four 4-bit ADCs, not two.
func TestADCEnergyFourToOneRule(t *testing.T) {
	e8 := NewADC(8).EnergyPerConv
	e4 := NewADC(4).EnergyPerConv
	if ratio := e8 / e4; math.Abs(ratio-4) > 1e-9 {
		t.Fatalf("8-bit/4-bit energy ratio = %v, want 4", ratio)
	}
}

// TestADCRateAnchors pins the 1.2 GHz (8-bit) and 2.1 GHz (4-bit) anchor
// pair from the paper's Limitation 3.
func TestADCRateAnchors(t *testing.T) {
	r8 := 1 / NewADC(8).ConvLatency
	r4 := 1 / NewADC(4).ConvLatency
	if math.Abs(r8-1.2e9)/1.2e9 > 1e-6 {
		t.Fatalf("8-bit rate = %v, want 1.2GHz", r8)
	}
	if math.Abs(r4-2.1e9)/2.1e9 > 1e-6 {
		t.Fatalf("4-bit rate = %v, want 2.1GHz", r4)
	}
}

func TestADCMonotoneInBits(t *testing.T) {
	for b := 2; b <= 13; b++ {
		lo, hi := NewADC(b), NewADC(b+1)
		if hi.EnergyPerConv <= lo.EnergyPerConv {
			t.Fatalf("ADC energy not increasing at %d bits", b)
		}
		if hi.ConvLatency <= lo.ConvLatency {
			t.Fatalf("ADC latency not increasing at %d bits", b)
		}
		if hi.Area <= lo.Area {
			t.Fatalf("ADC area not increasing at %d bits", b)
		}
	}
}

func TestADCOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewADC(0)
}

func TestADCBulkCosts(t *testing.T) {
	a := NewADC(4)
	if got := a.ConversionEnergy(1000); math.Abs(got-1000*a.EnergyPerConv) > 1e-20 {
		t.Fatalf("ConversionEnergy = %v", got)
	}
	if got := a.ConversionTime(1000); math.Abs(got-1000*a.ConvLatency) > 1e-18 {
		t.Fatalf("ConversionTime = %v", got)
	}
}

func TestDAC(t *testing.T) {
	d1 := NewDAC(1)
	d2 := NewDAC(2)
	if d2.EnergyPerConv <= d1.EnergyPerConv {
		t.Fatal("DAC energy should grow with bits")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0-bit DAC")
		}
	}()
	NewDAC(0)
}

func TestTreeAdds(t *testing.T) {
	cases := []struct{ n, want int64 }{{0, 0}, {1, 0}, {2, 1}, {8, 7}, {100, 99}}
	for _, c := range cases {
		if got := TreeAdds(c.n); got != c.want {
			t.Errorf("TreeAdds(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestTreeDepth(t *testing.T) {
	cases := []struct{ n, want int64 }{{1, 0}, {2, 1}, {4, 2}, {8, 3}, {9, 4}, {16, 4}}
	for _, c := range cases {
		if got := TreeDepth(c.n); got != c.want {
			t.Errorf("TreeDepth(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestShiftAccEnergy(t *testing.T) {
	d := NewDigital()
	if d.ShiftAccEnergy(1) != 0 {
		t.Fatal("single plane needs no accumulation")
	}
	if got := d.ShiftAccEnergy(8); math.Abs(got-7*d.AddEnergy) > 1e-20 {
		t.Fatalf("ShiftAccEnergy(8) = %v", got)
	}
}

// PROPERTY: halving ADC resolution by 2 bits always halves energy (the
// exponential law behind Fig. 13a).
func TestPropertyADCEnergyLaw(t *testing.T) {
	f := func(raw uint8) bool {
		b := 3 + int(raw)%10 // 3..12
		hi := NewADC(b).EnergyPerConv
		lo := NewADC(b - 2).EnergyPerConv
		return math.Abs(hi/lo-2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// PROPERTY: an adder tree's depth is within ceil(log2(n)) and its add
// count is exactly n-1.
func TestPropertyAdderTree(t *testing.T) {
	f := func(raw uint16) bool {
		n := int64(raw)%4096 + 1
		depth := TreeDepth(n)
		wantDepth := int64(math.Ceil(math.Log2(float64(n))))
		if n == 1 {
			wantDepth = 0
		}
		return depth == wantDepth && TreeAdds(n) == n-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
