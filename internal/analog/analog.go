// Package analog models the mixed-signal periphery of a crossbar macro:
// analog-to-digital converters, digital-to-analog drivers, and the digital
// reduction units (adder trees, shift-accumulators).
//
// The ADC cost model encodes the paper's Limitation-3 observation: "It is
// well-known that ADCs exponentially undermine performance and energy
// efficiency. For example, four 4-bit ADC at 2.1 GHz can replace one 8-bit
// at 1.2 GHz" and "one 8-bit ADC consumes energy as much as four 4-bit
// ADCs, not two". Energy therefore scales as 2^(bits/2) and sample rate
// degrades geometrically with resolution.
package analog

import (
	"fmt"
	"math"
)

// Reference anchor points for the ADC scaling laws (paper §III.A and §V.B,
// citing FORMS [67]): an 8-bit SAR ADC at 1.2 GHz and a 4-bit ADC at
// 2.1 GHz, with the 4:1 energy ratio between them.
const (
	refADCBits       = 8
	refADCEnergy     = 2e-12  // J per 8-bit conversion (22 nm estimate)
	refADCRate       = 1.2e9  // conversions/s at 8 bits
	refADCRate4      = 2.1e9  // conversions/s at 4 bits
	refADCAreaPerBit = 3.9e-4 // mm² for the 8-bit reference (ISAAC-class)
)

// ADC models one analog-to-digital converter of a given resolution.
type ADC struct {
	Bits          int
	EnergyPerConv float64 // J
	ConvLatency   float64 // s
	Area          float64 // mm²
}

// NewADC derives an ADC of the requested resolution from the reference
// anchors. Energy halves per 2 bits removed (the paper's 4-bit ADC uses
// 1/4 the energy of the 8-bit), rate follows the 1.2→2.1 GHz anchor pair,
// and area scales like energy (SAR capacitor DAC dominated).
func NewADC(bits int) ADC {
	if bits < 1 || bits > 14 {
		panic(fmt.Sprintf("analog: unsupported ADC resolution %d", bits))
	}
	energy := refADCEnergy * math.Pow(2, float64(bits-refADCBits)/2)
	// Rate anchors: 8-bit -> 1.2 GHz, 4-bit -> 2.1 GHz; geometric in bits.
	perBitRate := math.Pow(refADCRate4/refADCRate, 1.0/4)
	rate := refADCRate * math.Pow(perBitRate, float64(refADCBits-bits))
	area := refADCAreaPerBit * math.Pow(2, float64(bits-refADCBits)/2) * float64(refADCBits) / float64(refADCBits)
	return ADC{
		Bits:          bits,
		EnergyPerConv: energy,
		ConvLatency:   1 / rate,
		Area:          area,
	}
}

// ConversionEnergy returns the energy of n conversions.
func (a ADC) ConversionEnergy(n int64) float64 { return float64(n) * a.EnergyPerConv }

// ConversionTime returns the serial time of n conversions through one ADC.
func (a ADC) ConversionTime(n int64) float64 { return float64(n) * a.ConvLatency }

// DAC models the input drivers. Both designs in the paper use 1-bit DACs
// (Table II), which are essentially wordline drivers.
type DAC struct {
	Bits          int
	EnergyPerConv float64 // J
	ConvLatency   float64 // s
	Area          float64 // mm²
}

// NewDAC returns a driver model of the given resolution; 1-bit drivers
// cost ~0.05 pJ per event at 22 nm.
func NewDAC(bits int) DAC {
	if bits < 1 || bits > 8 {
		panic(fmt.Sprintf("analog: unsupported DAC resolution %d", bits))
	}
	base := 0.05e-12
	return DAC{
		Bits:          bits,
		EnergyPerConv: base * math.Pow(2, float64(bits-1)),
		ConvLatency:   0.1e-9,
		Area:          1.7e-7 * math.Pow(2, float64(bits-1)),
	}
}

// Digital models the per-operation cost of the digital reduction fabric:
// adders, shift-accumulators and activation/pooling logic at the target
// node.
type Digital struct {
	AddEnergy  float64 // J per (8..16)-bit add
	AddLatency float64 // s per add when serialized
}

// NewDigital returns 22 nm-class digital costs.
func NewDigital() Digital {
	return Digital{
		AddEnergy:  0.03e-12,
		AddLatency: 0.1e-9,
	}
}

// TreeAdds returns the number of two-input additions needed to reduce n
// partial sums (an adder tree performs n-1 adds).
func TreeAdds(n int64) int64 {
	if n <= 1 {
		return 0
	}
	return n - 1
}

// TreeDepth returns the latency-critical depth of an n-input adder tree.
func TreeDepth(n int64) int64 {
	if n <= 1 {
		return 0
	}
	d := int64(0)
	for v := n; v > 1; v = (v + 1) / 2 {
		d++
	}
	return d
}

// ShiftAccEnergy returns the energy of combining `planes` bit-plane partial
// sums in a shift-accumulator (one add per plane beyond the first).
func (d Digital) ShiftAccEnergy(planes int64) float64 {
	if planes <= 1 {
		return 0
	}
	return float64(planes-1) * d.AddEnergy
}
