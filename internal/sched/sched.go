// Package sched builds execution schedules for the two dataflows: the
// ISAAC-style layer pipeline the WS baseline uses for inference (one image
// per stage, successive images chasing each other through the layers), the
// serialized schedule its training forces, and INCA's batch-parallel
// layer sequence. It produces per-(image, stage) timelines and an ASCII
// Gantt rendering for inspection.
package sched

import (
	"fmt"
	"math"
	"strings"
)

// Stage is one pipeline stage (a layer mapped on some hardware).
type Stage struct {
	Name    string
	Latency float64 // seconds per item
}

// Entry is one scheduled execution of a stage for one item.
type Entry struct {
	Stage string
	Item  int // image index
	Start float64
	End   float64
}

// LayerPipeline schedules items through the stages with unbounded
// inter-stage buffering: stage s of item i starts when both stage s-1 of
// item i and stage s of item i-1 have finished. This is the WS inference
// pipeline; its makespan equals Σ latencies + (items−1) × bottleneck.
func LayerPipeline(stages []Stage, items int) []Entry {
	if items <= 0 || len(stages) == 0 {
		return nil
	}
	entries := make([]Entry, 0, items*len(stages))
	prevItem := make([]float64, len(stages)) // finish time of item i-1 per stage
	for i := 0; i < items; i++ {
		t := 0.0
		for s, st := range stages {
			start := math.Max(t, prevItem[s])
			end := start + st.Latency
			entries = append(entries, Entry{Stage: st.Name, Item: i, Start: start, End: end})
			prevItem[s] = end
			t = end
		}
	}
	return entries
}

// Serial schedules every item through every stage with no overlap — the
// WS training constraint ("repeated operations for each image").
func Serial(stages []Stage, items int) []Entry {
	var entries []Entry
	t := 0.0
	for i := 0; i < items; i++ {
		for _, st := range stages {
			entries = append(entries, Entry{Stage: st.Name, Item: i, Start: t, End: t + st.Latency})
			t += st.Latency
		}
	}
	return entries
}

// BatchParallel schedules the stages once for the whole batch — INCA's 3D
// execution, where all planes respond together.
func BatchParallel(stages []Stage) []Entry {
	var entries []Entry
	t := 0.0
	for _, st := range stages {
		entries = append(entries, Entry{Stage: st.Name, Item: -1, Start: t, End: t + st.Latency})
		t += st.Latency
	}
	return entries
}

// Makespan returns the completion time of the schedule.
func Makespan(entries []Entry) float64 {
	end := 0.0
	for _, e := range entries {
		if e.End > end {
			end = e.End
		}
	}
	return end
}

// Utilization returns the mean fraction of the makespan each stage is
// busy.
func Utilization(entries []Entry) float64 {
	if len(entries) == 0 {
		return 0
	}
	busy := map[string]float64{}
	for _, e := range entries {
		busy[e.Stage] += e.End - e.Start
	}
	span := Makespan(entries)
	if span == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range busy {
		sum += b / span
	}
	return sum / float64(len(busy))
}

// Gantt renders an ASCII timeline, one row per stage, width columns wide.
func Gantt(entries []Entry, width int) string {
	if len(entries) == 0 || width < 10 {
		return "(empty schedule)\n"
	}
	span := Makespan(entries)
	if span == 0 {
		return "(zero-length schedule)\n"
	}
	// Preserve first-appearance stage order.
	var order []string
	rows := map[string][]rune{}
	for _, e := range entries {
		if _, ok := rows[e.Stage]; !ok {
			order = append(order, e.Stage)
			rows[e.Stage] = []rune(strings.Repeat(".", width))
		}
	}
	glyphs := []rune("0123456789abcdefghijklmnopqrstuvwxyz")
	for _, e := range entries {
		row := rows[e.Stage]
		lo := int(e.Start / span * float64(width))
		hi := int(math.Ceil(e.End / span * float64(width)))
		if hi > width {
			hi = width
		}
		if hi <= lo {
			hi = lo + 1
			if hi > width {
				lo, hi = width-1, width
			}
		}
		g := '#'
		if e.Item >= 0 {
			g = glyphs[e.Item%len(glyphs)]
		}
		for c := lo; c < hi; c++ {
			row[c] = g
		}
	}
	nameW := 0
	for _, n := range order {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var b strings.Builder
	for _, n := range order {
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, n, string(rows[n]))
	}
	fmt.Fprintf(&b, "%-*s  makespan %.3g s\n", nameW, "", span)
	return b.String()
}
