package sched

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func stages(ts ...float64) []Stage {
	out := make([]Stage, len(ts))
	for i, t := range ts {
		out[i] = Stage{Name: string(rune('A' + i)), Latency: t}
	}
	return out
}

// TestPipelineMakespanFormula pins the classic result: with unbounded
// buffering, makespan = Σ latencies + (items-1) × bottleneck.
func TestPipelineMakespanFormula(t *testing.T) {
	cases := []struct {
		ts    []float64
		items int
	}{
		{[]float64{1, 2, 3}, 1},
		{[]float64{1, 2, 3}, 5},
		{[]float64{3, 1, 1}, 10},
		{[]float64{2, 2, 2, 2}, 7},
	}
	for _, c := range cases {
		got := Makespan(LayerPipeline(stages(c.ts...), c.items))
		sum, max := 0.0, 0.0
		for _, v := range c.ts {
			sum += v
			if v > max {
				max = v
			}
		}
		want := sum + float64(c.items-1)*max
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("pipeline(%v, %d) makespan = %v, want %v", c.ts, c.items, got, want)
		}
	}
}

func TestSerialMakespan(t *testing.T) {
	got := Makespan(Serial(stages(1, 2), 4))
	if got != 12 {
		t.Fatalf("serial makespan = %v, want 12", got)
	}
}

func TestBatchParallel(t *testing.T) {
	entries := BatchParallel(stages(1, 2, 3))
	if Makespan(entries) != 6 {
		t.Fatalf("batch-parallel makespan = %v, want 6", Makespan(entries))
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
}

// TestPipelineBeatsSerial verifies the structural ordering the simulators
// rely on: pipeline < serial for multi-item schedules.
func TestPipelineBeatsSerial(t *testing.T) {
	st := stages(1, 3, 2)
	p := Makespan(LayerPipeline(st, 8))
	s := Makespan(Serial(st, 8))
	if p >= s {
		t.Fatalf("pipeline %v should beat serial %v", p, s)
	}
}

func TestPipelineCausality(t *testing.T) {
	st := stages(1, 2, 1)
	entries := LayerPipeline(st, 4)
	// Group by item: stage s must start after stage s-1 ends.
	byItem := map[int][]Entry{}
	for _, e := range entries {
		byItem[e.Item] = append(byItem[e.Item], e)
	}
	for item, es := range byItem {
		for i := 1; i < len(es); i++ {
			if es[i].Start < es[i-1].End-1e-12 {
				t.Fatalf("item %d: stage %d starts before previous ends", item, i)
			}
		}
	}
	// Group by stage: items must not overlap on one stage.
	byStage := map[string][]Entry{}
	for _, e := range entries {
		byStage[e.Stage] = append(byStage[e.Stage], e)
	}
	for name, es := range byStage {
		for i := 1; i < len(es); i++ {
			if es[i].Start < es[i-1].End-1e-12 {
				t.Fatalf("stage %s: items overlap", name)
			}
		}
	}
}

func TestUtilization(t *testing.T) {
	// Balanced pipeline saturates as items grow.
	st := stages(1, 1, 1)
	low := Utilization(LayerPipeline(st, 1))
	high := Utilization(LayerPipeline(st, 50))
	if high <= low {
		t.Fatalf("utilization should grow with pipeline depth: %v vs %v", low, high)
	}
	if high < 0.9 {
		t.Fatalf("deep balanced pipeline utilization = %v, want >= 0.9", high)
	}
	if Utilization(nil) != 0 {
		t.Fatal("empty schedule utilization should be 0")
	}
}

func TestGanttRendering(t *testing.T) {
	entries := LayerPipeline(stages(1, 2), 3)
	g := Gantt(entries, 40)
	if !strings.Contains(g, "A") || !strings.Contains(g, "B") {
		t.Fatalf("gantt missing stage rows:\n%s", g)
	}
	if !strings.Contains(g, "makespan") {
		t.Fatal("gantt missing makespan line")
	}
	if !strings.Contains(g, "0") || !strings.Contains(g, "1") || !strings.Contains(g, "2") {
		t.Fatalf("gantt missing item glyphs:\n%s", g)
	}
	if Gantt(nil, 40) != "(empty schedule)\n" {
		t.Fatal("empty schedule should render placeholder")
	}
}

// PROPERTY: pipeline makespan is monotone in item count and never below
// the serial time of one item.
func TestPropertyPipelineMonotone(t *testing.T) {
	f := func(a, b, c uint8, n uint8) bool {
		st := stages(float64(a%16)+1, float64(b%16)+1, float64(c%16)+1)
		items := int(n%20) + 1
		m1 := Makespan(LayerPipeline(st, items))
		m2 := Makespan(LayerPipeline(st, items+1))
		single := st[0].Latency + st[1].Latency + st[2].Latency
		return m2 > m1 && m1 >= single-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
