// Package report renders experiment results as aligned text tables and
// labeled series — the rows and curves the paper's tables and figures
// present, printed by the benchmark harness and the cmd tools.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New builds an empty table.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row, formatting each value with Cell.
func (t *Table) AddRow(vals ...any) *Table {
	row := make([]string, len(vals))
	for i, v := range vals {
		row[i] = Cell(v)
	}
	t.Rows = append(t.Rows, row)
	return t
}

// Cell formats one value: floats get adaptive precision, everything else
// uses the default formatting.
func Cell(v any) string {
	switch x := v.(type) {
	case float64:
		switch {
		case x == 0:
			return "0"
		case x >= 1000 || x <= -1000:
			return fmt.Sprintf("%.0f", x)
		case x >= 10 || x <= -10:
			return fmt.Sprintf("%.1f", x)
		case x >= 0.01 || x <= -0.01:
			return fmt.Sprintf("%.3f", x)
		default:
			return fmt.Sprintf("%.2e", x)
		}
	case float32:
		return Cell(float64(x))
	default:
		return fmt.Sprint(v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one labeled curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a titled collection of series sharing an x-axis meaning.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Add appends a series.
func (f *Figure) Add(name string, x, y []float64) *Figure {
	f.Series = append(f.Series, Series{Name: name, X: x, Y: y})
	return f
}

// String renders the figure as a table of x versus one column per series.
func (f *Figure) String() string {
	if len(f.Series) == 0 {
		return f.Title + " (empty)\n"
	}
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t := New(fmt.Sprintf("%s [y: %s]", f.Title, f.YLabel), headers...)
	base := f.Series[0]
	for i := range base.X {
		row := []any{base.X[i]}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, s.Y[i])
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}
