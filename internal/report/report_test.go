package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := New("Title", "name", "value")
	tab.AddRow("short", 1.5)
	tab.AddRow("a-much-longer-name", 20000.0)
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "Title") {
		t.Fatalf("missing title: %q", lines[0])
	}
	// Value column starts at the same offset in both data rows.
	off1 := strings.Index(lines[3], "1.5")
	off2 := strings.Index(lines[4], "20000")
	if off1 != off2 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", off1, off2, s)
	}
}

func TestCellFormatting(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{0.0, "0"},
		{12345.0, "12345"},
		{42.42, "42.4"},
		{0.5, "0.500"},
		{0.0001, "1.00e-04"},
		{"text", "text"},
		{7, "7"},
		{float32(10.5), "10.5"},
	}
	for _, c := range cases {
		if got := Cell(c.in); got != c.want {
			t.Errorf("Cell(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFigureRendering(t *testing.T) {
	f := &Figure{Title: "Fig X", XLabel: "size", YLabel: "util"}
	f.Add("INCA", []float64{8, 16}, []float64{0.95, 0.9})
	f.Add("WS", []float64{8, 16}, []float64{0.5})
	s := f.String()
	for _, want := range []string{"Fig X", "size", "INCA", "WS", "0.950", "-"} {
		if !strings.Contains(s, want) {
			t.Fatalf("figure output missing %q:\n%s", want, s)
		}
	}
	empty := &Figure{Title: "none"}
	if !strings.Contains(empty.String(), "empty") {
		t.Fatal("empty figure should say so")
	}
}
