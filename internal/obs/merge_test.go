package obs

import (
	"strings"
	"testing"
	"time"
)

func span(trace, id, parent, name string, start int64) SpanData {
	base := time.Unix(0, 0)
	return SpanData{
		TraceID: trace, SpanID: id, ParentID: parent, Name: name,
		Start: base.Add(time.Duration(start) * time.Millisecond),
		End:   base.Add(time.Duration(start+1) * time.Millisecond),
	}
}

// TestRingEvicted pins the eviction counter: total emitted minus
// retained, the source of inca_trace_ring_evicted_total.
func TestRingEvicted(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(span("t", "s", "", "x", int64(i)))
	}
	if got := r.Evicted(); got != 6 {
		t.Fatalf("Evicted() = %d, want 6 (10 emitted into capacity 4)", got)
	}
	if r.Len() != 4 || r.Total() != 10 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total())
	}
}

// TestMergeSpans pins federation dedup: span identity is trace+span ID,
// the first occurrence wins, insertion order is preserved, and spans of
// other traces survive the merge untouched.
func TestMergeSpans(t *testing.T) {
	local := []SpanData{
		span("t1", "a", "", "root", 0),
		span("t1", "b", "a", "child", 1),
	}
	remote := []SpanData{
		span("t1", "b", "a", "child-dup", 1), // duplicate ID: dropped
		span("t1", "c", "a", "remote", 2),
		span("t2", "b", "", "other-trace", 3), // same span ID, different trace: kept
	}
	merged := MergeSpans(local, remote)
	if len(merged) != 4 {
		t.Fatalf("merged %d spans, want 4: %+v", len(merged), merged)
	}
	wantNames := []string{"root", "child", "remote", "other-trace"}
	for i, want := range wantNames {
		if merged[i].Name != want {
			t.Fatalf("merged[%d] = %q, want %q", i, merged[i].Name, want)
		}
	}
}

// TestDumpSpansTree pins the federated renderer: children indent under
// parents, spans whose parent the set does not retain render as roots
// (a shard's subtree whose coordinator span lives elsewhere), and other
// traces are filtered out.
func TestDumpSpansTree(t *testing.T) {
	spans := []SpanData{
		span("t1", "a", "", "serve/request", 0),
		span("t1", "b", "a", "cluster/dispatch", 1),
		span("t1", "d", "missing", "orphan/subtree", 2),
		span("t9", "z", "", "unrelated", 3),
	}
	tree := DumpSpans(spans, "t1")
	if !strings.HasPrefix(tree, "trace t1 (3 spans)") {
		t.Fatalf("header wrong:\n%s", tree)
	}
	if strings.Contains(tree, "unrelated") {
		t.Fatalf("tree leaked another trace:\n%s", tree)
	}
	for _, want := range []string{"serve/request", "cluster/dispatch", "orphan/subtree"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	// The dispatch child indents deeper than its root; the orphan
	// renders at the same depth as the root.
	indent := func(name string) int {
		for _, line := range strings.Split(tree, "\n") {
			if strings.Contains(line, name) {
				return len(line) - len(strings.TrimLeft(line, " "))
			}
		}
		t.Fatalf("no line for %q:\n%s", name, tree)
		return -1
	}
	root, child, orphan := indent("serve/request"), indent("cluster/dispatch"), indent("orphan/subtree")
	if child <= root {
		t.Fatalf("child indent %d not deeper than root %d:\n%s", child, root, tree)
	}
	if orphan != root {
		t.Fatalf("orphan indent %d, want root level %d:\n%s", orphan, root, tree)
	}
}
