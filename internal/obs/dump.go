package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Dump renders one trace from the ring as an indented tree — the
// debugging view behind the facade's TraceDump. Spans sort by start
// time under their parent; orphans (parent evicted from the ring, or a
// remote upstream) render as roots. An unknown trace renders as an
// empty string.
func Dump(r *Ring, traceID string) string {
	if r == nil {
		return ""
	}
	return DumpSpans(r.Trace(traceID), traceID)
}

// MergeSpans combines span sets from multiple sources (the local ring
// plus each peer's /v1/shard/trace answer) into one set, deduplicated
// by (trace ID, span ID) with the first occurrence winning. Input order
// is preserved; DumpSpans re-sorts structurally anyway.
func MergeSpans(sets ...[]SpanData) []SpanData {
	var out []SpanData
	seen := make(map[string]bool)
	for _, set := range sets {
		for _, sd := range set {
			key := sd.TraceID + "/" + sd.SpanID
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, sd)
		}
	}
	return out
}

// DumpSpans renders one trace from an explicit span set — the federated
// sibling of Dump, fed by MergeSpans when a coordinator assembles a
// cross-node trace. Spans of other traces are ignored; an empty
// selection renders as an empty string.
func DumpSpans(all []SpanData, traceID string) string {
	var spans []SpanData
	for _, sd := range all {
		if sd.TraceID == traceID {
			spans = append(spans, sd)
		}
	}
	if len(spans) == 0 {
		return ""
	}
	known := make(map[string]bool, len(spans))
	for _, sd := range spans {
		known[sd.SpanID] = true
	}
	children := make(map[string][]SpanData)
	var roots []SpanData
	for _, sd := range spans {
		if sd.ParentID != "" && known[sd.ParentID] {
			children[sd.ParentID] = append(children[sd.ParentID], sd)
		} else {
			roots = append(roots, sd)
		}
	}
	byStart := func(s []SpanData) {
		sort.Slice(s, func(i, j int) bool {
			if !s[i].Start.Equal(s[j].Start) {
				return s[i].Start.Before(s[j].Start)
			}
			return s[i].SpanID < s[j].SpanID
		})
	}
	byStart(roots)
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans)\n", traceID, len(spans))
	var walk func(sd SpanData, depth int)
	walk = func(sd SpanData, depth int) {
		fmt.Fprintf(&b, "%s%s  %.6fs", strings.Repeat("  ", depth+1), sd.Name, sd.DurationS)
		for _, a := range sd.Attrs {
			fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		}
		if len(sd.Counters) > 0 {
			keys := make([]string, 0, len(sd.Counters))
			for k := range sd.Counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%d", k, sd.Counters[k])
			}
		}
		b.WriteByte('\n')
		kids := children[sd.SpanID]
		byStart(kids)
		for _, kid := range kids {
			walk(kid, depth+1)
		}
	}
	for _, root := range roots {
		walk(root, 0)
	}
	return b.String()
}
