package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Ring is a bounded in-memory sink retaining the most recent completed
// spans. It is the queryable store behind the HTTP service's
// GET /v1/trace/{id}: bounded so a long-lived server cannot grow
// without limit, oldest spans evicted first.
type Ring struct {
	mu    sync.Mutex
	buf   []SpanData
	next  int   // write cursor
	count int   // valid entries (== len(buf) once wrapped)
	total int64 // lifetime emitted spans, including evicted
}

// DefaultRingCapacity bounds a ring constructed with capacity <= 0.
const DefaultRingCapacity = 4096

// NewRing returns a ring retaining up to capacity spans
// (DefaultRingCapacity when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]SpanData, capacity)}
}

// Emit stores one completed span, evicting the oldest at capacity.
func (r *Ring) Emit(sd SpanData) {
	r.mu.Lock()
	r.buf[r.next] = sd
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.total++
	r.mu.Unlock()
}

// Len reports how many spans the ring currently retains.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Total reports how many spans the ring has ever received (retained or
// evicted) — with Len it quantifies eviction for capacity tuning.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Evicted reports how many spans the ring has dropped to make room —
// the observable half of the bounded-retention tradeoff, exported as
// inca_trace_ring_evicted_total so silent span loss shows up on a
// dashboard instead of as a mysteriously truncated trace.
func (r *Ring) Evicted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - int64(r.count)
}

// Spans returns the retained spans, oldest first.
func (r *Ring) Spans() []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanData, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Trace returns the retained spans of one trace, oldest first (which
// for nested spans is completion order: leaves before their parents).
func (r *Ring) Trace(traceID string) []SpanData {
	var out []SpanData
	for _, sd := range r.Spans() {
		if sd.TraceID == traceID {
			out = append(out, sd)
		}
	}
	return out
}

// JSONLWriter is a sink appending one JSON object per completed span to
// an io.Writer — the offline-analysis format (`inca-serve -trace-jsonl`).
// Writes are serialized by an internal mutex; the first write error
// latches (inspect with Err) and subsequent spans are dropped rather
// than interleaving partial lines.
type JSONLWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLWriter returns a sink writing JSON lines to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// Emit appends one span as a JSON line.
func (j *JSONLWriter) Emit(sd SpanData) {
	j.mu.Lock()
	if j.err == nil {
		j.err = j.enc.Encode(sd)
	}
	j.mu.Unlock()
}

// Err reports the first write failure, nil when every span landed.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
