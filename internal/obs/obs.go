// Package obs is the stdlib-only tracing and runtime-telemetry
// subsystem behind the repo's observability layer. A Tracer produces
// nested spans — one per HTTP request, sweep cell, retry attempt, and
// simulated layer — with an injectable monotonic clock so tests pin
// exact durations, a lock-cheap per-span attribute/event/counter API,
// and pluggable sinks: a bounded in-memory ring (queryable by trace ID,
// the substrate of GET /v1/trace/{id}) and a JSONL writer for offline
// analysis.
//
// Integration points follow the same discipline as internal/fault's
// site names: a nil *Tracer and a nil *Span are both inert, every
// method on them is a cheap no-op, and continuing a trace requires only
// a context — obs.StartSpan(ctx, ...) starts a child of whatever span
// the context carries and does nothing when it carries none. Span names
// are slash-separated layer/object paths ("sweep/cell", "sim/layer"),
// matching the fault-injection site convention so a chaos run's
// injected sites and its trace's span names line up.
//
// Trace identity is W3C-trace-context shaped: 16-byte trace IDs, 8-byte
// span IDs, and ParseTraceparent/FormatTraceparent for the
// "00-<trace>-<span>-01" header form the HTTP layer propagates.
package obs

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Clock is the tracer's time source. The default is time.Now (whose
// readings carry Go's monotonic clock, so span durations are immune to
// wall-clock steps); tests inject a fake to pin exact durations.
type Clock func() time.Time

// Attr is one key/value annotation on a span or event. Values are
// restricted by the constructors to JSON-stable primitives.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// String returns a string-valued attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int returns an integer-valued attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: int64(value)} }

// Int64 returns an integer-valued attribute.
func Int64(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Float64 returns a float-valued attribute.
func Float64(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Bool returns a boolean-valued attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }

// Event is one timestamped occurrence inside a span.
type Event struct {
	Time  time.Time `json:"time"`
	Name  string    `json:"name"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// SpanData is the immutable record of a completed span — what sinks
// receive and the ring stores. Times come from the tracer's clock.
type SpanData struct {
	TraceID   string           `json:"trace_id"`
	SpanID    string           `json:"span_id"`
	ParentID  string           `json:"parent_id,omitempty"`
	Name      string           `json:"name"`
	Start     time.Time        `json:"start"`
	End       time.Time        `json:"end"`
	DurationS float64          `json:"duration_s"`
	Attrs     []Attr           `json:"attrs,omitempty"`
	Events    []Event          `json:"events,omitempty"`
	Counters  map[string]int64 `json:"counters,omitempty"`
}

// Attr returns the value of the named attribute and whether it is set
// (the last write wins, matching SetAttr semantics).
func (d SpanData) Attr(key string) (any, bool) {
	for i := len(d.Attrs) - 1; i >= 0; i-- {
		if d.Attrs[i].Key == key {
			return d.Attrs[i].Value, true
		}
	}
	return nil, false
}

// Duration returns the span's end-start difference.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Sink receives completed spans. Implementations must be safe for
// concurrent use; Emit is called once per span, at End.
type Sink interface {
	Emit(SpanData)
}

// Tracer mints spans. Construct with NewTracer; the nil *Tracer is
// inert (Start returns a nil span that swallows every call), so
// integration points pay nothing when tracing is off.
type Tracer struct {
	clock Clock
	sinks []Sink
	ring  *Ring

	idmu sync.Mutex
	rng  *rand.Rand
}

// TracerOption configures NewTracer.
type TracerOption func(*Tracer)

// WithClock injects the tracer's time source (tests pin durations with
// a fake). nil restores the default time.Now.
func WithClock(c Clock) TracerOption {
	return func(t *Tracer) { t.clock = c }
}

// WithSink adds a sink receiving every completed span.
func WithSink(s Sink) TracerOption {
	return func(t *Tracer) {
		if s != nil {
			t.sinks = append(t.sinks, s)
		}
	}
}

// WithRing attaches a bounded in-memory ring of the most recent
// capacity completed spans, queryable via Tracer.Ring (the substrate of
// the HTTP service's GET /v1/trace/{id}).
func WithRing(capacity int) TracerOption {
	return func(t *Tracer) {
		t.ring = NewRing(capacity)
		t.sinks = append(t.sinks, t.ring)
	}
}

// WithIDSeed makes trace/span ID generation deterministic from seed —
// for tests and reproducible offline analysis. Without it IDs derive
// from the process clock at construction.
func WithIDSeed(seed int64) TracerOption {
	return func(t *Tracer) { t.rng = rand.New(rand.NewSource(seed)) }
}

// NewTracer builds a tracer. With no options it keeps spans in no sink
// at all — useful only for propagating IDs; pass WithRing and/or
// NewJSONLWriter via WithSink to retain spans.
func NewTracer(opts ...TracerOption) *Tracer {
	t := &Tracer{clock: time.Now}
	for _, opt := range opts {
		opt(t)
	}
	if t.clock == nil {
		t.clock = time.Now
	}
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return t
}

// Ring returns the tracer's in-memory span ring, nil unless WithRing
// was configured (or the tracer is nil).
func (t *Tracer) Ring() *Ring {
	if t == nil {
		return nil
	}
	return t.ring
}

// Now reads the tracer's clock; the zero time for a nil tracer.
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.clock()
}

// newIDs draws fresh identifiers from the seeded stream. A zero ID is
// invalid per W3C trace context, so zeros are redrawn.
func (t *Tracer) newTraceID() string {
	t.idmu.Lock()
	defer t.idmu.Unlock()
	for {
		hi, lo := t.rng.Uint64(), t.rng.Uint64()
		if hi|lo != 0 {
			return hex16(hi) + hex16(lo)
		}
	}
}

func (t *Tracer) newSpanID() string {
	t.idmu.Lock()
	defer t.idmu.Unlock()
	for {
		if v := t.rng.Uint64(); v != 0 {
			return hex16(v)
		}
	}
}

// hex16 renders v as 16 lowercase hex digits without fmt (the ID path
// is hot enough under load tests to care).
func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// Span is one node of a trace. All methods are safe on a nil receiver
// and safe for concurrent use; a span is delivered to sinks exactly
// once, at its first End.
type Span struct {
	tracer *Tracer

	mu    sync.Mutex
	data  SpanData
	ended bool
}

// Start begins a span. The parent is taken from ctx: a live span put
// there by an earlier Start wins, else a remote parent installed by
// WithRemoteParent (the HTTP traceparent path), else the span is a new
// trace's root. The returned context carries the new span for
// StartSpan / FromContext. A nil tracer returns ctx unchanged and a nil
// (inert) span.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{tracer: t}
	s.data.Name = name
	s.data.Start = t.clock()
	s.data.Attrs = attrs
	s.data.SpanID = t.newSpanID()
	switch {
	case FromContext(ctx) != nil:
		p := FromContext(ctx)
		s.data.TraceID = p.TraceID()
		s.data.ParentID = p.SpanID()
	default:
		if tid, sid, ok := remoteParent(ctx); ok {
			s.data.TraceID, s.data.ParentID = tid, sid
		} else {
			s.data.TraceID = t.newTraceID()
		}
	}
	return ContextWithSpan(ctx, s), s
}

// StartSpan continues the trace carried by ctx: it starts a child of
// the context's span on that span's tracer. When ctx carries no span it
// returns ctx and a nil (inert) span — so library layers can
// instrument unconditionally and pay one context lookup when tracing
// is off.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	return parent.tracer.Start(ctx, name, attrs...)
}

// TraceID returns the span's trace identifier ("" for nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// SpanID returns the span's identifier ("" for nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.data.SpanID
}

// StartTime returns the span's start reading from the tracer clock.
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.data.Start
}

// Traceparent renders the span's W3C trace-context header value.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.data.TraceID, s.data.SpanID)
}

// SetAttr appends attributes. Later writes of a key win in
// SpanData.Attr. Calls after End are dropped.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Attrs = append(s.data.Attrs, attrs...)
	}
	s.mu.Unlock()
}

// Count adds delta to the span's named counter — the lock-cheap tally
// API for cache hits, retries, and kernel invocations (one short
// critical section per call, no allocation after the first).
func (s *Span) Count(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.data.Counters == nil {
			s.data.Counters = make(map[string]int64, 4)
		}
		s.data.Counters[name] += delta
	}
	s.mu.Unlock()
}

// Event records a timestamped occurrence inside the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	now := s.tracer.clock()
	s.mu.Lock()
	if !s.ended {
		s.data.Events = append(s.data.Events, Event{Time: now, Name: name, Attrs: attrs})
	}
	s.mu.Unlock()
}

// End finalizes the span at the tracer clock's current reading and
// delivers it to every sink. Only the first End counts.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tracer.clock()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.End = now
	s.data.DurationS = now.Sub(s.data.Start).Seconds()
	sd := s.data
	s.mu.Unlock()
	for _, sink := range s.tracer.sinks {
		sink.Emit(sd)
	}
}

// EndWith records err (when non-nil) as the span's "error" attribute
// and ends it — the one-line defer for fallible operations.
func (s *Span) EndWith(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetAttr(String("error", err.Error()))
	}
	s.End()
}

// --- context plumbing ---

type spanKey struct{}
type remoteKey struct{}

type remote struct{ traceID, spanID string }

// ContextWithSpan returns ctx carrying s for FromContext/StartSpan.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the span carried by ctx, nil when there is none.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ContextTracer returns the tracer behind the span carried by ctx, nil
// when the context carries no span.
func ContextTracer(ctx context.Context) *Tracer {
	if s := FromContext(ctx); s != nil {
		return s.tracer
	}
	return nil
}

// WithRemoteParent installs an upstream trace identity (from a
// traceparent header) that the next Tracer.Start without a local parent
// will continue.
func WithRemoteParent(ctx context.Context, traceID, spanID string) context.Context {
	return context.WithValue(ctx, remoteKey{}, remote{traceID: traceID, spanID: spanID})
}

func remoteParent(ctx context.Context) (traceID, spanID string, ok bool) {
	r, ok := ctx.Value(remoteKey{}).(remote)
	return r.traceID, r.spanID, ok
}

// --- W3C traceparent ---

// FormatTraceparent renders the version-00 traceparent header:
// 00-<32 hex trace id>-<16 hex span id>-01 (sampled).
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent reads a version-00 traceparent header, accepting
// exactly the shape FormatTraceparent writes (any 2-digit flags).
// Malformed or all-zero identifiers report ok=false.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != "00" ||
		len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", "", false
	}
	if !isHex(parts[1]) || !isHex(parts[2]) || !isHex(parts[3]) {
		return "", "", false
	}
	if parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
