//go:build !unix

package cost

// cpuSeconds is unavailable off unix; the cpu_s cost field reads 0
// there rather than gating the build on a platform API.
func cpuSeconds() float64 { return 0 }
