package cost

import (
	"context"
	"encoding/json"
	"testing"
)

// TestNilTallyIsInert pins the deep-layer contract: every charge method
// tolerates a nil receiver, so sweep/cache code charges unconditionally
// on contexts that never saw NewContext.
func TestNilTallyIsInert(t *testing.T) {
	var nilTally *Tally
	nilTally.AddCell(true, false, 3, 1, 2)
	nilTally.CacheHit()
	nilTally.CacheMiss()
	nilTally.CacheDiskHit()
	nilTally.CacheExpired()
	nilTally.CoalescedHit()
	if s := nilTally.Snapshot(); s != (Summary{}) {
		t.Fatalf("nil tally snapshot = %+v, want zero", s)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on a bare context = %v, want nil", got)
	}
}

// TestTallyAccounting pins the cell/cache arithmetic: cached and failed
// cells partition out of the total, retries are attempts beyond each
// cell's first, and failed cells contribute no energy.
func TestTallyAccounting(t *testing.T) {
	ctx, tally := NewContext(context.Background())
	if FromContext(ctx) != tally {
		t.Fatal("context does not round-trip its tally")
	}
	tally.AddCell(false, false, 1, 10, 0.5) // clean cell
	tally.AddCell(true, false, 1, 20, 1.0)  // cached cell
	tally.AddCell(false, true, 3, 99, 99)   // failed after 3 attempts
	tally.CacheHit()
	tally.CacheMiss()
	tally.CacheMiss()
	tally.CacheDiskHit()
	tally.CacheExpired()
	tally.CoalescedHit()

	s := tally.Snapshot()
	if s.Cells != 3 || s.CachedCells != 1 || s.FailedCells != 1 {
		t.Fatalf("cells=%d cached=%d failed=%d", s.Cells, s.CachedCells, s.FailedCells)
	}
	if s.Attempts != 5 || s.Retries != 2 {
		t.Fatalf("attempts=%d retries=%d, want 5/2", s.Attempts, s.Retries)
	}
	if s.SimEnergyJ != 30 || s.SimLatencyS != 1.5 {
		t.Fatalf("energy=%g latency=%g: failed cell leaked into sim totals", s.SimEnergyJ, s.SimLatencyS)
	}
	if s.CacheHits != 1 || s.CacheMisses != 2 || s.CacheDiskHits != 1 || s.CacheExpired != 1 || s.CoalescedHits != 1 {
		t.Fatalf("cache counters = %+v", s)
	}
	if s.WallS <= 0 {
		t.Fatalf("wall=%g, want > 0", s.WallS)
	}

	// Snapshot is re-measurable: counters hold, the wall clock advances.
	s2 := tally.Snapshot()
	if s2.Cells != s.Cells || s2.WallS < s.WallS {
		t.Fatalf("second snapshot regressed: %+v vs %+v", s2, s)
	}
}

// TestSummaryAdd pins that summaries are plain sums — the invariant the
// /v1/usage totals depend on.
func TestSummaryAdd(t *testing.T) {
	a := Summary{WallS: 1, Cells: 2, Attempts: 3, SimEnergyJ: 4, CacheHits: 5}
	b := Summary{WallS: 10, Cells: 20, Attempts: 30, SimEnergyJ: 40, CacheHits: 50}
	a.Add(b)
	if a.WallS != 11 || a.Cells != 22 || a.Attempts != 33 || a.SimEnergyJ != 44 || a.CacheHits != 55 {
		t.Fatalf("sum = %+v", a)
	}
}

// TestSummaryJSONShape pins the wire field names the spliced "cost"
// block and the usage endpoint serve.
func TestSummaryJSONShape(t *testing.T) {
	b, err := json.Marshal(Summary{})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"wall_s", "cpu_s", "cells", "cached_cells", "failed_cells",
		"attempts", "retries", "cache_hits", "cache_misses",
		"cache_disk_hits", "cache_expired", "coalesced_hits",
		"kernel_invocations", "kernel_chunks", "sim_energy_j", "sim_latency_s",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("summary JSON missing %q: %s", key, b)
		}
	}
}
