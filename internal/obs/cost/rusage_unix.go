//go:build unix

package cost

import "syscall"

// cpuSeconds reads the process's cumulative CPU time (user + system)
// via getrusage. Per-request CPU cost is the delta across the tally's
// lifetime; the counter is process-wide, so concurrent requests each
// observe the shared burn (documented attribution semantics, not a
// bug).
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return sec(ru.Utime) + sec(ru.Stime)
}
