// Package cost is the per-request cost accountant of the observability
// plane: one Tally rides each request (or job) context from the serve
// layer down through the sweep engine, and every layer that spends a
// resource charges it — the sweep engine charges evaluated cells,
// attempts, and the simulator's own energy/latency totals; the memo
// cache charges memory, disk, and coalesced hits; the serve layer
// closes the books with wall time, process CPU time, and tensor-kernel
// deltas. The resulting Summary is the "cost" block on /v1/simulate,
// /v1/sweep, and /v1/jobs/{id} responses, the currency of the
// GET /v1/usage rollup, and the source of the inca_cost_* Prometheus
// families.
//
// Units follow the repo's simulation currency: energy in joules and
// latency in seconds (the paper's nJ/cycles figures are the same
// quantities before unit normalization — see DESIGN §16). Two fields
// are process-scoped approximations attributed at request boundaries,
// because the resources themselves have no request identity: CPU time
// (getrusage deltas) and kernel invocations/chunks (tensor.KernelStats
// deltas) overlap across concurrent requests.
package cost

import (
	"context"
	"sync"
	"time"

	"github.com/inca-arch/inca/internal/tensor"
)

// Summary is one request's (or job's, or the server-lifetime's) rolled
// up cost. All fields are plain sums, so summaries add: the /v1/usage
// totals are exactly the sum of every finalized per-request Summary.
type Summary struct {
	// WallS is wall-clock seconds from tally creation to snapshot.
	WallS float64 `json:"wall_s"`
	// CPUS is process CPU seconds (user+system, getrusage delta) spent
	// while this tally was open — an attribution, not an isolation:
	// concurrent requests overlap.
	CPUS float64 `json:"cpu_s"`
	// Cells counts simulation cells attributed to this request,
	// including cached ones; CachedCells and FailedCells partition the
	// interesting subsets out of it.
	Cells       int64 `json:"cells"`
	CachedCells int64 `json:"cached_cells"`
	FailedCells int64 `json:"failed_cells"`
	// Attempts counts engine evaluation attempts (>= Cells - CachedCells
	// when retries fire); Retries = Attempts beyond each cell's first.
	Attempts int64 `json:"attempts"`
	Retries  int64 `json:"retries"`
	// Cache traffic charged by sweep.Cache.Do / the coalescer.
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	CacheDiskHits int64 `json:"cache_disk_hits"`
	CacheExpired  int64 `json:"cache_expired"`
	CoalescedHits int64 `json:"coalesced_hits"`
	// Tensor-kernel work observed while the tally was open
	// (tensor.KernelStats deltas — process-scoped, see package doc).
	KernelInvocations int64 `json:"kernel_invocations"`
	KernelChunks      int64 `json:"kernel_chunks"`
	// Simulator totals summed over this request's successful cells:
	// modeled energy in joules and modeled latency in seconds, matching
	// the simulation reports exactly.
	SimEnergyJ  float64 `json:"sim_energy_j"`
	SimLatencyS float64 `json:"sim_latency_s"`
}

// Add accumulates o into s field by field.
func (s *Summary) Add(o Summary) {
	s.WallS += o.WallS
	s.CPUS += o.CPUS
	s.Cells += o.Cells
	s.CachedCells += o.CachedCells
	s.FailedCells += o.FailedCells
	s.Attempts += o.Attempts
	s.Retries += o.Retries
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheDiskHits += o.CacheDiskHits
	s.CacheExpired += o.CacheExpired
	s.CoalescedHits += o.CoalescedHits
	s.KernelInvocations += o.KernelInvocations
	s.KernelChunks += o.KernelChunks
	s.SimEnergyJ += o.SimEnergyJ
	s.SimLatencyS += o.SimLatencyS
}

// Tally accumulates one request's cost. Construct with NewTally (which
// baselines wall/CPU/kernel counters), thread through the context with
// NewContext, and charge from any layer via FromContext. All methods
// are safe for concurrent use and nil-safe, so deep layers charge
// unconditionally — an untallied context costs one nil check.
type Tally struct {
	mu       sync.Mutex
	start    time.Time
	cpu0     float64
	kernels0 tensor.StatsSnapshot
	s        Summary
}

// NewTally opens a tally: wall clock, CPU clock, and kernel counters
// are baselined now, so a later Snapshot charges only the interval.
func NewTally() *Tally {
	return &Tally{
		start:    time.Now(),
		cpu0:     cpuSeconds(),
		kernels0: tensor.StatsHook().Snapshot(),
	}
}

type ctxKey struct{}

// NewContext returns ctx carrying a fresh tally, and the tally.
func NewContext(ctx context.Context) (context.Context, *Tally) {
	t := NewTally()
	return context.WithValue(ctx, ctxKey{}, t), t
}

// FromContext returns the context's tally, nil when none is attached
// (all Tally methods tolerate a nil receiver).
func FromContext(ctx context.Context) *Tally {
	t, _ := ctx.Value(ctxKey{}).(*Tally)
	return t
}

// AddCell charges one evaluated simulation cell: its cached/failed
// classification, the attempts the engine spent on it, and — for
// successful cells — the simulator's modeled energy/latency totals.
func (t *Tally) AddCell(cached, failed bool, attempts int, energyJ, latencyS float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.s.Cells++
	if cached {
		t.s.CachedCells++
	}
	if failed {
		t.s.FailedCells++
	}
	if attempts > 0 {
		t.s.Attempts += int64(attempts)
		t.s.Retries += int64(attempts - 1)
	}
	if !failed {
		t.s.SimEnergyJ += energyJ
		t.s.SimLatencyS += latencyS
	}
	t.mu.Unlock()
}

// CacheHit / CacheMiss / CacheDiskHit / CacheExpired / CoalescedHit
// charge one cache event each; sweep.Cache.Do calls them next to its
// span counters, the serve coalescer charges CoalescedHit per replay.
func (t *Tally) CacheHit()     { t.bump(func(s *Summary) { s.CacheHits++ }) }
func (t *Tally) CacheMiss()    { t.bump(func(s *Summary) { s.CacheMisses++ }) }
func (t *Tally) CacheDiskHit() { t.bump(func(s *Summary) { s.CacheDiskHits++ }) }
func (t *Tally) CacheExpired() { t.bump(func(s *Summary) { s.CacheExpired++ }) }
func (t *Tally) CoalescedHit() { t.bump(func(s *Summary) { s.CoalescedHits++ }) }

// bump applies one locked mutation; the field is named inside the
// closure (not passed as a pointer) so a nil receiver never evaluates
// &t.s.<field> before the guard.
func (t *Tally) bump(f func(*Summary)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	f(&t.s)
	t.mu.Unlock()
}

// Snapshot closes the interval books (wall, CPU, kernel deltas are
// measured now) and returns the summary. It may be called more than
// once — each call re-measures the interval against the same baseline,
// so the last call before the response is written wins.
func (t *Tally) Snapshot() Summary {
	if t == nil {
		return Summary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.s
	s.WallS = time.Since(t.start).Seconds()
	if cpu := cpuSeconds() - t.cpu0; cpu > 0 {
		s.CPUS = cpu
	}
	k := tensor.StatsHook().Snapshot()
	s.KernelInvocations = k.Invocations - t.kernels0.Invocations
	s.KernelChunks = k.Chunks - t.kernels0.Chunks
	if s.KernelInvocations < 0 { // stats hook swapped mid-request
		s.KernelInvocations = 0
	}
	if s.KernelChunks < 0 {
		s.KernelChunks = 0
	}
	return s
}
