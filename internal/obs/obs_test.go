package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is the injectable deterministic time source: tests advance
// it explicitly, so span durations are pinned exactly.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestTracer(clk *fakeClock) *Tracer {
	return NewTracer(WithClock(clk.Now), WithRing(64), WithIDSeed(1))
}

func TestSpanDurationPinnedByFakeClock(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk)
	ctx, root := tr.Start(context.Background(), "root")
	clk.Advance(250 * time.Millisecond)
	_, child := StartSpan(ctx, "child")
	clk.Advance(100 * time.Millisecond)
	child.End()
	clk.Advance(650 * time.Millisecond)
	root.End()

	spans := tr.Ring().Trace(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Ring order is completion order: child first.
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("order = %s, %s", spans[0].Name, spans[1].Name)
	}
	if got := spans[0].Duration(); got != 100*time.Millisecond {
		t.Errorf("child duration = %v, want exactly 100ms", got)
	}
	if got := spans[1].Duration(); got != time.Second {
		t.Errorf("root duration = %v, want exactly 1s", got)
	}
	if spans[1].DurationS != 1.0 {
		t.Errorf("root DurationS = %v, want 1.0", spans[1].DurationS)
	}
	// Root bounds the summed children.
	if spans[0].DurationS > spans[1].DurationS {
		t.Errorf("child (%v) exceeds root (%v)", spans[0].DurationS, spans[1].DurationS)
	}
}

func TestSpanParentLinks(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk)
	ctx, root := tr.Start(context.Background(), "root")
	cctx, child := StartSpan(ctx, "child")
	_, leaf := StartSpan(cctx, "leaf")

	if child.TraceID() != root.TraceID() || leaf.TraceID() != root.TraceID() {
		t.Fatal("trace IDs diverged within one trace")
	}
	leaf.End()
	child.End()
	root.End()
	byName := map[string]SpanData{}
	for _, sd := range tr.Ring().Trace(root.TraceID()) {
		byName[sd.Name] = sd
	}
	if byName["root"].ParentID != "" {
		t.Errorf("root has parent %q", byName["root"].ParentID)
	}
	if byName["child"].ParentID != byName["root"].SpanID {
		t.Errorf("child parent = %q, want root %q", byName["child"].ParentID, byName["root"].SpanID)
	}
	if byName["leaf"].ParentID != byName["child"].SpanID {
		t.Errorf("leaf parent = %q, want child %q", byName["leaf"].ParentID, byName["child"].SpanID)
	}
}

func TestStartSpanWithoutParentIsInert(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "orphan")
	if span != nil {
		t.Fatal("StartSpan without a context span must return a nil span")
	}
	if ctx != context.Background() {
		t.Fatal("context must pass through unchanged")
	}
	// All methods on the nil span are no-ops.
	span.SetAttr(String("k", "v"))
	span.Count("c", 1)
	span.Event("e")
	span.EndWith(errors.New("x"))
	span.End()
	if span.TraceID() != "" || span.SpanID() != "" || span.Traceparent() != "" {
		t.Fatal("nil span must render empty identifiers")
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.Start(context.Background(), "x")
	if span != nil || ctx != context.Background() {
		t.Fatal("nil tracer must be inert")
	}
	if tr.Ring() != nil {
		t.Fatal("nil tracer ring must be nil")
	}
	if !tr.Now().IsZero() {
		t.Fatal("nil tracer Now must be zero")
	}
}

func TestAttrsEventsCounters(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk)
	_, span := tr.Start(context.Background(), "s", String("init", "yes"))
	span.SetAttr(Int("n", 7), Float64("f", 1.5), Bool("b", true))
	span.SetAttr(Int("n", 9)) // later write wins
	span.Count("hits", 2)
	span.Count("hits", 3)
	clk.Advance(time.Second)
	span.Event("retry", Int("attempt", 2))
	span.End()
	// Post-End mutations are dropped.
	span.SetAttr(String("late", "x"))
	span.Count("hits", 100)
	span.Event("late")

	sd := tr.Ring().Spans()[0]
	if v, _ := sd.Attr("init"); v != "yes" {
		t.Errorf("init = %v", v)
	}
	if v, _ := sd.Attr("n"); v != int64(9) {
		t.Errorf("n = %v (%T), want int64(9)", v, v)
	}
	if v, _ := sd.Attr("f"); v != 1.5 {
		t.Errorf("f = %v", v)
	}
	if v, _ := sd.Attr("b"); v != true {
		t.Errorf("b = %v", v)
	}
	if _, ok := sd.Attr("late"); ok {
		t.Error("post-End attr landed")
	}
	if sd.Counters["hits"] != 5 {
		t.Errorf("hits = %d, want 5", sd.Counters["hits"])
	}
	if len(sd.Events) != 1 || sd.Events[0].Name != "retry" {
		t.Fatalf("events = %+v", sd.Events)
	}
	if got := sd.Events[0].Time.Sub(sd.Start); got != time.Second {
		t.Errorf("event offset = %v, want exactly 1s", got)
	}
}

func TestEndDeliversExactlyOnce(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk)
	_, span := tr.Start(context.Background(), "s")
	span.End()
	span.End()
	span.EndWith(errors.New("again"))
	if n := tr.Ring().Len(); n != 1 {
		t.Fatalf("span delivered %d times, want 1", n)
	}
}

func TestDeterministicIDsWithSeed(t *testing.T) {
	mk := func() (string, string) {
		tr := NewTracer(WithClock(newFakeClock().Now), WithIDSeed(42))
		_, s := tr.Start(context.Background(), "s")
		return s.TraceID(), s.SpanID()
	}
	t1, s1 := mk()
	t2, s2 := mk()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("seeded IDs differ: (%s,%s) vs (%s,%s)", t1, s1, t2, s2)
	}
	if len(t1) != 32 || len(s1) != 16 || !isHex(t1) || !isHex(s1) {
		t.Fatalf("malformed IDs: trace=%q span=%q", t1, s1)
	}
}

func TestRingBounded(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(SpanData{TraceID: "t", SpanID: hex16(uint64(i + 1)), Name: "s"})
	}
	if r.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("ring total = %d, want 10", r.Total())
	}
	spans := r.Spans()
	// Oldest-first: spans 7..10 survive.
	if spans[0].SpanID != hex16(7) || spans[3].SpanID != hex16(10) {
		t.Fatalf("eviction order wrong: first=%s last=%s", spans[0].SpanID, spans[3].SpanID)
	}
	if got := r.Trace("t"); len(got) != 4 {
		t.Fatalf("Trace = %d spans, want 4", len(got))
	}
	if got := r.Trace("missing"); got != nil {
		t.Fatalf("unknown trace = %v, want nil", got)
	}
}

func TestJSONLWriterRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	clk := newFakeClock()
	tr := NewTracer(WithClock(clk.Now), WithSink(NewJSONLWriter(&buf)), WithIDSeed(1))
	ctx, root := tr.Start(context.Background(), "root", String("k", "v"))
	_, child := StartSpan(ctx, "child")
	clk.Advance(30 * time.Millisecond)
	child.End()
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	var got SpanData
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if got.Name != "child" || got.TraceID != root.TraceID() || got.DurationS != 0.03 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(WithClock(newFakeClock().Now), WithIDSeed(1))
	_, s := tr.Start(context.Background(), "s")
	tid, sid, ok := ParseTraceparent(s.Traceparent())
	if !ok || tid != s.TraceID() || sid != s.SpanID() {
		t.Fatalf("round trip failed: %q → (%q,%q,%v)", s.Traceparent(), tid, sid, ok)
	}

	bad := []string{
		"",
		"00-abc-def-01",
		"01-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01", // wrong version
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("b", 16) + "-01", // zero trace
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // zero span
		"00-" + strings.Repeat("G", 32) + "-" + strings.Repeat("b", 16) + "-01", // non-hex
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
}

func TestRemoteParentContinuesTrace(t *testing.T) {
	tr := NewTracer(WithClock(newFakeClock().Now), WithRing(8), WithIDSeed(1))
	tid := strings.Repeat("a", 32)
	sid := strings.Repeat("b", 16)
	ctx := WithRemoteParent(context.Background(), tid, sid)
	_, span := tr.Start(ctx, "server")
	if span.TraceID() != tid {
		t.Fatalf("trace ID = %s, want upstream %s", span.TraceID(), tid)
	}
	span.End()
	if sd := tr.Ring().Spans()[0]; sd.ParentID != sid {
		t.Fatalf("parent = %s, want upstream %s", sd.ParentID, sid)
	}
}

func TestDumpRendersTree(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk)
	ctx, root := tr.Start(context.Background(), "http POST /v1/simulate")
	cctx, cell := StartSpan(ctx, "sweep/cell", String("key", "k"))
	_, layer := StartSpan(cctx, "sim/layer", String("layer", "conv1"))
	clk.Advance(time.Millisecond)
	layer.End()
	cell.Count("cache.miss", 1)
	cell.End()
	root.End()

	out := Dump(tr.Ring(), root.TraceID())
	for _, want := range []string{"trace " + root.TraceID(), "http POST /v1/simulate", "  sweep/cell", "    sim/layer", "key=k", "cache.miss=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	if Dump(tr.Ring(), "missing") != "" {
		t.Error("unknown trace must dump empty")
	}
	if Dump(nil, "x") != "" {
		t.Error("nil ring must dump empty")
	}
}

func TestConcurrentSpansRaceClean(t *testing.T) {
	tr := NewTracer(WithRing(1024), WithIDSeed(7))
	ctx, root := tr.Start(context.Background(), "root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_, s := StartSpan(ctx, "child")
				s.Count("n", 1)
				s.SetAttr(Int("j", j))
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	spans := tr.Ring().Trace(root.TraceID())
	if len(spans) != 16*50+1 {
		t.Fatalf("got %d spans, want %d", len(spans), 16*50+1)
	}
	seen := make(map[string]bool, len(spans))
	for _, sd := range spans {
		if seen[sd.SpanID] {
			t.Fatalf("duplicate span ID %s", sd.SpanID)
		}
		seen[sd.SpanID] = true
	}
}

// BenchmarkStartSpanDisabled measures the cost instrumented layers pay
// when tracing is off: one context lookup, no allocation.
func BenchmarkStartSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "noop")
		s.End()
	}
}
