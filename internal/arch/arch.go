// Package arch is the single source of truth for the architecture
// configurations of the paper's Table II: the INCA accelerator, the 2D
// weight-stationary baseline (ISAAC-style inference + PipeLayer-style
// training), the shared circuit constants, and the Table V area model.
package arch

import (
	"fmt"
	"math"

	"github.com/inca-arch/inca/internal/analog"
	"github.com/inca-arch/inca/internal/mem"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/rram"
)

// Dataflow selects which operand stays resident in the PIM arrays.
type Dataflow int

// Supported dataflows.
const (
	WeightStationary Dataflow = iota
	InputStationary
	OutputStationary
)

// String returns the dataflow's display name.
func (d Dataflow) String() string {
	switch d {
	case WeightStationary:
		return "WS"
	case OutputStationary:
		return "OS"
	default:
		return "IS"
	}
}

// Config describes one accelerator instance (one column of Table II).
type Config struct {
	Name     string
	Dataflow Dataflow

	// Array organization. The baseline has StackedPlanes == 1 (2D);
	// INCA stacks 64 vertical planes per 3D array.
	SubarrayRows  int
	SubarrayCols  int
	StackedPlanes int

	// Hierarchy: Tiles × TileSize macros × MacroSize subarrays.
	Tiles     int
	TileSize  int // macros per tile
	MacroSize int // subarrays (or 3D arrays) per macro

	CellBits        int
	ADCBits         int
	SubarraysPerADC int // ADC sharing factor (16 for INCA, 1 for baseline)

	WeightBits     int
	ActivationBits int
	BatchSize      int

	Buffer mem.Buffer
	DRAM   mem.DRAM

	Device rram.Device

	// Cell geometry (pre-scaling, from the 65 nm layout) and the linear
	// scale factor to the 22 nm accelerator node.
	CellWidth, CellLength float64 // meters at 65 nm
	ScaleFactor           float64 // 0.34: 65 nm -> 22 nm linear scaling
	// CellsPerFootprint is how many cells share one projected 2D footprint
	// (16 for INCA's vertical stacking, 1 for the planar baseline).
	CellsPerFootprint int

	// WriteReadOverlap enables INCA's pipeline-style hiding of RRAM write
	// latency behind reads (§V.B.2). Exposed as a knob for ablation.
	WriteReadOverlap bool
}

// defaultBuffer returns the shared 64 KB / 256-bit buffer of Table II.
// Per-beat energies are 22 nm SRAM-class estimates (NeuroSim/CACTI range
// for a 64 KB array with its wide-bus periphery).
func defaultBuffer() mem.Buffer {
	return mem.Buffer{
		CapacityBytes: 64 * 1024,
		BusWidthBits:  256,
		ReadEnergy:    400e-12,
		WriteEnergy:   450e-12,
		BeatLatency:   1e-9,
	}
}

// defaultDRAM returns the 8 GB HBM2 model: 32 pJ per 8-bit access (the
// paper's adopted NeuroSim+ estimate) and HBM2-class bandwidth.
func defaultDRAM() mem.DRAM {
	return mem.DRAM{
		EnergyPerByte: 32e-12,
		PeakBandwidth: 256e9,
		BaseLatency:   100e-9,
		Knee:          0.8,
	}
}

// INCA returns the INCA accelerator configuration of Table II.
func INCA() Config {
	return Config{
		Name:              "INCA",
		Dataflow:          InputStationary,
		SubarrayRows:      16,
		SubarrayCols:      16,
		StackedPlanes:     64,
		Tiles:             168,
		TileSize:          12,
		MacroSize:         8,
		CellBits:          1,
		ADCBits:           4,
		SubarraysPerADC:   16,
		WeightBits:        8,
		ActivationBits:    8,
		BatchSize:         64,
		Buffer:            defaultBuffer(),
		DRAM:              defaultDRAM(),
		Device:            rram.DefaultDevice(),
		CellWidth:         600e-9,
		CellLength:        700e-9,
		ScaleFactor:       0.34,
		CellsPerFootprint: 16,
		WriteReadOverlap:  true,
	}
}

// Baseline returns the 2D WS baseline configuration of Table II
// (ISAAC-referenced inference, PipeLayer-referenced training).
func Baseline() Config {
	return Config{
		Name:              "WS-Baseline",
		Dataflow:          WeightStationary,
		SubarrayRows:      128,
		SubarrayCols:      128,
		StackedPlanes:     1,
		Tiles:             168,
		TileSize:          12,
		MacroSize:         8,
		CellBits:          1,
		ADCBits:           8,
		SubarraysPerADC:   1,
		WeightBits:        8,
		ActivationBits:    8,
		BatchSize:         64,
		Buffer:            defaultBuffer(),
		DRAM:              defaultDRAM(),
		Device:            rram.DefaultDevice(),
		CellWidth:         540e-9,
		CellLength:        485e-9,
		ScaleFactor:       0.34,
		CellsPerFootprint: 1,
		WriteReadOverlap:  false,
	}
}

// OutStationary returns the output-stationary comparison point: a 2D
// crossbar organization iso-capacity with the WS baseline, but operated
// MAC-DO-style — partial sums accumulate in place at the array and each
// output element is converted exactly once, while inputs and weights
// both stream. The tile aspect (SubarrayRows × SubarrayCols) is the
// mapping knob: rows bound the output-position tile, columns the
// output-channel tile, so reshaping the array trades weight refetches
// against input refetches.
func OutStationary() Config {
	c := Baseline()
	c.Name = "OS-Baseline"
	c.Dataflow = OutputStationary
	return c
}

// Validate checks structural invariants of the configuration.
func (c Config) Validate() error {
	if c.SubarrayRows <= 0 || c.SubarrayCols <= 0 || c.StackedPlanes <= 0 {
		return fmt.Errorf("arch: invalid array geometry %dx%dx%d", c.SubarrayRows, c.SubarrayCols, c.StackedPlanes)
	}
	if c.Tiles <= 0 || c.TileSize <= 0 || c.MacroSize <= 0 {
		return fmt.Errorf("arch: invalid hierarchy %d/%d/%d", c.Tiles, c.TileSize, c.MacroSize)
	}
	if c.ADCBits < 1 || c.WeightBits < 2 || c.ActivationBits < 2 {
		return fmt.Errorf("arch: invalid precisions")
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("arch: invalid batch size %d", c.BatchSize)
	}
	if err := c.Device.Validate(); err != nil {
		return err
	}
	return nil
}

// Subarrays returns the total subarray (or 3D-array) count.
func (c Config) Subarrays() int { return c.Tiles * c.TileSize * c.MacroSize }

// ActPlanes returns how many bit-plane arrays one activation value needs:
// with single-bit cells (Table II) this equals the activation precision;
// multi-level cells pack CellBits bits per device and shrink the array
// demand proportionally (at the cost of ADC resolution — an ablation knob,
// not a paper configuration).
func (c Config) ActPlanes() int {
	if c.CellBits < 1 {
		return c.ActivationBits
	}
	return (c.ActivationBits + c.CellBits - 1) / c.CellBits
}

// CellsPerSubarray returns the RRAM cell count of one subarray including
// stacked planes.
func (c Config) CellsPerSubarray() int {
	return c.SubarrayRows * c.SubarrayCols * c.StackedPlanes
}

// TotalCells returns the accelerator's total RRAM cell count. Table II's
// two designs are iso-capacity: 16×16×64 == 128×128.
func (c Config) TotalCells() int64 {
	return int64(c.Subarrays()) * int64(c.CellsPerSubarray())
}

// ADCCount returns the number of ADCs (subarrays divided by the sharing
// factor, at least one per macro).
func (c Config) ADCCount() int {
	n := c.Subarrays() / c.SubarraysPerADC
	if n < 1 {
		n = 1
	}
	return n
}

// ADC returns the configured converter model.
func (c Config) ADC() analog.ADC { return analog.NewADC(c.ADCBits) }

// DACsPerSubarray returns the number of input drivers per subarray: one
// per row for the 2D baseline, one per pillar (rows × cols) for INCA's 3D
// arrays (Table V lists 128 vs 256 per macro unit; the ratio is what
// matters — INCA needs twice the drivers of the baseline per macro).
func (c Config) DACsPerSubarray() int {
	if c.StackedPlanes > 1 {
		return c.SubarrayRows * c.SubarrayCols
	}
	return c.SubarrayRows
}

// cellFootprint returns the scaled projected area (m²) of one cell
// footprint. For 3D INCA, CellsPerFootprint cells share it.
func (c Config) cellFootprint() float64 {
	raw := c.CellWidth * c.CellLength
	return raw * c.ScaleFactor * c.ScaleFactor
}

// SubarrayArea returns the projected 2D area of one subarray in mm²
// (paper §V.B.6: one 128×128 baseline crossbar is 491.52 µm²; one
// 16×16×64 INCA array is 49.152 µm²).
func (c Config) SubarrayArea() float64 {
	footprints := float64(c.CellsPerSubarray()) / float64(c.CellsPerFootprint)
	return footprints * c.cellFootprint() * 1e6 // m² -> mm²
}

// Area model constants taken from the paper's Table V per-unit values
// (buffer and post-processing estimated from ISAAC/FORMS, "Others"
// measured by NeuroSim+). Per-unit figures are totals divided by counts.
const (
	bufferAreaPerTile   = 13.944 / 168.0 // mm² per 64 KB tile buffer
	postProcAreaPerTile = 3.656 / 168.0  // mm² per ReLU+max-pool unit
	adcArea8Bit         = 30.298 / 16128 // mm² per 8-bit ADC
	dacArea1Bit         = 0.343 / (16128.0 * 128.0)
	othersAreaWS        = 27.920 // mm² total, NeuroSim-measured
	othersAreaIS        = 24.249 // mm² total, NeuroSim-measured
)

// Area computes the Table V breakdown for this configuration.
func (c Config) Area() metrics.Area {
	// ADC area: Table V's 8-bit and 4-bit per-unit values differ by 6.61×
	// over 4 bits; interpolate geometrically between those two anchors.
	adcUnit := adcArea8Bit * math.Pow(6.606, float64(c.ADCBits-8)/4)
	// Table V counts one ADC slot per subarray position for both designs.
	nADC := float64(c.Subarrays())
	others := othersAreaWS
	if c.Dataflow == InputStationary {
		others = othersAreaIS
	}
	return metrics.Area{
		Buffer:         bufferAreaPerTile * float64(c.Tiles),
		Array:          c.SubarrayArea() * float64(c.Subarrays()),
		ADC:            adcUnit * nADC,
		DAC:            dacArea1Bit * float64(c.DACsPerSubarray()) * float64(c.Subarrays()),
		PostProcessing: postProcAreaPerTile * float64(c.Tiles),
		Others:         others,
	}
}
