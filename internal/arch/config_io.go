package arch

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// MarshalJSON-friendly persistence: configurations round-trip through JSON
// so users can define custom accelerators for cmd/inca-sim without
// recompiling. All fields of Config, mem.Buffer, mem.DRAM and rram.Device
// are exported, so the standard encoder captures the full state.

// WriteJSON serializes the configuration to w, indented.
func (c Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("arch: encoding config: %w", err)
	}
	return nil
}

// Save writes the configuration to a JSON file.
func (c Config) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("arch: %w", err)
	}
	defer f.Close()
	return c.WriteJSON(f)
}

// ReadJSON parses a configuration from r and validates it.
func ReadJSON(r io.Reader) (Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("arch: decoding config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Load reads and validates a configuration from a JSON file.
func Load(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("arch: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
