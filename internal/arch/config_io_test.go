package arch

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	for _, c := range []Config{INCA(), Baseline()} {
		var buf bytes.Buffer
		if err := c.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("%s: round trip changed the config\nwant %+v\ngot  %+v", c.Name, c, got)
		}
	}
}

func TestConfigFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inca.json")
	c := INCA()
	c.BatchSize = 16
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.BatchSize != 16 || got.Name != "INCA" {
		t.Fatalf("loaded config = %+v", got)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	// Structurally valid JSON, architecturally invalid config.
	bad := strings.NewReader(`{"Name":"x","SubarrayRows":0}`)
	if _, err := ReadJSON(bad); err == nil {
		t.Fatal("accepted invalid config")
	}
	// Unknown fields rejected (typo protection).
	typo := strings.NewReader(`{"SubbarayRows":16}`)
	if _, err := ReadJSON(typo); err == nil {
		t.Fatal("accepted unknown field")
	}
	// Garbage.
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("accepted missing file")
	}
}
