package arch

import (
	"fmt"
	"hash/fnv"
)

// Fingerprint returns a stable hex digest of every field in the
// configuration. Two configs share a fingerprint exactly when they are
// equal, so the digest serves as a memoization key for simulation
// results: the sweep engine caches one report per
// (fingerprint, network, phase) cell.
//
// Config holds only value types (ints, floats, strings and flat structs),
// so the %#v rendering is deterministic across processes of the same
// build; the digest is not meant to be stable across code changes that
// add or rename fields.
func (c Config) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", c)
	return fmt.Sprintf("%016x", h.Sum64())
}
