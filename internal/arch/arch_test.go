package arch

import (
	"math"
	"testing"
)

func TestConfigsValidate(t *testing.T) {
	for _, c := range []Config{INCA(), Baseline()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

// TestTableIIValues pins the headline Table II configuration facts.
func TestTableIIValues(t *testing.T) {
	inca := INCA()
	if inca.SubarrayRows != 16 || inca.SubarrayCols != 16 || inca.StackedPlanes != 64 {
		t.Fatal("INCA array geometry mismatch with Table II")
	}
	if inca.ADCBits != 4 || inca.SubarraysPerADC != 16 {
		t.Fatal("INCA ADC configuration mismatch with Table II")
	}
	if inca.WeightBits != 8 || inca.ActivationBits != 8 || inca.BatchSize != 64 {
		t.Fatal("INCA precision/batch mismatch with Table II")
	}
	base := Baseline()
	if base.SubarrayRows != 128 || base.SubarrayCols != 128 || base.StackedPlanes != 1 {
		t.Fatal("baseline array geometry mismatch with Table II")
	}
	if base.ADCBits != 8 {
		t.Fatal("baseline ADC precision mismatch with Table II")
	}
	if base.Buffer.CapacityBytes != 64*1024 || base.Buffer.BusWidthBits != 256 {
		t.Fatal("buffer configuration mismatch with Table II")
	}
	if base.DRAM.EnergyPerByte != 32e-12 {
		t.Fatal("HBM2 energy mismatch with the adopted 32pJ/8-bit")
	}
}

// TestIsoCapacity verifies the paper's fairness constraint: one INCA 3D
// array (16×16×64) holds exactly as many cells as one baseline crossbar
// (128×128), and both designs organize the same subarray counts.
func TestIsoCapacity(t *testing.T) {
	inca, base := INCA(), Baseline()
	if inca.CellsPerSubarray() != base.CellsPerSubarray() {
		t.Fatalf("cells per subarray: INCA %d, baseline %d",
			inca.CellsPerSubarray(), base.CellsPerSubarray())
	}
	if inca.TotalCells() != base.TotalCells() {
		t.Fatalf("total cells: INCA %d, baseline %d", inca.TotalCells(), base.TotalCells())
	}
	if inca.Subarrays() != 168*12*8 {
		t.Fatalf("subarrays = %d, want 16128", inca.Subarrays())
	}
}

// TestSubarrayAreaMatchesPaper pins §V.B.6: one baseline crossbar needs
// ~491.52 µm² while one INCA 3D array needs ~49.152 µm² (10× smaller).
func TestSubarrayAreaMatchesPaper(t *testing.T) {
	base := Baseline().SubarrayArea() * 1e6 // mm² -> µm²
	inca := INCA().SubarrayArea() * 1e6
	if math.Abs(base-491.52)/491.52 > 0.02 {
		t.Fatalf("baseline crossbar area = %.2f µm², want ~491.52", base)
	}
	if math.Abs(inca-49.152)/49.152 > 0.03 {
		t.Fatalf("INCA 3D array area = %.2f µm², want ~49.152", inca)
	}
}

// TestTableVAreaTotals checks the area breakdown reproduces Table V:
// baseline ≈ 84.1 mm², INCA ≈ 47.9 mm² (±3%).
func TestTableVAreaTotals(t *testing.T) {
	base := Baseline().Area()
	inca := INCA().Area()
	if math.Abs(base.Total()-84.088)/84.088 > 0.03 {
		t.Fatalf("baseline area = %.3f mm², want ~84.088", base.Total())
	}
	if math.Abs(inca.Total()-47.914)/47.914 > 0.03 {
		t.Fatalf("INCA area = %.3f mm², want ~47.914", inca.Total())
	}
	// Component-level shape: INCA saves most in ADC and array.
	if inca.ADC >= base.ADC/5 {
		t.Fatalf("INCA ADC area %.3f should be >5x smaller than baseline %.3f", inca.ADC, base.ADC)
	}
	if inca.Array >= base.Array/8 {
		t.Fatalf("INCA array area %.3f should be ~10x smaller than baseline %.3f", inca.Array, base.Array)
	}
	// INCA pays 2x in DACs (256 vs 128 drivers per subarray).
	if math.Abs(inca.DAC/base.DAC-2) > 0.01 {
		t.Fatalf("DAC ratio = %v, want 2", inca.DAC/base.DAC)
	}
	// Buffers and post-processing are identical by construction.
	if inca.Buffer != base.Buffer || inca.PostProcessing != base.PostProcessing {
		t.Fatal("shared components should have identical area")
	}
}

func TestADCCount(t *testing.T) {
	inca := INCA()
	if got := inca.ADCCount(); got != 16128/16 {
		t.Fatalf("INCA ADCCount = %d, want %d", got, 16128/16)
	}
	base := Baseline()
	if got := base.ADCCount(); got != 16128 {
		t.Fatalf("baseline ADCCount = %d, want 16128", got)
	}
}

func TestDACsPerSubarray(t *testing.T) {
	if got := INCA().DACsPerSubarray(); got != 256 {
		t.Fatalf("INCA DACs = %d, want 256", got)
	}
	if got := Baseline().DACsPerSubarray(); got != 128 {
		t.Fatalf("baseline DACs = %d, want 128", got)
	}
}

func TestDataflowString(t *testing.T) {
	if WeightStationary.String() != "WS" || InputStationary.String() != "IS" {
		t.Fatal("dataflow names mismatch")
	}
}

func TestValidateCatchesBadConfig(t *testing.T) {
	c := INCA()
	c.SubarrayRows = 0
	if c.Validate() == nil {
		t.Fatal("accepted zero rows")
	}
	c = INCA()
	c.BatchSize = 0
	if c.Validate() == nil {
		t.Fatal("accepted zero batch")
	}
	c = INCA()
	c.Device.ROff = 1
	if c.Validate() == nil {
		t.Fatal("accepted bad device")
	}
}
