// Package tensor provides the dense numerical substrate used by the INCA
// reproduction: rank-N float64 tensors in row-major layout plus the
// convolution, pooling, and matrix primitives that both the functional
// crossbar simulation and the software training engine are validated
// against.
//
// The package is deliberately dependency-free and deterministic: every
// randomized constructor takes an explicit *rand.Rand so experiments are
// reproducible bit-for-bit.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense row-major tensor of float64 values.
//
// The zero value is an empty tensor. Use New or one of the typed
// constructors to build a usable tensor.
type Tensor struct {
	dims []int
	data []float64
}

// New returns a zero-filled tensor with the given dimensions.
// It panics if any dimension is negative.
func New(dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in %v", d, dims))
		}
		n *= d
	}
	return &Tensor{dims: append([]int(nil), dims...), data: make([]float64, n)}
}

// FromSlice builds a tensor with the given dimensions backed by a copy of
// data. It panics if len(data) does not match the dimension product.
func FromSlice(data []float64, dims ...int) *Tensor {
	t := New(dims...)
	if len(data) != len(t.data) {
		panic(fmt.Sprintf("tensor: data length %d does not match dims %v (need %d)",
			len(data), dims, len(t.data)))
	}
	copy(t.data, data)
	return t
}

// Randn returns a tensor with entries drawn from N(0, stddev²) using rng.
func Randn(rng *rand.Rand, stddev float64, dims ...int) *Tensor {
	t := New(dims...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * stddev
	}
	return t
}

// Uniform returns a tensor with entries drawn uniformly from [lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64, dims ...int) *Tensor {
	t := New(dims...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Dims returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Dims() []int { return t.dims }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.dims[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.dims) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// offset converts a multi-index into a flat offset.
func (t *Tensor) offset(idx ...int) int {
	if len(idx) != len(t.dims) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.dims)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.dims[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for dims %v", idx, t.dims))
		}
		off = off*t.dims[i] + x
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx...)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx...)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.dims...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view-copy of t with new dimensions; the element count
// must match.
func (t *Tensor) Reshape(dims ...int) *Tensor {
	c := New(dims...)
	if len(c.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.dims, dims))
	}
	copy(c.data, t.data)
	return c
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Apply replaces every element x with f(x) in place and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, x := range t.data {
		t.data[i] = f(x)
	}
	return t
}

// AddInPlace adds o element-wise into t. Dimensions must match.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o)
	for i := range t.data {
		t.data[i] += o.data[i]
	}
	return t
}

// SubInPlace subtracts o element-wise from t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o)
	for i := range t.data {
		t.data[i] -= o.data[i]
	}
	return t
}

// Scale multiplies every element by s in place and returns t.
func (t *Tensor) Scale(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AXPYInPlace performs t += alpha*o.
func (t *Tensor) AXPYInPlace(alpha float64, o *Tensor) *Tensor {
	t.mustSameShape(o)
	for i := range t.data {
		t.data[i] += alpha * o.data[i]
	}
	return t
}

// Hadamard multiplies t element-wise by o in place.
func (t *Tensor) Hadamard(o *Tensor) *Tensor {
	t.mustSameShape(o)
	for i := range t.data {
		t.data[i] *= o.data[i]
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, x := range t.data {
		s += x
	}
	return s
}

// RMS returns the root-mean-square of the elements (0 for empty tensors),
// a robust scale estimate that outlier elements cannot dominate.
func (t *Tensor) RMS() float64 {
	if len(t.data) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range t.data {
		s += x * x
	}
	return math.Sqrt(s / float64(len(t.data)))
}

// MaxAbs returns the maximum absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, x := range t.data {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether t and o have identical shape and all elements are
// within tol of each other.
func (t *Tensor) Equal(o *Tensor, tol float64) bool {
	if len(t.dims) != len(o.dims) {
		return false
	}
	for i := range t.dims {
		if t.dims[i] != o.dims[i] {
			return false
		}
	}
	for i := range t.data {
		if math.Abs(t.data[i]-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description of the tensor (shape plus leading
// elements), not its full contents.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.dims)
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if len(t.data) > 8 {
		b.WriteString(", ...")
	}
	b.WriteString("]")
	return b.String()
}

func (t *Tensor) mustSameShape(o *Tensor) {
	if len(t.dims) != len(o.dims) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.dims, o.dims))
	}
	for i := range t.dims {
		if t.dims[i] != o.dims[i] {
			panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.dims, o.dims))
		}
	}
}
