package tensor

import "sync/atomic"

// Kernel telemetry
//
// KernelStats is the observability hook on the numeric hot path. It is
// deliberately not a tracing span: kernel calls are far too frequent
// and too short for per-call span bookkeeping, so the hook is a block
// of process-wide atomic counters behind a single atomic pointer — one
// atomic load per kernel entry when disabled (the default), a handful
// of atomic adds when enabled. No build tags, no locks, no allocation.

// KernelStats counts parallel-kernel activity. All fields are atomics;
// read a consistent-enough view with Snapshot.
type KernelStats struct {
	// Invocations counts entries into the parallel kernel machinery
	// (ParallelChunks and the parallelFor fast path).
	Invocations atomic.Int64
	// Serial counts invocations that ran single-chunk — below the
	// work threshold or with the worker budget drained.
	Serial atomic.Int64
	// Chunks totals the work chunks (tiles) executed; Chunks/Invocations
	// is the mean worker occupancy per kernel call.
	Chunks atomic.Int64
	// Items totals the work items (output rows, batch elements, ...)
	// the chunks covered.
	Items atomic.Int64
}

// record tallies one kernel invocation that split n items into chunks.
func (s *KernelStats) record(items, chunks int) {
	s.Invocations.Add(1)
	s.Chunks.Add(int64(chunks))
	s.Items.Add(int64(items))
	if chunks <= 1 {
		s.Serial.Add(1)
	}
}

// StatsSnapshot is a point-in-time copy of a KernelStats block, in the
// shape the HTTP service's /metrics endpoint exports.
type StatsSnapshot struct {
	Invocations int64 `json:"invocations"`
	Serial      int64 `json:"serial"`
	Chunks      int64 `json:"chunks"`
	Items       int64 `json:"items"`
}

// Snapshot copies the counters. Each field is individually exact; the
// set is read without a lock, so a snapshot taken mid-kernel may be off
// by one between related fields. Safe on a nil receiver (all zeros).
func (s *KernelStats) Snapshot() StatsSnapshot {
	if s == nil {
		return StatsSnapshot{}
	}
	return StatsSnapshot{
		Invocations: s.Invocations.Load(),
		Serial:      s.Serial.Load(),
		Chunks:      s.Chunks.Load(),
		Items:       s.Items.Load(),
	}
}

// statsHook is the process-wide collector; nil (the default) disables
// collection at the cost of one atomic pointer load per kernel call.
var statsHook atomic.Pointer[KernelStats]

// SetStatsHook installs s as the process-wide kernel-stats collector
// and returns the previous one. Pass nil to disable collection.
func SetStatsHook(s *KernelStats) *KernelStats {
	return statsHook.Swap(s)
}

// StatsHook returns the installed collector, nil when disabled.
func StatsHook() *KernelStats { return statsHook.Load() }
