package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// withParallelism runs f under a temporary kernel worker budget.
func withParallelism(t *testing.T, n int, f func()) {
	t.Helper()
	prev := SetParallelism(n)
	defer SetParallelism(prev)
	f()
}

// bitsEqual compares two tensors for exact bit equality (tolerances would
// hide reduction-order drift, the thing these tests exist to catch).
func bitsEqual(a, b *Tensor) bool {
	if len(a.Dims()) != len(b.Dims()) {
		return false
	}
	for i := range a.Dims() {
		if a.Dim(i) != b.Dim(i) {
			return false
		}
	}
	for i, v := range a.Data() {
		if math.Float64bits(v) != math.Float64bits(b.Data()[i]) {
			return false
		}
	}
	return true
}

// budgets exercises the worker counts the issue calls out: serial,
// GOMAXPROCS, and more workers than items.
func budgets(items int) []int {
	return []int{1, runtime.GOMAXPROCS(0), items + 7}
}

func TestSetParallelismRoundTrip(t *testing.T) {
	prev := SetParallelism(3)
	defer SetParallelism(prev)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	if back := SetParallelism(0); back != 3 {
		t.Fatalf("SetParallelism returned %d, want previous value 3", back)
	}
	if got := Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("unset budget = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestAcquireWorkersBoundedByBudget(t *testing.T) {
	withParallelism(t, 4, func() {
		got, release := acquireWorkers(100)
		if got != 3 {
			t.Fatalf("acquired %d extra workers under budget 4, want 3", got)
		}
		// A nested acquisition sees a drained pool and runs serially.
		nested, nestedRelease := acquireWorkers(100)
		if nested != 0 {
			t.Fatalf("nested acquisition got %d workers, want 0 (pool drained)", nested)
		}
		nestedRelease()
		release()
		// Tokens come back after release.
		again, againRelease := acquireWorkers(2)
		defer againRelease()
		if again != 2 {
			t.Fatalf("after release acquired %d, want 2", again)
		}
	})
}

func TestParallelChunksCoversRangeOnce(t *testing.T) {
	withParallelism(t, 4, func() {
		const n = 103
		var mu sync.Mutex
		seen := make([]int, n)
		ParallelChunks(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				mu.Lock()
				seen[i]++
				mu.Unlock()
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("index %d visited %d times", i, c)
			}
		}
	})
}

// serialConv2D recomputes Conv2D with the pre-parallel reference loop.
func serialConv2D(x, w *Tensor, spec ConvSpec) *Tensor {
	c, h, wd := x.Dim(0), x.Dim(1), x.Dim(2)
	n, _, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	oh, ow := spec.OutSize(h, kh), spec.OutSize(wd, kw)
	out := New(n, oh, ow)
	for on := 0; on < n; on++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := 0.0
				for ic := 0; ic < c; ic++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*spec.Stride - spec.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*spec.Stride - spec.Pad + kx
							if ix < 0 || ix >= wd {
								continue
							}
							sum += x.At(ic, iy, ix) * w.At(on, ic, ky, kx)
						}
					}
				}
				out.Set(sum, on, oy, ox)
			}
		}
	}
	return out
}

// serialMatMul is the pre-blocking reference loop (including the av == 0
// skip, which is part of the kernel's semantics).
func serialMatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.At(i, p)
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Set(out.At(i, j)+av*b.At(p, j), i, j)
			}
		}
	}
	return out
}

func TestConv2DParallelMatchesSerialBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		c, h, w, n, k int
		spec          ConvSpec
	}{
		{3, 17, 17, 8, 3, ConvSpec{Stride: 1, Pad: 1}},
		{4, 16, 16, 5, 5, ConvSpec{Stride: 2, Pad: 2}},
		{1, 9, 9, 16, 3, ConvSpec{Stride: 1}},
	} {
		x := Randn(rng, 1, tc.c, tc.h, tc.w)
		w := Randn(rng, 1, tc.n, tc.c, tc.k, tc.k)
		want := serialConv2D(x, w, tc.spec)
		for _, budget := range budgets(tc.n) {
			withParallelism(t, budget, func() {
				got := Conv2D(x, w, tc.spec)
				if !bitsEqual(got, want) {
					t.Errorf("Conv2D %+v differs from serial reference at budget %d", tc, budget)
				}
			})
		}
	}
}

func TestMatMulParallelMatchesSerialBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, tc := range []struct{ m, k, n int }{
		{7, 13, 5},
		{33, 64, 700}, // wider than one matMulBlock column tile
		{65, 9, 1030},
	} {
		a := Randn(rng, 1, tc.m, tc.k)
		b := Randn(rng, 1, tc.k, tc.n)
		// Exercise the av == 0 skip path too.
		a.Data()[0] = 0
		a.Data()[len(a.Data())/2] = 0
		want := serialMatMul(a, b)
		for _, budget := range budgets(tc.m) {
			withParallelism(t, budget, func() {
				if got := MatMul(a, b); !bitsEqual(got, want) {
					t.Errorf("MatMul %+v differs from serial reference at budget %d", tc, budget)
				}
			})
		}
	}
}

func TestKernelsBitIdenticalAcrossBudgets(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := Randn(rng, 1, 6, 15, 15)
	w := Randn(rng, 1, 10, 6, 3, 3)
	dw := Randn(rng, 1, 6, 3, 3)
	spec := ConvSpec{Stride: 2, Pad: 1}
	delta := Randn(rng, 1, 10, 8, 8)
	ddelta := Randn(rng, 1, 6, 8, 8)

	type result struct {
		name string
		out  *Tensor
	}
	compute := func() []result {
		return []result{
			{"Conv2D", Conv2D(x, w, spec)},
			{"DepthwiseConv2D", DepthwiseConv2D(x, dw, spec)},
			{"Im2Col", Im2Col(x, 3, 3, spec)},
			{"Conv2DIm2Col", Conv2DIm2Col(x, w, spec)},
			{"ConvBackwardInput", ConvBackwardInput(w, delta, spec, 15, 15)},
			{"ConvBackwardWeights", ConvBackwardWeights(x, delta, spec, 3, 3)},
			{"DepthwiseBackwardInput", DepthwiseBackwardInput(dw, ddelta, spec, 15, 15)},
			{"DepthwiseBackwardWeights", DepthwiseBackwardWeights(x, ddelta, spec, 3, 3)},
		}
	}
	var serial []result
	withParallelism(t, 1, func() { serial = compute() })
	for _, budget := range budgets(16) {
		withParallelism(t, budget, func() {
			for i, r := range compute() {
				if !bitsEqual(r.out, serial[i].out) {
					t.Errorf("%s differs from serial at budget %d", r.name, budget)
				}
			}
		})
	}
}

// TestParallelKernelsConcurrentCallers drives kernels from many goroutines
// at once so the race detector can observe the shared token pool and the
// chunked writers (the tier-1 gate runs with -race).
func TestParallelKernelsConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := Randn(rng, 1, 4, 12, 12)
	w := Randn(rng, 1, 6, 4, 3, 3)
	spec := ConvSpec{Stride: 1, Pad: 1}
	var want *Tensor
	withParallelism(t, 1, func() { want = Conv2D(x, w, spec) })

	withParallelism(t, runtime.GOMAXPROCS(0), func() {
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for iter := 0; iter < 5; iter++ {
					if got := Conv2D(x, w, spec); !bitsEqual(got, want) {
						errs <- fmt.Errorf("concurrent Conv2D diverged")
						return
					}
					if got := MatMul(w.Reshape(6, 36), Im2Col(x, 3, 3, spec)); got.Len() == 0 {
						errs <- fmt.Errorf("concurrent MatMul produced empty result")
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	})
}

func mustPanicContaining(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not mention %q", msg, substr)
		}
	}()
	f()
}

// Regression: kernels larger than the padded input used to slip through
// OutSize, producing zero or negative output dims and a confusing index
// panic (or a silently empty tensor) downstream.
func TestKernelLargerThanPaddedInputRejected(t *testing.T) {
	x := New(2, 4, 4)
	wBig := New(3, 2, 7, 7) // 7 > 4 + 2*1
	spec := ConvSpec{Stride: 1, Pad: 1}
	mustPanicContaining(t, "larger than padded input", func() { Conv2D(x, wBig, spec) })
	mustPanicContaining(t, "larger than padded input", func() {
		DepthwiseConv2D(x, New(2, 7, 7), spec)
	})
	mustPanicContaining(t, "larger than padded input", func() { Im2Col(x, 7, 7, spec) })
	mustPanicContaining(t, "larger than padded input", func() { Conv2DIm2Col(x, wBig, spec) })
	mustPanicContaining(t, "at least 1x1", func() { Im2Col(x, 0, 3, spec) })

	// A kernel that exactly fills the padded input is legal: 1x1 output.
	out := Conv2D(x, New(3, 2, 6, 6), spec)
	if out.Dim(1) != 1 || out.Dim(2) != 1 {
		t.Fatalf("exact-fit kernel output = %v, want [3 1 1]", out.Dims())
	}
}
