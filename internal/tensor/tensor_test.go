package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := x.At(0, 0, 0); got != 0 {
		t.Fatalf("untouched element = %v, want 0", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Set(99, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestArithmetic(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 4)
	y := FromSlice([]float64{10, 20, 30, 40}, 4)
	x.AddInPlace(y)
	want := []float64{11, 22, 33, 44}
	for i, v := range x.Data() {
		if v != want[i] {
			t.Fatalf("AddInPlace[%d] = %v, want %v", i, v, want[i])
		}
	}
	x.SubInPlace(y)
	for i, v := range x.Data() {
		if v != float64(i+1) {
			t.Fatalf("SubInPlace[%d] = %v, want %v", i, v, i+1)
		}
	}
	x.Scale(2)
	if x.At(3) != 8 {
		t.Fatalf("Scale: got %v, want 8", x.At(3))
	}
	x.AXPYInPlace(0.5, y)
	if x.At(0) != 2+5 {
		t.Fatalf("AXPY: got %v, want 7", x.At(0))
	}
}

func TestHadamardAndSum(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	y := FromSlice([]float64{4, 5, 6}, 3)
	x.Hadamard(y)
	if x.At(2) != 18 {
		t.Fatalf("Hadamard: got %v, want 18", x.At(2))
	}
	if s := x.Sum(); s != 4+10+18 {
		t.Fatalf("Sum = %v, want 32", s)
	}
}

func TestMaxAbs(t *testing.T) {
	x := FromSlice([]float64{-5, 2, 3}, 3)
	if m := x.MaxAbs(); m != 5 {
		t.Fatalf("MaxAbs = %v, want 5", m)
	}
	if m := New(0).MaxAbs(); m != 0 {
		t.Fatalf("empty MaxAbs = %v, want 0", m)
	}
}

func TestConvSpecOutSize(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{224, 3, 1, 1, 224},
		{224, 7, 2, 3, 112},
		{32, 3, 1, 0, 30},
		{28, 2, 2, 0, 14},
		{14, 1, 1, 0, 14},
	}
	for _, c := range cases {
		got := ConvSpec{Stride: c.s, Pad: c.p}.OutSize(c.in, c.k)
		if got != c.want {
			t.Errorf("OutSize(%d,k=%d,s=%d,p=%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

// TestConv2DKnown checks a hand-computed 1-channel convolution.
func TestConv2DKnown(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	w := FromSlice([]float64{
		1, 0,
		0, 1,
	}, 1, 1, 2, 2)
	y := Conv2D(x, w, ConvSpec{Stride: 1})
	want := FromSlice([]float64{
		1 + 5, 2 + 6,
		4 + 8, 5 + 9,
	}, 1, 2, 2)
	if !y.Equal(want, 1e-12) {
		t.Fatalf("Conv2D = %v, want %v", y, want)
	}
}

func TestConv2DPaddingAndStride(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	w := FromSlice([]float64{1, 1, 1, 1}, 1, 1, 2, 2) // sum kernel
	y := Conv2D(x, w, ConvSpec{Stride: 2, Pad: 1})
	// Padded input is 4x4 with the image at center; windows at (0,0),(0,2),(2,0),(2,2).
	want := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	if !y.Equal(want, 1e-12) {
		t.Fatalf("Conv2D pad/stride = %v, want %v", y, want)
	}
}

func TestConv2DChannelAccumulation(t *testing.T) {
	// Two input channels with 1x1 kernels: output = 2*c0 + 3*c1.
	x := FromSlice([]float64{
		1, 2, 3, 4, // channel 0
		10, 20, 30, 40, // channel 1
	}, 2, 2, 2)
	w := FromSlice([]float64{2, 3}, 1, 2, 1, 1)
	y := Conv2D(x, w, ConvSpec{Stride: 1})
	want := FromSlice([]float64{32, 64, 96, 128}, 1, 2, 2)
	if !y.Equal(want, 1e-12) {
		t.Fatalf("Conv2D channels = %v, want %v", y, want)
	}
}

func TestDepthwiseConvNoChannelAccumulation(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3, 4,
		10, 20, 30, 40,
	}, 2, 2, 2)
	w := FromSlice([]float64{
		1, 1, 1, 1,
		2, 2, 2, 2,
	}, 2, 2, 2)
	y := DepthwiseConv2D(x, w, ConvSpec{Stride: 1})
	want := FromSlice([]float64{10, 200}, 2, 1, 1)
	if !y.Equal(want, 1e-12) {
		t.Fatalf("DepthwiseConv2D = %v, want %v", y, want)
	}
}

// TestConvDirectEqualsIm2Col is the core equivalence the INCA design rests
// on: direct convolution (2T1R array) and GEMM-based convolution (WS
// unrolling) must compute identical results.
func TestConvDirectEqualsIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ c, h, w, n, k, s, p int }{
		{1, 5, 5, 1, 3, 1, 0},
		{3, 8, 8, 4, 3, 1, 1},
		{2, 7, 9, 3, 3, 2, 1},
		{4, 6, 6, 2, 1, 1, 0},
		{3, 10, 10, 5, 5, 2, 2},
		{2, 9, 9, 3, 3, 3, 0},
	}
	for _, cse := range cases {
		x := Randn(rng, 1, cse.c, cse.h, cse.w)
		w := Randn(rng, 1, cse.n, cse.c, cse.k, cse.k)
		spec := ConvSpec{Stride: cse.s, Pad: cse.p}
		direct := Conv2D(x, w, spec)
		gemm := Conv2DIm2Col(x, w, spec)
		if !direct.Equal(gemm, 1e-9) {
			t.Errorf("direct != im2col for case %+v", cse)
		}
	}
}

func TestIm2ColShape(t *testing.T) {
	x := New(3, 8, 8)
	cols := Im2Col(x, 3, 3, ConvSpec{Stride: 1, Pad: 1})
	if cols.Dim(0) != 27 || cols.Dim(1) != 64 {
		t.Fatalf("Im2Col dims = %v, want [27 64]", cols.Dims())
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := FromSlice([]float64{19, 22, 43, 50}, 2, 2)
	if !c.Equal(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", c, want)
	}
}

func TestRot180Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := Randn(rng, 1, 3, 4, 3, 3)
	ww := Rot180(Rot180(w))
	if !w.Equal(ww, 0) {
		t.Fatal("Rot180 applied twice is not the identity")
	}
}

func TestRot180SwapsAxes(t *testing.T) {
	w := New(2, 3, 1, 1)
	w.Set(7, 1, 2, 0, 0)
	wt := Rot180(w)
	if wt.Dim(0) != 3 || wt.Dim(1) != 2 {
		t.Fatalf("Rot180 dims = %v, want [3 2 1 1]", wt.Dims())
	}
	if wt.At(2, 1, 0, 0) != 7 {
		t.Fatal("Rot180 did not transpose N and C axes")
	}
}

func TestPadAndCrop(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	p := Pad(x, 1)
	if p.Dim(1) != 4 || p.Dim(2) != 4 {
		t.Fatalf("Pad dims = %v", p.Dims())
	}
	if p.At(0, 0, 0) != 0 || p.At(0, 1, 1) != 1 || p.At(0, 2, 2) != 4 {
		t.Fatal("Pad misplaced data")
	}
	c := CropTo(p, 1, 1, 2, 2)
	if !c.Equal(x, 0) {
		t.Fatal("CropTo(Pad(x)) != x")
	}
}

func TestDilate(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	d := Dilate(x, 2)
	if d.Dim(1) != 3 || d.Dim(2) != 3 {
		t.Fatalf("Dilate dims = %v, want [1 3 3]", d.Dims())
	}
	if d.At(0, 0, 0) != 1 || d.At(0, 0, 2) != 2 || d.At(0, 2, 2) != 4 || d.At(0, 1, 1) != 0 {
		t.Fatal("Dilate misplaced data")
	}
	if got := Dilate(x, 1); !got.Equal(x, 0) {
		t.Fatal("Dilate stride 1 should be identity")
	}
}

func TestMaxPool(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 5, 3,
		4, 8, 6, 7,
		1, 1, 2, 2,
		3, 1, 2, 9,
	}, 1, 4, 4)
	res := MaxPool2D(x, 2, 2)
	want := FromSlice([]float64{8, 7, 3, 9}, 1, 2, 2)
	if !res.Out.Equal(want, 0) {
		t.Fatalf("MaxPool2D = %v, want %v", res.Out, want)
	}
	// Backward: gradient goes only to argmax positions.
	delta := FromSlice([]float64{1, 1, 1, 1}, 1, 2, 2)
	dx := MaxPoolBackward(res, delta, []int{1, 4, 4})
	if dx.Sum() != 4 {
		t.Fatalf("MaxPoolBackward sum = %v, want 4", dx.Sum())
	}
	if dx.At(0, 1, 1) != 1 || dx.At(0, 3, 3) != 1 {
		t.Fatal("MaxPoolBackward routed gradient to wrong positions")
	}
	if dx.At(0, 0, 0) != 0 {
		t.Fatal("non-max position received gradient")
	}
}

func TestAvgAndGlobalPool(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	a := AvgPool2D(x, 2, 2)
	if a.At(0, 0, 0) != 2.5 {
		t.Fatalf("AvgPool2D = %v, want 2.5", a.At(0, 0, 0))
	}
	g := GlobalAvgPool2D(x)
	if g.At(0) != 2.5 {
		t.Fatalf("GlobalAvgPool2D = %v, want 2.5", g.At(0))
	}
}

func TestReLUAndBackward(t *testing.T) {
	x := FromSlice([]float64{-1, 0, 2}, 3)
	y := ReLU(x)
	if y.At(0) != 0 || y.At(1) != 0 || y.At(2) != 2 {
		t.Fatalf("ReLU = %v", y)
	}
	delta := FromSlice([]float64{5, 5, 5}, 3)
	dx := ReLUBackward(x, delta)
	if dx.At(0) != 0 || dx.At(1) != 0 || dx.At(2) != 5 {
		t.Fatalf("ReLUBackward = %v", dx)
	}
}

func TestSoftmax(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	s := Softmax(x)
	if math.Abs(s.Sum()-1) > 1e-12 {
		t.Fatalf("softmax sum = %v, want 1", s.Sum())
	}
	if !(s.At(2) > s.At(1) && s.At(1) > s.At(0)) {
		t.Fatal("softmax not monotone")
	}
	// Stability under large inputs.
	big := FromSlice([]float64{1000, 1001, 1002}, 3)
	sb := Softmax(big)
	if math.IsNaN(sb.Sum()) || math.Abs(sb.Sum()-1) > 1e-9 {
		t.Fatalf("softmax unstable: sum = %v", sb.Sum())
	}
}

func TestMatVecAndTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, 1, 1}, 3)
	y := MatVec(a, x)
	if y.At(0) != 6 || y.At(1) != 15 {
		t.Fatalf("MatVec = %v", y)
	}
	v := FromSlice([]float64{1, 2}, 2)
	z := MatVecT(a, v)
	// aT*v = [1+8, 2+10, 3+12]
	if z.At(0) != 9 || z.At(1) != 12 || z.At(2) != 15 {
		t.Fatalf("MatVecT = %v", z)
	}
}

func TestOuter(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := FromSlice([]float64{3, 4, 5}, 3)
	o := Outer(x, y)
	if o.At(1, 2) != 10 || o.At(0, 0) != 3 {
		t.Fatalf("Outer = %v", o)
	}
}
