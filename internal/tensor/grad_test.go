package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad computes d(loss)/d(param[i]) via central differences, where
// loss = sum(forward(param)).
func numericalGrad(param *Tensor, forward func() *Tensor) *Tensor {
	const eps = 1e-5
	g := New(param.Dims()...)
	for i := range param.Data() {
		orig := param.Data()[i]
		param.Data()[i] = orig + eps
		up := forward().Sum()
		param.Data()[i] = orig - eps
		down := forward().Sum()
		param.Data()[i] = orig
		g.Data()[i] = (up - down) / (2 * eps)
	}
	return g
}

func checkClose(t *testing.T, name string, got, want *Tensor, tol float64) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: length mismatch %v vs %v", name, got.Dims(), want.Dims())
	}
	for i := range got.Data() {
		if math.Abs(got.Data()[i]-want.Data()[i]) > tol {
			t.Fatalf("%s: element %d: got %v, want %v", name, i, got.Data()[i], want.Data()[i])
		}
	}
}

// TestConvBackwardInputNumerical verifies the analytic full-convolution
// backward pass (Eq. 3) against central differences for several geometries,
// including strided and padded convolutions.
func TestConvBackwardInputNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct{ c, h, w, n, k, s, p int }{
		{1, 5, 5, 1, 3, 1, 0},
		{2, 6, 6, 3, 3, 1, 1},
		{2, 7, 7, 2, 3, 2, 1},
		{1, 8, 8, 2, 2, 2, 0},
		{3, 5, 5, 2, 1, 1, 0},
	}
	for _, cse := range cases {
		x := Randn(rng, 1, cse.c, cse.h, cse.w)
		w := Randn(rng, 1, cse.n, cse.c, cse.k, cse.k)
		spec := ConvSpec{Stride: cse.s, Pad: cse.p}
		// loss = sum(conv(x, w)); dL/dy = ones.
		y := Conv2D(x, w, spec)
		ones := New(y.Dims()...)
		ones.Fill(1)
		analytic := ConvBackwardInput(w, ones, spec, cse.h, cse.w)
		numeric := numericalGrad(x, func() *Tensor { return Conv2D(x, w, spec) })
		checkClose(t, "ConvBackwardInput", analytic, numeric, 1e-6)
	}
}

// TestConvBackwardWeightsNumerical verifies the weight-gradient convolution
// (Eq. 4) against central differences.
func TestConvBackwardWeightsNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := []struct{ c, h, w, n, k, s, p int }{
		{1, 5, 5, 1, 3, 1, 0},
		{2, 6, 6, 3, 3, 1, 1},
		{2, 7, 7, 2, 3, 2, 1},
		{3, 4, 4, 2, 1, 1, 0},
	}
	for _, cse := range cases {
		x := Randn(rng, 1, cse.c, cse.h, cse.w)
		w := Randn(rng, 1, cse.n, cse.c, cse.k, cse.k)
		spec := ConvSpec{Stride: cse.s, Pad: cse.p}
		y := Conv2D(x, w, spec)
		ones := New(y.Dims()...)
		ones.Fill(1)
		analytic := ConvBackwardWeights(x, ones, spec, cse.k, cse.k)
		numeric := numericalGrad(w, func() *Tensor { return Conv2D(x, w, spec) })
		checkClose(t, "ConvBackwardWeights", analytic, numeric, 1e-6)
	}
}

func TestDepthwiseBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct{ c, h, w, k, s, p int }{
		{2, 6, 6, 3, 1, 1},
		{3, 7, 7, 3, 2, 1},
		{1, 5, 5, 5, 1, 2},
	}
	for _, cse := range cases {
		x := Randn(rng, 1, cse.c, cse.h, cse.w)
		w := Randn(rng, 1, cse.c, cse.k, cse.k)
		spec := ConvSpec{Stride: cse.s, Pad: cse.p}
		y := DepthwiseConv2D(x, w, spec)
		ones := New(y.Dims()...)
		ones.Fill(1)

		dx := DepthwiseBackwardInput(w, ones, spec, cse.h, cse.w)
		numX := numericalGrad(x, func() *Tensor { return DepthwiseConv2D(x, w, spec) })
		checkClose(t, "DepthwiseBackwardInput", dx, numX, 1e-6)

		dw := DepthwiseBackwardWeights(x, ones, spec, cse.k, cse.k)
		numW := numericalGrad(w, func() *Tensor { return DepthwiseConv2D(x, w, spec) })
		checkClose(t, "DepthwiseBackwardWeights", dw, numW, 1e-6)
	}
}

func TestFCBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Randn(rng, 1, 4, 6) // weights [out, in]
	x := Randn(rng, 1, 6)

	// d(sum(a x))/dx = column sums of a = aT * ones.
	ones := New(4)
	ones.Fill(1)
	dx := MatVecT(a, ones)
	numX := numericalGrad(x, func() *Tensor { return MatVec(a, x) })
	checkClose(t, "FC dX", dx, numX, 1e-6)

	// d(sum(a x))/da = ones ⊗ x.
	dw := Outer(ones, x)
	numW := numericalGrad(a, func() *Tensor { return MatVec(a, x) })
	checkClose(t, "FC dW", dw, numW, 1e-6)
}
