package tensor

import "fmt"

// ConvSpec describes the geometry of a 2D convolution.
type ConvSpec struct {
	Stride int // stride in both spatial directions (>= 1)
	Pad    int // symmetric zero padding (>= 0)
}

// OutSize returns the output spatial size for an input of size in with
// kernel size k under this spec.
func (s ConvSpec) OutSize(in, k int) int {
	return (in+2*s.Pad-k)/s.Stride + 1
}

func (s ConvSpec) validate() {
	if s.Stride < 1 {
		panic(fmt.Sprintf("tensor: invalid stride %d", s.Stride))
	}
	if s.Pad < 0 {
		panic(fmt.Sprintf("tensor: invalid pad %d", s.Pad))
	}
}

// checkKernel panics with a clear geometry message when the kernel cannot
// produce a positive output size: a degenerate kernel, or one larger than
// the padded input. Without this check OutSize yields a zero or negative
// dimension and the caller fails later with a confusing index panic (or
// silently returns an empty tensor).
func (s ConvSpec) checkKernel(op string, h, w, kh, kw int) {
	if kh < 1 || kw < 1 {
		panic(fmt.Sprintf("tensor: %s kernel %dx%d must be at least 1x1", op, kh, kw))
	}
	if kh > h+2*s.Pad || kw > w+2*s.Pad {
		panic(fmt.Sprintf(
			"tensor: %s kernel %dx%d larger than padded input %dx%d (input %dx%d, pad %d)",
			op, kh, kw, h+2*s.Pad, w+2*s.Pad, h, w, s.Pad))
	}
}

// Conv2D computes a direct 2D convolution (really cross-correlation, as in
// deep learning frameworks) of a single image.
//
//	x: [C, H, W]      input feature maps
//	w: [N, C, KH, KW] kernels
//
// The result has shape [N, OH, OW]. This is the mathematical "direct
// convolution" the INCA 2T1R array implements (paper Eq. 1).
func Conv2D(x, w *Tensor, spec ConvSpec) *Tensor {
	spec.validate()
	if x.Rank() != 3 || w.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2D wants x rank 3 and w rank 4, got %v and %v", x.Dims(), w.Dims()))
	}
	c, h, wd := x.Dim(0), x.Dim(1), x.Dim(2)
	n, wc, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	if wc != c {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch: x has %d, w has %d", c, wc))
	}
	spec.checkKernel("Conv2D", h, wd, kh, kw)
	oh, ow := spec.OutSize(h, kh), spec.OutSize(wd, kw)
	out := New(n, oh, ow)
	xd, wdat, od := x.data, w.data, out.data
	// Output channels are independent, so they parallelize without
	// changing any per-element reduction order.
	parallelFor(n, 2*int64(oh)*int64(ow)*int64(c)*int64(kh)*int64(kw), func(lo, hi int) {
		for on := lo; on < hi; on++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := 0.0
					iy0 := oy*spec.Stride - spec.Pad
					ix0 := ox*spec.Stride - spec.Pad
					for ic := 0; ic < c; ic++ {
						for ky := 0; ky < kh; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= h {
								continue
							}
							xrow := (ic*h + iy) * wd
							wrow := ((on*c+ic)*kh + ky) * kw
							for kx := 0; kx < kw; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= wd {
									continue
								}
								sum += xd[xrow+ix] * wdat[wrow+kx]
							}
						}
					}
					od[(on*oh+oy)*ow+ox] = sum
				}
			}
		}
	})
	return out
}

// DepthwiseConv2D convolves each input channel with its own single-channel
// kernel (paper Fig. 3b, "depthwise convolution": no accumulation across
// input channels).
//
//	x: [C, H, W]
//	w: [C, KH, KW]
//
// Result: [C, OH, OW].
func DepthwiseConv2D(x, w *Tensor, spec ConvSpec) *Tensor {
	spec.validate()
	if x.Rank() != 3 || w.Rank() != 3 {
		panic(fmt.Sprintf("tensor: DepthwiseConv2D wants rank-3 x and w, got %v and %v", x.Dims(), w.Dims()))
	}
	c, h, wd := x.Dim(0), x.Dim(1), x.Dim(2)
	if w.Dim(0) != c {
		panic(fmt.Sprintf("tensor: DepthwiseConv2D channel mismatch: x has %d, w has %d", c, w.Dim(0)))
	}
	kh, kw := w.Dim(1), w.Dim(2)
	spec.checkKernel("DepthwiseConv2D", h, wd, kh, kw)
	oh, ow := spec.OutSize(h, kh), spec.OutSize(wd, kw)
	out := New(c, oh, ow)
	// Channels never interact in a depthwise convolution, so they are the
	// natural parallel axis.
	parallelFor(c, 2*int64(oh)*int64(ow)*int64(kh)*int64(kw), func(lo, hi int) {
		for ic := lo; ic < hi; ic++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := 0.0
					for ky := 0; ky < kh; ky++ {
						iy := oy*spec.Stride - spec.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*spec.Stride - spec.Pad + kx
							if ix < 0 || ix >= wd {
								continue
							}
							sum += x.data[(ic*h+iy)*wd+ix] * w.data[(ic*kh+ky)*kw+kx]
						}
					}
					out.data[(ic*oh+oy)*ow+ox] = sum
				}
			}
		}
	})
	return out
}

// Im2Col unrolls the sliding windows of x into a matrix of shape
// [C*KH*KW, OH*OW]. Column j holds the window that produces output position
// j; this is the "GEMM-based convolution" unrolling used by WS accelerators
// (paper §III.B, "Challenges"). The repetition of input elements across
// columns is exactly the RRAM blow-up quantified in Fig. 7b.
func Im2Col(x *Tensor, kh, kw int, spec ConvSpec) *Tensor {
	spec.validate()
	if x.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Im2Col wants rank-3 x, got %v", x.Dims()))
	}
	c, h, wd := x.Dim(0), x.Dim(1), x.Dim(2)
	spec.checkKernel("Im2Col", h, wd, kh, kw)
	oh, ow := spec.OutSize(h, kh), spec.OutSize(wd, kw)
	out := New(c*kh*kw, oh*ow)
	// Each input channel fills its own kh*kw output rows: pure disjoint
	// copies, parallel over channels.
	parallelFor(c, int64(kh)*int64(kw)*int64(oh)*int64(ow), func(lo, hi int) {
		for ic := lo; ic < hi; ic++ {
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					row := (ic*kh+ky)*kw + kx
					for oy := 0; oy < oh; oy++ {
						iy := oy*spec.Stride - spec.Pad + ky
						for ox := 0; ox < ow; ox++ {
							ix := ox*spec.Stride - spec.Pad + kx
							v := 0.0
							if iy >= 0 && iy < h && ix >= 0 && ix < wd {
								v = x.data[(ic*h+iy)*wd+ix]
							}
							out.data[row*(oh*ow)+oy*ow+ox] = v
						}
					}
				}
			}
		}
	})
	return out
}

// matMulBlock is the column-tile width of the blocked MatMul: 512 float64
// values keep one b-stripe (and the matching output stripe) resident in
// L1 while the k loop streams over it.
const matMulBlock = 512

// MatMul returns a×b for 2-D tensors a [M,K] and b [K,N].
//
// The kernel is cache-blocked over columns of b and parallel over rows of
// a. Each output element still accumulates its k products in ascending
// order on a single goroutine, so the result is byte-identical to the
// naive triple loop at any parallelism budget.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul wants rank-2 tensors, got %v and %v", a.Dims(), b.Dims()))
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims mismatch: %d vs %d", k, k2))
	}
	out := New(m, n)
	parallelFor(m, 2*int64(k)*int64(n), func(lo, hi int) {
		for jb := 0; jb < n; jb += matMulBlock {
			je := min(jb+matMulBlock, n)
			for i := lo; i < hi; i++ {
				arow := a.data[i*k : (i+1)*k]
				orow := out.data[i*n+jb : i*n+je]
				for p := 0; p < k; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					brow := b.data[p*n+jb : p*n+je]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	})
	return out
}

// Conv2DIm2Col computes the same result as Conv2D via the unrolled
// GEMM formulation: reshape w to [N, C*KH*KW] and multiply by the im2col
// matrix. Used to cross-check the direct path and to model WS execution.
func Conv2DIm2Col(x, w *Tensor, spec ConvSpec) *Tensor {
	n, c, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	cols := Im2Col(x, kh, kw, spec)
	wm := w.Reshape(n, c*kh*kw)
	prod := MatMul(wm, cols)
	oh := spec.OutSize(x.Dim(1), kh)
	ow := spec.OutSize(x.Dim(2), kw)
	return prod.Reshape(n, oh, ow)
}

// Rot180 rotates each KH×KW kernel plane of w [N, C, KH, KW] by 180° and
// swaps the N and C axes, producing the transposed kernel W^T used in
// backpropagation (paper Eq. 3): result is [C, N, KH, KW].
func Rot180(w *Tensor) *Tensor {
	if w.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Rot180 wants rank-4 w, got %v", w.Dims()))
	}
	n, c, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	out := New(c, n, kh, kw)
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					v := w.data[((in*c+ic)*kh+ky)*kw+kx]
					out.data[((ic*n+in)*kh+(kh-1-ky))*kw+(kw-1-kx)] = v
				}
			}
		}
	}
	return out
}

// Pad returns x [C,H,W] zero-padded by p on every spatial side.
func Pad(x *Tensor, p int) *Tensor {
	if p == 0 {
		return x.Clone()
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	out := New(c, h+2*p, w+2*p)
	for ic := 0; ic < c; ic++ {
		for iy := 0; iy < h; iy++ {
			src := x.data[(ic*h+iy)*w : (ic*h+iy)*w+w]
			dstRow := (ic*(h+2*p)+iy+p)*(w+2*p) + p
			copy(out.data[dstRow:dstRow+w], src)
		}
	}
	return out
}

// Dilate inserts (stride-1) zeros between the elements of each spatial map
// of x [C,H,W]. It converts a strided convolution's output gradient into
// the dense form needed by the full-convolution backward pass.
func Dilate(x *Tensor, stride int) *Tensor {
	if stride <= 1 {
		return x.Clone()
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh := (h-1)*stride + 1
	ow := (w-1)*stride + 1
	out := New(c, oh, ow)
	for ic := 0; ic < c; ic++ {
		for iy := 0; iy < h; iy++ {
			for ix := 0; ix < w; ix++ {
				out.data[(ic*oh+iy*stride)*ow+ix*stride] = x.data[(ic*h+iy)*w+ix]
			}
		}
	}
	return out
}

// CropTo crops x [C,H,W] to [C,h,w] starting at the origin offset (oy, ox).
func CropTo(x *Tensor, oy, ox, h, w int) *Tensor {
	c, ih, iw := x.Dim(0), x.Dim(1), x.Dim(2)
	if oy+h > ih || ox+w > iw {
		panic(fmt.Sprintf("tensor: crop [%d+%d, %d+%d] exceeds input [%d, %d]", oy, h, ox, w, ih, iw))
	}
	out := New(c, h, w)
	for ic := 0; ic < c; ic++ {
		for y := 0; y < h; y++ {
			src := (ic*ih+oy+y)*iw + ox
			copy(out.data[(ic*h+y)*w:(ic*h+y)*w+w], x.data[src:src+w])
		}
	}
	return out
}
