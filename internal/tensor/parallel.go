package tensor

import (
	"runtime"
	"sync"
)

// Kernel parallelism
//
// Every parallel kernel in this package (Conv2D, DepthwiseConv2D, Im2Col,
// MatMul and the backward kernels) draws its workers from one shared,
// process-wide budget. The budget is a token pool holding budget-1 tokens:
// a kernel call always runs on its calling goroutine and additionally
// takes as many tokens as it can use without blocking, returning them when
// the call completes. Because every concurrent kernel call — including
// calls made from the sweep engine's worker pool or train's batch
// evaluation — competes for the same tokens, nested parallelism cannot
// multiply: total extra kernel goroutines never exceed budget-1 no matter
// how many goroutines enter kernels at once.
//
// Work is always split into contiguous index chunks and every output
// element is computed entirely by one goroutine with the same inner-loop
// order as the serial code, so results are byte-identical to serial
// execution for any budget.

var pool struct {
	mu    sync.Mutex
	limit int           // configured budget; <= 0 tracks GOMAXPROCS(0)
	extra chan struct{} // budget-1 extra-worker tokens
}

// Parallelism reports the current kernel worker budget: the value set by
// SetParallelism, or runtime.GOMAXPROCS(0) when unset.
func Parallelism() int {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	return effectiveLimitLocked()
}

func effectiveLimitLocked() int {
	if pool.limit > 0 {
		return pool.limit
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism sets the worker budget shared by every parallel kernel
// and returns the previous configured value (0 if the budget was tracking
// GOMAXPROCS). n <= 0 restores GOMAXPROCS tracking. The budget is
// process-wide: layers that fan work out over their own goroutines (the
// sweep engine, batch evaluation) share it with the kernels they call, so
// the machine is never oversubscribed.
//
// Tokens already held by running kernels are unaffected; the new budget
// applies to subsequent kernel calls.
func SetParallelism(n int) int {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	prev := pool.limit
	if n < 0 {
		n = 0
	}
	pool.limit = n
	pool.extra = nil // rebuilt lazily at the new size
	return prev
}

// semLocked returns the token channel, rebuilding it when the budget
// changed. Kernels release tokens into the channel they acquired from, so
// a rebuild never loses or duplicates tokens.
func semLocked() chan struct{} {
	want := effectiveLimitLocked() - 1
	if want < 0 {
		want = 0
	}
	if pool.extra == nil || cap(pool.extra) != want {
		pool.extra = make(chan struct{}, want)
		for i := 0; i < want; i++ {
			pool.extra <- struct{}{}
		}
	}
	return pool.extra
}

// acquireWorkers takes up to want extra-worker tokens without blocking and
// returns how many it got plus a release function. Non-blocking
// acquisition is what makes nesting safe: an inner kernel that finds the
// pool drained simply runs serially instead of deadlocking or spawning
// beyond the budget.
func acquireWorkers(want int) (got int, release func()) {
	pool.mu.Lock()
	sem := semLocked()
	pool.mu.Unlock()
	for got < want {
		select {
		case <-sem:
			got++
		default:
			want = got
		}
	}
	n := got
	return got, func() {
		for i := 0; i < n; i++ {
			sem <- struct{}{}
		}
	}
}

// ParallelChunks splits [0, n) into contiguous chunks — one per worker the
// shared budget grants, at most min(Parallelism(), n) — and runs body on
// each, concurrently. Chunk 0 runs on the calling goroutine. body receives
// its chunk index and half-open range [lo, hi). It returns the number of
// chunks used (1 means the call ran serially).
//
// Higher layers that parallelize over whole units of work (train's batch
// evaluation) use this entry point so their goroutines and the kernels'
// draw from one budget.
func ParallelChunks(n int, body func(chunk, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	chunks := parallelChunks(n, body)
	if s := statsHook.Load(); s != nil {
		s.record(n, chunks)
	}
	return chunks
}

func parallelChunks(n int, body func(chunk, lo, hi int)) int {
	want := Parallelism()
	if want > n {
		want = n
	}
	if want <= 1 {
		body(0, 0, n)
		return 1
	}
	got, release := acquireWorkers(want - 1)
	if got == 0 {
		release()
		body(0, 0, n)
		return 1
	}
	defer release()
	chunks := got + 1
	var wg sync.WaitGroup
	for c := 1; c < chunks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body(c, c*n/chunks, (c+1)*n/chunks)
		}(c)
	}
	body(0, 0, n/chunks)
	wg.Wait()
	return chunks
}

// minParallelFlops is the approximate amount of per-call work below which
// splitting is pure overhead; small kernels (the accuracy experiments' 16
// x 16 images) stay serial.
const minParallelFlops = 1 << 16

// parallelFor runs body over contiguous sub-ranges of [0, n) on up to
// Parallelism() workers. flopsPerItem is a rough work estimate per index
// used to keep small problems serial. body must write only to output
// elements owned by its range so chunking is race-free, and must keep the
// serial inner-loop order so results are byte-identical at any budget.
func parallelFor(n int, flopsPerItem int64, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if flopsPerItem*int64(n) < minParallelFlops {
		if s := statsHook.Load(); s != nil {
			s.record(n, 1)
		}
		body(0, n)
		return
	}
	ParallelChunks(n, func(_, lo, hi int) { body(lo, hi) })
}
