package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomConvCase draws a small random convolution geometry plus data.
type randomConvCase struct {
	x    *Tensor
	w    *Tensor
	spec ConvSpec
}

func genConvCase(rng *rand.Rand) randomConvCase {
	c := 1 + rng.Intn(3)
	k := 1 + rng.Intn(3)
	h := k + rng.Intn(6)
	wd := k + rng.Intn(6)
	n := 1 + rng.Intn(3)
	s := 1 + rng.Intn(2)
	p := rng.Intn(k) // pad < k keeps geometry valid
	return randomConvCase{
		x:    Randn(rng, 1, c, h, wd),
		w:    Randn(rng, 1, n, c, k, k),
		spec: ConvSpec{Stride: s, Pad: p},
	}
}

// PROPERTY: direct convolution and GEMM (im2col) convolution agree on
// arbitrary geometries — the functional foundation of the WS-vs-IS
// comparison.
func TestPropertyDirectEqualsGEMM(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cse := genConvCase(rng)
		a := Conv2D(cse.x, cse.w, cse.spec)
		b := Conv2DIm2Col(cse.x, cse.w, cse.spec)
		return a.Equal(b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// PROPERTY: convolution is linear in the input:
// conv(a*x1 + b*x2, w) == a*conv(x1, w) + b*conv(x2, w).
func TestPropertyConvLinearity(t *testing.T) {
	f := func(seed int64, a8, b8 int8) bool {
		rng := rand.New(rand.NewSource(seed))
		cse := genConvCase(rng)
		x2 := Randn(rng, 1, cse.x.Dims()...)
		a, b := float64(a8)/16, float64(b8)/16

		mix := cse.x.Clone().Scale(a).AXPYInPlace(b, x2)
		lhs := Conv2D(mix, cse.w, cse.spec)
		rhs := Conv2D(cse.x, cse.w, cse.spec).Scale(a).
			AXPYInPlace(b, Conv2D(x2, cse.w, cse.spec))
		return lhs.Equal(rhs, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// PROPERTY: Rot180 is an involution and preserves the multiset of values.
func TestPropertyRot180(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c, k := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		w := Randn(rng, 1, n, c, k, k)
		r := Rot180(w)
		if math.Abs(r.Sum()-w.Sum()) > 1e-9 {
			return false
		}
		return Rot180(r).Equal(w, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// PROPERTY: max pooling dominates average pooling element-wise, and both
// are bounded by the input extrema.
func TestPropertyPoolingBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(3)
		k := 1 + rng.Intn(2)
		h := k * (1 + rng.Intn(4))
		x := Randn(rng, 1, c, h, h)
		mx := MaxPool2D(x, k, k).Out
		av := AvgPool2D(x, k, k)
		for i := range mx.Data() {
			if mx.Data()[i] < av.Data()[i]-1e-12 {
				return false
			}
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range x.Data() {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, v := range mx.Data() {
			if v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// PROPERTY: MaxPoolBackward conserves gradient mass (every output gradient
// lands on exactly one input position).
func TestPropertyMaxPoolGradientConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(3)
		k := 1 + rng.Intn(2)
		h := k * (1 + rng.Intn(4))
		x := Randn(rng, 1, c, h, h)
		res := MaxPool2D(x, k, k)
		delta := Randn(rng, 1, res.Out.Dims()...)
		dx := MaxPoolBackward(res, delta, x.Dims())
		return math.Abs(dx.Sum()-delta.Sum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// PROPERTY: im2col column count equals OH*OW and each column holds exactly
// the window contents (spot-checked against direct indexing).
func TestPropertyIm2ColWindows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cse := genConvCase(rng)
		k := cse.w.Dim(2)
		cols := Im2Col(cse.x, k, k, cse.spec)
		oh := cse.spec.OutSize(cse.x.Dim(1), k)
		ow := cse.spec.OutSize(cse.x.Dim(2), k)
		if cols.Dim(1) != oh*ow {
			return false
		}
		// Check one random window.
		oy, ox := rng.Intn(oh), rng.Intn(ow)
		for ic := 0; ic < cse.x.Dim(0); ic++ {
			for ky := 0; ky < k; ky++ {
				for kx := 0; kx < k; kx++ {
					iy := oy*cse.spec.Stride - cse.spec.Pad + ky
					ix := ox*cse.spec.Stride - cse.spec.Pad + kx
					want := 0.0
					if iy >= 0 && iy < cse.x.Dim(1) && ix >= 0 && ix < cse.x.Dim(2) {
						want = cse.x.At(ic, iy, ix)
					}
					got := cols.At((ic*k+ky)*k+kx, oy*ow+ox)
					if got != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// PROPERTY: softmax output is a probability distribution for any input.
func TestPropertySoftmaxDistribution(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
			// Clamp to a sane range; quick can generate 1e300 values whose
			// exp differences legitimately underflow.
			vals[i] = math.Max(-500, math.Min(500, vals[i]))
		}
		s := Softmax(FromSlice(vals, len(vals)))
		sum := 0.0
		for _, v := range s.Data() {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
