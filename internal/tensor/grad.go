package tensor

import "fmt"

// MatVec returns the matrix-vector product a [M,N] × x [N] -> [M].
func MatVec(a, x *Tensor) *Tensor {
	if a.Rank() != 2 || x.Rank() != 1 {
		panic(fmt.Sprintf("tensor: MatVec wants a rank 2 and x rank 1, got %v and %v", a.Dims(), x.Dims()))
	}
	m, n := a.Dim(0), a.Dim(1)
	if x.Dim(0) != n {
		panic(fmt.Sprintf("tensor: MatVec dims mismatch: a %v, x %v", a.Dims(), x.Dims()))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		sum := 0.0
		for j, v := range row {
			sum += v * x.data[j]
		}
		out.data[i] = sum
	}
	return out
}

// MatVecT returns aᵀ × x for a [M,N] and x [M] -> [N], i.e. the
// transposed-weight product used in FC backpropagation (paper Eq. 3).
func MatVecT(a, x *Tensor) *Tensor {
	m, n := a.Dim(0), a.Dim(1)
	if x.Dim(0) != m {
		panic(fmt.Sprintf("tensor: MatVecT dims mismatch: a %v, x %v", a.Dims(), x.Dims()))
	}
	out := New(n)
	for i := 0; i < m; i++ {
		xi := x.data[i]
		if xi == 0 {
			continue
		}
		row := a.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j] += xi * v
		}
	}
	return out
}

// Outer returns the outer product x [M] ⊗ y [N] -> [M,N], the FC weight
// gradient (δ ⊗ input).
func Outer(x, y *Tensor) *Tensor {
	m, n := x.Dim(0), y.Dim(0)
	out := New(m, n)
	for i := 0; i < m; i++ {
		xi := x.data[i]
		for j := 0; j < n; j++ {
			out.data[i*n+j] = xi * y.data[j]
		}
	}
	return out
}

// ConvBackwardInput computes dL/dx for a convolution y = w * x with the
// given spec, from the output gradient delta [N,OH,OW]. Following the
// paper's Eq. 3, this is the (dilated, padded) delta convolved with the
// transposed, 180°-rotated kernel. inH and inW give the input spatial size.
func ConvBackwardInput(w, delta *Tensor, spec ConvSpec, inH, inW int) *Tensor {
	spec.validate()
	wt := Rot180(w) // [C, N, KH, KW]
	kh := w.Dim(2)
	// Undo stride by dilating the gradient, then full-convolve:
	// pad by (k-1) so every input position receives all contributions.
	d := Dilate(delta, spec.Stride)
	full := Conv2D(Pad(d, kh-1), wt, ConvSpec{Stride: 1})
	// full has size (dilH + kh - 1) × (dilW + kw - 1); input position i
	// corresponds to full position i + pad. When the stride does not divide
	// the input exactly, trailing input rows/cols were never covered by any
	// window and keep gradient zero.
	c := wt.Dim(0)
	dx := New(c, inH, inW)
	fh, fw := full.Dim(1), full.Dim(2)
	copyH := min(inH, fh-spec.Pad)
	copyW := min(inW, fw-spec.Pad)
	for ic := 0; ic < c; ic++ {
		for y := 0; y < copyH; y++ {
			srcRow := (ic*fh+y+spec.Pad)*fw + spec.Pad
			dstRow := (ic*inH + y) * inW
			copy(dx.data[dstRow:dstRow+copyW], full.data[srcRow:srcRow+copyW])
		}
	}
	return dx
}

// ConvBackwardWeights computes dL/dw for y = w * x: each weight gradient is
// the convolution of the layer input with the (dilated) output gradient
// (paper Eq. 4, "errors are convolved with inputs of the layer").
// x is [C,H,W], delta is [N,OH,OW]; the result matches w's shape
// [N,C,KH,KW].
func ConvBackwardWeights(x, delta *Tensor, spec ConvSpec, kh, kw int) *Tensor {
	spec.validate()
	c := x.Dim(0)
	n, oh, ow := delta.Dim(0), delta.Dim(1), delta.Dim(2)
	xp := Pad(x, spec.Pad)
	dw := New(n, c, kh, kw)
	ph, pw := xp.Dim(1), xp.Dim(2)
	// Each output-gradient channel owns a disjoint [c, kh, kw] slab of dw.
	parallelFor(n, 2*int64(c)*int64(kh)*int64(kw)*int64(oh)*int64(ow), func(lo, hi int) {
		for in := lo; in < hi; in++ {
			for ic := 0; ic < c; ic++ {
				for ky := 0; ky < kh; ky++ {
					for kx := 0; kx < kw; kx++ {
						sum := 0.0
						for oy := 0; oy < oh; oy++ {
							iy := oy*spec.Stride + ky
							if iy >= ph {
								continue
							}
							for ox := 0; ox < ow; ox++ {
								ix := ox*spec.Stride + kx
								if ix >= pw {
									continue
								}
								sum += xp.data[(ic*ph+iy)*pw+ix] * delta.data[(in*oh+oy)*ow+ox]
							}
						}
						dw.data[((in*c+ic)*kh+ky)*kw+kx] = sum
					}
				}
			}
		}
	})
	return dw
}

// DepthwiseBackwardInput computes dL/dx for a depthwise convolution.
// w is [C,KH,KW], delta is [C,OH,OW].
func DepthwiseBackwardInput(w, delta *Tensor, spec ConvSpec, inH, inW int) *Tensor {
	c, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2)
	dx := New(c, inH, inW)
	oh, ow := delta.Dim(1), delta.Dim(2)
	// Depthwise gradients scatter within a single channel's dx plane only.
	parallelFor(c, 2*int64(oh)*int64(ow)*int64(kh)*int64(kw), func(lo, hi int) {
		for ic := lo; ic < hi; ic++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := delta.data[(ic*oh+oy)*ow+ox]
					if g == 0 {
						continue
					}
					for ky := 0; ky < kh; ky++ {
						iy := oy*spec.Stride - spec.Pad + ky
						if iy < 0 || iy >= inH {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*spec.Stride - spec.Pad + kx
							if ix < 0 || ix >= inW {
								continue
							}
							dx.data[(ic*inH+iy)*inW+ix] += g * w.data[(ic*kh+ky)*kw+kx]
						}
					}
				}
			}
		}
	})
	return dx
}

// DepthwiseBackwardWeights computes dL/dw for a depthwise convolution.
func DepthwiseBackwardWeights(x, delta *Tensor, spec ConvSpec, kh, kw int) *Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := delta.Dim(1), delta.Dim(2)
	dw := New(c, kh, kw)
	parallelFor(c, 2*int64(kh)*int64(kw)*int64(oh)*int64(ow), func(lo, hi int) {
		for ic := lo; ic < hi; ic++ {
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					sum := 0.0
					for oy := 0; oy < oh; oy++ {
						iy := oy*spec.Stride - spec.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for ox := 0; ox < ow; ox++ {
							ix := ox*spec.Stride - spec.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							sum += x.data[(ic*h+iy)*w+ix] * delta.data[(ic*oh+oy)*ow+ox]
						}
					}
					dw.data[(ic*kh+ky)*kw+kx] = sum
				}
			}
		}
	})
	return dw
}
