package tensor

import (
	"fmt"
	"math"
)

// MaxPoolResult carries a max-pooling output along with the flat input
// index of each selected maximum, which the backward pass uses to route
// gradients (the paper's LUT that "finds the original position of the
// maximum value" — §IV.C Backward).
type MaxPoolResult struct {
	Out    *Tensor // [C, OH, OW]
	ArgMax []int   // flat index into the input for each output element
}

// MaxPool2D applies k×k max pooling with the given stride to x [C,H,W].
func MaxPool2D(x *Tensor, k, stride int) MaxPoolResult {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("tensor: MaxPool2D wants rank-3 x, got %v", x.Dims()))
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh := (h-k)/stride + 1
	ow := (w-k)/stride + 1
	out := New(c, oh, ow)
	arg := make([]int, c*oh*ow)
	for ic := 0; ic < c; ic++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				// Initialize from the first cell so a window of equal (or
				// NaN) values still has a defined argmax.
				bestIdx := (ic*h+oy*stride)*w + ox*stride
				best := x.data[bestIdx]
				for ky := 0; ky < k; ky++ {
					iy := oy*stride + ky
					for kx := 0; kx < k; kx++ {
						ix := ox*stride + kx
						idx := (ic*h+iy)*w + ix
						if v := x.data[idx]; v > best {
							best = v
							bestIdx = idx
						}
					}
				}
				o := (ic*oh+oy)*ow + ox
				out.data[o] = best
				arg[o] = bestIdx
			}
		}
	}
	return MaxPoolResult{Out: out, ArgMax: arg}
}

// MaxPoolBackward scatters the output gradient delta [C,OH,OW] back to
// input positions recorded in res.ArgMax; all other elements are "dead as
// 0" (paper §II.B.2). inputDims gives the original input shape [C,H,W].
func MaxPoolBackward(res MaxPoolResult, delta *Tensor, inputDims []int) *Tensor {
	dx := New(inputDims...)
	for i, src := range res.ArgMax {
		dx.data[src] += delta.data[i]
	}
	return dx
}

// AvgPool2D applies k×k average pooling with the given stride to x [C,H,W].
func AvgPool2D(x *Tensor, k, stride int) *Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh := (h-k)/stride + 1
	ow := (w-k)/stride + 1
	out := New(c, oh, ow)
	inv := 1.0 / float64(k*k)
	for ic := 0; ic < c; ic++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := 0.0
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						sum += x.data[(ic*h+oy*stride+ky)*w+ox*stride+kx]
					}
				}
				out.data[(ic*oh+oy)*ow+ox] = sum * inv
			}
		}
	}
	return out
}

// GlobalAvgPool2D reduces x [C,H,W] to a [C] vector of spatial means.
func GlobalAvgPool2D(x *Tensor) *Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	out := New(c)
	inv := 1.0 / float64(h*w)
	for ic := 0; ic < c; ic++ {
		sum := 0.0
		for i := ic * h * w; i < (ic+1)*h*w; i++ {
			sum += x.data[i]
		}
		out.data[ic] = sum * inv
	}
	return out
}

// ReLU returns max(x, 0) element-wise as a new tensor.
func ReLU(x *Tensor) *Tensor {
	out := x.Clone()
	for i, v := range out.data {
		if v < 0 {
			out.data[i] = 0
		}
	}
	return out
}

// ReLUBackward masks delta by the ReLU derivative evaluated at pre-
// activation input x: delta where x > 0, else 0. This is the AND-gate
// formulation INCA uses in hardware (paper §IV.C).
func ReLUBackward(x, delta *Tensor) *Tensor {
	x.mustSameShape(delta)
	out := New(x.dims...)
	for i := range x.data {
		if x.data[i] > 0 {
			out.data[i] = delta.data[i]
		}
	}
	return out
}

// Softmax returns the softmax of a rank-1 tensor, computed stably.
func Softmax(x *Tensor) *Tensor {
	if x.Rank() != 1 {
		panic(fmt.Sprintf("tensor: Softmax wants rank-1 x, got %v", x.Dims()))
	}
	out := New(x.Dim(0))
	max := math.Inf(-1)
	for _, v := range x.data {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range x.data {
		e := math.Exp(v - max)
		out.data[i] = e
		sum += e
	}
	for i := range out.data {
		out.data[i] /= sum
	}
	return out
}
