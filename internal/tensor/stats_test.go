package tensor

import (
	"sync"
	"testing"
)

// TestKernelStatsHook pins the stats hook contract: disabled by default,
// counters tally invocations/chunks/items when installed, the serial
// fast path records, and Swap returns the previous hook.
func TestKernelStatsHook(t *testing.T) {
	if StatsHook() != nil {
		t.Fatal("stats hook should be nil by default")
	}
	s := &KernelStats{}
	if prev := SetStatsHook(s); prev != nil {
		t.Fatalf("previous hook = %v, want nil", prev)
	}
	defer SetStatsHook(nil)

	prevPar := SetParallelism(4)
	defer SetParallelism(prevPar)

	// A parallel invocation: 8 items, budget 4 → up to 4 chunks.
	chunks := ParallelChunks(8, func(_, lo, hi int) {})
	snap := s.Snapshot()
	if snap.Invocations != 1 {
		t.Fatalf("invocations = %d, want 1", snap.Invocations)
	}
	if snap.Items != 8 {
		t.Fatalf("items = %d, want 8", snap.Items)
	}
	if snap.Chunks != int64(chunks) {
		t.Fatalf("chunks = %d, ParallelChunks reported %d", snap.Chunks, chunks)
	}

	// The below-threshold serial fast path (parallelFor) records too.
	parallelFor(3, 1, func(lo, hi int) {})
	snap = s.Snapshot()
	if snap.Invocations != 2 || snap.Items != 8+3 {
		t.Fatalf("after serial fast path: %+v", snap)
	}
	if snap.Serial < 1 {
		t.Fatalf("serial = %d, want >= 1", snap.Serial)
	}

	// Swap returns the installed hook; collection stops afterwards.
	if prev := SetStatsHook(nil); prev != s {
		t.Fatal("SetStatsHook did not return the installed hook")
	}
	before := s.Snapshot()
	ParallelChunks(8, func(_, lo, hi int) {})
	if after := s.Snapshot(); after != before {
		t.Fatal("disabled hook still collected")
	}
}

// TestKernelStatsNilSnapshot pins nil-receiver safety.
func TestKernelStatsNilSnapshot(t *testing.T) {
	var s *KernelStats
	if snap := s.Snapshot(); snap != (StatsSnapshot{}) {
		t.Fatalf("nil snapshot = %+v, want zeros", snap)
	}
}

// TestKernelStatsConcurrent exercises the counters under the race
// detector: concurrent kernels recording into one hook must be safe and
// lose no invocations.
func TestKernelStatsConcurrent(t *testing.T) {
	s := &KernelStats{}
	defer SetStatsHook(SetStatsHook(s))
	const G, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ParallelChunks(16, func(_, lo, hi int) {})
			}
		}()
	}
	wg.Wait()
	if got := s.Snapshot().Invocations; got != G*per {
		t.Fatalf("invocations = %d, want %d", got, G*per)
	}
}
