package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

// benchKernels runs the ResNet-50-shaped hot-path kernels once.
func benchSetup() (x, w, a, b *Tensor, spec ConvSpec) {
	rng := rand.New(rand.NewSource(1))
	spec = ConvSpec{Stride: 1, Pad: 1}
	x = Randn(rng, 1, 64, 28, 28)
	w = Randn(rng, 1, 64, 64, 3, 3)
	a = Randn(rng, 1, 64, 64*3*3)
	b = Randn(rng, 1, 64*3*3, 28*28)
	return
}

func benchAtBudget(bm *testing.B, budget int, f func()) {
	prev := SetParallelism(budget)
	defer SetParallelism(prev)
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		f()
	}
}

func BenchmarkConv2DSerial(bm *testing.B) {
	x, w, _, _, spec := benchSetup()
	benchAtBudget(bm, 1, func() { Conv2D(x, w, spec) })
}

func BenchmarkConv2DParallel(bm *testing.B) {
	x, w, _, _, spec := benchSetup()
	benchAtBudget(bm, runtime.GOMAXPROCS(0), func() { Conv2D(x, w, spec) })
}

func BenchmarkMatMulSerial(bm *testing.B) {
	_, _, a, b, _ := benchSetup()
	benchAtBudget(bm, 1, func() { MatMul(a, b) })
}

func BenchmarkMatMulParallel(bm *testing.B) {
	_, _, a, b, _ := benchSetup()
	benchAtBudget(bm, runtime.GOMAXPROCS(0), func() { MatMul(a, b) })
}
