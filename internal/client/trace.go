package client

import (
	"context"
	"fmt"
	"net/http"
	"net/url"

	"github.com/inca-arch/inca/internal/serve"
)

// Trace fetches one trace's federated assembly: the spans the server
// retains locally merged with every cluster peer's contribution, plus
// the rendered tree. On a coordinator the response covers the whole
// cluster execution; on a single node it is the local ring's view.
func (c *Client) Trace(ctx context.Context, id string) (*serve.TraceResponse, error) {
	var resp serve.TraceResponse
	if err := c.call(ctx, http.MethodGet, "/v1/trace/"+url.PathEscape(id), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Traces fetches the server's trace index: one summary row per
// retained trace, most recently active first. limit <= 0 takes the
// server default.
func (c *Client) Traces(ctx context.Context, limit int) (*serve.TraceIndexResponse, error) {
	path := "/v1/trace"
	if limit > 0 {
		path += fmt.Sprintf("?limit=%d", limit)
	}
	var resp serve.TraceIndexResponse
	if err := c.call(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ShardTrace fetches the spans one peer retains for a trace — the
// federation half of GET /v1/trace/{id}. The answer is strictly local
// to the queried node (a shard never fans out in turn), and an unknown
// trace is an empty span list, not an error.
func (c *Client) ShardTrace(ctx context.Context, id string) (*serve.ShardTraceResponse, error) {
	var resp serve.ShardTraceResponse
	if err := c.call(ctx, http.MethodGet, "/v1/shard/trace/"+url.PathEscape(id), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Usage fetches the server's cost-attribution rollup: request and job
// totals plus the per-model×dataflow breakdown.
func (c *Client) Usage(ctx context.Context) (*serve.UsageResponse, error) {
	var resp serve.UsageResponse
	if err := c.call(ctx, http.MethodGet, "/v1/usage", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
