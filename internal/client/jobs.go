package client

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"github.com/inca-arch/inca/internal/fault"
	"github.com/inca-arch/inca/internal/job"
	"github.com/inca-arch/inca/internal/serve"
)

// JobSubmit enqueues a sweep (or tune) as a durable asynchronous job
// and returns its snapshot. Submission is idempotent — the job ID is
// derived from the spec's content, so resubmitting after a lost
// response or a server restart lands on the same job instead of
// duplicating work. 503 (queue full) is transient and rides the retry
// loop like any overload answer.
func (c *Client) JobSubmit(ctx context.Context, req serve.SweepRequest) (*job.Snapshot, error) {
	var snap job.Snapshot
	if err := c.call(ctx, http.MethodPost, "/v1/jobs", req, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// JobStatus fetches one job's snapshot.
func (c *Client) JobStatus(ctx context.Context, id string) (*job.Snapshot, error) {
	var snap job.Snapshot
	if err := c.call(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// JobList fetches every job the server knows about, submission order.
func (c *Client) JobList(ctx context.Context) ([]job.Snapshot, error) {
	var list serve.JobList
	if err := c.call(ctx, http.MethodGet, "/v1/jobs", nil, &list); err != nil {
		return nil, err
	}
	return list.Jobs, nil
}

// JobResult fetches a succeeded job's result body verbatim — the exact
// bytes the server journaled at completion, byte-identical across
// crash-resumed and uninterrupted runs. A job that is not (yet)
// succeeded answers with a non-2xx status and comes back as *APIError:
// 409 still running, 410 cancelled, 500 failed.
func (c *Client) JobResult(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	if err := c.callRaw(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil, rawBody(&raw)); err != nil {
		return nil, err
	}
	return raw, nil
}

// JobCancel asks the server to cancel a job and returns the resulting
// snapshot: terminal cancelled for a queued job, best-effort (the
// runner's context is cancelled) for a running one.
func (c *Client) JobCancel(ctx context.Context, id string) (*job.Snapshot, error) {
	var snap job.Snapshot
	if err := c.call(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// JobWait polls a job until it reaches a terminal state and returns
// the final snapshot (inspect Snapshot.State — a failed job is a
// successful wait). poll <= 0 means 250ms.
//
// The wait survives the server dying mid-job: transient poll failures
// — connection refused while the process is down, retries exhausted,
// an open circuit breaker — keep polling rather than aborting, so when
// the server restarts and resumes the journaled job, the same wait
// picks it back up and completes. Only a terminal answer (the job ID
// is unknown, the request is malformed) or the caller's own context
// ends the wait early.
func (c *Client) JobWait(ctx context.Context, id string, poll time.Duration) (*job.Snapshot, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		snap, err := c.JobStatus(ctx, id)
		switch {
		case err == nil:
			if snap.State.Terminal() {
				return snap, nil
			}
		case fault.IsTransient(err):
			// The server may be down and resuming; keep polling.
		default:
			return nil, fmt.Errorf("client: waiting for job %s: %w", id, err)
		}
		if err := fault.Sleep(ctx, poll); err != nil {
			return nil, err
		}
	}
}
