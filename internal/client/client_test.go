package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/fault"
	"github.com/inca-arch/inca/internal/serve"
)

func TestHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"saturated"}`))
			return
		}
		w.Write([]byte(`[]`))
	}))
	defer ts.Close()

	c, err := New(ts.URL, Options{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Models(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("client retried after %v; Retry-After: 1 demanded >= 1s", elapsed)
	}
}

func Test4xxIsTerminalWithoutRetry(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"unknown arch \"tpu\""}`))
	}))
	defer ts.Close()

	c, err := New(ts.URL, Options{MaxAttempts: 5, BaseDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Simulate(context.Background(), serve.SimulateRequest{Arch: "tpu"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if !strings.Contains(apiErr.Message, "tpu") {
		t.Fatalf("error lost the server's message: %q", apiErr.Message)
	}
	if fault.IsTransient(err) {
		t.Fatal("4xx classified transient")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests for a terminal 400, want 1", got)
	}
}

func TestDeadlinePrecludesLongRetry(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"saturated"}`))
	}))
	defer ts.Close()

	c, err := New(ts.URL, Options{MaxAttempts: 4, BaseDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Models(ctx)
	if err == nil {
		t.Fatal("saturated server with 5s Retry-After inside a 300ms deadline must fail")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("client burned %v of a 300ms deadline waiting on a hopeless retry", elapsed)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("deadline-cut error %v lost the underlying 503", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (the retry was precluded)", got)
	}
}

func TestAttemptsExhaustedWrapsLastError(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"boom"}`))
	}))
	defer ts.Close()

	c, err := New(ts.URL, Options{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Models(context.Background())
	if !errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("err = %v, want ErrAttemptsExhausted", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("exhaustion error %v lost the last 500", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want MaxAttempts=3", got)
	}
}

func TestTransportErrorsRetry(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listening: every attempt is a transport error

	c, err := New(ts.URL, Options{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Models(context.Background())
	if !errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("dead server err = %v, want exhaustion after retries", err)
	}
}

func TestNewRejectsBadBaseURL(t *testing.T) {
	if _, err := New("127.0.0.1:8080", Options{}); err == nil {
		t.Fatal("scheme-less base URL accepted")
	}
	if _, err := New("ftp://example.com", Options{}); err == nil {
		t.Fatal("non-http scheme accepted")
	}
}

// TestClientAgainstSaturatedServer is the integration acceptance run: a
// real serve.Server with one execution slot and no queue, held busy by
// injected exec latency, answers the client's first attempt with 503 +
// Retry-After; the client honors the hint, backs off, and succeeds once
// the slot frees — while a malformed request stays terminal throughout.
func TestClientAgainstSaturatedServer(t *testing.T) {
	inj := fault.New(77)
	inj.Add(fault.Rule{Site: serve.ChaosSiteExec, Kind: fault.KindLatency, Delay: 800 * time.Millisecond})
	s := serve.New(serve.Options{
		MaxInflight: 1,
		QueueDepth:  -1, // no queue: saturation answers 503 immediately
		RetryAfter:  time.Second,
		Inject:      inj,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c, err := New(ts.URL, Options{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond, MaxDelay: 200 * time.Millisecond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Occupy the single slot, then wait until the server confirms it.
	occupied := make(chan error, 1)
	go func() {
		_, err := c.Simulate(ctx, serve.SimulateRequest{Arch: "inca", Model: "LeNet5", Phase: "inference"})
		occupied <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := c.Metrics(ctx)
		if err == nil && snap.Inflight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("occupier never took the execution slot")
		}
		time.Sleep(10 * time.Millisecond)
	}

	start := time.Now()
	rep, err := c.Simulate(ctx, serve.SimulateRequest{Arch: "inca", Model: "LeNet5", Phase: "inference"})
	if err != nil {
		t.Fatalf("client against saturated server: %v", err)
	}
	elapsed := time.Since(start)
	if rep.Network != "LeNet5" || rep.Total.Latency <= 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
	// The first attempt met a saturated server (Retry-After: 1); honoring
	// the hint means the success took at least that long.
	if elapsed < 900*time.Millisecond {
		t.Fatalf("success after %v; the 1s Retry-After floor was not honored", elapsed)
	}
	if err := <-occupied; err != nil {
		t.Fatalf("occupier request failed: %v", err)
	}

	// Terminal errors stay terminal even while the server is chaotic.
	if _, err := c.Simulate(ctx, serve.SimulateRequest{Arch: "tpu", Model: "LeNet5", Phase: "inference"}); err != nil {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
			t.Fatalf("bad arch err = %v, want 400", err)
		}
	} else {
		t.Fatal("unknown arch succeeded")
	}
}
