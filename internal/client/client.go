// Package client is the retrying HTTP client for the inca simulation
// service: typed wrappers over /v1/simulate, /v1/sweep, /v1/models, and
// /metrics that honor the service's own overload contract. Transport
// failures and 5xx answers retry with capped exponential backoff and
// seeded jitter, a Retry-After header raises the floor of the next wait,
// context deadlines cut the loop short (a retry that cannot finish in
// time is not attempted), and 4xx answers are terminal — the request is
// wrong, repeating it cannot help.
//
// The retry vocabulary is shared with the rest of the robustness layer:
// APIError implements fault.Transient, so fault.IsTransient classifies
// client errors exactly like sweep-engine ones.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/inca-arch/inca/internal/fault"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/serve"
	"github.com/inca-arch/inca/internal/sim"
)

// ErrAttemptsExhausted reports a request that stayed retryable through
// every allowed attempt. The terminal error it wraps carries the last
// failure.
var ErrAttemptsExhausted = errors.New("client: retry attempts exhausted")

// APIError is a non-2xx answer from the service.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the service's JSON error body (or a truncated raw body
	// when the answer was not the uniform error payload).
	Message string
	// RetryAfter is the parsed Retry-After hint, 0 when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server answered %d: %s", e.Status, e.Message)
}

// Transient reports whether retrying can help: 5xx answers are the
// server's problem, 4xx are the caller's. Implements fault.Transient.
func (e *APIError) Transient() bool { return e.Status >= 500 }

// Options tunes a Client. The zero value is usable.
type Options struct {
	// HTTPClient is the transport; nil means a dedicated client with a
	// 90s overall timeout (per-call contexts bound individual requests).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call, including the first; <= 0
	// means 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; <= 0 means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; <= 0 means 2s. A larger
	// Retry-After hint from the server always wins.
	MaxDelay time.Duration
	// Seed drives the jitter stream, making a client's retry schedule
	// reproducible.
	Seed int64
	// Logger receives one line per retry; nil discards them.
	Logger *slog.Logger
	// OnTrace, when non-nil, receives the server's X-Trace-Id from each
	// exchange that carried one — the handle for GET /v1/trace/{id} on a
	// tracing server. Called once per attempt, including failed ones
	// (a failed attempt's trace is exactly the one worth fetching).
	OnTrace func(traceID string)
	// BreakerThreshold arms the client's circuit breaker: after that
	// many consecutive transient failures (across calls — the streak is
	// per-client, not per-request) the breaker opens and every call
	// fails fast with ErrCircuitOpen until BreakerCooldown elapses, then
	// one half-open probe decides whether to close it again. The
	// fail-fast error is marked transient, so a tripped host classifies
	// exactly like a dead one. <= 0 leaves the breaker off.
	BreakerThreshold int
	// BreakerCooldown is the base open-state cooldown; the actual wait
	// draws from [cooldown/2, cooldown) on the Seed stream. <= 0 means
	// 5s. Only consulted when BreakerThreshold > 0.
	BreakerCooldown time.Duration
}

// Client talks to one inca service instance. Safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	backoff *fault.Backoff
	brk     *breaker
	opt     Options
	log     *slog.Logger
}

// New returns a client for the service at baseURL (scheme + host, e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opt Options) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q needs an http(s) scheme", baseURL)
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 4
	}
	if opt.BaseDelay <= 0 {
		opt.BaseDelay = 100 * time.Millisecond
	}
	if opt.MaxDelay <= 0 {
		opt.MaxDelay = 2 * time.Second
	}
	hc := opt.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 90 * time.Second}
	}
	log := opt.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	var brk *breaker
	if opt.BreakerThreshold > 0 {
		if opt.BreakerCooldown <= 0 {
			opt.BreakerCooldown = 5 * time.Second
		}
		brk = newBreaker(opt.BreakerThreshold, opt.BreakerCooldown, opt.Seed)
	}
	return &Client{
		base:    strings.TrimRight(u.String(), "/"),
		hc:      hc,
		backoff: fault.NewBackoff(opt.BaseDelay, opt.MaxDelay, opt.Seed),
		brk:     brk,
		opt:     opt,
		log:     log,
	}, nil
}

// Simulate evaluates one cell on the service and returns the decoded
// report. The report round-trips the service's stable wire schema, so
// re-encoding it reproduces the server's bytes.
func (c *Client) Simulate(ctx context.Context, req serve.SimulateRequest) (*sim.Report, error) {
	var rep sim.Report
	if err := c.call(ctx, http.MethodPost, "/v1/simulate", req, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Sweep fans a declarative plan out on the service.
func (c *Client) Sweep(ctx context.Context, req serve.SweepRequest) (*serve.SweepResponse, error) {
	var resp serve.SweepResponse
	if err := c.call(ctx, http.MethodPost, "/v1/sweep", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ShardSweep evaluates an explicit cell list on the service — the
// dispatch half of the cluster's scatter/gather. It rides the same
// retry loop as every wrapper; when the attempts run out the returned
// ErrAttemptsExhausted still wraps the last failure, so the
// coordinator's fault.IsTransient check classifies a dead shard as
// transient and rehashes its cells onto survivors.
func (c *Client) ShardSweep(ctx context.Context, req serve.ShardSweepRequest) (*serve.ShardSweepResponse, error) {
	var resp serve.ShardSweepResponse
	if err := c.call(ctx, http.MethodPost, "/v1/shard/sweep", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Ready probes the service's readiness endpoint with a single
// unretried exchange: a health probe that retried would report the
// cluster healthier than it is. It returns nil for 200 (ready or
// degraded) and the classified error otherwise.
func (c *Client) Ready(ctx context.Context) error {
	return c.exchange(ctx, http.MethodGet, "/healthz/ready", nil, nil)
}

// BreakerStats reports the circuit breaker's trip and short-circuit
// counters. The zero value when no breaker is armed.
func (c *Client) BreakerStats() BreakerStats {
	return c.brk.stats()
}

// StoreImport streams an exported result corpus (JSON Lines) into the
// service's persistent store — how a freshly booted cluster peer
// warm-starts from a sibling's corpus. The import is idempotent
// (records are keyed), so the retry loop is safe.
func (c *Client) StoreImport(ctx context.Context, corpus []byte) error {
	return c.callRaw(ctx, http.MethodPost, "/v1/store/import", corpus, nil)
}

// StoreExport fetches the service's full result corpus as JSON Lines —
// the bytes StoreImport on a sibling accepts.
func (c *Client) StoreExport(ctx context.Context) ([]byte, error) {
	var raw []byte
	if err := c.callRaw(ctx, http.MethodGet, "/v1/store/export", nil, rawBody(&raw)); err != nil {
		return nil, err
	}
	return raw, nil
}

// rawBody marks an out target that wants the response bytes verbatim
// instead of a JSON decode.
type rawBody *[]byte

// Models lists the service's model zoo.
func (c *Client) Models(ctx context.Context) ([]serve.ModelInfo, error) {
	var infos []serve.ModelInfo
	if err := c.call(ctx, http.MethodGet, "/v1/models", nil, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Metrics fetches the service's counter snapshot.
func (c *Client) Metrics(ctx context.Context) (*serve.Snapshot, error) {
	var snap serve.Snapshot
	if err := c.call(ctx, http.MethodGet, "/metrics", nil, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// call runs the retry loop around one logical request. body (when
// non-nil) is JSON-encoded once and replayed on every attempt; a 2xx
// answer is decoded into out.
func (c *Client) call(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	return c.callRaw(ctx, method, path, payload, out)
}

// callRaw is call with a pre-encoded payload (nil for bodyless
// requests) — the entry point for bodies that are not a single JSON
// value, like the store's JSON Lines corpus.
func (c *Client) callRaw(ctx context.Context, method, path string, payload []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		lastErr = c.exchange(ctx, method, path, payload, out)
		if lastErr == nil || !fault.IsTransient(lastErr) {
			return lastErr
		}
		if attempt+1 >= c.opt.MaxAttempts {
			break
		}
		delay := c.backoff.Delay(attempt)
		var apiErr *APIError
		if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > delay {
			// The server's own hint is a floor, not a suggestion.
			delay = apiErr.RetryAfter
		}
		if deadline, ok := ctx.Deadline(); ok && time.Now().Add(delay).After(deadline) {
			// The retry could not complete in time; fail now with the
			// real cause instead of burning the rest of the deadline.
			return fmt.Errorf("client: deadline precludes retry in %v: %w", delay, lastErr)
		}
		c.log.Info("retrying", "method", method, "path", path,
			"attempt", attempt+1, "delay", delay.String(), "err", lastErr.Error())
		if err := fault.Sleep(ctx, delay); err != nil {
			return err
		}
	}
	return fmt.Errorf("%w after %d attempts: %w", ErrAttemptsExhausted, c.opt.MaxAttempts, lastErr)
}

// exchange is one breaker-gated attempt: an open breaker answers
// without touching the wire (and without feeding itself — only real
// exchanges count), otherwise the outcome of the exchange is what the
// breaker learns from.
func (c *Client) exchange(ctx context.Context, method, path string, payload []byte, out any) error {
	if err := c.brk.allow(); err != nil {
		return err
	}
	err := c.once(ctx, method, path, payload, out)
	c.brk.observe(err)
	return err
}

// once runs a single HTTP exchange. Transport failures come back marked
// transient; non-2xx answers come back as *APIError.
func (c *Client) once(ctx context.Context, method, path string, payload []byte, out any) error {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Distributed tracing: when the caller runs under a span, the W3C
	// traceparent header rides along, so a tracing server's request span
	// joins the caller's trace — a cluster coordinator's dispatches to
	// its shards show up as children of the coordinating request.
	if tp := obs.FromContext(ctx).Traceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fault.MarkTransient(fmt.Errorf("client: %s %s: %w", method, path, err))
	}
	defer resp.Body.Close()
	if c.opt.OnTrace != nil {
		if traceID := resp.Header.Get("X-Trace-Id"); traceID != "" {
			c.opt.OnTrace(traceID)
		}
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fault.MarkTransient(fmt.Errorf("client: reading response: %w", err))
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return &APIError{
			Status:     resp.StatusCode,
			Message:    errorMessage(raw),
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	if out == nil {
		return nil
	}
	if rb, ok := out.(rawBody); ok {
		*rb = raw
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// errorMessage extracts the uniform JSON error payload, falling back to
// the truncated raw body.
func errorMessage(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	msg := strings.TrimSpace(string(raw))
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return msg
}

// parseRetryAfter reads the header's two legal forms: delay seconds or
// an HTTP date. Absent, malformed, or already-elapsed values mean 0.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
