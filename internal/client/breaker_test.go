package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/fault"
)

// TestBreakerTripsOnConsecutiveTransientFailures drives a client against
// a server that always answers 500 and checks the breaker opens after
// the configured streak, short-circuiting later calls without touching
// the wire.
func TestBreakerTripsOnConsecutiveTransientFailures(t *testing.T) {
	t.Parallel()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c, err := New(ts.URL, Options{
		MaxAttempts:      2,
		BaseDelay:        time.Millisecond,
		MaxDelay:         2 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour, // never half-opens within the test
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// First call: 2 attempts, both 500 — streak reaches 2, still closed.
	if _, err := c.Models(ctx); err == nil {
		t.Fatal("expected failure")
	}
	if got := c.BreakerStats(); got.Open || got.Trips != 0 {
		t.Fatalf("breaker after 2 failures = %+v, want closed", got)
	}
	// Second call: the first attempt is failure #3 — the breaker trips
	// and the retry loop's remaining attempt short-circuits.
	if _, err := c.Models(ctx); err == nil {
		t.Fatal("expected failure")
	}
	st := c.BreakerStats()
	if !st.Open || st.Trips != 1 {
		t.Fatalf("breaker after threshold = %+v, want open with 1 trip", st)
	}
	wire := hits.Load()
	if wire != 3 {
		t.Fatalf("server saw %d exchanges, want 3 (the post-trip attempt must not reach the wire)", wire)
	}

	// Open breaker: calls fail fast with a transient ErrCircuitOpen and
	// the server sees nothing.
	_, err = c.Models(ctx)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-breaker call: err = %v, want ErrCircuitOpen", err)
	}
	if !fault.IsTransient(err) {
		t.Fatal("ErrCircuitOpen must classify transient — a tripped host is a dead host")
	}
	if hits.Load() != wire {
		t.Fatalf("open breaker leaked %d exchanges to the wire", hits.Load()-wire)
	}
	if got := c.BreakerStats(); got.ShortCircuited == 0 {
		t.Fatalf("short-circuit counter = %+v", got)
	}
}

// TestBreakerHalfOpenProbeRecovers trips the breaker against a dead
// server, waits out the cooldown, and checks one probe both reaches the
// (now healthy) server and closes the breaker.
func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	t.Parallel()
	var healthy atomic.Bool
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`[]`))
	}))
	defer ts.Close()

	c, err := New(ts.URL, Options{
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Models(ctx); err == nil {
			t.Fatal("expected failure")
		}
	}
	if st := c.BreakerStats(); !st.Open || st.Trips != 1 {
		t.Fatalf("breaker = %+v, want open", st)
	}

	healthy.Store(true)
	// The cooldown draws from [10ms, 20ms); by 25ms the probe is allowed.
	time.Sleep(25 * time.Millisecond)
	if _, err := c.Models(ctx); err != nil {
		t.Fatalf("half-open probe should succeed: %v", err)
	}
	if st := c.BreakerStats(); st.Open || st.Trips != 1 {
		t.Fatalf("breaker after successful probe = %+v, want closed", st)
	}
	if _, err := c.Models(ctx); err != nil {
		t.Fatalf("closed breaker must pass calls: %v", err)
	}
}

// TestBreakerHalfOpenProbeFailureReopens checks a failed probe re-trips
// the breaker for another cooldown.
func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	t.Parallel()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"still down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c, err := New(ts.URL, Options{
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		c.Models(ctx)
	}
	time.Sleep(25 * time.Millisecond)
	if _, err := c.Models(ctx); err == nil {
		t.Fatal("probe against a dead server must fail")
	}
	if st := c.BreakerStats(); !st.Open || st.Trips != 2 {
		t.Fatalf("breaker after failed probe = %+v, want re-opened with 2 trips", st)
	}
}

// TestBreakerTerminalAnswerResetsStreak checks 4xx answers — the host
// responded, it is alive — close the streak instead of feeding it.
func TestBreakerTerminalAnswerResetsStreak(t *testing.T) {
	t.Parallel()
	var fail atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		http.Error(w, `{"error":"no such thing"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	c, err := New(ts.URL, Options{
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	fail.Store(true)
	c.Models(ctx) // transient failure #1
	fail.Store(false)
	c.Models(ctx) // 404: terminal answer, streak resets
	fail.Store(true)
	c.Models(ctx) // transient failure #1 again — still under threshold
	if st := c.BreakerStats(); st.Open || st.Trips != 0 {
		t.Fatalf("breaker = %+v, want closed (terminal answers reset the streak)", st)
	}
}

// TestBreakerDisabledByDefault checks an unarmed client never trips no
// matter how many transient failures accumulate.
func TestBreakerDisabledByDefault(t *testing.T) {
	t.Parallel()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c, err := New(ts.URL, Options{MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Models(context.Background())
	}
	if st := c.BreakerStats(); st.Open || st.Trips != 0 || st.ShortCircuited != 0 {
		t.Fatalf("unarmed breaker = %+v, want all-zero", st)
	}
	if hits.Load() != 10 {
		t.Fatalf("server saw %d exchanges, want all 10", hits.Load())
	}
}
