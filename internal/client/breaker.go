package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/inca-arch/inca/internal/fault"
)

// ErrCircuitOpen is returned (wrapped, and marked transient) when the
// client's circuit breaker is open: enough consecutive transient
// failures have accumulated that the host is presumed down, and calls
// fail fast instead of burning retry budget against it. Callers that
// classify errors with fault.IsTransient treat a tripped host exactly
// like a dead one — the cluster coordinator rehashes its cells — and
// polling callers (JobWait) simply keep polling until the cooldown
// elapses and the half-open probe reconnects.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// BreakerStats is a point-in-time view of the client's circuit breaker.
type BreakerStats struct {
	// Trips counts closed→open transitions since construction.
	Trips int64 `json:"trips"`
	// ShortCircuited counts calls failed fast without touching the host.
	ShortCircuited int64 `json:"short_circuited"`
	// Open reports whether the breaker is currently open (cooling down)
	// or half-open (probe in flight).
	Open bool `json:"open"`
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a consecutive-failure circuit breaker. Closed, it only
// counts: every transient failure extends the streak, any response
// from the host (success or a terminal 4xx answer) resets it. At
// threshold it opens: calls fail fast with ErrCircuitOpen until a
// seeded-jitter cooldown elapses, then exactly one call is let through
// half-open as the probe — its success closes the breaker, its failure
// re-opens it for another cooldown. A nil breaker is inert.
type breaker struct {
	threshold int
	cooldown  *fault.Backoff
	now       func() time.Time

	mu          sync.Mutex
	state       breakerState
	consecutive int
	until       time.Time
	trips       int64
	shorted     int64
}

func newBreaker(threshold int, cooldown time.Duration, seed int64) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  fault.NewBackoff(cooldown, cooldown, seed),
		now:       time.Now,
	}
}

// allow gates one call. A nil error means the call may proceed (and,
// in the half-open state, that this call is the probe); a non-nil
// error is the fail-fast answer and the exchange must not happen.
func (b *breaker) allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if remaining := b.until.Sub(b.now()); remaining > 0 {
			b.shorted++
			return fault.MarkTransient(fmt.Errorf("%w: retry in %v", ErrCircuitOpen, remaining.Round(time.Millisecond)))
		}
		b.state = breakerHalfOpen
		return nil
	case breakerHalfOpen:
		b.shorted++
		return fault.MarkTransient(fmt.Errorf("%w: half-open probe in flight", ErrCircuitOpen))
	default:
		return nil
	}
}

// observe records the outcome of a call that allow admitted. Only
// transient failures count against the host: a terminal answer (4xx,
// malformed body) proves the host is alive, so it closes the breaker
// like a success. Context cancellation says nothing about the host
// and is ignored entirely.
func (b *breaker) observe(err error) {
	if b == nil {
		return
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil || !fault.IsTransient(err) {
		b.state = breakerClosed
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.state == breakerHalfOpen || b.consecutive >= b.threshold {
		b.state = breakerOpen
		b.trips++
		b.consecutive = 0
		// The cooldown draws from [cooldown/2, cooldown) on the
		// breaker's own seeded stream — a fleet of clients tripped by
		// the same outage probes back staggered, not in lockstep.
		b.until = b.now().Add(b.cooldown.Delay(0))
	}
}

func (b *breaker) stats() BreakerStats {
	if b == nil {
		return BreakerStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		Trips:          b.trips,
		ShortCircuited: b.shorted,
		Open:           b.state != breakerClosed,
	}
}
