package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/sweep"
)

// testReport fabricates a distinguishable report for key-shaped tests.
func testReport(name string) *sim.Report {
	r := &sim.Report{Arch: "INCA", Network: name, Phase: sim.Inference, Batch: 4}
	r.Total.Latency = float64(len(name))
	return r
}

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	want := testReport("vgg16")
	s.Put("INCA/fixed/vgg16/inference", want)
	if got, ok := s.Get("INCA/fixed/vgg16/inference"); !ok || got.Network != "vgg16" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := s.Get("INCA/fixed/absent/inference"); ok {
		t.Fatal("unknown key served a report")
	}
	s.Close()

	// Reopen: the index rebuilds from the segment scan and the report's
	// stable JSON round-trips byte-identically — the warm-start contract.
	s2 := mustOpen(t, dir, Options{})
	got, ok := s2.Get("INCA/fixed/vgg16/inference")
	if !ok {
		t.Fatal("reopened store lost the record")
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("report drifted across restart:\n%s\n%s", wantJSON, gotJSON)
	}
	if st := s2.Stats(); st.Entries != 1 || st.Hits != 1 {
		t.Fatalf("stats after reopen = %+v", st)
	}
}

func TestTornTailTruncatedNotFatal(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		s.Put(fmt.Sprintf("INCA/fixed/net-%d/inference", i), testReport(fmt.Sprintf("net-%d", i)))
	}
	s.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	tail := segs[len(segs)-1]
	fi, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: cut the last record in half.
	if err := os.Truncate(tail, fi.Size()-40); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	if st := s2.Stats(); st.Entries != 2 || st.TornRecords != 1 {
		t.Fatalf("after torn tail: %+v, want 2 entries and 1 torn record", st)
	}
	// The surviving prefix keeps serving, and the file is clean again:
	// a fresh Put lands and survives another reopen.
	for i := 0; i < 2; i++ {
		if _, ok := s2.Get(fmt.Sprintf("INCA/fixed/net-%d/inference", i)); !ok {
			t.Fatalf("surviving record net-%d lost", i)
		}
	}
	s2.Put("INCA/fixed/net-2/inference", testReport("net-2"))
	s2.Close()
	s3 := mustOpen(t, dir, Options{})
	if n := s3.Len(); n != 3 {
		t.Fatalf("after repair and re-put: %d entries, want 3", n)
	}
}

func TestBadMagicReinitializes(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.Put("k", testReport("k"))
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err := os.WriteFile(segs[0], []byte("NOTASTORE-garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if n := s2.Len(); n != 0 {
		t.Fatalf("garbage segment indexed %d records", n)
	}
	if st := s2.Stats(); st.TornRecords != 1 {
		t.Fatalf("stats = %+v, want 1 torn record", st)
	}
	s2.Put("k", testReport("k"))
	if _, ok := s2.Get("k"); !ok {
		t.Fatal("reinitialized segment does not accept puts")
	}
}

func TestTTLExpiryAndCompaction(t *testing.T) {
	clock := time.Unix(1_700_000_000, 0)
	now := func() time.Time { return clock }
	s := mustOpen(t, t.TempDir(), Options{TTL: time.Hour, now: now})
	s.Put("old", testReport("old"))
	clock = clock.Add(2 * time.Hour)
	s.Put("fresh", testReport("fresh"))

	if _, ok := s.Get("old"); ok {
		t.Fatal("expired record served")
	}
	if _, ok := s.Get("fresh"); !ok {
		t.Fatal("live record missed")
	}
	if st := s.Stats(); st.Expired == 0 {
		t.Fatalf("stats = %+v, want expired > 0", st)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("after compaction: %d entries, want 1 (expired dropped)", n)
	}
}

func TestSizeCapEvictsOldestFirst(t *testing.T) {
	clock := time.Unix(1_700_000_000, 0)
	now := func() time.Time { return clock }
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 4 << 10, SegmentMaxBytes: 1 << 10, now: now})
	for i := 0; i < 40; i++ {
		clock = clock.Add(time.Second)
		s.Put(fmt.Sprintf("key-%02d", i), testReport(fmt.Sprintf("net-%02d", i)))
	}
	st := s.Stats()
	if st.Bytes > 4<<10 {
		t.Fatalf("store at %d bytes, cap 4096", st.Bytes)
	}
	if st.Evicted == 0 || st.Compacts == 0 {
		t.Fatalf("stats = %+v, want evictions via compaction", st)
	}
	// The newest record must have survived; the oldest must be gone.
	if _, ok := s.Get("key-39"); !ok {
		t.Fatal("newest record evicted")
	}
	if _, ok := s.Get("key-00"); ok {
		t.Fatal("oldest record survived a full-cap eviction")
	}
}

func TestOverwriteNewestWinsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.Put("k", testReport("first"))
	s.Put("k", testReport("second"))
	if got, _ := s.Get("k"); got == nil || got.Network != "second" {
		t.Fatalf("got %v, want the re-put report", got)
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	if got, _ := s2.Get("k"); got == nil || got.Network != "second" {
		t.Fatalf("reopen resurrected the old record: %v", got)
	}
	if n := s2.Len(); n != 1 {
		t.Fatalf("duplicate key indexed twice: %d", n)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	a := mustOpen(t, t.TempDir(), Options{})
	for i := 0; i < 5; i++ {
		a.Put(fmt.Sprintf("key-%d", i), testReport(fmt.Sprintf("net-%d", i)))
	}
	var corpus bytes.Buffer
	n, err := a.Export(&corpus)
	if err != nil || n != 5 {
		t.Fatalf("export = %d, %v", n, err)
	}

	// Import into an empty store: equal stores export byte-identical
	// corpora (record payloads are preserved verbatim, keys sort).
	b := mustOpen(t, t.TempDir(), Options{})
	res, err := b.Import(bytes.NewReader(corpus.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != 5 || res.Skipped != 0 || res.Rejected != 0 {
		t.Fatalf("import = %+v", res)
	}
	var corpusB bytes.Buffer
	if _, err := b.Export(&corpusB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(corpus.Bytes(), corpusB.Bytes()) {
		t.Fatal("round-tripped corpus is not byte-identical")
	}
	// A second import of the same corpus finds every key present and
	// adds nothing — the local copies win.
	res, err = b.Import(bytes.NewReader(corpus.Bytes()), 0)
	if err != nil || res.Added != 0 || res.Skipped != 5 {
		t.Fatalf("re-import = %+v, %v", res, err)
	}
}

func TestImportRejectsTamperedAddr(t *testing.T) {
	a := mustOpen(t, t.TempDir(), Options{})
	a.Put("honest-key", testReport("x"))
	var corpus bytes.Buffer
	if _, err := a.Export(&corpus); err != nil {
		t.Fatal(err)
	}
	// Claim a different key over the same addr: the content address no
	// longer matches and the record must be rejected.
	tampered := bytes.Replace(corpus.Bytes(), []byte(`"key":"honest-key"`), []byte(`"key":"forged-key"`), 1)
	b := mustOpen(t, t.TempDir(), Options{})
	res, err := b.Import(bytes.NewReader(tampered), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 1 || res.Added != 0 {
		t.Fatalf("import = %+v, want the forged record rejected", res)
	}
	garbage := bytes.NewReader([]byte("not json\n\n{\"key\":\"\"}\n"))
	res, err = b.Import(garbage, 0)
	if err != nil || res.Rejected != 2 || res.Added != 0 {
		t.Fatalf("garbage import = %+v, %v", res, err)
	}
}

func TestClosedStoreDegrades(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	s.Put("k", testReport("k"))
	s.Close()
	if _, ok := s.Get("k"); ok {
		t.Fatal("closed store served a record")
	}
	s.Put("k2", testReport("k2")) // must not panic
	if err := s.Compact(); err != ErrClosed {
		t.Fatalf("Compact on closed store = %v", err)
	}
}

// TestWarmStartReplaysGoldenSweep is the tentpole's end-to-end check at
// the engine level: a sweep simulated once into the store, then — after
// a simulated restart (fresh in-memory cache, reopened store) — served
// entirely from disk, byte-identical, with zero re-simulations.
func TestWarmStartReplaysGoldenSweep(t *testing.T) {
	dir := t.TempDir()
	plan := sweep.Plan{
		Archs:    []sweep.Arch{sweep.INCAArch(), sweep.BaselineArch()},
		Networks: []*nn.Network{nn.LeNet5(), nn.VGG16CIFAR()},
		Phases:   []sim.Phase{sim.Inference, sim.Training},
	}
	ctx := context.Background()

	runSweep := func(st *Store) ([]string, *sweep.Cache) {
		cache := sweep.NewCache()
		cache.SetTier(st)
		results, err := sweep.Run(ctx, plan, sweep.Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		rendered := make([]string, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("cell %s: %v", r.Cell.Key(), r.Err)
			}
			j, err := json.Marshal(r.Report)
			if err != nil {
				t.Fatal(err)
			}
			rendered[i] = string(j)
		}
		return rendered, cache
	}

	st := mustOpen(t, dir, Options{})
	golden, cold := runSweep(st)
	if cold.DiskHits() != 0 || cold.Misses() != 8 {
		t.Fatalf("cold run: disk_hits=%d misses=%d, want 0/8", cold.DiskHits(), cold.Misses())
	}
	st.Close()

	st2 := mustOpen(t, dir, Options{})
	replay, warm := runSweep(st2)
	if warm.DiskHits() != 8 || warm.Misses() != 0 {
		t.Fatalf("warm run: disk_hits=%d misses=%d, want 8/0 (zero re-simulations)", warm.DiskHits(), warm.Misses())
	}
	for i := range golden {
		if golden[i] != replay[i] {
			t.Fatalf("cell %d not byte-identical after warm start:\n%s\n%s", i, golden[i], replay[i])
		}
	}
}
