package store

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedClock is a thread-safe test clock: the concurrency tests
// advance it from the main goroutine while store operations read it
// from workers.
type lockedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *lockedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *lockedClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestExportConcurrentWithTTLCompaction runs Export in a loop while TTL
// compaction rewrites segments underneath it and writers keep appending.
// Under -race this pins the locking discipline; functionally it pins
// that every exported line stays a decodable corpus record (a torn or
// half-compacted read must be skipped, never emitted), and that a
// quiescent export afterwards is deterministic and complete.
func TestExportConcurrentWithTTLCompaction(t *testing.T) {
	clock := &lockedClock{t: time.Unix(1_700_000_000, 0)}
	s := mustOpen(t, t.TempDir(), Options{
		TTL:             time.Hour,
		SegmentMaxBytes: 2 << 10, // many small segments: compaction touches more files
		now:             clock.now,
	})

	// An old generation that the advancing clock will expire mid-test.
	for i := 0; i < 64; i++ {
		s.Put(fmt.Sprintf("old-%02d", i), testReport(fmt.Sprintf("old-%02d", i)))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: a fresh generation appended while exports run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 64; i++ {
			s.Put(fmt.Sprintf("new-%02d", i), testReport(fmt.Sprintf("new-%02d", i)))
		}
	}()

	// Compactor: expiry sweeps racing the exports.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Exporters: every line they see must decode as a corpus record.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				var buf bytes.Buffer
				if _, err := s.Export(&buf); err != nil {
					t.Error(err)
					return
				}
				for _, line := range strings.Split(buf.String(), "\n") {
					if line == "" {
						continue
					}
					if !strings.HasPrefix(line, `{"key":"`) || !strings.HasSuffix(line, "}") {
						t.Errorf("export emitted a non-record line: %q", line)
						return
					}
				}
			}
		}()
	}

	// Let the machinery overlap, then expire the old generation while
	// everything is still running.
	clock.advance(2 * time.Hour)
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiescent: only the fresh generation survives, and two exports are
	// byte-identical (the corpus determinism warm-start relies on).
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	na, err := s.Export(&a)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := s.Export(&b)
	if err != nil {
		t.Fatal(err)
	}
	if na != 64 || nb != 64 {
		t.Fatalf("quiescent export = %d then %d records, want 64 (fresh generation only)", na, nb)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("back-to-back exports of a quiescent store differ")
	}
	for i := 0; i < 64; i++ {
		if _, ok := s.Get(fmt.Sprintf("old-%02d", i)); ok {
			t.Fatalf("expired old-%02d survived compaction", i)
		}
	}
}

// TestImportConcurrentWithCompaction merges a corpus into a store whose
// size cap forces compactions mid-import, while an external compactor
// and a writer race it. The import must account for every corpus line
// and the merged records must be readable afterwards.
func TestImportConcurrentWithCompaction(t *testing.T) {
	// Donor: build a deterministic corpus.
	donor := mustOpen(t, t.TempDir(), Options{})
	const corpusN = 128
	for i := 0; i < corpusN; i++ {
		donor.Put(fmt.Sprintf("corpus-%03d", i), testReport(fmt.Sprintf("corpus-%03d", i)))
	}
	var corpus bytes.Buffer
	if n, err := donor.Export(&corpus); err != nil || n != corpusN {
		t.Fatalf("donor export = %d, %v", n, err)
	}

	clock := &lockedClock{t: time.Unix(1_700_000_000, 0)}
	s := mustOpen(t, t.TempDir(), Options{
		TTL:             time.Hour,
		SegmentMaxBytes: 2 << 10,
		now:             clock.now,
	})
	// Records already present: the import must skip them, not duplicate.
	for i := 0; i < 16; i++ {
		s.Put(fmt.Sprintf("corpus-%03d", i), testReport(fmt.Sprintf("corpus-%03d", i)))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 32; i++ {
			s.Put(fmt.Sprintf("local-%02d", i), testReport(fmt.Sprintf("local-%02d", i)))
		}
	}()

	res, err := s.Import(&corpus, 0)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		return
	}
	if res.Added+res.Skipped+res.Rejected != corpusN {
		t.Fatalf("import accounted for %d of %d lines: %+v", res.Added+res.Skipped+res.Rejected, corpusN, res)
	}
	if res.Rejected != 0 {
		t.Fatalf("clean corpus rejected %d lines: %+v", res.Rejected, res)
	}
	if res.Skipped < 16 {
		t.Fatalf("import skipped %d, want >= 16 (pre-seeded keys)", res.Skipped)
	}

	// Every corpus record answers, byte-identical to the donor's copy.
	for i := 0; i < corpusN; i++ {
		key := fmt.Sprintf("corpus-%03d", i)
		got, ok := s.Get(key)
		if !ok {
			t.Fatalf("imported key %s missing", key)
		}
		want, _ := donor.Get(key)
		if got.Network != want.Network || got.Total.Latency != want.Total.Latency {
			t.Fatalf("imported %s drifted: %+v vs %+v", key, got, want)
		}
	}
}

// TestExportSkipsRecordsLostToConcurrentEviction pins the degraded path
// the lock release in Export opens: a compaction that rewrites segments
// between the index snapshot and the payload reads must surface as
// skipped records (ioErrs), never as corrupted output or a crash.
func TestExportSkipsRecordsLostToConcurrentEviction(t *testing.T) {
	clock := &lockedClock{t: time.Unix(1_700_000_000, 0)}
	s := mustOpen(t, t.TempDir(), Options{
		TTL:             time.Minute,
		SegmentMaxBytes: 1 << 10,
		now:             clock.now,
	})
	for i := 0; i < 64; i++ {
		s.Put(fmt.Sprintf("key-%02d", i), testReport(fmt.Sprintf("net-%02d", i)))
	}

	// Race exports against expire-everything compactions.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Export(io.Discard); err != nil {
				t.Error(err)
			}
		}()
	}
	clock.advance(2 * time.Minute)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Compact(); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Afterwards the store is coherent: everything expired, nothing
	// serves, and a fresh put round-trips.
	if n, err := s.Export(io.Discard); err != nil || n != 0 {
		t.Fatalf("post-eviction export = %d records, %v; want 0", n, err)
	}
	s.Put("fresh", testReport("fresh"))
	if _, ok := s.Get("fresh"); !ok {
		t.Fatal("store broken after racing export and eviction")
	}
}
