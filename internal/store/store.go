// Package store is the persistent, content-addressed result tier under
// the sweep engine's memo cache. The in-memory cache dies with the
// process, so a restarted service recomputes every design-space cell a
// fleet has already paid for; this package makes those results durable
// and shareable:
//
//   - append-only segment files (seg-NNNNNN.log) of CRC-framed JSON
//     records, each holding one sim.Report addressed by the SHA-256 of
//     its canonical 5-segment cell key — content addressing makes merge
//     and dedupe trivial (equal keys produce byte-identical reports);
//   - an in-memory index rebuilt by scanning the segments at Open, so
//     the warm start costs one sequential read of the directory and no
//     separate index file can desynchronize from the data;
//   - crash safety by construction: only the active tail segment is ever
//     appended to, so a crash can tear at most the final record, and
//     Open truncates a torn tail instead of failing — the surviving
//     prefix keeps serving;
//   - TTL expiry and a total-size cap enforced by segment compaction:
//     live records are rewritten into a fresh segment (newest segment
//     wins on duplicate keys), expired and evicted ones are dropped,
//     old segments deleted;
//   - corpus export/import as JSON lines, so fleets share precomputed
//     results: a shard imports its peers' corpora and serves their
//     cells from disk instead of re-simulating.
//
// Store implements the sweep.Tier contract (Get/Put by canonical key
// string); layer one under a cache with sweep.Cache.SetTier or the
// facade's inca.WithResultStore.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/inca-arch/inca/internal/sim"
)

// Segment framing. Each segment file starts with an 8-byte magic and
// carries length-prefixed records:
//
//	[4B little-endian payload length][4B IEEE CRC-32 of payload][payload]
//
// The payload is one JSON record (see record). The CRC detects torn or
// bit-rotted tails; the length prefix bounds reads so a corrupt length
// cannot allocate unboundedly.
const (
	segMagic     = "INCASTO1"
	recHeaderLen = 8
	// maxRecordBytes bounds a single record's payload: a full ImageNet
	// report is tens of KB, so 16 MiB is generous and still rejects a
	// corrupt length prefix before it allocates gigabytes.
	maxRecordBytes = 16 << 20
)

// Sentinel errors.
var (
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrCorrupt reports an import record whose content hash does not
	// match its key — a corrupted or tampered corpus line.
	ErrCorrupt = errors.New("store: corrupt record")
)

// Options configures Open. The zero value is production-usable.
type Options struct {
	// MaxBytes caps the total size of all segment files; exceeding it
	// triggers a compaction that drops expired records first, then the
	// oldest live ones. <= 0 means 256 MiB.
	MaxBytes int64
	// TTL expires records that long after they were stored: expired
	// records answer Get as misses and are dropped at the next
	// compaction. <= 0 means no expiry.
	TTL time.Duration
	// SegmentMaxBytes rolls the active segment once it grows past this
	// size, bounding the blast radius of a torn tail and the unit of
	// compaction. <= 0 means 8 MiB.
	SegmentMaxBytes int64
	// now is the test clock hook; nil means time.Now.
	now func() time.Time
}

// withDefaults resolves every unset option.
func (o Options) withDefaults() Options {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 256 << 20
	}
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 8 << 20
	}
	if o.SegmentMaxBytes > o.MaxBytes {
		o.SegmentMaxBytes = o.MaxBytes
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// record is the JSON payload of one stored result. CreatedUnixNano
// drives TTL expiry and oldest-first eviction; Addr is the hex SHA-256
// of Key — redundant on disk (it recomputes from Key) but kept in the
// wire form so corpus consumers can verify content addresses without
// re-hashing.
type record struct {
	Key     string          `json:"key"`
	Addr    string          `json:"addr"`
	Created int64           `json:"created_unix_nano"`
	Report  json.RawMessage `json:"report"`
}

// indexEntry locates one live record: which segment, where, how long,
// and when it was created (for TTL and eviction order).
type indexEntry struct {
	seg     int   // segment ID
	off     int64 // record start (the length prefix)
	size    int64 // full framed size: header + payload
	created int64 // unix nanos
}

// segment is one open segment file.
type segment struct {
	id   int
	path string
	f    *os.File
	size int64
}

// Stats is a point-in-time snapshot of a store's counters and footprint,
// in the shape GET /v1/store/stats serves.
type Stats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Expired  int64 `json:"expired"`
	Puts     int64 `json:"puts"`
	Evicted  int64 `json:"evicted"`
	Compacts int64 `json:"compactions"`
	// TornRecords counts torn or corrupt tail records dropped during
	// index rebuilds — nonzero after recovering from a crash mid-append.
	TornRecords int64 `json:"torn_records"`
	// IOErrors counts reads/writes the store swallowed (Get degrades to
	// a miss, Put to a no-op): the cache above must keep working when
	// the disk does not.
	IOErrors int64  `json:"io_errors"`
	Entries  int    `json:"entries"`
	Segments int    `json:"segments"`
	Bytes    int64  `json:"bytes"`
	Dir      string `json:"dir"`
}

// Store is a disk-backed, content-addressed result store. It is safe
// for concurrent use; a Store may be shared as the second tier of any
// number of sweep caches. Construct with Open.
type Store struct {
	dir string
	opt Options

	hits     atomic.Int64
	misses   atomic.Int64
	expired  atomic.Int64
	puts     atomic.Int64
	evicted  atomic.Int64
	compacts atomic.Int64
	torn     atomic.Int64
	ioErrs   atomic.Int64

	mu     sync.Mutex
	index  map[string]indexEntry // content address (hex SHA-256 of key) → location
	keys   map[string]string     // content address → canonical key (collision guard, export)
	segs   map[int]*segment
	active *segment
	nextID int
	closed bool
}

// addr returns the content address of a canonical cell key.
func addr(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Open opens (creating if needed) the store rooted at dir and rebuilds
// the in-memory index by scanning every segment — the warm start. A
// torn tail record (crash mid-append) is truncated, not fatal; segments
// that cannot be opened at all fail Open.
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:   dir,
		opt:   opt,
		index: make(map[string]indexEntry),
		keys:  make(map[string]string),
		segs:  make(map[int]*segment),
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	ids := make([]int, 0, len(names))
	for _, name := range names {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%d.log", &id); err == nil {
			ids = append(ids, id)
		}
	}
	// Scan in ID order so a record in a later segment (a re-put or a
	// compaction survivor) wins over any earlier copy of the same key.
	sort.Ints(ids)
	for _, id := range ids {
		seg, err := s.openSegment(id)
		if err != nil {
			s.closeLocked()
			return nil, err
		}
		s.segs[id] = seg
		if id >= s.nextID {
			s.nextID = id + 1
		}
	}
	if len(ids) > 0 {
		s.active = s.segs[ids[len(ids)-1]]
	}
	return s, nil
}

// openSegment opens one segment file and indexes its records, truncating
// a torn or corrupt tail to the last cleanly-framed record.
func (s *Store) openSegment(id int) (*segment, error) {
	path := s.segPath(id)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	good, err := s.scanSegment(id, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if good < fi.Size() {
		// Crash recovery: everything past the last good record is a torn
		// append. Drop it so the file is clean for future appends.
		s.torn.Add(1)
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
	}
	return &segment{id: id, path: path, f: f, size: good}, nil
}

// scanSegment walks a segment's records, indexing each good one, and
// returns the offset of the first byte that is not part of a cleanly
// framed record (the truncation point for a torn tail).
func (s *Store) scanSegment(id int, f *os.File) (int64, error) {
	r := bufio.NewReader(io.NewSectionReader(f, 0, 1<<62))
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != segMagic {
		// A file too short for the magic, or with the wrong one, holds no
		// recoverable records; reinitialize it as an empty segment.
		s.torn.Add(1)
		return int64(len(segMagic)), s.writeMagic(f)
	}
	off := int64(len(segMagic))
	header := make([]byte, recHeaderLen)
	for {
		if _, err := io.ReadFull(r, header); err != nil {
			return off, nil // clean EOF or torn header: truncate here
		}
		n := binary.LittleEndian.Uint32(header[:4])
		sum := binary.LittleEndian.Uint32(header[4:])
		if n == 0 || n > maxRecordBytes {
			return off, nil // corrupt length: everything past here is suspect
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return off, nil // bit rot or torn write caught by the CRC
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Key == "" {
			return off, nil // framed but undecodable: stop, do not index
		}
		a := addr(rec.Key)
		s.index[a] = indexEntry{seg: id, off: off, size: recHeaderLen + int64(n), created: rec.Created}
		s.keys[a] = rec.Key
		off += recHeaderLen + int64(n)
	}
}

// writeMagic initializes an empty or unrecognizable segment file.
func (s *Store) writeMagic(f *os.File) error {
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func (s *Store) segPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%06d.log", id))
}

// newSegment creates and opens the next segment file.
func (s *Store) newSegment() (*segment, error) {
	id := s.nextID
	s.nextID++
	path := s.segPath(id)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	seg := &segment{id: id, path: path, f: f, size: int64(len(segMagic))}
	s.segs[id] = seg
	return seg, nil
}

// Get returns the stored report for the canonical cell key, or false on
// a miss — unknown key, expired record, or an unreadable segment (the
// store degrades to recomputation, never fails the lookup). The
// signature matches sweep.Tier.
func (s *Store) Get(key string) (*sim.Report, bool) {
	a := addr(key)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	e, ok := s.index[a]
	if ok && s.keys[a] != key {
		ok = false // hash collision or mixed corpus: never serve a foreign key
	}
	if ok && s.expiredAt(e.created, s.opt.now()) {
		s.expired.Add(1)
		ok = false
	}
	var seg *segment
	if ok {
		seg = s.segs[e.seg]
	}
	s.mu.Unlock()
	if !ok || seg == nil {
		s.misses.Add(1)
		return nil, false
	}
	rec, err := readRecord(seg.f, e.off, e.size)
	if err != nil || rec.Key != key {
		s.ioErrs.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	var rep sim.Report
	if err := json.Unmarshal(rec.Report, &rep); err != nil {
		s.ioErrs.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return &rep, true
}

// expiredAt reports whether a record created at the given unix-nano
// timestamp is past the store's TTL at time now.
func (s *Store) expiredAt(created int64, now time.Time) bool {
	return s.opt.TTL > 0 && now.Sub(time.Unix(0, created)) > s.opt.TTL
}

// readPayload reads and CRC-verifies one framed record at the given
// location, returning the raw JSON payload bytes.
func readPayload(f *os.File, off, size int64) ([]byte, error) {
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(buf[:4])
	sum := binary.LittleEndian.Uint32(buf[4:8])
	if int64(n)+recHeaderLen != size || crc32.ChecksumIEEE(buf[recHeaderLen:]) != sum {
		return nil, ErrCorrupt
	}
	return buf[recHeaderLen:], nil
}

// readRecord reads, verifies, and decodes one framed record.
func readRecord(f *os.File, off, size int64) (record, error) {
	var rec record
	payload, err := readPayload(f, off, size)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, err
	}
	return rec, nil
}

// Put stores the report under the canonical cell key, overwriting any
// previous record for the key (the newer one wins at the index; the old
// bytes fall away at the next compaction). Disk errors are swallowed
// into the IOErrors counter — a failing disk must not fail the sweep
// above it. The signature matches sweep.Tier.
func (s *Store) Put(key string, rep *sim.Report) {
	if rep == nil {
		return
	}
	body, err := json.Marshal(rep)
	if err != nil {
		s.ioErrs.Add(1)
		return
	}
	a := addr(key)
	created := s.opt.now().UnixNano()
	payload, err := json.Marshal(record{Key: key, Addr: a, Created: created, Report: body})
	if err != nil {
		s.ioErrs.Add(1)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if err := s.appendLocked(a, key, payload, created); err != nil {
		s.ioErrs.Add(1)
		return
	}
	s.puts.Add(1)
	if s.totalBytesLocked() > s.opt.MaxBytes {
		if err := s.compactLocked(); err != nil {
			s.ioErrs.Add(1)
		}
	}
}

// appendLocked frames and appends one payload to the active segment,
// rolling to a fresh segment first when the active one is full.
func (s *Store) appendLocked(a, key string, payload []byte, created int64) error {
	if s.active == nil || s.active.size+recHeaderLen+int64(len(payload)) > s.opt.SegmentMaxBytes {
		seg, err := s.newSegment()
		if err != nil {
			return err
		}
		s.active = seg
	}
	seg := s.active
	framed := frame(payload)
	if _, err := seg.f.WriteAt(framed, seg.size); err != nil {
		return err
	}
	s.index[a] = indexEntry{seg: seg.id, off: seg.size, size: int64(len(framed)), created: created}
	s.keys[a] = key
	seg.size += int64(len(framed))
	return nil
}

// frame prefixes a payload with its length and CRC.
func frame(payload []byte) []byte {
	out := make([]byte, recHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(out[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[recHeaderLen:], payload)
	return out
}

func (s *Store) totalBytesLocked() int64 {
	var n int64
	for _, seg := range s.segs {
		n += seg.size
	}
	return n
}

// compactLocked rewrites the live records into fresh segments and
// deletes the old ones: expired records are dropped first, then the
// oldest live records until the survivors fit in MaxBytes. The new
// segments get higher IDs than every old one, so a crash between
// writing them and deleting the old files recovers to a consistent
// newest-wins index (at worst resurrecting some evicted bytes, which
// the next compaction drops again).
func (s *Store) compactLocked() error {
	s.compacts.Add(1)
	type live struct {
		a       string
		key     string
		payload []byte
		created int64
	}
	now := s.opt.now()
	var survivors []live
	for a, e := range s.index {
		if s.expiredAt(e.created, now) {
			s.expired.Add(1)
			continue
		}
		seg := s.segs[e.seg]
		if seg == nil {
			continue
		}
		payload, err := readPayload(seg.f, e.off, e.size)
		if err != nil {
			s.ioErrs.Add(1)
			continue
		}
		survivors = append(survivors, live{a: a, key: s.keys[a], payload: payload, created: e.created})
	}
	// Oldest-first eviction until the survivors fit comfortably (90% of
	// the cap, so one more Put does not immediately re-trigger).
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].created < survivors[j].created })
	budget := s.opt.MaxBytes * 9 / 10
	var total int64
	for _, sv := range survivors {
		total += recHeaderLen + int64(len(sv.payload))
	}
	drop := 0
	for drop < len(survivors) && total > budget {
		total -= recHeaderLen + int64(len(survivors[drop].payload))
		s.evicted.Add(1)
		drop++
	}
	survivors = survivors[drop:]

	old := s.segs
	s.segs = make(map[int]*segment)
	s.index = make(map[string]indexEntry)
	s.keys = make(map[string]string)
	s.active = nil
	for _, sv := range survivors {
		if err := s.appendLocked(sv.a, sv.key, sv.payload, sv.created); err != nil {
			return err
		}
	}
	for _, seg := range old {
		seg.f.Close()
		os.Remove(seg.path)
	}
	return nil
}

// Compact runs a compaction immediately: expired records are dropped and
// the store is shrunk under its size cap. Put triggers this on demand;
// Compact exists for operational use (free space now, not at the next
// overflow).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// Len reports the number of indexed (live or expired-but-uncompacted)
// records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the store's counters and footprint. Each field is
// individually exact; the set is read without stopping writers.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries := len(s.index)
	segments := len(s.segs)
	bytes := s.totalBytesLocked()
	s.mu.Unlock()
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Expired:     s.expired.Load(),
		Puts:        s.puts.Load(),
		Evicted:     s.evicted.Load(),
		Compacts:    s.compacts.Load(),
		TornRecords: s.torn.Load(),
		IOErrors:    s.ioErrs.Load(),
		Entries:     entries,
		Segments:    segments,
		Bytes:       bytes,
		Dir:         s.dir,
	}
}

// Export writes every live (non-expired) record to w as JSON lines —
// the corpus format Import reads. Records export in deterministic key
// order so equal stores produce byte-identical corpora. It returns the
// number of records written.
func (s *Store) Export(w io.Writer) (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	type loc struct {
		key string
		e   indexEntry
		seg *segment
	}
	now := s.opt.now()
	locs := make([]loc, 0, len(s.index))
	for a, e := range s.index {
		if s.expiredAt(e.created, now) {
			continue
		}
		if seg := s.segs[e.seg]; seg != nil {
			locs = append(locs, loc{key: s.keys[a], e: e, seg: seg})
		}
	}
	s.mu.Unlock()
	sort.Slice(locs, func(i, j int) bool { return locs[i].key < locs[j].key })
	bw := bufio.NewWriter(w)
	n := 0
	for _, l := range locs {
		// The stored payload is already one compact JSON object with no
		// embedded newlines — it is the corpus line verbatim.
		payload, err := readPayload(l.seg.f, l.e.off, l.e.size)
		if err != nil {
			s.ioErrs.Add(1)
			continue
		}
		if _, err := bw.Write(payload); err != nil {
			return n, err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// ImportResult summarizes one Import: how many corpus records were
// added, skipped because the store already holds the key, or rejected
// (undecodable lines, content-address mismatches).
type ImportResult struct {
	Added    int `json:"added"`
	Skipped  int `json:"skipped"`
	Rejected int `json:"rejected"`
}

// Import merges a corpus (the Export format) into the store: records
// for unknown keys are appended, records for keys the store already
// holds are skipped (the local copy wins — equal keys mean byte-
// identical reports, so there is nothing to reconcile), and records
// whose content address does not match their key are rejected. Lines
// longer than maxLineBytes (<= 0 means 16 MiB) fail the import.
func (s *Store) Import(r io.Reader, maxLineBytes int) (ImportResult, error) {
	if maxLineBytes <= 0 {
		maxLineBytes = maxRecordBytes
	}
	var res ImportResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			res.Rejected++
			continue
		}
		a := addr(rec.Key)
		if rec.Addr != "" && rec.Addr != a {
			res.Rejected++
			continue
		}
		rec.Addr = a
		payload, err := json.Marshal(rec)
		if err != nil {
			res.Rejected++
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return res, ErrClosed
		}
		if _, exists := s.index[a]; exists {
			s.mu.Unlock()
			res.Skipped++
			continue
		}
		err = s.appendLocked(a, rec.Key, payload, rec.Created)
		overflow := s.totalBytesLocked() > s.opt.MaxBytes
		if err == nil && overflow {
			err = s.compactLocked()
		}
		s.mu.Unlock()
		if err != nil {
			s.ioErrs.Add(1)
			res.Rejected++
			continue
		}
		res.Added++
	}
	if err := sc.Err(); err != nil {
		return res, fmt.Errorf("store: reading corpus: %w", err)
	}
	s.puts.Add(int64(res.Added))
	return res, nil
}

// Close releases the segment file handles. Get degrades to misses and
// Put to no-ops afterwards, so a cache still holding the store as its
// tier keeps working (memory-only) during shutdown.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked()
}

func (s *Store) closeLocked() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, seg := range s.segs {
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
