package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

func TestPlanCellsOrderAndSeq(t *testing.T) {
	p := Plan{
		Archs:    []Arch{INCAArch(), BaselineArch()},
		Networks: []*nn.Network{nn.LeNet5(), nn.VGG16CIFAR()},
		Phases:   []sim.Phase{sim.Inference, sim.Training},
	}
	cells, err := p.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	for i, c := range cells {
		if c.Seq != i {
			t.Fatalf("cell %d has Seq %d", i, c.Seq)
		}
	}
	// Archs outermost, phases innermost.
	if cells[0].Arch.Name != "INCA" || cells[4].Arch.Name != "WS-Baseline" {
		t.Fatalf("arch order wrong: %s, %s", cells[0].Arch.Name, cells[4].Arch.Name)
	}
	if cells[0].Phase != sim.Inference || cells[1].Phase != sim.Training {
		t.Fatal("phase should be the innermost axis")
	}
	if cells[0].Network.Name != cells[1].Network.Name {
		t.Fatal("adjacent cells should share a network")
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := (Plan{}).Cells(); !errors.Is(err, ErrEmptyPlan) {
		t.Fatalf("empty plan err = %v", err)
	}
	p := Plan{Archs: []Arch{{Name: "broken"}}, Networks: []*nn.Network{nn.LeNet5()}, Phases: []sim.Phase{sim.Inference}}
	if _, err := p.Cells(); !errors.Is(err, ErrNilBuild) {
		t.Fatalf("nil build err = %v", err)
	}
	p = Plan{Archs: []Arch{INCAArch()}, Networks: []*nn.Network{nil}, Phases: []sim.Phase{sim.Inference}}
	if _, err := p.Cells(); !errors.Is(err, ErrNilNetwork) {
		t.Fatalf("nil network err = %v", err)
	}
	p = Plan{
		Archs:     []Arch{INCAArch()},
		Networks:  []*nn.Network{nn.LeNet5()},
		Phases:    []sim.Phase{sim.Inference},
		Overrides: []Override{{Name: "broken"}},
	}
	if _, err := p.Cells(); !errors.Is(err, ErrNilOverride) {
		t.Fatalf("nil override err = %v", err)
	}
	if _, err := Stream(context.Background(), Plan{}, Options{}); !errors.Is(err, ErrEmptyPlan) {
		t.Fatalf("Stream should reject an invalid plan synchronously, got %v", err)
	}
}

// renderAll fingerprints every report of a result set for byte-level
// comparison across runs.
func renderAll(t *testing.T, results []Result) []string {
	t.Helper()
	out := make([]string, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %d (%s): %v", i, r.Cell.Key(), r.Err)
		}
		out[i] = fmt.Sprintf("%+v", *r.Report)
	}
	return out
}

func TestParallelMatchesSerialByteForByte(t *testing.T) {
	ctx := context.Background()
	serial, err := Run(ctx, PaperPlan(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(ctx, PaperPlan(), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 36 || len(parallel) != 36 {
		t.Fatalf("paper sweep = %d/%d cells, want 36", len(serial), len(parallel))
	}
	sr, pr := renderAll(t, serial), renderAll(t, parallel)
	for i := range sr {
		if sr[i] != pr[i] {
			t.Fatalf("cell %d (%s) differs between serial and parallel runs:\n%s\n%s",
				i, serial[i].Cell.Key(), sr[i], pr[i])
		}
	}
}

func TestDeterministicResultOrder(t *testing.T) {
	ctx := context.Background()
	cells, _ := PaperPlan().Cells()
	for trial := 0; trial < 3; trial++ {
		results, err := Run(ctx, PaperPlan(), Options{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Cell.Seq != i {
				t.Fatalf("trial %d: result %d carries Seq %d", trial, i, r.Cell.Seq)
			}
			if r.Cell.Key() != cells[i].Key() {
				t.Fatalf("trial %d: result %d is cell %s, want %s",
					trial, i, r.Cell.Key(), cells[i].Key())
			}
		}
	}
}

func TestCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := Stream(ctx, PaperPlan(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var done, failed int
	first := true
	for r := range ch {
		if first {
			cancel()
			first = false
		}
		if r.Err != nil {
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("unexpected cell error: %v", r.Err)
			}
			failed++
		} else {
			done++
		}
	}
	if done+failed != 36 {
		t.Fatalf("results = %d, want one per cell (36)", done+failed)
	}
	if failed == 0 {
		t.Fatal("cancellation mid-sweep should abort some cells")
	}
	// Run reports the context error and still returns every cell.
	results, err := Run(ctx, PaperPlan(), Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx err = %v", err)
	}
	if len(results) != 36 {
		t.Fatalf("cancelled Run returned %d results, want 36", len(results))
	}
}

func TestCacheHitCounting(t *testing.T) {
	identity := func(cfg arch.Config) arch.Config { return cfg }
	p := Plan{
		Archs:    []Arch{INCAArch()},
		Networks: []*nn.Network{nn.LeNet5()},
		Phases:   []sim.Phase{sim.Inference},
		// Three overrides yielding one identical config: 3 cells, 1 key.
		Overrides: []Override{
			{Name: "a", Apply: identity},
			{Name: "b", Apply: identity},
			{Name: "c", Apply: identity},
		},
	}
	cache := NewCache()
	results, err := Run(context.Background(), p, Options{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Misses() != 1 || cache.Hits() != 2 {
		t.Fatalf("cache misses/hits = %d/%d, want 1/2", cache.Misses(), cache.Hits())
	}
	var cached int
	for _, r := range results {
		if r.Cached {
			cached++
		}
	}
	if cached != 2 {
		t.Fatalf("cached results = %d, want 2", cached)
	}
	// A second run over the same plan is served entirely from the cache.
	if _, err := Run(context.Background(), p, Options{Workers: 4, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.Misses() != 1 || cache.Hits() != 5 {
		t.Fatalf("after rerun misses/hits = %d/%d, want 1/5", cache.Misses(), cache.Hits())
	}
	if cache.Len() != 1 {
		t.Fatalf("cache stores %d entries, want 1", cache.Len())
	}
}

func TestCacheSingleflight(t *testing.T) {
	cache := NewCache()
	key := Key{Arch: "x", Config: "y", Network: "z"}
	var evals atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := cache.Do(context.Background(), key, func() (*sim.Report, error) {
				evals.Add(1)
				time.Sleep(2 * time.Millisecond)
				return &sim.Report{Arch: "x"}, nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if evals.Load() != 1 {
		t.Fatalf("eval ran %d times, want 1 (singleflight)", evals.Load())
	}
}

func TestCacheForgetsFailures(t *testing.T) {
	cache := NewCache()
	key := Key{Arch: "x"}
	boom := errors.New("boom")
	_, _, err := cache.Do(context.Background(), key, func() (*sim.Report, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	rep, cached, err := cache.Do(context.Background(), key, func() (*sim.Report, error) {
		return &sim.Report{Arch: "ok"}, nil
	})
	if err != nil || cached || rep.Arch != "ok" {
		t.Fatalf("failed keys must be retryable: %v %v %v", rep, cached, err)
	}
}

// gaugeSim observes worker-pool concurrency.
type gaugeSim struct {
	inFlight, peak atomic.Int64
}

func (g *gaugeSim) Simulate(ctx context.Context, net *nn.Network, phase sim.Phase) (*sim.Report, error) {
	n := g.inFlight.Add(1)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			break
		}
	}
	time.Sleep(time.Millisecond)
	g.inFlight.Add(-1)
	var r metrics.Result
	r.Latency = 1
	return &sim.Report{Arch: "gauge", Network: net.Name, Phase: phase, Batch: 1, Total: r}, nil
}

func TestWorkerPoolSaturation(t *testing.T) {
	gauge := &gaugeSim{}
	nets := make([]*nn.Network, 32)
	for i := range nets {
		nets[i] = &nn.Network{Name: fmt.Sprintf("net-%02d", i)}
	}
	a := Arch{
		Name:  "gauge",
		Fixed: true,
		Build: func(arch.Config) (sim.Simulator, error) { return gauge, nil },
	}
	const workers = 4
	results, err := Run(context.Background(), Plan{
		Archs:    []Arch{a},
		Networks: nets,
		Phases:   []sim.Phase{sim.Inference},
	}, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(nets) {
		t.Fatalf("results = %d, want %d", len(results), len(nets))
	}
	if peak := gauge.peak.Load(); peak > workers {
		t.Fatalf("pool ran %d cells concurrently, bounded at %d", peak, workers)
	}
	if peak := gauge.peak.Load(); peak < 2 {
		t.Fatalf("pool never overlapped cells (peak %d); workers idle", peak)
	}
}

func TestMapPreservesOrderAndBounds(t *testing.T) {
	items := make([]int, 50)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), 4, items, func(_ context.Context, v int) (int, error) {
		time.Sleep(time.Microsecond)
		return v * v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Map(ctx, 4, items, func(context.Context, int) (int, error) { return 0, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Map err = %v", err)
	}
}

func TestGPUCellsShareOneKeyAcrossOverrides(t *testing.T) {
	p := Plan{
		Archs:    []Arch{GPUArch()},
		Networks: []*nn.Network{nn.LeNet5()},
		Phases:   []sim.Phase{sim.Inference},
		Overrides: []Override{
			{Name: "batch=1", Apply: func(c arch.Config) arch.Config { c.BatchSize = 1; return c }},
			{Name: "batch=64", Apply: func(c arch.Config) arch.Config { c.BatchSize = 64; return c }},
		},
	}
	cache := NewCache()
	results, err := Run(context.Background(), p, Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	if cache.Misses() != 1 {
		t.Fatalf("fixed arch should evaluate once across overrides, got %d misses", cache.Misses())
	}
	if results[0].Report != results[1].Report {
		t.Fatal("fixed-arch cells should alias one cached report")
	}
}

func TestInvalidConfigSurfacesAsCellError(t *testing.T) {
	bad := arch.INCA()
	bad.BatchSize = 0
	p := Plan{
		Archs:    []Arch{ConfigArch(bad)},
		Networks: []*nn.Network{nn.LeNet5()},
		Phases:   []sim.Phase{sim.Inference},
	}
	results, err := Run(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("invalid config should fail the cell, not panic")
	}
}

func TestRunUsesGOMAXPROCSByDefault(t *testing.T) {
	// Smoke-test the Workers<=0 default on the real paper plan.
	results, err := Run(context.Background(), PaperPlan(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 36 {
		t.Fatalf("results = %d, want 36", len(results))
	}
	_ = runtime.GOMAXPROCS(0)
}
