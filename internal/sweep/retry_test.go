package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/fault"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// retryOpts is the fast backoff schedule the injected-fault tests share.
func retryOpts(seed int64) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 30,
		BaseDelay:   50 * time.Microsecond,
		MaxDelay:    500 * time.Microsecond,
		Seed:        seed,
	}
}

// TestRetryDeterministicUnderInjectedFaults is the tentpole acceptance
// run: with transient faults injected at probability 0.3 under a fixed
// seed, the full paper plan completes with every cell succeeding via
// retries, the reports are byte-identical to a fault-free run, and two
// identically-seeded invocations reproduce each other exactly — at any
// worker count, because fault draws and retry jitter are keyed by cell,
// not by goroutine.
func TestRetryDeterministicUnderInjectedFaults(t *testing.T) {
	ctx := context.Background()
	clean, err := Run(ctx, PaperPlan(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, clean)

	chaosRun := func(workers int) ([]string, []int) {
		inj := fault.New(42)
		inj.Add(fault.Rule{Site: "sweep/cell/*", Kind: fault.KindError, Prob: 0.3})
		results, err := Run(ctx, PaperPlan(), Options{
			Workers: workers,
			Retry:   retryOpts(42),
			Inject:  inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		attempts := make([]int, len(results))
		for i, r := range results {
			attempts[i] = r.Attempts
		}
		return renderAll(t, results), attempts
	}

	gotA, attA := chaosRun(8)
	for i := range want {
		if gotA[i] != want[i] {
			t.Fatalf("cell %d differs from fault-free run:\n%s\n%s", i, gotA[i], want[i])
		}
	}
	retried := 0
	for _, a := range attA {
		if a < 1 || a > 30 {
			t.Fatalf("attempts out of range: %d", a)
		}
		if a > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("probability-0.3 faults never forced a retry across 36 cells")
	}

	// Reproducible: a second seeded invocation — at a different worker
	// count — injects the same schedule and retries identically.
	gotB, attB := chaosRun(1)
	for i := range gotA {
		if gotA[i] != gotB[i] {
			t.Fatalf("cell %d report differs across identically-seeded chaos runs", i)
		}
		if attA[i] != attB[i] {
			t.Fatalf("cell %d attempts differ across worker counts: %d vs %d", i, attA[i], attB[i])
		}
	}
}

// TestRetryDisabledSurfacesPartialResults pins the partial-results
// contract: without a retry policy an injected fault lands in that
// cell's Err while every sibling still completes — no first-error abort.
func TestRetryDisabledSurfacesPartialResults(t *testing.T) {
	inj := fault.New(7)
	inj.Add(fault.Rule{Site: "sweep/cell/*", Kind: fault.KindError, Max: 1})
	results, err := Run(context.Background(), PaperPlan(), Options{Workers: 4, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			if !errors.Is(r.Err, fault.ErrInjected) {
				t.Fatalf("unexpected cell error: %v", r.Err)
			}
			if r.Attempts != 1 {
				t.Fatalf("retries ran without a policy: %d attempts", r.Attempts)
			}
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("Max:1 rule failed %d cells, want exactly 1", failed)
	}
	if len(results) != 36 {
		t.Fatalf("partial run returned %d results, want all 36", len(results))
	}
}

// TestRetryHonorsContextMidBackoff: a context that ends while a cell
// waits out its backoff surfaces as that cell's error instead of
// spinning on a dead deadline.
func TestRetryHonorsContextMidBackoff(t *testing.T) {
	inj := fault.New(1)
	inj.Add(fault.Rule{Site: "sweep/cell/*", Kind: fault.KindError}) // always fires
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	results, err := Run(ctx, Plan{
		Archs:    []Arch{INCAArch()},
		Networks: []*nn.Network{nn.LeNet5()},
		Phases:   []sim.Phase{sim.Inference},
	}, Options{
		Workers: 1,
		Inject:  inj,
		Retry:   RetryPolicy{MaxAttempts: 1 << 20, BaseDelay: 10 * time.Second, MaxDelay: time.Minute},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run err = %v, want deadline exceeded", err)
	}
	if len(results) != 1 || !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("cell result = %+v", results)
	}
}

// flakySim fails its first failures Simulate calls with a transient
// error, then succeeds forever.
type flakySim struct {
	remaining atomic.Int64 // failures still to serve
	evals     atomic.Int64
}

func (f *flakySim) Simulate(_ context.Context, net *nn.Network, phase sim.Phase) (*sim.Report, error) {
	f.evals.Add(1)
	if f.remaining.Add(-1) >= 0 {
		return nil, fault.MarkTransient(errors.New("flaky device"))
	}
	var r metrics.Result
	r.Latency = 1
	return &sim.Report{Arch: "flaky", Network: net.Name, Phase: phase, Batch: 1, Total: r}, nil
}

// TestRetryReentersCacheAfterTransientFailure covers the cache
// interplay the retry loop depends on: a failed flight is forgotten, so
// the retry re-enters as a fresh miss; once a flight lands, siblings
// coalesce. Exercised at worker budgets {1, GOMAXPROCS}.
func TestRetryReentersCacheAfterTransientFailure(t *testing.T) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			flaky := &flakySim{}
			flaky.remaining.Store(2)
			identity := func(c arch.Config) arch.Config { return c }
			p := Plan{
				Archs: []Arch{{
					Name:  "flaky",
					Fixed: true, // all overrides share one cache key
					Build: func(arch.Config) (sim.Simulator, error) { return flaky, nil },
				}},
				Networks: []*nn.Network{{Name: "net"}},
				Phases:   []sim.Phase{sim.Inference},
				Overrides: []Override{
					{Name: "a", Apply: identity},
					{Name: "b", Apply: identity},
					{Name: "c", Apply: identity},
				},
			}
			cache := NewCache()
			results, err := Run(context.Background(), p, Options{
				Workers: workers,
				Cache:   cache,
				Retry:   retryOpts(3),
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("cell %d: %v (attempts %d)", i, r.Err, r.Attempts)
				}
				if r.Attempts < 1 {
					t.Fatalf("cell %d reports %d attempts", i, r.Attempts)
				}
			}
			// Exactly 2 failing evals + 1 success, each a distinct flight:
			// singleflight serializes per key, failures are forgotten, and
			// the stored success ends re-evaluation for good.
			if got := flaky.evals.Load(); got != 3 {
				t.Fatalf("simulator evaluated %d times, want 3", got)
			}
			if cache.Misses() != 3 {
				t.Fatalf("misses = %d, want 3 (each retry re-enters as a miss)", cache.Misses())
			}
			if cache.Len() != 1 {
				t.Fatalf("cache holds %d entries, want 1", cache.Len())
			}
			if cache.Expired() != 0 {
				t.Fatalf("expired = %d with no context aborts", cache.Expired())
			}
			if workers == 1 {
				// Serial order is fully determined: cell 0 absorbs all three
				// attempts, cells 1 and 2 are pure hits.
				if results[0].Attempts != 3 {
					t.Fatalf("first cell took %d attempts, want 3", results[0].Attempts)
				}
				if cache.Hits() != 2 {
					t.Fatalf("hits = %d, want 2", cache.Hits())
				}
			}
		})
	}
}

// TestCacheExpiredWaiterThenRetrySucceeds drives the Expired path by
// hand: a waiter abandons a failing in-flight eval (counted by
// Expired, not hits/misses), the failure is forgotten, and the key's
// next caller re-enters and succeeds.
func TestCacheExpiredWaiterThenRetrySucceeds(t *testing.T) {
	cache := NewCache()
	key := Key{Arch: "x", Config: "c", Network: "n"}
	started := make(chan struct{})
	release := make(chan struct{})
	boom := fault.MarkTransient(errors.New("boom"))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := cache.Do(context.Background(), key, func() (*sim.Report, error) {
			close(started)
			<-release
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("flight err = %v", err)
		}
	}()

	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, cached, err := cache.Do(ctx, key, func() (*sim.Report, error) {
		t.Error("waiter must not start its own eval")
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) || cached {
		t.Fatalf("abandoned wait = (%v, cached=%v)", err, cached)
	}
	if cache.Expired() != 1 {
		t.Fatalf("expired = %d, want 1", cache.Expired())
	}

	close(release)
	wg.Wait()
	rep, cached, err := cache.Do(context.Background(), key, func() (*sim.Report, error) {
		return &sim.Report{Arch: "ok"}, nil
	})
	if err != nil || cached || rep.Arch != "ok" {
		t.Fatalf("retry after forgotten failure = (%v, cached=%v, err=%v)", rep, cached, err)
	}
	if cache.Misses() != 2 || cache.Hits() != 0 {
		t.Fatalf("misses/hits = %d/%d, want 2/0", cache.Misses(), cache.Hits())
	}
	if cache.Len() != 1 {
		t.Fatalf("entries = %d, want 1", cache.Len())
	}
}

// TestMapDrainsSiblingsOnEarlyError is the goroutine-leak regression:
// a mid-slice error stops new items from being fed, but Map must not
// return while any started sibling is still running.
func TestMapDrainsSiblingsOnEarlyError(t *testing.T) {
	boom := errors.New("boom")
	var started, inFlight atomic.Int64
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	_, err := Map(context.Background(), 4, items, func(_ context.Context, v int) (int, error) {
		started.Add(1)
		inFlight.Add(1)
		defer inFlight.Add(-1)
		if v == 2 {
			return 0, boom
		}
		time.Sleep(5 * time.Millisecond) // siblings outlive the failing item
		return v, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Map err = %v, want boom", err)
	}
	if n := inFlight.Load(); n != 0 {
		t.Fatalf("%d goroutines still inside f after Map returned", n)
	}
	if n := started.Load(); n >= 64 {
		t.Fatal("early error did not stop the feed")
	}
}

// TestMapRecoversPanics: a panicking f surfaces as ErrMapPanic on its
// item instead of killing the pool, and siblings still drain.
func TestMapRecoversPanics(t *testing.T) {
	var inFlight atomic.Int64
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	out, err := Map(context.Background(), 3, items, func(_ context.Context, v int) (int, error) {
		inFlight.Add(1)
		defer inFlight.Add(-1)
		if v == 1 {
			panic("kaboom")
		}
		time.Sleep(2 * time.Millisecond)
		return v, nil
	})
	if !errors.Is(err, ErrMapPanic) {
		t.Fatalf("Map err = %v, want ErrMapPanic", err)
	}
	if inFlight.Load() != 0 {
		t.Fatal("panicking item leaked running siblings")
	}
	if len(out) != len(items) {
		t.Fatalf("results slice has %d slots, want %d", len(out), len(items))
	}
}

// TestMapSerialStopsFeedingImmediately pins the tightest drain bound:
// with one worker, an error on the first item starts nothing else.
func TestMapSerialStopsFeedingImmediately(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	items := []int{0, 1, 2, 3}
	_, err := Map(context.Background(), 1, items, func(_ context.Context, v int) (int, error) {
		started.Add(1)
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Map err = %v", err)
	}
	if n := started.Load(); n != 1 {
		t.Fatalf("serial Map started %d items after an immediate error, want 1", n)
	}
}
