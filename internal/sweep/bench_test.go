package sweep

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// benchSweep runs the full 36-cell paper sweep with a fresh cache per
// iteration so every cell is actually evaluated.
func benchSweep(b *testing.B, workers int) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := Run(ctx, PaperPlan(), Options{Workers: workers, Cache: NewCache()})
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 36 {
			b.Fatalf("results = %d, want 36", len(results))
		}
	}
}

func BenchmarkPaperSweepSerial(b *testing.B)    { benchSweep(b, 1) }
func BenchmarkPaperSweepParallel2(b *testing.B) { benchSweep(b, 2) }
func BenchmarkPaperSweepParallel4(b *testing.B) { benchSweep(b, 4) }
func BenchmarkPaperSweepParallel8(b *testing.B) { benchSweep(b, 8) }

// BenchmarkPaperSweepCached measures a fully warm cache: every cell is a
// hit, so this is the engine's fixed overhead per sweep.
func BenchmarkPaperSweepCached(b *testing.B) {
	ctx := context.Background()
	cache := NewCache()
	if _, err := Run(ctx, PaperPlan(), Options{Workers: 4, Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ctx, PaperPlan(), Options{Workers: 4, Cache: cache}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestParallelSpeedup pins the headline claim: at 4 workers the paper
// sweep finishes at least 2x faster than serially, with byte-identical
// reports (asserted separately in TestParallelMatchesSerialByteForByte).
// Wall-clock speedup needs real cores, so the timing assertion only runs
// when the host can actually execute 4 workers in parallel.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	ctx := context.Background()
	timeSweep := func(workers int) time.Duration {
		// Warm once outside the timed region to exclude one-time costs.
		best := time.Duration(1<<62 - 1)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			if _, err := Run(ctx, PaperPlan(), Options{Workers: workers, Cache: NewCache()}); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial := timeSweep(1)
	parallel := timeSweep(4)
	t.Logf("serial %v, 4 workers %v (%.2fx)", serial, parallel,
		float64(serial)/float64(parallel))
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("host exposes %d procs; need 4 for the 2x wall-clock assertion",
			runtime.GOMAXPROCS(0))
	}
	if float64(serial) < 2*float64(parallel) {
		t.Fatalf("4-worker sweep only %.2fx faster than serial (%v vs %v), want >= 2x",
			float64(serial)/float64(parallel), parallel, serial)
	}
}
