package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// lateCancelSim completes every cell normally but ends the run's context
// from inside the final cell — after that cell's report is already
// computed. No cell loses work to the cancellation.
type lateCancelSim struct {
	calls  atomic.Int64
	total  int64
	cancel context.CancelFunc
}

func (s *lateCancelSim) Simulate(_ context.Context, net *nn.Network, phase sim.Phase) (*sim.Report, error) {
	if s.calls.Add(1) == s.total {
		s.cancel()
	}
	var r metrics.Result
	r.Latency = 1
	return &sim.Report{Arch: "late", Network: net.Name, Phase: phase, Batch: 1, Total: r}, nil
}

// Regression: Run used to return ctx.Err() whenever the context had ended
// by collection time, even when every cell had already completed — a clean
// sweep whose caller cancels on the last result was reported as failed.
// Run must only surface the context error when some cell actually carries
// it.
func TestRunCleanCompletionIgnoresLateContextEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	nets := []*nn.Network{
		{Name: "n0"}, {Name: "n1"}, {Name: "n2"},
	}
	s := &lateCancelSim{total: int64(len(nets)), cancel: cancel}
	p := Plan{
		Archs: []Arch{{
			Name:  "late",
			Fixed: true,
			Build: func(arch.Config) (sim.Simulator, error) { return s, nil },
		}},
		Networks: nets,
		Phases:   []sim.Phase{sim.Inference},
	}
	// One worker serializes the cells, so the cancellation inside the last
	// cell cannot preempt an earlier one.
	results, err := Run(ctx, p, Options{Workers: 1})
	if err != nil {
		t.Fatalf("Run returned %v for a sweep whose every cell completed", err)
	}
	if len(results) != len(nets) {
		t.Fatalf("results = %d, want %d", len(results), len(nets))
	}
	for i, r := range results {
		if r.Err != nil || r.Report == nil {
			t.Fatalf("cell %d: err=%v report=%v, want clean completion", i, r.Err, r.Report)
		}
	}
	if ctx.Err() == nil {
		t.Fatal("test is vacuous: context never ended")
	}
	// A context that ends with cells still unexecuted must still surface.
	results, err = Run(ctx, p, Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on already-cancelled ctx err = %v, want Canceled", err)
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("unexecuted cell err = %v, want Canceled", r.Err)
		}
	}
}

// Regression: a waiter whose context ended while another goroutine's
// evaluation was in flight used to count as a cache *hit* and report
// cached=true with a nil report. It received nothing; Hits()/Misses()
// must stay truthful and the wait is tallied separately as Expired.
func TestCacheExpiredWaiterAccounting(t *testing.T) {
	cache := NewCache()
	key := Key{Arch: "x", Config: "y", Network: "z"}
	started := make(chan struct{})
	release := make(chan struct{})
	flightDone := make(chan struct{})
	go func() {
		defer close(flightDone)
		_, cached, err := cache.Do(context.Background(), key, func() (*sim.Report, error) {
			close(started)
			<-release
			return &sim.Report{Arch: "x"}, nil
		})
		if err != nil || cached {
			t.Errorf("flight owner: cached=%v err=%v, want false/nil", cached, err)
		}
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, cached, err := cache.Do(ctx, key, func() (*sim.Report, error) {
		t.Error("cancelled waiter must not run eval")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want Canceled", err)
	}
	if cached || rep != nil {
		t.Fatalf("cancelled waiter got cached=%v rep=%v, want false/nil", cached, rep)
	}
	if h, m, e := cache.Hits(), cache.Misses(), cache.Expired(); h != 0 || m != 1 || e != 1 {
		t.Fatalf("hits/misses/expired = %d/%d/%d, want 0/1/1", h, m, e)
	}

	close(release)
	<-flightDone
	// The abandoned flight still landed for future callers.
	rep, cached, err = cache.Do(context.Background(), key, func() (*sim.Report, error) {
		return nil, fmt.Errorf("must be served from cache")
	})
	if err != nil || !cached || rep == nil || rep.Arch != "x" {
		t.Fatalf("post-flight Do = (%v, %v, %v), want cached report", rep, cached, err)
	}
	if h, m, e := cache.Hits(), cache.Misses(), cache.Expired(); h != 1 || m != 1 || e != 1 {
		t.Fatalf("final hits/misses/expired = %d/%d/%d, want 1/1/1", h, m, e)
	}
}

// A waiter whose context ends only after the flight completed must be
// served the result: a finished evaluation is never an expired wait.
func TestCachePrefersReadyResultOverEndedContext(t *testing.T) {
	cache := NewCache()
	key := Key{Arch: "x"}
	if _, _, err := cache.Do(context.Background(), key, func() (*sim.Report, error) {
		return &sim.Report{Arch: "x"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 100; i++ { // select order is random; hammer it
		rep, cached, err := cache.Do(ctx, key, func() (*sim.Report, error) {
			t.Fatal("stored key must not re-evaluate")
			return nil, nil
		})
		if err != nil || !cached || rep == nil {
			t.Fatalf("iter %d: Do = (%v, %v, %v), want stored report", i, rep, cached, err)
		}
	}
	if e := cache.Expired(); e != 0 {
		t.Fatalf("expired = %d, want 0 (result was ready)", e)
	}
}
