package sweep

import (
	"context"
	"testing"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// TestRunCellsInputOrder runs an explicit cell subset with sparse,
// shuffled Seq values — the shape a cluster shard receives — and asserts
// results come back in input order with Seq untouched, byte-identical to
// the same cells evaluated through a full plan run.
func TestRunCellsInputOrder(t *testing.T) {
	ctx := context.Background()
	plan := Plan{
		Archs:    []Arch{INCAArch(), BaselineArch()},
		Networks: []*nn.Network{nn.LeNet5(), nn.VGG16CIFAR()},
		Phases:   []sim.Phase{sim.Inference, sim.Training},
	}
	full, err := Run(ctx, plan, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := plan.Cells()
	if err != nil {
		t.Fatal(err)
	}
	// A shard-like subset: every other cell, reversed, so neither Seq nor
	// plan order matches slice position.
	var subset []Cell
	for i := len(cells) - 1; i >= 0; i -= 2 {
		subset = append(subset, cells[i])
	}
	results, err := RunCells(ctx, subset, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(subset) {
		t.Fatalf("results = %d, want %d", len(results), len(subset))
	}
	for i, r := range results {
		want := subset[i]
		if r.Cell.Seq != want.Seq || r.Cell.Key() != want.Key() {
			t.Fatalf("result %d is cell %s (seq %d), want %s (seq %d)",
				i, r.Cell.Key(), r.Cell.Seq, want.Key(), want.Seq)
		}
		if r.Err != nil {
			t.Fatalf("cell %s failed: %v", want.Key(), r.Err)
		}
		ref := full[want.Seq]
		if got, wantRep := r.Report.Total.Energy.Total(), ref.Report.Total.Energy.Total(); got != wantRep {
			t.Fatalf("cell %s energy %v differs from plan run %v", want.Key(), got, wantRep)
		}
	}
}

// TestRunCellsCancelled pins Run's context-error contract on the
// explicit-list path: an ended context surfaces as RunCells' error and
// every unexecuted cell carries it.
func TestRunCellsCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cells, err := PaperPlan().Cells()
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunCells(ctx, cells, Options{Workers: 2})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != len(cells) {
		t.Fatalf("results = %d, want %d", len(results), len(cells))
	}
}

// TestPartitionByKey asserts the scatter invariants: every cell lands
// with exactly one owner, relative order within an owner is preserved,
// and equal keys share an owner.
func TestPartitionByKey(t *testing.T) {
	plan := Plan{
		Archs:    []Arch{INCAArch(), BaselineArch(), GPUArch()},
		Networks: []*nn.Network{nn.LeNet5(), nn.VGG16CIFAR()},
		Phases:   []sim.Phase{sim.Inference},
		// Two distinct overrides plus the GPU's Fixed collapse: duplicate
		// keys must co-locate.
		Overrides: []Override{
			{Name: "a", Apply: func(c arch.Config) arch.Config { return c }},
			{Name: "b", Apply: func(c arch.Config) arch.Config { c.BatchSize *= 2; return c }},
		},
	}
	cells, err := plan.Cells()
	if err != nil {
		t.Fatal(err)
	}
	owner := func(k Key) string {
		// A deliberately lumpy assignment: keys route by first byte.
		if k.String()[0] < 'I' {
			return "p0"
		}
		return "p1"
	}
	parts := Partition(cells, owner)
	total := 0
	seen := make(map[Key]string)
	for peer, part := range parts {
		lastSeq := -1
		for _, c := range part {
			total++
			if c.Seq <= lastSeq {
				t.Fatalf("peer %s: cell order not preserved (seq %d after %d)", peer, c.Seq, lastSeq)
			}
			lastSeq = c.Seq
			if prev, ok := seen[c.Key()]; ok && prev != peer {
				t.Fatalf("key %s split across %s and %s", c.Key(), prev, peer)
			}
			seen[c.Key()] = peer
			if owner(c.Key()) != peer {
				t.Fatalf("cell %s on peer %s, owner says %s", c.Key(), peer, owner(c.Key()))
			}
		}
	}
	if total != len(cells) {
		t.Fatalf("partition covers %d cells, want %d", total, len(cells))
	}
}
