package sweep

import (
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// PaperPlan returns the full evaluation cross product of the paper's
// Figs. 11–16: {INCA, WS baseline, GPU} × the six ImageNet CNNs ×
// {inference, training} — 36 cells. It is the reference workload for the
// engine's benchmarks.
func PaperPlan() Plan {
	return Plan{
		Archs:    []Arch{INCAArch(), BaselineArch(), GPUArch()},
		Networks: nn.PaperModels(),
		Phases:   []sim.Phase{sim.Inference, sim.Training},
	}
}
