package sweep

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/sim"
)

// Cache memoizes simulation reports by cell key with singleflight-style
// deduplication: when several goroutines ask for the same key
// concurrently, exactly one runs the simulation and the rest block until
// its result lands. Successful reports are retained for the cache's
// lifetime (they are a few KB each); failed evaluations are forgotten so
// a later caller with, say, a live context can retry.
//
// A Cache is safe for concurrent use and may be shared across sweeps —
// cmd/inca-experiments shares one cache across all experiments of a run,
// so Fig. 11 and Fig. 14 evaluate their common cells once.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*cacheEntry

	hits    atomic.Int64
	misses  atomic.Int64
	expired atomic.Int64
}

type cacheEntry struct {
	ready chan struct{} // closed once rep/err are final
	rep   *sim.Report
	err   error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[Key]*cacheEntry)}
}

// Do returns the memoized report for key, running eval at most once per
// key across all concurrent callers. cached reports true when this call
// did not run eval itself (either a stored result or another goroutine's
// in-flight evaluation). Waiting callers unblock with ctx's error if
// their context ends first; such a call received nothing from the cache,
// so it reports cached=false and counts as neither hit nor miss — it is
// tallied by Expired instead (the flight it abandoned may still land for
// future callers). Hits() therefore counts only calls that actually
// received a result without running eval, and Misses() only calls that
// ran eval.
//
// Callers must treat the returned report as immutable: cache hits alias
// the same *sim.Report.
func (c *Cache) Do(ctx context.Context, key Key, eval func() (*sim.Report, error)) (rep *sim.Report, cached bool, err error) {
	// Trace tally: the same hit/miss/expired classification the global
	// counters record, attributed to the span (if any) this call runs
	// under — one nil check per call when untraced.
	span := obs.FromContext(ctx)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		// Prefer a result that is already final over a raced Done — a
		// completed flight should never be reported as an expired wait.
		select {
		case <-e.ready:
			c.hits.Add(1)
			span.Count("cache.hit", 1)
			return e.rep, true, e.err
		default:
		}
		select {
		case <-e.ready:
			c.hits.Add(1)
			span.Count("cache.hit", 1)
			return e.rep, true, e.err
		case <-ctx.Done():
			c.expired.Add(1)
			span.Count("cache.expired", 1)
			return nil, false, ctx.Err()
		}
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)
	span.Count("cache.miss", 1)

	e.rep, e.err = eval()
	if e.err != nil {
		// Forget failures (cancellation, invalid config) so the key can
		// be retried; waiters on this flight still observe the error.
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.ready)
	return e.rep, false, e.err
}

// CacheStats is a point-in-time snapshot of a cache's counters, in the
// shape the HTTP service's /metrics endpoint exports.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Expired int64 `json:"expired"`
	Entries int   `json:"entries"`
}

// Stats snapshots the cache's counters. The counters are read
// individually, so a snapshot taken during a sweep is approximate (each
// field is itself exact).
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:    c.Hits(),
		Misses:  c.Misses(),
		Expired: c.Expired(),
		Entries: c.Len(),
	}
}

// Hits reports how many Do calls received a result without running eval.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses reports how many Do calls ran eval.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Expired reports how many Do calls waited on another caller's in-flight
// evaluation but saw their own context end first. Such calls received no
// report and are counted as neither hits nor misses.
func (c *Cache) Expired() int64 { return c.expired.Load() }

// Len reports the number of stored results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
