package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/obs/cost"
	"github.com/inca-arch/inca/internal/sim"
)

// ErrEvalPanic reports an eval function that panicked inside Cache.Do;
// the panic is converted into this error (wrapping the panic value's
// rendering) so one broken cell cannot kill its worker goroutine,
// deadlock the waiters coalesced onto its flight, or leave a dead entry
// poisoning the key forever. It mirrors ErrMapPanic and
// sim.ErrSimulatorPanic, and like them it is terminal: a panic is a
// programming error, not a transient fault, so the retry layer does not
// re-run it — but the key itself is forgotten, so a later caller (or an
// explicit retry policy with a custom classifier) can re-evaluate.
var ErrEvalPanic = errors.New("sweep: cell evaluation panicked")

// Tier is a second result tier consulted when the in-memory cache
// misses — the seam the persistent store (internal/store) plugs into.
// Get returns the report stored under a canonical cell-key string;
// Put stores a freshly evaluated one. Implementations must be safe for
// concurrent use and must never fail the caller: a broken disk degrades
// Get to a miss and Put to a no-op. The singleflight layer above
// guarantees at most one Get and one Put in flight per key.
type Tier interface {
	Get(key string) (*sim.Report, bool)
	Put(key string, rep *sim.Report)
}

// Cache memoizes simulation reports by cell key with singleflight-style
// deduplication: when several goroutines ask for the same key
// concurrently, exactly one runs the simulation and the rest block until
// its result lands. Successful reports are retained for the cache's
// lifetime (they are a few KB each); failed evaluations are forgotten so
// a later caller with, say, a live context can retry.
//
// A Cache is safe for concurrent use and may be shared across sweeps —
// cmd/inca-experiments shares one cache across all experiments of a run,
// so Fig. 11 and Fig. 14 evaluate their common cells once.
//
// With a Tier attached (SetTier), the cache is two-level: a memory miss
// consults the tier before evaluating, and a successful evaluation is
// written through, so results survive the process. Tier lookups ride the
// same singleflight entry as evaluations — concurrent callers of a cold
// key trigger one disk read, not one each.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*cacheEntry
	tier    Tier

	hits      atomic.Int64
	misses    atomic.Int64
	diskHits  atomic.Int64
	expired   atomic.Int64
	coalesced atomic.Int64
}

type cacheEntry struct {
	ready chan struct{} // closed once rep/err are final
	rep   *sim.Report
	err   error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[Key]*cacheEntry)}
}

// SetTier attaches (or, with nil, detaches) the cache's second tier.
// Safe to call concurrently with Do; flights already past their tier
// lookup finish under the old tier.
func (c *Cache) SetTier(t Tier) {
	c.mu.Lock()
	c.tier = t
	c.mu.Unlock()
}

// Do returns the memoized report for key, running eval at most once per
// key across all concurrent callers. cached reports true when this call
// did not run eval itself (a stored result, the attached Tier, or
// another goroutine's in-flight evaluation). Waiting callers unblock
// with ctx's error if their context ends first; such a call received
// nothing from the cache, so it reports cached=false and counts as
// neither hit nor miss — it is tallied by Expired instead (the flight it
// abandoned may still land for future callers). Hits() therefore counts
// only calls that actually received a result without running eval, and
// Misses() only calls that ran eval.
//
// An eval that panics is recovered and surfaced as ErrEvalPanic: the
// waiters coalesced onto the flight observe the error and unblock, and
// the key is forgotten so it stays retriable. The flight always lands —
// ready closes on every path.
//
// Callers must treat the returned report as immutable: cache hits alias
// the same *sim.Report.
func (c *Cache) Do(ctx context.Context, key Key, eval func() (*sim.Report, error)) (rep *sim.Report, cached bool, err error) {
	// Trace tally: the same hit/miss/expired classification the global
	// counters record, attributed to the span (if any) and the cost
	// tally (if any) this call runs under — one nil check per call each
	// when untraced/untallied.
	span := obs.FromContext(ctx)
	tally := cost.FromContext(ctx)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		// Prefer a result that is already final over a raced Done — a
		// completed flight should never be reported as an expired wait.
		select {
		case <-e.ready:
			c.hits.Add(1)
			span.Count("cache.hit", 1)
			tally.CacheHit()
			return e.rep, true, e.err
		default:
		}
		select {
		case <-e.ready:
			c.hits.Add(1)
			span.Count("cache.hit", 1)
			tally.CacheHit()
			return e.rep, true, e.err
		case <-ctx.Done():
			c.expired.Add(1)
			span.Count("cache.expired", 1)
			tally.CacheExpired()
			return nil, false, ctx.Err()
		}
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	tier := c.tier
	c.mu.Unlock()

	// The flight must always land, whatever happens below: forget failed
	// entries (so the key is retriable), then wake every waiter. Both in
	// one defer so the map is consistent before anyone unblocks.
	defer func() {
		if e.err != nil {
			c.mu.Lock()
			delete(c.entries, key)
			c.mu.Unlock()
		}
		close(e.ready)
	}()

	// Second tier: a persisted result short-circuits evaluation. The
	// lookup runs inside the flight, so concurrent callers of a cold key
	// cost one disk read.
	if tier != nil {
		if stored, ok := tier.Get(key.String()); ok {
			c.diskHits.Add(1)
			span.Count("cache.disk_hit", 1)
			tally.CacheDiskHit()
			e.rep = stored
			return e.rep, true, nil
		}
	}

	c.misses.Add(1)
	span.Count("cache.miss", 1)
	tally.CacheMiss()
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				e.rep, e.err = nil, fmt.Errorf("%w: %s: %v", ErrEvalPanic, key, rec)
			}
		}()
		e.rep, e.err = eval()
	}()
	if e.err == nil && tier != nil {
		tier.Put(key.String(), e.rep)
	}
	return e.rep, false, e.err
}

// CacheStats is a point-in-time snapshot of a cache's counters, in the
// shape the HTTP service's /metrics endpoint exports.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	DiskHits int64 `json:"disk_hits"`
	Expired  int64 `json:"expired"`
	// CoalescedHits counts whole requests served from another caller's
	// in-flight execution by the HTTP service's coalescing layer — the
	// request-level analogue of Hits. The counter lives here, next to
	// the per-cell dedup counters, so batching efficacy is observable
	// alongside disk_hits in every stats surface; the cache itself never
	// increments it (the coalescer calls AddCoalesced).
	CoalescedHits int64 `json:"coalesced_hits"`
	Entries       int   `json:"entries"`
}

// Stats snapshots the cache's counters. The counters are read
// individually, so a snapshot taken during a sweep is approximate (each
// field is itself exact).
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:          c.Hits(),
		Misses:        c.Misses(),
		DiskHits:      c.DiskHits(),
		Expired:       c.Expired(),
		CoalescedHits: c.CoalescedHits(),
		Entries:       c.Len(),
	}
}

// AddCoalesced records n requests served by the coalescing layer from
// another caller's in-flight execution, without touching this cache.
func (c *Cache) AddCoalesced(n int64) { c.coalesced.Add(n) }

// CoalescedHits reports how many whole requests the coalescing layer
// served from another caller's in-flight execution.
func (c *Cache) CoalescedHits() int64 { return c.coalesced.Load() }

// Hits reports how many Do calls received a result without running eval
// or touching the second tier: stored results and coalesced flights.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses reports how many Do calls ran eval.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// DiskHits reports how many Do calls were served by the attached Tier
// instead of evaluating. Zero when no tier is attached.
func (c *Cache) DiskHits() int64 { return c.diskHits.Load() }

// Expired reports how many Do calls waited on another caller's in-flight
// evaluation but saw their own context end first. Such calls received no
// report and are counted as neither hits nor misses.
func (c *Cache) Expired() int64 { return c.expired.Load() }

// Len reports the number of stored results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
