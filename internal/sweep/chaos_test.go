package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/fault"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/tensor"
)

// TestEvalPanicUnblocksWaiters is the regression test for the
// eval-panic deadlock: a panic inside Cache.Do's eval used to skip
// close(e.ready), hanging every concurrent waiter coalesced onto the
// key forever and leaving a dead entry that poisoned all future
// callers. Now the panic is recovered into ErrEvalPanic, every waiter
// unblocks with it, and the key stays retriable. The panic is injected
// through a real fault.KindPanic rule so the test exercises the same
// path a chaos run does.
func TestEvalPanicUnblocksWaiters(t *testing.T) {
	cache := NewCache()
	key := Key{Arch: "inca", Config: "fixed", Network: "lenet5", Phase: sim.Inference}
	site := "sweep/cell/" + key.String()

	inj := fault.New(1)
	inj.Add(fault.Rule{Site: "sweep/cell/*", Kind: fault.KindPanic, Max: 1})

	entered := make(chan struct{})
	release := make(chan struct{})
	const waiters = 8
	errs := make([]error, waiters+1)
	var wg sync.WaitGroup

	// Leader: holds the flight open until the waiters have piled on,
	// then panics via the injector.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, errs[0] = cache.Do(context.Background(), key, func() (*sim.Report, error) {
			close(entered)
			<-release
			return nil, inj.Hit(context.Background(), site)
		})
	}()
	<-entered
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = cache.Do(context.Background(), key, func() (*sim.Report, error) {
				t.Error("waiter ran eval; singleflight broken")
				return nil, nil
			})
		}(i)
	}
	// Let the waiters reach the ready-channel wait, then fire the panic.
	time.Sleep(10 * time.Millisecond)
	close(release)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: waiters never unblocked after eval panic")
	}
	for i, err := range errs {
		if !errors.Is(err, ErrEvalPanic) {
			t.Fatalf("caller %d err = %v, want ErrEvalPanic", i, err)
		}
	}

	// The key must be forgotten, not poisoned: the next caller
	// re-evaluates and succeeds.
	rep, cached, err := cache.Do(context.Background(), key, func() (*sim.Report, error) {
		return &sim.Report{Arch: "inca"}, nil
	})
	if err != nil || cached || rep.Arch != "inca" {
		t.Fatalf("panicked key must stay retriable: rep=%v cached=%v err=%v", rep, cached, err)
	}
	if n := cache.Len(); n != 1 {
		t.Fatalf("cache holds %d entries, want 1 (the retried success)", n)
	}
}

// TestSweepSurvivesInjectedPanic runs a whole sweep with a KindPanic
// rule armed at the cell sites: exactly one cell surfaces ErrEvalPanic
// in its Result, every sibling completes normally, and re-running the
// plan against the same cache heals the failed cell — panics are
// terminal for the attempt but never for the key.
func TestSweepSurvivesInjectedPanic(t *testing.T) {
	a := Arch{
		Name:  "chaos",
		Fixed: true,
		Build: func(arch.Config) (sim.Simulator, error) { return fixedSim{}, nil },
	}
	nets := make([]*nn.Network, 6)
	for i := range nets {
		nets[i] = &nn.Network{Name: fmt.Sprintf("net-%d", i)}
	}
	plan := Plan{Archs: []Arch{a}, Networks: nets, Phases: []sim.Phase{sim.Inference}}

	inj := fault.New(3)
	inj.Add(fault.Rule{Site: "sweep/cell/*", Kind: fault.KindPanic, Max: 1})
	cache := NewCache()
	results, err := Run(context.Background(), plan, Options{Workers: 4, Cache: cache, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	panicked := 0
	for _, r := range results {
		switch {
		case errors.Is(r.Err, ErrEvalPanic):
			panicked++
		case r.Err != nil:
			t.Fatalf("cell %s: unexpected error %v", r.Cell.Key(), r.Err)
		case r.Report == nil:
			t.Fatalf("cell %s: clean cell missing report", r.Cell.Key())
		}
	}
	if panicked != 1 {
		t.Fatalf("injected 1 panic, saw %d ErrEvalPanic results", panicked)
	}

	// Same cache, injector exhausted: the panicked key re-evaluates
	// cleanly, the rest are cache hits.
	results, err = Run(context.Background(), plan, Options{Workers: 4, Cache: cache, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %s still failing after retry run: %v", r.Cell.Key(), r.Err)
		}
	}
	if misses := cache.Misses(); misses != int64(len(nets)+1) {
		t.Fatalf("misses = %d, want %d (initial cells + one healed retry)", misses, len(nets)+1)
	}
}

// fixedSim returns a constant report instantly.
type fixedSim struct{}

func (fixedSim) Simulate(_ context.Context, net *nn.Network, phase sim.Phase) (*sim.Report, error) {
	var r metrics.Result
	r.Latency = 1
	return &sim.Report{Arch: "chaos", Network: net.Name, Phase: phase, Batch: 1, Total: r}, nil
}

// TestAbandonedStreamRestoresKernelBudget is the leak test for the
// abandoned-consumer bug: a caller that stops draining Stream's channel
// used to leave workers blocked on their sends, so restoreKernels never
// ran and the process-wide tensor budget stayed at the run's override
// forever. The buffered channel makes the run independent of its
// consumer: the budget is restored and every goroutine exits even when
// the caller reads nothing at all.
func TestAbandonedStreamRestoresKernelBudget(t *testing.T) {
	prev := tensor.Parallelism()
	baseline := runtime.NumGoroutine()

	var slow atomic.Int64
	a := Arch{
		Name:  "abandon",
		Fixed: true,
		Build: func(arch.Config) (sim.Simulator, error) {
			slow.Add(1)
			return fixedSim{}, nil
		},
	}
	nets := make([]*nn.Network, 16)
	for i := range nets {
		nets[i] = &nn.Network{Name: fmt.Sprintf("net-%02d", i)}
	}
	plan := Plan{Archs: []Arch{a}, Networks: nets, Phases: []sim.Phase{sim.Inference}}

	ch, err := Stream(context.Background(), plan, Options{Workers: 4, KernelParallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Read one result, then walk away without draining or cancelling —
	// the abusive consumer the drain contract must survive.
	<-ch
	ch = nil

	deadline := time.Now().Add(10 * time.Second)
	for tensor.Parallelism() != prev {
		if time.Now().After(deadline) {
			t.Fatalf("kernel budget stuck at %d; restore never ran (want %d)", tensor.Parallelism(), prev)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := slow.Load(); got != int64(len(nets)) {
		t.Fatalf("abandoned run evaluated %d cells, want all %d", got, len(nets))
	}
}
