package sweep

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"github.com/inca-arch/inca/internal/fault"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/tensor"
)

// Span names emitted by the engine when the run's context carries a
// trace (obs.StartSpan is a no-op otherwise). SpanCell covers one
// cell's whole evaluation — queue wait, every retry, backoff — with
// attributes for the cell key, attempt count, cached-ness, and
// queue_wait_s (launch-to-pickup on the worker pool). SpanAttempt is
// one child per evaluation attempt, so fault-injected retries are
// visible as separate spans carrying the attempt's error.
const (
	SpanCell    = "sweep/cell"
	SpanAttempt = "sweep/attempt"
)

// RetryPolicy retries transiently-failed cells with capped exponential
// backoff and jitter. The zero value disables retries.
type RetryPolicy struct {
	// MaxAttempts bounds evaluation attempts per cell, including the
	// first; <= 1 means a single attempt (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; <= 0 means 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; <= 0 means 250ms.
	MaxDelay time.Duration
	// Seed drives the jitter streams. Each cell derives its own stream
	// from Seed and its key, so a run's retry schedule is reproducible at
	// any worker count.
	Seed int64
}

// Options tunes one engine run.
type Options struct {
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Cache memoizes cell results. nil gives the run a private cache;
	// pass a shared one to deduplicate across sweeps.
	Cache *Cache
	// KernelParallelism, when > 0, installs that tensor-kernel worker
	// budget (tensor.SetParallelism) while the run drains and restores
	// the previous budget afterwards — the handoff that keeps cells'
	// nested kernel parallelism from oversubscribing the sweep's own
	// worker pool (with W workers on P procs, max(1, P/W) keeps total
	// concurrency near P). The budget is process-wide: when several runs
	// overlap, set it once at startup instead of per run.
	KernelParallelism int
	// Retry re-evaluates cells whose failure classifies as transient,
	// isolating flaky evaluations from the rest of the sweep: other cells
	// keep draining while a retried cell backs off. Terminal failures
	// (invalid configs, context errors) are never retried.
	Retry RetryPolicy
	// IsTransient classifies a cell error as retryable. nil means
	// fault.IsTransient: errors carrying the transient marker retry,
	// everything else — including context errors — is terminal.
	IsTransient func(error) bool
	// Inject, when non-nil, injects faults at site "sweep/cell/<key>"
	// before each evaluation attempt — the deterministic chaos hook.
	// Each cell key draws from its own seeded stream, so injected fault
	// schedules reproduce at any worker count.
	Inject *fault.Injector
	// OnResult, when non-nil, observes every completed cell of a
	// RunCells run as it drains, in completion order. Calls are made
	// serially from the consuming goroutine, so the hook needs no
	// locking of its own — it is the progress checkpoint the job
	// subsystem journals per-cell completion through.
	OnResult func(Result)
}

func (o Options) workers(cells int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Result is one completed (or failed) cell evaluation.
type Result struct {
	Cell   Cell
	Report *sim.Report // nil when Err != nil
	// Cached reports that the cell was served by the memoization cache
	// (or coalesced onto another goroutine's in-flight evaluation).
	Cached bool
	// Attempts counts the evaluation attempts this cell took, 1 for a
	// clean first pass; values above 1 mean transient failures were
	// retried away.
	Attempts int
	Err      error
}

// Stream expands the plan and launches the sweep, returning a channel on
// which exactly one Result per cell arrives in completion order. The
// channel closes once every cell has reported. Cancelling ctx stops new
// evaluations; cells that never ran surface with Err set to ctx's error.
// An invalid plan is reported synchronously and launches nothing.
//
// The channel is buffered to the full cell count, so the run never
// blocks on its consumer: a caller that stops draining mid-sweep leaks
// no goroutines and cannot wedge the worker pool — every cell still
// lands in the buffer, the channel still closes, and the process-wide
// kernel budget installed via Options.KernelParallelism is still
// restored. Abandoning the channel without cancelling ctx lets the
// remaining cells evaluate in the background; cancel ctx to stop paying
// for them (they complete immediately with the context error).
func Stream(ctx context.Context, p Plan, opt Options) (<-chan Result, error) {
	cells, err := p.Cells()
	if err != nil {
		return nil, err
	}
	return streamCells(ctx, cells, opt, func(_ int, r Result) Result { return r }), nil
}

// indexedResult pairs a Result with its position in the launched cell
// slice, so callers that run explicit cell lists (RunCells) can restore
// input order without relying on Cell.Seq — shard subsets carry sparse
// Seq values from the coordinating plan.
type indexedResult struct {
	idx int
	res Result
}

// streamCells is the engine core shared by Stream, Run, and RunCells:
// it fans the given cells out on the worker pool and returns a channel
// carrying one value per cell in completion order (mk shapes each
// emission — workers send directly, with no intermediate hop). The
// channel is buffered to the cell count, so abandoning the consumer
// never wedges the pool and the kernel-budget handoff is always
// restored.
func streamCells[T any](ctx context.Context, cells []Cell, opt Options, mk func(int, Result) T) <-chan T {
	cache := opt.Cache
	if cache == nil {
		cache = NewCache()
	}

	restoreKernels := func() {}
	if opt.KernelParallelism > 0 {
		prev := tensor.SetParallelism(opt.KernelParallelism)
		restoreKernels = func() { tensor.SetParallelism(prev) }
	}

	// Launch time on the tracer's clock (zero when the run is untraced):
	// each cell's span reports queue_wait_s — launch-to-pickup latency on
	// the worker pool — against this reference.
	launch := obs.ContextTracer(ctx).Now()

	type job struct {
		idx  int
		cell Cell
	}
	feed := make(chan job)
	// Buffered to the cell count: sends below never block, which is what
	// guarantees restoreKernels runs (and goroutines exit) even when the
	// consumer walks away. One Result per cell is a few words; even a
	// 100k-cell grid buffers only megabytes.
	out := make(chan T, len(cells))
	var wg sync.WaitGroup
	for i := 0; i < opt.workers(len(cells)); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range feed {
				out <- mk(j.idx, evaluate(ctx, cache, j.cell, opt, launch))
			}
		}()
	}
	go func() {
		for i, cell := range cells {
			feed <- job{idx: i, cell: cell}
		}
		close(feed)
		wg.Wait()
		restoreKernels()
		close(out)
	}()
	return out
}

// evaluate runs one cell through the cache, honoring cancellation at
// cell granularity and retrying transient failures per the run's policy.
// Failure isolation is per cell: a retrying cell backs off on its own
// worker while the rest of the sweep keeps draining, and a terminal
// failure lands in this cell's Result without aborting siblings.
func evaluate(ctx context.Context, cache *Cache, cell Cell, opt Options, launch time.Time) Result {
	key := cell.Key()
	site := "sweep/cell/" + key.String()
	attrs := []obs.Attr{
		obs.String("key", key.String()),
		obs.String("arch", key.Arch),
		obs.String("network", key.Network),
		obs.String("phase", cell.Phase.String()),
		obs.String("override", cell.Override),
	}
	if key.Dataflow != "" {
		attrs = append(attrs, obs.String("dataflow", key.Dataflow))
	}
	ctx, span := obs.StartSpan(ctx, SpanCell, attrs...)
	if span != nil && !launch.IsZero() {
		span.SetAttr(obs.Float64("queue_wait_s", span.StartTime().Sub(launch).Seconds()))
	}
	res := evaluateAttempts(ctx, cache, cell, key, site, opt)
	if span != nil {
		span.SetAttr(obs.Int("attempts", res.Attempts), obs.Bool("cached", res.Cached))
		span.EndWith(res.Err)
	}
	return res
}

// evaluateAttempts is evaluate's retry loop, running under the cell
// span (when traced) so each attempt becomes a visible child span.
func evaluateAttempts(ctx context.Context, cache *Cache, cell Cell, key Key, site string, opt Options) Result {
	classify := opt.IsTransient
	if classify == nil {
		classify = fault.IsTransient
	}
	maxAttempts := opt.Retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var backoff *fault.Backoff
	res := Result{Cell: cell}
	for {
		if err := ctx.Err(); err != nil {
			res.Err = err
			return res
		}
		res.Attempts++
		attemptCtx, attempt := obs.StartSpan(ctx, SpanAttempt, obs.Int("attempt", res.Attempts))
		res.Report, res.Cached, res.Err = cache.Do(attemptCtx, key, func() (*sim.Report, error) {
			if err := opt.Inject.Hit(attemptCtx, site); err != nil {
				return nil, err
			}
			s, err := cell.Arch.Build(cell.Config)
			if err != nil {
				return nil, err
			}
			return s.Simulate(attemptCtx, cell.Network, cell.Phase)
		})
		attempt.EndWith(res.Err)
		if res.Err == nil || res.Attempts >= maxAttempts || !classify(res.Err) || ctx.Err() != nil {
			return res
		}
		if backoff == nil {
			backoff = fault.NewBackoff(opt.Retry.BaseDelay, retryMaxDelay(opt.Retry),
				opt.Retry.Seed^keyJitterSeed(key))
		}
		delay := backoff.Delay(res.Attempts - 1)
		obs.FromContext(ctx).Event("backoff", obs.Int("attempt", res.Attempts), obs.Float64("delay_s", delay.Seconds()))
		if err := fault.Sleep(ctx, delay); err != nil {
			// The context ended mid-backoff: the cell never got its retry,
			// so it carries the context error like any unexecuted cell.
			res.Err = err
			return res
		}
	}
}

// retryMaxDelay resolves the policy's backoff cap.
func retryMaxDelay(p RetryPolicy) time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return 250 * time.Millisecond
}

// keyJitterSeed derives a per-cell jitter stream from the cell key, so
// retry schedules do not depend on which worker picked the cell up.
func keyJitterSeed(k Key) int64 {
	h := fnv.New64a()
	fmt.Fprint(h, k.String())
	return int64(h.Sum64())
}

// Run executes the plan and returns one Result per cell in deterministic
// plan order (Cell.Seq), regardless of completion order. Per-cell
// failures are reported in each Result's Err; Run's own error is
// non-nil only for an invalid plan, or for an ended context that actually
// cost the run some cells (the returned slice then still has one entry
// per cell, the unexecuted ones carrying the context error). A context
// that ends only after every cell completed does not invalidate the
// results, so Run reports nil.
func Run(ctx context.Context, p Plan, opt Options) ([]Result, error) {
	ch, err := Stream(ctx, p, opt)
	if err != nil {
		return nil, err
	}
	var results []Result
	for r := range ch {
		results = append(results, r)
	}
	// Completion order → plan order. Seq values are a permutation of
	// 0..n-1, so a direct placement sort is linear and stable.
	ordered := make([]Result, len(results))
	for _, r := range results {
		ordered[r.Cell.Seq] = r
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		for _, r := range ordered {
			if r.Err != nil && errors.Is(r.Err, ctxErr) {
				return ordered, ctxErr
			}
		}
	}
	return ordered, nil
}

// RunCells executes an explicit cell list — not a plan cross product —
// and returns one Result per cell in input order. It is the execution
// primitive behind the cluster shard endpoint: a coordinator partitions
// a plan's cells across peers by cache key, and each peer evaluates its
// arbitrary subset here. Cell.Seq values are preserved untouched (they
// index the coordinating plan, not this list), so ordering is by slice
// position. Error semantics match Run: per-cell failures land in each
// Result, and RunCells' own error is non-nil only for a context that
// ended before every cell completed.
func RunCells(ctx context.Context, cells []Cell, opt Options) ([]Result, error) {
	ordered := make([]Result, len(cells))
	for ir := range streamCells(ctx, cells, opt, func(i int, r Result) indexedResult { return indexedResult{i, r} }) {
		ordered[ir.idx] = ir.res
		if opt.OnResult != nil {
			opt.OnResult(ir.res)
		}
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		for _, r := range ordered {
			if r.Err != nil && errors.Is(r.Err, ctxErr) {
				return ordered, ctxErr
			}
		}
	}
	return ordered, nil
}

// ErrMapPanic reports an f that panicked inside Map; the panic is
// converted into this error (wrapping the panic value's rendering) so a
// broken item cannot kill the worker pool or leak its siblings.
var ErrMapPanic = errors.New("sweep: Map function panicked")

// Map runs f over items on at most workers goroutines (<= 0 means
// GOMAXPROCS) and returns the outputs in item order. It is the engine's
// fan-out primitive for work that is not a configuration sweep —
// cmd/inca-experiments uses it to parallelize whole experiments.
//
// Failure isolation: the first error stops new items from being fed, but
// already-started siblings always run to completion before Map returns —
// no goroutine outlives the call, and no in-flight item is abandoned
// mid-write. Items never started are left at their zero value. The first
// error in item order among attempted items (including the context's,
// for items skipped after cancellation, and ErrMapPanic for an f that
// panicked) is returned alongside the partially-filled results.
func Map[T, R any](ctx context.Context, workers int, items []T, f func(context.Context, T) (R, error)) ([]R, error) {
	n := len(items)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]R, n)
	errs := make([]error, n)
	idx := make(chan int)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range idx {
				select {
				case <-stop:
					// Halted: the feeder's send may have raced the stop
					// signal, so drain the feed without starting new items.
					// Skipped items keep their zero value and nil error.
					continue
				default:
				}
				if err := ctx.Err(); err != nil {
					errs[j] = err
				} else {
					func() {
						defer func() {
							if rec := recover(); rec != nil {
								errs[j] = fmt.Errorf("%w: %v", ErrMapPanic, rec)
							}
						}()
						results[j], errs[j] = f(ctx, items[j])
					}()
				}
				if errs[j] != nil {
					halt()
				}
			}
		}()
	}
	// Feed until done or halted; then drain every started worker before
	// returning, so an early error cannot leak goroutines still writing
	// into results.
feed:
	for j := 0; j < n; j++ {
		select {
		case idx <- j:
		case <-stop:
			break feed
		}
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
