package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/tensor"
)

// Options tunes one engine run.
type Options struct {
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Cache memoizes cell results. nil gives the run a private cache;
	// pass a shared one to deduplicate across sweeps.
	Cache *Cache
	// KernelParallelism, when > 0, installs that tensor-kernel worker
	// budget (tensor.SetParallelism) while the run drains and restores
	// the previous budget afterwards — the handoff that keeps cells'
	// nested kernel parallelism from oversubscribing the sweep's own
	// worker pool (with W workers on P procs, max(1, P/W) keeps total
	// concurrency near P). The budget is process-wide: when several runs
	// overlap, set it once at startup instead of per run.
	KernelParallelism int
}

func (o Options) workers(cells int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Result is one completed (or failed) cell evaluation.
type Result struct {
	Cell   Cell
	Report *sim.Report // nil when Err != nil
	// Cached reports that the cell was served by the memoization cache
	// (or coalesced onto another goroutine's in-flight evaluation).
	Cached bool
	Err    error
}

// Stream expands the plan and launches the sweep, returning a channel on
// which exactly one Result per cell arrives in completion order. The
// channel closes once every cell has reported. Cancelling ctx stops new
// evaluations; cells that never ran surface with Err set to ctx's error.
// An invalid plan is reported synchronously and launches nothing.
func Stream(ctx context.Context, p Plan, opt Options) (<-chan Result, error) {
	cells, err := p.Cells()
	if err != nil {
		return nil, err
	}
	cache := opt.Cache
	if cache == nil {
		cache = NewCache()
	}

	restoreKernels := func() {}
	if opt.KernelParallelism > 0 {
		prev := tensor.SetParallelism(opt.KernelParallelism)
		restoreKernels = func() { tensor.SetParallelism(prev) }
	}

	feed := make(chan Cell)
	out := make(chan Result)
	var wg sync.WaitGroup
	for i := 0; i < opt.workers(len(cells)); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cell := range feed {
				out <- evaluate(ctx, cache, cell)
			}
		}()
	}
	go func() {
		for _, cell := range cells {
			feed <- cell
		}
		close(feed)
		wg.Wait()
		restoreKernels()
		close(out)
	}()
	return out, nil
}

// evaluate runs one cell through the cache, honoring cancellation at
// cell granularity.
func evaluate(ctx context.Context, cache *Cache, cell Cell) Result {
	if err := ctx.Err(); err != nil {
		return Result{Cell: cell, Err: err}
	}
	rep, cached, err := cache.Do(ctx, cell.Key(), func() (*sim.Report, error) {
		s, err := cell.Arch.Build(cell.Config)
		if err != nil {
			return nil, err
		}
		return s.Simulate(ctx, cell.Network, cell.Phase)
	})
	return Result{Cell: cell, Report: rep, Cached: cached, Err: err}
}

// Run executes the plan and returns one Result per cell in deterministic
// plan order (Cell.Seq), regardless of completion order. Per-cell
// failures are reported in each Result's Err; Run's own error is
// non-nil only for an invalid plan, or for an ended context that actually
// cost the run some cells (the returned slice then still has one entry
// per cell, the unexecuted ones carrying the context error). A context
// that ends only after every cell completed does not invalidate the
// results, so Run reports nil.
func Run(ctx context.Context, p Plan, opt Options) ([]Result, error) {
	ch, err := Stream(ctx, p, opt)
	if err != nil {
		return nil, err
	}
	var results []Result
	for r := range ch {
		results = append(results, r)
	}
	// Completion order → plan order. Seq values are a permutation of
	// 0..n-1, so a direct placement sort is linear and stable.
	ordered := make([]Result, len(results))
	for _, r := range results {
		ordered[r.Cell.Seq] = r
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		for _, r := range ordered {
			if r.Err != nil && errors.Is(r.Err, ctxErr) {
				return ordered, ctxErr
			}
		}
	}
	return ordered, nil
}

// Map runs f over items on at most workers goroutines (<= 0 means
// GOMAXPROCS) and returns the outputs in item order. It is the engine's
// fan-out primitive for work that is not a configuration sweep —
// cmd/inca-experiments uses it to parallelize whole experiments. The
// first error (including the context's, for items never started) is
// returned alongside the partially-filled results.
func Map[T, R any](ctx context.Context, workers int, items []T, f func(context.Context, T) (R, error)) ([]R, error) {
	n := len(items)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]R, n)
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range idx {
				if err := ctx.Err(); err != nil {
					errs[j] = err
					continue
				}
				results[j], errs[j] = f(ctx, items[j])
			}
		}()
	}
	for j := 0; j < n; j++ {
		idx <- j
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
