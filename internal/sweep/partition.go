package sweep

// Partition splits cells among owners by cache key: each cell is
// assigned to owner(cell.Key()), and cells sharing an owner keep their
// relative order. It is the scatter half of the cluster's scatter/gather
// sweep — the coordinator's consistent-hash ring supplies the owner
// function, so two cells with equal keys always land on the same peer
// and the peer's memo cache deduplicates them exactly as a single node
// would.
//
// The returned map's slices alias nothing: mutating them does not affect
// the input. Owners that receive no cells are absent from the map.
func Partition(cells []Cell, owner func(Key) string) map[string][]Cell {
	parts := make(map[string][]Cell)
	for _, c := range cells {
		o := owner(c.Key())
		parts[o] = append(parts[o], c)
	}
	return parts
}
