// Package sweep is the concurrent evaluation engine behind the paper's
// cross-product studies: {INCA, WS baseline, GPU} × networks × phases ×
// configuration overrides. A declarative Plan expands into Cells, a
// bounded worker pool fans the cells out, a keyed result cache memoizes
// repeated (config, network, phase) cells with singleflight-style
// deduplication, and results stream back as they complete — or are
// collected in deterministic plan order.
package sweep

import (
	"errors"
	"fmt"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/baseline"
	"github.com/inca-arch/inca/internal/core"
	"github.com/inca-arch/inca/internal/gpu"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// Plan expansion errors.
var (
	ErrEmptyPlan   = errors.New("sweep: plan has no architectures, networks, or phases")
	ErrNilBuild    = errors.New("sweep: architecture has no Build function")
	ErrNilNetwork  = errors.New("sweep: plan contains a nil network")
	ErrNilOverride = errors.New("sweep: override has no Apply function")
)

// Arch names one architecture axis of a sweep: a base configuration and
// a builder that turns a (possibly overridden) configuration into a
// simulator.
type Arch struct {
	Name string
	// Base is the configuration overrides are applied to.
	Base arch.Config
	// Build constructs a simulator for one resolved configuration. It is
	// called once per distinct cell key; the returned simulator must be
	// safe for concurrent use.
	Build func(arch.Config) (sim.Simulator, error)
	// Fixed marks architectures whose model ignores Config (the GPU
	// roofline): overrides do not fork new cells, so every override of a
	// fixed arch shares one cache key.
	Fixed bool
}

// INCAArch returns the paper's INCA accelerator as a sweep axis.
func INCAArch() Arch {
	cfg := arch.INCA()
	return Arch{Name: cfg.Name, Base: cfg, Build: buildConfigured}
}

// BaselineArch returns the 2D WS baseline as a sweep axis.
func BaselineArch() Arch {
	cfg := arch.Baseline()
	return Arch{Name: cfg.Name, Base: cfg, Build: buildConfigured}
}

// GPUArch returns the Titan RTX roofline model as a sweep axis.
func GPUArch() Arch {
	spec := gpu.TitanRTX()
	return Arch{
		Name:  spec.Name,
		Fixed: true,
		Build: func(arch.Config) (sim.Simulator, error) {
			return sim.Wrap(gpu.New(spec)), nil
		},
	}
}

// ConfigArch wraps an explicit configuration (e.g. one loaded from JSON)
// as a sweep axis, selecting the IS or WS model by its Dataflow field.
func ConfigArch(cfg arch.Config) Arch {
	return Arch{Name: cfg.Name, Base: cfg, Build: buildConfigured}
}

// buildConfigured selects the accelerator model by dataflow, validating
// the configuration first (the legacy constructors panic on bad input).
func buildConfigured(cfg arch.Config) (sim.Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Dataflow == arch.InputStationary {
		return sim.Wrap(core.New(cfg)), nil
	}
	return sim.Wrap(baseline.New(cfg)), nil
}

// Override is one named configuration transform of the sweep's config
// axis (e.g. "batch=16" setting BatchSize).
type Override struct {
	Name  string
	Apply func(arch.Config) arch.Config
}

// Plan declares a sweep as the cross product of its axes. Overrides may
// be empty, meaning every architecture runs its base configuration.
type Plan struct {
	Archs     []Arch
	Networks  []*nn.Network
	Phases    []sim.Phase
	Overrides []Override
}

// Key identifies a memoizable cell. Two cells with equal keys produce
// byte-identical reports, so the cache evaluates only one of them.
type Key struct {
	Arch    string
	Config  string // arch.Config.Fingerprint(), or "fixed" for Fixed archs
	Network string
	Phase   sim.Phase
}

// String renders the key for logs and test failures.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s/%s", k.Arch, k.Config, k.Network, k.Phase)
}

// Cell is one fully-resolved evaluation of the plan's cross product.
type Cell struct {
	// Seq is the cell's position in deterministic plan order
	// (archs, outermost, then overrides, networks, phases).
	Seq      int
	Arch     Arch
	Override string // name of the applied override, "" for the base config
	Config   arch.Config
	Network  *nn.Network
	Phase    sim.Phase
}

// Key returns the cell's cache key.
func (c Cell) Key() Key {
	cfgID := "fixed"
	if !c.Arch.Fixed {
		cfgID = c.Config.Fingerprint()
	}
	return Key{Arch: c.Arch.Name, Config: cfgID, Network: c.Network.Name, Phase: c.Phase}
}

// Cells expands the plan into its deterministic cell sequence,
// validating the axes. Fixed architectures ignore the override axis but
// still produce one cell per override so result tables stay rectangular;
// the cache collapses them to a single evaluation.
func (p Plan) Cells() ([]Cell, error) {
	if len(p.Archs) == 0 || len(p.Networks) == 0 || len(p.Phases) == 0 {
		return nil, ErrEmptyPlan
	}
	overrides := p.Overrides
	if len(overrides) == 0 {
		overrides = []Override{{}}
	}
	var cells []Cell
	for _, a := range p.Archs {
		if a.Build == nil {
			return nil, fmt.Errorf("%w: %s", ErrNilBuild, a.Name)
		}
		for _, ov := range overrides {
			cfg := a.Base
			if ov.Name != "" || ov.Apply != nil {
				if ov.Apply == nil {
					return nil, fmt.Errorf("%w: %s", ErrNilOverride, ov.Name)
				}
				if !a.Fixed {
					cfg = ov.Apply(cfg)
				}
			}
			for _, net := range p.Networks {
				if net == nil {
					return nil, ErrNilNetwork
				}
				for _, ph := range p.Phases {
					cells = append(cells, Cell{
						Seq:      len(cells),
						Arch:     a,
						Override: ov.Name,
						Config:   cfg,
						Network:  net,
						Phase:    ph,
					})
				}
			}
		}
	}
	return cells, nil
}
