// Package sweep is the concurrent evaluation engine behind the paper's
// cross-product studies: {INCA, WS baseline, GPU} × networks × phases ×
// configuration overrides. A declarative Plan expands into Cells, a
// bounded worker pool fans the cells out, a keyed result cache memoizes
// repeated (config, network, phase) cells with singleflight-style
// deduplication, and results stream back as they complete — or are
// collected in deterministic plan order.
package sweep

import (
	"errors"
	"fmt"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"

	// The paper's backends register themselves with the dataflow
	// registry; the sweep package links them in so every registry-built
	// plan works out of the box.
	_ "github.com/inca-arch/inca/internal/baseline"
	_ "github.com/inca-arch/inca/internal/core"
	_ "github.com/inca-arch/inca/internal/gpu"
	_ "github.com/inca-arch/inca/internal/outstat"
)

// Plan expansion errors.
var (
	ErrEmptyPlan   = errors.New("sweep: plan has no architectures, networks, or phases")
	ErrNilBuild    = errors.New("sweep: architecture has no Build function")
	ErrNilNetwork  = errors.New("sweep: plan contains a nil network")
	ErrNilOverride = errors.New("sweep: override has no Apply function")
)

// Arch names one architecture axis of a sweep: a base configuration and
// a builder that turns a (possibly overridden) configuration into a
// simulator.
type Arch struct {
	Name string
	// Dataflow is the registry ID of the backend evaluating this axis
	// ("is", "ws", "os", "gpu"). It is part of every cell's cache key,
	// so identical configs under different dataflows never collide in
	// the memo cache. Empty for hand-built axes that predate the
	// registry; such axes key on name+config alone, as before.
	Dataflow string
	// Base is the configuration overrides are applied to.
	Base arch.Config
	// Build constructs a simulator for one resolved configuration. It is
	// called once per distinct cell key; the returned simulator must be
	// safe for concurrent use.
	Build func(arch.Config) (sim.Simulator, error)
	// Fixed marks architectures whose model ignores Config (the GPU
	// roofline): overrides do not fork new cells, so every override of a
	// fixed arch shares one cache key.
	Fixed bool
}

// INCAArch returns the paper's INCA accelerator as a sweep axis.
func INCAArch() Arch {
	cfg := arch.INCA()
	return Arch{Name: cfg.Name, Dataflow: dataflow.FromConfig(cfg), Base: cfg, Build: buildConfigured}
}

// BaselineArch returns the 2D WS baseline as a sweep axis.
func BaselineArch() Arch {
	cfg := arch.Baseline()
	return Arch{Name: cfg.Name, Dataflow: dataflow.FromConfig(cfg), Base: cfg, Build: buildConfigured}
}

// OutStatArch returns the output-stationary comparison point as a sweep
// axis (inference only — training cells fail with
// dataflow.ErrUnsupportedPhase).
func OutStatArch() Arch {
	cfg := arch.OutStationary()
	return Arch{Name: cfg.Name, Dataflow: dataflow.FromConfig(cfg), Base: cfg, Build: buildConfigured}
}

// GPUArch returns the Titan RTX roofline model as a sweep axis.
func GPUArch() Arch {
	a, err := DataflowArch("gpu")
	if err != nil {
		// The gpu package is linked in above; its registration cannot be
		// missing.
		panic(err)
	}
	return a
}

// ConfigArch wraps an explicit configuration (e.g. one loaded from JSON)
// as a sweep axis, selecting the backend by its Dataflow field.
func ConfigArch(cfg arch.Config) Arch {
	return Arch{Name: cfg.Name, Dataflow: dataflow.FromConfig(cfg), Base: cfg, Build: buildConfigured}
}

// DataflowArch resolves a registered dataflow backend — by ID or any
// alias Normalize accepts — into a sweep axis running its default
// configuration.
func DataflowArch(id string) (Arch, error) {
	d, err := dataflow.Get(id)
	if err != nil {
		return Arch{}, err
	}
	caps := d.Capabilities()
	cfg := d.DefaultConfig()
	name := cfg.Name
	if name == "" {
		name = caps.Name
	}
	return Arch{
		Name:     name,
		Dataflow: d.ID(),
		Base:     cfg,
		Build:    d.New,
		Fixed:    !caps.Configurable,
	}, nil
}

// buildConfigured routes a configuration to its registered backend by
// Dataflow field. Validation happens inside the backend's constructor.
func buildConfigured(cfg arch.Config) (sim.Simulator, error) {
	d, err := dataflow.Get(dataflow.FromConfig(cfg))
	if err != nil {
		return nil, err
	}
	return d.New(cfg)
}

// Override is one named configuration transform of the sweep's config
// axis (e.g. "batch=16" setting BatchSize).
type Override struct {
	Name  string
	Apply func(arch.Config) arch.Config
}

// Plan declares a sweep as the cross product of its axes. Overrides may
// be empty, meaning every architecture runs its base configuration.
type Plan struct {
	Archs     []Arch
	Networks  []*nn.Network
	Phases    []sim.Phase
	Overrides []Override
}

// Key identifies a memoizable cell. Two cells with equal keys produce
// byte-identical reports, so the cache evaluates only one of them. The
// Dataflow component keeps identical configs under different backends
// apart — without it, two registry backends sharing an arch name and
// fingerprint would alias in the memo cache.
type Key struct {
	Arch     string
	Dataflow string // backend registry ID, "" for pre-registry axes
	Config   string // arch.Config.Fingerprint(), or "fixed" for Fixed archs
	Network  string
	Phase    sim.Phase
}

// String renders the key for logs, fault-injection sites, and test
// failures. Pre-registry keys (empty Dataflow) render in the legacy
// four-segment form.
func (k Key) String() string {
	if k.Dataflow == "" {
		return fmt.Sprintf("%s/%s/%s/%s", k.Arch, k.Config, k.Network, k.Phase)
	}
	return fmt.Sprintf("%s/%s/%s/%s/%s", k.Arch, k.Dataflow, k.Config, k.Network, k.Phase)
}

// Cell is one fully-resolved evaluation of the plan's cross product.
type Cell struct {
	// Seq is the cell's position in deterministic plan order
	// (archs, outermost, then overrides, networks, phases).
	Seq      int
	Arch     Arch
	Override string // name of the applied override, "" for the base config
	Config   arch.Config
	Network  *nn.Network
	Phase    sim.Phase
}

// Dataflow returns the registry ID of the backend evaluating this cell.
func (c Cell) Dataflow() string { return c.Arch.Dataflow }

// Key returns the cell's cache key.
func (c Cell) Key() Key {
	cfgID := "fixed"
	if !c.Arch.Fixed {
		cfgID = c.Config.Fingerprint()
	}
	return Key{Arch: c.Arch.Name, Dataflow: c.Arch.Dataflow, Config: cfgID, Network: c.Network.Name, Phase: c.Phase}
}

// Cells expands the plan into its deterministic cell sequence,
// validating the axes. Fixed architectures ignore the override axis but
// still produce one cell per override so result tables stay rectangular;
// the cache collapses them to a single evaluation.
func (p Plan) Cells() ([]Cell, error) {
	if len(p.Archs) == 0 || len(p.Networks) == 0 || len(p.Phases) == 0 {
		return nil, ErrEmptyPlan
	}
	overrides := p.Overrides
	if len(overrides) == 0 {
		overrides = []Override{{}}
	}
	var cells []Cell
	for _, a := range p.Archs {
		if a.Build == nil {
			return nil, fmt.Errorf("%w: %s", ErrNilBuild, a.Name)
		}
		for _, ov := range overrides {
			cfg := a.Base
			if ov.Name != "" || ov.Apply != nil {
				if ov.Apply == nil {
					return nil, fmt.Errorf("%w: %s", ErrNilOverride, ov.Name)
				}
				if !a.Fixed {
					cfg = ov.Apply(cfg)
				}
			}
			for _, net := range p.Networks {
				if net == nil {
					return nil, ErrNilNetwork
				}
				for _, ph := range p.Phases {
					cells = append(cells, Cell{
						Seq:      len(cells),
						Arch:     a,
						Override: ov.Name,
						Config:   cfg,
						Network:  net,
						Phase:    ph,
					})
				}
			}
		}
	}
	return cells, nil
}
