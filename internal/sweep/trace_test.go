package sweep

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/inca-arch/inca/internal/fault"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/sim"
)

// traceClock is a deterministic tracer clock: every reading advances
// exactly one tick, so span timestamps are pinned regardless of
// scheduling.
type traceClock struct {
	mu   sync.Mutex
	now  time.Time
	tick time.Duration
}

func (c *traceClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.tick)
	return c.now
}

func smallPlan() Plan {
	return Plan{
		Archs:    []Arch{INCAArch()},
		Networks: []*nn.Network{nn.LeNet5()},
		Phases:   []sim.Phase{sim.Inference},
	}
}

// TestTracedSweepCellSpans pins the sweep layer's span contract under
// injected faults: every cell gets a sweep/cell span whose attempts
// attribute matches the Result, each attempt appears as a sweep/attempt
// child (failed ones carrying the attempt's error), cache counters land
// on the attempt spans, and queue_wait_s is present and non-negative on
// the deterministic clock.
func TestTracedSweepCellSpans(t *testing.T) {
	clk := &traceClock{now: time.Unix(1000, 0), tick: time.Millisecond}
	tr := obs.NewTracer(obs.WithClock(clk.Now), obs.WithRing(1024), obs.WithIDSeed(7))

	inj := fault.New(11)
	inj.Add(fault.Rule{Site: "sweep/cell/*", Kind: fault.KindError, Prob: 0.5})

	ctx, root := tr.Start(context.Background(), "test/sweep")
	results, err := Run(ctx, smallPlan(), Options{
		Workers: 2,
		Retry:   retryOpts(11),
		Inject:  inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := tr.Ring().Trace(root.TraceID())
	byID := make(map[string]obs.SpanData, len(spans))
	var cellSpans []obs.SpanData
	attemptsByParent := make(map[string][]obs.SpanData)
	for _, sd := range spans {
		byID[sd.SpanID] = sd
		switch sd.Name {
		case SpanCell:
			cellSpans = append(cellSpans, sd)
		case SpanAttempt:
			attemptsByParent[sd.ParentID] = append(attemptsByParent[sd.ParentID], sd)
		}
	}
	if len(cellSpans) != len(results) {
		t.Fatalf("%d sweep/cell spans for %d cells", len(cellSpans), len(results))
	}

	resByKey := make(map[string]Result, len(results))
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %s failed despite retries: %v", r.Cell.Key(), r.Err)
		}
		resByKey[r.Cell.Key().String()] = r
	}

	sawRetry := false
	for _, cs := range cellSpans {
		if cs.ParentID != root.SpanID() {
			t.Errorf("cell span parent = %s, want root %s", cs.ParentID, root.SpanID())
		}
		keyV, ok := cs.Attr("key")
		if !ok {
			t.Fatal("cell span missing key attribute")
		}
		res, ok := resByKey[keyV.(string)]
		if !ok {
			t.Fatalf("cell span for unknown key %v", keyV)
		}
		att, ok := cs.Attr("attempts")
		if !ok {
			t.Fatalf("cell %v span missing attempts", keyV)
		}
		if att.(int64) != int64(res.Attempts) {
			t.Errorf("cell %v span attempts = %v, result has %d", keyV, att, res.Attempts)
		}
		cached, ok := cs.Attr("cached")
		if !ok || cached.(bool) != res.Cached {
			t.Errorf("cell %v span cached = %v (ok=%v), result has %v", keyV, cached, ok, res.Cached)
		}
		qw, ok := cs.Attr("queue_wait_s")
		if !ok {
			t.Fatalf("cell %v span missing queue_wait_s", keyV)
		}
		if qw.(float64) < 0 {
			t.Errorf("cell %v queue_wait_s = %v, want >= 0", keyV, qw)
		}
		// One attempt child per attempt, numbered from 1; failed attempts
		// carry their error, the last (successful) one does not.
		kids := attemptsByParent[cs.SpanID]
		if len(kids) != res.Attempts {
			t.Fatalf("cell %v has %d attempt spans, result says %d attempts", keyV, len(kids), res.Attempts)
		}
		seen := make(map[int64]obs.SpanData, len(kids))
		for _, k := range kids {
			n, ok := k.Attr("attempt")
			if !ok {
				t.Fatal("attempt span missing attempt number")
			}
			seen[n.(int64)] = k
		}
		misses := int64(0)
		for i := int64(1); i <= int64(res.Attempts); i++ {
			k, ok := seen[i]
			if !ok {
				t.Fatalf("cell %v missing attempt span #%d", keyV, i)
			}
			_, hasErr := k.Attr("error")
			if i < int64(res.Attempts) && !hasErr {
				t.Errorf("cell %v attempt %d should carry its transient error", keyV, i)
			}
			if i == int64(res.Attempts) && hasErr {
				t.Errorf("cell %v final attempt unexpectedly carries an error", keyV)
			}
			misses += k.Counters["cache.miss"]
		}
		if res.Attempts > 1 {
			sawRetry = true
			// Each retried attempt re-enters the cache as a fresh miss
			// (failures are forgotten), so misses accumulate per attempt.
			if misses != int64(res.Attempts) {
				t.Errorf("cell %v cache.miss total = %d across %d attempts", keyV, misses, res.Attempts)
			}
		}
		// Every attempt span nests inside [cell start, cell end] on the
		// deterministic clock, and the cell nests inside the root.
		for _, k := range kids {
			if k.Start.Before(cs.Start) || k.End.After(cs.End) {
				t.Errorf("attempt span [%v, %v] escapes cell span [%v, %v]", k.Start, k.End, cs.Start, cs.End)
			}
		}
		rootData, ok := byID[root.SpanID()]
		if !ok {
			t.Fatal("root span not in ring")
		}
		if cs.Start.Before(rootData.Start) || cs.End.After(rootData.End) {
			t.Error("cell span escapes root span bounds")
		}
	}
	if !sawRetry {
		t.Fatal("probability-0.5 faults never forced a retry; attempt-span error checks did not exercise")
	}
}

// TestTracedCacheHitSpans pins that a duplicate cell served from the
// cache produces a span with cached=true and a cache.hit counter on its
// single attempt.
func TestTracedCacheHitSpans(t *testing.T) {
	clk := &traceClock{now: time.Unix(2000, 0), tick: time.Millisecond}
	tr := obs.NewTracer(obs.WithClock(clk.Now), obs.WithRing(256), obs.WithIDSeed(3))
	cache := NewCache()

	// First run warms the cache; second run must hit it.
	if _, err := Run(context.Background(), smallPlan(), Options{Workers: 1, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	ctx, root := tr.Start(context.Background(), "test/sweep")
	results, err := Run(ctx, smallPlan(), Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if len(results) != 1 || !results[0].Cached {
		t.Fatalf("second run should be fully cached: %+v", results)
	}

	var hitCount int64
	for _, sd := range tr.Ring().Trace(root.TraceID()) {
		switch sd.Name {
		case SpanCell:
			if v, _ := sd.Attr("cached"); v != true {
				t.Errorf("cached cell span has cached = %v", v)
			}
		case SpanAttempt:
			hitCount += sd.Counters["cache.hit"]
			if sd.Counters["cache.miss"] != 0 {
				t.Error("cached run recorded a cache.miss on its attempt span")
			}
		}
	}
	if hitCount != 1 {
		t.Fatalf("cache.hit total = %d, want 1", hitCount)
	}
}

// TestUntracedSweepRuns pins the off path: with no tracer in the
// context the instrumented engine still runs cleanly (and emits
// nothing, trivially — there is no ring to emit into).
func TestUntracedSweepRuns(t *testing.T) {
	results, err := Run(context.Background(), smallPlan(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %s: %v", r.Cell.Key(), r.Err)
		}
	}
}

// TestBackoffEventsOnCellSpan pins that retry backoffs surface as
// events on the cell span (not the attempt spans), one per sleep.
func TestBackoffEventsOnCellSpan(t *testing.T) {
	clk := &traceClock{now: time.Unix(3000, 0), tick: time.Millisecond}
	tr := obs.NewTracer(obs.WithClock(clk.Now), obs.WithRing(256), obs.WithIDSeed(5))
	inj := fault.New(1)
	inj.Add(fault.Rule{Site: "sweep/cell/*", Kind: fault.KindError, Max: 2})

	ctx, root := tr.Start(context.Background(), "test/sweep")
	results, err := Run(ctx, smallPlan(), Options{Workers: 1, Retry: retryOpts(1), Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if results[0].Attempts != 3 {
		t.Fatalf("Max:2 injection should force exactly 3 attempts, got %d", results[0].Attempts)
	}
	for _, sd := range tr.Ring().Trace(root.TraceID()) {
		if sd.Name != SpanCell {
			continue
		}
		var backoffs int
		for _, ev := range sd.Events {
			if ev.Name == "backoff" {
				backoffs++
				if len(ev.Attrs) == 0 || !strings.HasPrefix(ev.Attrs[0].Key, "attempt") {
					t.Errorf("backoff event missing attempt attr: %+v", ev)
				}
			}
		}
		if backoffs != 2 {
			t.Errorf("cell span has %d backoff events, want 2 (one per retry sleep)", backoffs)
		}
	}
}
