package access

import (
	"testing"

	"github.com/inca-arch/inca/internal/nn"
)

func TestFetchPerOutputEq5(t *testing.T) {
	// VGG16 conv2: 3x3 kernel over 64 channels, 8-bit, 256-bit bus:
	// ceil(3*3*64*8/256) = ceil(4608/256) = 18.
	l := nn.Layer{Kind: nn.Conv, InC: 64, KH: 3, KW: 3, OutC: 64, OutH: 224, OutW: 224}
	if got := FetchPerOutput(l, 8, 256); got != 18 {
		t.Fatalf("Eq5 = %d, want 18", got)
	}
	// Non-divisible case: ceil(3*3*3*8/256) = ceil(216/256) = 1.
	l1 := nn.Layer{Kind: nn.Conv, InC: 3, KH: 3, KW: 3}
	if got := FetchPerOutput(l1, 8, 256); got != 1 {
		t.Fatalf("Eq5 first layer = %d, want 1", got)
	}
	// 16-bit doubles it: ceil(432/256) = 2.
	if got := FetchPerOutput(l1, 16, 256); got != 2 {
		t.Fatalf("Eq5 16-bit = %d, want 2", got)
	}
}

func TestSavePerLayerEq6(t *testing.T) {
	// ceil(64*8/256) * 224 * 224 = 2 * 50176 = 100352.
	l := nn.Layer{Kind: nn.Conv, InC: 3, KH: 3, KW: 3, OutC: 64, OutH: 224, OutW: 224}
	if got := SavePerLayer(l, 8, 256); got != 100352 {
		t.Fatalf("Eq6 = %d, want 100352", got)
	}
	pool := nn.Layer{Kind: nn.MaxPool}
	if got := SavePerLayer(pool, 8, 256); got != 0 {
		t.Fatalf("non-compute layer should not save: %d", got)
	}
}

// TestTableIIIINCAVGG16 pins the Table III INCA estimate for VGG16: with
// 8-bit precision and a 256-bit bus, Σ Eq.(5)×N over the 13 conv layers is
// 459,712 — the paper reports 460,000.
func TestTableIIIINCAVGG16(t *testing.T) {
	got := CountNetwork(nn.VGG16(), 8, 256)
	if got.INCA != 459712 {
		t.Fatalf("INCA VGG16 accesses = %d, want 459712 (paper: 460,000)", got.INCA)
	}
}

// TestTableIIIShape verifies the qualitative Table III facts across all
// six networks: the baseline always needs more accesses, and the VGGs see
// larger WS/IS ratios than the ResNets.
func TestTableIIIShape(t *testing.T) {
	results := map[string]NetworkAccesses{}
	for _, net := range nn.PaperModels() {
		r := CountNetwork(net, 8, 256)
		results[net.Name] = r
		if r.Baseline <= r.INCA {
			t.Errorf("%s: baseline %d should exceed INCA %d", net.Name, r.Baseline, r.INCA)
		}
	}
	if results["VGG16"].Ratio() <= results["ResNet18"].Ratio() {
		t.Errorf("VGG16 ratio %.2f should exceed ResNet18 ratio %.2f",
			results["VGG16"].Ratio(), results["ResNet18"].Ratio())
	}
	if results["VGG19"].Ratio() <= results["ResNet50"].Ratio() {
		t.Errorf("VGG19 ratio %.2f should exceed ResNet50 ratio %.2f",
			results["VGG19"].Ratio(), results["ResNet50"].Ratio())
	}
}

// TestFig7aSixteenBit checks the Fig. 7a setting (16-bit precision): WS
// needs substantially more accesses for every network. The paper's own
// Table III ratios are 1.4× (ResNet50) to 3.9× (MobileNetV2), so the bound
// here is >1.3× with VGGs above 3×.
func TestFig7aSixteenBit(t *testing.T) {
	for _, net := range nn.PaperModels() {
		r := CountNetwork(net, 16, 256)
		if r.Ratio() < 1.3 {
			t.Errorf("%s: WS/IS ratio %.2f, want >= 1.3", net.Name, r.Ratio())
		}
	}
	for _, net := range []string{"VGG16", "VGG19"} {
		n, err := nn.ByName(net)
		if err != nil {
			t.Fatal(err)
		}
		if r := CountNetwork(n, 16, 256); r.Ratio() < 3 {
			t.Errorf("%s: WS/IS ratio %.2f, want >= 3", net, r.Ratio())
		}
	}
}

// TestFig7bUnrollBlowup verifies the direct-convolution motivation: the
// unrolled representation needs several times more RRAM for every network,
// with ResNet50 (1x1-heavy) the least affected, matching the paper's
// ordering (4.4x, 5.0x, 8.0x, 2.1x for VGG16/19, ResNet18/50).
func TestFig7bUnrollBlowup(t *testing.T) {
	ratios := map[string]float64{}
	for _, net := range nn.HeavyModels() {
		u := CountUnroll(net)
		ratios[net.Name] = u.Ratio()
		if u.Ratio() <= 1.5 {
			t.Errorf("%s: unroll ratio %.2f, want > 1.5", net.Name, u.Ratio())
		}
	}
	if ratios["ResNet50"] >= ratios["ResNet18"] {
		t.Errorf("ResNet50 ratio %.2f should be the smallest (vs ResNet18 %.2f)",
			ratios["ResNet50"], ratios["ResNet18"])
	}
	if ratios["ResNet50"] >= ratios["VGG16"] {
		t.Errorf("ResNet50 ratio %.2f should be below VGG16 %.2f",
			ratios["ResNet50"], ratios["VGG16"])
	}
}

func TestISDepthwiseUsesPerChannelKernels(t *testing.T) {
	// Depthwise 3x3 over 32 channels, 8-bit/256-bit: per-channel kernel is
	// 9 elements -> 1 access, × 32 channels = 32.
	l := nn.Layer{Kind: nn.Depthwise, InC: 32, OutC: 32, KH: 3, KW: 3, OutH: 10, OutW: 10}
	if got := ISLayerAccesses(l, 8, 256); got != 32 {
		t.Fatalf("IS depthwise accesses = %d, want 32", got)
	}
}

func TestRatioZeroINCA(t *testing.T) {
	n := NetworkAccesses{Baseline: 10, INCA: 0}
	if n.Ratio() != 0 {
		t.Fatal("zero-INCA ratio should be 0, not a division panic")
	}
	u := UnrollBlowup{Unrolled: 10, Direct: 0}
	if u.Ratio() != 0 {
		t.Fatal("zero-direct ratio should be 0")
	}
}

func TestNonComputeLayersIgnored(t *testing.T) {
	relu := nn.Layer{Kind: nn.ReLU}
	if WSLayerAccesses(relu, 8, 256) != 0 || ISLayerAccesses(relu, 8, 256) != 0 {
		t.Fatal("non-compute layers should contribute no accesses")
	}
}
