// Package access implements the paper's analytical memory-access model:
// Eq. (5) and Eq. (6), the Table III buffer-access estimates for the WS
// baseline and INCA, the Fig. 7a network-level comparison, and the
// Fig. 7b unrolled-vs-direct RRAM parameter blow-up.
package access

import (
	"github.com/inca-arch/inca/internal/nn"
)

// ceilDiv returns ceil(a / b) for positive b.
func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

// FetchPerOutput implements Eq. (5): the number of bus transactions needed
// to fetch the operand data (one kernel's worth: K_H × K_W × C elements)
// that produces one output element:
//
//	ceil(K_H × K_W × C × bit_precision / bus_width)
//
// For FC layers the "kernel" is the whole input vector.
func FetchPerOutput(l nn.Layer, precBits, busBits int64) int64 {
	depth := l.AccumulationDepth()
	if depth == 0 {
		return 0
	}
	return ceilDiv(depth*precBits, busBits)
}

// SavePerLayer implements Eq. (6): the accesses needed to save a layer's
// outputs, with all N channel values of one position packed per transfer:
//
//	ceil(N × bit_precision / bus_width) × O_H × O_W
func SavePerLayer(l nn.Layer, precBits, busBits int64) int64 {
	if !l.IsCompute() {
		return 0
	}
	return ceilDiv(int64(l.OutC)*precBits, busBits) * int64(l.OutH) * int64(l.OutW)
}

// WSLayerAccesses returns the Table III baseline estimate for one layer:
// Eq. (5) × O_H × O_W + Eq. (6). The WS pipeline (ISAAC) must fetch the
// input window for every output position and immediately redirect every
// output to eDRAM.
func WSLayerAccesses(l nn.Layer, precBits, busBits int64) int64 {
	if !l.IsCompute() {
		return 0
	}
	fetch := FetchPerOutput(l, precBits, busBits) * int64(l.OutH) * int64(l.OutW)
	return fetch + SavePerLayer(l, precBits, busBits)
}

// ISLayerAccesses returns the Table III INCA estimate for one layer:
// Eq. (5) × N. IS reuses a fetched filter for the whole output channel, so
// fetches scale with the number of kernels, and outputs propagate directly
// to the next layer's RRAM arrays rather than through buffers.
func ISLayerAccesses(l nn.Layer, precBits, busBits int64) int64 {
	if !l.IsCompute() {
		return 0
	}
	switch l.Kind {
	case nn.Conv:
		return FetchPerOutput(l, precBits, busBits) * int64(l.OutC)
	case nn.Depthwise:
		// One single-channel kernel per channel.
		return ceilDiv(int64(l.KH)*int64(l.KW)*precBits, busBits) * int64(l.OutC)
	case nn.FC:
		return FetchPerOutput(l, precBits, busBits) * int64(l.OutC)
	default:
		return 0
	}
}

// NetworkAccesses sums a model over a network's convolution layers
// (Table III counts conv layers; FC weights stream identically in both
// designs and are excluded from the comparison, as in the paper).
type NetworkAccesses struct {
	Network  string
	Baseline int64
	INCA     int64
}

// Ratio returns Baseline / INCA (how many times more accesses WS needs).
func (n NetworkAccesses) Ratio() float64 {
	if n.INCA == 0 {
		return 0
	}
	return float64(n.Baseline) / float64(n.INCA)
}

// CountNetwork evaluates both dataflows' conv-layer buffer accesses for a
// network at the given precision and bus width. Table III uses the 8-bit
// Table II precision and 256-bit bus; Fig. 7a uses 16-bit.
func CountNetwork(net *nn.Network, precBits, busBits int64) NetworkAccesses {
	out := NetworkAccesses{Network: net.Name}
	for _, l := range net.ConvLayers() {
		out.Baseline += WSLayerAccesses(l, precBits, busBits)
		out.INCA += ISLayerAccesses(l, precBits, busBits)
	}
	return out
}

// TrainingINCAFactor is the paper's note that "the training process may
// double the accesses in INCA to fetch transposed weight matrices".
const TrainingINCAFactor = 2

// UnrollBlowup quantifies Fig. 7b: the number of RRAM cells an IS design
// would need with GEMM-style unrolled inputs versus direct convolution.
type UnrollBlowup struct {
	Network  string
	Unrolled int64 // input elements after im2col duplication
	Direct   int64 // input elements kept in their original shape
}

// Ratio returns Unrolled / Direct.
func (u UnrollBlowup) Ratio() float64 {
	if u.Direct == 0 {
		return 0
	}
	return float64(u.Unrolled) / float64(u.Direct)
}

// CountUnroll computes the Fig. 7b comparison for a network. Unrolled
// counts every window's duplicated elements (K_H·K_W·C per output
// position); direct counts each layer's input feature map once.
func CountUnroll(net *nn.Network) UnrollBlowup {
	out := UnrollBlowup{Network: net.Name}
	for _, l := range net.ConvLayers() {
		positions := int64(l.OutH) * int64(l.OutW)
		switch l.Kind {
		case nn.Conv:
			out.Unrolled += int64(l.KH) * int64(l.KW) * int64(l.InC) * positions
		case nn.Depthwise:
			out.Unrolled += int64(l.KH) * int64(l.KW) * int64(l.InC) * positions
		}
		out.Direct += l.InputElems()
	}
	return out
}
