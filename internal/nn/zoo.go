package nn

import "fmt"

// builder threads the running feature-map shape through layer construction.
type builder struct {
	net     *Network
	c, h, w int
	seq     int
}

func newBuilder(name string, c, h, w, classes int) *builder {
	return &builder{
		net: &Network{Name: name, InputC: c, InputH: h, InputW: w, Classes: classes},
		c:   c, h: h, w: w,
	}
}

func (b *builder) name(kind string) string {
	b.seq++
	return fmt.Sprintf("%s%d", kind, b.seq)
}

func (b *builder) push(l Layer) {
	b.net.Layers = append(b.net.Layers, l)
	b.c, b.h, b.w = l.OutC, l.OutH, l.OutW
}

func (b *builder) conv(outC, k, stride, pad int) *builder {
	oh := (b.h+2*pad-k)/stride + 1
	ow := (b.w+2*pad-k)/stride + 1
	b.push(Layer{
		Name: b.name("conv"), Kind: Conv,
		InC: b.c, InH: b.h, InW: b.w,
		OutC: outC, OutH: oh, OutW: ow,
		KH: k, KW: k, Stride: stride, Pad: pad,
	})
	return b
}

func (b *builder) dwconv(k, stride, pad int) *builder {
	oh := (b.h+2*pad-k)/stride + 1
	ow := (b.w+2*pad-k)/stride + 1
	b.push(Layer{
		Name: b.name("dw"), Kind: Depthwise,
		InC: b.c, InH: b.h, InW: b.w,
		OutC: b.c, OutH: oh, OutW: ow,
		KH: k, KW: k, Stride: stride, Pad: pad,
	})
	return b
}

func (b *builder) relu() *builder {
	b.push(Layer{
		Name: b.name("relu"), Kind: ReLU,
		InC: b.c, InH: b.h, InW: b.w,
		OutC: b.c, OutH: b.h, OutW: b.w,
	})
	return b
}

func (b *builder) maxpool(k, stride, pad int) *builder {
	oh := (b.h+2*pad-k)/stride + 1
	ow := (b.w+2*pad-k)/stride + 1
	b.push(Layer{
		Name: b.name("pool"), Kind: MaxPool,
		InC: b.c, InH: b.h, InW: b.w,
		OutC: b.c, OutH: oh, OutW: ow,
		KH: k, KW: k, Stride: stride, Pad: pad,
	})
	return b
}

func (b *builder) gap() *builder {
	b.push(Layer{
		Name: b.name("gap"), Kind: GlobalAvgPool,
		InC: b.c, InH: b.h, InW: b.w,
		OutC: b.c, OutH: 1, OutW: 1,
	})
	return b
}

func (b *builder) fc(out int) *builder {
	b.push(Layer{
		Name: b.name("fc"), Kind: FC,
		InC: b.c * b.h * b.w, InH: 1, InW: 1,
		OutC: out, OutH: 1, OutW: 1,
	})
	return b
}

func (b *builder) add() *builder {
	b.push(Layer{
		Name: b.name("add"), Kind: Add,
		InC: b.c, InH: b.h, InW: b.w,
		OutC: b.c, OutH: b.h, OutW: b.w,
	})
	return b
}

func (b *builder) build() *Network {
	if err := b.net.Validate(); err != nil {
		panic(fmt.Sprintf("nn: builder produced inconsistent %s: %v", b.net.Name, err))
	}
	return b.net
}

// vgg builds a VGG topology from a per-stage channel plan; a 0 marks a
// max-pool. fcDims lists the classifier widths.
func vgg(name string, plan []int, inH int, fcDims []int, classes int) *Network {
	b := newBuilder(name, 3, inH, inH, classes)
	for _, ch := range plan {
		if ch == 0 {
			b.maxpool(2, 2, 0)
			continue
		}
		b.conv(ch, 3, 1, 1).relu()
	}
	for _, d := range fcDims {
		b.fc(d).relu()
	}
	b.fc(classes)
	return b.build()
}

// VGG16 returns the 16-layer VGG configuration for 224×224 ImageNet input
// (Simonyan & Zisserman, configuration D).
func VGG16() *Network {
	return vgg("VGG16", []int{
		64, 64, 0,
		128, 128, 0,
		256, 256, 256, 0,
		512, 512, 512, 0,
		512, 512, 512, 0,
	}, 224, []int{4096, 4096}, 1000)
}

// VGG19 returns the 19-layer VGG configuration (E) for ImageNet.
func VGG19() *Network {
	return vgg("VGG19", []int{
		64, 64, 0,
		128, 128, 0,
		256, 256, 256, 256, 0,
		512, 512, 512, 512, 0,
		512, 512, 512, 512, 0,
	}, 224, []int{4096, 4096}, 1000)
}

// VGG16CIFAR is the CIFAR-10 adaptation of VGG16 (32×32 input, compact
// classifier) used by the paper's Fig. 6 energy-breakdown motivation.
func VGG16CIFAR() *Network {
	return vgg("VGG16-CIFAR", []int{
		64, 64, 0,
		128, 128, 0,
		256, 256, 256, 0,
		512, 512, 512, 0,
		512, 512, 512, 0,
	}, 32, []int{512}, 10)
}

// basicBlock appends a ResNet basic block (two 3×3 convs plus identity or
// 1×1 downsample shortcut).
func basicBlock(b *builder, outC, stride int) {
	if stride != 1 || b.c != outC {
		// Projection shortcut: modeled as an extra 1×1 conv on the input.
		inC, inH, inW := b.c, b.h, b.w
		b.conv(outC, 3, stride, 1).relu().conv(outC, 3, 1, 1)
		oh := (inH+2-3)/stride + 1
		b.net.Layers = append(b.net.Layers, Layer{
			Name: b.name("down"), Kind: Conv,
			InC: inC, InH: inH, InW: inW,
			OutC: outC, OutH: oh, OutW: oh,
			KH: 1, KW: 1, Stride: stride, Pad: 0,
			Branch: true,
		})
		b.add().relu()
		return
	}
	b.conv(outC, 3, 1, 1).relu().conv(outC, 3, 1, 1).add().relu()
}

// bottleneckBlock appends a ResNet bottleneck block (1×1 reduce, 3×3, 1×1
// expand ×4) with a projection shortcut where the shape changes.
func bottleneckBlock(b *builder, midC, stride int) {
	outC := midC * 4
	needsProj := stride != 1 || b.c != outC
	inC, inH, inW := b.c, b.h, b.w
	b.conv(midC, 1, 1, 0).relu().
		conv(midC, 3, stride, 1).relu().
		conv(outC, 1, 1, 0)
	if needsProj {
		oh := (inH-1)/stride + 1
		b.net.Layers = append(b.net.Layers, Layer{
			Name: b.name("down"), Kind: Conv,
			InC: inC, InH: inH, InW: inW,
			OutC: outC, OutH: oh, OutW: oh,
			KH: 1, KW: 1, Stride: stride, Pad: 0,
			Branch: true,
		})
	}
	b.add().relu()
}

// ResNet18 returns the 18-layer residual network for ImageNet.
func ResNet18() *Network {
	b := newBuilder("ResNet18", 3, 224, 224, 1000)
	b.conv(64, 7, 2, 3).relu().maxpool(3, 2, 1)
	for _, stage := range []struct{ c, n, s int }{
		{64, 2, 1}, {128, 2, 2}, {256, 2, 2}, {512, 2, 2},
	} {
		for i := 0; i < stage.n; i++ {
			s := 1
			if i == 0 {
				s = stage.s
			}
			basicBlock(b, stage.c, s)
		}
	}
	b.gap().fc(1000)
	return b.build()
}

// ResNet50 returns the 50-layer bottleneck residual network for ImageNet.
func ResNet50() *Network {
	b := newBuilder("ResNet50", 3, 224, 224, 1000)
	b.conv(64, 7, 2, 3).relu().maxpool(3, 2, 1)
	for _, stage := range []struct{ c, n, s int }{
		{64, 3, 1}, {128, 4, 2}, {256, 6, 2}, {512, 3, 2},
	} {
		for i := 0; i < stage.n; i++ {
			s := 1
			if i == 0 {
				s = stage.s
			}
			bottleneckBlock(b, stage.c, s)
		}
	}
	b.gap().fc(1000)
	return b.build()
}

// ResNet18CIFAR is the CIFAR-10 adaptation (3×3 stem, no max-pool) used in
// the Fig. 6 motivation experiment.
func ResNet18CIFAR() *Network {
	b := newBuilder("ResNet18-CIFAR", 3, 32, 32, 10)
	b.conv(64, 3, 1, 1).relu()
	for _, stage := range []struct{ c, n, s int }{
		{64, 2, 1}, {128, 2, 2}, {256, 2, 2}, {512, 2, 2},
	} {
		for i := 0; i < stage.n; i++ {
			s := 1
			if i == 0 {
				s = stage.s
			}
			basicBlock(b, stage.c, s)
		}
	}
	b.gap().fc(10)
	return b.build()
}

// invertedResidual appends a MobileNetV2 inverted-residual block: pointwise
// expansion (factor t), 3×3 depthwise, pointwise linear projection.
func invertedResidual(b *builder, t, outC, stride, kernel int) {
	inC := b.c
	residual := stride == 1 && inC == outC
	if t != 1 {
		b.conv(inC*t, 1, 1, 0).relu()
	}
	b.dwconv(kernel, stride, kernel/2).relu()
	b.conv(outC, 1, 1, 0)
	if residual {
		b.add()
	}
}

// MobileNetV2 returns the MobileNetV2 topology (Sandler et al., CVPR 2018)
// for ImageNet, one of the paper's two "light models".
func MobileNetV2() *Network {
	b := newBuilder("MobileNetV2", 3, 224, 224, 1000)
	b.conv(32, 3, 2, 1).relu()
	for _, blk := range []struct{ t, c, n, s int }{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	} {
		for i := 0; i < blk.n; i++ {
			s := 1
			if i == 0 {
				s = blk.s
			}
			invertedResidual(b, blk.t, blk.c, s, 3)
		}
	}
	b.conv(1280, 1, 1, 0).relu().gap().fc(1000)
	return b.build()
}

// MNasNet returns the MnasNet-B1 topology (Tan et al., CVPR 2019) for
// ImageNet, the paper's second light model.
func MNasNet() *Network {
	b := newBuilder("MNasNet", 3, 224, 224, 1000)
	b.conv(32, 3, 2, 1).relu()
	// SepConv: depthwise 3×3 + pointwise to 16.
	b.dwconv(3, 1, 1).relu().conv(16, 1, 1, 0)
	for _, blk := range []struct{ t, k, c, n, s int }{
		{3, 3, 24, 3, 2},
		{3, 5, 40, 3, 2},
		{6, 5, 80, 3, 2},
		{6, 3, 96, 2, 1},
		{6, 5, 192, 4, 2},
		{6, 3, 320, 1, 1},
	} {
		for i := 0; i < blk.n; i++ {
			s := 1
			if i == 0 {
				s = blk.s
			}
			invertedResidual(b, blk.t, blk.c, s, blk.k)
		}
	}
	b.conv(1280, 1, 1, 0).relu().gap().fc(1000)
	return b.build()
}

// AlexNet returns the 2012 ImageNet winner (Krizhevsky et al.), included
// for zoo breadth beyond the paper's six evaluation networks.
func AlexNet() *Network {
	b := newBuilder("AlexNet", 3, 224, 224, 1000)
	b.conv(64, 11, 4, 2).relu().maxpool(3, 2, 0)
	b.conv(192, 5, 1, 2).relu().maxpool(3, 2, 0)
	b.conv(384, 3, 1, 1).relu()
	b.conv(256, 3, 1, 1).relu()
	b.conv(256, 3, 1, 1).relu().maxpool(3, 2, 0)
	b.fc(4096).relu().fc(4096).relu().fc(1000)
	return b.build()
}

// LeNet5 returns the classic LeNet-5 digit classifier (LeCun et al., 1998),
// referenced by the paper's Limitation 2 discussion (240 KB of weights).
func LeNet5() *Network {
	b := newBuilder("LeNet5", 1, 32, 32, 10)
	b.conv(6, 5, 1, 0).relu().maxpool(2, 2, 0)
	b.conv(16, 5, 1, 0).relu().maxpool(2, 2, 0)
	b.fc(120).relu().fc(84).relu().fc(10)
	return b.build()
}

// PaperModels returns the six ImageNet networks of the paper's evaluation
// in presentation order (VGGs, ResNets, then light models).
func PaperModels() []*Network {
	return []*Network{VGG16(), VGG19(), ResNet18(), ResNet50(), MobileNetV2(), MNasNet()}
}

// HeavyModels returns the four regular-convolution networks (the paper
// discusses light models separately).
func HeavyModels() []*Network {
	return []*Network{VGG16(), VGG19(), ResNet18(), ResNet50()}
}

// LightModels returns the depthwise/pointwise networks.
func LightModels() []*Network {
	return []*Network{MobileNetV2(), MNasNet()}
}

// ByName looks up a zoo network by case-sensitive name.
func ByName(name string) (*Network, error) {
	all := append(PaperModels(), VGG16CIFAR(), ResNet18CIFAR(), LeNet5(), AlexNet())
	for _, n := range all {
		if n.Name == name {
			return n, nil
		}
	}
	return nil, fmt.Errorf("nn: unknown network %q", name)
}
