package nn

import (
	"strings"
	"testing"
)

// tinyNet builds a one-conv network whose geometry the caller can break.
func tinyNet(mut func(*Layer)) *Network {
	l := Layer{
		Name: "c1", Kind: Conv,
		InC: 3, InH: 8, InW: 8,
		OutC: 4, OutH: 8, OutW: 8,
		KH: 3, KW: 3, Stride: 1, Pad: 1,
	}
	if mut != nil {
		mut(&l)
	}
	return &Network{Name: "tiny", InputC: 3, InputH: 8, InputW: 8, Classes: 4, Layers: []Layer{l}}
}

// Regression: Validate accepted kernels larger than the padded input and
// non-positive strides; the geometry check (OutH/OutW) then divided by
// zero or blessed a nonsense negative-size output.
func TestValidateRejectsImpossibleKernelGeometry(t *testing.T) {
	if err := tinyNet(nil).Validate(); err != nil {
		t.Fatalf("baseline net should validate, got %v", err)
	}
	for _, tc := range []struct {
		name string
		mut  func(*Layer)
		want string
	}{
		{"kernel taller than padded input", func(l *Layer) { l.KH = 11 }, "does not fit padded input"},
		{"kernel wider than padded input", func(l *Layer) { l.KW = 11 }, "does not fit padded input"},
		{"zero kernel", func(l *Layer) { l.KH, l.KW = 0, 0 }, "does not fit padded input"},
		{"zero stride", func(l *Layer) { l.Stride = 0 }, "stride 0 must be at least 1"},
		{"negative stride", func(l *Layer) { l.Stride = -2 }, "stride -2 must be at least 1"},
	} {
		err := tinyNet(tc.mut).Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the layer", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// A kernel that exactly fills the padded input is legal.
	exact := tinyNet(func(l *Layer) { l.KH, l.KW = 10, 10; l.OutH, l.OutW = 1, 1 })
	if err := exact.Validate(); err != nil {
		t.Fatalf("exact-fit kernel should validate, got %v", err)
	}
}
