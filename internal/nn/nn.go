// Package nn describes deep neural networks at the architectural level:
// per-layer shapes, kernel geometry, and derived counts (MACs, parameters,
// activations). These layer descriptions drive every analytical experiment
// in the INCA reproduction — the simulators consume shapes, not weights.
//
// The zoo covers the six ImageNet CNNs evaluated in the paper (VGG16,
// VGG19, ResNet18, ResNet50, MobileNetV2, MNasNet) plus the CIFAR-10
// variants used in Fig. 6 and LeNet-5 referenced in §III.A.
package nn

import (
	"fmt"
	"strings"
)

// Kind identifies a layer's operation.
type Kind int

// Layer kinds. Conv covers regular, pointwise (1×1) and strided
// convolutions; Depthwise is a grouped convolution with one filter per
// channel (paper Fig. 3b).
const (
	Conv Kind = iota
	Depthwise
	FC
	MaxPool
	AvgPool
	GlobalAvgPool
	ReLU
	Add // residual element-wise addition
)

// String returns the kind's display name.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case Depthwise:
		return "dwconv"
	case FC:
		return "fc"
	case MaxPool:
		return "maxpool"
	case AvgPool:
		return "avgpool"
	case GlobalAvgPool:
		return "gap"
	case ReLU:
		return "relu"
	case Add:
		return "add"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Layer is a shape-level description of one network layer. For FC layers
// the "spatial" fields are 1×1 and the channel fields carry the vector
// lengths (InC = inputs, OutC = outputs).
type Layer struct {
	Name string
	Kind Kind

	InC, InH, InW    int
	OutC, OutH, OutW int

	KH, KW, Stride, Pad int

	// Branch marks a side-path layer (e.g. a ResNet projection shortcut)
	// whose input taps an earlier point of the network and whose output
	// merges at the next Add; it does not advance the main data stream.
	Branch bool
}

// IsCompute reports whether the layer performs multiply-accumulates
// (convolution, depthwise convolution, or fully-connected).
func (l Layer) IsCompute() bool {
	return l.Kind == Conv || l.Kind == Depthwise || l.Kind == FC
}

// IsPointwise reports whether this is a 1×1 convolution (paper Fig. 3b).
func (l Layer) IsPointwise() bool {
	return l.Kind == Conv && l.KH == 1 && l.KW == 1
}

// MACs returns the number of multiply-accumulate operations in one forward
// pass of a single image.
func (l Layer) MACs() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.OutC) * int64(l.OutH) * int64(l.OutW) *
			int64(l.InC) * int64(l.KH) * int64(l.KW)
	case Depthwise:
		return int64(l.OutC) * int64(l.OutH) * int64(l.OutW) *
			int64(l.KH) * int64(l.KW)
	case FC:
		return int64(l.InC) * int64(l.OutC)
	default:
		return 0
	}
}

// WeightParams returns the number of weight parameters held by the layer.
func (l Layer) WeightParams() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.OutC) * int64(l.InC) * int64(l.KH) * int64(l.KW)
	case Depthwise:
		return int64(l.InC) * int64(l.KH) * int64(l.KW)
	case FC:
		return int64(l.InC) * int64(l.OutC)
	default:
		return 0
	}
}

// InputElems returns the number of input activation elements.
func (l Layer) InputElems() int64 {
	return int64(l.InC) * int64(l.InH) * int64(l.InW)
}

// OutputElems returns the number of output activation elements.
func (l Layer) OutputElems() int64 {
	return int64(l.OutC) * int64(l.OutH) * int64(l.OutW)
}

// AccumulationDepth returns the number of products accumulated into one
// output element — the quantity that determines how many crossbar rows a
// WS design can actually use (paper §V.B.4: "3×3 kernels in depthwise
// convolution only use nine of 128 cells in a column").
func (l Layer) AccumulationDepth() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.InC) * int64(l.KH) * int64(l.KW)
	case Depthwise:
		return int64(l.KH) * int64(l.KW)
	case FC:
		return int64(l.InC)
	default:
		return 0
	}
}

// String renders a one-line layer summary.
func (l Layer) String() string {
	switch l.Kind {
	case Conv, Depthwise:
		return fmt.Sprintf("%s %s %dx%dx%d -> %dx%dx%d k%dx%d s%d p%d",
			l.Name, l.Kind, l.InC, l.InH, l.InW, l.OutC, l.OutH, l.OutW, l.KH, l.KW, l.Stride, l.Pad)
	case FC:
		return fmt.Sprintf("%s fc %d -> %d", l.Name, l.InC, l.OutC)
	default:
		return fmt.Sprintf("%s %s %dx%dx%d -> %dx%dx%d",
			l.Name, l.Kind, l.InC, l.InH, l.InW, l.OutC, l.OutH, l.OutW)
	}
}

// Network is an ordered list of layers with a named topology.
type Network struct {
	Name                   string
	InputC, InputH, InputW int
	Classes                int
	Layers                 []Layer
}

// ComputeLayers returns the MAC-performing layers in execution order.
func (n *Network) ComputeLayers() []Layer {
	var out []Layer
	for _, l := range n.Layers {
		if l.IsCompute() {
			out = append(out, l)
		}
	}
	return out
}

// ConvLayers returns only the spatial convolution layers (regular +
// depthwise), excluding FC.
func (n *Network) ConvLayers() []Layer {
	var out []Layer
	for _, l := range n.Layers {
		if l.Kind == Conv || l.Kind == Depthwise {
			out = append(out, l)
		}
	}
	return out
}

// TotalMACs returns the MAC count of a single-image forward pass.
func (n *Network) TotalMACs() int64 {
	var s int64
	for _, l := range n.Layers {
		s += l.MACs()
	}
	return s
}

// TotalWeights returns the total number of weight parameters.
func (n *Network) TotalWeights() int64 {
	var s int64
	for _, l := range n.Layers {
		s += l.WeightParams()
	}
	return s
}

// TotalActivations returns the total number of activation elements produced
// across all compute layers' inputs (i.e. the data an IS design must hold
// in RRAM for the backward pass).
func (n *Network) TotalActivations() int64 {
	var s int64
	for _, l := range n.Layers {
		if l.IsCompute() {
			s += l.InputElems()
		}
	}
	return s
}

// MaxLayerActivations returns the largest single layer input, the quantity
// that sizes per-layer buffering.
func (n *Network) MaxLayerActivations() int64 {
	var m int64
	for _, l := range n.Layers {
		if l.IsCompute() && l.InputElems() > m {
			m = l.InputElems()
		}
	}
	return m
}

// IsLightModel reports whether the network relies on depthwise/pointwise
// convolution (the paper's "light models": MobileNetV2, MNasNet).
func (n *Network) IsLightModel() bool {
	dw := 0
	for _, l := range n.Layers {
		if l.Kind == Depthwise {
			dw++
		}
	}
	return dw > 0
}

// Summary renders a human-readable layer table with per-layer MACs and
// parameters plus network totals.
func (n *Network) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: input %dx%dx%d, %d classes\n",
		n.Name, n.InputC, n.InputH, n.InputW, n.Classes)
	for _, l := range n.Layers {
		if l.IsCompute() {
			fmt.Fprintf(&b, "  %-44s %12d MACs %10d params\n", l.String(), l.MACs(), l.WeightParams())
		} else {
			fmt.Fprintf(&b, "  %-44s\n", l.String())
		}
	}
	fmt.Fprintf(&b, "  total: %d MACs, %d params, %d activations\n",
		n.TotalMACs(), n.TotalWeights(), n.TotalActivations())
	return b.String()
}

// Validate checks internal consistency: every layer's input shape matches
// the previous layer's output shape and declared output geometry follows
// from the kernel spec. It returns the first inconsistency found.
func (n *Network) Validate() error {
	c, h, w := n.InputC, n.InputH, n.InputW
	for i, l := range n.Layers {
		if l.Branch {
			// A side branch must emit the shape of the stream it merges
			// into; its input comes from an earlier tap we don't track.
			if l.OutC != c || l.OutH != h || l.OutW != w {
				return fmt.Errorf("layer %d (%s): branch output %dx%dx%d does not match stream %dx%dx%d",
					i, l.Name, l.OutC, l.OutH, l.OutW, c, h, w)
			}
			continue
		}
		if l.Kind == Add {
			// Residual adds keep the running shape; their declared shapes
			// must match it.
			if l.InC != c || l.InH != h || l.InW != w {
				return fmt.Errorf("layer %d (%s): add shape %dx%dx%d does not match stream %dx%dx%d",
					i, l.Name, l.InC, l.InH, l.InW, c, h, w)
			}
			continue
		}
		if l.Kind == FC {
			// FC layers implicitly flatten the incoming feature map.
			if l.InC != c*h*w {
				return fmt.Errorf("layer %d (%s): fc input %d does not match flattened %d",
					i, l.Name, l.InC, c*h*w)
			}
		} else if l.InC != c || l.InH != h || l.InW != w {
			return fmt.Errorf("layer %d (%s): input %dx%dx%d does not match previous output %dx%dx%d",
				i, l.Name, l.InC, l.InH, l.InW, c, h, w)
		}
		switch l.Kind {
		case Conv, Depthwise, MaxPool, AvgPool:
			if l.Stride < 1 {
				return fmt.Errorf("layer %d (%s): stride %d must be at least 1", i, l.Name, l.Stride)
			}
			if l.KH < 1 || l.KW < 1 || l.KH > l.InH+2*l.Pad || l.KW > l.InW+2*l.Pad {
				return fmt.Errorf("layer %d (%s): kernel %dx%d does not fit padded input %dx%d (input %dx%d, pad %d)",
					i, l.Name, l.KH, l.KW, l.InH+2*l.Pad, l.InW+2*l.Pad, l.InH, l.InW, l.Pad)
			}
			wantH := (l.InH+2*l.Pad-l.KH)/l.Stride + 1
			wantW := (l.InW+2*l.Pad-l.KW)/l.Stride + 1
			if l.OutH != wantH || l.OutW != wantW {
				return fmt.Errorf("layer %d (%s): declared output %dx%d, geometry gives %dx%d",
					i, l.Name, l.OutH, l.OutW, wantH, wantW)
			}
			if l.Kind == Depthwise && l.OutC != l.InC {
				return fmt.Errorf("layer %d (%s): depthwise must preserve channels", i, l.Name)
			}
		case GlobalAvgPool:
			if l.OutH != 1 || l.OutW != 1 || l.OutC != l.InC {
				return fmt.Errorf("layer %d (%s): global pool must emit Cx1x1", i, l.Name)
			}
		case ReLU:
			if l.OutC != l.InC || l.OutH != l.InH || l.OutW != l.InW {
				return fmt.Errorf("layer %d (%s): relu must preserve shape", i, l.Name)
			}
		case FC:
			if l.InH != 1 || l.InW != 1 || l.OutH != 1 || l.OutW != 1 {
				return fmt.Errorf("layer %d (%s): fc must be 1x1 spatial", i, l.Name)
			}
		}
		c, h, w = l.OutC, l.OutH, l.OutW
	}
	return nil
}
