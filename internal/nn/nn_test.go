package nn

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAllZooNetworksValidate(t *testing.T) {
	nets := append(PaperModels(), VGG16CIFAR(), ResNet18CIFAR(), LeNet5())
	for _, n := range nets {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

// within checks v is inside [lo, hi]; published reference counts have some
// slack because we omit biases and batch-norm parameters.
func within(t *testing.T, name string, v, lo, hi int64) {
	t.Helper()
	if v < lo || v > hi {
		t.Errorf("%s = %d, want within [%d, %d]", name, v, lo, hi)
	}
}

// TestReferenceCounts pins MAC and parameter counts against the published
// figures for each architecture (±10%), catching topology mistakes.
func TestReferenceCounts(t *testing.T) {
	cases := []struct {
		net          *Network
		macs, params int64 // published reference values
	}{
		{VGG16(), 15_470_000_000, 138_000_000},
		{VGG19(), 19_630_000_000, 143_000_000},
		{ResNet18(), 1_820_000_000, 11_600_000},
		{ResNet50(), 4_100_000_000, 25_000_000},
		{MobileNetV2(), 300_000_000, 3_400_000},
		{MNasNet(), 315_000_000, 4_300_000},
	}
	for _, c := range cases {
		m := c.net.TotalMACs()
		p := c.net.TotalWeights()
		within(t, c.net.Name+" MACs", m, c.macs*85/100, c.macs*115/100)
		within(t, c.net.Name+" params", p, c.params*80/100, c.params*105/100)
	}
}

func TestVGG16Shapes(t *testing.T) {
	n := VGG16()
	convs := n.ConvLayers()
	if len(convs) != 13 {
		t.Fatalf("VGG16 conv layers = %d, want 13", len(convs))
	}
	if convs[0].OutH != 224 || convs[0].OutC != 64 {
		t.Fatalf("VGG16 conv1 output = %dx%d ch %d", convs[0].OutH, convs[0].OutW, convs[0].OutC)
	}
	last := convs[len(convs)-1]
	if last.OutH != 14 || last.OutC != 512 {
		t.Fatalf("VGG16 conv13 output = %dx%d ch %d, want 14x14 ch 512", last.OutH, last.OutW, last.OutC)
	}
	// Classifier takes 7*7*512 after the final pool.
	var fcs []Layer
	for _, l := range n.Layers {
		if l.Kind == FC {
			fcs = append(fcs, l)
		}
	}
	if len(fcs) != 3 || fcs[0].InC != 7*7*512 || fcs[2].OutC != 1000 {
		t.Fatalf("VGG16 classifier malformed: %v", fcs)
	}
}

func TestResNet18Shapes(t *testing.T) {
	n := ResNet18()
	// Stem downsamples 224 -> 56.
	convs := n.ConvLayers()
	if convs[0].KH != 7 || convs[0].Stride != 2 {
		t.Fatal("ResNet18 stem is not 7x7/2")
	}
	last := convs[len(convs)-1]
	if last.OutC != 512 || last.OutH != 7 {
		t.Fatalf("ResNet18 final conv = ch %d %dx%d, want 512 7x7", last.OutC, last.OutH, last.OutW)
	}
	// 20 convolutions: stem + 16 block convs + 3 downsample projections.
	if len(convs) != 20 {
		t.Fatalf("ResNet18 conv count = %d, want 20", len(convs))
	}
}

func TestResNet50Shapes(t *testing.T) {
	n := ResNet50()
	convs := n.ConvLayers()
	// stem + 16 blocks * 3 convs + 4 projections = 53.
	if len(convs) != 53 {
		t.Fatalf("ResNet50 conv count = %d, want 53", len(convs))
	}
	last := convs[len(convs)-1]
	if last.OutC != 2048 {
		t.Fatalf("ResNet50 final channels = %d, want 2048", last.OutC)
	}
}

func TestLightModelsAreLight(t *testing.T) {
	for _, n := range LightModels() {
		if !n.IsLightModel() {
			t.Errorf("%s should report IsLightModel", n.Name)
		}
	}
	for _, n := range HeavyModels() {
		if n.IsLightModel() {
			t.Errorf("%s should not report IsLightModel", n.Name)
		}
	}
}

func TestMobileNetV2Shapes(t *testing.T) {
	n := MobileNetV2()
	convs := n.ConvLayers()
	last := convs[len(convs)-1]
	if last.OutC != 1280 || last.OutH != 7 {
		t.Fatalf("MobileNetV2 head = ch %d %dx%d, want 1280 7x7", last.OutC, last.OutH, last.OutW)
	}
	dw := 0
	for _, l := range convs {
		if l.Kind == Depthwise {
			dw++
		}
	}
	if dw != 17 {
		t.Fatalf("MobileNetV2 depthwise count = %d, want 17", dw)
	}
}

func TestMNasNetShapes(t *testing.T) {
	n := MNasNet()
	convs := n.ConvLayers()
	last := convs[len(convs)-1]
	if last.OutC != 1280 || last.OutH != 7 {
		t.Fatalf("MNasNet head = ch %d %dx%d, want 1280 7x7", last.OutC, last.OutH, last.OutW)
	}
	// Some blocks must use 5x5 depthwise kernels.
	has5 := false
	for _, l := range convs {
		if l.Kind == Depthwise && l.KH == 5 {
			has5 = true
		}
	}
	if !has5 {
		t.Fatal("MNasNet should contain 5x5 depthwise layers")
	}
}

func TestAlexNetShapes(t *testing.T) {
	n := AlexNet()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// Published reference: ~61M params (FC-dominated), ~714M MACs.
	within(t, "AlexNet params", n.TotalWeights(), 55_000_000, 65_000_000)
	within(t, "AlexNet MACs", n.TotalMACs(), 600_000_000, 800_000_000)
	convs := n.ConvLayers()
	if len(convs) != 5 || convs[0].KH != 11 || convs[0].Stride != 4 {
		t.Fatalf("AlexNet stem malformed: %v", convs[0])
	}
}

func TestLeNet5Weights(t *testing.T) {
	n := LeNet5()
	// The paper cites ~240 KB of weights for LeNet5 in a 32-bit system
	// (~60K parameters). Ours omits biases: ~61K.
	w := n.TotalWeights()
	within(t, "LeNet5 params", w, 55_000, 65_000)
}

func TestAccumulationDepth(t *testing.T) {
	l := Layer{Kind: Conv, InC: 128, KH: 3, KW: 3}
	if d := l.AccumulationDepth(); d != 1152 {
		t.Fatalf("conv depth = %d, want 1152", d)
	}
	dw := Layer{Kind: Depthwise, InC: 128, KH: 3, KW: 3}
	if d := dw.AccumulationDepth(); d != 9 {
		t.Fatalf("depthwise depth = %d, want 9", d)
	}
	fc := Layer{Kind: FC, InC: 4096}
	if d := fc.AccumulationDepth(); d != 4096 {
		t.Fatalf("fc depth = %d, want 4096", d)
	}
}

func TestByName(t *testing.T) {
	n, err := ByName("VGG16")
	if err != nil || n.Name != "VGG16" {
		t.Fatalf("ByName(VGG16) = %v, %v", n, err)
	}
	if _, err := ByName("NoSuchNet"); err == nil {
		t.Fatal("ByName should fail for unknown network")
	}
}

func TestValidateCatchesBrokenNetwork(t *testing.T) {
	n := VGG16()
	n.Layers[3].InC = 999
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted inconsistent network")
	}
}

func TestKindString(t *testing.T) {
	if Conv.String() != "conv" || Depthwise.String() != "dwconv" || FC.String() != "fc" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

// PROPERTY: for every compute layer of every zoo network, MACs equal
// output elements × accumulation depth.
func TestPropertyMACsDecomposition(t *testing.T) {
	for _, n := range PaperModels() {
		for _, l := range n.Layers {
			if !l.IsCompute() {
				continue
			}
			want := l.OutputElems() * l.AccumulationDepth()
			if l.MACs() != want {
				t.Fatalf("%s %s: MACs %d != out %d × depth %d",
					n.Name, l.Name, l.MACs(), l.OutputElems(), l.AccumulationDepth())
			}
		}
	}
}

// PROPERTY: builder-produced layers always have positive output sizes.
func TestPropertyPositiveShapes(t *testing.T) {
	f := func(choice uint8) bool {
		nets := PaperModels()
		n := nets[int(choice)%len(nets)]
		for _, l := range n.Layers {
			if l.OutC <= 0 || l.OutH <= 0 || l.OutW <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	s := LeNet5().Summary()
	for _, want := range []string{"LeNet5", "conv1", "fc", "total:", "MACs"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}
