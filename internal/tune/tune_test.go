package tune

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/sweep"
)

func TestSearchProducesFrontier(t *testing.T) {
	fronts, err := Search(context.Background(), nn.LeNet5(), Options{})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(fronts) != 1 {
		t.Fatalf("got %d frontiers, want 1", len(fronts))
	}
	f := fronts[0]
	if f.Network != "LeNet5" || f.Phase != sim.Inference {
		t.Fatalf("frontier identity %s/%s", f.Network, f.Phase)
	}
	if f.Failed != 0 {
		t.Errorf("%d candidates failed", f.Failed)
	}
	// All four backends contribute at least their base point.
	if f.Evaluated < 4 {
		t.Errorf("evaluated %d candidates, want >= 4", f.Evaluated)
	}
	if len(f.Pareto) == 0 {
		t.Fatalf("empty Pareto frontier")
	}
	// Frontier members are mutually non-dominated and sorted by energy.
	for i, a := range f.Pareto {
		if i > 0 && f.Pareto[i-1].EnergyJ > a.EnergyJ {
			t.Errorf("frontier not sorted by energy at %d", i)
		}
		for j, b := range f.Pareto {
			if i != j && a.dominates(b) {
				t.Errorf("frontier member %s dominates member %s", a.Label, b.Label)
			}
		}
		if a.EnergyJ <= 0 || a.LatencyS <= 0 || a.AreaMM2 <= 0 {
			t.Errorf("%s: non-positive objective (%v, %v, %v)", a.Label, a.EnergyJ, a.LatencyS, a.AreaMM2)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	opt := Options{Dataflows: []string{"is", "os"}}
	a, err := Search(context.Background(), nn.LeNet5(), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(context.Background(), nn.LeNet5(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Reports alias distinct allocations; compare the numeric frontier.
	strip := func(fs []Frontier) []Frontier {
		out := make([]Frontier, len(fs))
		for i, f := range fs {
			out[i] = f
			out[i].Pareto = append([]Candidate(nil), f.Pareto...)
			for j := range out[i].Pareto {
				out[i].Pareto[j].Report = nil
				out[i].Pareto[j].Cached = false
			}
		}
		return out
	}
	if !reflect.DeepEqual(strip(a), strip(b)) {
		t.Errorf("repeated search disagrees:\n%v\nvs\n%v", a, b)
	}
}

func TestSearchSkipsUnsupportedPhase(t *testing.T) {
	fronts, err := Search(context.Background(), nn.LeNet5(), Options{
		Dataflows: []string{"os"},
		Phases:    []sim.Phase{sim.Inference, sim.Training},
	})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(fronts) != 2 {
		t.Fatalf("got %d frontiers, want 2", len(fronts))
	}
	if fronts[0].Evaluated == 0 || len(fronts[0].Pareto) == 0 {
		t.Errorf("inference frontier empty")
	}
	// Training on an inference-only backend is a structural skip, not a
	// failure.
	if fronts[1].Failed != 0 || fronts[1].Evaluated != 0 || len(fronts[1].Pareto) != 0 {
		t.Errorf("training frontier = %+v, want empty with no failures", fronts[1])
	}
}

func TestSearchMaxPerDataflow(t *testing.T) {
	fronts, err := Search(context.Background(), nn.LeNet5(), Options{
		Dataflows:      []string{"ws"},
		MaxPerDataflow: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fronts[0].Evaluated != 1 {
		t.Errorf("evaluated %d, want 1 (base point only)", fronts[0].Evaluated)
	}
	if !fronts[0].Pareto[0].Mapping.IsZero() {
		t.Errorf("sole candidate is not the base point")
	}
}

func TestSearchSharedCache(t *testing.T) {
	cache := sweep.NewCache()
	opt := Options{Dataflows: []string{"is"}, Cache: cache}
	if _, err := Search(context.Background(), nn.LeNet5(), opt); err != nil {
		t.Fatal(err)
	}
	misses := cache.Misses()
	if misses == 0 {
		t.Fatalf("first search recorded no misses")
	}
	if _, err := Search(context.Background(), nn.LeNet5(), opt); err != nil {
		t.Fatal(err)
	}
	if cache.Misses() != misses {
		t.Errorf("second search re-evaluated cells: misses %d -> %d", misses, cache.Misses())
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(context.Background(), nil, Options{}); !errors.Is(err, sim.ErrNilNetwork) {
		t.Errorf("nil network: got %v", err)
	}
	_, err := Search(context.Background(), nn.LeNet5(), Options{Dataflows: []string{"bogus"}})
	if !errors.Is(err, dataflow.ErrUnknownDataflow) {
		t.Errorf("bogus dataflow: got %v", err)
	}
}
