// Package tune is the mapping auto-tuner on top of the dataflow
// registry: for a network it enumerates each backend's legal
// tile/partition/loop-order points (dataflow.Dataflow.Mappings), lowers
// every point onto a concrete arch.Config, evaluates the candidates as
// cells on the sweep engine — memo cache and transient-failure retries
// for free — and reduces the survivors to per-phase Pareto frontiers
// over (energy, latency, area), all minimized.
//
// The search is exhaustive over the declared mapping spaces, which the
// backends keep small by construction (tens of points, bounded by
// crossbar- and buffer-capacity constraints); candidates never collide
// across dataflows because the sweep cache key carries the backend ID.
package tune

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/sweep"
)

// ErrNoCandidates reports a search whose option set produced no
// evaluable mapping candidates.
var ErrNoCandidates = errors.New("tune: no mapping candidates to evaluate")

// Options tunes one search.
type Options struct {
	// Dataflows selects the backends to search, by registry ID or alias.
	// Empty means every registered backend.
	Dataflows []string
	// Phases selects the simulation phases; empty means inference only.
	// A backend that cannot simulate a phase contributes no candidates
	// to that phase's frontier (it is skipped, not failed).
	Phases []sim.Phase
	// MaxPerDataflow bounds the mapping points searched per backend
	// (the base point plus the first N-1 enumerated); <= 0 means all.
	MaxPerDataflow int
	// Workers bounds the sweep engine's worker pool; <= 0 means
	// GOMAXPROCS.
	Workers int
	// Cache memoizes candidate evaluations; pass a shared cache to
	// deduplicate across searches. nil gives the search a private one.
	Cache *sweep.Cache
	// Retry re-evaluates transiently-failed candidates (see
	// sweep.RetryPolicy).
	Retry sweep.RetryPolicy
}

// Candidate is one evaluated mapping point.
type Candidate struct {
	// Dataflow is the backend's registry ID.
	Dataflow string `json:"dataflow"`
	// Mapping is the tile/partition point; zero means the backend's
	// default configuration.
	Mapping dataflow.Mapping `json:"mapping"`
	// Config is the concrete configuration the mapping lowered to.
	Config arch.Config `json:"-"`
	// Label is the candidate's display name (config name).
	Label string `json:"label"`

	Report   *sim.Report `json:"-"`
	EnergyJ  float64     `json:"energy_j"`
	LatencyS float64     `json:"latency_s"`
	AreaMM2  float64     `json:"area_mm2"`

	Cached   bool   `json:"cached,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Err      string `json:"error,omitempty"`
}

// dominates reports whether a is at least as good as b on every
// objective and strictly better on at least one (minimization).
func (a Candidate) dominates(b Candidate) bool {
	if a.EnergyJ > b.EnergyJ || a.LatencyS > b.LatencyS || a.AreaMM2 > b.AreaMM2 {
		return false
	}
	return a.EnergyJ < b.EnergyJ || a.LatencyS < b.LatencyS || a.AreaMM2 < b.AreaMM2
}

// Frontier is one network × phase search result.
type Frontier struct {
	Network string    `json:"network"`
	Phase   sim.Phase `json:"phase"`
	// Evaluated counts candidates that produced a report; Failed counts
	// candidates whose evaluation errored (excluded from the frontier).
	Evaluated int `json:"evaluated"`
	Failed    int `json:"failed"`
	// Pareto is the non-dominated candidate set, sorted by ascending
	// energy (so descending latency along the frontier).
	Pareto []Candidate `json:"pareto"`
}

// candidate pairs a sweep axis with its mapping provenance.
type candidate struct {
	arch    sweep.Arch
	mapping dataflow.Mapping
	area    float64
	phases  []sim.Phase
}

// Search evaluates the mapping spaces of the selected backends on net
// and returns one Pareto frontier per requested phase, in phase order.
// Per-candidate failures are folded into the frontiers' Failed counts;
// Search's own error is reserved for invalid arguments, an empty
// candidate set, or a context that ended mid-search.
func Search(ctx context.Context, net *nn.Network, opt Options) ([]Frontier, error) {
	if net == nil {
		return nil, sim.ErrNilNetwork
	}
	phases := opt.Phases
	if len(phases) == 0 {
		phases = []sim.Phase{sim.Inference}
	}
	ids := opt.Dataflows
	if len(ids) == 0 {
		ids = dataflow.IDs()
	}

	var cands []candidate
	for _, id := range ids {
		d, err := dataflow.Get(id)
		if err != nil {
			return nil, err
		}
		caps := d.Capabilities()
		base := d.DefaultConfig()
		mappings := d.Mappings(base, net)
		if opt.MaxPerDataflow > 0 && len(mappings) > opt.MaxPerDataflow {
			mappings = mappings[:opt.MaxPerDataflow]
		}
		for _, m := range mappings {
			cfg := d.Apply(base, m)
			name := cfg.Name
			if name == "" {
				name = caps.Name
			}
			cands = append(cands, candidate{
				arch: sweep.Arch{
					Name:     name,
					Dataflow: d.ID(),
					Base:     cfg,
					Build:    d.New,
					Fixed:    !caps.Configurable,
				},
				mapping: m,
				area:    d.Area(cfg),
				phases:  caps.Phases,
			})
		}
	}
	if len(cands) == 0 {
		return nil, ErrNoCandidates
	}

	archs := make([]sweep.Arch, len(cands))
	byName := make(map[string]candidate, len(cands))
	for i, c := range cands {
		archs[i] = c.arch
		byName[c.arch.Name] = c
	}
	plan := sweep.Plan{Archs: archs, Networks: []*nn.Network{net}, Phases: phases}
	results, err := sweep.Run(ctx, plan, sweep.Options{
		Workers: opt.Workers,
		Cache:   opt.Cache,
		Retry:   opt.Retry,
	})
	if err != nil && len(results) == 0 {
		return nil, err
	}

	frontiers := make([]Frontier, len(phases))
	for i, ph := range phases {
		frontiers[i] = Frontier{Network: net.Name, Phase: ph}
	}
	phaseIdx := make(map[sim.Phase]int, len(phases))
	for i, ph := range phases {
		phaseIdx[ph] = i
	}
	for _, r := range results {
		c, ok := byName[r.Cell.Arch.Name]
		if !ok {
			continue
		}
		f := &frontiers[phaseIdx[r.Cell.Phase]]
		if !supports(c.phases, r.Cell.Phase) {
			// Structural gap, not a failure: the backend declares it
			// cannot run this phase.
			continue
		}
		cand := Candidate{
			Dataflow: r.Cell.Dataflow(),
			Mapping:  c.mapping,
			Config:   r.Cell.Config,
			Label:    r.Cell.Arch.Name,
			Report:   r.Report,
			AreaMM2:  c.area,
			Cached:   r.Cached,
			Attempts: r.Attempts,
		}
		if r.Err != nil {
			cand.Err = r.Err.Error()
			f.Failed++
			continue
		}
		cand.EnergyJ = r.Report.Total.Energy.Total()
		cand.LatencyS = r.Report.Total.Latency
		f.Evaluated++
		f.Pareto = append(f.Pareto, cand)
	}
	if err != nil {
		return frontiers, err
	}
	for i := range frontiers {
		frontiers[i].Pareto = pareto(frontiers[i].Pareto)
	}
	return frontiers, nil
}

func supports(phases []sim.Phase, ph sim.Phase) bool {
	for _, p := range phases {
		if p == ph {
			return true
		}
	}
	return false
}

// pareto reduces candidates to the non-dominated set, sorted by
// ascending energy with latency then area as tiebreakers.
func pareto(cands []Candidate) []Candidate {
	var front []Candidate
	for i, c := range cands {
		dominated := false
		for j, o := range cands {
			if i == j {
				continue
			}
			if o.dominates(c) {
				dominated = true
				break
			}
			// Exact duplicates keep only their first occurrence.
			if j < i && o.EnergyJ == c.EnergyJ && o.LatencyS == c.LatencyS && o.AreaMM2 == c.AreaMM2 {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		a, b := front[i], front[j]
		if a.EnergyJ != b.EnergyJ {
			return a.EnergyJ < b.EnergyJ
		}
		if a.LatencyS != b.LatencyS {
			return a.LatencyS < b.LatencyS
		}
		return a.AreaMM2 < b.AreaMM2
	})
	return front
}

// String renders a frontier as a compact table for CLI output.
func (f Frontier) String() string {
	s := fmt.Sprintf("%s/%s: %d evaluated, %d failed, %d on frontier",
		f.Network, f.Phase, f.Evaluated, f.Failed, len(f.Pareto))
	for _, c := range f.Pareto {
		s += fmt.Sprintf("\n  %-40s %-4s energy=%.3e J  latency=%.3e s  area=%.1f mm2",
			c.Label, c.Dataflow, c.EnergyJ, c.LatencyS, c.AreaMM2)
	}
	return s
}
