package dataflow

import (
	"context"
	"errors"
	"testing"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

func TestMappingLabel(t *testing.T) {
	cases := []struct {
		m    Mapping
		want string
	}{
		{Mapping{}, "base"},
		{Mapping{Rows: 128, Cols: 128}, "128x128"},
		{Mapping{Rows: 16, Cols: 16, Planes: 64}, "16x16x64"},
		{Mapping{Rows: 32, Cols: 512, LoopOrder: "input-reuse"}, "32x512/input-reuse"},
	}
	for _, c := range cases {
		if got := c.m.Label(); got != c.want {
			t.Errorf("Label(%+v) = %q, want %q", c.m, got, c.want)
		}
	}
}

func TestFromConfig(t *testing.T) {
	if got := FromConfig(arch.Config{Dataflow: arch.InputStationary}); got != "is" {
		t.Errorf("IS -> %q", got)
	}
	if got := FromConfig(arch.Config{Dataflow: arch.WeightStationary}); got != "ws" {
		t.Errorf("WS -> %q", got)
	}
	if got := FromConfig(arch.Config{Dataflow: arch.OutputStationary}); got != "os" {
		t.Errorf("OS -> %q", got)
	}
}

type okSim struct{}

func (okSim) Simulate(ctx context.Context, net *nn.Network, phase sim.Phase) (*sim.Report, error) {
	return &sim.Report{Arch: "ok", Phase: phase, Batch: 1}, nil
}

func TestGuardPhases(t *testing.T) {
	g := GuardPhases(okSim{}, "test-df", sim.Inference)
	if _, err := g.Simulate(context.Background(), nil, sim.Inference); err != nil {
		t.Errorf("allowed phase rejected: %v", err)
	}
	_, err := g.Simulate(context.Background(), nil, sim.Training)
	if !errors.Is(err, ErrUnsupportedPhase) {
		t.Errorf("blocked phase: got %v, want ErrUnsupportedPhase", err)
	}
	// Unknown phases pass through for the inner simulator's own
	// validation, keeping error shapes uniform across dataflows.
	if _, err := g.Simulate(context.Background(), nil, sim.Phase(42)); err != nil {
		t.Errorf("unknown phase short-circuited by guard: %v", err)
	}
}
