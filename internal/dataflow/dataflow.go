// Package dataflow defines the pluggable accelerator-backend interface
// behind the paper's IS-vs-WS comparison, generalized so input-stationary
// (internal/core), weight-stationary (internal/baseline),
// output-stationary (internal/outstat), and the GPU roofline
// (internal/gpu) are peers: each backend constructs a machine from an
// arch.Config plus mapping parameters, reports its capabilities and the
// legal tile/partition points of its mapping space, and registers itself
// by ID in a process-wide registry (database/sql-driver style).
//
// The package sits below every backend — it imports only arch, nn, and
// sim — so backends can register from their init functions without
// import cycles. Consumers (the facade, the sweep engine, the HTTP
// service, the auto-tuner) resolve backends through Get/All and never
// name concrete packages.
package dataflow

import (
	"context"
	"errors"
	"fmt"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// Registry and construction errors. Callers test them with errors.Is.
var (
	// ErrUnknownDataflow reports a lookup of an ID no backend registered.
	ErrUnknownDataflow = errors.New("dataflow: unknown dataflow")
	// ErrUnsupportedPhase reports a simulation phase outside a backend's
	// Capabilities.Phases (e.g. training on the output-stationary model,
	// whose in-array accumulators have no gradient path).
	ErrUnsupportedPhase = errors.New("dataflow: unsupported phase")
)

// Dataflow is one accelerator execution strategy: which operand stays
// resident in the arrays and how the others stream past it. A Dataflow
// is a factory plus metadata — machines it constructs do the actual
// simulation; implementations must be safe for concurrent use.
type Dataflow interface {
	// ID is the registry key: a short lowercase tag ("is", "ws", "os",
	// "gpu"), stable across releases — it appears in wire schemas and
	// sweep cache keys.
	ID() string

	// Capabilities describes what the backend can simulate.
	Capabilities() Capabilities

	// DefaultConfig returns the backend's reference configuration (the
	// paper's Table II column for IS/WS, iso-capacity comparison points
	// otherwise). Fixed backends (Capabilities.Configurable == false)
	// return a zero Config.
	DefaultConfig() arch.Config

	// New validates cfg and constructs a simulator for it. Backends that
	// ignore cfg (the GPU roofline) accept any value including the zero
	// Config.
	New(cfg arch.Config) (sim.Simulator, error)

	// Mappings enumerates the legal tile/partition points of the
	// backend's mapping space for net, each expressible as a rewrite of
	// base: points that violate crossbar-geometry or buffer-capacity
	// constraints are excluded. Fixed backends return a single zero
	// Mapping (their one roofline point). The slice is in deterministic
	// order; base's own point is always included.
	Mappings(base arch.Config, net *nn.Network) []Mapping

	// Apply lowers a mapping point onto base, returning the concrete
	// configuration New accepts. Apply(base, Mapping{}) with a zero
	// mapping returns base unchanged.
	Apply(base arch.Config, m Mapping) arch.Config

	// Area reports the silicon area in mm² of the machine cfg describes
	// (fixed backends ignore cfg and report their device's die area).
	Area(cfg arch.Config) float64

	// LayerCost prices one layer on the machine cfg describes — the
	// per-layer hook the auto-tuner uses to rank mapping candidates
	// before full sweep evaluation. Training includes the backward and
	// update passes; costs are per batch.
	LayerCost(cfg arch.Config, l nn.Layer, phase sim.Phase) (metrics.Result, error)
}

// Capabilities describes one backend's envelope: display metadata, the
// phases it can simulate, and whether arch.Config shapes its machines.
type Capabilities struct {
	// ID mirrors Dataflow.ID.
	ID string `json:"id"`
	// Name is the human-readable dataflow name ("Input-stationary").
	Name string `json:"name"`
	// Description is a one-line summary for listings.
	Description string `json:"description"`
	// Phases lists the supported simulation phases in execution order.
	Phases []sim.Phase `json:"phases"`
	// Configurable reports whether arch.Config affects the constructed
	// machine; false for the fixed GPU roofline, whose overrides
	// collapse to one sweep cache cell.
	Configurable bool `json:"configurable"`
	// Aliases lists extra user-facing names Normalize resolves to this
	// backend (legacy wire names like "inca" and "baseline"); they never
	// appear in output, only in lookup.
	Aliases []string `json:"-"`
}

// Supports reports whether the backend can simulate phase.
func (c Capabilities) Supports(phase sim.Phase) bool {
	for _, p := range c.Phases {
		if p == phase {
			return true
		}
	}
	return false
}

// Mapping is one point of a backend's tile/partition search space,
// expressed in array coordinates: Rows × Cols × Planes selects the
// crossbar tile shape, LoopOrder names which loop the point keeps
// outermost (backend-specific: the IS model fixes the input window
// outermost; the OS model's aspect encodes the position-vs-channel
// refetch tradeoff). Zero fields mean "keep the base configuration's
// value", so the zero Mapping is always legal.
type Mapping struct {
	Rows      int    `json:"rows,omitempty"`
	Cols      int    `json:"cols,omitempty"`
	Planes    int    `json:"planes,omitempty"`
	LoopOrder string `json:"loop_order,omitempty"`
}

// IsZero reports whether the mapping keeps the base configuration.
func (m Mapping) IsZero() bool { return m == Mapping{} }

// Label renders the mapping for override names, cache keys, and result
// tables: "16x16x64" or "128x128" with an optional "/loop-order"
// suffix; the zero mapping renders as "base".
func (m Mapping) Label() string {
	if m.IsZero() {
		return "base"
	}
	s := fmt.Sprintf("%dx%d", m.Rows, m.Cols)
	if m.Planes > 1 {
		s = fmt.Sprintf("%dx%dx%d", m.Rows, m.Cols, m.Planes)
	}
	if m.LoopOrder != "" {
		s += "/" + m.LoopOrder
	}
	return s
}

// GuardPhases wraps s so phases outside allowed fail fast with
// ErrUnsupportedPhase instead of reaching the machine. Argument
// validation order matches sim.Wrap: nil/empty network and context
// errors still surface first (the inner simulator checks them), because
// the guard only rejects phases it knows the backend cannot run.
func GuardPhases(s sim.Simulator, id string, allowed ...sim.Phase) sim.Simulator {
	return phaseGuard{inner: s, id: id, allowed: allowed}
}

type phaseGuard struct {
	inner   sim.Simulator
	id      string
	allowed []sim.Phase
}

func (g phaseGuard) Simulate(ctx context.Context, net *nn.Network, phase sim.Phase) (*sim.Report, error) {
	known := phase == sim.Inference || phase == sim.Training
	if known {
		ok := false
		for _, p := range g.allowed {
			if p == phase {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("%w: %s cannot simulate %s", ErrUnsupportedPhase, g.id, phase)
		}
	}
	return g.inner.Simulate(ctx, net, phase)
}
