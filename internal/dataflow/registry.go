package dataflow

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/inca-arch/inca/internal/arch"
)

// The process-wide registry. Backends register from init, so after
// program initialization the registry is effectively read-only; the
// mutex makes registration from tests safe too.
var (
	regMu   sync.RWMutex
	reg     = make(map[string]Dataflow)
	aliases = make(map[string]string)
)

// Register adds d to the registry under its ID plus the display names
// from its capabilities and default configuration (so legacy arch names
// like "INCA" and "WS-Baseline" resolve to the right backend). It
// panics on a duplicate or empty ID — registration happens in init, and
// a collision is a programming error, not a runtime condition.
func Register(d Dataflow) {
	if d == nil {
		panic("dataflow: Register called with nil Dataflow")
	}
	id := strings.ToLower(d.ID())
	if id == "" {
		panic("dataflow: Register called with empty ID")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[id]; dup {
		panic(fmt.Sprintf("dataflow: Register called twice for %q", id))
	}
	reg[id] = d
	caps := d.Capabilities()
	registerAliasLocked(id, caps.Name)
	for _, a := range caps.Aliases {
		registerAliasLocked(id, a)
	}
	if cfg := d.DefaultConfig(); cfg.Name != "" {
		registerAliasLocked(id, cfg.Name)
	}
}

// registerAliasLocked maps a case-insensitive display name to id. First
// registration wins; an alias never shadows a real ID.
func registerAliasLocked(id, name string) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" || key == id {
		return
	}
	if _, taken := aliases[key]; !taken {
		aliases[key] = id
	}
}

// Get returns the backend registered under id. The lookup is
// case-insensitive and accepts registered display names (arch names) as
// well as IDs; unknown names report ErrUnknownDataflow.
func Get(id string) (Dataflow, error) {
	key, ok := Normalize(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q (known: %s)", ErrUnknownDataflow, id, strings.Join(IDs(), ", "))
	}
	regMu.RLock()
	defer regMu.RUnlock()
	return reg[key], nil
}

// Normalize resolves a user-facing name — a registry ID, a registered
// display name such as "INCA" or "WS-Baseline", or either in any case —
// to its canonical registry ID. ok is false for unknown names.
func Normalize(name string) (id string, ok bool) {
	key := strings.ToLower(strings.TrimSpace(name))
	regMu.RLock()
	defer regMu.RUnlock()
	if _, hit := reg[key]; hit {
		return key, true
	}
	if canon, hit := aliases[key]; hit {
		return canon, true
	}
	return "", false
}

// FromConfig returns the canonical registry ID for cfg's Dataflow enum
// value ("ws", "is", or "os"). The mapping is static — the enum is the
// wire-stable part of arch.Config — so it works even before the
// matching backend registers.
func FromConfig(cfg arch.Config) string {
	switch cfg.Dataflow {
	case arch.InputStationary:
		return "is"
	case arch.OutputStationary:
		return "os"
	default:
		return "ws"
	}
}

// IDs returns the registered backend IDs in sorted order.
func IDs() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All returns the registered backends in ID order.
func All() []Dataflow {
	regMu.RLock()
	defer regMu.RUnlock()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Dataflow, len(ids))
	for i, id := range ids {
		out[i] = reg[id]
	}
	return out
}
