// Package train is the software training engine of the INCA reproduction:
// feedforward, backpropagation, and vanilla-SGD weight update (paper
// Eqs. 1-4), with the nonideality-injection hooks the Table I and Table VI
// accuracy experiments need.
//
// The engine deliberately mirrors the paper's hardware semantics:
//
//   - Weight-side noise (the WS vulnerability) has a persistent component:
//     every weight *write* — each SGD update — lands with device error, so
//     errors accumulate across training, plus a transient read error on
//     every use.
//   - Activation-side noise (the IS case) is purely transient: activations
//     are rewritten into the arrays on every forward pass, so each use
//     sees fresh, non-accumulating noise.
package train

import (
	"fmt"
	"math/rand"

	"github.com/inca-arch/inca/internal/fixed"
	"github.com/inca-arch/inca/internal/rram"
	"github.com/inca-arch/inca/internal/tensor"
)

// NoiseTarget selects where device nonideality is injected.
type NoiseTarget int

// Injection targets.
const (
	NoiseNone NoiseTarget = iota
	NoiseWeights
	NoiseActivations
)

// String returns the target's display name.
func (n NoiseTarget) String() string {
	switch n {
	case NoiseWeights:
		return "weights"
	case NoiseActivations:
		return "activations"
	default:
		return "none"
	}
}

// Layer is one differentiable stage of the network.
type Layer interface {
	// Forward consumes the previous activation and returns the next.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward consumes dL/d(output) and returns dL/d(input), storing any
	// parameter gradients internally.
	Backward(delta *tensor.Tensor) *tensor.Tensor
	// Step applies the vanilla gradient-descent update (Eq. 4) with the
	// given learning rate. writeNoise, when non-nil, perturbs the written
	// weights (persistent device error).
	Step(lr float64, writeNoise *rram.NoiseModel)
}

// Conv is a 2D convolution layer with direct-convolution forward and the
// Eq. 3/4 backward passes.
type Conv struct {
	W    *tensor.Tensor // [N, C, KH, KW]
	Spec tensor.ConvSpec

	readNoise *rram.NoiseModel // transient weight read noise

	x  *tensor.Tensor // cached input
	dW *tensor.Tensor
}

// NewConv builds a conv layer with He-style initialization.
func NewConv(rng *rand.Rand, outC, inC, k int, spec tensor.ConvSpec) *Conv {
	std := 1.4 / float64(k) / float64(inC)
	if std < 0.05 {
		std = 0.05
	}
	return &Conv{W: tensor.Randn(rng, std, outC, inC, k, k), Spec: spec}
}

// SetReadNoise attaches transient per-use weight noise.
func (c *Conv) SetReadNoise(n *rram.NoiseModel) { c.readNoise = n }

func (c *Conv) effectiveW() *tensor.Tensor {
	if c.readNoise == nil {
		return c.W
	}
	return c.readNoise.PerturbTensor(c.W)
}

// Forward implements Eq. 1.
func (c *Conv) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.x = x
	return tensor.Conv2D(x, c.effectiveW(), c.Spec)
}

// Backward implements Eqs. 3 and 4 for the convolution.
func (c *Conv) Backward(delta *tensor.Tensor) *tensor.Tensor {
	c.dW = tensor.ConvBackwardWeights(c.x, delta, c.Spec, c.W.Dim(2), c.W.Dim(3))
	return tensor.ConvBackwardInput(c.effectiveW(), delta, c.Spec, c.x.Dim(1), c.x.Dim(2))
}

// Step applies W -= lr·dW, with optional persistent write noise.
func (c *Conv) Step(lr float64, writeNoise *rram.NoiseModel) {
	c.W.AXPYInPlace(-lr, c.dW)
	if writeNoise != nil {
		writeNoise.PerturbInPlace(c.W)
	}
}

// FC is a fully connected layer (Eq. 2) over a flattened input.
type FC struct {
	W *tensor.Tensor // [out, in]
	B *tensor.Tensor // [out]

	readNoise *rram.NoiseModel

	x      *tensor.Tensor // flattened cached input
	inDims []int
	dW     *tensor.Tensor
	dB     *tensor.Tensor
}

// NewFC builds a fully connected layer.
func NewFC(rng *rand.Rand, out, in int) *FC {
	std := 1.0 / float64(in)
	if std < 0.02 {
		std = 0.02
	}
	return &FC{W: tensor.Randn(rng, std, out, in), B: tensor.New(out)}
}

// SetReadNoise attaches transient per-use weight noise.
func (f *FC) SetReadNoise(n *rram.NoiseModel) { f.readNoise = n }

func (f *FC) effectiveW() *tensor.Tensor {
	if f.readNoise == nil {
		return f.W
	}
	return f.readNoise.PerturbTensor(f.W)
}

// Forward flattens x and computes Wx + b.
func (f *FC) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.inDims = append([]int(nil), x.Dims()...)
	f.x = x.Reshape(x.Len())
	out := tensor.MatVec(f.effectiveW(), f.x)
	out.AddInPlace(f.B)
	return out
}

// Backward computes dW = δ⊗x, dB = δ, and returns Wᵀδ reshaped to the
// input dimensions.
func (f *FC) Backward(delta *tensor.Tensor) *tensor.Tensor {
	f.dW = tensor.Outer(delta, f.x)
	f.dB = delta.Clone()
	dx := tensor.MatVecT(f.effectiveW(), delta)
	return dx.Reshape(f.inDims...)
}

// Step applies the SGD update with optional persistent write noise.
func (f *FC) Step(lr float64, writeNoise *rram.NoiseModel) {
	f.W.AXPYInPlace(-lr, f.dW)
	f.B.AXPYInPlace(-lr, f.dB)
	if writeNoise != nil {
		writeNoise.PerturbInPlace(f.W)
	}
}

// ReLU applies the rectifier; its backward is the AND-gate masking of
// §IV.C.
type ReLU struct{ x *tensor.Tensor }

// Forward applies max(x, 0).
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	r.x = x
	return tensor.ReLU(x)
}

// Backward masks the gradient by the input sign.
func (r *ReLU) Backward(delta *tensor.Tensor) *tensor.Tensor {
	return tensor.ReLUBackward(r.x, delta)
}

// Step is a no-op (no parameters).
func (r *ReLU) Step(float64, *rram.NoiseModel) {}

// MaxPool is a k×k/stride-k max-pooling layer whose backward routes
// gradients through the recorded argmax LUT.
type MaxPool struct {
	K      int
	res    tensor.MaxPoolResult
	inDims []int
}

// Forward pools and records argmax positions.
func (p *MaxPool) Forward(x *tensor.Tensor) *tensor.Tensor {
	p.inDims = append([]int(nil), x.Dims()...)
	p.res = tensor.MaxPool2D(x, p.K, p.K)
	return p.res.Out
}

// Backward scatters gradients to the recorded positions.
func (p *MaxPool) Backward(delta *tensor.Tensor) *tensor.Tensor {
	return tensor.MaxPoolBackward(p.res, delta, p.inDims)
}

// Step is a no-op (no parameters).
func (p *MaxPool) Step(float64, *rram.NoiseModel) {}

// Network is an ordered layer stack.
type Network struct {
	Layers []Layer

	// ActNoise, when non-nil, perturbs every intermediate activation on
	// every forward pass (the IS storage nonideality: transient, because
	// activations are rewritten each pass).
	ActNoise *rram.NoiseModel

	// Quant, when non-nil, applies post-training quantization during
	// forward passes (Table I protocol).
	Quant *QuantSpec
}

// QuantSpec selects evaluation-time bit depths (0 disables an operand).
type QuantSpec struct {
	WeightBits     int
	ActivationBits int
}

// Forward runs the network on one image. Device effects on activations —
// noise and quantization — apply where the data physically sits in RRAM:
// at the *inputs* of compute layers. The final logits live in digital
// post-processing and are never perturbed.
func (n *Network) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range n.Layers {
		if _, isConv := l.(*Conv); isConv || isFC(l) {
			if n.ActNoise != nil {
				x = n.ActNoise.PerturbTensor(x)
			}
			if n.Quant != nil && n.Quant.ActivationBits > 0 {
				x = fixed.QuantizeTensor(x, n.Quant.ActivationBits)
			}
		}
		x = l.Forward(x)
	}
	return x
}

func isFC(l Layer) bool {
	_, ok := l.(*FC)
	return ok
}

// ForwardBatch runs one independent forward pass per image and returns
// the outputs in input order. When the network carries no stochastic
// hooks, the images are spread over replicas of the network on workers
// drawn from the shared tensor kernel budget (tensor.SetParallelism), so
// batch evaluation and the kernels it calls never oversubscribe the
// machine; outputs are byte-identical to serial Forward calls. Networks
// with noise hooks draw from a shared sequential RNG whose stream order
// is part of the experiment's determinism, so they evaluate serially.
func (n *Network) ForwardBatch(xs []*tensor.Tensor) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, len(xs))
	if len(xs) == 0 {
		return outs
	}
	if !n.deterministicEval() {
		for i, x := range xs {
			outs[i] = n.Forward(x)
		}
		return outs
	}
	tensor.ParallelChunks(len(xs), func(chunk, lo, hi int) {
		replica := n
		if chunk > 0 {
			// Layers cache their inputs during Forward, so concurrent
			// chunks need private layer stacks. Weights are shared
			// read-only state and are deep-copied by Clone.
			replica = n.evalReplica()
		}
		for i := lo; i < hi; i++ {
			outs[i] = replica.Forward(xs[i])
		}
	})
	return outs
}

// deterministicEval reports whether a forward pass is a pure function of
// the weights and input: no noise hooks anywhere (quantization is
// per-image deterministic and therefore fine) and only layer types Clone
// knows how to replicate.
func (n *Network) deterministicEval() bool {
	if n.ActNoise != nil {
		return false
	}
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Conv:
			if t.readNoise != nil {
				return false
			}
		case *FC:
			if t.readNoise != nil {
				return false
			}
		case *ReLU, *MaxPool:
		default:
			return false // unknown layer: cannot safely replicate
		}
	}
	return true
}

// evalReplica clones the network for one evaluation worker, carrying over
// the deterministic evaluation hooks Clone drops.
func (n *Network) evalReplica() *Network {
	r := n.Clone()
	if n.Quant != nil {
		q := *n.Quant
		r.Quant = &q
	}
	return r
}

// Backward propagates the loss gradient through all layers (Eq. 3).
func (n *Network) Backward(delta *tensor.Tensor) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		delta = n.Layers[i].Backward(delta)
	}
}

// Step updates every layer's parameters (Eq. 4).
func (n *Network) Step(lr float64, writeNoise *rram.NoiseModel) {
	for _, l := range n.Layers {
		l.Step(lr, writeNoise)
	}
}

// SetWeightReadNoise attaches transient weight noise to all parametric
// layers.
func (n *Network) SetWeightReadNoise(noise *rram.NoiseModel) {
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Conv:
			t.SetReadNoise(noise)
		case *FC:
			t.SetReadNoise(noise)
		}
	}
}

// PerturbWeights applies one persistent device-write error to every
// parametric layer's weights — the reprogramming noise a WS accelerator
// suffers each time updated weights land in RRAM.
func (n *Network) PerturbWeights(noise *rram.NoiseModel) {
	if noise == nil {
		return
	}
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Conv:
			noise.PerturbInPlace(t.W)
		case *FC:
			noise.PerturbInPlace(t.W)
		}
	}
}

// QuantizeWeights rounds every parametric layer's weights to the given
// bit depth in place (Table I's post-training weight quantization).
func (n *Network) QuantizeWeights(bits int) {
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Conv:
			t.W = fixed.QuantizeTensor(t.W, bits)
		case *FC:
			t.W = fixed.QuantizeTensor(t.W, bits)
		}
	}
}

// Clone returns a deep copy of the network's parameters in a new network
// with the same topology. Noise/quant hooks are not copied.
func (n *Network) Clone() *Network {
	out := &Network{}
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Conv:
			out.Layers = append(out.Layers, &Conv{W: t.W.Clone(), Spec: t.Spec})
		case *FC:
			out.Layers = append(out.Layers, &FC{W: t.W.Clone(), B: t.B.Clone()})
		case *ReLU:
			out.Layers = append(out.Layers, &ReLU{})
		case *MaxPool:
			out.Layers = append(out.Layers, &MaxPool{K: t.K})
		default:
			panic(fmt.Sprintf("train: cannot clone layer %T", l))
		}
	}
	return out
}

// SmallCNN builds the compact classifier used by the accuracy
// experiments: conv8-relu-pool2-conv16-relu-pool2-fc.
func SmallCNN(rng *rand.Rand, inC, inH, inW, classes int) *Network {
	n := &Network{}
	n.Layers = append(n.Layers,
		NewConv(rng, 8, inC, 3, tensor.ConvSpec{Stride: 1}),
		&ReLU{},
		&MaxPool{K: 2},
	)
	h := (inH - 2) / 2
	w := (inW - 2) / 2
	n.Layers = append(n.Layers,
		NewConv(rng, 16, 8, 3, tensor.ConvSpec{Stride: 1}),
		&ReLU{},
		&MaxPool{K: 2},
	)
	h = (h - 2) / 2
	w = (w - 2) / 2
	n.Layers = append(n.Layers, NewFC(rng, classes, 16*h*w))
	return n
}
